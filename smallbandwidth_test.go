package smallbandwidth

import "testing"

// TestFacadeEndToEnd exercises every public entry point on one instance.
func TestFacadeEndToEnd(t *testing.T) {
	g := RandomRegular(24, 4, 1)
	inst := DeltaPlusOne(g)

	congest, err := ColorCONGEST(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.VerifyColoring(congest.Colors); err != nil {
		t.Fatal(err)
	}

	decomp, err := ColorDecomposed(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.VerifyColoring(decomp.Colors); err != nil {
		t.Fatal(err)
	}

	clq, err := ColorClique(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.VerifyColoring(clq.Colors); err != nil {
		t.Fatal(err)
	}

	mpcRes, err := ColorMPC(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.VerifyColoring(mpcRes.Colors); err != nil {
		t.Fatal(err)
	}

	rnd, err := ColorRandomizedBaseline(inst, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.VerifyColoring(rnd.Colors); err != nil {
		t.Fatal(err)
	}

	if err := inst.VerifyColoring(Greedy(inst)); err != nil {
		t.Fatal(err)
	}

	d, err := BuildDecomposition(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeRejectsMultipleOptions: the variadic opts pattern accepts
// zero or one options value; passing several used to silently drop all
// but the first.
func TestFacadeRejectsMultipleOptions(t *testing.T) {
	g := Cycle(8)
	inst := DeltaPlusOne(g)
	if _, err := ColorCONGEST(inst, CONGESTOptions{}, CONGESTOptions{MaxWords: 8}); err == nil {
		t.Error("ColorCONGEST accepted two options values")
	}
	if _, err := ColorDecomposed(inst, CONGESTOptions{}, CONGESTOptions{MaxWords: 8}); err == nil {
		t.Error("ColorDecomposed accepted two options values")
	}
	if _, err := ColorClique(inst, CliqueOptions{}, CliqueOptions{LambdaCap: 1}); err == nil {
		t.Error("ColorClique accepted two options values")
	}
	if _, err := ColorMPC(inst, MPCOptions{}, MPCOptions{Sublinear: true}); err == nil {
		t.Error("ColorMPC accepted two options values")
	}
	// Zero and one value still work.
	if _, err := ColorCONGEST(inst); err != nil {
		t.Fatal(err)
	}
	if _, err := ColorCONGEST(inst, CONGESTOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeDisconnectedInstance: the façade entry points accept
// disconnected graphs directly — all four paths run on the shared engine.
func TestFacadeDisconnectedInstance(t *testing.T) {
	b := NewGraphBuilder(10)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {4, 5}, {5, 6}, {6, 7}, {7, 4}} {
		b.MustAddEdge(e[0], e[1])
	}
	g := b.Build() // two small components + isolated nodes
	inst := DeltaPlusOne(g)
	res, err := ColorCONGEST(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.VerifyColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
	dres, err := ColorDecomposed(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.VerifyColoring(dres.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeInstanceBuilders(t *testing.T) {
	g, err := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(g, 4, [][]uint32{{0, 1}, {0, 1, 2}, {1, 2, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ColorCONGEST(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.VerifyColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
	// Invalid instance rejected by the builder.
	if _, err := NewInstance(g, 4, [][]uint32{{0}, {0, 1, 2}, {1, 2, 3}, {2, 3}}); err == nil {
		t.Error("short list accepted by NewInstance")
	}
	// Random lists helper.
	inst2, err := RandomLists(Grid2D(4, 4), 32, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := ColorCONGEST(inst2)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst2.VerifyColoring(res2.Colors); err != nil {
		t.Fatal(err)
	}
}
