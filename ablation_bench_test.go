package smallbandwidth

import (
	"fmt"
	"testing"

	"smallbandwidth/internal/clique"
)

// Ablation benchmarks for the design choices called out in DESIGN.md:
// coin accuracy, seed-segment width, multi-bit batching, and the CONGEST
// bandwidth cap. Each reports the model-round consequence of the knob.

// BenchmarkAblationAccuracy compares the standard Lemma 2.6 coin
// accuracy with the sharper MIS-avoidance accuracy on the same CONGEST
// instance: more accuracy bits → longer seed → more rounds, tighter
// potential.
func BenchmarkAblationAccuracy(b *testing.B) {
	inst := DeltaPlusOne(Torus2D(5, 5))
	for _, sharp := range []bool{false, true} {
		name := "standard"
		if sharp {
			name = "highAccuracy"
		}
		b.Run(name, func(b *testing.B) {
			var rounds, seed int
			for i := 0; i < b.N; i++ {
				res, err := ColorCONGEST(inst, CONGESTOptions{HighAccuracy: sharp})
				if err != nil {
					b.Fatal(err)
				}
				rounds, seed = res.Stats.Rounds, res.Params.D
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(seed), "seedBits")
		})
	}
}

// BenchmarkAblationLambda varies the clique seed-segment width λ: wider
// segments derandomize more seed bits per O(1) rounds (fewer rounds) at
// the price of 2^λ responsible evaluations.
func BenchmarkAblationLambda(b *testing.B) {
	inst := DeltaPlusOne(RandomRegular(32, 6, 3))
	for _, lambda := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("lambda=%d", lambda), func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := ColorClique(inst, CliqueOptions{LambdaCap: lambda})
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkAblationBatch compares 1-bit vs forced 2-bit prefix batches
// in the clique (Theorem 1.3's acceleration trades local computation for
// rounds).
func BenchmarkAblationBatch(b *testing.B) {
	inst := DeltaPlusOne(Cycle(8))
	for _, batch := range []int{1, 2} {
		b.Run(fmt.Sprintf("bits=%d", batch), func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := clique.ListColorClique(inst, clique.Options{ForceBatch: batch})
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkAblationBandwidth varies the CONGEST word cap: a wider cap
// shortens chunked tree aggregations (barely, at our vector sizes) while
// the model still counts every word.
func BenchmarkAblationBandwidth(b *testing.B) {
	inst := DeltaPlusOne(Grid2D(4, 5))
	for _, words := range []int{4, 8} {
		b.Run(fmt.Sprintf("maxWords=%d", words), func(b *testing.B) {
			var rounds int
			var maxSeen int
			for i := 0; i < b.N; i++ {
				res, err := ColorCONGEST(inst, CONGESTOptions{MaxWords: words})
				if err != nil {
					b.Fatal(err)
				}
				rounds, maxSeen = res.Stats.Rounds, res.Stats.MaxMessageWords
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(maxSeen), "maxMsgWords")
		})
	}
}

// BenchmarkAblationDecomposedCrossover reports the direct-vs-decomposed
// round ratio on growing cycles — the crossover the paper's Corollary
// 1.2 exists for.
func BenchmarkAblationDecomposedCrossover(b *testing.B) {
	for _, n := range []int{64, 192} {
		b.Run(fmt.Sprintf("cycle/n=%d", n), func(b *testing.B) {
			inst := DeltaPlusOne(Cycle(n))
			var direct, decomposed int
			for i := 0; i < b.N; i++ {
				d, err := ColorCONGEST(inst)
				if err != nil {
					b.Fatal(err)
				}
				dd, err := ColorDecomposed(inst)
				if err != nil {
					b.Fatal(err)
				}
				direct, decomposed = d.Stats.Rounds, dd.ChargedRounds
			}
			b.ReportMetric(float64(direct), "directRounds")
			b.ReportMetric(float64(decomposed), "decomposedRounds")
			b.ReportMetric(float64(decomposed)/float64(direct), "ratio")
		})
	}
}
