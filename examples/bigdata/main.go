// Register-allocation-style coloring as a big-data job: the interference
// graph is sharded over many small machines (MPC with sublinear memory,
// Theorem 1.5) — no machine ever holds a whole neighborhood, yet the
// deterministic algorithm still colors with degree+1 colors while the
// runtime audits every machine's memory and per-round I/O.
package main

import (
	"fmt"
	"log"

	sb "smallbandwidth"
)

func main() {
	g := sb.RandomRegular(256, 6, 99)
	inst := sb.DeltaPlusOne(g)

	lin, err := sb.ColorMPC(inst) // Theorem 1.4: S = Θ(n)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := sb.ColorMPC(inst, sb.MPCOptions{Sublinear: true, Alpha: 0.5}) // Theorem 1.5
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: n=%d m=%d Δ=%d\n", g.N(), g.M(), g.MaxDegree())
	fmt.Printf("linear memory   (Thm 1.4): S=%5d words × %3d machines → %5d rounds (local finish: %v)\n",
		lin.S, lin.Machines, lin.Rounds, lin.FinishedLocally)
	fmt.Printf("sublinear memory(Thm 1.5): S=%5d words × %3d machines → %5d rounds\n",
		sub.S, sub.Machines, sub.Rounds)
	fmt.Printf("memory high-water: linear %d/%d, sublinear %d/%d (never exceeded)\n",
		lin.HighWaterMemory, lin.S, sub.HighWaterMemory, sub.S)
	if err := inst.VerifyColoring(sub.Colors); err != nil {
		log.Fatal(err)
	}
	fmt.Println("sublinear coloring verified ✓")
}
