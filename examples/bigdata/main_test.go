package main

import "testing"

// TestExampleRuns is a compile-and-run smoke test: the example must
// execute end to end without failing (errors inside main log.Fatal,
// which aborts the test process). It puts this binary on the
// go-test-./... path so API drift is caught at test time, not by users.
func TestExampleRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke test skipped in -short mode")
	}
	main()
}
