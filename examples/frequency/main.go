// Frequency assignment: base stations on a torus grid must each pick a
// radio channel different from all interference neighbors, and each
// station is only licensed for a subset of the spectrum — exactly a
// (degree+1)-list-coloring instance. The deterministic CONGEST algorithm
// assigns channels using only the stations' own radio links (O(log n)
// bits per message), with no randomness to go wrong at commissioning
// time, and we compare its round cost with the randomized baseline.
package main

import (
	"fmt"
	"log"

	sb "smallbandwidth"
)

func main() {
	// Base stations scattered in the plane; two stations interfere when
	// within radio range (a random geometric graph). 48 licensed
	// channels, each station allowed a random subset of deg+1+2 of them.
	g := sb.RandomGeometric(64, 0.18, 2024)
	inst, err := sb.RandomLists(g, 48, 2, 2024)
	if err != nil {
		log.Fatal(err)
	}

	det, err := sb.ColorCONGEST(inst)
	if err != nil {
		log.Fatal(err)
	}
	rand, err := sb.ColorRandomizedBaseline(inst, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("stations: %d, interference links: %d, channels: %d\n",
		g.N(), g.M(), inst.C)
	fmt.Printf("deterministic (Thm 1.1): %6d rounds, widest message %d words\n",
		det.Stats.Rounds, det.Stats.MaxMessageWords)
	fmt.Printf("randomized   [Joh99]   : %6d rounds (needs a random source per station)\n",
		rand.Stats.Rounds)
	fmt.Printf("determinism overhead: ×%.1f rounds — the price of a reproducible rollout\n",
		float64(det.Stats.Rounds)/float64(rand.Stats.Rounds))

	// Show a few assignments.
	for v := 0; v < 5; v++ {
		fmt.Printf("  station %d → channel %d (allowed: %v)\n",
			v, det.Colors[v], inst.Lists[v])
	}
}
