// A million-user social web on the flat CSR substrate: build a
// power-law (Chung–Lu) friendship graph at n = 10⁶, inspect its shape
// through O(1)/O(n+m) structural queries, push one status-update round
// through the CONGEST engine over every edge, and then zoom in on one
// user's 2-hop community and list-color it with the deterministic
// Theorem 1.1 algorithm — the substrate holds the whole web in two flat
// arrays, and the protocols run on any slice you carve out of it.
//
// Usage: socialweb [-n nodes] (default 1,000,000; full-scale coloring
// sweeps live in `benchtables -scale`).
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	sb "smallbandwidth"
	"smallbandwidth/internal/enginebench"
	"smallbandwidth/internal/graph"
)

func main() {
	n := flag.Int("n", 1_000_000, "number of users in the social web")
	flag.Parse()
	run(*n)
}

func run(n int) {
	// 1. Build the web: power-law expected degrees (β = 2.5, mean 8) —
	// a few celebrity hubs, a long tail of ordinary users. The Chung–Lu
	// sampler is O(n log n + m) and the builder is two counting-sort
	// passes into the CSR arenas, so a million users take seconds.
	start := time.Now()
	g := sb.ChungLu(graph.PowerLawWeights(n, 2.5, 8), 42)
	fmt.Printf("built social web: n=%d users, m=%d friendships in %v\n",
		g.N(), g.M(), time.Since(start).Round(time.Millisecond))

	// 2. Shape queries on the flat layout: Δ is O(1) (cached at build),
	// the degree distribution is one sweep over the offset table, the
	// component structure one BFS over the arc arena.
	degs := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		degs[v] = g.Degree(v)
	}
	sort.Ints(degs)
	comps := g.ConnectedComponents()
	giant := 0
	for _, c := range comps {
		if len(c) > giant {
			giant = len(c)
		}
	}
	fmt.Printf("degrees: median=%d p99=%d max=Δ=%d\n",
		degs[len(degs)/2], degs[len(degs)*99/100], g.MaxDegree())
	fmt.Printf("components: %d (giant holds %.1f%% of users)\n",
		len(comps), 100*float64(giant)/float64(g.N()))

	// 3. One engine round over the whole web: every user pushes one
	// status update to every friend — 2m messages through the sharded
	// delivery fabric, with the per-edge tables carved from arenas
	// indexed by the graph's edge IDs.
	start = time.Now()
	st, err := enginebench.ScaleRound(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one engine round: %d messages delivered in %v\n",
		st.Messages, time.Since(start).Round(time.Millisecond))

	// 4. Zoom in: a typical user's 2-hop community, carved out with
	// InducedSubgraph, gets frequency-assigned (list-colored) with the
	// deterministic CONGEST algorithm. Pick the first user with the
	// median degree as "typical".
	center := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == degs[len(degs)/2] && g.Degree(v) > 0 {
			center = v
			break
		}
	}
	ball := twoHopBall(g, center)
	community, _ := g.InducedSubgraph(ball)
	inst := sb.DeltaPlusOne(community)
	res, err := sb.ColorCONGEST(inst)
	if err != nil {
		log.Fatal(err)
	}
	if err := inst.VerifyColoring(res.Colors); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user %d's 2-hop community: %d users, %d ties, Δ=%d\n",
		center, community.N(), community.M(), community.MaxDegree())
	fmt.Printf("colored it with %d colors in %d CONGEST rounds, %d messages ✓\n",
		inst.C, res.Stats.Rounds, res.Stats.Messages)
}

// twoHopBall returns the center plus everyone within distance 2,
// walking the CSR adjacency directly.
func twoHopBall(g *sb.Graph, center int) []int {
	seen := map[int]bool{center: true}
	ball := []int{center}
	frontier := []int{center}
	for hop := 0; hop < 2; hop++ {
		var next []int
		for _, v := range frontier {
			for _, w := range g.Neighbors(v) {
				if !seen[int(w)] {
					seen[int(w)] = true
					ball = append(ball, int(w))
					next = append(next, int(w))
				}
			}
		}
		frontier = next
	}
	return ball
}
