package main

import "testing"

// TestExampleRuns drives the walkthrough end to end at a reduced scale
// (the full 10⁶-user default is the interactive/demo setting; the
// million-node substrate itself is pinned by TestMillionNodeSmoke at
// the repository root). Errors inside run log.Fatal, aborting the test.
func TestExampleRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke test skipped in -short mode")
	}
	run(30000)
}
