// Datacenter job scheduling in the congested clique: jobs are nodes, an
// edge means two jobs contend for the same resource and may not run in
// the same slot, and each job is restricted to a personal window of
// deg+1 slots. All machines can talk to all machines (a full bisection
// network), which is exactly the congested clique — Theorem 1.3 assigns
// slots deterministically in very few all-to-all rounds.
package main

import (
	"fmt"
	"log"

	sb "smallbandwidth"
)

func main() {
	// A contention graph: clusters of mutually conflicting jobs with
	// cross-cluster contention edges.
	g := sb.Caveman(6, 6)
	inst := sb.DeltaPlusOne(g)

	res, err := sb.ColorClique(inst)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("jobs: %d, contention edges: %d, slots: %d\n", g.N(), g.M(), inst.C)
	fmt.Printf("clique rounds: %d (iterations: %d, widest batch: %d bits)\n",
		res.Stats.Rounds, res.Iterations, res.MaxBatch)
	if res.LocalFinishUncolored > 0 {
		fmt.Printf("residual of %d jobs shipped to the leader via Lenzen routing\n",
			res.LocalFinishUncolored)
	}

	// Slot histogram.
	hist := map[uint32]int{}
	for _, c := range res.Colors {
		hist[c]++
	}
	fmt.Print("slot occupancy:")
	for s := uint32(0); s < inst.C; s++ {
		if hist[s] > 0 {
			fmt.Printf(" slot%d=%d", s, hist[s])
		}
	}
	fmt.Println()
	if err := inst.VerifyColoring(res.Colors); err != nil {
		log.Fatal(err)
	}
	fmt.Println("schedule verified conflict-free ✓")
}
