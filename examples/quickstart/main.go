// Quickstart: color a random 4-regular graph with Δ+1 = 5 colors using
// the deterministic CONGEST algorithm (Theorem 1.1) and print what it
// cost.
package main

import (
	"fmt"
	"log"

	sb "smallbandwidth"
)

func main() {
	g := sb.RandomRegular(64, 4, 1)
	inst := sb.DeltaPlusOne(g)

	res, err := sb.ColorCONGEST(inst, sb.CONGESTOptions{TrackPotentials: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: n=%d m=%d Δ=%d D=%d\n", g.N(), g.M(), g.MaxDegree(), g.Diameter())
	fmt.Printf("colored all nodes with %d colors in %d CONGEST rounds\n",
		inst.C, res.Stats.Rounds)
	fmt.Printf("messages: %d (widest %d words — the small-bandwidth guarantee)\n",
		res.Stats.Messages, res.Stats.MaxMessageWords)
	fmt.Printf("iterations of Lemma 2.1: %d\n", res.Iterations)
	for i := 0; i < res.Iterations; i++ {
		fmt.Printf("  iteration %d: colored %d of %d uncolored (≥ 1/8 guaranteed)\n",
			i+1, res.Colored[i], res.AliveAt[i])
	}
	if err := inst.VerifyColoring(res.Colors); err != nil {
		log.Fatal(err)
	}
	fmt.Println("coloring verified proper and list-respecting ✓")
}
