package smallbandwidth

// Worker-count sweep: the engine's Workers knob bounds parallelism and
// nothing else. Every run here must produce byte-identical results —
// colors, stats, telemetry, charged rounds — at workers=1 and at
// workers=N, over the conformance table and over instances large
// enough that the worker bound genuinely cuts multiple delivery
// shards (the engine keeps at least 256 nodes per shard, so the small
// conformance graphs collapse to one shard at any setting; the large
// cases are where N workers actually run concurrently).

import (
	"reflect"
	"testing"
)

// workersSweepTable is the conformance table plus shard-splitting
// instances: ≥ 1024 nodes cut into ≥ 4 shards at Workers=4.
func workersSweepTable() []conformanceCase {
	return append(conformanceTable(),
		conformanceCase{name: "cycle1200", g: Cycle(1200)},
		conformanceCase{name: "grid1600", g: Grid2D(40, 40)},
	)
}

func TestWorkersSweepCONGEST(t *testing.T) {
	for _, c := range workersSweepTable() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			inst := buildInstance(t, c)
			base, err := ColorCONGEST(inst, CONGESTOptions{TrackPotentials: true, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4} {
				got, err := ColorCONGEST(inst, CONGESTOptions{TrackPotentials: true, Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(got, base) {
					t.Fatalf("workers=%d: result differs from workers=1", workers)
				}
			}
		})
	}
}

func TestWorkersSweepDecomposed(t *testing.T) {
	for _, c := range workersSweepTable() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			inst := buildInstance(t, c)
			base, err := ColorDecomposed(inst, CONGESTOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			got, err := ColorDecomposed(inst, CONGESTOptions{Workers: 4})
			if err != nil {
				t.Fatalf("workers=4: %v", err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Fatal("workers=4: result differs from workers=1")
			}
		})
	}
}

// TestWorkersRejected: a negative or absurd worker count is a caller
// bug and must be refused with a diagnostic before any goroutine
// starts, not silently normalized.
func TestWorkersRejected(t *testing.T) {
	inst := DeltaPlusOne(Path(8))
	for _, workers := range []int{-1, 1 << 20} {
		if _, err := ColorCONGEST(inst, CONGESTOptions{Workers: workers}); err == nil {
			t.Errorf("Workers=%d was accepted", workers)
		}
	}
}
