// Benchmarks regenerating the paper's quantitative claims, one per
// experiment of DESIGN.md §4 (the paper is theory-only, so each
// theorem/lemma is an "experiment"; cmd/benchtables prints the full
// tables). Reported custom metrics carry the model quantities the paper
// bounds — rounds, colored fractions, seed bits, memory high-water —
// while ns/op measures simulator wall time.
package smallbandwidth

import (
	"fmt"
	"testing"

	"smallbandwidth/internal/baseline"
	"smallbandwidth/internal/core"
	"smallbandwidth/internal/enginebench"
	"smallbandwidth/internal/gf2"
	"smallbandwidth/internal/mpc"
	"smallbandwidth/internal/netdecomp"
	"smallbandwidth/internal/prng"
)

// BenchmarkE1TheoremOneOne measures Theorem 1.1 rounds across a size
// sweep on cycles (D = n/2) and 4-regular graphs (D = O(log n)).
func BenchmarkE1TheoremOneOne(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		for _, kind := range []string{"cycle", "regular4"} {
			g := Cycle(n)
			if kind == "regular4" {
				g = RandomRegular(n, 4, 1)
			}
			inst := DeltaPlusOne(g)
			b.Run(fmt.Sprintf("%s/n=%d", kind, n), func(b *testing.B) {
				var rounds int
				for i := 0; i < b.N; i++ {
					res, err := ColorCONGEST(inst)
					if err != nil {
						b.Fatal(err)
					}
					rounds = res.Stats.Rounds
				}
				b.ReportMetric(float64(rounds), "rounds")
				b.ReportMetric(float64(g.Diameter()), "diameter")
			})
		}
	}
}

// BenchmarkE2PartialFraction measures the worst per-iteration colored
// fraction (Lemma 2.1 guarantees ≥ 1/8).
func BenchmarkE2PartialFraction(b *testing.B) {
	g := RandomRegular(48, 4, 2)
	inst := DeltaPlusOne(g)
	var minFrac float64
	for i := 0; i < b.N; i++ {
		res, err := ColorCONGEST(inst)
		if err != nil {
			b.Fatal(err)
		}
		minFrac = 1
		for it := 0; it < res.Iterations; it++ {
			if f := float64(res.Colored[it]) / float64(res.AliveAt[it]); f < minFrac {
				minFrac = f
			}
		}
	}
	b.ReportMetric(minFrac, "minColoredFrac")
	b.ReportMetric(0.125, "guarantee")
}

// BenchmarkE3Potential measures the worst per-phase potential growth
// against the n/⌈logC⌉ budget of Lemma 2.6.
func BenchmarkE3Potential(b *testing.B) {
	g := Torus2D(6, 6)
	inst := DeltaPlusOne(g)
	var worstRatio float64
	for i := 0; i < b.N; i++ {
		res, err := ColorCONGEST(inst, CONGESTOptions{TrackPotentials: true})
		if err != nil {
			b.Fatal(err)
		}
		worstRatio = 0
		for it := 0; it < res.Iterations; it++ {
			budget := float64(res.AliveAt[it]) / float64(res.Params.LogC)
			prev := res.PotentialStart[it]
			for l := 0; l < res.Params.LogC; l++ {
				if r := (res.PotentialPhase[it][l] - prev) / budget; r > worstRatio {
					worstRatio = r
				}
				prev = res.PotentialPhase[it][l]
			}
		}
	}
	b.ReportMetric(worstRatio, "growth/budget")
}

// BenchmarkE4SeedLength reports the seed length over an n sweep at fixed
// degree (the paper: independent of n up to K = O(Δ²)).
func BenchmarkE4SeedLength(b *testing.B) {
	for _, n := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inst := DeltaPlusOne(Cycle(n))
			var d int
			for i := 0; i < b.N; i++ {
				p, err := core.ComputeParams(inst, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				d = p.D
			}
			b.ReportMetric(float64(d), "seedBits")
		})
	}
}

// BenchmarkE5Decomposition measures the Corollary 1.2 pipeline on
// high-diameter cycles and reports decomposition quality.
func BenchmarkE5Decomposition(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("cycle/n=%d", n), func(b *testing.B) {
			inst := DeltaPlusOne(Cycle(n))
			var res *netdecomp.DecompResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = ColorDecomposed(inst)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.ChargedRounds), "chargedRounds")
			b.ReportMetric(float64(res.Decomp.Colors), "alpha")
			b.ReportMetric(float64(res.Decomp.Beta), "beta")
			b.ReportMetric(float64(res.Decomp.Congestion), "kappa")
		})
	}
}

// BenchmarkE6Clique measures Theorem 1.3 rounds.
func BenchmarkE6Clique(b *testing.B) {
	for _, cfg := range []struct{ n, d int }{{24, 6}, {48, 8}} {
		b.Run(fmt.Sprintf("n=%d/d=%d", cfg.n, cfg.d), func(b *testing.B) {
			inst := DeltaPlusOne(RandomRegular(cfg.n, cfg.d, 3))
			var rounds, batch int
			for i := 0; i < b.N; i++ {
				res, err := ColorClique(inst)
				if err != nil {
					b.Fatal(err)
				}
				rounds, batch = res.Stats.Rounds, res.MaxBatch
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(batch), "maxBatch")
		})
	}
}

// BenchmarkE7MPCLinear measures Theorem 1.4.
func BenchmarkE7MPCLinear(b *testing.B) {
	benchMPC(b, false)
}

// BenchmarkE8MPCSublinear measures Theorem 1.5.
func BenchmarkE8MPCSublinear(b *testing.B) {
	benchMPC(b, true)
}

func benchMPC(b *testing.B, sublinear bool) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inst := DeltaPlusOne(RandomRegular(n, 4, 5))
			var res *MPCResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = ColorMPC(inst, MPCOptions{Sublinear: sublinear})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(float64(res.HighWaterMemory), "memHW")
			b.ReportMetric(float64(res.S), "S")
		})
	}
}

// BenchmarkE9Bandwidth audits message width across a Theorem 1.1 run.
func BenchmarkE9Bandwidth(b *testing.B) {
	inst := DeltaPlusOne(Grid2D(6, 6))
	var maxWords int
	var messages int64
	for i := 0; i < b.N; i++ {
		res, err := ColorCONGEST(inst)
		if err != nil {
			b.Fatal(err)
		}
		maxWords, messages = res.Stats.MaxMessageWords, res.Stats.Messages
	}
	b.ReportMetric(float64(maxWords), "maxMsgWords")
	b.ReportMetric(float64(messages), "messages")
}

// BenchmarkE10Baseline compares Theorem 1.1 with the randomized [Joh99]
// baseline on the same instance.
func BenchmarkE10Baseline(b *testing.B) {
	inst := DeltaPlusOne(RandomRegular(48, 4, 8))
	b.Run("deterministic", func(b *testing.B) {
		var rounds int
		for i := 0; i < b.N; i++ {
			res, err := ColorCONGEST(inst)
			if err != nil {
				b.Fatal(err)
			}
			rounds = res.Stats.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("randomized", func(b *testing.B) {
		var rounds int
		for i := 0; i < b.N; i++ {
			res, err := baseline.RandomizedCONGEST(inst, uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			rounds = res.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
}

// BenchmarkE11MPCTools measures the Section 5 tools' round counts.
func BenchmarkE11MPCTools(b *testing.B) {
	for _, n := range []int{500, 2000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var sortRounds int
			for i := 0; i < b.N; i++ {
				s := 40 * isqrtBench(n)
				rt, err := mpc.NewRuntime(6*n/s+2, s)
				if err != nil {
					b.Fatal(err)
				}
				recs := make([]mpc.Rec, n)
				for j := range recs {
					recs[j] = mpc.Rec{uint64(j * 7919 % 997), uint64(j), 1}
				}
				d, err := mpc.NewDist(rt, recs)
				if err != nil {
					b.Fatal(err)
				}
				if err := d.Sort(rt); err != nil {
					b.Fatal(err)
				}
				sortRounds = rt.Rounds
			}
			b.ReportMetric(float64(sortRounds), "sortRounds")
		})
	}
}

// BenchmarkE12ZeroRound Monte-Carlos the zero-round uniform process of
// Lemma 2.2 and reports mean potential change.
func BenchmarkE12ZeroRound(b *testing.B) {
	inst := DeltaPlusOne(RandomRegular(32, 4, 6))
	base, err := core.NewPrefixState(inst)
	if err != nil {
		b.Fatal(err)
	}
	before := base.Potential()
	var mean float64
	for i := 0; i < b.N; i++ {
		sum := 0.0
		const trials = 50
		for t := 0; t < trials; t++ {
			st, _ := core.NewPrefixState(inst)
			if err := st.StepUniform(prng.New(uint64(t))); err != nil {
				b.Fatal(err)
			}
			sum += st.Potential()
		}
		mean = sum / trials
	}
	b.ReportMetric(before, "phi0")
	b.ReportMetric(mean, "meanPhi1")
}

// ---------------------------------------------------------------------
// Engine benchmarks: raw CONGEST-simulator throughput on large graphs.
// These exercise the round engine (barrier, delivery, buffer reuse)
// rather than a theorem's bound. The workloads are defined once in
// internal/enginebench and shared with cmd/benchtables -engine, which
// records them in BENCH_congest.json so the perf trajectory is tracked
// across PRs.
// ---------------------------------------------------------------------

// BenchmarkEngineColorLarge runs one full partial-coloring iteration of
// Theorem 1.1 (MaxIterations=1, Lemma 2.1) on 10⁵-node graphs: the
// hottest realistic workload for the simulator. rounds and messages are
// reported so regressions in measured cost (not just wall clock) are
// visible.
func BenchmarkEngineColorLarge(b *testing.B) {
	for _, kind := range enginebench.Kinds {
		for _, n := range []int{10000, 100000} {
			kind, n := kind, n
			b.Run(fmt.Sprintf("%s/n=%d", kind, n), func(b *testing.B) {
				// Built inside b.Run so filtered invocations don't pay for
				// (or hold live) the unselected 10⁵-node graphs.
				g := enginebench.Graph(kind, n)
				b.ResetTimer()
				b.ReportAllocs()
				var rounds int
				var msgs int64
				for i := 0; i < b.N; i++ {
					res, err := enginebench.Color(g)
					if err != nil {
						b.Fatal(err)
					}
					rounds, msgs = res.Stats.Rounds, res.Stats.Messages
				}
				b.ReportMetric(float64(rounds), "rounds")
				b.ReportMetric(float64(msgs), "messages")
			})
		}
	}
}

// BenchmarkEngineBarrier isolates the round barrier: n nodes tick
// through 200 empty rounds, so ns/op ≈ 200·n wake/sleep transitions with
// no protocol work at all.
func BenchmarkEngineBarrier(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := enginebench.Graph("regular4", n)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := enginebench.Barrier(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineFlood saturates delivery: every node sends to every
// neighbor every round (FloodRounds·2m messages total).
func BenchmarkEngineFlood(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := enginebench.Graph("regular4", n)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := enginebench.Flood(g)
				if err != nil {
					b.Fatal(err)
				}
				if want := int64(enginebench.FloodRounds * 2 * g.M()); st.Messages != want {
					b.Fatalf("delivered %d messages, want %d", st.Messages, want)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Hot-path microbenchmarks: the derandomization kernel underneath the
// engine workloads (see docs/PERF.md). CI runs these with -benchtime=1x
// as a smoke check; run them with real benchtime to measure.
// ---------------------------------------------------------------------

// BenchmarkFieldMul measures the table-driven GF(2^m) multiply (windowed
// carry-less product + byte-fold reduction).
func BenchmarkFieldMul(b *testing.B) {
	for _, m := range []int{8, 13, 32, 63} {
		m := m
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			f := gf2.MustField(m)
			mask := f.Order() - 1
			x, y := uint64(0x9e3779b97f4a7c15)&mask, uint64(0xbf58476d1ce4e5b9)&mask
			var acc uint64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				acc = f.Mul(acc^x, y) | 1
			}
			sinkUint64 = acc
		})
	}
}

// BenchmarkFamilyEval measures a pairwise-independent hash evaluation
// (Horner chain + word-extracted seed coefficients).
func BenchmarkFamilyEval(b *testing.B) {
	fam := gf2.MustFamily(13, 2)
	seed := gf2.Vec128{Lo: 0x243f6a8885a308d3, Hi: 0x13198a2e03707344}
	var acc uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc ^= fam.Eval(seed, uint64(i)&(fam.Field().Order()-1))
	}
	sinkUint64 = acc
}

// BenchmarkEdgeExpectation measures one Lemma 2.2 conditional-
// expectation edge term on the split-basis fast path — the innermost
// unit of work of the Theorem 1.1 derandomization (evaluated twice per
// seed bit per conflict edge before the rework, once after).
func BenchmarkEdgeExpectation(b *testing.B) {
	fam := gf2.MustFamily(13, 2)
	const acc = 11
	fu := fam.OutputForms(7, acc)
	fv := fam.OutputForms(19, acc)
	cu, err := gf2.NewCoinFromForms(fu, 3, 7)
	if err != nil {
		b.Fatal(err)
	}
	cv, err := gf2.NewCoinFromForms(fv, 4, 9)
	if err != nil {
		b.Fatal(err)
	}
	basis := gf2.NewBasis()
	basis.FixBit(0, true)
	basis.FixBit(2, false)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sb, ok := basis.Split(3 + i%8)
		if !ok {
			b.Fatal("split refused")
		}
		e0, e1 := core.EdgeExpectationSplit(sb, cu, cv, 3, 4, 4, 5)
		sb.Release()
		sink += e0 + e1
	}
	sinkFloat64 = sink
}

// BenchmarkEdgePairBlock measures the bit-sliced replacement for the
// per-edge split evaluation: a sealed residual sheet carrying one owner
// coin and several neighbor coins, one batched marginal fill, the
// per-edge joint walks, and the incremental per-bit plane fold —
// everything the restructured phase loop runs per seed bit for one
// sheet, amortized per edge.
func BenchmarkEdgePairBlock(b *testing.B) {
	fam := gf2.MustFamily(13, 2)
	const acc = 11
	const nbrs = 4
	var sheet gf2.FormSheet
	myForms := fam.OutputForms(7, acc)
	myLane, ok := sheet.AddForms(myForms)
	if !ok {
		b.Fatal("AddForms refused")
	}
	myCoin, err := gf2.NewCoinFromForms(myForms, 3, 7)
	if err != nil {
		b.Fatal(err)
	}
	cu := gf2.BlockCoin{Lane: myLane, B: myCoin.Bits(), T: myCoin.Threshold()}
	var reqs [nbrs]gf2.BlockCoin
	for i, x := range []uint64{19, 23, 31, 41} {
		forms := fam.OutputForms(x, acc)
		lane, ok := sheet.AddForms(forms)
		if !ok {
			b.Fatal("AddForms refused")
		}
		c, err := gf2.NewCoinFromForms(forms, uint64(3+i), 9)
		if err != nil {
			b.Fatal(err)
		}
		reqs[i] = gf2.BlockCoin{Lane: lane, B: c.Bits(), T: c.Threshold()}
	}
	sheet.Seal()
	basis := gf2.NewBasis()
	var out [nbrs]gf2.ProbPair
	d := fam.SeedBits()
	j := 0
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sb, ok := basis.Split(j)
		if !ok {
			b.Fatal("split refused")
		}
		sb.ProbOnePairBlock(&sheet, reqs[:], out[:])
		for k := range reqs {
			p1u0, p110, p1u1, p111 := sb.EdgePairBlock(&sheet, cu, reqs[k], out[k].P0, out[k].P1)
			sink += p1u0 + p110 + p1u1 + p111
		}
		sb.Release()
		rj := i%2 == 0
		basis.FixBit(j, rj)
		sheet.Fix(j, rj)
		if j++; j == d {
			j = 0
			basis.Reset()
			sheet.Reset()
			myLane, _ = sheet.AddForms(myForms)
			for k, x := range []uint64{19, 23, 31, 41} {
				lane, _ := sheet.AddForms(fam.OutputForms(x, acc))
				reqs[k].Lane = lane
			}
			cu.Lane = myLane
			sheet.Seal()
		}
	}
	sinkFloat64 = sink
}

var (
	sinkUint64  uint64
	sinkFloat64 float64
)

func isqrtBench(x int) int {
	r := 0
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}

// BenchmarkEngineCliqueFlood saturates the clique Exchange fabric:
// all-to-all one-word traffic, n·(n−1) messages per round through the
// shared engine's scatter pass.
func BenchmarkEngineCliqueFlood(b *testing.B) {
	for _, n := range []int{512, 1536} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := enginebench.CliqueFlood(n)
				if err != nil {
					b.Fatal(err)
				}
				if want := int64(enginebench.CliqueFloodRounds * n * (n - 1)); st.Messages != want {
					b.Fatalf("delivered %d messages, want %d", st.Messages, want)
				}
			}
		})
	}
}

// BenchmarkEngineMPCSort drives the Lemma 5.1 record-moving hot path:
// distributed sort plus group ranks/sizes over the engine pool.
func BenchmarkEngineMPCSort(b *testing.B) {
	for _, n := range []int{1000000, 4000000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := enginebench.MPCSortRanks(n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
