package smallbandwidth

// Conformance coverage for internal/mis, driven by the same seeded
// instance table as the model suite. Lemma 2.1 derives an MIS by
// scanning the classes of a proper coloring — one round per class in a
// distributed execution — so the construction composed with any Color*
// entry point must (a) yield a valid MIS, (b) cost at most C scan
// rounds on a C-color instance, and (c) respect the n/(Δ+1) size floor
// every MIS on a bounded-degree graph satisfies.

import (
	"reflect"
	"testing"

	"smallbandwidth/internal/mis"
)

// scanRounds counts the color classes the Lemma 2.1 scan actually pays
// for: the construction can stop after the highest color in use.
func scanRounds(colors []uint64) uint64 {
	var max uint64
	for _, c := range colors {
		if c+1 > max {
			max = c + 1
		}
	}
	return max
}

// TestMISFromColoringConformance feeds every table instance's CONGEST
// coloring into the Lemma 2.1 construction and checks validity and the
// theorem's resource bounds.
func TestMISFromColoringConformance(t *testing.T) {
	for _, c := range conformanceTable() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			inst := buildInstance(t, c)
			res, err := ColorCONGEST(inst)
			if err != nil {
				t.Fatal(err)
			}
			colors := make([]uint64, len(res.Colors))
			for v, col := range res.Colors {
				colors[v] = uint64(col)
			}

			set := mis.FromColoring(c.g, colors, uint64(inst.C))
			if err := mis.Verify(c.g, set); err != nil {
				t.Fatal(err)
			}
			if r := scanRounds(colors); r > uint64(inst.C) {
				t.Fatalf("scan needs %d rounds, color space allows at most %d", r, inst.C)
			}

			size := 0
			for _, in := range set {
				if in {
					size++
				}
			}
			if floor := c.g.N() / (c.g.MaxDegree() + 1); size < floor {
				t.Fatalf("MIS size %d below the n/(Δ+1) floor %d", size, floor)
			}
		})
	}
}

// TestMISDeterministicInSeed pins both constructions as pure functions
// of their inputs across the whole table: the Lemma 2.1 scan of a fixed
// coloring and Luby's algorithm under a fixed seed must reproduce the
// same set on every invocation, and Luby must stay valid across seeds.
func TestMISDeterministicInSeed(t *testing.T) {
	for _, c := range conformanceTable() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			inst := buildInstance(t, c)
			res, err := ColorCONGEST(inst)
			if err != nil {
				t.Fatal(err)
			}
			colors := make([]uint64, len(res.Colors))
			for v, col := range res.Colors {
				colors[v] = uint64(col)
			}
			if a, b := mis.FromColoring(c.g, colors, uint64(inst.C)), mis.FromColoring(c.g, colors, uint64(inst.C)); !reflect.DeepEqual(a, b) {
				t.Fatal("FromColoring is not deterministic for a fixed coloring")
			}

			for seed := uint64(1); seed <= 3; seed++ {
				a, b := mis.Luby(c.g, seed), mis.Luby(c.g, seed)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("Luby seed %d is not deterministic", seed)
				}
				if err := mis.Verify(c.g, a); err != nil {
					t.Fatalf("Luby seed %d: %v", seed, err)
				}
			}
		})
	}
}
