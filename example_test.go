package smallbandwidth_test

import (
	"fmt"

	sb "smallbandwidth"
)

// The basic workflow: build a graph, derive the classic (Δ+1)-coloring
// instance, and color it deterministically in the CONGEST model.
func Example() {
	g := sb.Cycle(16)
	inst := sb.DeltaPlusOne(g)
	res, err := sb.ColorCONGEST(inst)
	if err != nil {
		panic(err)
	}
	fmt.Println("colored:", res.Done)
	fmt.Println("proper:", inst.VerifyColoring(res.Colors) == nil)
	fmt.Println("widest message (words):", res.Stats.MaxMessageWords)
	// Output:
	// colored: true
	// proper: true
	// widest message (words): 4
}

// List coloring with custom lists: every node needs deg(v)+1 allowed
// colors, but the lists can be arbitrary subsets of the color space.
func ExampleNewInstance() {
	g, _ := sb.FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	inst, err := sb.NewInstance(g, 8, [][]uint32{
		{1, 5},    // deg 1 → 2 colors
		{1, 5, 7}, // deg 2 → 3 colors
		{5, 7},    // deg 1 → 2 colors
	})
	if err != nil {
		panic(err)
	}
	res, _ := sb.ColorCONGEST(inst)
	fmt.Println("valid:", inst.VerifyColoring(res.Colors) == nil)
	// Output:
	// valid: true
}

// The congested clique solves the same instance in far fewer rounds
// because every node can talk to every other node each round.
func ExampleColorClique() {
	inst := sb.DeltaPlusOne(sb.Complete(8))
	res, err := sb.ColorClique(inst)
	if err != nil {
		panic(err)
	}
	fmt.Println("valid:", inst.VerifyColoring(res.Colors) == nil)
	// Output:
	// valid: true
}

// MPC coloring with sublinear per-machine memory: the runtime audits
// that no machine ever holds or moves more than S words.
func ExampleColorMPC() {
	// Sublinear memory means S = Θ(√n) words per machine — the instance
	// must be large enough that single nodes fit in that budget.
	inst := sb.DeltaPlusOne(sb.RandomRegular(64, 4, 2))
	res, err := sb.ColorMPC(inst, sb.MPCOptions{Sublinear: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("valid:", inst.VerifyColoring(res.Colors) == nil)
	fmt.Println("memory within budget:", res.HighWaterMemory <= res.S)
	// Output:
	// valid: true
	// memory within budget: true
}

// Network decompositions (Definition 3.1) can be built directly.
func ExampleBuildDecomposition() {
	d, err := sb.BuildDecomposition(sb.Cycle(32))
	if err != nil {
		panic(err)
	}
	fmt.Println("valid:", d.Validate() == nil)
	fmt.Println("colors ≤ log n + 2:", d.Colors <= 7)
	// Output:
	// valid: true
	// colors ≤ log n + 2: true
}
