package core

import (
	"testing"

	"smallbandwidth/internal/gf2"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/linial"
	"smallbandwidth/internal/prng"
)

func adjOf(g *graph.Graph) [][]int32 {
	adj := make([][]int32, g.N())
	for v := 0; v < g.N(); v++ {
		adj[v] = g.Neighbors(v)
	}
	return adj
}

func TestPrefixStateInit(t *testing.T) {
	g := graph.Cycle(8)
	inst := graph.DeltaPlusOneInstance(g)
	st, err := NewPrefixState(inst)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done() {
		t.Error("fresh state reports done")
	}
	if phi := st.Potential(); phi >= float64(g.N()) {
		t.Errorf("Φ₀ = %v should be < n (each term < 1)", phi)
	}
}

// TestUniformProcessExpectationDecreases: Monte-Carlo check of Lemma 2.2 —
// over random runs of Algorithm 1, the mean potential after a phase does
// not exceed the potential before it (with sampling slack).
func TestUniformProcessExpectationDecreases(t *testing.T) {
	g := graph.MustRandomRegular(24, 4, 8)
	inst := graph.DeltaPlusOneInstance(g)
	base, err := NewPrefixState(inst)
	if err != nil {
		t.Fatal(err)
	}
	before := base.Potential()
	const trials = 400
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		st, _ := NewPrefixState(inst)
		src := prng.New(uint64(trial))
		if err := st.StepUniform(src); err != nil {
			t.Fatal(err)
		}
		sum += st.Potential()
	}
	mean := sum / trials
	// E[Φ₁] ≤ Φ₀ exactly; allow Monte-Carlo noise of 10%.
	if mean > before*1.10 {
		t.Errorf("mean potential after phase %v > before %v (Lemma 2.2 violated)", mean, before)
	}
}

// TestUniformProcessNeverEmpties: the candidate set never becomes empty
// in any of many random full runs (second claim of Lemma 2.2).
func TestUniformProcessNeverEmpties(t *testing.T) {
	g := graph.GNP(20, 0.25, 2)
	inst := graph.DeltaPlusOneInstance(g)
	for trial := 0; trial < 100; trial++ {
		st, err := NewPrefixState(inst)
		if err != nil {
			t.Fatal(err)
		}
		src := prng.New(uint64(trial) + 1000)
		for !st.Done() {
			if err := st.StepUniform(src); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		if _, err := st.CandidateColors(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestUniformProcessColorDistribution: iterating Algorithm 1 for all
// ⌈logC⌉ phases is exactly a uniform choice from the initial list (the
// "slowed down" claim of Section 2.1).
func TestUniformProcessColorDistribution(t *testing.T) {
	// A single node with list {1, 4, 6} in color space [8].
	g := graph.Path(1)
	inst := &graph.Instance{G: g, C: 8, Lists: [][]uint32{{1, 4, 6}}}
	counts := map[uint32]int{}
	const trials = 6000
	for trial := 0; trial < trials; trial++ {
		st, err := NewPrefixState(inst)
		if err != nil {
			t.Fatal(err)
		}
		src := prng.New(uint64(trial) * 7)
		for !st.Done() {
			if err := st.StepUniform(src); err != nil {
				t.Fatal(err)
			}
		}
		colors, err := st.CandidateColors()
		if err != nil {
			t.Fatal(err)
		}
		counts[colors[0]]++
	}
	for _, c := range []uint32{1, 4, 6} {
		frac := float64(counts[c]) / trials
		if frac < 0.28 || frac > 0.39 {
			t.Errorf("color %d frequency %v, want ≈ 1/3", c, frac)
		}
	}
	if len(counts) != 3 {
		t.Errorf("colors outside the list were selected: %v", counts)
	}
}

// TestSeededProcessMatchesLemma23: with pairwise-independent ε-biased
// coins the expected potential growth per phase is at most 10·ε·Δ·n
// (Lemma 2.3), checked by Monte-Carlo over seeds.
func TestSeededProcessMatchesLemma23(t *testing.T) {
	g := graph.MustRandomRegular(24, 4, 5)
	inst := graph.DeltaPlusOneInstance(g)
	p, err := ComputeParams(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	psiRaw, _, err := linial.ColorGraph(adjOf(g), g.MaxDegree())
	if err != nil {
		t.Fatal(err)
	}
	base, _ := NewPrefixState(inst)
	before := base.Potential()
	epsBudget := 10.0 / float64(int(1)<<p.B) * float64(p.Delta) * float64(g.N())

	const trials = 400
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		st, _ := NewPrefixState(inst)
		src := prng.New(uint64(trial) + 99)
		if err := st.StepSeeded(src, psiRaw, p.Fam, p.B); err != nil {
			t.Fatal(err)
		}
		sum += st.Potential()
	}
	mean := sum / trials
	if mean > (before+epsBudget)*1.10 {
		t.Errorf("mean potential %v exceeds Lemma 2.3 bound %v", mean, before+epsBudget)
	}
}

// TestSeededProcessNeverEmpties mirrors Lemma 2.3's never-empty claim for
// the biased-coin process across full runs.
func TestSeededProcessNeverEmpties(t *testing.T) {
	g := graph.Grid2D(4, 5)
	inst := graph.DeltaPlusOneInstance(g)
	p, err := ComputeParams(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	psiRaw, _, err := linial.ColorGraph(adjOf(g), g.MaxDegree())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		st, _ := NewPrefixState(inst)
		src := prng.New(uint64(trial))
		for !st.Done() {
			if err := st.StepSeeded(src, psiRaw, p.Fam, p.B); err != nil {
				t.Fatalf("trial %d phase %d: %v", trial, st.Phase, err)
			}
		}
		if _, err := st.CandidateColors(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStepSeededBlockMatchesScalar: the bit-sliced best-of-64 phase step
// must be an exact refinement of the scalar path — regenerating the same
// seed block from a twin prng stream and evaluating the chosen lane with
// the scalar Coin.Value oracle must reproduce the committed state bit for
// bit.
func TestStepSeededBlockMatchesScalar(t *testing.T) {
	for _, lanes := range []int{1, 3, 64} {
		g := graph.GNP(30, 0.2, 4)
		inst := graph.DeltaPlusOneInstance(g)
		p, err := ComputeParams(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		psiRaw, _, err := linial.ColorGraph(adjOf(g), g.MaxDegree())
		if err != nil {
			t.Fatal(err)
		}
		fast, _ := NewPrefixState(inst)
		ref, _ := NewPrefixState(inst)
		src := prng.New(77)
		twin := prng.New(77)
		for !fast.Done() {
			bitPos := fast.LogC - fast.Phase - 1
			k1s := make([]int, len(ref.Cands))
			for v := range ref.Cands {
				k1s[v] = countBitOnes(ref.Cands[v], bitPos)
			}
			lane, err := fast.StepSeededBlock(src, psiRaw, p.Fam, p.B, lanes)
			if err != nil {
				t.Fatalf("lanes=%d phase %d: %v", lanes, ref.Phase, err)
			}
			// Twin stream: rebuild the block's seeds and replay the chosen
			// lane through the scalar oracle.
			seeds := make([]gf2.Vec128, lanes)
			for k := range seeds {
				s := gf2.Vec128{Lo: twin.Uint64(), Hi: twin.Uint64()}
				for i := p.Fam.SeedBits(); i < 128; i++ {
					s = s.WithBit(i, false)
				}
				seeds[k] = s
			}
			bits := make([]bool, len(ref.Cands))
			for v := range ref.Cands {
				coin, err := gf2.NewCoin(p.Fam, psiRaw[v], p.B, uint64(k1s[v]), uint64(len(ref.Cands[v])))
				if err != nil {
					t.Fatal(err)
				}
				bits[v] = coin.Value(seeds[lane])
			}
			if err := ref.step(bits); err != nil {
				t.Fatalf("lanes=%d scalar replay phase %d: %v", lanes, ref.Phase, err)
			}
			for v := range fast.Cands {
				if len(fast.Cands[v]) != len(ref.Cands[v]) || len(fast.Conf[v]) != len(ref.Conf[v]) {
					t.Fatalf("lanes=%d phase %d node %d: block state diverged from scalar replay", lanes, ref.Phase, v)
				}
				for i := range fast.Cands[v] {
					if fast.Cands[v][i] != ref.Cands[v][i] {
						t.Fatalf("lanes=%d node %d: candidate %d differs", lanes, v, i)
					}
				}
			}
		}
		if _, err := fast.CandidateColors(); err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
	}
}

// TestStepSeededBlockPrefersLivePhases: with a full 64-lane block the
// argmin-potential choice keeps the process alive and non-increasing far
// more reliably than a single sample; check that full runs complete on a
// denser graph and that the potential never increases across any phase
// (a strictly stronger guarantee than Lemma 2.3's expectation bound,
// available here because the block can reject bad seeds).
func TestStepSeededBlockPrefersLivePhases(t *testing.T) {
	g := graph.MustRandomRegular(24, 4, 5)
	inst := graph.DeltaPlusOneInstance(g)
	p, err := ComputeParams(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	psiRaw, _, err := linial.ColorGraph(adjOf(g), g.MaxDegree())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		st, _ := NewPrefixState(inst)
		src := prng.New(uint64(trial) + 7)
		for !st.Done() {
			before := st.Potential()
			if _, err := st.StepSeededBlock(src, psiRaw, p.Fam, p.B, 64); err != nil {
				t.Fatalf("trial %d phase %d: %v", trial, st.Phase, err)
			}
			// ε-bias rounds each probability up by < 2^−b, so allow the
			// lemma's additive slack on top of strict non-increase.
			slack := 10.0 / float64(int(1)<<p.B) * float64(p.Delta) * float64(g.N())
			if after := st.Potential(); after > before+slack {
				t.Fatalf("trial %d phase %d: potential rose %v -> %v beyond ε slack %v",
					trial, st.Phase, before, after, slack)
			}
		}
		if _, err := st.CandidateColors(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEdgeExpectationMatchesCensus: E[X_e] from the engine equals the
// explicit census over all seeds on a small family.
func TestEdgeExpectationMatchesCensus(t *testing.T) {
	fam := gf2.MustFamily(4, 2)
	b := 3
	type side struct {
		psi      uint64
		k1, list int
	}
	cases := []struct{ u, v side }{
		{side{1, 2, 5}, side{2, 3, 4}},
		{side{0, 0, 3}, side{3, 2, 2}},
		{side{5, 4, 4}, side{9, 1, 5}},
		{side{7, 3, 3}, side{8, 3, 3}},
	}
	for ci, c := range cases {
		cu, err := gf2.NewCoin(fam, c.u.psi, b, uint64(c.u.k1), uint64(c.u.list))
		if err != nil {
			t.Fatal(err)
		}
		cv, err := gf2.NewCoin(fam, c.v.psi, b, uint64(c.v.k1), uint64(c.v.list))
		if err != nil {
			t.Fatal(err)
		}
		got := EdgeExpectation(gf2.NewBasis(), cu, cv, c.u.k1, c.u.list-c.u.k1, c.v.k1, c.v.list-c.v.k1)

		want := 0.0
		total := 0
		for s := uint64(0); s < 1<<fam.SeedBits(); s++ {
			seed := gf2.VecFromUint64(s)
			total++
			bu, bv := cu.Value(seed), cv.Value(seed)
			if bu != bv {
				continue
			}
			if bu {
				want += 1/float64(c.u.k1) + 1/float64(c.v.k1)
			} else {
				want += 1/float64(c.u.list-c.u.k1) + 1/float64(c.v.list-c.v.k1)
			}
		}
		want /= float64(total)
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("case %d: engine %v, census %v", ci, got, want)
		}
	}
}
