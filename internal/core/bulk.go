package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/gf2"
)

// phaseHub centralizes one component's seed-bit loop. In the
// distributed formulation every one of the D seed bits costs one tree
// aggregation — 2(size−1) messages rippling up and down the BFS tree
// over 2·Height+6 rounds — and at the scale tiers those aggregation
// waves, not the GF(2) math, dominate the wall clock. But the
// aggregation's outcome is a pure function of state the simulator
// already holds in one address space: every node's two conditional
// expectations, folded in a fixed tree order. So the hub evaluates the
// whole seed-bit segment centrally — the last node to register runs
// the D-bit loop for the component, replicating the distributed
// execution exactly — while the engine's round/traffic accounting is
// kept bit-identical by charging the aggregations' exact message and
// word counts (Ctx.ChargeTraffic) and sleeping through the segment's
// exact round span (SpinUntil, which the engine fast-forwards in one
// jump when a whole domain sleeps).
//
// Bit-identity with the per-node loop (opts.noBulk) and the reference
// path (opts.refEval) rests on three invariants, each pinned by the
// differential suites:
//
//  1. Per-node evaluation is the same code: the hub calls the same
//     evalPhaseBit the per-node loop calls, against a basis with the
//     same fixed-bit history, so every (x0, x1) pair matches bitwise.
//  2. The float fold replicates the converge: ConvergeSumLockstepTo
//     folds, at each tree node, the node's own vector plus each child's
//     finished accumulator in child arrival order — ascending subtree
//     height, then ascending ID. The hub folds slot accumulators in
//     exactly that order (kids sorted by (height, ID), parents after
//     children), so the root total — and hence every argmin choice —
//     is the bit-identical float.
//  3. Rounds, messages, words, and widths are charged as measured:
//     D aggregations of 2(size−1) messages × 4 words over
//     D·(2·Height+6) rounds, which is exactly what the distributed
//     waves cost (and zero messages for singleton components, whose
//     aggregations never send).
//
// Coordination is scheduling-independent: slots register, the arrival
// counter picks the last registrant as coordinator (any node — the
// choice is unobservable), everyone else parks in SpinUntil, and the
// engine's release-channel chain orders the coordinator's writes
// before every sleeper's reads. No commit happens inside the segment,
// so checkpoint cuts — taken only at iteration tops — see the same
// committed states and the same staged stats as the distributed run.
type phaseHub struct {
	size    int
	p       *Params
	arrived atomic.Int64

	// Coordinator-only state below; the registration counter orders
	// every slot write before the coordinator's reads, and the segment
	// wake-up orders the coordinator's writes before the slots' reads.
	slots []hubSlot
	order []int32 // fold order: slot indexes, ascending (SubtreeHeight, slot)
	acc   [][2]float64
	basis gf2.Basis
	built bool
	seed  gf2.Vec128 // the finished phase's seed, read by every slot on wake
}

type hubSlot struct {
	ns   *nodeState
	subH int32
	kids []int32 // child slot indexes, ascending (SubtreeHeight, ID)
}

func newPhaseHub(size int, p *Params) *phaseHub {
	return &phaseHub{
		size:  size,
		p:     p,
		slots: make([]hubSlot, size),
		acc:   make([][2]float64, size),
	}
}

// build assembles the fold schedule from the registered slots' BFS
// trees; runs once, on the first phase (the tree is fixed per run).
func (h *phaseHub) build() {
	for si := range h.slots {
		sl := &h.slots[si]
		t := sl.ns.tree
		sl.subH = int32(t.SubtreeHeight)
		if len(t.Children) > 0 {
			sl.kids = make([]int32, len(t.Children))
			for k, c := range t.Children {
				sl.kids[k] = int32(sl.ns.rankOf[c])
			}
			// Child accumulators arrive in round order — ascending subtree
			// height — with ascending IDs within a round. Children is
			// ID-ascending, so a stable sort by height preserves the
			// within-round order.
			kids := sl.kids
			sort.SliceStable(kids, func(a, b int) bool {
				return h.slots[kids[a]].subH < h.slots[kids[b]].subH
			})
		}
	}
	h.order = make([]int32, h.size)
	for i := range h.order {
		h.order[i] = int32(i)
	}
	ord := h.order
	sort.SliceStable(ord, func(a, b int) bool {
		return h.slots[ord[a]].subH < h.slots[ord[b]].subH
	})
	if last := ord[h.size-1]; last != 0 {
		panic(fmt.Sprintf("core: phase hub fold order ends at slot %d, not the root", last))
	}
	h.built = true
}

// runSeedBits is the central replica of the distributed seed-bit loop:
// one Split per bit serves every slot, the tree-ordered fold replaces
// the aggregation wave, and every slot's sheets and the shared basis
// advance in lockstep with the chosen bits.
func (h *phaseHub) runSeedBits() gf2.Vec128 {
	basis := &h.basis
	basis.Reset()
	var seed gf2.Vec128
	var prefix uint64
	for j := 0; j < h.p.D; j++ {
		sb, split := basis.Split(j)
		for si := range h.slots {
			ns := h.slots[si].ns
			var x0, x1 float64
			if ns.alive {
				x0, x1 = ns.evalPhaseBit(j, basis, sb, split, prefix)
			}
			h.acc[si] = [2]float64{x0, x1}
		}
		if split {
			sb.Release()
		}
		for _, si := range h.order {
			a := &h.acc[si]
			for _, ci := range h.slots[si].kids {
				c := &h.acc[ci]
				a[0] += c[0]
				a[1] += c[1]
			}
		}
		totals := h.acc[0] // the root is rank 0: the component's smallest ID
		rj := totals[1] < totals[0]
		if !basis.FixBit(j, rj) {
			panic("core: chosen seed bit inconsistent")
		}
		for si := range h.slots {
			h.slots[si].ns.foldSheets(j, rj)
		}
		seed = seed.WithBit(j, rj)
		if rj && j < 64 {
			prefix |= uint64(1) << j
		}
	}
	return seed
}

// runPhaseBulk is the per-node entry to the hub for one phase: register
// this node's slot, let the last registrant run the segment centrally,
// and sleep through the segment's exact round span. Returns the
// component's chosen seed.
func (ns *nodeState) runPhaseBulk() gf2.Vec128 {
	h := ns.hub
	h.slots[ns.rank].ns = ns
	start := ns.ctx.Round()
	if h.arrived.Add(1) == int64(h.size) {
		if !h.built {
			h.build()
		}
		h.seed = h.runSeedBits()
		// Charge exactly what the D aggregation waves would have carried:
		// each wave sends one 4-word chunk up and one down per tree edge.
		// Singleton components send nothing, there as here.
		if h.size > 1 {
			edges := int64(h.size - 1)
			d := int64(h.p.D)
			ns.ctx.ChargeTraffic(d*2*edges, d*8*edges, 4)
		}
		h.arrived.Store(0)
	}
	// The segment's exact span: D aggregations of 2·Height+6 rounds each
	// (every node computes the same bound from its own tree copy). The
	// whole domain sleeps, so the engine advances it in one jump.
	congest.SpinUntil(ns.ctx, start+ns.p.D*(2*ns.tree.Height+6))
	ns.op += uint64(ns.p.D)
	return h.seed
}
