package core

import (
	"testing"

	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/graph"
)

func mustInstance(t *testing.T, g *graph.Graph) *graph.Instance {
	t.Helper()
	inst := graph.DeltaPlusOneInstance(g)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestListColorSmallGraphs(t *testing.T) {
	cases := map[string]*graph.Graph{
		"single":   graph.Path(1),
		"edge":     graph.Path(2),
		"triangle": graph.Complete(3),
		"path":     graph.Path(9),
		"cycle":    graph.Cycle(8),
		"star":     graph.Star(7),
		"grid":     graph.Grid2D(3, 4),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			inst := mustInstance(t, g)
			res, err := ListColorCONGEST(inst, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Done {
				t.Fatal("run did not color all nodes")
			}
			if err := inst.VerifyColoring(res.Colors); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestListColorMediumGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("medium graphs skipped in -short")
	}
	cases := map[string]*graph.Graph{
		"regular":   graph.MustRandomRegular(48, 4, 7),
		"gnp":       graph.GNP(40, 0.12, 3),
		"torus":     graph.Torus2D(5, 5),
		"hypercube": graph.Hypercube(4),
		"caveman":   graph.Caveman(4, 4),
		"barbell":   graph.Barbell(5, 6),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			if !g.IsConnected() {
				t.Skip("generator produced a disconnected graph")
			}
			inst := mustInstance(t, g)
			res, err := ListColorCONGEST(inst, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Done {
				t.Fatal("run did not color all nodes")
			}
		})
	}
}

func TestListColorRandomLists(t *testing.T) {
	g := graph.MustRandomRegular(32, 4, 9)
	inst, err := graph.RandomListInstance(g, 64, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ListColorCONGEST(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("run did not color all nodes")
	}
	if err := inst.VerifyColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestListColorShiftedLists(t *testing.T) {
	g := graph.Cycle(16)
	inst, err := graph.ShiftedListInstance(g, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ListColorCONGEST(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("run did not color all nodes")
	}
}

// TestPartialColoringFraction validates the Lemma 2.1 guarantee: every
// iteration permanently colors at least 1/8 of the still-uncolored nodes.
func TestPartialColoringFraction(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Cycle(24),
		graph.MustRandomRegular(40, 4, 1),
		graph.Grid2D(5, 6),
		graph.Star(16),
	}
	for gi, g := range graphs {
		inst := mustInstance(t, g)
		res, err := ListColorCONGEST(inst, Options{})
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		for i := 0; i < res.Iterations; i++ {
			alive := res.AliveAt[i]
			colored := res.Colored[i]
			if colored*8 < alive {
				t.Errorf("graph %d iteration %d: colored %d of %d < 1/8 (Lemma 2.1 violated)",
					gi, i, colored, alive)
			}
		}
	}
}

// TestPotentialInvariant validates the Lemma 2.6 per-phase bound
// ΣΦ_ℓ ≤ ΣΦ_{ℓ−1} + n_alive/⌈logC⌉ and the final ΣΦ ≤ 2·n_alive of
// Lemma 2.1's proof.
func TestPotentialInvariant(t *testing.T) {
	g := graph.MustRandomRegular(36, 4, 4)
	inst := mustInstance(t, g)
	res, err := ListColorCONGEST(inst, Options{TrackPotentials: true})
	if err != nil {
		t.Fatal(err)
	}
	const slack = 1e-6
	for i := 0; i < res.Iterations; i++ {
		alive := float64(res.AliveAt[i])
		budget := alive / float64(res.Params.LogC)
		prev := res.PotentialStart[i]
		if prev >= alive {
			t.Errorf("iteration %d: ΣΦ₀ = %v ≥ n_alive = %v", i, prev, alive)
		}
		for l := 0; l < res.Params.LogC; l++ {
			cur := res.PotentialPhase[i][l]
			if cur > prev+budget+slack {
				t.Errorf("iteration %d phase %d: ΣΦ %v > %v + %v (Lemma 2.6 violated)",
					i, l+1, cur, prev, budget)
			}
			prev = cur
		}
		final := res.PotentialPhase[i][res.Params.LogC-1]
		if final > 2*alive+slack {
			t.Errorf("iteration %d: final ΣΦ = %v > 2·n_alive = %v", i, final, 2*alive)
		}
	}
}

// TestSeedLengthIndependentOfN: Lemma 2.5/2.6 — the seed length depends
// on Δ, K and loglogC but not directly on n beyond K = O(Δ²).
func TestSeedLengthIndependentOfN(t *testing.T) {
	var seedBits []int
	for _, n := range []int{16, 32, 64} {
		inst := mustInstance(t, graph.Cycle(n))
		p, err := ComputeParams(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		seedBits = append(seedBits, p.D)
	}
	for i := 1; i < len(seedBits); i++ {
		if seedBits[i] != seedBits[0] {
			t.Errorf("seed length varies with n on cycles: %v", seedBits)
		}
	}
}

func TestMaxIterationsRunsLemma21Once(t *testing.T) {
	g := graph.MustRandomRegular(32, 4, 2)
	inst := mustInstance(t, g)
	res, err := ListColorCONGEST(inst, Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("Iterations = %d, want 1", res.Iterations)
	}
	if res.Done {
		t.Skip("instance fully colored in one iteration (allowed but unusual)")
	}
	if res.Colored[0]*8 < res.AliveAt[0] {
		t.Errorf("single Lemma 2.1 invocation colored %d of %d < 1/8",
			res.Colored[0], res.AliveAt[0])
	}
}

func TestRoundsScaleWithDiameter(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test skipped in -short")
	}
	small := mustInstance(t, graph.Cycle(12))
	big := mustInstance(t, graph.Cycle(48))
	rSmall, err := ListColorCONGEST(small, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rBig, err := ListColorCONGEST(big, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rBig.Stats.Rounds <= rSmall.Stats.Rounds {
		t.Errorf("rounds did not grow with diameter: %d vs %d",
			rSmall.Stats.Rounds, rBig.Stats.Rounds)
	}
}

func TestBandwidthRespected(t *testing.T) {
	inst := mustInstance(t, graph.Grid2D(4, 4))
	res, err := ListColorCONGEST(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxMessageWords > 4 {
		t.Errorf("message of %d words observed; CONGEST cap is 4", res.Stats.MaxMessageWords)
	}
}

func TestHighAccuracyVariant(t *testing.T) {
	g := graph.Cycle(12)
	inst := mustInstance(t, g)
	res, err := ListColorCONGEST(inst, Options{HighAccuracy: true, TrackPotentials: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("high-accuracy run did not finish")
	}
	// Sharper accuracy must not hurt the potential bound.
	for i := range res.PotentialPhase {
		final := res.PotentialPhase[i][res.Params.LogC-1]
		if final > 2*float64(res.AliveAt[i]) {
			t.Errorf("iteration %d: ΣΦ = %v too large", i, final)
		}
	}
}

func TestDisconnectedRunsInOneEngineRun(t *testing.T) {
	g, err := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	inst := mustInstance(t, g)
	res, err := ListColorCONGEST(inst, Options{})
	if err != nil {
		t.Fatalf("component-aware ListColorCONGEST rejected a disconnected graph: %v", err)
	}
	if !res.Done {
		t.Fatal("disconnected run incomplete")
	}
	if err := inst.VerifyColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
	// The compatibility delegate must agree bit for bit.
	res2, err := ListColorComponents(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats != res.Stats {
		t.Errorf("ListColorComponents stats %+v differ from ListColorCONGEST %+v", res2.Stats, res.Stats)
	}
	for v := range res.Colors {
		if res.Colors[v] != res2.Colors[v] {
			t.Fatalf("delegate colored node %d differently", v)
		}
	}
}

// TestDisconnectedStatsAreParallelComposition pins the accounting of one
// engine run over several components: rounds must behave like the max
// over components (adding a tiny far-away component to a big one must
// not add its rounds on top), while messages strictly sum.
func TestDisconnectedStatsAreParallelComposition(t *testing.T) {
	big := graph.Cycle(32)
	bigRes, err := ListColorCONGEST(mustInstance(t, big), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// big cycle ⊔ one edge ⊔ one isolated node.
	b := graph.NewBuilder(35)
	big.Edges(func(u, v int) { b.MustAddEdge(u, v) })
	b.MustAddEdge(32, 33)
	union := b.Build()
	res, err := ListColorCONGEST(mustInstance(t, union), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mustInstance(t, union).VerifyColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds > 2*bigRes.Stats.Rounds {
		t.Errorf("union rounds %d look summed, not maxed (big component alone: %d)",
			res.Stats.Rounds, bigRes.Stats.Rounds)
	}
	if res.Stats.Messages <= bigRes.Stats.Messages {
		t.Errorf("union messages %d did not grow over the big component's %d",
			res.Stats.Messages, bigRes.Stats.Messages)
	}
}

// TestDedupMatchesPerComponentRuns is the exactness lockdown of the
// identical-component memoization: on a graph with duplicated
// components, ListColorCONGEST's colors and stats must be bit-identical
// to composing one standalone run per component (max rounds, summed
// traffic, colors mapped by rank) — i.e., simulating a representative
// once must be observationally indistinguishable from simulating every
// copy.
func TestDedupMatchesPerComponentRuns(t *testing.T) {
	b := graph.NewBuilder(26)
	// Three identical 5-node paths.
	for s := 0; s < 15; s += 5 {
		for i := 0; i < 4; i++ {
			b.MustAddEdge(s+i, s+i+1)
		}
	}
	// Two identical triangles.
	for s := 15; s < 21; s += 3 {
		b.MustAddEdge(s, s+1)
		b.MustAddEdge(s+1, s+2)
		b.MustAddEdge(s, s+2)
	}
	// One unique star.
	for i := 22; i < 26; i++ {
		b.MustAddEdge(21, i)
	}
	g := b.Build()
	inst := mustInstance(t, g)

	full, err := ListColorCONGEST(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.VerifyColoring(full.Colors); err != nil {
		t.Fatal(err)
	}

	var want congest.Stats
	for _, comp := range g.ConnectedComponents() {
		sub, orig := g.InducedSubgraph(comp)
		lists := make([][]uint32, sub.N())
		for i, v := range orig {
			lists[i] = append([]uint32(nil), inst.Lists[v]...)
		}
		res, err := ListColorCONGEST(&graph.Instance{G: sub, C: inst.C, Lists: lists}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range orig {
			if full.Colors[v] != res.Colors[i] {
				t.Fatalf("node %d: full run colored %d, standalone component run %d",
					v, full.Colors[v], res.Colors[i])
			}
		}
		if res.Stats.Rounds > want.Rounds {
			want.Rounds = res.Stats.Rounds
		}
		want.Messages += res.Stats.Messages
		want.Words += res.Stats.Words
		if res.Stats.MaxMessageWords > want.MaxMessageWords {
			want.MaxMessageWords = res.Stats.MaxMessageWords
		}
	}
	if full.Stats != want {
		t.Fatalf("deduplicated stats %+v != per-component composition %+v", full.Stats, want)
	}
}

// TestListsNotAliasedIntoRun is the aliasing regression of the instance
// boundary: a run (connected or not) must leave the caller's inst.Lists
// byte-identical — node programs shift their working lists in place, so
// sharing a backing array would corrupt the caller's instance.
func TestListsNotAliasedIntoRun(t *testing.T) {
	g, err := graph.FromEdges(7, [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	if err != nil {
		t.Fatal(err)
	}
	inst := mustInstance(t, g)
	snapshot := make([][]uint32, len(inst.Lists))
	for v, l := range inst.Lists {
		snapshot[v] = append([]uint32(nil), l...)
	}
	if _, err := ListColorCONGEST(inst, Options{}); err != nil {
		t.Fatal(err)
	}
	for v, l := range inst.Lists {
		if len(l) != len(snapshot[v]) {
			t.Fatalf("node %d list length changed: %d -> %d", v, len(snapshot[v]), len(l))
		}
		for i := range l {
			if l[i] != snapshot[v][i] {
				t.Fatalf("node %d list mutated at index %d: %d -> %d", v, i, snapshot[v][i], l[i])
			}
		}
	}
}

func TestInvalidInstanceRejected(t *testing.T) {
	g := graph.Path(3)
	inst := graph.DeltaPlusOneInstance(g)
	inst.Lists[1] = inst.Lists[1][:1] // too short
	if _, err := ListColorCONGEST(inst, Options{}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	g := graph.Grid2D(4, 4)
	inst := mustInstance(t, g)
	r1, err := ListColorCONGEST(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ListColorCONGEST(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1.Colors {
		if r1.Colors[v] != r2.Colors[v] {
			t.Fatalf("node %d colored %d then %d: algorithm is not deterministic",
				v, r1.Colors[v], r2.Colors[v])
		}
	}
	if r1.Stats.Rounds != r2.Stats.Rounds {
		t.Errorf("round counts differ: %d vs %d", r1.Stats.Rounds, r2.Stats.Rounds)
	}
}
