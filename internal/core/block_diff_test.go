package core

import (
	"math"
	"testing"

	"smallbandwidth/internal/graph"
)

// compareRuns requires two full pipeline results to agree everywhere the
// derandomization is observable: colors, stats (including the traffic
// the bulk path charges instead of sending), iteration count, and every
// tracked potential, bit for bit.
func compareRuns(t *testing.T, name string, ref, got *Result) {
	t.Helper()
	if got.Stats != ref.Stats {
		t.Errorf("%s: stats differ: got %+v, ref %+v", name, got.Stats, ref.Stats)
	}
	if got.Iterations != ref.Iterations {
		t.Errorf("%s: iterations differ: %d vs %d", name, got.Iterations, ref.Iterations)
	}
	for v := range ref.Colors {
		if got.Colors[v] != ref.Colors[v] {
			t.Errorf("%s: node %d color differs: %d vs %d", name, v, got.Colors[v], ref.Colors[v])
			return
		}
	}
	if len(got.PotentialStart) != len(ref.PotentialStart) {
		t.Errorf("%s: potential records differ in length", name)
		return
	}
	for it := range ref.PotentialStart {
		if math.Float64bits(got.PotentialStart[it]) != math.Float64bits(ref.PotentialStart[it]) {
			t.Errorf("%s: iteration %d PotentialStart %v vs ref %v",
				name, it, got.PotentialStart[it], ref.PotentialStart[it])
			return
		}
		for l := range ref.PotentialPhase[it] {
			if math.Float64bits(got.PotentialPhase[it][l]) != math.Float64bits(ref.PotentialPhase[it][l]) {
				t.Errorf("%s: iteration %d phase %d potential %v vs ref %v",
					name, it, l+1, got.PotentialPhase[it][l], ref.PotentialPhase[it][l])
				return
			}
		}
	}
}

// TestPhaseBlockOwnedEdgeSweep sweeps the batched evaluation across the
// owned-edge counts that straddle its block boundaries — 0 owned edges
// (no sheets at all), 1, one lane shy of typical sheet capacity, at it,
// and past it (63, 64, 65 force single- and multi-sheet layouts) — and
// pins the three evaluation tiers against each other on each: the
// reference path (refEval), the per-node batched path with real tree
// aggregations (noBulk), and the default bulk path. A star's center owns
// every edge (it carries the smallest ID), so the star's leaf count is
// exactly the center's owned-edge count.
func TestPhaseBlockOwnedEdgeSweep(t *testing.T) {
	for _, leaves := range []int{0, 1, 63, 64, 65} {
		g := graph.Star(leaves + 1)
		inst := graph.DeltaPlusOneInstance(g)
		ref, err := ListColorCONGEST(inst, Options{TrackPotentials: true, refEval: true})
		if err != nil {
			t.Fatalf("leaves=%d ref: %v", leaves, err)
		}
		noBulk, err := ListColorCONGEST(inst, Options{TrackPotentials: true, noBulk: true})
		if err != nil {
			t.Fatalf("leaves=%d noBulk: %v", leaves, err)
		}
		bulk, err := ListColorCONGEST(inst, Options{TrackPotentials: true})
		if err != nil {
			t.Fatalf("leaves=%d bulk: %v", leaves, err)
		}
		name := func(s string) string { return s + "/" + itoa(leaves) }
		compareRuns(t, name("noBulk"), ref, noBulk)
		compareRuns(t, name("bulk"), ref, bulk)
		if err := inst.VerifyColoring(bulk.Colors); err != nil {
			t.Errorf("leaves=%d: improper coloring: %v", leaves, err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestPhaseBlockWorkersSweep runs the per-node batched path (noBulk,
// so the D tree aggregations really cross the delivery shards) and the
// bulk path at several worker counts on a multi-component graph and
// pins every result against the single-worker reference path — the
// batched evaluation must be scheduling-independent like everything
// else in the engine.
func TestPhaseBlockWorkersSweep(t *testing.T) {
	g := graph.GNP(80, 0.08, 17)
	inst := graph.DeltaPlusOneInstance(g)
	ref, err := ListColorCONGEST(inst, Options{TrackPotentials: true, refEval: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		for _, noBulk := range []bool{false, true} {
			opts := Options{TrackPotentials: true, Workers: workers, noBulk: noBulk}
			got, err := ListColorCONGEST(inst, opts)
			if err != nil {
				t.Fatalf("workers=%d noBulk=%v: %v", workers, noBulk, err)
			}
			name := "bulk"
			if noBulk {
				name = "noBulk"
			}
			compareRuns(t, name+"/workers="+itoa(workers), ref, got)
		}
	}
}

// FuzzPhaseBlock feeds arbitrary small instances through the default
// (bulk, bit-sliced) pipeline and the reference evaluation and requires
// bit-identical seeds everywhere they are observable — colors, stats,
// and tracked potentials — plus a proper coloring. This is the fuzz
// companion of the owned-edge sweep: fuzzed graphs hit irregular
// sheet layouts (mixed degrees, multiple components, dead nodes after
// early iterations) that the curated sweeps cannot enumerate.
func FuzzPhaseBlock(f *testing.F) {
	f.Add(uint8(5), []byte{0, 1, 1, 2, 2, 3, 3, 4})
	f.Add(uint8(9), []byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 0, 8})
	f.Add(uint8(7), []byte{0, 1, 2, 3, 4, 5})
	f.Add(uint8(1), []byte{})
	f.Fuzz(func(t *testing.T, n uint8, edges []byte) {
		nn := int(n % 13)
		if nn == 0 {
			t.Skip("empty instance")
		}
		b := graph.NewBuilder(nn)
		for i := 0; i+1 < len(edges) && i < 48; i += 2 {
			u, v := int(edges[i])%nn, int(edges[i+1])%nn
			if u != v && !b.HasEdge(u, v) {
				b.MustAddEdge(u, v)
			}
		}
		inst := graph.DeltaPlusOneInstance(b.Build())
		ref, err := ListColorCONGEST(inst, Options{TrackPotentials: true, refEval: true})
		if err != nil {
			t.Skipf("clean error: %v", err)
		}
		got, err := ListColorCONGEST(inst, Options{TrackPotentials: true})
		if err != nil {
			t.Fatalf("bulk path failed where reference succeeded: %v", err)
		}
		compareRuns(t, "bulk", ref, got)
		if err := inst.VerifyColoring(got.Colors); err != nil {
			t.Fatalf("improper coloring: %v", err)
		}
	})
}
