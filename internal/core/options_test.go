package core

import (
	"testing"

	"smallbandwidth/internal/graph"
)

// TestOptionsMatrix runs the full pipeline across the option space on
// one fixed instance: every combination must produce the same *valid*
// coloring semantics (validity, completeness), though round counts and
// colors may differ.
func TestOptionsMatrix(t *testing.T) {
	g := graph.Grid2D(4, 4)
	inst := graph.DeltaPlusOneInstance(g)
	for _, opts := range []Options{
		{},
		{HighAccuracy: true},
		{TrackPotentials: true},
		{MaxWords: 6},
		{MaxWords: 4, TrackPotentials: true, HighAccuracy: true},
	} {
		res, err := ListColorCONGEST(inst, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if !res.Done {
			t.Fatalf("opts %+v: incomplete", opts)
		}
		if err := inst.VerifyColoring(res.Colors); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
	}
}

// TestMaxWordsTooSmallFails: a 2-word cap cannot carry the 4-word phase
// message; the run must fail loudly, not silently truncate.
func TestMaxWordsTooSmallFails(t *testing.T) {
	inst := graph.DeltaPlusOneInstance(graph.Cycle(6))
	if _, err := ListColorCONGEST(inst, Options{MaxWords: 2}); err == nil {
		t.Error("2-word bandwidth accepted; phase messages need 4 words")
	}
}

// TestMemoKeyFieldGuard pins the marginal-memo key-packing guard: the
// key word assigns M and B consecutive 8-bit fields, so Params
// construction must reject any value that would overflow its field and
// silently alias another configuration's memo entries. Every currently
// reachable parameterization fits (M ≤ 63 is enforced first), so the
// guard is exercised directly.
func TestMemoKeyFieldGuard(t *testing.T) {
	for _, c := range []struct {
		m, b int
		ok   bool
	}{
		{0, 0, true}, {63, 61, true}, {255, 255, true},
		{256, 8, false}, {8, 256, false}, {-1, 8, false}, {8, -1, false},
	} {
		if got := memoKeyFieldsOK(c.m, c.b); got != c.ok {
			t.Errorf("memoKeyFieldsOK(%d, %d) = %v, want %v", c.m, c.b, got, c.ok)
		}
	}
	// The guard sits on every Params construction path.
	if _, err := computeParamsFor(10, 4, 6, Options{}); err != nil {
		t.Errorf("reachable parameterization rejected: %v", err)
	}
}

// TestWideColorSpace uses C much larger than Δ+1 (more prefix phases).
func TestWideColorSpace(t *testing.T) {
	g := graph.Cycle(10)
	lists := make([][]uint32, g.N())
	for v := range lists {
		// deg+1 = 3 colors spread over a 2^10 color space.
		lists[v] = []uint32{uint32(v * 97 % 1024), uint32(v*97%1024) + 1, 1000 + uint32(v)}
		sortU32(lists[v])
	}
	inst := &graph.Instance{G: g, C: 1024, Lists: lists}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := ListColorCONGEST(inst, Options{TrackPotentials: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("incomplete")
	}
	if res.Params.LogC != 10 {
		t.Errorf("LogC = %d, want 10", res.Params.LogC)
	}
	if err := inst.VerifyColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
}

// TestSingleColorSpace: C = 1 forces an edgeless graph and zero phases.
func TestSingleColorSpace(t *testing.T) {
	g, err := graph.FromEdges(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst := &graph.Instance{G: g, C: 1, Lists: [][]uint32{{0}}}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := ListColorCONGEST(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Colors[0] != 0 {
		t.Errorf("C=1: %+v", res)
	}
}

// TestListsLargerThanDegreePlusOne: extra slack in lists is legal and
// speeds things up (fewer conflicts); the result must still verify.
func TestListsLargerThanDegreePlusOne(t *testing.T) {
	g := graph.MustRandomRegular(20, 4, 6)
	inst, err := graph.RandomListInstance(g, 64, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ListColorCONGEST(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("incomplete")
	}
}

// TestComponentsWithIsolatedNodes: isolated nodes are 1-node components
// with singleton lists.
func TestComponentsWithIsolatedNodes(t *testing.T) {
	g, err := graph.FromEdges(5, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	inst := graph.DeltaPlusOneInstance(g)
	res, err := ListColorComponents(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("incomplete")
	}
	if err := inst.VerifyColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
}

// TestHighAccuracyTightensPotential compares the final potentials of the
// two accuracy settings: the sharper ε must give a final ΣΦ no larger
// (up to float noise) on the same instance.
func TestHighAccuracyTightensPotential(t *testing.T) {
	g := graph.Torus2D(5, 5)
	inst := graph.DeltaPlusOneInstance(g)
	std, err := ListColorCONGEST(inst, Options{TrackPotentials: true, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	sharp, err := ListColorCONGEST(inst, Options{TrackPotentials: true, MaxIterations: 1, HighAccuracy: true})
	if err != nil {
		t.Fatal(err)
	}
	if sharp.Params.B <= std.Params.B {
		t.Errorf("HighAccuracy B = %d not larger than standard B = %d", sharp.Params.B, std.Params.B)
	}
	// Both must satisfy the standard bound; the sharper run's budget is
	// smaller by construction. (Values can differ since seeds differ.)
	for i, label := range []*Result{std, sharp} {
		final := label.PotentialPhase[0][label.Params.LogC-1]
		if final > 2*float64(label.AliveAt[0]) {
			t.Errorf("run %d: final ΣΦ = %v exceeds 2n", i, final)
		}
	}
}

func sortU32(a []uint32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
