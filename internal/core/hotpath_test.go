package core

import (
	"math"
	"testing"

	"smallbandwidth/internal/gf2"
	"smallbandwidth/internal/graph"
)

// TestPhasePotentialsMatchReference runs the full Theorem 1.1 pipeline
// twice on seeded graphs — once through the optimized hot path (cached
// coin forms, split-basis dual-β evaluation, marginal memo, reused
// buffers) and once through the verbatim pre-optimization evaluation
// (runPhaseRef) — and requires bit-identical results everywhere the
// derandomization is observable: colors, stats, iteration telemetry,
// and every tracked potential.
func TestPhasePotentialsMatchReference(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle24", graph.Cycle(24)},
		{"torus5x5", graph.Torus2D(5, 5)},
		{"regular4", graph.MustRandomRegular(40, 4, 3)},
		{"gnp", graph.GNP(48, 0.12, 9)},
		{"star+path", disjointStarPath(t)},
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			inst := graph.DeltaPlusOneInstance(tc.g)
			fast, err := ListColorCONGEST(inst, Options{TrackPotentials: true})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := ListColorCONGEST(inst, Options{TrackPotentials: true, refEval: true})
			if err != nil {
				t.Fatal(err)
			}
			if fast.Stats != ref.Stats {
				t.Fatalf("stats differ: fast %+v, ref %+v", fast.Stats, ref.Stats)
			}
			if fast.Iterations != ref.Iterations {
				t.Fatalf("iterations differ: %d vs %d", fast.Iterations, ref.Iterations)
			}
			for v := range fast.Colors {
				if fast.Colors[v] != ref.Colors[v] {
					t.Fatalf("node %d color differs: %d vs %d", v, fast.Colors[v], ref.Colors[v])
				}
			}
			for it := range ref.PotentialStart {
				if math.Float64bits(fast.PotentialStart[it]) != math.Float64bits(ref.PotentialStart[it]) {
					t.Fatalf("iteration %d: PotentialStart %v vs ref %v",
						it, fast.PotentialStart[it], ref.PotentialStart[it])
				}
				for l := range ref.PotentialPhase[it] {
					if math.Float64bits(fast.PotentialPhase[it][l]) != math.Float64bits(ref.PotentialPhase[it][l]) {
						t.Fatalf("iteration %d phase %d: PotentialPhase %v vs ref %v",
							it, l+1, fast.PotentialPhase[it][l], ref.PotentialPhase[it][l])
					}
				}
			}
		})
	}
}

func disjointStarPath(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(12)
	for i := 1; i < 6; i++ {
		if err := b.AddEdge(0, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 6; i < 11; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// TestPhaseStepAllocFree is the allocs/op regression guard on the
// steady-state phase computation: with warm per-node caches (forms
// built, basis and scratch pooled, split bases recycled), evaluating a
// seed bit's conditional expectations over a set of edges must not
// allocate. Before the hot-path rework this step allocated hundreds of
// objects (fresh forms, coins, and basis rows per edge per bit).
func TestPhaseStepAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops cached objects under -race; allocation counts are meaningless")
	}
	fam := gf2.MustFamily(12, 2)
	const b = 9
	// Cached forms, as nodeState keeps them across phases.
	myForms := fam.OutputForms(5, b)
	nbrForms := [][]gf2.Form{
		fam.OutputForms(9, b),
		fam.OutputForms(21, b),
		fam.OutputForms(33, b),
	}
	basis := gf2.NewBasis()
	basis.FixBit(0, true)
	basis.FixBit(1, false)

	myCoin, err := gf2.NewCoinFromForms(myForms, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	var nbrCoins []gf2.Coin
	for i, fs := range nbrForms {
		c, err := gf2.NewCoinFromForms(fs, uint64(2+i), 6)
		if err != nil {
			t.Fatal(err)
		}
		nbrCoins = append(nbrCoins, c)
	}

	step := func() {
		for j := 2; j < 10; j++ {
			sb, ok := basis.Split(j)
			if !ok {
				t.Fatal("split refused")
			}
			for _, cv := range nbrCoins {
				EdgeExpectationSplit(sb, myCoin, cv, 3, 4, 2, 4)
			}
			sb.Release()
		}
	}
	step() // warm the pools
	if n := testing.AllocsPerRun(50, step); n > 0 {
		t.Fatalf("steady-state phase step allocates %v objects per run, want 0", n)
	}
}

// TestMarginalMemoPinsPureValues: the memo returns exactly what a fresh
// computation produces (purity), including across differently ordered
// accesses.
func TestMarginalMemoPinsPureValues(t *testing.T) {
	fam := gf2.MustFamily(8, 2)
	forms := fam.OutputForms(13, 6)
	coin, err := gf2.NewCoinFromForms(forms, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	basis := gf2.NewBasis()
	basis.FixBit(0, true)
	sb, ok := basis.Split(1)
	if !ok {
		t.Fatal("split refused")
	}
	defer sb.Release()
	p0, p1 := sb.ProbOnePair(coin)
	const k3 = uint64(1) | 8<<8 | 6<<16
	margStore(0, 13, coin.Threshold(), 1, k3, p0, p1)
	g0, g1, hit := margLoad(0, 13, coin.Threshold(), 1, k3)
	if !hit {
		t.Fatal("stored entry not found")
	}
	if math.Float64bits(g0) != math.Float64bits(p0) || math.Float64bits(g1) != math.Float64bits(p1) {
		t.Fatalf("memo returned (%v,%v), stored (%v,%v)", g0, g1, p0, p1)
	}
	if _, _, hit := margLoad(0, 14, coin.Threshold(), 1, k3); hit {
		t.Fatal("memo hit on a different key")
	}
	// Stripes are disjoint tables: the same key misses in another stripe
	// (owners there recompute the same pure value instead of sharing).
	if _, _, hit := margLoad(1, 13, coin.Threshold(), 1, k3); hit {
		t.Fatal("memo hit across stripes")
	}
	// Stripe mapping: contiguous bands covering [0, n), clamped in range.
	if margStripeFor(0, 1<<20) != 0 || margStripeFor(1<<20-1, 1<<20) != margStripes-1 {
		t.Fatal("stripe band endpoints wrong")
	}
	for v := 0; v < 1000; v++ {
		s := margStripeFor(v*1013, 1<<20)
		if s < 0 || s >= margStripes {
			t.Fatalf("stripe %d out of range", s)
		}
	}
}
