package core

import (
	"math/bits"
	"testing"
	"testing/quick"

	"smallbandwidth/internal/graph"
)

// TestLemma21PropertyQuick sweeps random connected instances through a
// single Lemma 2.1 invocation and checks the full contract on each:
// valid partial coloring, ≥ 1/8 colored, per-phase potential budget,
// final ΣΦ ≤ 2n.
func TestLemma21PropertyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short")
	}
	check := func(seed uint64, nRaw, pRaw uint8) bool {
		n := int(nRaw)%24 + 6
		p := float64(pRaw%40)/100 + 0.12
		g := graph.GNP(n, p, seed)
		if !g.IsConnected() {
			return true // vacuous; connectivity handled elsewhere
		}
		inst := graph.DeltaPlusOneInstance(g)
		res, err := ListColorCONGEST(inst, Options{MaxIterations: 1, TrackPotentials: true})
		if err != nil {
			t.Logf("seed=%d n=%d p=%.2f: %v", seed, n, p, err)
			return false
		}
		if res.Iterations != 1 {
			return res.Done // fully colored before the iteration is fine
		}
		if res.Colored[0]*8 < res.AliveAt[0] {
			t.Logf("seed=%d: colored %d of %d", seed, res.Colored[0], res.AliveAt[0])
			return false
		}
		alive := float64(res.AliveAt[0])
		budget := alive/float64(res.Params.LogC) + 1e-9
		prev := res.PotentialStart[0]
		for l := 0; l < res.Params.LogC; l++ {
			if res.PotentialPhase[0][l] > prev+budget {
				t.Logf("seed=%d: phase %d potential %v > %v+%v",
					seed, l+1, res.PotentialPhase[0][l], prev, budget)
				return false
			}
			prev = res.PotentialPhase[0][l]
		}
		if prev > 2*alive+1e-9 {
			t.Logf("seed=%d: final ΣΦ %v > 2n %v", seed, prev, 2*alive)
			return false
		}
		// Partial colorings must be proper on the colored subset and
		// list-respecting.
		for v, c := range res.Colors {
			_ = c
			_ = v
		}
		return g.CountConflicts(res.Colors) == 0 || !res.Done
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRoundStructure pins the measured round count against the
// Lemma 2.1 / Theorem 1.1 schedule: rounds ≈ setup (BFS + Linial) +
// per-iteration [termination check + logC phases × (exchange + D seed-bit
// aggregations + bit exchange) + MIS segment]. The formula, with the
// simulator's exact segment lengths, must bound the measurement within a
// small multiplicative window — if refactoring ever changes the round
// structure silently, this fails.
func TestRoundStructure(t *testing.T) {
	g := graph.Cycle(24)
	inst := graph.DeltaPlusOneInstance(g)
	res, err := ListColorCONGEST(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Params
	// Height of the BFS tree on a cycle rooted at 0 is n/2.
	height := g.N() / 2
	convergeLen := 2*height + 6 // core converge() spin bound
	perPhase := 1 + p.D*convergeLen + 1
	misLen := len(p.MISSched) + int(p.MISK) + 1 + 1 // V4 + Linial + classes + announce
	perIter := convergeLen + p.LogC*perPhase + misLen
	setup := 3*height + 16 // BFS build + Linial schedule + slack
	upper := setup + (res.Iterations+1)*perIter + convergeLen
	if res.Stats.Rounds > upper {
		t.Errorf("rounds %d exceed schedule upper bound %d", res.Stats.Rounds, upper)
	}
	// And it cannot be wildly below the dominant term either.
	lower := res.Iterations * p.LogC * p.D * (2*height - 2) / 2
	if res.Stats.Rounds < lower/2 {
		t.Errorf("rounds %d below structural lower bound %d — accounting broken?",
			res.Stats.Rounds, lower/2)
	}
}

// TestSeedBitsMatchFormula: D = 2·max(⌈logK⌉, ⌈log(10(Δ+1)⌈logC⌉)⌉).
func TestSeedBitsMatchFormula(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(20), graph.Star(9), graph.MustRandomRegular(24, 4, 1),
	} {
		inst := graph.DeltaPlusOneInstance(g)
		p, err := ComputeParams(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		logc := p.LogC
		if logc < 1 {
			logc = 1
		}
		b := bits.Len64(10 * uint64(g.MaxDegree()+1) * uint64(logc))
		m := p.A
		if b > m {
			m = b
		}
		if p.D != 2*m {
			t.Errorf("seed bits %d, formula gives %d", p.D, 2*m)
		}
	}
}
