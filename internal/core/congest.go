package core

import (
	"fmt"
	"sync"

	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/gf2"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/linial"
)

// Message tags of the coloring protocol (≥ congest.UserTagBase).
const (
	tagLinial uint64 = congest.UserTagBase + iota // [tag, color]
	tagPhase                                      // [tag, k1, |L|, ψ]
	tagBit                                        // [tag, bit]
	tagV4                                         // [tag, inV4]
	tagHLin                                       // [tag, hColor]
	tagMIS                                        // [tag]
	tagFinal                                      // [tag, color]
)

// Result reports the outcome and the measured cost of a run.
type Result struct {
	Colors     []uint32 // proper list coloring, one per node
	Stats      congest.Stats
	Iterations int   // partial-coloring iterations executed
	Colored    []int // nodes permanently colored in each iteration
	AliveAt    []int // uncolored nodes at the start of each iteration
	// PotentialStart[i] is Σ_v Φ₀(v) at the start of iteration i;
	// PotentialPhase[i][ℓ−1] is Σ_v Φ_ℓ(v) after phase ℓ (when
	// Options.TrackPotentials is set).
	PotentialStart []float64
	PotentialPhase [][]float64
	Params         *Params
	Done           bool // all nodes colored (false only with MaxIterations)
}

// metrics collects measurement-only data outside the protocol.
type metrics struct {
	mu       sync.Mutex
	potStart map[int]float64
	potPhase map[int]map[int]float64
	colored  map[int]int
	alive    map[int]int
	track    bool
}

func newMetrics(track bool) *metrics {
	return &metrics{
		potStart: map[int]float64{},
		potPhase: map[int]map[int]float64{},
		colored:  map[int]int{},
		alive:    map[int]int{},
		track:    track,
	}
}

func (m *metrics) addPotStart(iter int, phi float64) {
	if !m.track {
		return
	}
	m.mu.Lock()
	m.potStart[iter] += phi
	m.mu.Unlock()
}

func (m *metrics) addPotPhase(iter, phase int, phi float64) {
	if !m.track {
		return
	}
	m.mu.Lock()
	if m.potPhase[iter] == nil {
		m.potPhase[iter] = map[int]float64{}
	}
	m.potPhase[iter][phase] += phi
	m.mu.Unlock()
}

func (m *metrics) addColored(iter int) {
	m.mu.Lock()
	m.colored[iter]++
	m.mu.Unlock()
}

func (m *metrics) addAlive(iter int) {
	m.mu.Lock()
	m.alive[iter]++
	m.mu.Unlock()
}

// ListColorCONGEST solves the (degree+1)-list-coloring instance in the
// simulated CONGEST model (Theorem 1.1): an O(log* n)-round Linial
// coloring for symmetry breaking, then partial-coloring iterations
// (Lemma 2.1), each derandomizing ⌈logC⌉ prefix-extension phases with
// seed bits fixed one by one via conditional expectations aggregated over
// a BFS tree, followed by an MIS step on the ≤3-degree conflict graph.
// The graph must be connected (the BFS tree spans it); use
// ListColorComponents for disconnected inputs.
func ListColorCONGEST(inst *graph.Instance, opts Options) (*Result, error) {
	p, err := ComputeParams(inst, opts)
	if err != nil {
		return nil, err
	}
	if inst.G.N() == 0 {
		return &Result{Params: p, Done: true}, nil
	}
	if !inst.G.IsConnected() {
		return nil, fmt.Errorf("core: graph is disconnected; use ListColorComponents")
	}

	m := newMetrics(opts.TrackPotentials)
	colors := make([]uint32, inst.G.N())
	coloredFlag := make([]bool, inst.G.N())
	var mu sync.Mutex

	cfg := congest.Config{MaxWords: opts.MaxWords, MaxRounds: opts.MaxRounds}
	stats, err := congest.Run(inst.G, cfg, func(ctx *congest.Ctx) {
		ns := &nodeState{ctx: ctx, p: p, opts: opts, m: m}
		ns.init(inst)
		ns.run()
		mu.Lock()
		colors[ctx.ID()] = ns.color
		coloredFlag[ctx.ID()] = ns.colored
		mu.Unlock()
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Colors: colors, Stats: *stats, Params: p, Done: true}
	for _, ok := range coloredFlag {
		if !ok {
			res.Done = false
			break
		}
	}
	for iter := 0; ; iter++ {
		a, ok := m.alive[iter]
		if !ok {
			break
		}
		res.Iterations++
		res.AliveAt = append(res.AliveAt, a)
		res.Colored = append(res.Colored, m.colored[iter])
		if opts.TrackPotentials {
			res.PotentialStart = append(res.PotentialStart, m.potStart[iter])
			phases := make([]float64, p.LogC)
			for l := 1; l <= p.LogC; l++ {
				phases[l-1] = m.potPhase[iter][l]
			}
			res.PotentialPhase = append(res.PotentialPhase, phases)
		}
	}
	if res.Done {
		if err := inst.VerifyColoring(colors); err != nil {
			return nil, fmt.Errorf("core: produced coloring failed verification: %w", err)
		}
	}
	return res, nil
}

// nodeState is the per-node protocol state.
type nodeState struct {
	ctx  *congest.Ctx
	p    *Params
	opts Options
	m    *metrics

	tree *congest.Tree
	op   uint64

	psi     uint64   // Linial input color in [K]
	list    []uint32 // remaining allowed colors
	color   uint32
	colored bool
	alive   bool

	aliveNbr []bool // by neighbor index: neighbor still uncolored

	// Per-iteration state.
	cands    []uint32
	conflict []bool // by neighbor index: same prefix, both alive
	nbrK1    []uint64
	nbrLen   []uint64
	nbrPsi   []uint64

	// Reused scratch: these are rewritten every iteration/phase, and
	// keeping them on the node state (instead of allocating per use)
	// removes the dominant steady-state allocations of a run.
	nbrCoins  []gf2.Coin
	hNbr      []bool
	nbrColors []uint64
	basisTmp  gf2.Basis
}

func (ns *nodeState) init(inst *graph.Instance) {
	deg := ns.ctx.Degree()
	ns.list = append([]uint32(nil), inst.Lists[ns.ctx.ID()]...)
	ns.alive = true
	ns.aliveNbr = make([]bool, deg)
	for i := range ns.aliveNbr {
		ns.aliveNbr[i] = true
	}
	ns.conflict = make([]bool, deg)
	ns.nbrK1 = make([]uint64, deg)
	ns.nbrLen = make([]uint64, deg)
	ns.nbrPsi = make([]uint64, deg)
	ns.nbrCoins = make([]gf2.Coin, deg)
	ns.hNbr = make([]bool, deg)
	ns.nbrColors = make([]uint64, 0, deg)
}

func (ns *nodeState) run() {
	ns.tree = congest.BuildBFSTree(ns.ctx, 0)
	ns.runLinial()
	maxIter := ns.opts.MaxIterations
	for iter := 0; ; iter++ {
		aliveVal := 0.0
		if ns.alive {
			aliveVal = 1
		}
		totals := ns.converge(aliveVal, 0)
		if totals[0] == 0 {
			return
		}
		if maxIter > 0 && iter >= maxIter {
			return
		}
		if ns.alive {
			ns.m.addAlive(iter)
		}
		ns.partialIteration(iter)
	}
}

// runLinial computes ψ: the O(Δ²)-ish input coloring from node IDs in
// len(LinialSched) = O(log* n) rounds.
func (ns *nodeState) runLinial() {
	ns.psi = uint64(ns.ctx.ID())
	for _, st := range ns.p.LinialSched {
		for _, w := range ns.ctx.Neighbors() {
			ns.ctx.Send(int(w), congest.Message{tagLinial, ns.psi})
		}
		nbrColors := ns.nbrColors[:0]
		for _, in := range ns.ctx.Next() {
			mustTag(in, tagLinial)
			nbrColors = append(nbrColors, in.Payload[1])
		}
		next, err := linial.NextColor(ns.psi, nbrColors, st)
		if err != nil {
			panic(fmt.Sprintf("core: Linial step failed at node %d: %v", ns.ctx.ID(), err))
		}
		ns.psi = next
	}
}

// partialIteration runs one invocation of Lemma 2.1: ⌈logC⌉ derandomized
// prefix phases, then the MIS step, permanently coloring ≥ 1/8 of the
// still-uncolored nodes.
func (ns *nodeState) partialIteration(iter int) {
	deg := ns.ctx.Degree()
	// Conflict graph starts as the alive residual graph (empty prefixes).
	aliveDeg := 0
	for i := 0; i < deg; i++ {
		ns.conflict[i] = ns.alive && ns.aliveNbr[i]
		if ns.conflict[i] {
			aliveDeg++
		}
	}
	if ns.alive {
		ns.cands = append(ns.cands[:0], ns.list...)
		ns.m.addPotStart(iter, float64(aliveDeg)/float64(len(ns.cands)))
	} else {
		ns.cands = ns.cands[:0]
	}

	for l := 1; l <= ns.p.LogC; l++ {
		ns.runPhase(iter, l)
	}

	// All bits fixed: the single candidate color and the conflict degree.
	confDeg := 0
	for i := 0; i < deg; i++ {
		if ns.conflict[i] {
			confDeg++
		}
	}
	if ns.alive && len(ns.cands) != 1 {
		panic(fmt.Sprintf("core: node %d has %d candidates after all phases", ns.ctx.ID(), len(ns.cands)))
	}

	// V<4 membership exchange (1 round).
	inV4 := ns.alive && confDeg <= 3
	hNbr := ns.hNbr
	for i := range hNbr {
		hNbr[i] = false
	}
	if ns.alive {
		for i, w := range ns.ctx.Neighbors() {
			if ns.conflict[i] {
				ns.ctx.Send(int(w), congest.Message{tagV4, boolWord(inV4)})
			}
		}
	}
	for _, in := range ns.ctx.Next() {
		mustTag(in, tagV4)
		i := ns.ctx.NeighborIndex(in.From)
		hNbr[i] = inV4 && ns.conflict[i] && in.Payload[1] == 1
	}

	// Linial on the conflict graph H (max degree 3) from ψ, then iterate
	// the color classes to build the MIS.
	hColor := ns.psi
	for _, st := range ns.p.MISSched {
		if inV4 {
			for i, w := range ns.ctx.Neighbors() {
				if hNbr[i] {
					ns.ctx.Send(int(w), congest.Message{tagHLin, hColor})
				}
			}
		}
		nbrColors := ns.nbrColors[:0]
		for _, in := range ns.ctx.Next() {
			mustTag(in, tagHLin)
			if hNbr[ns.ctx.NeighborIndex(in.From)] {
				nbrColors = append(nbrColors, in.Payload[1])
			}
		}
		if inV4 {
			next, err := linial.NextColor(hColor, nbrColors, st)
			if err != nil {
				panic(fmt.Sprintf("core: MIS Linial failed at node %d: %v", ns.ctx.ID(), err))
			}
			hColor = next
		}
	}

	inMIS, blocked := false, false
	for c := uint64(0); c < ns.p.MISK; c++ {
		if inV4 && !blocked && !inMIS && hColor == c {
			inMIS = true
			for i, w := range ns.ctx.Neighbors() {
				if hNbr[i] {
					ns.ctx.Send(int(w), congest.Message{tagMIS})
				}
			}
		}
		for _, in := range ns.ctx.Next() {
			mustTag(in, tagMIS)
			if hNbr[ns.ctx.NeighborIndex(in.From)] {
				blocked = true
			}
		}
	}

	// MIS nodes keep their candidate color permanently and announce it.
	if inMIS {
		ns.color = ns.cands[0]
		ns.colored = true
		ns.alive = false
		ns.m.addColored(iter)
		for _, w := range ns.ctx.Neighbors() {
			ns.ctx.Send(int(w), congest.Message{tagFinal, uint64(ns.color)})
		}
	}
	for _, in := range ns.ctx.Next() {
		mustTag(in, tagFinal)
		i := ns.ctx.NeighborIndex(in.From)
		ns.aliveNbr[i] = false
		if ns.alive {
			ns.list = removeColor(ns.list, uint32(in.Payload[1]))
		}
	}
}

// runPhase fixes the ℓ-th prefix bit of every node deterministically
// (Lemma 2.6): exchange (k1, |L|, ψ) with conflict neighbors, then fix
// the D seed bits one by one — each by one tree aggregation of the two
// conditional expectations — and finally extend prefixes and prune the
// conflict graph.
func (ns *nodeState) runPhase(iter, l int) {
	deg := ns.ctx.Degree()
	bitPos := ns.p.LogC - l
	var k1, k0 int
	if ns.alive {
		k1 = countBitOnes(ns.cands, bitPos)
		k0 = len(ns.cands) - k1
		for i, w := range ns.ctx.Neighbors() {
			if ns.conflict[i] {
				ns.ctx.Send(int(w), congest.Message{tagPhase, uint64(k1), uint64(len(ns.cands)), ns.psi})
			}
		}
	}
	for _, in := range ns.ctx.Next() {
		mustTag(in, tagPhase)
		i := ns.ctx.NeighborIndex(in.From)
		ns.nbrK1[i], ns.nbrLen[i], ns.nbrPsi[i] = in.Payload[1], in.Payload[2], in.Payload[3]
	}

	// Build this node's coin and its conflict neighbors' coins.
	var myCoin gf2.Coin
	nbrCoins := ns.nbrCoins
	if ns.alive {
		var err error
		myCoin, err = gf2.NewCoin(ns.p.Fam, ns.psi, ns.p.B, uint64(k1), uint64(len(ns.cands)))
		if err != nil {
			panic(fmt.Sprintf("core: node %d coin: %v", ns.ctx.ID(), err))
		}
		for i := 0; i < deg; i++ {
			if !ns.conflict[i] {
				continue
			}
			nbrCoins[i], err = gf2.NewCoin(ns.p.Fam, ns.nbrPsi[i], ns.p.B, ns.nbrK1[i], ns.nbrLen[i])
			if err != nil {
				panic(fmt.Sprintf("core: node %d neighbor coin: %v", ns.ctx.ID(), err))
			}
		}
	}

	// Fix the D seed bits by the method of conditional expectations.
	basis := gf2.NewBasis()
	var seed gf2.Vec128
	for j := 0; j < ns.p.D; j++ {
		var x0, x1 float64
		if ns.alive {
			for i, w := range ns.ctx.Neighbors() {
				// Each conflict edge is owned by its smaller endpoint.
				if !ns.conflict[i] || int(w) < ns.ctx.ID() {
					continue
				}
				for _, beta := range []bool{false, true} {
					bs2 := basis.CloneInto(&ns.basisTmp)
					if !bs2.FixBit(j, beta) {
						panic("core: seed bit re-fix inconsistent")
					}
					e := edgeExpectation(bs2, myCoin, nbrCoins[i],
						k1, k0, int(ns.nbrK1[i]), int(ns.nbrLen[i])-int(ns.nbrK1[i]))
					if beta {
						x1 += e
					} else {
						x0 += e
					}
				}
			}
		}
		totals := ns.converge(x0, x1)
		// All nodes see identical totals, so the argmin choice needs no
		// extra broadcast; ties go to 0.
		rj := totals[1] < totals[0]
		if !basis.FixBit(j, rj) {
			panic("core: chosen seed bit inconsistent")
		}
		seed = seed.WithBit(j, rj)
	}

	// Extend prefixes and prune the conflict graph (1 round).
	var myBit bool
	if ns.alive {
		myBit = myCoin.Value(seed)
		ns.cands = filterByBit(ns.cands, bitPos, myBit)
		if len(ns.cands) == 0 {
			panic(fmt.Sprintf("core: node %d candidate list became empty", ns.ctx.ID()))
		}
		for i, w := range ns.ctx.Neighbors() {
			if ns.conflict[i] {
				ns.ctx.Send(int(w), congest.Message{tagBit, boolWord(myBit)})
			}
		}
	}
	confDeg := 0
	for _, in := range ns.ctx.Next() {
		mustTag(in, tagBit)
		i := ns.ctx.NeighborIndex(in.From)
		if ns.conflict[i] {
			ns.conflict[i] = ns.alive && (in.Payload[1] == 1) == myBit
			if ns.conflict[i] {
				confDeg++
			}
		}
	}
	if ns.alive {
		ns.m.addPotPhase(iter, l, float64(confDeg)/float64(len(ns.cands)))
	}
}

// converge aggregates the pair (x0, x1) over all nodes via the BFS tree
// and returns the totals to every node, then resynchronizes the global
// round so that fixed-length segments may follow.
func (ns *nodeState) converge(x0, x1 float64) [2]float64 {
	start := ns.ctx.Round()
	ns.op++
	res := congest.ConvergeSum(ns.ctx, ns.tree, ns.op, []float64{x0, x1})
	congest.SpinUntil(ns.ctx, start+2*ns.tree.Height+6)
	return [2]float64{res[0], res[1]}
}

func mustTag(in congest.Incoming, want uint64) {
	if in.Payload[0] != want {
		panic(fmt.Sprintf("core: unexpected tag %d (want %d) from node %d",
			in.Payload[0], want, in.From))
	}
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
