package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/gf2"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/linial"
)

// Message tags of the coloring protocol (≥ congest.UserTagBase).
const (
	tagLinial uint64 = congest.UserTagBase + iota // [tag, color]
	tagPhase                                      // [tag, k1, |L|, ψ]
	tagBit                                        // [tag, bit]
	tagV4                                         // [tag, inV4]
	tagHLin                                       // [tag, hColor]
	tagMIS                                        // [tag]
	tagFinal                                      // [tag, color]
)

// Result reports the outcome and the measured cost of a run.
type Result struct {
	Colors     []uint32 // proper list coloring, one per node
	Stats      congest.Stats
	Iterations int   // partial-coloring iterations executed
	Colored    []int // nodes permanently colored in each iteration
	AliveAt    []int // uncolored nodes at the start of each iteration
	// PotentialStart[i] is Σ_v Φ₀(v) at the start of iteration i;
	// PotentialPhase[i][ℓ−1] is Σ_v Φ_ℓ(v) after phase ℓ (when
	// Options.TrackPotentials is set).
	PotentialStart []float64
	PotentialPhase [][]float64
	Params         *Params
	Done           bool // all nodes colored (false only with MaxIterations)
}

// metrics collects measurement-only data outside the protocol.
// Potential contributions are stored per node and summed in node order
// at collection: a shared accumulator would add them in goroutine
// completion order, making the reported float sums depend on
// scheduling. Per-node storage keeps the telemetry bit-deterministic
// across runs and worker counts (the differential tests compare it
// bitwise).
//
// The accumulators are striped over contiguous node bands of 2^12
// nodes: node goroutines running on different engine delivery shards
// lock different stripes, so telemetry writes never serialize the
// parallel phase loop on one mutex. Folding iterates the stripes in
// order and each band's nodes ascending — exactly the ascending-node-
// order float sum the single accumulator produced, so the reported
// telemetry stays bit-identical across worker counts.
const metricStripeShift = 12

type metricStripe struct {
	mu       sync.Mutex
	potStart map[int][]float64         // iteration → band-local per-node Φ₀
	potPhase map[int]map[int][]float64 // iteration → phase → band-local Φ_ℓ
	colored  map[int]int
	alive    map[int]int
	_        [4]uint64 // no two stripes' hot words on one cache line
}

type metrics struct {
	n       int
	track   bool
	stripes []metricStripe
}

func newMetrics(track bool, n int) *metrics {
	m := &metrics{n: n, track: track,
		stripes: make([]metricStripe, (n>>metricStripeShift)+1)}
	for i := range m.stripes {
		s := &m.stripes[i]
		s.potStart = map[int][]float64{}
		s.potPhase = map[int]map[int][]float64{}
		s.colored = map[int]int{}
		s.alive = map[int]int{}
	}
	return m
}

// stripe returns node's accumulator band.
func (m *metrics) stripe(node int) *metricStripe {
	return &m.stripes[node>>metricStripeShift]
}

// bandWidth is the node count of stripe si (the last band is short).
func (m *metrics) bandWidth(si int) int {
	w := m.n - si<<metricStripeShift
	if w > 1<<metricStripeShift {
		w = 1 << metricStripeShift
	}
	return w
}

func (m *metrics) addPotStart(iter, node int, phi float64) {
	if !m.track {
		return
	}
	s := m.stripe(node)
	s.mu.Lock()
	if s.potStart[iter] == nil {
		s.potStart[iter] = make([]float64, m.bandWidth(node>>metricStripeShift))
	}
	s.potStart[iter][node&(1<<metricStripeShift-1)] = phi
	s.mu.Unlock()
}

func (m *metrics) addPotPhase(iter, phase, node int, phi float64) {
	if !m.track {
		return
	}
	s := m.stripe(node)
	s.mu.Lock()
	if s.potPhase[iter] == nil {
		s.potPhase[iter] = map[int][]float64{}
	}
	if s.potPhase[iter][phase] == nil {
		s.potPhase[iter][phase] = make([]float64, m.bandWidth(node>>metricStripeShift))
	}
	s.potPhase[iter][phase][node&(1<<metricStripeShift-1)] = phi
	s.mu.Unlock()
}

// sumNodeOrder folds per-node contributions into the running total in
// ascending node order. Callers folding striped storage thread one
// accumulator through every band so the additions happen in exactly
// the order a single n-length slice would produce.
func sumNodeOrder(total float64, vals []float64) float64 {
	for _, v := range vals {
		total += v
	}
	return total
}

func (m *metrics) addColored(iter, node, weight int) {
	s := m.stripe(node)
	s.mu.Lock()
	s.colored[iter] += weight
	s.mu.Unlock()
}

func (m *metrics) addAlive(iter, node, weight int) {
	s := m.stripe(node)
	s.mu.Lock()
	s.alive[iter] += weight
	s.mu.Unlock()
}

// The collection accessors run only after the engine run has completed
// (or before it starts, for restored-run prefills), so they read the
// stripes unlocked, like the single-accumulator reads they replace.

// aliveTotal sums the stripes' alive counts for one iteration; ok
// reports whether any node recorded the iteration at all.
func (m *metrics) aliveTotal(iter int) (total int, ok bool) {
	for i := range m.stripes {
		if a, has := m.stripes[i].alive[iter]; has {
			total += a
			ok = true
		}
	}
	return total, ok
}

func (m *metrics) coloredTotal(iter int) int {
	total := 0
	for i := range m.stripes {
		total += m.stripes[i].colored[iter]
	}
	return total
}

// potStartSum folds iteration iter's Φ₀ contributions: one running
// accumulator over stripes in order, nodes ascending within each — the
// exact ascending-node-order sum of the unstriped slice (absent bands
// skip the same +0 terms their zero entries added, which never changes
// a finite partial sum starting at +0).
func (m *metrics) potStartSum(iter int) float64 {
	total := 0.0
	for i := range m.stripes {
		total = sumNodeOrder(total, m.stripes[i].potStart[iter])
	}
	return total
}

func (m *metrics) potPhaseSum(iter, phase int) float64 {
	total := 0.0
	for i := range m.stripes {
		total = sumNodeOrder(total, m.stripes[i].potPhase[iter][phase])
	}
	return total
}

// dropIter releases a folded iteration's per-node contribution slices.
func (m *metrics) dropIter(iter int) {
	for i := range m.stripes {
		delete(m.stripes[i].potStart, iter)
		delete(m.stripes[i].potPhase, iter)
	}
}

// ListColorCONGEST solves the (degree+1)-list-coloring instance in the
// simulated CONGEST model (Theorem 1.1): an O(log* n)-round Linial
// coloring for symmetry breaking, then partial-coloring iterations
// (Lemma 2.1), each derandomizing ⌈logC⌉ prefix-extension phases with
// seed bits fixed one by one via conditional expectations aggregated over
// a BFS tree, followed by an MIS step on the ≤3-degree conflict graph.
//
// The graph may be disconnected: every connected component runs the
// protocol independently inside the *same* engine run, rooted at its
// smallest member ID (per the remark after Theorem 1.1, the diameter term
// becomes the maximum component diameter). The per-component BFS trees
// keep every converge() aggregation component-local, a component's nodes
// exit as soon as that component is fully colored, and no message ever
// crosses a component boundary — so the reported Stats.Rounds is the
// maximum over components while Messages/Words are sums, exactly the
// parallel-composition accounting of the model. Per-iteration telemetry
// (AliveAt, Colored, potentials) sums components at the same iteration
// index.
//
// Each component also derives its own parameter set from its local
// (n, Δ) — the per-cluster reading of Corollary 1.2 — and seeds its
// Linial coloring from component-local node ranks, so a component runs
// round-for-round exactly as a standalone run of its own 0..k−1-labeled
// instance: batching many components into one engine run never changes
// any component's rounds, messages, or coloring choices. Result.Params
// reports the instance-global set used by single-component runs.
//
// Because a component's entire run is a deterministic function of its
// rank-relabeled adjacency and lists, components that are identical
// under relabeling produce bit-identical runs — so the simulator runs
// ONE representative per identity class and replicates its coloring,
// scaling the telemetry and per-component traffic by the class size.
// The reported Colors/Stats/telemetry are exactly what simulating every
// component would produce (and the final VerifyColoring checks the full
// instance), at a fraction of the wall-clock on workloads with many
// equal components, such as the per-class cluster batches of the
// Corollary 1.2 pipeline.
func ListColorCONGEST(inst *graph.Instance, opts Options) (*Result, error) {
	p, err := ComputeParams(inst, opts)
	if err != nil {
		return nil, err
	}
	if inst.G.N() == 0 {
		return &Result{Params: p, Done: true}, nil
	}
	comps := inst.G.ConnectedComponents()
	groups := groupIdenticalComponents(inst, comps)
	if len(groups) == len(comps) {
		// Every component is distinct: run the instance as given.
		res, _, err := runColoringDomains(inst, opts, p, nil, comps, nil)
		return res, err
	}

	// Deduplicated run: one representative component per identity class,
	// telemetry weighted by class size.
	var repMembers []int
	starts := make([]int, len(groups)) // group -> first reduced node ID
	for gi, g := range groups {
		starts[gi] = len(repMembers)
		repMembers = append(repMembers, comps[g[0]]...)
	}
	sub, orig := inst.G.InducedSubgraph(repMembers)
	subLists := make([][]uint32, sub.N())
	for i, v := range orig {
		subLists[i] = inst.Lists[v]
	}
	weights := make([]int, sub.N())
	multByRoot := make(map[int]int64, len(groups))
	for gi, g := range groups {
		end := len(repMembers)
		if gi+1 < len(groups) {
			end = starts[gi+1]
		}
		for i := starts[gi]; i < end; i++ {
			weights[i] = len(g)
		}
		multByRoot[starts[gi]] = int64(len(g))
	}
	subInst := &graph.Instance{G: sub, C: inst.C, Lists: subLists}
	rep, domStats, err := runColoringDomains(subInst, opts, p, weights, nil, nil)
	if err != nil {
		return nil, err
	}

	// Fold the representative run back onto the full instance: colors by
	// rank, traffic scaled by class size, rounds already the max.
	res := &Result{
		Colors:         make([]uint32, inst.G.N()),
		Stats:          congest.Stats{Rounds: rep.Stats.Rounds, MaxMessageWords: rep.Stats.MaxMessageWords},
		Params:         p,
		Done:           rep.Done,
		Iterations:     rep.Iterations,
		Colored:        rep.Colored,
		AliveAt:        rep.AliveAt,
		PotentialStart: rep.PotentialStart,
		PotentialPhase: rep.PotentialPhase,
	}
	for _, ds := range domStats {
		mult := multByRoot[ds.Root]
		res.Stats.Messages += ds.Stats.Messages * mult
		res.Stats.Words += ds.Stats.Words * mult
	}
	for gi, g := range groups {
		for _, ci := range g {
			comp := comps[ci]
			for i := range comp {
				res.Colors[comp[i]] = rep.Colors[starts[gi]+i]
			}
		}
	}
	if res.Done {
		if err := inst.VerifyColoring(res.Colors); err != nil {
			return nil, fmt.Errorf("core: replicated coloring failed verification: %w", err)
		}
	}
	return res, nil
}

// groupIdenticalComponents partitions the component indices into
// identity classes: two components are identical when their
// rank-relabeled adjacency and per-rank color lists are byte-equal
// (list-coloring runs are deterministic functions of exactly that data,
// plus the shared C and options). Grouping is by exact signature bytes
// — no hashing, no collisions. Each class lists its component indices
// ascending; classes are ordered by first appearance.
func groupIdenticalComponents(inst *graph.Instance, comps [][]int) [][]int {
	if len(comps) == 1 {
		return [][]int{{0}}
	}
	index := make(map[string]int, len(comps))
	var groups [][]int
	var sig []byte
	for ci, comp := range comps {
		sig = sig[:0]
		sig = binary.AppendUvarint(sig, uint64(len(comp)))
		for _, v := range comp {
			list := inst.Lists[v]
			sig = binary.AppendUvarint(sig, uint64(len(list)))
			for _, c := range list {
				sig = binary.AppendUvarint(sig, uint64(c))
			}
			nbrs := inst.G.Neighbors(v)
			sig = binary.AppendUvarint(sig, uint64(len(nbrs)))
			for _, w := range nbrs {
				// comp is sorted, so the index is the neighbor's rank.
				sig = binary.AppendUvarint(sig, uint64(sort.SearchInts(comp, int(w))))
			}
		}
		if gi, ok := index[string(sig)]; ok {
			groups[gi] = append(groups[gi], ci)
		} else {
			index[string(sig)] = len(groups)
			groups = append(groups, []int{ci})
		}
	}
	return groups
}

// runColoringDomains executes the protocol on inst (connected or not)
// and assembles the Result together with the per-component engine
// stats. weights[v], when non-nil, scales node v's telemetry
// contributions (the multiplicity of the identity class its component
// represents); a non-nil weights slice also forces per-component
// parameter sets even for a single-component instance, since the
// instance then stands for components of a larger original. comps, when
// non-nil, is inst.G.ConnectedComponents() precomputed by the caller.
// ckr, when non-nil, attaches checkpoint collection and/or restores the
// run from decoded per-node checkpoint state (see checkpoint.go);
// restored runs are incompatible with telemetry weighting.
func runColoringDomains(inst *graph.Instance, opts Options, p *Params, weights []int, comps [][]int, ckr *ckRun) (*Result, []congest.DomainStats, error) {
	// Per-component BFS roots (the smallest member), component-local
	// ranks, and component parameter sets. Every node can derive all
	// three locally in O(D) rounds by a leader-election flood plus local
	// aggregates, so handing them to the programs charges no rounds. The
	// rank seeds the Linial input coloring (ranks are distinct within a
	// component, which is all Linial needs).
	if comps == nil {
		comps = inst.G.ConnectedComponents()
	}
	roots := make([]int32, inst.G.N())
	ranks := make([]uint64, inst.G.N())
	params := make([]*Params, inst.G.N())
	perComp := len(comps) > 1 || weights != nil
	for _, comp := range comps {
		cp := p
		if perComp {
			delta := 0
			for _, v := range comp {
				if d := inst.G.Degree(v); d > delta {
					delta = d
				}
			}
			var err error
			cp, err = computeParamsFor(len(comp), delta, inst.C, opts)
			if err != nil {
				return nil, nil, err
			}
		}
		for i, v := range comp {
			roots[v] = int32(comp[0])
			ranks[v] = uint64(i)
			params[v] = cp
		}
	}

	// One phase hub per component: the bulk seed-bit aggregation seam
	// (bulk.go). opts.noBulk keeps the per-node converge loop instead
	// (the differential tests pin the two paths bit-identical).
	var hubs map[int]*phaseHub
	if !opts.noBulk {
		hubs = make(map[int]*phaseHub, len(comps))
		for _, comp := range comps {
			hubs[comp[0]] = newPhaseHub(len(comp), params[comp[0]])
		}
	}

	m := newMetrics(opts.TrackPotentials, inst.G.N())
	colors := make([]uint32, inst.G.N())
	coloredFlag := make([]bool, inst.G.N())
	ar := newRunArenas(inst, opts.Workers)
	var mu sync.Mutex

	cfg := congest.Config{MaxWords: opts.MaxWords, MaxRounds: opts.MaxRounds, Workers: opts.Workers}
	var restore []*nodeRestore
	if ckr != nil {
		cfg.Checkpoint = ckr.ck
		cfg.Resume = ckr.snap
		restore = ckr.restore
		if restore != nil {
			if weights != nil {
				return nil, nil, fmt.Errorf("core: cannot resume a telemetry-weighted run")
			}
			// Nodes already done in the snapshot never rerun; restored
			// nodes replay their past iterations into the metrics, and
			// done nodes contribute their recorded colors directly.
			prefillRestored(m, colors, coloredFlag, restore)
		}
	}
	stats, domStats, err := congest.RunWithDomains(inst.G, cfg, func(ctx *congest.Ctx) {
		w := 1
		if weights != nil {
			w = weights[ctx.ID()]
		}
		ns := &nodeState{ctx: ctx, p: params[ctx.ID()], opts: opts, m: m,
			root: int(roots[ctx.ID()]), rank: ranks[ctx.ID()], weight: w}
		if hubs != nil {
			ns.hub = hubs[ns.root]
			ns.rankOf = ranks
		}
		ns.init(inst, ar)
		if restore != nil && restore[ctx.ID()] != nil {
			rs := restore[ctx.ID()]
			ns.applyRestore(rs)
			ns.loop(rs.iter)
		} else {
			ns.run()
		}
		mu.Lock()
		colors[ctx.ID()] = ns.color
		coloredFlag[ctx.ID()] = ns.colored
		mu.Unlock()
	})
	if err != nil {
		return nil, nil, err
	}

	res := &Result{Colors: colors, Stats: *stats, Params: p, Done: true}
	for _, ok := range coloredFlag {
		if !ok {
			res.Done = false
			break
		}
	}
	for iter := 0; ; iter++ {
		a, ok := m.aliveTotal(iter)
		if !ok {
			break
		}
		res.Iterations++
		res.AliveAt = append(res.AliveAt, a)
		res.Colored = append(res.Colored, m.coloredTotal(iter))
		if opts.TrackPotentials {
			res.PotentialStart = append(res.PotentialStart, m.potStartSum(iter))
			phases := make([]float64, p.LogC)
			for l := 1; l <= p.LogC; l++ {
				phases[l-1] = m.potPhaseSum(iter, l)
			}
			res.PotentialPhase = append(res.PotentialPhase, phases)
			// Folded: release the per-node contribution slices so tracked
			// runs hold at most the iterations not yet collected.
			m.dropIter(iter)
		}
	}
	if res.Done && weights == nil {
		if err := inst.VerifyColoring(colors); err != nil {
			return nil, nil, fmt.Errorf("core: produced coloring failed verification: %w", err)
		}
	}
	return res, domStats, nil
}

// nodeState is the per-node protocol state.
type nodeState struct {
	ctx    *congest.Ctx
	p      *Params
	opts   Options
	m      *metrics
	root   int    // BFS root of this node's connected component
	rank   uint64 // rank within the component (sorted order); seeds Linial
	weight int    // telemetry multiplier: how many identical components this node's component stands for

	tree *congest.Tree
	op   uint64

	psi       uint64   // Linial input color in [K]
	list      []uint32 // remaining allowed colors
	color     uint32
	colored   bool
	alive     bool
	coloredAt int // iteration that colored this node; −1 while uncolored

	aliveNbr []bool // by neighbor index: neighbor still uncolored

	// Per-iteration state.
	cands    []uint32
	conflict []bool // by neighbor index: same prefix, both alive
	nbrK1    []uint64
	nbrLen   []uint64
	nbrPsi   []uint64

	// Reused scratch: these are rewritten every iteration/phase, and
	// keeping them on the node state (instead of allocating per use)
	// removes the dominant steady-state allocations of a run.
	nbrCoins  []gf2.Coin
	hNbr      []bool
	nbrColors []uint64
	basisTmp  gf2.Basis

	// Derandomization hot-path caches. The coin *forms* of a node depend
	// only on (ψ, B), both fixed for the whole run once Linial finishes,
	// so each node materializes its own and every conflict neighbor's
	// hash-output forms once and reuses them every phase — only the coin
	// thresholds change per phase. The caches are keyed by the ψ value
	// actually used, so a changed ψ would rebuild rather than miscompute.
	myForms     []gf2.Form
	myFormsPsi  uint64
	myFormsOK   bool
	nbrForms    [][]gf2.Form
	nbrFormsPsi []uint64
	nbrFormsOK  []bool

	phaseBasis gf2.Basis  // reused seed-bit basis (one Reset per phase)
	convVec    [2]float64 // reused aggregation input vector
	ownedIdx   []int32    // neighbor indexes of owned conflict edges (rebuilt per phase)
	memoStripe int        // this node's marginal-memo stripe (margStripeFor)

	// Bulk-aggregation seam (bulk.go): the component's phase hub and the
	// shared node→rank table its fold schedule is built from. nil/unset
	// with opts.noBulk, which keeps the per-node converge loop.
	hub    *phaseHub
	rankOf []uint64

	// Phase-scoped inputs of the seed-bit loop, stored so the hub can
	// evaluate this node's edges centrally: this node's bit-split counts
	// and bound coin (runPhase prologue).
	phK1, phK0 int
	phMyCoin   gf2.Coin

	// Bit-sliced residual sheets over the owned conflict edges
	// (gf2.FormSheet): each sheet packs this node's coin forms plus as
	// many neighbor coins as fit its 64 lanes, is folded incrementally
	// as seed bits are chosen, and feeds the block kernels. Rebuilt per
	// phase (the storage is reused); sheetOK gates the batched path —
	// when false (wide masks, B too large for a lane pair, D > 64) the
	// loop falls back to the scalar kernels edge by edge.
	sheets   []*gf2.FormSheet
	sheetN   int
	sheetOK  bool
	edgeBlk  []edgeBlock  // per owned edge: sheet index and lane groups
	pvBuf    [][2]float64 // per owned edge: neighbor marginal pair this bit
	pendBuf  []int32      // owned-edge positions whose marginal missed the memo
	pairBuf  []gf2.ProbPair
	blockReq []gf2.BlockCoin

	// msgArena holds the reusable outgoing payload buffers, 4 words (the
	// bandwidth cap) per neighbor, two arenas alternating by round
	// parity: a payload written in round r is read by its receiver
	// during round r+1 — possibly while the sender is already writing
	// its round-r+1 messages — so consecutive rounds must not share
	// buffers. With two arenas a buffer is rewritten no earlier than
	// round r+2, by when the engine's barrier ordering guarantees the
	// round-r+1 read has happened-before the write.
	msgArena [2][]uint64
}

// edgeBlock locates one owned conflict edge's coins on this node's
// residual sheets: both endpoints' form groups live on the same sheet,
// so one gather serves the marginal and the joint walks.
type edgeBlock struct {
	sheet  int32
	cu, cv gf2.BlockCoin
}

// msgBuf returns the empty reusable payload buffer for neighbor index i
// in the current round (append up to 4 words, then Send).
func (ns *nodeState) msgBuf(i int) congest.Message {
	a := ns.msgArena[ns.ctx.Round()&1]
	return a[4*i : 4*i : 4*i+4]
}

// ownForms returns this node's cached hash-output forms for ψ.
func (ns *nodeState) ownForms() []gf2.Form {
	if !ns.myFormsOK || ns.myFormsPsi != ns.psi {
		ns.myForms = ns.p.Fam.OutputFormsInto(ns.psi, ns.p.B, ns.myForms)
		ns.myFormsPsi, ns.myFormsOK = ns.psi, true
	}
	return ns.myForms
}

// neighborForms returns the cached hash-output forms of neighbor index i
// with input color psi.
func (ns *nodeState) neighborForms(i int, psi uint64) []gf2.Form {
	if !ns.nbrFormsOK[i] || ns.nbrFormsPsi[i] != psi {
		ns.nbrForms[i] = ns.p.Fam.OutputFormsInto(psi, ns.p.B, ns.nbrForms[i])
		ns.nbrFormsPsi[i], ns.nbrFormsOK[i] = psi, true
	}
	return ns.nbrForms[i]
}

// runArenas holds one run's per-edge node state in flat arrays carved
// per node: node v's share of every array is the range
// [off[v], off[v+1]) — so a run makes one allocation per kind of state
// instead of one per node, and a node's conflict walks touch memory
// contiguous in its edge IDs. Each node writes only its own carved
// range, so sharing the arrays across the engine's node goroutines is
// race-free. The list/cands arrays use their own offsets (per-node
// color lists are deg+1+slack long, not deg).
type runArenas struct {
	// off is the per-node carve offset table: the graph's CSR arc
	// offsets, shifted by a cache-line-sized gap at every engine
	// delivery-shard boundary so that two shards' node states never
	// share a line (newRunArenas).
	off []int32

	aliveNbr []bool // by edge ID: neighbor still uncolored
	conflict []bool // by edge ID: same prefix, both alive
	hNbr     []bool // by edge ID: conflict-graph neighbor in V<4
	formsOK  []bool // by edge ID: neighbor forms cache valid

	nbrK1    []uint64 // by edge ID: neighbor's k1 this phase
	nbrLen   []uint64 // by edge ID: neighbor's |L| this phase
	nbrPsi   []uint64 // by edge ID: neighbor's ψ
	formsPsi []uint64 // by edge ID: ψ the forms cache was built for

	coins     []gf2.Coin   // by edge ID: neighbor coin scratch
	forms     [][]gf2.Form // by edge ID: cached neighbor output forms
	nbrColors []uint64     // cap-deg scratch per node (Linial rounds)
	owned     []int32      // cap-deg per node: owned conflict edge list
	msg       [2][]uint64  // 4 words per edge ID, two round-parity arenas

	listOff []int32  // per-node offsets into lists/cands
	lists   []uint32 // remaining allowed colors, carved per node
	cands   []uint32 // candidate scratch, carved per node
}

// newRunArenas sizes the arenas by the instance's full arc space. That
// trades the engine's per-domain laziness for one allocation per kind
// of state: a multi-domain run holds Θ(instance) arena memory for its
// whole duration instead of Θ(in-flight domains). The trade is
// deliberate — the batched Corollary 1.2 pipeline hands this function
// one color class's induced subgraph at a time (never the whole input
// graph), so the bound stays proportional to a class, and within a
// class the arenas replace tens of per-node allocations per node.
func newRunArenas(inst *graph.Instance, workers int) *runArenas {
	g := inst.G
	csrOff, _ := g.CSR()
	// Pad the carve offsets: insert a 64-element gap (≥ one cache line
	// for every element width in the arenas) wherever the engine's
	// delivery-shard sizing would cut the node range, so the workers'
	// per-node writes land on disjoint lines. The cut positions assume
	// the engine's contiguous i·n/S shard bounds over the whole node
	// range — exact for single-component instances (the million-node
	// tier); multi-component runs still get gaps of the right density.
	// Padding shifts carve offsets only: every per-node slice is the
	// same length at every worker count, so results are unaffected.
	off := csrOff
	if s := congest.DeliveryShards(g.N(), workers); s > 1 {
		const padArcs = 64
		n := g.N()
		off = make([]int32, n+1)
		pads, cut := int32(0), 1
		for v := 0; v <= n; v++ {
			for cut < s && v == cut*n/s {
				pads += padArcs
				cut++
			}
			off[v] = csrOff[v] + pads
		}
	}
	arcs := int(off[g.N()])
	ar := &runArenas{
		off:       off,
		aliveNbr:  make([]bool, arcs),
		conflict:  make([]bool, arcs),
		hNbr:      make([]bool, arcs),
		formsOK:   make([]bool, arcs),
		nbrK1:     make([]uint64, arcs),
		nbrLen:    make([]uint64, arcs),
		nbrPsi:    make([]uint64, arcs),
		formsPsi:  make([]uint64, arcs),
		coins:     make([]gf2.Coin, arcs),
		forms:     make([][]gf2.Form, arcs),
		nbrColors: make([]uint64, arcs),
		owned:     make([]int32, arcs),
		listOff:   make([]int32, g.N()+1),
		msg:       [2][]uint64{make([]uint64, 4*arcs), make([]uint64, 4*arcs)},
	}
	for v := 0; v < g.N(); v++ {
		ar.listOff[v+1] = ar.listOff[v] + int32(len(inst.Lists[v]))
	}
	ar.lists = make([]uint32, ar.listOff[g.N()])
	ar.cands = make([]uint32, ar.listOff[g.N()])
	return ar
}

func (ns *nodeState) init(inst *graph.Instance, ar *runArenas) {
	v := ns.ctx.ID()
	// Widen before any arithmetic: 4*lo in the msg-arena carve would
	// wrap int32 from 2^29 arcs on, far inside the layout's 2^31-1 cap.
	// The carve is [off[v], off[v]+deg), not [off[v], off[v+1]): any
	// shard-boundary pad between v and v+1 stays in the gap between the
	// two carves instead of inflating v's apparent degree.
	lo := int(ar.off[v])
	hi := lo + inst.G.Degree(v)
	ns.alive = true
	ns.coloredAt = -1
	ns.memoStripe = margStripeFor(v, inst.G.N())
	ns.aliveNbr = ar.aliveNbr[lo:hi:hi]
	for i := range ns.aliveNbr {
		ns.aliveNbr[i] = true
	}
	ns.conflict = ar.conflict[lo:hi:hi]
	ns.nbrK1 = ar.nbrK1[lo:hi:hi]
	ns.nbrLen = ar.nbrLen[lo:hi:hi]
	ns.nbrPsi = ar.nbrPsi[lo:hi:hi]
	ns.nbrCoins = ar.coins[lo:hi:hi]
	ns.hNbr = ar.hNbr[lo:hi:hi]
	ns.nbrColors = ar.nbrColors[lo:lo:hi]
	ns.nbrForms = ar.forms[lo:hi:hi]
	ns.nbrFormsPsi = ar.formsPsi[lo:hi:hi]
	ns.nbrFormsOK = ar.formsOK[lo:hi:hi]
	ns.ownedIdx = ar.owned[lo:lo:hi]
	ns.msgArena[0] = ar.msg[0][4*lo : 4*hi : 4*hi]
	ns.msgArena[1] = ar.msg[1][4*lo : 4*hi : 4*hi]
	llo, lhi := int(ar.listOff[v]), int(ar.listOff[v+1])
	ns.list = ar.lists[llo:lhi:lhi]
	copy(ns.list, inst.Lists[v])
	ns.cands = ar.cands[llo:llo:lhi]
}

func (ns *nodeState) run() {
	ns.tree = congest.BuildBFSTree(ns.ctx, ns.root)
	ns.runLinial()
	ns.loop(0)
}

// loop runs the partial-coloring iterations from startIter (> 0 only on
// a resumed node, whose tree, ψ, and list state were restored from a
// checkpoint blob instead of re-running the build and Linial segments).
//
// The loop top is the protocol's commit barrier: every segment between
// two tops (the alive-count aggregation, the ⌈logC⌉ phases, the MIS
// step, the announce round) is the same length for every node of a
// component, so all nodes of a domain reach the top in the same engine
// round, which is exactly what the engine needs to assemble the
// committed blobs plus the queued backlog into a consistent cut.
func (ns *nodeState) loop(startIter int) {
	maxIter := ns.opts.MaxIterations
	for iter := startIter; ; iter++ {
		if ns.opts.crashIter > 0 && iter+1 == ns.opts.crashIter && ns.ctx.ID() == ns.opts.crashNode {
			panic(fmt.Sprintf("core: injected crash at node %d, iteration %d", ns.ctx.ID(), iter))
		}
		if ns.ctx.CheckpointEnabled() {
			ns.ctx.Commit(ns.commitBlob(iter))
		}
		aliveVal := 0.0
		if ns.alive {
			aliveVal = 1
		}
		totals := ns.converge(aliveVal, 0)
		if totals[0] == 0 {
			ns.commitDone(iter)
			return
		}
		if maxIter > 0 && iter >= maxIter {
			ns.commitDone(iter)
			return
		}
		if ns.alive {
			ns.m.addAlive(iter, ns.ctx.ID(), ns.weight)
		}
		ns.partialIteration(iter)
	}
}

// commitDone records the node's terminal state. The exit conditions
// (component-wide alive total, shared iteration cap) are evaluated
// identically by every node of a component, so a whole domain finishes
// in the same round and its final cut carries only done nodes.
func (ns *nodeState) commitDone(iter int) {
	if ns.ctx.CheckpointEnabled() {
		ns.ctx.CommitFinal(ns.commitBlob(iter))
	}
}

// runLinial computes ψ: the O(Δ²)-ish input coloring from the
// component-local node ranks in len(LinialSched) = O(log* n) rounds.
func (ns *nodeState) runLinial() {
	ns.psi = ns.rank
	for _, st := range ns.p.LinialSched {
		for i, w := range ns.ctx.Neighbors() {
			ns.ctx.Send(int(w), append(ns.msgBuf(i), tagLinial, ns.psi))
		}
		nbrColors := ns.nbrColors[:0]
		for _, in := range ns.ctx.Next() {
			mustTag(in, tagLinial)
			nbrColors = append(nbrColors, in.Payload[1])
		}
		next, err := linial.NextColor(ns.psi, nbrColors, st)
		if err != nil {
			panic(fmt.Sprintf("core: Linial step failed at node %d: %v", ns.ctx.ID(), err))
		}
		ns.psi = next
	}
}

// partialIteration runs one invocation of Lemma 2.1: ⌈logC⌉ derandomized
// prefix phases, then the MIS step, permanently coloring ≥ 1/8 of the
// still-uncolored nodes.
func (ns *nodeState) partialIteration(iter int) {
	deg := ns.ctx.Degree()
	// Conflict graph starts as the alive residual graph (empty prefixes).
	aliveDeg := 0
	for i := 0; i < deg; i++ {
		ns.conflict[i] = ns.alive && ns.aliveNbr[i]
		if ns.conflict[i] {
			aliveDeg++
		}
	}
	if ns.alive {
		ns.cands = append(ns.cands[:0], ns.list...)
		ns.m.addPotStart(iter, ns.ctx.ID(), float64(ns.weight)*float64(aliveDeg)/float64(len(ns.cands)))
	} else {
		ns.cands = ns.cands[:0]
	}

	for l := 1; l <= ns.p.LogC; l++ {
		if ns.opts.refEval {
			ns.runPhaseRef(iter, l)
		} else {
			ns.runPhase(iter, l)
		}
	}

	// All bits fixed: the single candidate color and the conflict degree.
	confDeg := 0
	for i := 0; i < deg; i++ {
		if ns.conflict[i] {
			confDeg++
		}
	}
	if ns.alive && len(ns.cands) != 1 {
		panic(fmt.Sprintf("core: node %d has %d candidates after all phases", ns.ctx.ID(), len(ns.cands)))
	}

	// V<4 membership exchange (1 round).
	inV4 := ns.alive && confDeg <= 3
	hNbr := ns.hNbr
	for i := range hNbr {
		hNbr[i] = false
	}
	if ns.alive {
		for i, w := range ns.ctx.Neighbors() {
			if ns.conflict[i] {
				ns.ctx.Send(int(w), append(ns.msgBuf(i), tagV4, boolWord(inV4)))
			}
		}
	}
	for _, in := range ns.ctx.Next() {
		mustTag(in, tagV4)
		i := ns.ctx.NeighborIndex(in.From)
		hNbr[i] = inV4 && ns.conflict[i] && in.Payload[1] == 1
	}

	// Linial on the conflict graph H (max degree 3) from ψ, then iterate
	// the color classes to build the MIS. Nodes outside V<4 neither send
	// nor receive anywhere in this fixed-length segment (every H-edge has
	// both endpoints in V<4), so they sleep through it in one skip; the
	// segment length is the same for everyone, so lockstep is preserved.
	if !inV4 {
		congest.SpinUntil(ns.ctx, ns.ctx.Round()+len(ns.p.MISSched)+int(ns.p.MISK))
		ns.finishIteration(iter, false)
		return
	}
	hColor := ns.psi
	for _, st := range ns.p.MISSched {
		if inV4 {
			for i, w := range ns.ctx.Neighbors() {
				if hNbr[i] {
					ns.ctx.Send(int(w), append(ns.msgBuf(i), tagHLin, hColor))
				}
			}
		}
		nbrColors := ns.nbrColors[:0]
		for _, in := range ns.ctx.Next() {
			mustTag(in, tagHLin)
			if hNbr[ns.ctx.NeighborIndex(in.From)] {
				nbrColors = append(nbrColors, in.Payload[1])
			}
		}
		if inV4 {
			next, err := linial.NextColor(hColor, nbrColors, st)
			if err != nil {
				panic(fmt.Sprintf("core: MIS Linial failed at node %d: %v", ns.ctx.ID(), err))
			}
			hColor = next
		}
	}

	inMIS, blocked := false, false
	for c := uint64(0); c < ns.p.MISK; c++ {
		if inV4 && !blocked && !inMIS && hColor == c {
			inMIS = true
			for i, w := range ns.ctx.Neighbors() {
				if hNbr[i] {
					ns.ctx.Send(int(w), append(ns.msgBuf(i), tagMIS))
				}
			}
		}
		for _, in := range ns.ctx.Next() {
			mustTag(in, tagMIS)
			if hNbr[ns.ctx.NeighborIndex(in.From)] {
				blocked = true
			}
		}
	}

	ns.finishIteration(iter, inMIS)
}

// finishIteration is the iteration's final announce round: MIS nodes
// keep their candidate color permanently and announce it; everyone
// prunes announced colors and neighbor liveness.
func (ns *nodeState) finishIteration(iter int, inMIS bool) {
	if inMIS {
		ns.color = ns.cands[0]
		ns.colored = true
		ns.alive = false
		ns.coloredAt = iter
		ns.m.addColored(iter, ns.ctx.ID(), ns.weight)
		for i, w := range ns.ctx.Neighbors() {
			ns.ctx.Send(int(w), append(ns.msgBuf(i), tagFinal, uint64(ns.color)))
		}
	}
	for _, in := range ns.ctx.Next() {
		mustTag(in, tagFinal)
		i := ns.ctx.NeighborIndex(in.From)
		ns.aliveNbr[i] = false
		if ns.alive {
			ns.list = removeColor(ns.list, uint32(in.Payload[1]))
		}
	}
}

// runPhase fixes the ℓ-th prefix bit of every node deterministically
// (Lemma 2.6): exchange (k1, |L|, ψ) with conflict neighbors, then fix
// the D seed bits one by one — each by one tree aggregation of the two
// conditional expectations — and finally extend prefixes and prune the
// conflict graph.
//
// This is the derandomization hot path, restructured for the steady
// state: coin forms come from the per-run caches (only thresholds change
// per phase), the seed-bit basis contains nothing but fixed bits — which
// the gf2.Basis representation folds in O(1) instead of one elimination
// row per already-fixed bit — both β branches of an edge are evaluated
// back-to-back against that incrementally maintained basis, and every
// buffer (payloads, aggregation vector, basis storage) is reused, so a
// phase allocates nothing once the caches are warm. runPhaseRef keeps
// the pre-optimization evaluation path; the two must produce
// bit-identical seeds, potentials, and traffic.
func (ns *nodeState) runPhase(iter, l int) {
	deg := ns.ctx.Degree()
	bitPos := ns.p.LogC - l
	var k1, k0 int
	if ns.alive {
		k1 = countBitOnes(ns.cands, bitPos)
		k0 = len(ns.cands) - k1
		for i, w := range ns.ctx.Neighbors() {
			if ns.conflict[i] {
				ns.ctx.Send(int(w), append(ns.msgBuf(i), tagPhase, uint64(k1), uint64(len(ns.cands)), ns.psi))
			}
		}
	}
	for _, in := range ns.ctx.Next() {
		mustTag(in, tagPhase)
		i := ns.ctx.NeighborIndex(in.From)
		ns.nbrK1[i], ns.nbrLen[i], ns.nbrPsi[i] = in.Payload[1], in.Payload[2], in.Payload[3]
	}

	// Bind this node's and the conflict neighbors' cached forms to this
	// phase's thresholds.
	var myCoin gf2.Coin
	nbrCoins := ns.nbrCoins
	if ns.alive {
		var err error
		myCoin, err = gf2.NewCoinFromForms(ns.ownForms(), uint64(k1), uint64(len(ns.cands)))
		if err != nil {
			panic(fmt.Sprintf("core: node %d coin: %v", ns.ctx.ID(), err))
		}
		for i := 0; i < deg; i++ {
			if !ns.conflict[i] {
				continue
			}
			nbrCoins[i], err = gf2.NewCoinFromForms(ns.neighborForms(i, ns.nbrPsi[i]), ns.nbrK1[i], ns.nbrLen[i])
			if err != nil {
				panic(fmt.Sprintf("core: node %d neighbor coin: %v", ns.ctx.ID(), err))
			}
		}
	}

	// Owned conflict edges (each edge is owned by its smaller endpoint);
	// the conflict set is fixed for the whole phase, so the seed-bit loop
	// iterates this list instead of rescanning the full neighbor set D
	// times.
	ns.ownedIdx = ns.ownedIdx[:0]
	if ns.alive {
		for i, w := range ns.ctx.Neighbors() {
			if ns.conflict[i] && int(w) > ns.ctx.ID() {
				ns.ownedIdx = append(ns.ownedIdx, int32(i))
			}
		}
	}

	// Stash the seed-bit loop's inputs and lay the owned edges' form
	// residuals out as incrementally folded sheets (the bit-sliced block
	// path; evalPhaseBit falls back to the scalar kernels when the
	// layout doesn't apply).
	ns.phK1, ns.phK0, ns.phMyCoin = k1, k0, myCoin
	ns.buildSheets(myCoin)

	if ns.hub != nil {
		// Bulk path: the hub runs the whole seed-bit segment centrally
		// and returns the component's seed (bulk.go).
		seed := ns.runPhaseBulk()
		ns.finishPhase(iter, l, bitPos, myCoin, seed)
		return
	}

	// Per-node path: fix the D seed bits by the method of conditional
	// expectations, one tree aggregation per bit.
	basis := &ns.phaseBasis
	basis.Reset()
	var seed gf2.Vec128
	var prefix uint64
	for j := 0; j < ns.p.D; j++ {
		var x0, x1 float64
		if ns.alive {
			// One symbolic conditioning on seed bit j serves every owned
			// edge and both β branches: the basis holds only the already
			// chosen bits 0..j−1, so bit j is always free to split. The
			// clone-and-FixBit fallback keeps the evaluation total if that
			// ever stopped holding.
			sb, split := basis.Split(j)
			x0, x1 = ns.evalPhaseBit(j, basis, sb, split, prefix)
			if split {
				sb.Release()
			}
		}
		totals := ns.converge(x0, x1)
		// All nodes see identical totals, so the argmin choice needs no
		// extra broadcast; ties go to 0.
		rj := totals[1] < totals[0]
		if !basis.FixBit(j, rj) {
			panic("core: chosen seed bit inconsistent")
		}
		ns.foldSheets(j, rj)
		seed = seed.WithBit(j, rj)
		if rj && j < 64 {
			prefix |= uint64(1) << j
		}
	}

	ns.finishPhase(iter, l, bitPos, myCoin, seed)
}

// buildSheets lays this phase's owned-edge coin forms out on residual
// sheets: each sheet carries this node's form group once plus as many
// neighbor groups as fit, in owned-edge order, so a pending-marginal
// batch is a contiguous run per sheet. Any group that cannot lie on a
// sheet (wide masks, B > 32) clears sheetOK and the whole node falls
// back to the scalar kernels — never a mixed layout, which keeps the
// fallback decision identical across bits.
func (ns *nodeState) buildSheets(myCoin gf2.Coin) {
	ns.sheetN = 0
	ns.edgeBlk = ns.edgeBlk[:0]
	// The batched path mirrors the memoable scalar path, so it shares
	// its gate: the chosen prefix must fit one memo key word.
	ns.sheetOK = ns.p.D <= 64 && ns.alive && len(ns.ownedIdx) > 0
	if !ns.sheetOK {
		return
	}
	myForms := ns.ownForms()
	var cur *gf2.FormSheet
	var cu gf2.BlockCoin
	for _, i := range ns.ownedIdx {
		fv := ns.neighborForms(int(i), ns.nbrPsi[i])
		if cur == nil || cur.Free() < len(fv) {
			cur = ns.nextSheet()
			lane, ok := cur.AddForms(myForms)
			if !ok {
				ns.sheetOK, ns.sheetN = false, 0
				return
			}
			cu = gf2.BlockCoin{Lane: lane, B: myCoin.Bits(), T: myCoin.Threshold()}
		}
		lane, ok := cur.AddForms(fv)
		if !ok {
			ns.sheetOK, ns.sheetN = false, 0
			return
		}
		cv := ns.nbrCoins[i]
		ns.edgeBlk = append(ns.edgeBlk, edgeBlock{
			sheet: int32(ns.sheetN - 1),
			cu:    cu,
			cv:    gf2.BlockCoin{Lane: lane, B: cv.Bits(), T: cv.Threshold()},
		})
	}
	for k := 0; k < ns.sheetN; k++ {
		ns.sheets[k].Seal()
	}
	n := len(ns.ownedIdx)
	if cap(ns.pvBuf) < n {
		ns.pvBuf = make([][2]float64, n)
		ns.pendBuf = make([]int32, 0, n)
		ns.pairBuf = make([]gf2.ProbPair, n)
		ns.blockReq = make([]gf2.BlockCoin, 0, n)
	}
	ns.pvBuf = ns.pvBuf[:n]
}

// nextSheet returns the next reusable sheet, reset.
func (ns *nodeState) nextSheet() *gf2.FormSheet {
	if ns.sheetN == len(ns.sheets) {
		ns.sheets = append(ns.sheets, new(gf2.FormSheet))
	}
	s := ns.sheets[ns.sheetN]
	s.Reset()
	ns.sheetN++
	return s
}

// foldSheets folds the chosen value of seed bit j into every residual
// sheet — the per-bit incremental update that lets bit j+1 start from
// current residuals instead of re-reducing each form against the basis.
//sbw:allocfree phase-step kernel: per-seed-bit sheet fold, once per node per bit
func (ns *nodeState) foldSheets(j int, rj bool) {
	for k := 0; k < ns.sheetN; k++ {
		ns.sheets[k].Fix(j, rj)
	}
}

// evalPhaseBit sums this node's owned-edge contributions to the two
// conditional expectations of seed bit j — E[X | bit=0] and E[X | bit=1]
// — accumulated in owned-edge order. sb/split is the caller's symbolic
// conditioning of basis on bit j (the per-node loop splits its own
// basis; the hub splits one shared basis per bit — the same pure
// function of the same fixed-bit history either way).
//
// Three evaluation tiers, outermost first, each bit-identical to the
// next (the differential and fuzz suites pin all of them against
// runPhaseRef): the batched sheet path — memo probe per edge, one
// block call per sheet for the band's pending marginal keys, then the
// joint block kernel per edge; the scalar memoable path; and the
// clone-and-FixBit fallback when the bit isn't free to split.
func (ns *nodeState) evalPhaseBit(j int, basis *gf2.Basis, sb *gf2.SplitBasis, split bool, prefix uint64) (x0, x1 float64) {
	k1, k0 := ns.phK1, ns.phK0
	myCoin := ns.phMyCoin
	memoable := ns.p.D <= 64 // the chosen prefix must fit one memo key word
	if split && ns.sheetOK {
		mk3 := uint64(j) | uint64(ns.p.M)<<8 | uint64(ns.p.B)<<16
		// Probe the memo for every owned edge's neighbor marginal;
		// collect the misses.
		pend := ns.pendBuf[:0]
		for ei, i := range ns.ownedIdx {
			pv0, pv1, ok := margLoad(ns.memoStripe, ns.nbrPsi[i], ns.nbrCoins[i].Threshold(), prefix, mk3)
			if ok {
				ns.pvBuf[ei] = [2]float64{pv0, pv1}
			} else {
				pend = append(pend, int32(ei))
			}
		}
		ns.pendBuf = pend
		// Batch-fill the pending keys, one block call per sheet (edges
		// of one sheet are contiguous in owned order). The computed
		// pairs also land in pvBuf directly: memo entries are evictable,
		// so the values must not be re-probed.
		for s := 0; s < len(pend); {
			e := s
			sh := ns.edgeBlk[pend[s]].sheet
			reqs := ns.blockReq[:0]
			for e < len(pend) && ns.edgeBlk[pend[e]].sheet == sh {
				reqs = append(reqs, ns.edgeBlk[pend[e]].cv)
				e++
			}
			out := ns.pairBuf[:len(reqs)]
			sb.ProbOnePairBlock(ns.sheets[sh], reqs, out)
			for k := s; k < e; k++ {
				ei := pend[k]
				i := ns.ownedIdx[ei]
				pr := out[k-s]
				margStore(ns.memoStripe, ns.nbrPsi[i], ns.nbrCoins[i].Threshold(), prefix, mk3, pr.P0, pr.P1)
				ns.pvBuf[ei] = [2]float64{pr.P0, pr.P1}
			}
			s = e
		}
		// Joint probabilities and the Lemma 2.2 terms, in owned order —
		// the same accumulation order as the scalar path.
		for ei, i := range ns.ownedIdx {
			eb := &ns.edgeBlk[ei]
			pv0, pv1 := ns.pvBuf[ei][0], ns.pvBuf[ei][1]
			p1u0, p110, p1u1, p111 := sb.EdgePairBlock(ns.sheets[eb.sheet], eb.cu, eb.cv, pv0, pv1)
			k1v, k0v := int(ns.nbrK1[i]), int(ns.nbrLen[i])-int(ns.nbrK1[i])
			x0 += edgeCombine(p1u0, pv0, p110, k1, k0, k1v, k0v)
			x1 += edgeCombine(p1u1, pv1, p111, k1, k0, k1v, k0v)
		}
		return x0, x1
	}
	for _, i := range ns.ownedIdx {
		k1v, k0v := int(ns.nbrK1[i]), int(ns.nbrLen[i])-int(ns.nbrK1[i])
		if split && memoable {
			// The neighbor's marginal is shared by every owner
			// evaluating an edge into it at this seed bit; fetch it
			// from the global memo of this pure function (the memo
			// returns the bit-identical value a local walk computes).
			cv := ns.nbrCoins[i]
			mk3 := uint64(j) | uint64(ns.p.M)<<8 | uint64(ns.p.B)<<16
			pv0, pv1, ok := margLoad(ns.memoStripe, ns.nbrPsi[i], cv.Threshold(), prefix, mk3)
			if !ok {
				pv0, pv1 = sb.ProbOnePair(cv)
				margStore(ns.memoStripe, ns.nbrPsi[i], cv.Threshold(), prefix, mk3, pv0, pv1)
			}
			p1u0, p110, p1u1, p111 := sb.EdgePairGivenMarginal(myCoin, cv, pv0, pv1)
			x0 += edgeCombine(p1u0, pv0, p110, k1, k0, k1v, k0v)
			x1 += edgeCombine(p1u1, pv1, p111, k1, k0, k1v, k0v)
			continue
		}
		if split {
			e0, e1 := EdgeExpectationSplit(sb, myCoin, ns.nbrCoins[i], k1, k0, k1v, k0v)
			x0 += e0
			x1 += e1
			continue
		}
		bs2 := basis.CloneInto(&ns.basisTmp)
		if !bs2.FixBit(j, false) {
			panic("core: seed bit re-fix inconsistent")
		}
		x0 += EdgeExpectation(bs2, myCoin, ns.nbrCoins[i], k1, k0, k1v, k0v)
		bs2 = basis.CloneInto(&ns.basisTmp)
		if !bs2.FixBit(j, true) {
			panic("core: seed bit re-fix inconsistent")
		}
		x1 += EdgeExpectation(bs2, myCoin, ns.nbrCoins[i], k1, k0, k1v, k0v)
	}
	return x0, x1
}

// finishPhase extends prefixes and prunes the conflict graph (1 round);
// shared tail of runPhase and runPhaseRef.
func (ns *nodeState) finishPhase(iter, l, bitPos int, myCoin gf2.Coin, seed gf2.Vec128) {
	var myBit bool
	if ns.alive {
		myBit = myCoin.Value(seed)
		ns.cands = filterByBit(ns.cands, bitPos, myBit)
		if len(ns.cands) == 0 {
			panic(fmt.Sprintf("core: node %d candidate list became empty", ns.ctx.ID()))
		}
		for i, w := range ns.ctx.Neighbors() {
			if ns.conflict[i] {
				ns.ctx.Send(int(w), append(ns.msgBuf(i), tagBit, boolWord(myBit)))
			}
		}
	}
	confDeg := 0
	for _, in := range ns.ctx.Next() {
		mustTag(in, tagBit)
		i := ns.ctx.NeighborIndex(in.From)
		if ns.conflict[i] {
			ns.conflict[i] = ns.alive && (in.Payload[1] == 1) == myBit
			if ns.conflict[i] {
				confDeg++
			}
		}
	}
	if ns.alive {
		ns.m.addPotPhase(iter, l, ns.ctx.ID(), float64(ns.weight)*float64(confDeg)/float64(len(ns.cands)))
	}
}

// runPhaseRef is the pre-optimization phase evaluation, kept as the
// differential reference for the hot path: per-phase coin construction
// through Family.OutputForms, a fresh basis whose fixed bits are stored
// as ordinary echelon rows cloned and re-reduced per β branch, and
// allocating sends. TestPhasePotentialsMatchReference pins that runPhase
// reproduces its seeds, potentials, stats, and colors bit for bit.
func (ns *nodeState) runPhaseRef(iter, l int) {
	deg := ns.ctx.Degree()
	bitPos := ns.p.LogC - l
	var k1, k0 int
	if ns.alive {
		k1 = countBitOnes(ns.cands, bitPos)
		k0 = len(ns.cands) - k1
		for i, w := range ns.ctx.Neighbors() {
			if ns.conflict[i] {
				ns.ctx.Send(int(w), congest.Message{tagPhase, uint64(k1), uint64(len(ns.cands)), ns.psi})
			}
		}
	}
	for _, in := range ns.ctx.Next() {
		mustTag(in, tagPhase)
		i := ns.ctx.NeighborIndex(in.From)
		ns.nbrK1[i], ns.nbrLen[i], ns.nbrPsi[i] = in.Payload[1], in.Payload[2], in.Payload[3]
	}

	// Build this node's coin and its conflict neighbors' coins afresh.
	var myCoin gf2.Coin
	nbrCoins := ns.nbrCoins
	if ns.alive {
		var err error
		myCoin, err = gf2.NewCoin(ns.p.Fam, ns.psi, ns.p.B, uint64(k1), uint64(len(ns.cands)))
		if err != nil {
			panic(fmt.Sprintf("core: node %d coin: %v", ns.ctx.ID(), err))
		}
		for i := 0; i < deg; i++ {
			if !ns.conflict[i] {
				continue
			}
			nbrCoins[i], err = gf2.NewCoin(ns.p.Fam, ns.nbrPsi[i], ns.p.B, ns.nbrK1[i], ns.nbrLen[i])
			if err != nil {
				panic(fmt.Sprintf("core: node %d neighbor coin: %v", ns.ctx.ID(), err))
			}
		}
	}

	basis := gf2.NewBasis()
	var seed gf2.Vec128
	for j := 0; j < ns.p.D; j++ {
		var x0, x1 float64
		if ns.alive {
			for i, w := range ns.ctx.Neighbors() {
				if !ns.conflict[i] || int(w) < ns.ctx.ID() {
					continue
				}
				for _, beta := range []bool{false, true} {
					bs2 := basis.Clone()
					if !bs2.FixBit(j, beta) {
						panic("core: seed bit re-fix inconsistent")
					}
					e := EdgeExpectation(bs2, myCoin, nbrCoins[i],
						k1, k0, int(ns.nbrK1[i]), int(ns.nbrLen[i])-int(ns.nbrK1[i]))
					if beta {
						x1 += e
					} else {
						x0 += e
					}
				}
			}
		}
		totals := ns.converge(x0, x1)
		rj := totals[1] < totals[0]
		if !basis.FixBit(j, rj) {
			panic("core: chosen seed bit inconsistent")
		}
		seed = seed.WithBit(j, rj)
	}

	ns.finishPhase(iter, l, bitPos, myCoin, seed)
}

// converge aggregates the pair (x0, x1) over all nodes via the BFS tree
// and returns the totals to every node, then resynchronizes the global
// round so that fixed-length segments may follow.
func (ns *nodeState) converge(x0, x1 float64) [2]float64 {
	start := ns.ctx.Round()
	ns.op++
	// Lockstep contract: every converge starts right after the previous
	// one's SpinUntil (or the synchronized tree build), so the
	// skip-scheduled aggregation applies — nodes sleep through the wave
	// instead of ticking every round.
	ns.convVec[0], ns.convVec[1] = x0, x1
	res := congest.ConvergeSumLockstepTo(ns.ctx, ns.tree, ns.op, ns.convVec[:], start+2*ns.tree.Height+6)
	// Copy before returning: the result buffer lives on the tree.
	return [2]float64{res[0], res[1]}
}

func mustTag(in congest.Incoming, want uint64) {
	if in.Payload[0] != want {
		panic(fmt.Sprintf("core: unexpected tag %d (want %d) from node %d",
			in.Payload[0], want, in.From))
	}
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
