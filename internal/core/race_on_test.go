//go:build race

package core

// raceEnabled reports whether the race detector is active: sync.Pool
// intentionally drops cached objects under -race, so allocation-count
// assertions on pooled hot paths are meaningless there.
const raceEnabled = true
