package core

// Checkpoint/restore for the Theorem 1.1 CONGEST runs.
//
// The engine takes consistent cuts at the round barriers in which every
// node committed its state (internal/engine/checkpoint.go); this file
// defines what a core node commits — a canonical byte blob of its whole
// protocol state at the top of a partial-coloring iteration — and how a
// fresh run restores from such a cut: done nodes are grafted straight
// into the Result, live nodes skip the tree build and Linial segments
// (their outcome is in the blob) and re-enter the iteration loop at the
// recorded iteration and engine round. Because the protocol is
// deterministic, the resumed run reproduces the uninterrupted run's
// colors, Stats, and telemetry bit for bit — the property the
// crash-at-every-round sweep pins.

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/snapshot"
)

// checkpointModel fingerprints the algorithm a checkpoint belongs to; a
// resume refuses blobs from a different protocol.
const checkpointModel = "congest/listcolor/v1"

// Checkpoint bundles everything needed to resume a Theorem 1.1 run:
// the instance, the options it ran under, and the engine's cut.
type Checkpoint struct {
	Inst *graph.Instance
	Opts Options
	Snap *congest.RunSnapshot
}

// ckRun carries checkpoint collection and restore state into
// runColoringDomains.
type ckRun struct {
	ck      *congest.Checkpointer
	snap    *congest.RunSnapshot
	restore []*nodeRestore // by node ID; nil entries start fresh
}

// nodeRestore is one node's decoded checkpoint blob.
type nodeRestore struct {
	iter      int
	done      bool // node finished before the cut (never reruns)
	alive     bool
	colored   bool
	color     uint32
	coloredAt int
	psi       uint64
	op        uint64

	// Spanning-tree view (congest.Tree), flattened. Children are
	// derived from the component's parent pointers on decode.
	parent        int
	depth         int
	height        int
	size          int
	subtreeHeight int
	children      []int

	list     []uint32
	aliveNbr []bool
}

// commitBlob encodes the node's full protocol state at the top of
// iteration iter. The encoding is canonical (fixed field order, delta-
// coded sorted list), so cut bytes are identical across worker counts.
func (ns *nodeState) commitBlob(iter int) []byte {
	var e snapshot.Enc
	e.Uvarint(uint64(iter))
	e.Bool(ns.alive)
	e.Bool(ns.colored)
	e.Uvarint(uint64(ns.color))
	e.Varint(int64(ns.coloredAt))
	e.Uvarint(ns.psi)
	e.Uvarint(ns.op)
	e.Varint(int64(ns.tree.Parent))
	e.Uvarint(uint64(ns.tree.Depth))
	e.Uvarint(uint64(ns.tree.Height))
	e.Uvarint(uint64(ns.tree.Size))
	e.Uvarint(uint64(ns.tree.SubtreeHeight))
	e.Uvarint(uint64(len(ns.list)))
	prev := int64(-1)
	for _, c := range ns.list {
		e.Uvarint(uint64(int64(c) - prev))
		prev = int64(c)
	}
	e.Uvarint(uint64(len(ns.aliveNbr)))
	for _, b := range ns.aliveNbr {
		e.Bool(b)
	}
	return e.Bytes()
}

// applyRestore overwrites the freshly initialized node state with the
// decoded checkpoint state, reconstructing the tree view locally (the
// build protocol already ran before the cut; re-running it would charge
// rounds the original run never paid).
func (ns *nodeState) applyRestore(rs *nodeRestore) {
	ns.alive = rs.alive
	ns.colored = rs.colored
	ns.color = rs.color
	ns.coloredAt = rs.coloredAt
	ns.psi = rs.psi
	ns.op = rs.op
	ns.list = ns.list[:len(rs.list)]
	copy(ns.list, rs.list)
	copy(ns.aliveNbr, rs.aliveNbr)
	ns.tree = &congest.Tree{
		Root:          ns.root,
		Parent:        rs.parent,
		Children:      rs.children,
		Depth:         rs.depth,
		Height:        rs.height,
		Size:          rs.size,
		SubtreeHeight: rs.subtreeHeight,
	}
}

// decodeNodeBlob parses and structurally validates one commit blob.
// deg/listCap/c are the node's degree, original list length, and the
// color-space size; malformed bytes yield an error, never a panic.
func decodeNodeBlob(b []byte, deg, listCap int, c uint32) (*nodeRestore, error) {
	d := snapshot.NewDec(b)
	iter := d.Uvarint()
	rs := &nodeRestore{alive: d.Bool(), colored: d.Bool()}
	color := d.Uvarint()
	coloredAt := d.Varint()
	rs.psi = d.Uvarint()
	rs.op = d.Uvarint()
	parent := d.Varint()
	depth := d.Uvarint()
	height := d.Uvarint()
	size := d.Uvarint()
	sub := d.Uvarint()
	k := d.Count(1)
	if d.Err() != nil {
		return nil, d.Err()
	}
	rs.list = make([]uint32, k)
	prev := int64(-1)
	for i := range rs.list {
		delta := d.Uvarint()
		prev += int64(delta)
		if d.Err() != nil || delta == 0 || prev >= int64(c) {
			return nil, errors.New("core: checkpoint blob has an invalid color list")
		}
		rs.list[i] = uint32(prev)
	}
	nb := d.Count(1)
	rs.aliveNbr = make([]bool, nb)
	for i := range rs.aliveNbr {
		rs.aliveNbr[i] = d.Bool()
	}
	if err := d.Close(); err != nil {
		return nil, err
	}

	if iter > math.MaxInt32 || color >= uint64(c) && rs.colored ||
		depth > math.MaxInt32 || height > math.MaxInt32 || size > math.MaxInt32 || sub > math.MaxInt32 ||
		parent < -1 || parent > math.MaxInt32 {
		return nil, errors.New("core: checkpoint blob field out of range")
	}
	rs.iter = int(iter)
	rs.color = uint32(color)
	rs.coloredAt = int(coloredAt)
	rs.parent = int(parent)
	rs.depth, rs.height, rs.size, rs.subtreeHeight = int(depth), int(height), int(size), int(sub)
	if rs.alive == rs.colored {
		// A core node is alive exactly until it takes a color; the only
		// other exit (the iteration cap) leaves it alive and uncolored.
		return nil, errors.New("core: checkpoint blob alive/colored flags inconsistent")
	}
	if rs.colored && (coloredAt < 0 || coloredAt >= int64(iter)) || !rs.colored && coloredAt != -1 {
		return nil, errors.New("core: checkpoint blob coloring iteration inconsistent")
	}
	if nb != deg {
		return nil, fmt.Errorf("core: checkpoint blob records %d neighbors, node has %d", nb, deg)
	}
	if len(rs.list) > listCap {
		return nil, fmt.Errorf("core: checkpoint blob list exceeds the node's original list")
	}
	if rs.depth > rs.height || rs.subtreeHeight > rs.height {
		return nil, errors.New("core: checkpoint blob tree geometry inconsistent")
	}
	return rs, nil
}

// decodeRestore decodes every node blob of the snapshot, validates the
// cut against the instance, and derives each node's tree children from
// the component's parent pointers (ascending, matching the order the
// build protocol produces from sorted neighbor lists).
func decodeRestore(inst *graph.Instance, comps [][]int, snap *congest.RunSnapshot) ([]*nodeRestore, error) {
	restore := make([]*nodeRestore, inst.G.N())
	compByRoot := make(map[int32][]int, len(comps))
	for _, comp := range comps {
		compByRoot[int32(comp[0])] = comp
	}
	for ci := range snap.Cuts {
		cut := &snap.Cuts[ci]
		comp := compByRoot[cut.Root]
		if comp == nil {
			return nil, fmt.Errorf("core: snapshot cut names unknown component root %d", cut.Root)
		}
		if len(cut.Nodes) != len(comp) {
			return nil, fmt.Errorf("core: snapshot cut of component %d covers %d of its %d nodes",
				cut.Root, len(cut.Nodes), len(comp))
		}
		for i := range cut.Nodes {
			nc := &cut.Nodes[i]
			v := int(nc.ID)
			if comp[i] != v {
				return nil, fmt.Errorf("core: snapshot cut of component %d has node %d where %d belongs",
					cut.Root, v, comp[i])
			}
			if restore[v] != nil {
				return nil, fmt.Errorf("core: node %d appears in two snapshot cuts", v)
			}
			rs, err := decodeNodeBlob(nc.Blob, inst.G.Degree(v), len(inst.Lists[v]), inst.C)
			if err != nil {
				return nil, fmt.Errorf("core: node %d: %w", v, err)
			}
			rs.done = nc.Done
			restore[v] = rs
		}
		// Component-wide consistency: one tree rooted at the cut root with
		// agreed global geometry, every node at the same iteration.
		first := restore[comp[0]]
		for _, v := range comp {
			rs := restore[v]
			if rs.iter != first.iter || rs.done != first.done ||
				rs.height != first.height || rs.size != first.size {
				return nil, fmt.Errorf("core: snapshot cut of component %d is internally inconsistent at node %d",
					cut.Root, v)
			}
			if v == comp[0] {
				if rs.parent != -1 {
					return nil, fmt.Errorf("core: component root %d has tree parent %d", v, rs.parent)
				}
			} else if !hasNeighbor(inst.G, v, rs.parent) {
				return nil, fmt.Errorf("core: node %d names tree parent %d, not a neighbor", v, rs.parent)
			}
		}
		if first.size != len(comp) {
			return nil, fmt.Errorf("core: snapshot cut of component %d records tree size %d for %d nodes",
				cut.Root, first.size, len(comp))
		}
		for _, v := range comp { // ascending, so children lists come out ascending
			if p := restore[v].parent; p >= 0 {
				restore[p].children = append(restore[p].children, v)
			}
		}
	}
	return restore, nil
}

// hasNeighbor reports whether w is a neighbor of v (sorted rows).
func hasNeighbor(g *graph.Graph, v, w int) bool {
	if w < 0 || w > math.MaxInt32 {
		return false
	}
	_, ok := slices.BinarySearch(g.Neighbors(v), int32(w))
	return ok
}

// prefillRestored replays the restored nodes' past iterations into the
// metrics (weight 1: restores never run deduplicated) and grafts done
// nodes' colors into the result arrays, since they never rerun.
func prefillRestored(m *metrics, colors []uint32, coloredFlag []bool, restore []*nodeRestore) {
	for v, rs := range restore {
		if rs == nil {
			continue
		}
		for i := 0; i < rs.iter; i++ {
			if !rs.colored || i <= rs.coloredAt {
				m.addAlive(i, v, 1)
			}
		}
		if rs.colored {
			m.addColored(rs.coloredAt, v, 1)
		}
		if rs.done {
			colors[v] = rs.color
			coloredFlag[v] = rs.colored
		}
	}
}

// ListColorResumable is ListColorCONGEST with checkpoint/restore: ck,
// when non-nil, collects a consistent cut at every partial-coloring
// iteration boundary; snap, when non-nil, restores the run from such a
// cut instead of starting fresh. Components absent from the snapshot
// start from round zero. The resumed run finishes with exactly the
// colors, Stats, and per-iteration telemetry of the uninterrupted run.
//
// Restored runs always simulate every component (the identity-class
// deduplication of ListColorCONGEST is skipped, as a snapshot names
// concrete node IDs), and potential tracking is rejected: per-phase
// potential sums are measured live and cannot be reconstructed from a
// mid-run cut.
func ListColorResumable(inst *graph.Instance, opts Options, ck *congest.Checkpointer, snap *congest.RunSnapshot) (*Result, error) {
	if opts.TrackPotentials {
		return nil, errors.New("core: potential tracking cannot span a checkpoint/resume boundary")
	}
	p, err := ComputeParams(inst, opts)
	if err != nil {
		return nil, err
	}
	if inst.G.N() == 0 {
		return &Result{Params: p, Done: true}, nil
	}
	comps := inst.G.ConnectedComponents()
	ckr := &ckRun{ck: ck}
	if snap != nil {
		ckr.snap = snap
		if ckr.restore, err = decodeRestore(inst, comps, snap); err != nil {
			return nil, err
		}
	}
	res, _, err := runColoringDomains(inst, opts, p, nil, comps, ckr)
	return res, err
}

// ListColorFromCheckpoint resumes a run from a decoded checkpoint file,
// under exactly the options the checkpoint records.
func ListColorFromCheckpoint(cp *Checkpoint, ck *congest.Checkpointer) (*Result, error) {
	return ListColorResumable(cp.Inst, cp.Opts, ck, cp.Snap)
}

// EncodeCheckpoint serializes a checkpoint into the versioned snapshot
// container: the options fingerprint, the CSR graph dump, the color
// lists, the engine cut, and the (empty) seed-provenance section — the
// algorithm is deterministic and keeps no live RNG state. The encoding
// is canonical: decoding a checkpoint and re-encoding it reproduces the
// bytes exactly, which the golden-file test pins for format v1.
func EncodeCheckpoint(cp *Checkpoint) []byte {
	var meta snapshot.Enc
	meta.Blob([]byte(checkpointModel))
	meta.Uvarint(uint64(cp.Opts.MaxWords))
	meta.Uvarint(uint64(cp.Opts.MaxRounds))
	meta.Uvarint(uint64(cp.Opts.MaxIterations))
	meta.Bool(cp.Opts.HighAccuracy)
	var g snapshot.Enc
	snapshot.EncodeGraph(&g, cp.Inst.G)
	var lists snapshot.Enc
	snapshot.EncodeLists(&lists, cp.Inst.C, cp.Inst.Lists)
	var eng snapshot.Enc
	snapshot.EncodeRunSnapshot(&eng, cp.Snap)
	var rng snapshot.Enc
	rng.Uvarint(0)
	return snapshot.Encode(&snapshot.Container{
		Version: snapshot.Version,
		Sections: []snapshot.Section{
			{ID: snapshot.SecMeta, Data: meta.Bytes()},
			{ID: snapshot.SecGraph, Data: g.Bytes()},
			{ID: snapshot.SecLists, Data: lists.Bytes()},
			{ID: snapshot.SecEngine, Data: eng.Bytes()},
			{ID: snapshot.SecRNG, Data: rng.Bytes()},
		},
	})
}

// DecodeCheckpoint parses a checkpoint file. Corrupt or truncated input
// returns an error, never panics; the decoded instance is revalidated,
// and the engine revalidates the cut against it on resume.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	c, err := snapshot.Decode(b)
	if err != nil {
		return nil, err
	}
	section := func(id uint32, name string) (*snapshot.Dec, error) {
		data := c.Find(id)
		if data == nil {
			return nil, fmt.Errorf("core: checkpoint lacks its %s section", name)
		}
		return snapshot.NewDec(data), nil
	}

	md, err := section(snapshot.SecMeta, "meta")
	if err != nil {
		return nil, err
	}
	model := string(md.Blob())
	maxWords := md.Uvarint()
	maxRounds := md.Uvarint()
	maxIter := md.Uvarint()
	high := md.Bool()
	if err := md.Close(); err != nil {
		return nil, err
	}
	if model != checkpointModel {
		return nil, fmt.Errorf("core: checkpoint fingerprint %q, this decoder reads %q", model, checkpointModel)
	}
	if maxWords > math.MaxInt32 || maxRounds > math.MaxInt32 || maxIter > math.MaxInt32 {
		return nil, errors.New("core: checkpoint option fields out of range")
	}
	opts := Options{
		MaxWords:      int(maxWords),
		MaxRounds:     int(maxRounds),
		MaxIterations: int(maxIter),
		HighAccuracy:  high,
	}

	gd, err := section(snapshot.SecGraph, "graph")
	if err != nil {
		return nil, err
	}
	g, err := snapshot.DecodeGraph(gd)
	if err != nil {
		return nil, err
	}
	if err := gd.Close(); err != nil {
		return nil, err
	}

	ld, err := section(snapshot.SecLists, "lists")
	if err != nil {
		return nil, err
	}
	cc, lists, err := snapshot.DecodeLists(ld)
	if err != nil {
		return nil, err
	}
	if err := ld.Close(); err != nil {
		return nil, err
	}
	inst := &graph.Instance{G: g, C: cc, Lists: lists}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("core: checkpoint instance invalid: %w", err)
	}

	ed, err := section(snapshot.SecEngine, "engine")
	if err != nil {
		return nil, err
	}
	snap, err := snapshot.DecodeRunSnapshot(ed)
	if err != nil {
		return nil, err
	}
	if err := ed.Close(); err != nil {
		return nil, err
	}
	return &Checkpoint{Inst: inst, Opts: opts, Snap: snap}, nil
}
