package core

// Checkpoint/restore of the Theorem 1.1 runs: the crash-at-every-round
// sweep (resume from every recorded cut must reproduce the
// uninterrupted run bit for bit), fault injection through the crash
// hook, snapshot-file round-trips, and rejection of corrupt state.

import (
	"bytes"
	"reflect"
	"testing"

	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/engine"
	"smallbandwidth/internal/graph"
)

// requireResultEq compares everything a resumed run must reproduce:
// colors, measured Stats, and the per-iteration telemetry.
func requireResultEq(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Colors, want.Colors) {
		t.Fatalf("%s: colors diverged", label)
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats %+v, want %+v", label, got.Stats, want.Stats)
	}
	if got.Iterations != want.Iterations || got.Done != want.Done {
		t.Fatalf("%s: iterations/done (%d,%v), want (%d,%v)",
			label, got.Iterations, got.Done, want.Iterations, want.Done)
	}
	if !reflect.DeepEqual(got.AliveAt, want.AliveAt) || !reflect.DeepEqual(got.Colored, want.Colored) {
		t.Fatalf("%s: per-iteration telemetry diverged:\n got %v %v\nwant %v %v",
			label, got.AliveAt, got.Colored, want.AliveAt, want.Colored)
	}
}

// disconnectedInstance is a path and a cycle in one instance: two
// lockstep domains, so cuts and resumes cross component boundaries.
func disconnectedInstance(t *testing.T) *graph.Instance {
	t.Helper()
	var edges [][2]int
	for v := 0; v+1 < 7; v++ {
		edges = append(edges, [2]int{v, v + 1})
	}
	for v := 7; v < 13; v++ {
		w := v + 1
		if w == 13 {
			w = 7
		}
		edges = append(edges, [2]int{v, w})
	}
	g, err := graph.FromEdges(13, edges)
	if err != nil {
		t.Fatal(err)
	}
	return mustInstance(t, g)
}

func TestResumableMatchesListColorCONGEST(t *testing.T) {
	for _, tc := range []struct {
		name string
		inst *graph.Instance
	}{
		{"gnp", mustInstance(t, graph.GNP(32, 0.12, 3))},
		{"disconnected", disconnectedInstance(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := ListColorCONGEST(tc.inst, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := ListColorResumable(tc.inst, Options{}, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			requireResultEq(t, "fresh resumable run", got, want)
		})
	}
}

// TestCheckpointResumeEverySweep is the core of the differential tier:
// checkpoint a run at every iteration boundary, then for every recorded
// cut round discard the live run, resume fresh, and demand the final
// colors, Stats, and telemetry bit-identical to the uninterrupted run.
func TestCheckpointResumeEverySweep(t *testing.T) {
	for _, tc := range []struct {
		name string
		inst *graph.Instance
	}{
		{"grid", mustInstance(t, graph.Grid2D(4, 5))},
		{"disconnected", disconnectedInstance(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ck := &congest.Checkpointer{KeepAll: true}
			want, err := ListColorResumable(tc.inst, Options{}, ck, nil)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := ListColorResumable(tc.inst, Options{}, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			requireResultEq(t, "checkpointing perturbed the run", want, plain)

			cutRounds := ck.CutRounds()
			if len(cutRounds) < 2 {
				t.Fatalf("only %d cut rounds recorded", len(cutRounds))
			}
			for _, k := range cutRounds {
				got, err := ListColorResumable(tc.inst, Options{}, nil, ck.At(k))
				if err != nil {
					t.Fatalf("resume at round %d: %v", k, err)
				}
				requireResultEq(t, "resume", got, want)
			}

			// The terminal snapshot restores the completed run without
			// spawning any node program.
			last := ck.Latest()
			for _, cut := range last.Cuts {
				if !cut.Final {
					t.Fatalf("latest cut of domain %d is not final", cut.Root)
				}
			}
			got, err := ListColorResumable(tc.inst, Options{}, nil, last)
			if err != nil {
				t.Fatal(err)
			}
			requireResultEq(t, "terminal resume", got, want)
		})
	}
}

// TestCheckpointCrashResume injects a mid-run fault: one node's program
// is killed at a chosen iteration, the aborted run's last checkpoint is
// resumed, and the completed result must match the uninterrupted run —
// at one engine shard and at several.
func TestCheckpointCrashResume(t *testing.T) {
	inst := mustInstance(t, graph.MustRandomRegular(48, 4, 7))
	want, err := ListColorResumable(inst, Options{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Crash mid-run, but no earlier than iteration 1 so at least one
	// checkpoint exists to restart from.
	crashAt := want.Iterations / 2
	if crashAt < 1 {
		crashAt = 1
	}
	if want.Iterations < 2 {
		t.Fatalf("run too short for a mid-run crash: %d iterations", want.Iterations)
	}
	crash := Options{crashIter: crashAt + 1, crashNode: inst.G.N() / 2}

	for _, shards := range []int{1, 3} {
		engine.SetForceShards(shards)
		ck := &congest.Checkpointer{}
		_, err := ListColorResumable(inst, crash, ck, nil)
		if err == nil {
			engine.SetForceShards(0)
			t.Fatalf("shards=%d: injected crash did not abort the run", shards)
		}
		snap := ck.Latest()
		if snap == nil || len(snap.Cuts) == 0 {
			engine.SetForceShards(0)
			t.Fatalf("shards=%d: no checkpoint survived the crash", shards)
		}
		got, err := ListColorResumable(inst, Options{}, nil, snap)
		engine.SetForceShards(0)
		if err != nil {
			t.Fatalf("shards=%d: resume after crash: %v", shards, err)
		}
		requireResultEq(t, "post-crash resume", got, want)
	}
}

// TestCheckpointCutsDeterministicAcrossShards extends the engine's
// *DeterministicAcrossShards family to the coloring protocol: the
// recorded cuts — node blobs, queues, stats, byte for byte — must not
// depend on the worker count.
func TestCheckpointCutsDeterministicAcrossShards(t *testing.T) {
	inst := mustInstance(t, graph.Grid2D(5, 6))
	collect := func(shards int) *congest.Checkpointer {
		engine.SetForceShards(shards)
		defer engine.SetForceShards(0)
		ck := &congest.Checkpointer{KeepAll: true}
		if _, err := ListColorResumable(inst, Options{}, ck, nil); err != nil {
			t.Fatal(err)
		}
		return ck
	}
	ck1, ck4 := collect(1), collect(4)
	r1, r4 := ck1.CutRounds(), ck4.CutRounds()
	if !reflect.DeepEqual(r1, r4) {
		t.Fatalf("cut rounds differ across shard counts: %v vs %v", r1, r4)
	}
	for _, k := range r1 {
		if s1, s4 := ck1.At(k), ck4.At(k); !reflect.DeepEqual(s1, s4) {
			t.Fatalf("cut at round %d differs across shard counts", k)
		}
	}
}

// TestCheckpointCutsDeterministicAcrossWorkers is the same pin driven
// end to end through the public Options.Workers knob instead of the
// SetForceShards test hook, on an instance large enough (≥ 4·256
// nodes) that Workers=4 genuinely cuts four delivery shards: the
// commit-barrier cuts must stage per-shard state in an order that
// leaves the snapshot bytes identical at every worker count.
func TestCheckpointCutsDeterministicAcrossWorkers(t *testing.T) {
	inst := mustInstance(t, graph.Cycle(1200))
	collect := func(workers int) *congest.Checkpointer {
		ck := &congest.Checkpointer{KeepAll: true}
		if _, err := ListColorResumable(inst, Options{Workers: workers}, ck, nil); err != nil {
			t.Fatal(err)
		}
		return ck
	}
	ck1, ck4 := collect(1), collect(4)
	r1, r4 := ck1.CutRounds(), ck4.CutRounds()
	if !reflect.DeepEqual(r1, r4) {
		t.Fatalf("cut rounds differ across worker counts: %v vs %v", r1, r4)
	}
	for _, k := range r1 {
		if s1, s4 := ck1.At(k), ck4.At(k); !reflect.DeepEqual(s1, s4) {
			t.Fatalf("cut at round %d differs across worker counts", k)
		}
	}
}

func TestResumableRejectsTrackPotentials(t *testing.T) {
	inst := mustInstance(t, graph.Path(4))
	if _, err := ListColorResumable(inst, Options{TrackPotentials: true}, nil, nil); err == nil {
		t.Fatal("potential tracking across a resume boundary was accepted")
	}
}

// TestResumableRejectsCorruptBlobs pins that damaged node blobs are
// refused with an error before any node program starts.
func TestResumableRejectsCorruptBlobs(t *testing.T) {
	inst := mustInstance(t, graph.Grid2D(3, 4))
	ck := &congest.Checkpointer{KeepAll: true}
	if _, err := ListColorResumable(inst, Options{}, ck, nil); err != nil {
		t.Fatal(err)
	}
	rounds := ck.CutRounds()
	mid := rounds[len(rounds)/2]

	warps := []struct {
		name string
		warp func(s *congest.RunSnapshot)
	}{
		{"truncated-blob", func(s *congest.RunSnapshot) {
			b := s.Cuts[0].Nodes[1].Blob
			s.Cuts[0].Nodes[1].Blob = b[:len(b)/2]
		}},
		{"empty-blob", func(s *congest.RunSnapshot) { s.Cuts[0].Nodes[2].Blob = nil }},
		{"trailing-garbage", func(s *congest.RunSnapshot) {
			nc := &s.Cuts[0].Nodes[0]
			nc.Blob = append(append([]byte(nil), nc.Blob...), 0xff)
		}},
		{"foreign-root", func(s *congest.RunSnapshot) { s.Cuts[0].Root = 1 }},
	}
	for _, w := range warps {
		t.Run(w.name, func(t *testing.T) {
			snap := ck.At(mid)
			w.warp(snap)
			if _, err := ListColorResumable(inst, Options{}, nil, snap); err == nil {
				t.Fatal("corrupt snapshot was accepted")
			}
		})
	}
}

// TestCheckpointFileRoundTrip pins the on-disk format: encode a real
// mid-run checkpoint, decode it, resume from the decoded copy, and
// re-encode it byte for byte.
func TestCheckpointFileRoundTrip(t *testing.T) {
	inst := mustInstance(t, graph.Grid2D(4, 4))
	opts := Options{MaxWords: 4}
	ck := &congest.Checkpointer{KeepAll: true}
	want, err := ListColorResumable(inst, opts, ck, nil)
	if err != nil {
		t.Fatal(err)
	}
	rounds := ck.CutRounds()
	snap := ck.At(rounds[len(rounds)/2])

	raw := EncodeCheckpoint(&Checkpoint{Inst: inst, Opts: opts, Snap: snap})
	cp, err := DecodeCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Inst.G.Equal(inst.G) || cp.Inst.C != inst.C || !reflect.DeepEqual(cp.Inst.Lists, inst.Lists) {
		t.Fatal("decoded checkpoint instance differs from the original")
	}
	if cp.Opts != opts {
		t.Fatalf("decoded options %+v, want %+v", cp.Opts, opts)
	}
	if !reflect.DeepEqual(cp.Snap, snap) {
		t.Fatal("decoded engine cut differs from the original")
	}
	if again := EncodeCheckpoint(cp); !bytes.Equal(again, raw) {
		t.Fatal("decode followed by encode did not reproduce the bytes")
	}

	got, err := ListColorFromCheckpoint(cp, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireResultEq(t, "resume from decoded file", got, want)
}
