package core

import (
	"fmt"
	"math"

	"smallbandwidth/internal/gf2"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/prng"
)

// PrefixState is the centralized state of the bit-by-bit prefix-extension
// process of Section 2.1 on a list-coloring instance: per-node candidate
// sets L_ℓ(v) and the conflict graph G_ℓ. It is used by the zero-round
// randomized algorithms (Algorithm 1 and the ε-biased variant) and by the
// tests that compare the derandomized CONGEST run against the process it
// derandomizes.
type PrefixState struct {
	Inst  *graph.Instance
	LogC  int
	Phase int        // number of prefix bits fixed so far
	Cands [][]uint32 // current candidate sets L_ℓ(v)
	Conf  [][]int32  // adjacency of the conflict graph G_ℓ
}

// NewPrefixState initializes the process with empty prefixes: candidate
// sets are the full lists and the conflict graph is G itself.
func NewPrefixState(inst *graph.Instance) (*PrefixState, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	p, err := ComputeParams(inst, Options{})
	if err != nil {
		return nil, err
	}
	st := &PrefixState{Inst: inst, LogC: p.LogC}
	st.Cands = make([][]uint32, inst.G.N())
	st.Conf = make([][]int32, inst.G.N())
	for v := range st.Cands {
		st.Cands[v] = append([]uint32(nil), inst.Lists[v]...)
		st.Conf[v] = append([]int32(nil), inst.G.Neighbors(v)...)
	}
	return st, nil
}

// Potential returns Σ_v Φ_ℓ(v) = Σ_v deg_ℓ(v)/|L_ℓ(v)|.
func (st *PrefixState) Potential() float64 {
	total := 0.0
	for v := range st.Cands {
		total += float64(len(st.Conf[v])) / float64(len(st.Cands[v]))
	}
	return total
}

// Done reports whether all ⌈logC⌉ bits have been fixed.
func (st *PrefixState) Done() bool { return st.Phase >= st.LogC }

// step applies one bit choice per node: it filters candidate sets and
// prunes the conflict graph. bits[v] is node v's chosen ℓ-th bit.
func (st *PrefixState) step(bits []bool) error {
	bitPos := st.LogC - st.Phase - 1
	for v := range st.Cands {
		st.Cands[v] = filterByBit(st.Cands[v], bitPos, bits[v])
		if len(st.Cands[v]) == 0 {
			return fmt.Errorf("core: node %d candidate set became empty in phase %d", v, st.Phase+1)
		}
	}
	for v := range st.Conf {
		kept := st.Conf[v][:0]
		for _, w := range st.Conf[v] {
			if bits[w] == bits[v] {
				kept = append(kept, w)
			}
		}
		st.Conf[v] = kept
	}
	st.Phase++
	return nil
}

// StepUniform runs one phase of Algorithm 1 with fully independent
// uniform randomness: node v extends its prefix by 1 with probability
// p_v = k1(v)/|L_{ℓ−1}(v)| exactly.
func (st *PrefixState) StepUniform(src *prng.Source) error {
	bitPos := st.LogC - st.Phase - 1
	bits := make([]bool, len(st.Cands))
	for v := range st.Cands {
		k1 := countBitOnes(st.Cands[v], bitPos)
		bits[v] = src.Intn(len(st.Cands[v])) < k1
	}
	return st.step(bits)
}

// StepSeeded runs one phase using the paper's pairwise-independent biased
// coins (Lemma 2.5): the given input coloring psi selects each node's
// hash input, coins come from the shared random seed drawn from src, and
// probabilities are p_v rounded up to a multiple of 2^−b.
func (st *PrefixState) StepSeeded(src *prng.Source, psi []uint64, fam *gf2.Family, b int) error {
	bitPos := st.LogC - st.Phase - 1
	seed := gf2.Vec128{Lo: src.Uint64(), Hi: src.Uint64()}
	for i := fam.SeedBits(); i < 128; i++ {
		seed = seed.WithBit(i, false)
	}
	bits := make([]bool, len(st.Cands))
	for v := range st.Cands {
		k1 := countBitOnes(st.Cands[v], bitPos)
		coin, err := gf2.NewCoin(fam, psi[v], b, uint64(k1), uint64(len(st.Cands[v])))
		if err != nil {
			return err
		}
		bits[v] = coin.Value(seed)
	}
	return st.step(bits)
}

// StepSeededBlock runs one phase drawing lanes ≤ 64 candidate seeds at
// once and committing the one whose resulting potential Φ_{ℓ+1} is
// smallest (ties to the lowest lane). Every node's coin is evaluated
// against all lanes through the bit-sliced kernels (gf2.Coin.ValueBlock:
// one plane-XOR pass covers the whole block), so trying 64 seeds costs
// about as much as the scalar StepSeeded path evaluates one. Lemma 2.2
// guarantees a seed with Φ_{ℓ+1} ≤ E[Φ_{ℓ+1}] ≤ Φ_ℓ exists; sampling a
// block and keeping the argmin finds a non-increasing seed with failure
// probability exponentially small in the lane count, without the
// conditional-expectation machinery. The scalar path is the differential
// oracle: lane k's outcome word reproduces coin.Value(seed_k) bit for bit
// (TestStepSeededBlockMatchesScalar). Returns the chosen lane.
func (st *PrefixState) StepSeededBlock(src *prng.Source, psi []uint64, fam *gf2.Family, b int, lanes int) (int, error) {
	if lanes < 1 || lanes > 64 {
		return 0, fmt.Errorf("core: StepSeededBlock lanes=%d out of range [1,64]", lanes)
	}
	bitPos := st.LogC - st.Phase - 1
	sb := new(gf2.SeedBlock)
	for k := 0; k < lanes; k++ {
		seed := gf2.Vec128{Lo: src.Uint64(), Hi: src.Uint64()}
		for i := fam.SeedBits(); i < 128; i++ {
			seed = seed.WithBit(i, false)
		}
		sb.SetLane(k, seed)
	}
	n := len(st.Cands)
	out := make([]uint64, n)
	k1s := make([]int, n)
	for v := range st.Cands {
		k1s[v] = countBitOnes(st.Cands[v], bitPos)
		coin, err := gf2.NewCoin(fam, psi[v], b, uint64(k1s[v]), uint64(len(st.Cands[v])))
		if err != nil {
			return 0, err
		}
		out[v] = coin.ValueBlock(sb)
	}
	best, bestPot := 0, math.Inf(1)
	for k := 0; k < lanes; k++ {
		pot, dead := 0.0, false
		for v := range st.Cands {
			one := out[v]>>k&1 == 1
			size := k1s[v]
			if !one {
				size = len(st.Cands[v]) - k1s[v]
			}
			if size == 0 {
				dead = true // this lane empties v's candidate set; never pick it over a live lane
				break
			}
			deg := 0
			for _, w := range st.Conf[v] {
				if (out[w]>>k&1 == 1) == one {
					deg++
				}
			}
			pot += float64(deg) / float64(size)
		}
		if !dead && pot < bestPot {
			best, bestPot = k, pot
		}
	}
	bits := make([]bool, n)
	for v := range out {
		bits[v] = out[v]>>best&1 == 1
	}
	return best, st.step(bits)
}

// CandidateColors returns each node's single candidate after all phases.
func (st *PrefixState) CandidateColors() ([]uint32, error) {
	if !st.Done() {
		return nil, fmt.Errorf("core: process has fixed %d of %d bits", st.Phase, st.LogC)
	}
	out := make([]uint32, len(st.Cands))
	for v, c := range st.Cands {
		if len(c) != 1 {
			return nil, fmt.Errorf("core: node %d has %d candidates", v, len(c))
		}
		out[v] = c[0]
	}
	return out, nil
}

// ListColorComponents solves the instance on a possibly-disconnected
// graph. Historically this stitched one sequential ListColorCONGEST run
// per connected component; ListColorCONGEST is component-aware now (every
// component runs in parallel inside one sharded engine run, with Rounds
// the max over components and Messages/Words the sums), so this is a
// plain delegate kept for callers of the old entry point. Unlike the old
// stitcher it never shares the caller's list backing arrays with a
// sub-instance — the node programs copy their lists at init.
func ListColorComponents(inst *graph.Instance, opts Options) (*Result, error) {
	return ListColorCONGEST(inst, opts)
}
