// Package core implements the paper's primary contribution: deterministic
// (degree+1)-list coloring in the CONGEST model in time proportional to
// the diameter (Lemma 2.1 and Theorem 1.1), by derandomizing — with the
// method of conditional expectations over a BFS tree — the zero-round
// randomized bit-by-bit color-prefix extension of Section 2.1.
//
// The package also exposes the zero-round randomized processes themselves
// (Algorithm 1 and its ε-biased variant of Lemma 2.3) for baseline
// comparison and for Monte-Carlo validation of the expectation bounds.
package core

import (
	"fmt"
	"math/bits"

	"smallbandwidth/internal/gf2"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/linial"
)

// Params collects the global quantities of one list-coloring run. Every
// node derives the same Params locally from (n, Δ, C) — exactly the
// "global knowledge" the paper assumes.
type Params struct {
	N     int    // number of nodes
	Delta int    // maximum degree of the communication graph
	C     uint32 // color-space size; colors are ⌈logC⌉-bit strings
	LogC  int    // ⌈log₂ C⌉: number of prefix-extension phases

	// Input-coloring (symmetry-breaking) parameters: Linial from IDs.
	LinialSched []linial.Step
	K           uint64 // color space of ψ after the Linial schedule
	A           int    // ⌈log₂ K⌉

	// Derandomization parameters (Lemma 2.6).
	B int // coin accuracy: ε = 2^−B
	M int // hash field degree max(A, B)
	D int // seed length 2M (pairwise independence, k = 2)

	// MIS-step parameters: Linial schedule on the ≤3-degree conflict
	// graph, starting from the K-coloring ψ.
	MISSched []linial.Step
	MISK     uint64 // color classes iterated by the MIS step

	Fam *gf2.Family
}

// Options configures a run.
type Options struct {
	// MaxIterations limits the number of partial-coloring iterations
	// (0 = run to completion). MaxIterations = 1 is Lemma 2.1.
	MaxIterations int
	// HighAccuracy uses the sharper coin accuracy of the paper's
	// "How to Avoid MIS" variant (Section 4): ε = 1/(10·Δ·(Δ+1)·⌈logC⌉).
	// The CONGEST algorithm still runs its MIS step, so this serves as an
	// accuracy ablation.
	HighAccuracy bool
	// TrackPotentials records Σ_v Φ(v) before and after every prefix
	// phase (measured outside the protocol; costs no rounds).
	TrackPotentials bool
	// MaxWords overrides the CONGEST bandwidth cap (0 = default).
	MaxWords int
	// MaxRounds overrides the CONGEST round cap (0 = default).
	MaxRounds int
}

// ComputeParams validates the instance and derives all global parameters.
func ComputeParams(inst *graph.Instance, opts Options) (*Params, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return computeParamsFor(inst.G.N(), inst.G.MaxDegree(), inst.C, opts)
}

// computeParamsFor derives the parameter set from the quantities every
// node of a (sub)network knows: its node count, maximum degree, and the
// color-space size. ListColorCONGEST derives one set per connected
// component, so a component behaves exactly as a standalone run of its
// own instance would (the per-cluster reading of Corollary 1.2).
func computeParamsFor(n, delta int, c uint32, opts Options) (*Params, error) {
	logC := bits.Len32(c - 1) // ⌈log₂ C⌉ for C ≥ 1
	p := &Params{N: n, Delta: delta, C: c, LogC: logC}

	// Input coloring: Linial from the trivial ID coloring.
	k0 := uint64(n)
	if k0 < 2 {
		k0 = 2
	}
	p.LinialSched = linial.Schedule(k0, delta)
	p.K = k0
	for _, st := range p.LinialSched {
		p.K = st.NewK
	}
	p.A = bits.Len64(p.K - 1)
	if p.A < 1 {
		p.A = 1
	}

	// Coin accuracy: ε = 2^−B ≤ 1/(10·Δ·⌈logC⌉) so that the per-phase
	// potential growth is at most n/⌈logC⌉ (Lemma 2.6).
	effLogC := logC
	if effLogC < 1 {
		effLogC = 1
	}
	accDenom := uint64(10) * uint64(delta+1) * uint64(effLogC)
	if opts.HighAccuracy {
		accDenom *= uint64(delta + 1)
	}
	p.B = bits.Len64(accDenom) // ⌈log₂ accDenom⌉ ≤ Len
	if p.B < 1 {
		p.B = 1
	}
	p.M = p.A
	if p.B > p.M {
		p.M = p.B
	}
	if p.M > 63 {
		return nil, fmt.Errorf("core: hash field degree %d exceeds 63 (instance too large)", p.M)
	}
	// Coin thresholds are ⌈k1·2^B/|L|⌉ with k1 ≤ C: they must fit uint64.
	if p.B+bits.Len32(c) > 62 {
		return nil, fmt.Errorf("core: B=%d with C=%d would overflow coin thresholds", p.B, c)
	}
	p.D = 2 * p.M
	fam, err := gf2.NewFamily(p.M, 2)
	if err != nil {
		return nil, err
	}
	p.Fam = fam

	// MIS step: conflict graph has max degree 3 on V<4.
	p.MISSched = linial.Schedule(p.K, 3)
	p.MISK = p.K
	for _, st := range p.MISSched {
		p.MISK = st.NewK
	}
	return p, nil
}

// edgeExpectation returns E[X_e | basis] for a conflict edge, where
// X_e = 1{e survives}·(1/|L_ℓ(u)|+1/|L_ℓ(v)|) exactly as in Lemma 2.2:
// the edge survives iff both endpoints extend their prefix with the same
// bit, and the surviving list sizes are k1 (bit 1) or k0 (bit 0).
func edgeExpectation(bs *gf2.Basis, cu, cv gf2.Coin, k1u, k0u, k1v, k0v int) float64 {
	p1u := cu.ProbOne(bs)
	p1v := cv.ProbOne(bs)
	p11 := gf2.ProbBothOne(bs, cu, cv)
	p00 := 1 - p1u - p1v + p11
	var e float64
	if p11 > 0 {
		// p11 > 0 implies k1u, k1v ≥ 1 (thresholds are 0 otherwise).
		e += p11 * (1/float64(k1u) + 1/float64(k1v))
	}
	if p00 > 0 {
		// p00 > 0 implies k0u, k0v ≥ 1 (p = 1 coins never show 0).
		e += p00 * (1/float64(k0u) + 1/float64(k0v))
	}
	return e
}

// countBitOnes returns how many candidate colors have bit bitPos set.
func countBitOnes(cands []uint32, bitPos int) int {
	k1 := 0
	for _, c := range cands {
		if c&(1<<bitPos) != 0 {
			k1++
		}
	}
	return k1
}

// filterByBit keeps the candidates whose bitPos-th bit equals val,
// filtering in place.
func filterByBit(cands []uint32, bitPos int, val bool) []uint32 {
	out := cands[:0]
	for _, c := range cands {
		if (c&(1<<bitPos) != 0) == val {
			out = append(out, c)
		}
	}
	return out
}

// removeColor deletes color c from the sorted list if present.
func removeColor(list []uint32, c uint32) []uint32 {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(list) && list[lo] == c {
		return append(list[:lo], list[lo+1:]...)
	}
	return list
}
