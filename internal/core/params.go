// Package core implements the paper's primary contribution: deterministic
// (degree+1)-list coloring in the CONGEST model in time proportional to
// the diameter (Lemma 2.1 and Theorem 1.1), by derandomizing — with the
// method of conditional expectations over a BFS tree — the zero-round
// randomized bit-by-bit color-prefix extension of Section 2.1.
//
// The package also exposes the zero-round randomized processes themselves
// (Algorithm 1 and its ε-biased variant of Lemma 2.3) for baseline
// comparison and for Monte-Carlo validation of the expectation bounds.
package core

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"smallbandwidth/internal/gf2"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/linial"
)

// Params collects the global quantities of one list-coloring run. Every
// node derives the same Params locally from (n, Δ, C) — exactly the
// "global knowledge" the paper assumes.
type Params struct {
	N     int    // number of nodes
	Delta int    // maximum degree of the communication graph
	C     uint32 // color-space size; colors are ⌈logC⌉-bit strings
	LogC  int    // ⌈log₂ C⌉: number of prefix-extension phases

	// Input-coloring (symmetry-breaking) parameters: Linial from IDs.
	LinialSched []linial.Step
	K           uint64 // color space of ψ after the Linial schedule
	A           int    // ⌈log₂ K⌉

	// Derandomization parameters (Lemma 2.6).
	B int // coin accuracy: ε = 2^−B
	M int // hash field degree max(A, B)
	D int // seed length 2M (pairwise independence, k = 2)

	// MIS-step parameters: Linial schedule on the ≤3-degree conflict
	// graph, starting from the K-coloring ψ.
	MISSched []linial.Step
	MISK     uint64 // color classes iterated by the MIS step

	Fam *gf2.Family
}

// Options configures a run.
type Options struct {
	// MaxIterations limits the number of partial-coloring iterations
	// (0 = run to completion). MaxIterations = 1 is Lemma 2.1.
	MaxIterations int
	// HighAccuracy uses the sharper coin accuracy of the paper's
	// "How to Avoid MIS" variant (Section 4): ε = 1/(10·Δ·(Δ+1)·⌈logC⌉).
	// The CONGEST algorithm still runs its MIS step, so this serves as an
	// accuracy ablation.
	HighAccuracy bool
	// TrackPotentials records Σ_v Φ(v) before and after every prefix
	// phase (measured outside the protocol; costs no rounds).
	TrackPotentials bool
	// MaxWords overrides the CONGEST bandwidth cap (0 = default).
	MaxWords int
	// MaxRounds overrides the CONGEST round cap (0 = default).
	MaxRounds int
	// Workers bounds the simulator's delivery/compute parallelism: 0
	// sizes the engine's worker pool from GOMAXPROCS, n > 0 caps it at n
	// shards. Colors, Stats, and telemetry are bit-identical for every
	// setting; the engine rejects negative or absurd values.
	Workers int

	// refEval routes every derandomization phase through the
	// pre-optimization evaluation path (runPhaseRef). Test-only: the
	// differential tests pin that the optimized hot path reproduces the
	// reference bit for bit.
	refEval bool

	// noBulk disables the per-component bulk seed-bit aggregation
	// (phaseHub) so every seed bit runs its distributed tree aggregation
	// for real. Test-only: the differential tests pin that the bulk path
	// reproduces the distributed execution bit for bit.
	noBulk bool

	// crashIter/crashNode inject a fault: when crashIter > 0, node
	// crashNode's program panics at the top of iteration crashIter−1,
	// before committing it. Test-only: the checkpoint tests use it to
	// kill a worker mid-run and pin that the cuts recorded before the
	// crash resume to the uninterrupted run's exact results.
	crashIter int
	crashNode int
}

// ComputeParams validates the instance and derives all global parameters.
func ComputeParams(inst *graph.Instance, opts Options) (*Params, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return computeParamsFor(inst.G.N(), inst.G.MaxDegree(), inst.C, opts)
}

// computeParamsFor derives the parameter set from the quantities every
// node of a (sub)network knows: its node count, maximum degree, and the
// color-space size. ListColorCONGEST derives one set per connected
// component, so a component behaves exactly as a standalone run of its
// own instance would (the per-cluster reading of Corollary 1.2).
func computeParamsFor(n, delta int, c uint32, opts Options) (*Params, error) {
	logC := bits.Len32(c - 1) // ⌈log₂ C⌉ for C ≥ 1
	p := &Params{N: n, Delta: delta, C: c, LogC: logC}

	// Input coloring: Linial from the trivial ID coloring.
	k0 := uint64(n)
	if k0 < 2 {
		k0 = 2
	}
	p.LinialSched = linial.Schedule(k0, delta)
	p.K = k0
	for _, st := range p.LinialSched {
		p.K = st.NewK
	}
	p.A = bits.Len64(p.K - 1)
	if p.A < 1 {
		p.A = 1
	}

	// Coin accuracy: ε = 2^−B ≤ 1/(10·Δ·⌈logC⌉) so that the per-phase
	// potential growth is at most n/⌈logC⌉ (Lemma 2.6).
	effLogC := logC
	if effLogC < 1 {
		effLogC = 1
	}
	accDenom := uint64(10) * uint64(delta+1) * uint64(effLogC)
	if opts.HighAccuracy {
		accDenom *= uint64(delta + 1)
	}
	p.B = bits.Len64(accDenom) // ⌈log₂ accDenom⌉ ≤ Len
	if p.B < 1 {
		p.B = 1
	}
	p.M = p.A
	if p.B > p.M {
		p.M = p.B
	}
	if p.M > 63 {
		return nil, fmt.Errorf("core: hash field degree %d exceeds 63 (instance too large)", p.M)
	}
	// Coin thresholds are ⌈k1·2^B/|L|⌉ with k1 ≤ C: they must fit uint64.
	if p.B+bits.Len32(c) > 62 {
		return nil, fmt.Errorf("core: B=%d with C=%d would overflow coin thresholds", p.B, c)
	}
	// The marginal-memo key packs (j, M, B) into consecutive 8-bit
	// fields; a parameter outside its field would silently alias another
	// configuration's entries. Unreachable with the bounds above, but
	// guarded explicitly so a future parameter change cannot corrupt the
	// memo by overflow.
	if !memoKeyFieldsOK(p.M, p.B) {
		return nil, fmt.Errorf("core: M=%d or B=%d exceeds the memo key's 8-bit fields", p.M, p.B)
	}
	p.D = 2 * p.M
	fam, err := gf2.NewFamily(p.M, 2)
	if err != nil {
		return nil, err
	}
	p.Fam = fam

	// MIS step: conflict graph has max degree 3 on V<4.
	p.MISSched = linial.Schedule(p.K, 3)
	p.MISK = p.K
	for _, st := range p.MISSched {
		p.MISK = st.NewK
	}
	return p, nil
}

// memoKeyFieldsOK reports whether M and B each fit the 8-bit field the
// marginal-memo key word assigns them (seed bit j shares the word and is
// bounded by D ≤ 64 on every memoable path).
func memoKeyFieldsOK(m, b int) bool {
	return m >= 0 && m <= 255 && b >= 0 && b <= 255
}

// EdgeExpectation returns E[X_e | basis] for a conflict edge, where
// X_e = 1{e survives}·(1/|L_ℓ(u)|+1/|L_ℓ(v)|) exactly as in Lemma 2.2:
// the edge survives iff both endpoints extend their prefix with the same
// bit, and the surviving list sizes are k1 (bit 1) or k0 (bit 0).
// Exported for the hot-path microbenchmarks (BenchmarkEdgeExpectation).
//sbw:allocfree Theorem 1.1 phase-step kernel: per-edge conditional expectation
func EdgeExpectation(bs *gf2.Basis, cu, cv gf2.Coin, k1u, k0u, k1v, k0v int) float64 {
	p1u, p11 := gf2.ProbOneAndBothOne(bs, cu, cv)
	p1v := cv.ProbOne(bs)
	return edgeCombine(p1u, p1v, p11, k1u, k0u, k1v, k0v)
}

// EdgeExpectationSplit returns EdgeExpectation under both branches of a
// split seed bit in one mask-elimination pass (the "both β in one pass"
// restructuring of the Lemma 2.6 inner loop): e0 conditions on bit=0,
// e1 on bit=1. Bit-identical to two EdgeExpectation calls on bases with
// the bit fixed.
//sbw:allocfree Theorem 1.1 phase-step kernel: both branches of one seed bit, the TestPhaseStepAllocFree loop body
func EdgeExpectationSplit(sb *gf2.SplitBasis, cu, cv gf2.Coin, k1u, k0u, k1v, k0v int) (e0, e1 float64) {
	p1u0, p1v0, p110, p1u1, p1v1, p111 := sb.EdgePair(cu, cv)
	return edgeCombine(p1u0, p1v0, p110, k1u, k0u, k1v, k0v),
		edgeCombine(p1u1, p1v1, p111, k1u, k0u, k1v, k0v)
}

// margMemo is a global memo of neighbor-marginal probabilities: the
// value Pr[C_w = 1 | seed bits 0..j−1 = prefix, bit j = β] is a pure
// function of (M, B, ψ_w, threshold, j, prefix) — the field and family
// are deterministic per M — and the conditioning prefix is *global*
// (every node fixes the same seed bits), so all ~Δ owners evaluating
// edges into w at seed bit j need the same pair of numbers. The table
// is a fixed-size direct-mapped cache of seqlock slots: entries are
// written and read with per-word atomics and validated by the sequence
// number, collisions simply overwrite, and a lost or stale entry only
// costs a recomputation of the same bit-identical value.
//
// The table is striped: each engine-shard-sized band of owner nodes
// hashes into its own slot array, and a slot is exactly one cache line,
// so concurrent phase-loop workers never write-share memo lines. Owners
// in different stripes recompute instead of sharing a neighbor's entry —
// the values are pure, so striping changes cache behavior only, never a
// probability bit.
const (
	margStripes     = 8
	margStripeSlots = 1 << 13
)

// margSlot is one seqlock memo entry: seq + 4 key words + 2 value words
// = 56 bytes, padded to a full 64-byte cache line so neighboring slots
// (and neighboring stripes) never false-share.
type margSlot struct {
	seq atomic.Uint64
	k   [4]atomic.Uint64
	v   [2]atomic.Uint64
	_   [1]uint64
}

var margTab [margStripes][margStripeSlots]margSlot

// margStripeFor maps owner node v of an n-node run to its memo stripe:
// contiguous node bands, aligned with how the engine cuts delivery
// shards, so one phase-loop worker stays inside one stripe.
func margStripeFor(v, n int) int {
	if n <= 0 || v < 0 {
		return 0
	}
	s := v * margStripes / n
	if s >= margStripes {
		s = margStripes - 1
	}
	return s
}

func margIndex(stripe int, k0, k1, k2, k3 uint64) *margSlot {
	h := uint64(1469598103934665603)
	for _, w := range [4]uint64{k0, k1, k2, k3} {
		h ^= w
		h *= 1099511628211
	}
	return &margTab[stripe][(h^h>>29)&(margStripeSlots-1)]
}

//sbw:allocfree phase-step kernel: seqlock memo read on every owned edge
func margLoad(stripe int, k0, k1, k2, k3 uint64) (p0, p1 float64, ok bool) {
	s := margIndex(stripe, k0, k1, k2, k3)
	s1 := s.seq.Load()
	if s1&1 != 0 {
		return 0, 0, false
	}
	a0, a1, a2, a3 := s.k[0].Load(), s.k[1].Load(), s.k[2].Load(), s.k[3].Load()
	v0, v1 := s.v[0].Load(), s.v[1].Load()
	if s.seq.Load() != s1 || a0 != k0 || a1 != k1 || a2 != k2 || a3 != k3 {
		return 0, 0, false
	}
	return math.Float64frombits(v0), math.Float64frombits(v1), true
}

//sbw:allocfree phase-step kernel: seqlock memo publish on memo miss
func margStore(stripe int, k0, k1, k2, k3 uint64, p0, p1 float64) {
	s := margIndex(stripe, k0, k1, k2, k3)
	s1 := s.seq.Load()
	if s1&1 != 0 || !s.seq.CompareAndSwap(s1, s1+1) {
		return // another writer owns the slot; drop this entry
	}
	s.k[0].Store(k0)
	s.k[1].Store(k1)
	s.k[2].Store(k2)
	s.k[3].Store(k3)
	s.v[0].Store(math.Float64bits(p0))
	s.v[1].Store(math.Float64bits(p1))
	s.seq.Store(s1 + 2)
}

// edgeCombine assembles the Lemma 2.2 edge term from the three joint
// coin probabilities (shared by the one-basis and split evaluations; the
// expression and operation order are part of the bit-identity contract).
//sbw:allocfree phase-step kernel: Lemma 2.2 edge term assembly
func edgeCombine(p1u, p1v, p11 float64, k1u, k0u, k1v, k0v int) float64 {
	p00 := 1 - p1u - p1v + p11
	var e float64
	if p11 > 0 {
		// p11 > 0 implies k1u, k1v ≥ 1 (thresholds are 0 otherwise).
		e += p11 * (1/float64(k1u) + 1/float64(k1v))
	}
	if p00 > 0 {
		// p00 > 0 implies k0u, k0v ≥ 1 (p = 1 coins never show 0).
		e += p00 * (1/float64(k0u) + 1/float64(k0v))
	}
	return e
}

// countBitOnes returns how many candidate colors have bit bitPos set.
func countBitOnes(cands []uint32, bitPos int) int {
	k1 := 0
	for _, c := range cands {
		if c&(1<<bitPos) != 0 {
			k1++
		}
	}
	return k1
}

// filterByBit keeps the candidates whose bitPos-th bit equals val,
// filtering in place.
func filterByBit(cands []uint32, bitPos int, val bool) []uint32 {
	out := cands[:0]
	for _, c := range cands {
		if (c&(1<<bitPos) != 0) == val {
			out = append(out, c)
		}
	}
	return out
}

// removeColor deletes color c from the sorted list if present.
func removeColor(list []uint32, c uint32) []uint32 {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(list) && list[lo] == c {
		return append(list[:lo], list[lo+1:]...)
	}
	return list
}
