// Checkpoint/restore of engine runs at round barriers.
//
// The engine cannot serialize a blocked goroutine's stack, so a cut is a
// contract between the engine and the node program: the program calls
// Ctx.Commit(blob) at the top of a round — after consuming everything
// Next (or SkipUntil/NextDelivery) handed it, before sending anything in
// that round — handing the engine an opaque encoding of its full
// protocol state. The engine supplies the other half of the cut: at the
// barrier entering round R it stages the post-delivery queue backlog and
// the Stats as of R (both leader-only, single-threaded), and at the
// barrier leaving R it checks whether every live node of the domain
// committed at exactly R. If so, blobs + staged backlog + staged Stats
// form a consistent cut: every message a blob has "seen" is out of the
// queues, every message still in a queue is in the cut, and
// Stats.Rounds == R. Resuming restores the round counter, Stats, queue
// backlog, and hands each node its blob through Ctx.Resumed — the
// continuation is bit-identical to the uninterrupted run because the
// engine is deterministic and the cut captured its entire state.
//
// Round barriers are consistent cuts precisely because the engine is a
// lockstep barrier machine: at a barrier no node is mid-round, delivery
// has fully drained (the leader runs it single-threaded before anyone
// wakes), and the only in-flight state is the queued backlog the cut
// records. While a Checkpointer is attached the leader delivers inline
// even on multi-shard pools; by the engine's worker-count-independence
// invariant this changes nothing observable, and it makes every barrier
// a quiescent point where the leader may read all queues without locks.
package engine

import (
	"fmt"
	"math/bits"
	"slices"
	"sync"
)

// NodeCut is one node's share of a cut: its committed state blob, and
// whether the node had already finished (CommitFinal) at the cut.
type NodeCut struct {
	ID   int32
	Done bool
	Blob []byte
}

// QueueCut is the undelivered backlog of one directed edge at the cut:
// the FIFO of edge Sender→receiver, where Slot is the edge's index in
// the sender's sorted adjacency (the sender's outbox slot). Payload
// words are deep copies — senders may recycle message buffers.
type QueueCut struct {
	Sender int32
	Slot   int32
	Msgs   []Message
}

// DomainCut is a consistent cut of one lockstep domain (connected
// component) at the barrier entering round Round: every node's committed
// blob, the undelivered queue backlog, and the domain's Stats as of that
// barrier (Stats.Rounds == Round always). Final marks the domain-end
// cut taken after every node finished with CommitFinal; a final cut has
// no queues and its Stats are the domain's final Stats.
type DomainCut struct {
	Root  int32
	Round int
	Final bool
	Stats Stats
	Nodes []NodeCut
	// Queues is ordered receiver-ascending then neighbor-index-ascending,
	// a canonical order independent of the worker count, so two cuts of
	// the same state encode byte-identically.
	Queues []QueueCut
}

// RunSnapshot is a consistent cut of a whole run: at most one DomainCut
// per lockstep domain, ordered by root. Domains without a cut resume
// from scratch (their nodes see Resumed() == nil), which is exactly
// right — domains are independent, so a run restored from per-domain
// cuts taken at different rounds is still a legal global state.
type RunSnapshot struct {
	Cuts []DomainCut
}

// Checkpointer collects the cuts of a run. Attach one via
// Config.Checkpoint; read it after (or during, via OnCut) the run.
type Checkpointer struct {
	// KeepAll retains every cut instead of only the latest per domain,
	// enabling At() sweeps over all checkpoint rounds.
	KeepAll bool
	// OnCut, when non-nil, observes each cut as it is taken. Calls are
	// serialized, but may come from any domain's leader goroutine; the
	// callback must not block on the run's own progress. The cut and its
	// contents are immutable.
	OnCut func(*DomainCut)

	mu     sync.Mutex
	latest map[int32]*DomainCut
	all    map[int32][]*DomainCut
	cbMu   sync.Mutex
}

func (ck *Checkpointer) record(cut *DomainCut) {
	ck.mu.Lock()
	if ck.latest == nil {
		ck.latest = make(map[int32]*DomainCut)
	}
	ck.latest[cut.Root] = cut
	if ck.KeepAll {
		if ck.all == nil {
			ck.all = make(map[int32][]*DomainCut)
		}
		ck.all[cut.Root] = append(ck.all[cut.Root], cut)
	}
	cb := ck.OnCut
	ck.mu.Unlock()
	if cb != nil {
		ck.cbMu.Lock()
		cb(cut)
		ck.cbMu.Unlock()
	}
}

// Latest assembles a RunSnapshot from the most recent cut of every
// domain, or nil if no cut has been taken.
func (ck *Checkpointer) Latest() *RunSnapshot {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if len(ck.latest) == 0 {
		return nil
	}
	snap := &RunSnapshot{Cuts: make([]DomainCut, 0, len(ck.latest))}
	//sbw:orderinvariant cut collection only; Cuts is sorted by Root before the snapshot is returned
	for _, cut := range ck.latest {
		snap.Cuts = append(snap.Cuts, *cut)
	}
	slices.SortFunc(snap.Cuts, func(a, b DomainCut) int { return int(a.Root) - int(b.Root) })
	return snap
}

// At assembles the snapshot a crash after the barrier of round k would
// restore: for every domain, its latest cut with Round ≤ k. Domains with
// no such cut are omitted and resume from scratch. Requires KeepAll for
// rounds older than each domain's latest cut. Returns a (possibly empty)
// snapshot; resuming from an empty snapshot is a fresh run.
func (ck *Checkpointer) At(k int) *RunSnapshot {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	snap := &RunSnapshot{}
	pick := func(cuts []*DomainCut) *DomainCut {
		var best *DomainCut
		for _, c := range cuts {
			if c.Round <= k && (best == nil || c.Round > best.Round) {
				best = c
			}
		}
		return best
	}
	if ck.KeepAll {
		//sbw:orderinvariant per-domain best-cut selection; Cuts is sorted by Root before the snapshot is returned
		for _, cuts := range ck.all {
			if best := pick(cuts); best != nil {
				snap.Cuts = append(snap.Cuts, *best)
			}
		}
	} else {
		//sbw:orderinvariant cut collection only; Cuts is sorted by Root before the snapshot is returned
		for _, cut := range ck.latest {
			if cut.Round <= k {
				snap.Cuts = append(snap.Cuts, *cut)
			}
		}
	}
	slices.SortFunc(snap.Cuts, func(a, b DomainCut) int { return int(a.Root) - int(b.Root) })
	return snap
}

// CutRounds returns the sorted distinct rounds at which cuts were taken,
// across all domains — the sweep points of a crash-at-every-round test.
func (ck *Checkpointer) CutRounds() []int {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	seen := make(map[int]struct{})
	if ck.KeepAll {
		//sbw:orderinvariant fills a set; the set's contents do not depend on insertion order
		for _, cuts := range ck.all {
			for _, c := range cuts {
				seen[c.Round] = struct{}{}
			}
		}
	} else {
		//sbw:orderinvariant fills a set; the set's contents do not depend on insertion order
		for _, c := range ck.latest {
			seen[c.Round] = struct{}{}
		}
	}
	rounds := make([]int, 0, len(seen))
	//sbw:orderinvariant key collection only; rounds is sorted before being returned
	for r := range seen {
		rounds = append(rounds, r)
	}
	slices.Sort(rounds)
	return rounds
}

// CheckpointEnabled reports whether a Checkpointer is attached to the
// run. Programs gate their Commit encoding on it to keep normal runs
// free of the serialization cost.
func (c *Ctx) CheckpointEnabled() bool { return c.r.ck != nil }

// Commit hands the engine an opaque encoding of this node's complete
// protocol state, valid at the top of the current round: the blob must
// reflect every message the node has consumed, and the node must not
// have sent anything yet this round. A cut is taken at a round exactly
// when every live node of the domain commits in it. The blob is copied.
// No-op when no Checkpointer is attached.
func (c *Ctx) Commit(blob []byte) {
	if c.r.ck == nil {
		return
	}
	c.commitBlob = append(c.commitBlob[:0], blob...)
	c.commitRound = c.r.round
	c.commitValid = true
}

// CommitFinal is Commit for a node about to return: the blob is the
// node's final state, and the node must neither send nor receive
// afterwards. Once every node of a domain has committed final, the
// domain records a final cut with the domain's finished Stats.
func (c *Ctx) CommitFinal(blob []byte) {
	if c.r.ck == nil {
		return
	}
	c.commitBlob = append(c.commitBlob[:0], blob...)
	c.commitRound = c.r.round
	c.commitValid = true
	c.commitDone = true
}

// Resumed returns the blob this node committed in the cut the run was
// resumed from, or nil when the node starts fresh. The program must
// rebuild its state from the blob and proceed exactly as it would have:
// the engine has already restored the round counter, Stats, and queue
// backlog, and the node must not re-consume what the blob reflects.
func (c *Ctx) Resumed() []byte { return c.resumeBlob }

// stageCut snapshots the leader-side half of a potential cut at the
// barrier entering round r.round, after delivery and before any node
// wakes: the Stats as of this barrier (base counters plus the quiescent
// worker counters, merged non-destructively into a copy) and the
// undelivered queue backlog. Leader-only; all senders are parked.
func (r *runner) stageCut() {
	r.stagedValid = true
	r.stagedRound = r.round
	st := r.stats
	st.MergeWorkers(r.wstats)
	r.foldCharged(&st)
	r.stagedStats = st
	r.stagedQueues = r.captureQueues()
}

// captureQueues deep-copies every non-empty edge queue of the domain, in
// canonical order (receiver domain index ascending, then neighbor index
// ascending). It walks the same receiver-dirty flags and pending bitmaps
// delivery walks — read-only — so its cost tracks the actual backlog,
// not the edge set.
func (r *runner) captureQueues() []QueueCut {
	var cuts []QueueCut
	for idx := range r.nodes {
		if !r.rdirty[idx].Load() {
			continue
		}
		c := r.ctxs[r.nodes[idx]]
		for wi := range c.pending {
			word := c.pending[wi].Load()
			for rest := word; rest != 0; rest &= rest - 1 {
				bit := bits.TrailingZeros64(rest)
				i := wi<<6 + bit
				sc := r.ctxs[c.nbr[i]]
				slot := c.srcSlot[i]
				q := &sc.outbox[slot]
				if q.size() == 0 {
					continue
				}
				qc := QueueCut{Sender: c.nbr[i], Slot: slot, Msgs: make([]Message, 0, q.size())}
				for j := q.head; j < len(q.buf); j++ {
					qc.Msgs = append(qc.Msgs, slices.Clone(q.buf[j]))
				}
				cuts = append(cuts, qc)
			}
		}
	}
	return cuts
}

// tryFinalizeCut runs at the entry of completeRound — the barrier
// leaving round r.round, with every node parked — and records a cut when
// the staged state is for this round and every node of the domain either
// finished or committed in exactly this round. Rounds in which at least
// one live node did not commit (it was mid-phase, or sleeping across the
// round) yield no cut; rounds in which the last nodes finished are
// covered by the domain-end final cut instead, whose Stats include the
// finishing round's traffic.
func (r *runner) tryFinalizeCut() {
	if r.ck == nil || !r.stagedValid || r.stagedRound != r.round {
		return
	}
	live := 0
	for _, v := range r.nodes {
		c := r.ctxs[v]
		if c.commitDone {
			continue
		}
		if !c.commitValid || c.commitRound != r.round {
			return
		}
		live++
	}
	if live == 0 {
		return
	}
	cut := &DomainCut{
		Root:   r.nodes[0],
		Round:  r.round,
		Stats:  r.stagedStats,
		Nodes:  make([]NodeCut, len(r.nodes)),
		Queues: r.stagedQueues,
	}
	for i, v := range r.nodes {
		c := r.ctxs[v]
		cut.Nodes[i] = NodeCut{ID: v, Done: c.commitDone, Blob: slices.Clone(c.commitBlob)}
	}
	r.stagedQueues = nil // ownership moved into the cut
	r.ck.record(cut)
}

// finalCut records the domain-end cut once the domain has fully
// finished: every node committed final, the pool is closed, and r.stats
// holds the domain's merged final counters. Skipped unless every node
// finished through CommitFinal.
func (r *runner) finalCut() {
	for _, v := range r.nodes {
		if !r.ctxs[v].commitDone {
			return
		}
	}
	cut := &DomainCut{
		Root:  r.nodes[0],
		Round: r.round,
		Final: true,
		Stats: r.stats,
		Nodes: make([]NodeCut, len(r.nodes)),
	}
	for i, v := range r.nodes {
		cut.Nodes[i] = NodeCut{ID: v, Done: true, Blob: slices.Clone(r.ctxs[v].commitBlob)}
	}
	r.ck.record(cut)
}

// validateCut structurally checks one DomainCut against the component it
// claims to restore, before any domain starts: node set identity, the
// Stats/round invariant, and queue sanity (known sender, valid slot,
// capped widths). A final cut must have no queues.
func validateCut(cut *DomainCut, comp []int32, degreeOf func(int) int32, cfg Config) error {
	if cut.Round < 0 {
		return fmt.Errorf("%s: resume: domain %d cut has negative round %d", cfg.Model, cut.Root, cut.Round)
	}
	if cut.Stats.Rounds != cut.Round {
		return fmt.Errorf("%s: resume: domain %d cut Stats.Rounds=%d != Round=%d", cfg.Model, cut.Root, cut.Stats.Rounds, cut.Round)
	}
	if len(cut.Nodes) != len(comp) {
		return fmt.Errorf("%s: resume: domain %d cut has %d nodes, component has %d", cfg.Model, cut.Root, len(cut.Nodes), len(comp))
	}
	allDone := true
	for i, nc := range cut.Nodes {
		if nc.ID != comp[i] {
			return fmt.Errorf("%s: resume: domain %d cut node %d is %d, component has %d", cfg.Model, cut.Root, i, nc.ID, comp[i])
		}
		if !nc.Done {
			allDone = false
		}
	}
	if allDone && !cut.Final {
		return fmt.Errorf("%s: resume: domain %d cut has every node done but is not final", cfg.Model, cut.Root)
	}
	if cut.Final {
		if !allDone {
			return fmt.Errorf("%s: resume: domain %d final cut has unfinished nodes", cfg.Model, cut.Root)
		}
		if len(cut.Queues) != 0 {
			return fmt.Errorf("%s: resume: domain %d final cut has queued messages", cfg.Model, cut.Root)
		}
	}
	for _, qc := range cut.Queues {
		if _, ok := slices.BinarySearch(comp, qc.Sender); !ok {
			return fmt.Errorf("%s: resume: domain %d cut queues from %d, not in the component", cfg.Model, cut.Root, qc.Sender)
		}
		if qc.Slot < 0 || qc.Slot >= degreeOf(int(qc.Sender)) {
			return fmt.Errorf("%s: resume: domain %d cut queue slot %d out of range for sender %d", cfg.Model, cut.Root, qc.Slot, qc.Sender)
		}
		if len(qc.Msgs) == 0 {
			return fmt.Errorf("%s: resume: domain %d cut has an empty queue for sender %d", cfg.Model, cut.Root, qc.Sender)
		}
		for _, m := range qc.Msgs {
			if len(m) == 0 || len(m) > cfg.MaxWords {
				return fmt.Errorf("%s: resume: domain %d cut queue message of %d words violates the cap %d", cfg.Model, cut.Root, len(m), cfg.MaxWords)
			}
		}
	}
	return nil
}

// restoreCut applies a validated cut to a freshly carved domain, before
// any node goroutine starts: round counter and Stats, per-node blobs
// (done nodes keep their final blob and are never spawned), and the
// queued backlog, re-activating the dirty accounting through the same
// noteQueued path live sends use.
func (r *runner) restoreCut(cut *DomainCut) {
	r.round = cut.Round
	r.stats = cut.Stats
	for i, v := range r.nodes {
		nc := &cut.Nodes[i]
		c := r.ctxs[v]
		if nc.Done {
			c.commitDone = true
			c.commitValid = true
			c.commitRound = cut.Round
			c.commitBlob = slices.Clone(nc.Blob)
		} else {
			c.resumeBlob = slices.Clone(nc.Blob)
		}
	}
	for qi := range cut.Queues {
		qc := &cut.Queues[qi]
		sc := r.ctxs[qc.Sender]
		for _, m := range qc.Msgs {
			sc.noteQueued(int(qc.Slot))
			sc.outbox[qc.Slot].push(slices.Clone(m))
		}
	}
}

// liveNodes counts the nodes of a cut that have not finished — the
// barrier population of the resumed domain.
func liveNodes(cut *DomainCut) int {
	live := 0
	for _, nc := range cut.Nodes {
		if !nc.Done {
			live++
		}
	}
	return live
}
