package engine_test

import (
	"strings"
	"sync"
	"testing"

	"smallbandwidth/internal/engine"
	"smallbandwidth/internal/graph"
)

// TestSkipUntilCountsRoundsLikeNextLoop: a SkipUntil sleep must leave the
// run's Stats bit-identical to ticking the same rounds through Next.
func TestSkipUntilCountsRoundsLikeNextLoop(t *testing.T) {
	g := graph.Cycle(32)
	run := func(skip bool) engine.Stats {
		t.Helper()
		st, err := engine.Run(g, engine.Config{}, func(ctx *engine.Ctx) {
			for r := 0; r < 3; r++ {
				for _, w := range ctx.Neighbors() {
					ctx.Send(int(w), engine.Message{1, uint64(r)})
				}
				ctx.Next()
			}
			if skip {
				if in := ctx.SkipUntil(100); len(in) != 0 {
					panic("unexpected delivery while skipping")
				}
			} else {
				for ctx.Round() < 100 {
					if in := ctx.Next(); len(in) != 0 {
						panic("unexpected delivery while spinning")
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return *st
	}
	spin, skipped := run(false), run(true)
	if spin != skipped {
		t.Fatalf("SkipUntil stats %+v differ from Next-loop stats %+v", skipped, spin)
	}
	if spin.Rounds != 100 {
		t.Fatalf("expected 100 rounds, got %d", spin.Rounds)
	}
}

// TestSkipUntilReturnsDeliveriesInOrder: messages delivered while a node
// sleeps are returned by SkipUntil exactly as consecutive Next calls
// would have concatenated them.
func TestSkipUntilReturnsDeliveriesInOrder(t *testing.T) {
	g := graph.Path(2)
	var got []uint64
	_, err := engine.Run(g, engine.Config{}, func(ctx *engine.Ctx) {
		if ctx.ID() == 0 {
			for i := 0; i < 5; i++ {
				ctx.SendQueued(1, engine.Message{1, uint64(i)})
			}
			ctx.SkipUntil(8)
			return
		}
		for _, in := range ctx.SkipUntil(8) {
			got = append(got, in.Payload[1])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d messages, want 5", len(got))
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("message %d out of order: %d", i, v)
		}
	}
}

// TestNextDeliveryWakesOnArrival: a NextDelivery sleeper observes a
// message in exactly the round a Next loop would have.
func TestNextDeliveryWakesOnArrival(t *testing.T) {
	g := graph.Path(2)
	var wakeRound int
	_, err := engine.Run(g, engine.Config{}, func(ctx *engine.Ctx) {
		if ctx.ID() == 0 {
			if in := ctx.SkipUntil(10); len(in) != 0 {
				panic("node 0 received unexpectedly")
			}
			ctx.Send(1, engine.Message{7})
			ctx.Next()
			return
		}
		in := ctx.NextDelivery()
		if len(in) != 1 || in[0].Payload[0] != 7 {
			panic("node 1 woke without its message")
		}
		wakeRound = ctx.Round()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 sends in round 10; delivery lands in round 11.
	if wakeRound != 11 {
		t.Fatalf("waiter woke in round %d, want 11", wakeRound)
	}
}

// TestNextDeliveryDeadlockDetected: when every node of a domain waits
// for a message and nothing is queued, the engine reports a protocol
// deadlock instead of hanging.
func TestNextDeliveryDeadlockDetected(t *testing.T) {
	g := graph.Path(3)
	_, err := engine.Run(g, engine.Config{}, func(ctx *engine.Ctx) {
		ctx.NextDelivery() // nobody ever sends
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected a deadlock error, got %v", err)
	}
}

// disjointUnion builds a graph of several components: one cycle, one
// path, and isolated nodes.
func disjointUnion() *graph.Graph {
	b := graph.NewBuilder(20)
	for i := 0; i < 8; i++ {
		b.MustAddEdge(i, (i+1)%8) // cycle on 0..7
	}
	for i := 8; i < 14; i++ {
		b.MustAddEdge(i, i+1) // path on 8..14
	}
	return b.Build() // 15..19 isolated
}

// TestDomainsComposeInParallel: a disconnected run's Stats are the
// parallel composition of its components — max rounds, summed traffic —
// and RunWithDomains exposes the per-component breakdown.
func TestDomainsComposeInParallel(t *testing.T) {
	g := disjointUnion()
	var mu sync.Mutex
	rounds := map[int]int{}
	st, doms, err := engine.RunWithDomains(g, engine.Config{}, func(ctx *engine.Ctx) {
		// Components run different numbers of rounds.
		limit := 5
		if ctx.ID() < 8 {
			limit = 40
		} else if ctx.ID() < 15 {
			limit = 17
		}
		for r := 0; r < limit; r++ {
			for _, w := range ctx.Neighbors() {
				ctx.Send(int(w), engine.Message{uint64(r + 1)})
			}
			ctx.Next()
		}
		mu.Lock()
		if ctx.Round() > rounds[ctx.ID()] {
			rounds[ctx.ID()] = ctx.Round()
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 40 {
		t.Fatalf("run rounds %d, want max-over-components 40", st.Rounds)
	}
	// cycle: 40 rounds × 16 directed edges; path: 17 × 12; isolated: 0.
	if want := int64(40*16 + 17*12); st.Messages != want {
		t.Fatalf("messages %d, want %d", st.Messages, want)
	}
	if len(doms) != 7 {
		t.Fatalf("expected 7 domains, got %d", len(doms))
	}
	if doms[0].Root != 0 || doms[0].Stats.Rounds != 40 || doms[0].Stats.Messages != 40*16 {
		t.Fatalf("cycle domain stats wrong: %+v", doms[0])
	}
	if doms[1].Root != 8 || doms[1].Stats.Rounds != 17 || doms[1].Stats.Messages != 17*12 {
		t.Fatalf("path domain stats wrong: %+v", doms[1])
	}
	for i := 2; i < 7; i++ {
		if doms[i].Stats.Messages != 0 {
			t.Fatalf("isolated domain %d delivered messages: %+v", i, doms[i])
		}
	}
}

// TestDomainsDeterministicAcrossShards: the domain-split engine with
// sleeps stays bit-deterministic whatever the worker count.
func TestDomainsDeterministicAcrossShards(t *testing.T) {
	g := disjointUnion()
	run := func(shards int) engine.Stats {
		t.Helper()
		engine.SetForceShards(shards)
		defer engine.SetForceShards(0)
		st, err := engine.Run(g, engine.Config{}, func(ctx *engine.Ctx) {
			if ctx.Degree() == 0 {
				ctx.SkipUntil(25)
				return
			}
			// Queue a burst (drains one per edge per round), tick a few
			// rounds, then sleep-collect the backlog and resynchronize.
			for i := 0; i < 8; i++ {
				for _, w := range ctx.Neighbors() {
					ctx.SendQueued(int(w), engine.Message{uint64(ctx.ID()), uint64(i)})
				}
			}
			for r := 0; r < 3; r++ {
				ctx.Next()
			}
			for _, in := range ctx.SkipUntil(12) {
				_ = in
			}
			ctx.SkipUntil(25)
		})
		if err != nil {
			t.Fatal(err)
		}
		return *st
	}
	base := run(1)
	for _, shards := range []int{2, 5} {
		if st := run(shards); st != base {
			t.Fatalf("shards=%d stats %+v != serial %+v", shards, st, base)
		}
	}
}
