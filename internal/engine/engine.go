// Package engine is the shared sharded round engine under all three
// model simulators of this repository (CONGEST, CONGESTED CLIQUE, MPC).
// It owns one copy of the parallel hot path:
//
//   - a barrier that is a single atomic counter (no global mutex), with
//     nodes sleeping on per-shard release channels so wake-up is batched
//     shard by shard;
//   - message delivery sharded by *receiver* across a pool of
//     GOMAXPROCS workers with per-worker stats, merged once the workers
//     are quiescent (sums and max, so totals are order-independent);
//   - double-buffered inboxes and head-indexed outbox FIFOs that recycle
//     their backing arrays, so steady-state rounds allocate nothing per
//     edge;
//   - a sharded dirty-edge counter that skips the delivery scan entirely
//     on quiet rounds, plus per-receiver dirty flags that keep a busy
//     round's scan proportional to actual traffic instead of the edge
//     set;
//   - sleep primitives that take spinning nodes out of the barrier
//     population: SkipUntil (sleep to a known round, e.g. a scheduled
//     resynchronization) and NextDelivery (sleep until the next message
//     arrives), with skipped rounds advancing — and counted — on the
//     other nodes' schedule or fast-forwarded when everyone sleeps;
//   - one independent lockstep domain per connected component of the
//     topology: components exchange no messages, so each runs its own
//     barrier and pool (bounded to GOMAXPROCS domains in flight), and a
//     run over a disconnected topology is the parallel composition of
//     its components — max rounds, summed traffic.
//
// Receiver-sharding keeps everything deterministic: each inbox is filled
// by exactly one worker, in ascending sender order — the exact delivery
// order of a sequential scan — so Stats and protocol behavior are
// bit-for-bit independent of the worker count, and the sleep primitives
// wake a node in exactly the round a Next loop would have acted.
//
// The engine is parameterized over an endpoint Topology. The CONGEST
// simulator (internal/congest) is a thin adapter passing its
// communication graph and running blocking per-node programs through
// Run. The CLIQUE simulator runs its data-parallel all-to-all exchanges
// on the same Pool via Scatter (all-to-all topology), and the MPC
// Section 5 tools move records machine-to-machine through the Pool with
// the per-round IO accounting folded into the shard workers.
package engine

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// Message is the payload of one message: a short slice of 64-bit words.
// In the standard parameterization one word models Θ(log n) bits.
type Message []uint64

// Incoming is a delivered message together with its sender's ID.
type Incoming struct {
	From    int
	Payload Message
}

// Directed is an outgoing message with an explicit destination, the unit
// of the data-parallel exchange fabrics built on Scatter.
type Directed struct {
	To      int32
	Payload Message
}

// Topology describes the endpoint structure the engine runs on: a fixed
// set of endpoints 0..N-1 and, for each, the sorted list of peers it may
// exchange messages with. *graph.Graph satisfies it directly (CONGEST);
// AllToAll is the CONGESTED CLIQUE structure.
type Topology interface {
	N() int
	// Neighbors returns the sorted peer IDs of v. The engine retains the
	// slice; it must not change during a run.
	Neighbors(v int) []int32
}

// ArcTopology is the optional flat-layout extension of Topology: a
// topology stored in compressed-sparse-row form exposes its offset
// table and arc arena so the engine's setup reads degrees straight off
// the offset table and slices neighbor rows out of the arena, instead
// of materializing each row through the interface. *graph.Graph and
// AllToAll both satisfy it; topologies that don't are handled through
// the plain Neighbors path at identical behavior.
type ArcTopology interface {
	Topology
	// CSR returns the offset table (len N()+1) and arc arena: endpoint
	// v's peers are nbr[off[v]:off[v+1]], sorted ascending. The engine
	// retains both slices; they must not change during a run.
	CSR() (off, nbr []int32)
}

// AllToAll is the complete topology on n endpoints: every endpoint is a
// peer of every other, as in the CONGESTED CLIQUE. It materializes the
// n·(n−1) arcs in one flat CSR arena, which is inherent to running
// per-node programs on a clique; the data-parallel clique simulator
// avoids it by exchanging through Scatter instead.
type AllToAll struct {
	n   int
	off []int32
	nbr []int32
}

// NewAllToAll builds the complete topology on n endpoints.
func NewAllToAll(n int) *AllToAll {
	if n > 0 && n*(n-1) > (1<<31)-1 {
		panic(fmt.Sprintf("engine: AllToAll(%d) exceeds the int32 arc space", n))
	}
	off := make([]int32, n+1)
	nbr := make([]int32, 0, n*(n-1))
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int32(n-1)
		for u := 0; u < n; u++ {
			if u != v {
				nbr = append(nbr, int32(u))
			}
		}
	}
	return &AllToAll{n: n, off: off, nbr: nbr}
}

// N returns the endpoint count.
func (a *AllToAll) N() int { return a.n }

// Neighbors returns the peers of v (all other endpoints), sorted.
func (a *AllToAll) Neighbors(v int) []int32 { return a.nbr[a.off[v]:a.off[v+1]] }

// CSR returns the flat all-to-all layout.
func (a *AllToAll) CSR() (off, nbr []int32) { return a.off, a.nbr }

// Config controls a Run.
type Config struct {
	// MaxWords is the bandwidth cap per edge per direction per round, in
	// 64-bit words. Zero means the default of 4 words (≈ 4·64 bits, a
	// constant number of O(log n)-bit words).
	MaxWords int
	// MaxRounds aborts runs that exceed this many rounds (default 1<<22),
	// turning protocol livelocks into test failures instead of hangs.
	MaxRounds int
	// Model prefixes error messages with the simulated model's name
	// ("congest", "clique", ...) so violations read in the caller's
	// vocabulary. Empty means "engine".
	Model string
	// Workers bounds the delivery/compute parallelism of the run: the
	// worker count of each domain's shard pool and the number of lockstep
	// domains in flight. Zero inherits GOMAXPROCS (the historical
	// behavior); negative values or values beyond MaxWorkers are rejected
	// with a diagnostic before any node program starts. The worker count
	// never changes results — receiver-sharded delivery keeps Stats and
	// protocol behavior bit-identical at any setting (the
	// *DeterministicAcrossShards suites pin this).
	Workers int
	// Checkpoint, when non-nil, collects consistent per-domain cuts at
	// the round barriers in which every node committed its state (see
	// Ctx.Commit). While attached, delivery runs inline on the round
	// leader even on multi-shard pools — observationally identical by the
	// worker-independence invariant, and it makes every barrier a
	// quiescent point the leader can capture without locks.
	Checkpoint *Checkpointer
	// Resume, when non-nil, restores each domain from its cut in the
	// snapshot before any node program starts: round counter, Stats,
	// queued backlog, and per-node blobs (via Ctx.Resumed). Domains
	// without a cut start fresh; nodes marked done are never spawned.
	Resume *RunSnapshot
}

// MaxWorkers caps Config.Workers: beyond this the setting is a typo or
// an attempt to use a worker count as something else, not a parallelism
// choice any host could honor.
const MaxWorkers = 4096

func (c Config) withDefaults() Config {
	if c.MaxWords == 0 {
		c.MaxWords = 4
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 1 << 22
	}
	if c.Model == "" {
		c.Model = "engine"
	}
	return c
}

// Stats aggregates the measured cost of a run.
type Stats struct {
	Rounds          int   // number of synchronous rounds executed
	Messages        int64 // messages delivered
	Words           int64 // total words delivered
	MaxMessageWords int   // widest single message observed
}

// errAborted unwinds node goroutines when any node fails.
var errAborted = errors.New("engine: run aborted")

// fifo is a per-directed-edge message queue. The head index replaces
// memmove-on-pop, and a drained queue rewinds to reuse its backing
// array, so steady-state traffic does not allocate.
type fifo struct {
	buf  []Message
	head int
}

func (q *fifo) push(m Message) { q.buf = append(q.buf, m) }

func (q *fifo) size() int { return len(q.buf) - q.head }

func (q *fifo) pop() Message {
	m := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head >= 32 && q.head*2 >= len(q.buf) {
		// A queue that never fully drains (steady backlog) would advance
		// head and len in lockstep forever; compacting once the dead
		// prefix reaches half the slice keeps memory O(backlog) at
		// amortized O(1) per pop.
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return m
}

// Ctx is a node's handle to the simulation. All methods must be called
// only from that node's own goroutine.
type Ctx struct {
	r     *runner
	id    int
	shard int
	nbr   []int32 // peer node IDs, sorted
	// srcSlot[i] is this node's index in peer nbr[i]'s adjacency list:
	// the slot of edge nbr[i]→me in that peer's outbox. It lets the
	// delivery workers pull from sender queues receiver-side without any
	// lookups.
	srcSlot []int32

	outbox  []fifo // per-peer FIFO of pending messages
	sentNow []bool // direct Send already used this round, per peer

	// inboxes double-buffers delivery: workers fill inboxes[cur] while
	// the node still holds the slice returned by the previous Next.
	inboxes [2][]Incoming
	cur     int

	// domIdx is this node's position in its runner's nodes slice; it
	// indexes the runner's receiver-dirty array.
	domIdx int32

	// pending is a bitmap over this node's neighbor indexes: bit i set
	// means neighbor nbr[i]'s queue toward this node is non-empty.
	// Senders set bits (CAS — concurrent senders share words) when an
	// edge queue activates; the delivery worker owning this receiver
	// walks only the set bits instead of probing every inbound queue,
	// and rewrites each word plainly (delivery runs with all senders
	// parked at the barrier).
	pending []atomic.Uint64

	// waiting marks a node sleeping in NextDelivery; wakeCh is closed by
	// the delivery side in the first round that hands it a message.
	waiting bool
	wakeCh  chan struct{}

	// Checkpoint state. commitBlob/commitRound/commitValid hold the last
	// Ctx.Commit of this node (written by the node's goroutine, read by
	// the round leader at the barrier — ordered by the pending-counter
	// RMW chain, like all other node state the leader touches).
	// commitDone marks a CommitFinal; resumeBlob is the blob handed back
	// through Resumed on a restored run.
	commitBlob  []byte
	commitRound int
	commitValid bool
	commitDone  bool
	resumeBlob  []byte
}

// ID returns this node's identifier.
func (c *Ctx) ID() int { return c.id }

// N returns the number of nodes in the network (nodes know n, as is
// standard in the simulated models).
func (c *Ctx) N() int { return c.r.n }

// Degree returns this node's degree (peer count).
func (c *Ctx) Degree() int { return len(c.nbr) }

// Neighbors returns the sorted IDs of this node's peers. Read-only.
func (c *Ctx) Neighbors() []int32 { return c.nbr }

// MaxWords returns the per-message bandwidth cap of the simulation.
func (c *Ctx) MaxWords() int { return c.r.cfg.MaxWords }

// NeighborIndex returns the index of peer ID in Neighbors(), or -1.
// It is a binary search over the sorted adjacency slice: cache-resident
// for the small degrees typical of CONGEST inputs, and with none of the
// footprint of a per-node hash map.
func (c *Ctx) NeighborIndex(id int) int {
	if i, ok := slices.BinarySearch(c.nbr, int32(id)); ok {
		return i
	}
	return -1
}

// Round returns the current round number (starting at 0).
func (c *Ctx) Round() int { return c.r.round }

// Send queues a message to peer `to` for delivery next round. It is a
// protocol violation (aborting the run) to send twice to the same peer
// in one round, to exceed the bandwidth cap, or to send to a non-peer.
func (c *Ctx) Send(to int, msg Message) {
	i := c.NeighborIndex(to)
	if i < 0 {
		c.r.fail(fmt.Errorf("%s: node %d sent to non-neighbor %d", c.r.cfg.Model, c.id, to))
		panic(errAborted)
	}
	if c.sentNow[i] {
		c.r.fail(fmt.Errorf("%s: node %d sent twice to %d in round %d", c.r.cfg.Model, c.id, to, c.r.round))
		panic(errAborted)
	}
	if c.outbox[i].size() > 0 {
		c.r.fail(fmt.Errorf("%s: node %d direct Send to %d with queued backlog", c.r.cfg.Model, c.id, to))
		panic(errAborted)
	}
	c.checkWidth(msg)
	c.sentNow[i] = true
	c.noteQueued(i)
	c.outbox[i].push(msg)
}

// SendQueued appends a message to the FIFO for peer `to`; one queued
// message per edge per direction is delivered each round, so bursts are
// pipelined across rounds exactly as congestion forces in the real model.
func (c *Ctx) SendQueued(to int, msg Message) {
	i := c.NeighborIndex(to)
	if i < 0 {
		c.r.fail(fmt.Errorf("%s: node %d queued to non-neighbor %d", c.r.cfg.Model, c.id, to))
		panic(errAborted)
	}
	c.checkWidth(msg)
	c.noteQueued(i)
	c.outbox[i].push(msg)
}

// noteQueued maintains the dirty accounting: called before a push that
// makes the edge queue at index i non-empty, it bumps the sender-shard
// queue counter and flags the receiver as having pending incoming
// traffic. The sender that flips the receiver's rdirty flag false→true
// also appends the receiver to its shard's delivery worklist (the CAS
// makes the append exactly-once per receiver per list), so a round's
// delivery walks only the receivers that actually have traffic instead
// of scanning the whole flag array. All writes are ordered before the
// barrier that delivers them, since the sender reaches its own barrier
// arrival after sending.
func (c *Ctx) noteQueued(i int) {
	if c.outbox[i].size() == 0 {
		c.r.dirty[c.shard].v.Add(1)
		rc := c.r.ctxs[c.nbr[i]]
		if c.r.rdirty[rc.domIdx].CompareAndSwap(false, true) {
			sw := &c.r.work[rc.shard]
			// Concurrent senders (to different receivers of this shard)
			// claim disjoint slots via the cursor; the side index is stable
			// while any sender runs — it flips only during delivery, with
			// every sender parked at the barrier.
			sw.lists[sw.side][sw.count[sw.side].Add(1)-1] = rc.domIdx
		}
		slot := c.srcSlot[i]
		w := &rc.pending[slot>>6]
		bit := uint64(1) << (slot & 63)
		for {
			old := w.Load()
			if old&bit != 0 || w.CompareAndSwap(old, old|bit) {
				return
			}
		}
	}
}

func (c *Ctx) checkWidth(msg Message) {
	if len(msg) > c.r.cfg.MaxWords {
		c.r.fail(fmt.Errorf("%s: node %d message of %d words exceeds cap %d",
			c.r.cfg.Model, c.id, len(msg), c.r.cfg.MaxWords))
		panic(errAborted)
	}
	if len(msg) == 0 {
		c.r.fail(fmt.Errorf("%s: node %d sent empty message", c.r.cfg.Model, c.id))
		panic(errAborted)
	}
}

// ChargeTraffic accounts messages/words the node's protocol computed
// analytically instead of delivering one by one: a node that can prove
// what a fixed-length communication segment would carry (and what every
// participant would conclude from it) may skip the delivery and charge
// the traffic here, keeping the reported Stats bit-identical to the
// message-by-message execution. maxWidth is the widest message the
// skipped segment would have sent, in words; it must respect the
// bandwidth cap exactly as a real Send would. Charges fold into the
// run's Stats wherever delivered traffic does — the end-of-run merge
// and every staged checkpoint cut — so a charging protocol stays
// checkpoint/restore-consistent as long as it charges a segment's
// traffic before the next commit barrier. Rounds are not charged here:
// the node still advances through the segment's rounds (SkipUntil), so
// round accounting needs no substitute.
func (c *Ctx) ChargeTraffic(messages, words int64, maxWidth int) {
	r := c.r
	if messages < 0 || words < 0 {
		r.fail(fmt.Errorf("%s: node %d charged negative traffic (%d messages, %d words)",
			r.cfg.Model, c.id, messages, words))
		panic(errAborted)
	}
	if messages == 0 && words == 0 {
		return
	}
	if maxWidth <= 0 || maxWidth > r.cfg.MaxWords {
		r.fail(fmt.Errorf("%s: node %d charged message width %d outside (0, %d]",
			r.cfg.Model, c.id, maxWidth, r.cfg.MaxWords))
		panic(errAborted)
	}
	r.chargedMsgs.Add(messages)
	r.chargedWords.Add(words)
	for {
		old := r.chargedMaxW.Load()
		if int64(maxWidth) <= old || r.chargedMaxW.CompareAndSwap(old, int64(maxWidth)) {
			return
		}
	}
}

// foldCharged adds the analytically charged traffic into st; called
// exactly where worker stats fold (end of run, staged cuts).
func (r *runner) foldCharged(st *Stats) {
	st.Messages += r.chargedMsgs.Load()
	st.Words += r.chargedWords.Load()
	if w := int(r.chargedMaxW.Load()); w > st.MaxMessageWords {
		st.MaxMessageWords = w
	}
}

// Pending reports whether any queued messages remain undelivered.
func (c *Ctx) Pending() bool {
	for i := range c.outbox {
		if c.outbox[i].size() > 0 {
			return true
		}
	}
	return false
}

// Next ends the node's current round and blocks until all nodes have done
// so; it returns the messages delivered to this node for the new round.
// The returned slice is valid until the following Next call.
func (c *Ctx) Next() []Incoming {
	if !c.r.barrierWait(c) {
		panic(errAborted)
	}
	return c.flipInbox()
}

// SkipUntil ends the node's current round and removes the node from the
// barrier population until the given absolute round number: the rounds in
// between advance on the other nodes' schedule (or fast-forward when
// every node is skipping), without this node being woken per round. It
// returns every message delivered to the node while it slept, in round
// order with ascending senders within a round — exactly what repeated
// Next calls would have concatenated — so a long synchronization spin or
// a wait for a deterministically scheduled message costs one sleep
// instead of target−round barrier participations. Stats are unchanged:
// skipped rounds are counted exactly as if the node had ticked them.
// If target is not beyond the current round, SkipUntil is a no-op
// returning nil (the node stays in its current round).
func (c *Ctx) SkipUntil(target int) []Incoming {
	r := c.r
	if r.sh.aborted.Load() {
		panic(errAborted)
	}
	if target <= r.round {
		return nil
	}
	s := &r.skipShards[c.shard]
	s.mu.Lock()
	g := s.at[target]
	if g == nil {
		g = &skipGroup{ch: make(chan struct{})}
		s.at[target] = g
		r.skipGroups.Add(1)
	}
	g.n++
	s.mu.Unlock()
	r.leaves.Add(1)
	if r.pending.Add(-1) == 0 {
		r.completeRound()
	}
	<-g.ch
	if r.sh.aborted.Load() {
		panic(errAborted)
	}
	return c.flipInbox()
}

// NextDelivery ends the node's current round and removes the node from
// the barrier population until the first round that delivers it a
// message; it returns that round's messages. Rounds in between advance
// on the other nodes' schedule without waking this node, so a wait of
// unknown length for the next protocol event (a flooding wave, a tree
// report) costs one sleep instead of one barrier participation per
// round. Stats are unchanged — the node observes the message in exactly
// the round it would have seen it from a Next loop. If every node of the
// domain is waiting and nothing is queued, no message can ever arrive
// and the run fails with a deadlock error (the analogue of MaxRounds for
// event-driven waits).
func (c *Ctx) NextDelivery() []Incoming {
	r := c.r
	if r.sh.aborted.Load() {
		panic(errAborted)
	}
	c.waiting = true
	c.wakeCh = make(chan struct{})
	r.waiters.Add(1)
	r.leaves.Add(1)
	if r.pending.Add(-1) == 0 {
		r.completeRound()
	}
	<-c.wakeCh
	if r.sh.aborted.Load() {
		panic(errAborted)
	}
	return c.flipInbox()
}

// flipInbox swaps the double buffer and returns the delivered messages,
// shared by Next, SkipUntil, and NextDelivery.
func (c *Ctx) flipInbox() []Incoming {
	in := c.inboxes[c.cur]
	c.cur ^= 1
	c.inboxes[c.cur] = c.inboxes[c.cur][:0]
	return in
}

// padCounter is a cache-line-padded atomic counter: the dirty-edge
// counts are sharded by sender so concurrent senders don't serialize on
// one line.
type padCounter struct {
	v atomic.Int64
	_ [7]uint64
}

// roundTask is one round's delivery coordination: deliver every shard's
// receiver range, then wake each shard by closing old[shard].
type roundTask struct {
	old  []chan struct{} // the round's release channels, one per shard
	done chan struct{}   // closed when every shard finished delivering
}

// shared is the cross-domain state of one Run: the abort flag and the
// first error are common to every lockstep domain, so a violation
// anywhere unwinds the whole run.
type shared struct {
	aborted atomic.Bool
	errMu   sync.Mutex
	err     error
}

func (sh *shared) fail(err error) {
	sh.errMu.Lock()
	if sh.err == nil {
		sh.err = err
	}
	sh.errMu.Unlock()
	sh.aborted.Store(true)
}

// runner drives one lockstep domain of a simulation: one connected
// component of the topology. Components exchange no messages, so each
// runs its own barrier, round counter, and delivery pool — a run over a
// disconnected topology is the parallel composition of its components
// (Stats fold as max rounds / summed traffic), and the per-node view
// (round numbering, delivery order) is identical to a single global
// barrier because a node's round count is just its own barrier count.
// Splitting the barrier keeps each component's goroutine set scheduled
// in bursts (cache-resident) and lets components progress independently
// on multicore hosts. The Topology is consumed during setup in Run;
// afterwards everything the engine needs lives in the Ctxs.
type runner struct {
	n     int     // total endpoint count of the run (Ctx.N())
	nodes []int32 // this domain's endpoints, ascending
	sh    *shared
	cfg   Config
	ctxs  []*Ctx // global ctx table, shared across domains

	// Barrier. pending counts the arrivals outstanding this round; the
	// goroutine whose arrival (or departure) takes it to zero is the
	// round leader and runs completeRound while every other node sleeps,
	// so the leader may touch active/round/stats without locks. Sleepers
	// wait on their shard's release channel; each channel is read before
	// the pending decrement, which orders it before the leader's
	// replacement write.
	pending  atomic.Int64
	leaves   atomic.Int64    // departures since the last barrier
	releases []chan struct{} // one per shard; replaced by the leader each round
	active   int64
	round    int

	stats Stats

	// Sharded delivery. Worker i of the pool owns receivers [Bounds(i))
	// and the matching release shard. shardFns are pre-allocated per-shard
	// closures; cur is the round task they read, written by the leader
	// before dispatch (ordered by the task-channel send).
	pool     *Pool
	wstats   []WorkerStats
	shardFns []func(int)
	cur      roundTask
	left     atomic.Int32

	// dirty[s] counts non-empty edge queues whose sender lives in shard
	// s. When the total is zero at a barrier the whole delivery scan is
	// skipped, so protocol-free synchronization rounds (SpinUntil, pure
	// barriers) cost O(shards) instead of O(m).
	dirty []padCounter

	// rdirty[idx] is set by senders when an incoming edge queue of node
	// nodes[idx] becomes non-empty, and cleared by the delivery worker
	// owning that receiver once all its incoming queues drain. The flag
	// doubles as the exactly-once guard for the per-shard delivery
	// worklists in `work`: the sender whose CAS flips it appends the
	// receiver there, so delivery never scans this array — a round's cost
	// is O(receivers with traffic), not O(domain), which is what lets
	// wave-shaped protocols (BFS converges, flooding fronts) scale to
	// million-node domains.
	rdirty []atomic.Bool

	// work[s] is shard s's delivery worklist: the receivers (domain
	// indexes) owned by shard s that have pending inbound traffic this
	// round. Double-buffered — senders append to lists[side] between
	// barriers, delivery drains it and re-appends backlogged receivers to
	// the other side before flipping, with the flip ordered before any
	// sender wakes by the release-channel chain.
	work []shardWork

	// skipShards groups the nodes sleeping in SkipUntil by wake round,
	// striped by the sleeper's shard so a converge wave registering the
	// whole domain in one round doesn't serialize on a single mutex. The
	// leader readmits groups when it advances into their round (collecting
	// across stripes), and fast-forwards when every remaining node is
	// asleep. skipGroups counts the live groups across all stripes, so the
	// quiet-path checks stay O(1).
	skipShards []skipShard
	skipGroups atomic.Int64
	// wakeScratch is the leader's reusable buffer for the groups waking
	// into the round being entered (leader-only).
	wakeScratch []*skipGroup

	// NextDelivery accounting: waiters counts sleeping message-waiters;
	// wokenByShard collects, per delivery worker, the waiters that shard
	// handed a message this round (disjoint receivers, so no locks). The
	// waker (last delivery worker, or the leader on inline paths) folds
	// them back into the population before anyone is released.
	waiters      atomic.Int64
	wokenByShard [][]*Ctx

	// Analytically charged traffic (Ctx.ChargeTraffic): message/word
	// counts for communication whose outcome a protocol computed in
	// closed form instead of delivering message by message. Folded into
	// stats wherever worker stats are folded (end of run, staged cuts),
	// so charged and delivered traffic are indistinguishable in every
	// reported Stats. Atomics: any awake node may charge, and charges
	// are rare (once per aggregated segment), so contention is nil.
	chargedMsgs  atomic.Int64
	chargedWords atomic.Int64
	chargedMaxW  atomic.Int64

	// Checkpointing (nil/zero when Config.Checkpoint is unset). The
	// staged fields hold the leader-side half of a potential cut,
	// captured at the barrier entering stagedRound (see stageCut); the
	// cut is finalized at the barrier leaving that round if every node
	// committed in it. All leader-only.
	ck           *Checkpointer
	stagedValid  bool
	stagedRound  int
	stagedStats  Stats
	stagedQueues []QueueCut
}

// skipGroup is the set of nodes sleeping until one wake round.
type skipGroup struct {
	n  int64
	ch chan struct{}
}

// skipShard is one stripe of the SkipUntil registry, padded so stripes
// under concurrent registration don't share cache lines.
type skipShard struct {
	mu sync.Mutex
	at map[int]*skipGroup
	_  [4]uint64
}

// shardWork is one shard's double-buffered delivery worklist. Senders
// append receiver indexes to lists[side] through an atomic cursor (the
// rdirty CAS in noteQueued makes each receiver appear at most once);
// the shard's delivery drains the current side, re-appends backlogged
// receivers to the other, and flips. List order is sender-arrival order
// and so scheduler-dependent — harmless, because each receiver's inbox
// is still filled in ascending sender order by the pending-bitmap walk,
// and the leader-side checkpoint staging iterates nodes, not worklists.
type shardWork struct {
	lists [2][]int32
	count [2]atomic.Int32
	side  int
	_     [4]uint64
}

// shardMin keeps tiny topologies on the sequential path: below this many
// nodes per worker the dispatch overhead outweighs the parallelism.
const shardMin = 256

func (r *runner) fail(err error) { r.sh.fail(err) }

// barrierWait blocks until all active nodes arrive; the arrival that
// completes the barrier becomes the leader and advances the round.
// Returns false if the run aborted.
func (r *runner) barrierWait(c *Ctx) bool {
	if r.sh.aborted.Load() {
		return false
	}
	// Read the release channel before decrementing: the leader only
	// replaces r.releases after pending hits zero, i.e. after this read.
	rel := r.releases[c.shard]
	if r.pending.Add(-1) == 0 {
		r.completeRound()
	} else {
		<-rel
	}
	return !r.sh.aborted.Load()
}

// leave removes a finished node from the barrier population. A departure
// counts as this round's arrival, and is deducted from the population at
// the next barrier.
func (r *runner) leave() {
	r.leaves.Add(1)
	if r.pending.Add(-1) == 0 {
		r.completeRound()
	}
}

// completeRound runs once per barrier, by the single goroutine whose
// arrival, departure, or skip registration took pending to zero: apply
// departures, readmit skippers whose wake round arrives, advance the
// round, deliver queued messages across the worker shards, and wake the
// sleepers shard by shard (skip groups last, after delivery finishes).
// When every remaining node is asleep in a skip group, rounds
// fast-forward one by one — still counted, still delivering any queued
// backlog — with nobody woken until the earliest wake round.
func (r *runner) completeRound() {
	// This barrier leaves round r.round with every node parked: if the
	// staged state is for this round and every node committed in it, the
	// two halves form a consistent cut.
	r.tryFinalizeCut()
	r.active -= r.leaves.Swap(0)
	for {
		// Nodes scheduled to wake in the round being entered rejoin the
		// population before that round's barrier forms. Groups for one
		// round may live in several stripes (one per sleeper shard); the
		// leader collects them all, so nothing below depends on striping.
		next := r.round + 1
		wake := r.wakeScratch[:0]
		if r.skipGroups.Load() > 0 {
			for si := range r.skipShards {
				s := &r.skipShards[si]
				s.mu.Lock()
				if g := s.at[next]; g != nil {
					delete(s.at, next)
					wake = append(wake, g)
				}
				s.mu.Unlock()
			}
			if len(wake) > 0 {
				r.skipGroups.Add(-int64(len(wake)))
			}
		}
		r.wakeScratch = wake
		skipsLeft := int(r.skipGroups.Load())
		for _, g := range wake {
			r.active += g.n
		}

		if r.active <= 0 {
			if skipsLeft == 0 && r.waiters.Load() == 0 {
				return // the last node left; nobody is sleeping
			}
			if skipsLeft == 0 && !r.anyQueued() {
				// Only message-waiters remain and nothing is in flight: no
				// message can ever materialize.
				r.fail(fmt.Errorf("%s: every node is waiting for a message and none are queued (protocol deadlock)", r.cfg.Model))
				r.wakeAllSleepers()
				return
			}
			if skipsLeft > 0 && !r.anyQueued() {
				// Nothing can be delivered until a skipper wakes, so jump
				// straight to the round before the earliest wake (counting
				// the skipped rounds) instead of ticking them one by one.
				minWake := 0
				for si := range r.skipShards {
					s := &r.skipShards[si]
					s.mu.Lock()
					//sbw:orderinvariant min-reduction over the wake rounds; the minimum is order-independent
					for round := range s.at {
						if minWake == 0 || round < minWake {
							minWake = round
						}
					}
					s.mu.Unlock()
				}
				if delta := minWake - 1 - r.round; delta > 0 {
					if !r.advanceRounds(delta) {
						r.wakeAllSleepers()
						return
					}
				}
				continue
			}
			// Everyone left or sleeps past `next`: advance the round with
			// nobody to wake and retry at the following one.
			if !r.advanceRounds(1) {
				r.wakeAllSleepers()
				return
			}
			if r.anyQueued() {
				r.deliverAll()
				if woken := r.collectWoken(); len(woken) > 0 {
					// Delivery woke message-waiters: form the new round's
					// population from them and hand control back. Stage the
					// cut before anyone wakes (pure fast-forward rounds with
					// nobody woken skip staging: no node executes in them, so
					// no commit can reference them).
					r.active += int64(len(woken))
					r.pending.Store(r.active)
					if r.ck != nil {
						r.stageCut()
					}
					wakeNodes(woken)
					return
				}
			}
			continue
		}

		nshards := r.pool.Shards()
		old := r.releases
		fresh := make([]chan struct{}, nshards)
		for i := range fresh {
			fresh[i] = make(chan struct{})
		}
		r.releases = fresh
		r.pending.Store(r.active)

		if !r.advanceRounds(1) {
			for _, ch := range old {
				close(ch)
			}
			closeGroups(wake)
			r.wakeAllSleepers()
			return
		}
		if !r.anyQueued() {
			// Nothing anywhere in flight: skip the delivery scan entirely.
			if r.ck != nil {
				r.stageCut()
			}
			for _, ch := range old {
				close(ch)
			}
			closeGroups(wake)
			return
		}
		if nshards == 1 || r.ck != nil {
			// Inline delivery: the single-shard fast path, and — forced —
			// every round of a checkpointing run, so the leader can stage
			// the post-delivery queue state before anyone wakes. With
			// nshards > 1 forced inline, every shard's release channel
			// still must close.
			r.deliverAll()
			woken := r.collectWoken()
			if len(woken) > 0 {
				r.active += int64(len(woken))
				r.pending.Add(int64(len(woken)))
			}
			if r.ck != nil {
				r.stageCut()
			}
			// All accounting done: wake waiters, then sleepers. Nothing
			// shared is mutated after the first close.
			wakeNodes(woken)
			for _, ch := range old {
				close(ch)
			}
			closeGroups(wake)
			return
		}
		r.left.Store(int32(nshards))
		r.cur = roundTask{old: old, done: make(chan struct{})}
		t := r.cur
		for wid := 0; wid < nshards; wid++ {
			r.pool.Submit(wid, r.shardFns[wid])
		}
		// The leader is a node too: it may not run ahead into the next round
		// until its own inbox is complete. Shard wake-ups proceed in the
		// background; skippers wake only after every shard delivered, and
		// the leader mutates nothing past this point (the next round's
		// leader may already be running).
		<-t.done
		closeGroups(wake)
		return
	}
}

// closeGroups releases the skip groups waking into the round just
// entered.
func closeGroups(wake []*skipGroup) {
	for _, g := range wake {
		close(g.ch)
	}
}

// advanceRounds moves the domain forward by delta rounds, counting them
// against Stats and the MaxRounds cap. It returns false when the run is
// (or becomes) aborted — the caller must wake its sleepers and bail.
func (r *runner) advanceRounds(delta int) bool {
	r.round += delta
	r.stats.Rounds += delta
	if !r.sh.aborted.Load() && r.stats.Rounds > r.cfg.MaxRounds {
		r.fail(fmt.Errorf("%s: exceeded MaxRounds=%d", r.cfg.Model, r.cfg.MaxRounds))
	}
	return !r.sh.aborted.Load()
}

// anyQueued reports whether any edge queue holds an undelivered message.
func (r *runner) anyQueued() bool {
	queued := int64(0)
	for i := range r.dirty {
		queued += r.dirty[i].v.Load()
	}
	return queued != 0
}

// collectWoken detaches this round's woken message-waiters from the
// collection lists — detaching (not truncating) so the next round's
// delivery can refill the slots without sharing a backing array with
// this round's wake — clears their waiting flags, and updates the
// waiters counter. The caller must give them pending slots before
// releasing them with wakeNodes; once a wakeCh closes, the woken node
// may immediately become the next round's leader.
func (r *runner) collectWoken() []*Ctx {
	var woken []*Ctx
	for s := range r.wokenByShard {
		if len(r.wokenByShard[s]) > 0 {
			woken = append(woken, r.wokenByShard[s]...)
			r.wokenByShard[s] = nil
		}
	}
	for _, c := range woken {
		c.waiting = false
	}
	if len(woken) > 0 {
		r.waiters.Add(-int64(len(woken)))
	}
	return woken
}

// wakeNodes releases nodes collected by collectWoken.
func wakeNodes(ws []*Ctx) {
	for _, c := range ws {
		close(c.wakeCh)
	}
}

// wakeAllSleepers releases every skip group and message-waiter (abort
// and deadlock paths); the woken nodes observe the aborted flag and
// unwind.
func (r *runner) wakeAllSleepers() {
	for si := range r.skipShards {
		s := &r.skipShards[si]
		s.mu.Lock()
		//sbw:orderinvariant abort/deadlock teardown; every group is closed and the run reports failure regardless of wake order
		for round, g := range s.at {
			delete(s.at, round)
			close(g.ch)
		}
		s.mu.Unlock()
	}
	r.skipGroups.Store(0)
	for _, v := range r.nodes {
		c := r.ctxs[v]
		if c.waiting {
			c.waiting = false
			close(c.wakeCh)
		}
	}
	r.waiters.Store(0)
}

// runShard is one worker's share of a round: deliver its receiver range,
// then wake its release shard once every shard has delivered. The task
// read from r.cur is ordered after the leader's write by the pool's
// task-channel send.
func (r *runner) runShard(wid int) {
	t := r.cur
	r.deliverWork(wid)
	if r.left.Add(-1) == 0 {
		// Last shard standing: every shard has delivered. Admit the
		// message-waiters this round woke — population count, pending
		// slot, wake, and list detach — entirely before t.done: a woken
		// node may immediately arrive at the next barrier and become its
		// leader, so no shared state may be mutated after t.done.
		woken := r.collectWoken()
		if len(woken) > 0 {
			r.active += int64(len(woken))
			r.pending.Add(int64(len(woken)))
		}
		wakeNodes(woken)
		close(t.done)
	} else {
		// Wake-up must wait for *all* shards: a woken node may send
		// immediately, racing a slower worker still reading its outbox.
		<-t.done
	}
	close(t.old[wid])
}

// deliverWork moves one queued message per directed edge into the
// inboxes of shard wid's dirty receivers: it drains the shard's current
// worklist side instead of scanning a receiver range, so a round's cost
// is proportional to the receivers that actually have traffic — a BFS
// wave over a million-node domain touches the wavefront, not the domain.
// Each receiver walks its incident edges in sorted sender order (the
// pending-bitmap walk) — the exact delivery order of the sequential
// engine, so results do not depend on the worker count or on the
// worklist's sender-arrival order. Receivers with remaining backlog are
// re-appended to the other worklist side for the next round; the flip
// happens with every sender parked at the barrier and is ordered before
// any release-channel close. A sender's outbox slot and sentNow flag for
// an edge are touched only by the worker owning the receiving endpoint,
// so delivery needs no locks.
//sbw:allocfree engine delivery inner loop: one call per receiver shard per round
func (r *runner) deliverWork(wid int) {
	ws := &r.wstats[wid]
	sw := &r.work[wid]
	side := sw.side
	list := sw.lists[side][:sw.count[side].Load()]
	next := side ^ 1
	nlist := sw.lists[next]
	carried := int32(0)
	for _, idx := range list {
		c := r.ctxs[r.nodes[idx]]
		backlog := false
		delivered := false
		buf := c.inboxes[c.cur]
		for wi := range c.pending {
			word := c.pending[wi].Load()
			if word == 0 {
				continue
			}
			keep := uint64(0)
			for rest := word; rest != 0; rest &= rest - 1 {
				bit := bits.TrailingZeros64(rest)
				i := wi<<6 + bit
				w := c.nbr[i]
				sc := r.ctxs[w]
				slot := c.srcSlot[i]
				q := &sc.outbox[slot]
				msg := q.pop()
				if q.size() == 0 {
					r.dirty[sc.shard].v.Add(-1)
				} else {
					keep |= uint64(1) << bit
					backlog = true
				}
				sc.sentNow[slot] = false
				buf = append(buf, Incoming{From: int(w), Payload: msg}) //sbw:allocok amortized: inboxes are double-buffered and recycled across rounds; steady-state capacity never grows
				delivered = true
				ws.Note(len(msg))
			}
			c.pending[wi].Store(keep)
		}
		c.inboxes[c.cur] = buf
		if backlog {
			// Still dirty: carry the receiver into the next round's list
			// (its rdirty flag stays set, so senders won't re-append it).
			nlist[carried] = idx
			carried++
		} else {
			r.rdirty[idx].Store(false)
		}
		if delivered && c.waiting {
			r.wokenByShard[wid] = append(r.wokenByShard[wid], c) //sbw:allocok amortized: per-shard woken list is reset, not reallocated, each round
		}
	}
	sw.count[next].Store(carried)
	sw.count[side].Store(0)
	sw.side = next
}

// deliverAll runs every shard's delivery inline on the round leader: the
// single-shard fast path, the fast-forward path, and every round of a
// checkpointing run (so the leader can stage the post-delivery state
// before anyone wakes). Shards are processed in ascending order, which
// together with the per-receiver ascending-sender walk makes the inline
// path's observable effects identical to the pooled one.
func (r *runner) deliverAll() {
	for wid := range r.work {
		r.deliverWork(wid)
	}
}

// DomainStats is one lockstep domain's (connected component's) share of
// a run: the component's smallest endpoint ID and the Stats measured for
// that component alone (its own rounds, its own traffic).
type DomainStats struct {
	Root  int
	Stats Stats
}

// Run executes program on every endpoint of top until all node programs
// return. It returns the measured statistics, or an error if any node
// violated the model, panicked, or the round cap was hit.
func Run(top Topology, cfg Config, program func(ctx *Ctx)) (*Stats, error) {
	st, _, err := RunWithDomains(top, cfg, program)
	return st, err
}

// RunWithDomains is Run, additionally reporting the per-domain
// statistics (one entry per connected component, ordered by smallest
// member). Callers that simulate each distinct component once and
// replicate the result — the components of a run are independent and
// the simulation deterministic — use the per-domain breakdown to scale
// traffic exactly.
func RunWithDomains(top Topology, cfg Config, program func(ctx *Ctx)) (*Stats, []DomainStats, error) {
	cfg = cfg.withDefaults()
	if cfg.Workers < 0 || cfg.Workers > MaxWorkers {
		return nil, nil, fmt.Errorf("%s: Workers=%d is not a usable worker count (want 0 for GOMAXPROCS, or 1..%d)",
			cfg.Model, cfg.Workers, MaxWorkers)
	}
	n := top.N()
	if n == 0 {
		return &Stats{}, nil, nil
	}
	// CSR fast path: a flat topology hands over its offset table and arc
	// arena once; degree sums read the offset table directly and the
	// neighbor lookups slice the arena without going back through the
	// interface. Other topologies go through Neighbors at identical
	// behavior.
	neighborsOf := top.Neighbors
	degreeOf := func(v int) int32 { return int32(len(top.Neighbors(v))) }
	if at, ok := top.(ArcTopology); ok {
		csrOff, csrNbr := at.CSR()
		neighborsOf = func(v int) []int32 { return csrNbr[csrOff[v]:csrOff[v+1]] }
		degreeOf = func(v int) int32 { return csrOff[v+1] - csrOff[v] }
	}
	sh := &shared{}
	ctxs := make([]*Ctx, n)

	// One lockstep domain per connected component of the topology: the
	// components exchange no messages, so each runs its own barrier and
	// pool and their Stats fold as parallel composition (max rounds,
	// summed traffic). Per-node behavior is unchanged — a node's round
	// counter is its own barrier count either way.
	//
	// Domains are causally independent, so the engine bounds how many run
	// at once to GOMAXPROCS: on a single-processor host the components of
	// a disconnected run execute back to back with their goroutine sets
	// cache-resident, and on a multiprocessor host they fill the
	// processors. Node programs may only interact through edges (the
	// model's contract), so delaying a domain's start is unobservable.
	// A domain's contexts and pool materialize when it is scheduled and
	// are released when it completes, keeping the live footprint at the
	// in-flight domains rather than the whole run.
	comps := components(n, neighborsOf)
	// Resume validation happens up front, against the actual component
	// structure, so a corrupt or mismatched snapshot is an error before
	// any node program runs.
	var resumeByRoot map[int32]*DomainCut
	if cfg.Resume != nil {
		compByRoot := make(map[int32]int, len(comps))
		for ci, comp := range comps {
			compByRoot[comp[0]] = ci
		}
		resumeByRoot = make(map[int32]*DomainCut, len(cfg.Resume.Cuts))
		for i := range cfg.Resume.Cuts {
			cut := &cfg.Resume.Cuts[i]
			ci, ok := compByRoot[cut.Root]
			if !ok {
				return nil, nil, fmt.Errorf("%s: resume: snapshot domain %d is not a component root of this topology", cfg.Model, cut.Root)
			}
			if _, dup := resumeByRoot[cut.Root]; dup {
				return nil, nil, fmt.Errorf("%s: resume: snapshot has two cuts for domain %d", cfg.Model, cut.Root)
			}
			if err := validateCut(cut, comps[ci], degreeOf, cfg); err != nil {
				return nil, nil, err
			}
			resumeByRoot[cut.Root] = cut
		}
	}
	runners := make([]*runner, len(comps))
	undelivered := make([]int, len(comps))
	slots := cfg.Workers
	if slots == 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	if slots < 1 {
		slots = 1
	}
	sem := make(chan struct{}, slots)
	var domains sync.WaitGroup
	domains.Add(len(comps))
	for ci := range comps {
		ci := ci
		comp := comps[ci]
		undelivered[ci] = -1
		go func() {
			defer domains.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			// A resumed domain's barrier population is only its unfinished
			// nodes; a fully finished domain (final cut) spawns nothing.
			cut := resumeByRoot[comp[0]]
			live := len(comp)
			if cut != nil {
				live = liveNodes(cut)
			}
			r := &runner{
				n:      n,
				nodes:  comp,
				sh:     sh,
				cfg:    cfg,
				ctxs:   ctxs,
				pool:   NewPoolSized(len(comp), shardMin, cfg.Workers),
				active: int64(live),
				ck:     cfg.Checkpoint,
			}
			runners[ci] = r
			nshards := r.pool.Shards()
			r.pending.Store(int64(live))
			r.releases = make([]chan struct{}, nshards)
			for i := range r.releases {
				r.releases[i] = make(chan struct{})
			}
			r.wstats = make([]WorkerStats, nshards)
			r.dirty = make([]padCounter, nshards)
			r.rdirty = make([]atomic.Bool, len(comp))
			r.skipShards = make([]skipShard, nshards)
			for i := range r.skipShards {
				r.skipShards[i].at = make(map[int]*skipGroup)
			}
			// Each shard's worklist sides are sized to the shard: the
			// rdirty CAS admits every owned receiver at most once per side.
			r.work = make([]shardWork, nshards)
			for i := range r.work {
				lo, hi := r.pool.Bounds(i)
				r.work[i].lists[0] = make([]int32, hi-lo)
				r.work[i].lists[1] = make([]int32, hi-lo)
			}
			r.wokenByShard = make([][]*Ctx, nshards)
			r.shardFns = make([]func(int), nshards)
			for i := 0; i < nshards; i++ {
				wid := i
				r.shardFns[i] = func(int) { r.runShard(wid) }
			}
			// Per-edge state is carved out of per-domain arenas indexed by
			// the domain-local edge ID (the prefix-sum position of arc
			// (v, i) over the domain's endpoints): one allocation per kind
			// of state instead of one per node, contiguous in delivery
			// order. The pending bitmaps get their own word offsets — each
			// endpoint needs exclusively owned words for the senders' CAS.
			domOff := make([]int32, len(comp)+1)
			pwOff := make([]int32, len(comp)+1)
			for idx, v := range comp {
				deg := degreeOf(int(v))
				domOff[idx+1] = domOff[idx] + deg
				pwOff[idx+1] = pwOff[idx] + (deg+63)/64
			}
			arcs := int(domOff[len(comp)])
			ctxArena := make([]Ctx, len(comp))
			srcSlotArena := make([]int32, arcs)
			outboxArena := make([]fifo, arcs)
			sentNowArena := make([]bool, arcs)
			pendingArena := make([]atomic.Uint64, pwOff[len(comp)])
			inboxArena := make([]Incoming, 2*arcs)
			for idx, v := range comp {
				// Widen before the inbox-carve arithmetic: 2*lo would wrap
				// int32 from 2^30 domain arcs on.
				lo, hi := int(domOff[idx]), int(domOff[idx+1])
				c := &ctxArena[idx]
				c.r = r
				c.id = int(v)
				c.domIdx = int32(idx)
				c.shard = r.pool.ShardOf(idx)
				c.nbr = neighborsOf(int(v))
				c.srcSlot = srcSlotArena[lo:hi:hi]
				c.outbox = outboxArena[lo:hi:hi]
				c.sentNow = sentNowArena[lo:hi:hi]
				c.pending = pendingArena[pwOff[idx]:pwOff[idx+1]:pwOff[idx+1]]
				// The two inbox halves start with capacity deg each; a
				// SkipUntil that accumulates more re-slices off-arena via
				// append, which is safe (the carve caps at the region end).
				c.inboxes[0] = inboxArena[2*lo : 2*lo : lo+hi]
				c.inboxes[1] = inboxArena[lo+hi : lo+hi : 2*hi]
				ctxs[v] = c
			}
			// srcSlot[i] is this node's index in peer nbr[i]'s sorted
			// adjacency. Sweeping the domain's endpoints in ascending order
			// visits each peer's inbound arcs in exactly its adjacency
			// order, so a per-endpoint cursor yields every slot in one
			// O(arcs) pass — no per-arc binary search.
			cursor := make([]int32, len(comp))
			for _, v := range comp {
				c := ctxs[v]
				for i, w := range c.nbr {
					rd := ctxs[w].domIdx
					c.srcSlot[i] = cursor[rd]
					cursor[rd]++
				}
			}
			if cut != nil {
				r.restoreCut(cut)
			}
			// Seed the staged cut with the domain's start state (round 0,
			// or the restored cut), so commits in the very first executed
			// round finalize against a matching stage.
			if r.ck != nil {
				r.stageCut()
			}

			var nodes sync.WaitGroup
			nodes.Add(live)
			for _, v := range comp {
				ctx := ctxs[v]
				if ctx.commitDone {
					continue // finished in the resumed cut; never respawned
				}
				go func() {
					defer nodes.Done()
					defer ctx.r.leave()
					defer func() {
						if p := recover(); p != nil && !errors.Is(asErr(p), errAborted) {
							sh.fail(fmt.Errorf("%s: node %d panicked: %v", cfg.Model, ctx.id, p))
						}
					}()
					program(ctx)
				}()
			}
			nodes.Wait()
			r.pool.Close()
			r.stats.MergeWorkers(r.wstats)
			r.foldCharged(&r.stats)
			// The domain-end cut: recorded once every node finished through
			// CommitFinal, with the domain's true final Stats (the rounds
			// in which the last nodes finished never finalize as live cuts).
			if r.ck != nil && !sh.aborted.Load() {
				r.finalCut()
			}
			// Messages queued by nodes that exited early are still delivered
			// at later barriers; only messages left after the last node
			// exits were truly dropped, which indicates a protocol bug.
			for _, v := range comp {
				if ctxs[v].Pending() {
					undelivered[ci] = int(v)
					break
				}
			}
			for _, v := range comp {
				ctxs[v] = nil // release the domain's state
			}
		}()
	}
	domains.Wait()
	var st Stats
	perDomain := make([]DomainStats, len(runners))
	for ci, r := range runners {
		perDomain[ci] = DomainStats{Root: int(comps[ci][0]), Stats: r.stats}
		if r.stats.Rounds > st.Rounds {
			st.Rounds = r.stats.Rounds
		}
		st.Messages += r.stats.Messages
		st.Words += r.stats.Words
		if r.stats.MaxMessageWords > st.MaxMessageWords {
			st.MaxMessageWords = r.stats.MaxMessageWords
		}
	}
	if sh.err == nil {
		for _, v := range undelivered {
			if v >= 0 {
				sh.err = fmt.Errorf("%s: node %d finished with undelivered queued messages", cfg.Model, v)
				break
			}
		}
	}
	return &st, perDomain, sh.err
}

// components returns the connected components over the given adjacency
// accessor, each ascending, ordered by smallest member.
func components(n int, neighborsOf func(int) []int32) [][]int32 {
	seen := make([]bool, n)
	var comps [][]int32
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		members := []int32{int32(s)}
		for qi := 0; qi < len(members); qi++ {
			for _, w := range neighborsOf(int(members[qi])) {
				if !seen[w] {
					seen[w] = true
					members = append(members, w)
				}
			}
		}
		slices.Sort(members)
		comps = append(comps, members)
	}
	return comps
}

func asErr(p any) error {
	if err, ok := p.(error); ok {
		return err
	}
	return nil
}
