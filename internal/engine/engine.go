// Package engine is the shared sharded round engine under all three
// model simulators of this repository (CONGEST, CONGESTED CLIQUE, MPC).
// It owns one copy of the parallel hot path:
//
//   - a barrier that is a single atomic counter (no global mutex), with
//     nodes sleeping on per-shard release channels so wake-up is batched
//     shard by shard;
//   - message delivery sharded by *receiver* across a pool of
//     GOMAXPROCS workers with per-worker stats, merged once the workers
//     are quiescent (sums and max, so totals are order-independent);
//   - double-buffered inboxes and head-indexed outbox FIFOs that recycle
//     their backing arrays, so steady-state rounds allocate nothing per
//     edge;
//   - a sharded dirty-edge counter that skips the delivery scan entirely
//     on quiet rounds.
//
// Receiver-sharding keeps everything deterministic: each inbox is filled
// by exactly one worker, in ascending sender order — the exact delivery
// order of a sequential scan — so Stats and protocol behavior are
// bit-for-bit independent of the worker count.
//
// The engine is parameterized over an endpoint Topology. The CONGEST
// simulator (internal/congest) is a thin adapter passing its
// communication graph and running blocking per-node programs through
// Run. The CLIQUE simulator runs its data-parallel all-to-all exchanges
// on the same Pool via Scatter (all-to-all topology), and the MPC
// Section 5 tools move records machine-to-machine through the Pool with
// the per-round IO accounting folded into the shard workers.
package engine

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// Message is the payload of one message: a short slice of 64-bit words.
// In the standard parameterization one word models Θ(log n) bits.
type Message []uint64

// Incoming is a delivered message together with its sender's ID.
type Incoming struct {
	From    int
	Payload Message
}

// Directed is an outgoing message with an explicit destination, the unit
// of the data-parallel exchange fabrics built on Scatter.
type Directed struct {
	To      int32
	Payload Message
}

// Topology describes the endpoint structure the engine runs on: a fixed
// set of endpoints 0..N-1 and, for each, the sorted list of peers it may
// exchange messages with. *graph.Graph satisfies it directly (CONGEST);
// AllToAll is the CONGESTED CLIQUE structure.
type Topology interface {
	N() int
	// Neighbors returns the sorted peer IDs of v. The engine retains the
	// slice; it must not change during a run.
	Neighbors(v int) []int32
}

// AllToAll is the complete topology on n endpoints: every endpoint is a
// peer of every other, as in the CONGESTED CLIQUE. It materializes n
// rows of n−1 peers (Θ(n²) memory), which is inherent to running
// per-node programs on a clique; the data-parallel clique simulator
// avoids it by exchanging through Scatter instead.
type AllToAll struct{ rows [][]int32 }

// NewAllToAll builds the complete topology on n endpoints.
func NewAllToAll(n int) *AllToAll {
	rows := make([][]int32, n)
	for v := range rows {
		row := make([]int32, 0, n-1)
		for u := 0; u < n; u++ {
			if u != v {
				row = append(row, int32(u))
			}
		}
		rows[v] = row
	}
	return &AllToAll{rows: rows}
}

// N returns the endpoint count.
func (a *AllToAll) N() int { return len(a.rows) }

// Neighbors returns the peers of v (all other endpoints), sorted.
func (a *AllToAll) Neighbors(v int) []int32 { return a.rows[v] }

// Config controls a Run.
type Config struct {
	// MaxWords is the bandwidth cap per edge per direction per round, in
	// 64-bit words. Zero means the default of 4 words (≈ 4·64 bits, a
	// constant number of O(log n)-bit words).
	MaxWords int
	// MaxRounds aborts runs that exceed this many rounds (default 1<<22),
	// turning protocol livelocks into test failures instead of hangs.
	MaxRounds int
	// Model prefixes error messages with the simulated model's name
	// ("congest", "clique", ...) so violations read in the caller's
	// vocabulary. Empty means "engine".
	Model string
}

func (c Config) withDefaults() Config {
	if c.MaxWords == 0 {
		c.MaxWords = 4
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 1 << 22
	}
	if c.Model == "" {
		c.Model = "engine"
	}
	return c
}

// Stats aggregates the measured cost of a run.
type Stats struct {
	Rounds          int   // number of synchronous rounds executed
	Messages        int64 // messages delivered
	Words           int64 // total words delivered
	MaxMessageWords int   // widest single message observed
}

// errAborted unwinds node goroutines when any node fails.
var errAborted = errors.New("engine: run aborted")

// fifo is a per-directed-edge message queue. The head index replaces
// memmove-on-pop, and a drained queue rewinds to reuse its backing
// array, so steady-state traffic does not allocate.
type fifo struct {
	buf  []Message
	head int
}

func (q *fifo) push(m Message) { q.buf = append(q.buf, m) }

func (q *fifo) size() int { return len(q.buf) - q.head }

func (q *fifo) pop() Message {
	m := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head >= 32 && q.head*2 >= len(q.buf) {
		// A queue that never fully drains (steady backlog) would advance
		// head and len in lockstep forever; compacting once the dead
		// prefix reaches half the slice keeps memory O(backlog) at
		// amortized O(1) per pop.
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return m
}

// Ctx is a node's handle to the simulation. All methods must be called
// only from that node's own goroutine.
type Ctx struct {
	r     *runner
	id    int
	shard int
	nbr   []int32 // peer node IDs, sorted
	// srcSlot[i] is this node's index in peer nbr[i]'s adjacency list:
	// the slot of edge nbr[i]→me in that peer's outbox. It lets the
	// delivery workers pull from sender queues receiver-side without any
	// lookups.
	srcSlot []int32

	outbox  []fifo // per-peer FIFO of pending messages
	sentNow []bool // direct Send already used this round, per peer

	// inboxes double-buffers delivery: workers fill inboxes[cur] while
	// the node still holds the slice returned by the previous Next.
	inboxes [2][]Incoming
	cur     int
}

// ID returns this node's identifier.
func (c *Ctx) ID() int { return c.id }

// N returns the number of nodes in the network (nodes know n, as is
// standard in the simulated models).
func (c *Ctx) N() int { return c.r.n }

// Degree returns this node's degree (peer count).
func (c *Ctx) Degree() int { return len(c.nbr) }

// Neighbors returns the sorted IDs of this node's peers. Read-only.
func (c *Ctx) Neighbors() []int32 { return c.nbr }

// MaxWords returns the per-message bandwidth cap of the simulation.
func (c *Ctx) MaxWords() int { return c.r.cfg.MaxWords }

// NeighborIndex returns the index of peer ID in Neighbors(), or -1.
// It is a binary search over the sorted adjacency slice: cache-resident
// for the small degrees typical of CONGEST inputs, and with none of the
// footprint of a per-node hash map.
func (c *Ctx) NeighborIndex(id int) int {
	if i, ok := slices.BinarySearch(c.nbr, int32(id)); ok {
		return i
	}
	return -1
}

// Round returns the current round number (starting at 0).
func (c *Ctx) Round() int { return c.r.round }

// Send queues a message to peer `to` for delivery next round. It is a
// protocol violation (aborting the run) to send twice to the same peer
// in one round, to exceed the bandwidth cap, or to send to a non-peer.
func (c *Ctx) Send(to int, msg Message) {
	i := c.NeighborIndex(to)
	if i < 0 {
		c.r.fail(fmt.Errorf("%s: node %d sent to non-neighbor %d", c.r.cfg.Model, c.id, to))
		panic(errAborted)
	}
	if c.sentNow[i] {
		c.r.fail(fmt.Errorf("%s: node %d sent twice to %d in round %d", c.r.cfg.Model, c.id, to, c.r.round))
		panic(errAborted)
	}
	if c.outbox[i].size() > 0 {
		c.r.fail(fmt.Errorf("%s: node %d direct Send to %d with queued backlog", c.r.cfg.Model, c.id, to))
		panic(errAborted)
	}
	c.checkWidth(msg)
	c.sentNow[i] = true
	c.noteQueued(i)
	c.outbox[i].push(msg)
}

// SendQueued appends a message to the FIFO for peer `to`; one queued
// message per edge per direction is delivered each round, so bursts are
// pipelined across rounds exactly as congestion forces in the real model.
func (c *Ctx) SendQueued(to int, msg Message) {
	i := c.NeighborIndex(to)
	if i < 0 {
		c.r.fail(fmt.Errorf("%s: node %d queued to non-neighbor %d", c.r.cfg.Model, c.id, to))
		panic(errAborted)
	}
	c.checkWidth(msg)
	c.noteQueued(i)
	c.outbox[i].push(msg)
}

// noteQueued maintains the dirty-edge accounting: called before a push
// that makes the edge queue at index i non-empty.
func (c *Ctx) noteQueued(i int) {
	if c.outbox[i].size() == 0 {
		c.r.dirty[c.shard].v.Add(1)
	}
}

func (c *Ctx) checkWidth(msg Message) {
	if len(msg) > c.r.cfg.MaxWords {
		c.r.fail(fmt.Errorf("%s: node %d message of %d words exceeds cap %d",
			c.r.cfg.Model, c.id, len(msg), c.r.cfg.MaxWords))
		panic(errAborted)
	}
	if len(msg) == 0 {
		c.r.fail(fmt.Errorf("%s: node %d sent empty message", c.r.cfg.Model, c.id))
		panic(errAborted)
	}
}

// Pending reports whether any queued messages remain undelivered.
func (c *Ctx) Pending() bool {
	for i := range c.outbox {
		if c.outbox[i].size() > 0 {
			return true
		}
	}
	return false
}

// Next ends the node's current round and blocks until all nodes have done
// so; it returns the messages delivered to this node for the new round.
// The returned slice is valid until the following Next call.
func (c *Ctx) Next() []Incoming {
	if !c.r.barrierWait(c) {
		panic(errAborted)
	}
	in := c.inboxes[c.cur]
	c.cur ^= 1
	c.inboxes[c.cur] = c.inboxes[c.cur][:0]
	return in
}

// padCounter is a cache-line-padded atomic counter: the dirty-edge
// counts are sharded by sender so concurrent senders don't serialize on
// one line.
type padCounter struct {
	v atomic.Int64
	_ [7]uint64
}

// roundTask is one round's delivery coordination: deliver every shard's
// receiver range, then wake each shard by closing old[shard].
type roundTask struct {
	old  []chan struct{} // the round's release channels, one per shard
	done chan struct{}   // closed when every shard finished delivering
}

// runner drives one simulation. The Topology is consumed during setup
// in Run; afterwards everything the engine needs lives in the Ctxs.
type runner struct {
	n    int
	cfg  Config
	ctxs []*Ctx

	// Barrier. pending counts the arrivals outstanding this round; the
	// goroutine whose arrival (or departure) takes it to zero is the
	// round leader and runs completeRound while every other node sleeps,
	// so the leader may touch active/round/stats without locks. Sleepers
	// wait on their shard's release channel; each channel is read before
	// the pending decrement, which orders it before the leader's
	// replacement write.
	pending  atomic.Int64
	leaves   atomic.Int64    // departures since the last barrier
	releases []chan struct{} // one per shard; replaced by the leader each round
	active   int64
	round    int

	aborted atomic.Bool
	errMu   sync.Mutex
	err     error

	stats Stats

	// Sharded delivery. Worker i of the pool owns receivers [Bounds(i))
	// and the matching release shard. shardFns are pre-allocated per-shard
	// closures; cur is the round task they read, written by the leader
	// before dispatch (ordered by the task-channel send).
	pool     *Pool
	wstats   []WorkerStats
	shardFns []func(int)
	cur      roundTask
	left     atomic.Int32

	// dirty[s] counts non-empty edge queues whose sender lives in shard
	// s. When the total is zero at a barrier the whole delivery scan is
	// skipped, so protocol-free synchronization rounds (SpinUntil, pure
	// barriers) cost O(shards) instead of O(m).
	dirty []padCounter
}

// shardMin keeps tiny topologies on the sequential path: below this many
// nodes per worker the dispatch overhead outweighs the parallelism.
const shardMin = 256

func (r *runner) fail(err error) {
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
	r.aborted.Store(true)
}

// barrierWait blocks until all active nodes arrive; the arrival that
// completes the barrier becomes the leader and advances the round.
// Returns false if the run aborted.
func (r *runner) barrierWait(c *Ctx) bool {
	if r.aborted.Load() {
		return false
	}
	// Read the release channel before decrementing: the leader only
	// replaces r.releases after pending hits zero, i.e. after this read.
	rel := r.releases[c.shard]
	if r.pending.Add(-1) == 0 {
		r.completeRound()
	} else {
		<-rel
	}
	return !r.aborted.Load()
}

// leave removes a finished node from the barrier population. A departure
// counts as this round's arrival, and is deducted from the population at
// the next barrier.
func (r *runner) leave() {
	r.leaves.Add(1)
	if r.pending.Add(-1) == 0 {
		r.completeRound()
	}
}

// completeRound runs once per barrier, by the single goroutine whose
// arrival or departure took pending to zero: apply departures, advance
// the round, deliver queued messages across the worker shards, and wake
// the sleepers shard by shard.
func (r *runner) completeRound() {
	r.active -= r.leaves.Swap(0)
	if r.active <= 0 {
		return // the last node left; nobody is sleeping
	}
	nshards := r.pool.Shards()
	old := r.releases
	fresh := make([]chan struct{}, nshards)
	for i := range fresh {
		fresh[i] = make(chan struct{})
	}
	r.releases = fresh
	r.pending.Store(r.active)

	r.round++
	r.stats.Rounds++
	if !r.aborted.Load() && r.stats.Rounds > r.cfg.MaxRounds {
		r.fail(fmt.Errorf("%s: exceeded MaxRounds=%d", r.cfg.Model, r.cfg.MaxRounds))
	}
	if r.aborted.Load() {
		for _, ch := range old {
			close(ch)
		}
		return
	}
	queued := int64(0)
	for i := range r.dirty {
		queued += r.dirty[i].v.Load()
	}
	if queued == 0 {
		// Nothing anywhere in flight: skip the delivery scan entirely.
		for _, ch := range old {
			close(ch)
		}
		return
	}
	if nshards == 1 {
		r.deliverRange(0, r.n, &r.wstats[0])
		close(old[0])
		return
	}
	r.left.Store(int32(nshards))
	r.cur = roundTask{old: old, done: make(chan struct{})}
	t := r.cur
	for wid := 0; wid < nshards; wid++ {
		r.pool.Submit(wid, r.shardFns[wid])
	}
	// The leader is a node too: it may not run ahead into the next round
	// until its own inbox is complete. Shard wake-ups proceed in the
	// background.
	<-t.done
}

// runShard is one worker's share of a round: deliver its receiver range,
// then wake its release shard once every shard has delivered. The task
// read from r.cur is ordered after the leader's write by the pool's
// task-channel send.
func (r *runner) runShard(wid int) {
	t := r.cur
	lo, hi := r.pool.Bounds(wid)
	r.deliverRange(lo, hi, &r.wstats[wid])
	if r.left.Add(-1) == 0 {
		close(t.done)
	} else {
		// Wake-up must wait for *all* shards: a woken node may send
		// immediately, racing a slower worker still reading its outbox.
		<-t.done
	}
	close(t.old[wid])
}

// deliverRange moves one queued message per directed edge into the
// inboxes of receivers [lo, hi): each receiver walks its incident edges
// in sorted sender order — the exact delivery order of the sequential
// engine, so results do not depend on the worker count — and pops the
// head of the sender's queue slot for that edge. Workers own disjoint
// receiver ranges, and a sender's outbox slot and sentNow flag for an
// edge are touched only by the worker owning the receiving endpoint, so
// delivery needs no locks.
func (r *runner) deliverRange(lo, hi int, ws *WorkerStats) {
	for v := lo; v < hi; v++ {
		c := r.ctxs[v]
		buf := c.inboxes[c.cur]
		for i, w := range c.nbr {
			sc := r.ctxs[w]
			slot := c.srcSlot[i]
			q := &sc.outbox[slot]
			if q.size() == 0 {
				continue
			}
			msg := q.pop()
			if q.size() == 0 {
				r.dirty[sc.shard].v.Add(-1)
			}
			sc.sentNow[slot] = false
			buf = append(buf, Incoming{From: int(w), Payload: msg})
			ws.Note(len(msg))
		}
		c.inboxes[c.cur] = buf
	}
}

// Run executes program on every endpoint of top until all node programs
// return. It returns the measured statistics, or an error if any node
// violated the model, panicked, or the round cap was hit.
func Run(top Topology, cfg Config, program func(ctx *Ctx)) (*Stats, error) {
	cfg = cfg.withDefaults()
	n := top.N()
	if n == 0 {
		return &Stats{}, nil
	}
	r := &runner{
		n:      n,
		cfg:    cfg,
		ctxs:   make([]*Ctx, n),
		pool:   NewPool(n, shardMin),
		active: int64(n),
	}
	defer r.pool.Close()
	nshards := r.pool.Shards()
	r.pending.Store(int64(n))
	r.releases = make([]chan struct{}, nshards)
	for i := range r.releases {
		r.releases[i] = make(chan struct{})
	}
	r.wstats = make([]WorkerStats, nshards)
	r.dirty = make([]padCounter, nshards)
	r.shardFns = make([]func(int), nshards)
	for i := 0; i < nshards; i++ {
		wid := i
		r.shardFns[i] = func(int) { r.runShard(wid) }
	}

	for v := 0; v < n; v++ {
		nbr := top.Neighbors(v)
		c := &Ctx{
			r:       r,
			id:      v,
			shard:   r.pool.ShardOf(v),
			nbr:     nbr,
			srcSlot: make([]int32, len(nbr)),
			outbox:  make([]fifo, len(nbr)),
			sentNow: make([]bool, len(nbr)),
		}
		c.inboxes[0] = make([]Incoming, 0, len(nbr))
		c.inboxes[1] = make([]Incoming, 0, len(nbr))
		r.ctxs[v] = c
	}
	for v := 0; v < n; v++ {
		c := r.ctxs[v]
		for i, w := range c.nbr {
			c.srcSlot[i] = int32(r.ctxs[w].NeighborIndex(v))
		}
	}

	var nodes sync.WaitGroup
	nodes.Add(n)
	for v := 0; v < n; v++ {
		ctx := r.ctxs[v]
		go func() {
			defer nodes.Done()
			defer r.leave()
			defer func() {
				if p := recover(); p != nil && !errors.Is(asErr(p), errAborted) {
					r.fail(fmt.Errorf("%s: node %d panicked: %v", cfg.Model, ctx.id, p))
				}
			}()
			program(ctx)
		}()
	}
	nodes.Wait()
	r.stats.MergeWorkers(r.wstats)
	// Messages queued by nodes that exited early are still delivered at
	// later barriers; only messages left after the last node exits were
	// truly dropped, which indicates a protocol bug.
	if r.err == nil {
		for _, ctx := range r.ctxs {
			if ctx.Pending() {
				r.err = fmt.Errorf("%s: node %d finished with undelivered queued messages", cfg.Model, ctx.id)
				break
			}
		}
	}
	st := r.stats
	return &st, r.err
}

func asErr(p any) error {
	if err, ok := p.(error); ok {
		return err
	}
	return nil
}
