package engine_test

// Checkpoint/restore at the engine level: a step protocol with queued
// bursts commits its state every round, the run records a cut per round,
// and for every recorded cut a fresh run resumed from it must end with
// bit-identical per-node results and Stats — the crash-at-every-round
// contract, at both 1 and many forced shards.

import (
	"reflect"
	"slices"
	"testing"

	"smallbandwidth/internal/engine"
)

// adjTop is a minimal Topology over an explicit adjacency table.
type adjTop struct {
	adj [][]int32
}

func (a *adjTop) N() int                  { return len(a.adj) }
func (a *adjTop) Neighbors(v int) []int32 { return a.adj[v] }

// newAdjTop builds a topology from undirected edges.
func newAdjTop(n int, edges [][2]int) *adjTop {
	a := &adjTop{adj: make([][]int32, n)}
	for _, e := range edges {
		a.adj[e[0]] = append(a.adj[e[0]], int32(e[1]))
		a.adj[e[1]] = append(a.adj[e[1]], int32(e[0]))
	}
	for v := range a.adj {
		slices.Sort(a.adj[v])
	}
	return a
}

// pathEdges is the path 0-1-...-(n-1).
func pathEdges(n int) [][2]int {
	var es [][2]int
	for v := 0; v+1 < n; v++ {
		es = append(es, [2]int{v, v + 1})
	}
	return es
}

// stepBlob encodes the step program's whole state: next iteration and
// the running delivery checksum.
func stepBlob(iter int, sum uint64) []byte {
	var b []byte
	for i := 0; i < 8; i++ {
		b = append(b, byte(iter>>(8*i)), byte(sum>>(8*i)))
	}
	return b
}

func stepUnblob(b []byte) (iter int, sum uint64) {
	for i := 7; i >= 0; i-- {
		iter = iter<<8 | int(b[2*i])
		sum = sum<<8 | uint64(b[2*i+1])
	}
	return
}

// stepProgram runs `rounds` lockstep iterations. Every iteration queues
// one message per edge; every third iteration queues a second (creating
// a genuine multi-round backlog, so some cuts carry non-empty queues).
// The checksum folds in sender order, so any deviation in delivery
// content or order on a resumed run changes the final value. finals[v]
// receives node v's checksum (disjoint indexes, no lock needed).
func stepProgram(rounds int, finals []uint64) func(*engine.Ctx) {
	return func(ctx *engine.Ctx) {
		sum := uint64(0)
		start := 0
		if b := ctx.Resumed(); b != nil {
			start, sum = stepUnblob(b)
		}
		for iter := start; iter < rounds; iter++ {
			if ctx.CheckpointEnabled() {
				ctx.Commit(stepBlob(iter, sum))
			}
			// Per-edge send schedule over each 3-iteration cycle: a burst
			// of two (one round of genuine backlog), then a silent round
			// that drains it, then a single. The burst guard keeps its
			// trailing message deliverable before the protocol exits.
			if iter%3 != 1 {
				for _, w := range ctx.Neighbors() {
					ctx.SendQueued(int(w), engine.Message{uint64(ctx.ID()), uint64(iter)})
					if iter%3 == 0 && iter+2 <= rounds {
						ctx.SendQueued(int(w), engine.Message{uint64(ctx.ID()) + 100, uint64(iter)})
					}
				}
			}
			for _, in := range ctx.Next() {
				sum = sum*31 + uint64(in.From)*5 + in.Payload[0]*3 + in.Payload[1]
			}
		}
		ctx.CommitFinal(stepBlob(rounds, sum))
		finals[ctx.ID()] = sum
	}
}

// runStep executes the step protocol, optionally checkpointing or
// resuming, and returns the per-node checksums and Stats.
func runStep(t *testing.T, top engine.Topology, rounds int, ck *engine.Checkpointer, snap *engine.RunSnapshot) ([]uint64, *engine.Stats) {
	t.Helper()
	finals := make([]uint64, top.N())
	st, err := engine.Run(top, engine.Config{Checkpoint: ck, Resume: snap}, stepProgram(rounds, finals))
	if err != nil {
		t.Fatal(err)
	}
	return finals, st
}

func TestCheckpointResumeEveryRound(t *testing.T) {
	const n, rounds = 9, 14
	// A path plus a separate triangle: two lockstep domains, so the sweep
	// also exercises per-domain cut assembly.
	edges := append(pathEdges(n-3), [2]int{n - 3, n - 2}, [2]int{n - 2, n - 1}, [2]int{n - 3, n - 1})
	top := newAdjTop(n, edges)

	wantFinals, wantStats := runStep(t, top, rounds, nil, nil)

	ck := &engine.Checkpointer{KeepAll: true}
	ckFinals, ckStats := runStep(t, top, rounds, ck, nil)
	if !reflect.DeepEqual(ckFinals, wantFinals) || *ckStats != *wantStats {
		t.Fatalf("checkpointing perturbed the run: finals %v vs %v, stats %+v vs %+v", ckFinals, wantFinals, ckStats, wantStats)
	}

	cutRounds := ck.CutRounds()
	if len(cutRounds) == 0 {
		t.Fatal("no cuts recorded")
	}
	backlogged := false
	for _, k := range cutRounds {
		for _, cut := range ck.At(k).Cuts {
			if len(cut.Queues) > 0 {
				backlogged = true
			}
		}
	}
	if !backlogged {
		t.Fatal("no cut captured a queued backlog; the burst pattern should leave one")
	}

	// The headline sweep: crash after every checkpoint round, resume in a
	// fresh run, demand bit-identical finals and Stats.
	for _, k := range cutRounds {
		snap := ck.At(k)
		gotFinals, gotStats := runStep(t, top, rounds, nil, snap)
		// Nodes already done in the cut never rerun; graft their recorded
		// blobs for the comparison.
		for _, cut := range snap.Cuts {
			for _, nc := range cut.Nodes {
				if nc.Done {
					_, gotFinals[nc.ID] = stepUnblob(nc.Blob)
				}
			}
		}
		if !reflect.DeepEqual(gotFinals, wantFinals) {
			t.Fatalf("resume at round %d: finals %v, want %v", k, gotFinals, wantFinals)
		}
		if *gotStats != *wantStats {
			t.Fatalf("resume at round %d: stats %+v, want %+v", k, gotStats, wantStats)
		}
	}

	// Resuming from the terminal snapshot spawns nothing and reproduces
	// the final Stats; with a fresh Checkpointer attached it re-records
	// the final cuts so Latest() is populated after the no-op run.
	last := ck.Latest()
	for _, cut := range last.Cuts {
		if !cut.Final {
			t.Fatalf("latest cut of domain %d is not final", cut.Root)
		}
	}
	reck := &engine.Checkpointer{}
	_, endStats := runStep(t, top, rounds, reck, last)
	if *endStats != *wantStats {
		t.Fatalf("terminal resume stats %+v, want %+v", endStats, wantStats)
	}
	if got := reck.Latest(); got == nil || !reflect.DeepEqual(got, last) {
		t.Fatalf("terminal resume did not re-record the final cuts:\n got %+v\nwant %+v", got, last)
	}
}

// TestCheckpointCutsDeterministicAcrossShards pins that the recorded
// cuts — blobs, queues, stats, byte for byte — do not depend on the
// worker count, and that a cut taken at one shard count resumes
// identically at another.
func TestCheckpointCutsDeterministicAcrossShards(t *testing.T) {
	const n, rounds = 300, 11
	top := newAdjTop(n, pathEdges(n))

	collect := func(shards int) (*engine.Checkpointer, []uint64, *engine.Stats) {
		engine.SetForceShards(shards)
		defer engine.SetForceShards(0)
		ck := &engine.Checkpointer{KeepAll: true}
		finals, st := runStep(t, top, rounds, ck, nil)
		return ck, finals, st
	}
	ck1, finals1, st1 := collect(1)
	ck3, finals3, st3 := collect(3)
	if !reflect.DeepEqual(finals1, finals3) || *st1 != *st3 {
		t.Fatalf("step protocol itself diverged across shard counts")
	}
	rounds1, rounds3 := ck1.CutRounds(), ck3.CutRounds()
	if !reflect.DeepEqual(rounds1, rounds3) {
		t.Fatalf("cut rounds differ across shards: %v vs %v", rounds1, rounds3)
	}
	for _, k := range rounds1 {
		if s1, s3 := ck1.At(k), ck3.At(k); !reflect.DeepEqual(s1, s3) {
			t.Fatalf("cut at round %d differs across shard counts:\n1: %+v\n3: %+v", k, s1, s3)
		}
	}

	// Cross-shard resume: a mid-run cut from the 3-shard collection,
	// resumed at 1 shard and at 4, both matching the uninterrupted run.
	mid := rounds1[len(rounds1)/2]
	for _, shards := range []int{1, 4} {
		engine.SetForceShards(shards)
		gotFinals, gotStats := runStep(t, top, rounds, nil, ck3.At(mid))
		engine.SetForceShards(0)
		if !reflect.DeepEqual(gotFinals, finals1) || *gotStats != *st1 {
			t.Fatalf("cross-shard resume at %d shards diverged", shards)
		}
	}
}

// TestResumeValidation pins that corrupt snapshots are rejected up
// front with an error instead of poisoning a run.
func TestResumeValidation(t *testing.T) {
	const n, rounds = 6, 8
	top := newAdjTop(n, pathEdges(n))
	ck := &engine.Checkpointer{KeepAll: true}
	runStep(t, top, rounds, ck, nil)
	mid := ck.CutRounds()[len(ck.CutRounds())/2]

	corrupt := []struct {
		name string
		warp func(s *engine.RunSnapshot)
	}{
		{"unknown-root", func(s *engine.RunSnapshot) { s.Cuts[0].Root = 3 }},
		{"stats-round-mismatch", func(s *engine.RunSnapshot) { s.Cuts[0].Stats.Rounds++ }},
		{"node-count", func(s *engine.RunSnapshot) { s.Cuts[0].Nodes = s.Cuts[0].Nodes[:1] }},
		{"node-id", func(s *engine.RunSnapshot) { s.Cuts[0].Nodes[2].ID = 99 }},
		{"queue-sender", func(s *engine.RunSnapshot) {
			s.Cuts[0].Queues = append(s.Cuts[0].Queues, engine.QueueCut{Sender: 77, Slot: 0, Msgs: []engine.Message{{1}}})
		}},
		{"queue-slot", func(s *engine.RunSnapshot) {
			s.Cuts[0].Queues = append(s.Cuts[0].Queues, engine.QueueCut{Sender: 0, Slot: 9, Msgs: []engine.Message{{1}}})
		}},
		{"queue-width", func(s *engine.RunSnapshot) {
			s.Cuts[0].Queues = append(s.Cuts[0].Queues, engine.QueueCut{Sender: 0, Slot: 0, Msgs: []engine.Message{make(engine.Message, 99)}})
		}},
		{"duplicate-domain", func(s *engine.RunSnapshot) { s.Cuts = append(s.Cuts, s.Cuts[0]) }},
	}
	for _, c := range corrupt {
		snap := ck.At(mid)
		c.warp(snap)
		finals := make([]uint64, n)
		_, err := engine.Run(top, engine.Config{Resume: snap}, stepProgram(rounds, finals))
		if err == nil {
			t.Fatalf("%s: corrupted snapshot was accepted", c.name)
		}
	}
}
