package engine

import (
	"runtime"
	"sort"
	"sync"
)

// forceShards pins the worker/shard count when > 0. Test hook: the
// determinism regressions run the same protocol with 1 and many shards
// and assert bit-identical Stats.
var forceShards int

// SetForceShards pins the shard count of every subsequently created pool
// (0 restores automatic sizing). It is a test hook: production callers
// let the pool size itself from GOMAXPROCS and the endpoint count.
func SetForceShards(n int) { forceShards = n }

// shardCount sizes a pool: one shard per processor (or per configured
// worker when workers > 0), but never fewer than minPerShard endpoints
// per shard — below that the dispatch overhead outweighs the parallelism
// and the pool collapses to the inline sequential path.
func shardCount(n, minPerShard, workers int) int {
	if forceShards > 0 {
		return forceShards
	}
	s := workers
	if s <= 0 {
		s = runtime.GOMAXPROCS(0)
	}
	if minPerShard < 1 {
		minPerShard = 1
	}
	if lim := n / minPerShard; s > lim {
		s = lim
	}
	if s < 1 {
		s = 1
	}
	return s
}

// ShardsFor reports the shard count a pool over n endpoints would get
// under the given worker bound (0 = GOMAXPROCS), honoring the test
// hook. Callers that pad per-endpoint arenas at shard boundaries (so
// shards never share cache lines) use it to place the pads where the
// pool will actually cut.
func ShardsFor(n, workers int) int { return shardCount(n, shardMin, workers) }

// WorkerStats is one shard worker's message counters, accumulated
// privately across a run (instead of contending on shared counters per
// message) and folded into a Stats once the workers are quiescent.
// Padded so each worker owns its cache line.
type WorkerStats struct {
	Messages int64
	Words    int64
	MaxWords int
	_        [5]uint64
}

// Note counts one delivered message of the given width.
func (ws *WorkerStats) Note(words int) {
	ws.Messages++
	ws.Words += int64(words)
	if words > ws.MaxWords {
		ws.MaxWords = words
	}
}

// MergeWorkers folds per-worker counters into s. Sums and max are
// order-independent, so the totals are bit-identical to a sequential
// delivery no matter how the work was sharded.
func (s *Stats) MergeWorkers(ws []WorkerStats) {
	for i := range ws {
		w := &ws[i]
		s.Messages += w.Messages
		s.Words += w.Words
		if w.MaxWords > s.MaxMessageWords {
			s.MaxMessageWords = w.MaxWords
		}
	}
}

// Pool is a fixed set of shard workers owning disjoint endpoint ranges
// [Bounds(i)). It is the one copy of the parallel substrate shared by
// the three model simulators: the CONGEST runner drives it with custom
// per-round tasks (delivery + batched wake-up), while the CLIQUE and MPC
// simulators use the ForEach/Scatter passes. A single-shard pool (small
// endpoint count, GOMAXPROCS=1) starts no goroutines and runs everything
// inline, so the sequential path and the parallel path are the same
// code.
type Pool struct {
	n       int
	nshards int
	bounds  []int
	tasks   []chan func(int) // nil when nshards == 1
	workers sync.WaitGroup
}

// NewPool creates a pool over n endpoints with at least minPerShard
// endpoints per shard, sized from GOMAXPROCS. Call Close when done: the
// workers are persistent goroutines.
func NewPool(n, minPerShard int) *Pool {
	return NewPoolSized(n, minPerShard, 0)
}

// NewPoolSized is NewPool with an explicit worker bound: workers > 0
// caps the shard count instead of GOMAXPROCS (the minPerShard floor and
// the SetForceShards test hook still apply), workers = 0 is NewPool.
func NewPoolSized(n, minPerShard, workers int) *Pool {
	p := &Pool{n: n, nshards: shardCount(n, minPerShard, workers)}
	p.bounds = make([]int, p.nshards+1)
	for i := 1; i <= p.nshards; i++ {
		p.bounds[i] = i * n / p.nshards
	}
	if p.nshards > 1 {
		p.tasks = make([]chan func(int), p.nshards)
		for i := range p.tasks {
			p.tasks[i] = make(chan func(int), 1)
		}
		p.workers.Add(p.nshards)
		for i := 0; i < p.nshards; i++ {
			go func(wid int) {
				defer p.workers.Done()
				for fn := range p.tasks[wid] {
					fn(wid)
				}
			}(i)
		}
	}
	return p
}

// N returns the endpoint count.
func (p *Pool) N() int { return p.n }

// Shards returns the number of shard workers.
func (p *Pool) Shards() int { return p.nshards }

// Bounds returns the endpoint range [lo, hi) owned by shard i.
func (p *Pool) Bounds(i int) (lo, hi int) { return p.bounds[i], p.bounds[i+1] }

// ShardOf returns the shard owning endpoint v.
func (p *Pool) ShardOf(v int) int {
	return sort.Search(p.nshards, func(i int) bool { return p.bounds[i+1] > v })
}

// Submit hands fn to worker wid (inline on a single-shard pool). The
// caller is responsible for any completion synchronization; ForEach and
// Scatter are the self-synchronizing passes.
func (p *Pool) Submit(wid int, fn func(wid int)) {
	if p.tasks == nil {
		fn(0)
		return
	}
	p.tasks[wid] <- fn
}

// ForEach runs fn once per shard over its endpoint range, in parallel,
// and returns when every shard has finished. Single-shard pools run
// inline.
func (p *Pool) ForEach(fn func(wid, lo, hi int)) {
	if p.tasks == nil {
		fn(0, 0, p.n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p.nshards)
	for i := 0; i < p.nshards; i++ {
		p.tasks[i] <- func(wid int) {
			defer wg.Done()
			fn(wid, p.bounds[wid], p.bounds[wid+1])
		}
	}
	wg.Wait()
}

// Close stops the workers. The pool must not be used afterwards.
func (p *Pool) Close() {
	if p.tasks != nil {
		for _, ch := range p.tasks {
			close(ch)
		}
		p.workers.Wait()
		p.tasks = nil
	}
}

// scatterItem is one routed unit of a Scatter pass.
type scatterItem[T any] struct {
	src, dst int32
	item     T
}

// Scatter moves items from senders to receivers (both indexed by the
// pool's endpoints) in two deterministic phases. Phase 1 is
// sender-sharded: send(wid, s, emit) runs once per sender s on the
// worker owning s, and every emit(dst, item) routes one item into the
// bucket of dst's shard. Phase 2 is receiver-sharded: recv(wid, src,
// dst, item) runs on the worker owning dst, with the items of each
// receiver arriving in ascending sender order — the exact order a
// sequential scan of the senders would deliver, so the result is
// bit-identical regardless of the worker count. Workers touch disjoint
// state, so neither phase needs locks; per-worker accounting (stats, IO
// vectors, first-error slots) indexed by wid is the intended way to
// aggregate, with a deterministic merge after Scatter returns.
func Scatter[T any](p *Pool, send func(wid, src int, emit func(dst int, item T)), recv func(wid int, src, dst int32, item T)) {
	if p.nshards == 1 {
		// Sequential fast path: a single scan of the senders in ascending
		// order delivers each receiver's items in exactly the order the
		// two-phase pass would — no bucket staging needed.
		for s := 0; s < p.n; s++ {
			src := int32(s)
			send(0, s, func(dst int, item T) { recv(0, src, int32(dst), item) })
		}
		return
	}
	k := p.nshards
	buckets := make([][][]scatterItem[T], k)
	p.ForEach(func(wid, lo, hi int) {
		b := make([][]scatterItem[T], k)
		for s := lo; s < hi; s++ {
			send(wid, s, func(dst int, item T) {
				ds := p.ShardOf(dst)
				b[ds] = append(b[ds], scatterItem[T]{src: int32(s), dst: int32(dst), item: item})
			})
		}
		buckets[wid] = b
	})
	p.ForEach(func(wid, lo, hi int) {
		for w1 := 0; w1 < k; w1++ {
			for i := range buckets[w1][wid] {
				it := &buckets[w1][wid][i]
				recv(wid, it.src, it.dst, it.item)
			}
		}
	})
}
