package engine_test

import (
	"testing"

	"smallbandwidth/internal/engine"
)

// TestPoolForEachPartitions checks that a forced multi-shard pool covers
// [0, n) with disjoint contiguous ranges and that ShardOf inverts the
// bounds.
func TestPoolForEachPartitions(t *testing.T) {
	engine.SetForceShards(7)
	defer engine.SetForceShards(0)
	p := engine.NewPool(100, 1)
	defer p.Close()
	if p.Shards() != 7 {
		t.Fatalf("forced 7 shards, got %d", p.Shards())
	}
	seen := make([]int, 100)
	p.ForEach(func(wid, lo, hi int) {
		for v := lo; v < hi; v++ {
			seen[v]++ // workers own disjoint ranges: no race
			if p.ShardOf(v) != wid {
				t.Errorf("ShardOf(%d) = %d, want %d", v, p.ShardOf(v), wid)
			}
		}
	})
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("endpoint %d covered %d times", v, c)
		}
	}
}

// scatterRef is the sequential reference: sender-ascending scan.
func scatterRef(n int, out [][]int) [][][2]int {
	in := make([][][2]int, n)
	for s := 0; s < n; s++ {
		for _, dst := range out[s] {
			in[dst] = append(in[dst], [2]int{s, dst})
		}
	}
	return in
}

// TestScatterMatchesSequentialAcrossShards drives Scatter with 1, 3, and
// 8 forced shards over an irregular traffic pattern and asserts each
// receiver sees exactly the sequential delivery order.
func TestScatterMatchesSequentialAcrossShards(t *testing.T) {
	const n = 97
	out := make([][]int, n)
	for s := 0; s < n; s++ {
		for k := 0; k < (s*7)%5; k++ {
			out[s] = append(out[s], (s*13+k*29)%n)
		}
	}
	want := scatterRef(n, out)
	for _, shards := range []int{1, 3, 8} {
		engine.SetForceShards(shards)
		p := engine.NewPool(n, 1)
		in := make([][][2]int, n)
		engine.Scatter(p,
			func(wid, src int, emit func(int, int)) {
				for _, dst := range out[src] {
					emit(dst, src)
				}
			},
			func(wid int, src, dst int32, item int) {
				if int(src) != item {
					t.Errorf("shards=%d: src %d != item %d", shards, src, item)
				}
				in[dst] = append(in[dst], [2]int{int(src), int(dst)})
			})
		p.Close()
		engine.SetForceShards(0)
		for v := range want {
			if len(in[v]) != len(want[v]) {
				t.Fatalf("shards=%d receiver %d: got %d items, want %d", shards, v, len(in[v]), len(want[v]))
			}
			for i := range want[v] {
				if in[v][i] != want[v][i] {
					t.Fatalf("shards=%d receiver %d item %d: got %v, want %v", shards, v, i, in[v][i], want[v][i])
				}
			}
		}
	}
}

// TestRunnerOnAllToAll runs blocking node programs on the complete
// topology — the engine's runner is topology-generic, not CONGEST-bound.
func TestRunnerOnAllToAll(t *testing.T) {
	const n, rounds = 48, 5
	st, err := engine.Run(engine.NewAllToAll(n), engine.Config{Model: "clique"}, func(ctx *engine.Ctx) {
		if ctx.Degree() != n-1 {
			t.Errorf("node %d degree %d, want %d", ctx.ID(), ctx.Degree(), n-1)
		}
		for r := 0; r < rounds; r++ {
			for _, w := range ctx.Neighbors() {
				ctx.Send(int(w), engine.Message{uint64(r)})
			}
			got := len(ctx.Next())
			if r > 0 && got != n-1 {
				t.Errorf("node %d round %d received %d, want %d", ctx.ID(), r, got, n-1)
			}
		}
		ctx.Next() // drain the final round
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(rounds * n * (n - 1)); st.Messages != want {
		t.Fatalf("delivered %d messages, want %d", st.Messages, want)
	}
}

// TestChargeTraffic covers the bulk-aggregation accounting hook: charged
// messages, words, and widths must fold into the final Stats exactly as
// if the traffic had been delivered, sum across charging nodes, and
// reject invalid charges (negative counts, widths over the bandwidth
// cap) as model violations.
func TestChargeTraffic(t *testing.T) {
	const n = 4
	st, err := engine.Run(engine.NewAllToAll(n), engine.Config{Model: "congest"}, func(ctx *engine.Ctx) {
		ctx.ChargeTraffic(10, 40, 4)
		ctx.ChargeTraffic(0, 0, 99) // zero charge: width not even validated
		ctx.Next()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != 10*n || st.Words != 40*n {
		t.Fatalf("charged traffic not folded: %+v", st)
	}
	if st.MaxMessageWords != 4 {
		t.Fatalf("charged width not folded: %+v", st)
	}

	if _, err := engine.Run(engine.NewAllToAll(2), engine.Config{Model: "congest"}, func(ctx *engine.Ctx) {
		ctx.ChargeTraffic(-1, 0, 1)
	}); err == nil {
		t.Fatal("negative charge accepted")
	}
	if _, err := engine.Run(engine.NewAllToAll(2), engine.Config{Model: "congest", MaxWords: 4}, func(ctx *engine.Ctx) {
		ctx.ChargeTraffic(1, 5, 5)
	}); err == nil {
		t.Fatal("charge wider than the bandwidth cap accepted")
	}
}

// TestRunnerModelPrefix checks that violations report in the configured
// model's vocabulary.
func TestRunnerModelPrefix(t *testing.T) {
	_, err := engine.Run(engine.NewAllToAll(3), engine.Config{Model: "clique", MaxWords: 1}, func(ctx *engine.Ctx) {
		ctx.Send(int(ctx.Neighbors()[0]), engine.Message{1, 2, 3})
		ctx.Next()
	})
	if err == nil {
		t.Fatal("oversized message accepted")
	}
	if got := err.Error(); len(got) < 7 || got[:7] != "clique:" {
		t.Fatalf("error not in model vocabulary: %v", err)
	}
}
