package engine

import "testing"

// TestFifoSustainedBacklogCompacts drives the push-one/pop-one pattern
// that never fully drains the queue and checks both FIFO order and that
// the backing array stays O(backlog) instead of O(operations).
func TestFifoSustainedBacklogCompacts(t *testing.T) {
	var q fifo
	const backlog = 3
	next := uint64(0)
	for i := 0; i < backlog; i++ {
		q.push(Message{next})
		next++
	}
	want := uint64(0)
	for op := 0; op < 10000; op++ {
		q.push(Message{next})
		next++
		m := q.pop()
		if m[0] != want {
			t.Fatalf("op %d: popped %d, want %d", op, m[0], want)
		}
		want++
		if q.size() != backlog {
			t.Fatalf("op %d: size %d, want %d", op, q.size(), backlog)
		}
	}
	if c := cap(q.buf); c > 128 {
		t.Fatalf("backing array grew to %d for a backlog of %d", c, backlog)
	}
	for q.size() > 0 {
		if m := q.pop(); m[0] != want {
			t.Fatalf("drain: popped %d, want %d", m[0], want)
		} else {
			want++
		}
	}
}
