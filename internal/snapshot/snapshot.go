// Package snapshot is the versioned on-disk container for checkpointed
// runs: a magic string, a format version, and a CRC-checked section
// table, with append-only encoders and sticky-error decoders that never
// panic and never allocate more than the input could justify — the
// properties FuzzSnapshotDecode pins.
//
// The container is deliberately dumb: sections are opaque byte blobs
// tagged with a small ID. What goes in them — the CSR graph dump, the
// color lists, the engine's per-domain cuts, algorithm-specific state —
// is defined by the codecs in this package and assembled by the
// algorithm layers (core, netdecomp). Every codec writes a canonical
// byte stream (no map iteration, fixed field order), so decoding a
// snapshot and re-encoding it reproduces the input byte for byte; the
// golden-file test pins that property for format v1.
//sbw:stickydecoder container decode path for hostile snapshot bytes (FuzzSnapshotDecode); sticky errors, never panics
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic opens every snapshot file; the trailing digit is the major
// format generation (bumped only if the container layout itself breaks).
const Magic = "SBWSNAP1"

// Version is the current format version. Decoders reject versions they
// don't know — a version bump is an explicit compatibility break.
const Version = 1

// Section IDs of format v1. Snapshots carry a subset, in any order, at
// most once each.
const (
	// SecMeta fingerprints the run: simulated model, algorithm options.
	// A resume refuses a snapshot whose fingerprint does not match.
	SecMeta uint32 = 1
	// SecGraph is the straight CSR dump of the topology (delta-coded).
	SecGraph uint32 = 2
	// SecLists is the list-coloring instance's color space and per-node
	// lists (delta-coded; lists are sorted ascending).
	SecLists uint32 = 3
	// SecEngine is the engine's consistent cut: per-domain rounds, Stats,
	// committed node blobs, and queued backlog.
	SecEngine uint32 = 4
	// SecAlgo is algorithm-layer state outside the engine cut (e.g. the
	// decomposed pipeline's between-class progress).
	SecAlgo uint32 = 5
	// SecRNG records generator-seed provenance. The coloring algorithms
	// of this repository are deterministic and keep no live RNG state —
	// randomness only ever enters through the instance generators' seeds
	// — so this section is an audit trail, not restored machine state.
	SecRNG uint32 = 6

	// IDs 16–18 belong to the persistent graph store (internal/store),
	// which reuses this container for its on-disk format. They are
	// registered here so the one ID space stays collision-free; the
	// section payloads are defined by the store package.

	// SecStoreMeta fingerprints a graph-store file and records its
	// shape (n, m, Δ) plus alignment padding for the raw sections.
	SecStoreMeta uint32 = 16
	// SecStoreOff is the raw little-endian int32 CSR offset table.
	SecStoreOff uint32 = 17
	// SecStoreNbr is the raw little-endian int32 CSR arc arena.
	SecStoreNbr uint32 = 18
)

// maxSections bounds the section table; format v1 defines six
// checkpoint IDs plus the three graph-store IDs.
const maxSections = 64

// Section is one tagged blob of a snapshot.
type Section struct {
	ID   uint32
	Data []byte
}

// Container is a decoded snapshot file.
type Container struct {
	Version  uint32
	Sections []Section
}

// Find returns the data of the section with the given ID, or nil.
func (c *Container) Find(id uint32) []byte {
	for i := range c.Sections {
		if c.Sections[i].ID == id {
			return c.Sections[i].Data
		}
	}
	return nil
}

// Encode serializes the container: magic, version, section count, then
// a (id, length, crc32) table, then the payloads in table order.
func Encode(c *Container) []byte {
	n := len(Magic) + 8 + 12*len(c.Sections)
	for i := range c.Sections {
		n += len(c.Sections[i].Data)
	}
	b := make([]byte, 0, n) //sbw:stickyok encode path: n sums in-memory section lengths, not decoded input
	b = append(b, Magic...)
	b = binary.LittleEndian.AppendUint32(b, c.Version)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(c.Sections)))
	for i := range c.Sections {
		s := &c.Sections[i]
		b = binary.LittleEndian.AppendUint32(b, s.ID)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Data)))
		b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(s.Data))
	}
	for i := range c.Sections {
		b = append(b, c.Sections[i].Data...)
	}
	return b
}

// Decode parses a snapshot file. Corrupt, truncated, or
// version-incompatible input returns an error; the parse never panics
// and allocates no more than the input size justifies. Section payloads
// alias the input buffer.
func Decode(b []byte) (*Container, error) {
	if len(b) < len(Magic)+8 {
		return nil, fmt.Errorf("snapshot: %d bytes is shorter than the header", len(b))
	}
	if string(b[:len(Magic)]) != Magic {
		return nil, errors.New("snapshot: bad magic")
	}
	ver := binary.LittleEndian.Uint32(b[len(Magic):])
	if ver != Version {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (this build reads %d)", ver, Version)
	}
	count := binary.LittleEndian.Uint32(b[len(Magic)+4:])
	if count > maxSections {
		return nil, fmt.Errorf("snapshot: section count %d exceeds the limit %d", count, maxSections)
	}
	rest := b[len(Magic)+8:]
	if uint64(len(rest)) < 12*uint64(count) {
		return nil, errors.New("snapshot: truncated section table")
	}
	table, payload := rest[:12*count], rest[12*count:]
	c := &Container{Version: ver, Sections: make([]Section, count)}
	seen := make(map[uint32]bool, count)
	var need uint64
	for i := range c.Sections {
		c.Sections[i].ID = binary.LittleEndian.Uint32(table[12*i:])
		need += uint64(binary.LittleEndian.Uint32(table[12*i+4:]))
		if seen[c.Sections[i].ID] {
			return nil, fmt.Errorf("snapshot: duplicate section %d", c.Sections[i].ID)
		}
		seen[c.Sections[i].ID] = true
	}
	if need != uint64(len(payload)) {
		return nil, fmt.Errorf("snapshot: section table claims %d payload bytes, file has %d", need, len(payload))
	}
	off := 0
	for i := range c.Sections {
		size := int(binary.LittleEndian.Uint32(table[12*i+4:]))
		data := payload[off : off+size : off+size]
		if crc := binary.LittleEndian.Uint32(table[12*i+8:]); crc != crc32.ChecksumIEEE(data) {
			return nil, fmt.Errorf("snapshot: section %d fails its checksum", c.Sections[i].ID)
		}
		c.Sections[i].Data = data
		off += size
	}
	return c, nil
}

// Enc is an append-based section encoder. All integers are unsigned
// varints unless a method says otherwise; the field order of a codec is
// its format definition.
type Enc struct {
	b []byte
}

// Bytes returns the encoded stream.
func (e *Enc) Bytes() []byte { return e.b }

// Uvarint appends an unsigned varint.
func (e *Enc) Uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// Varint appends a signed (zigzag) varint.
func (e *Enc) Varint(v int64) { e.b = binary.AppendVarint(e.b, v) }

// U64 appends a fixed-width little-endian 64-bit word.
func (e *Enc) U64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

// Bool appends one byte, 0 or 1.
func (e *Enc) Bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// Blob appends a length-prefixed byte string.
func (e *Enc) Blob(p []byte) {
	e.Uvarint(uint64(len(p)))
	e.b = append(e.b, p...)
}

// Dec is a sticky-error section decoder: after the first malformed
// field every subsequent read returns zero values and Err() reports the
// failure, so codecs read a whole record without per-field checks and
// validate once. Reads never panic; count fields are checked against
// the remaining input before any allocation sized by them.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec wraps a section payload.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decoding error, or nil.
func (d *Dec) Err() error { return d.err }

// Remaining returns the unread byte count.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

// Close reports the sticky error, or an error if unread bytes remain —
// a canonical stream is consumed exactly.
func (d *Dec) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("snapshot: %d trailing bytes after the last field", len(d.b)-d.off)
	}
	return nil
}

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:]) //sbw:stickyok Dec invariant: off ≤ len(b) (every advance is guarded), so the tail slice is always valid
	if n <= 0 {
		d.fail("truncated or overlong varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed (zigzag) varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:]) //sbw:stickyok Dec invariant: off ≤ len(b) (every advance is guarded), so the tail slice is always valid
	if n <= 0 {
		d.fail("truncated or overlong varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// U64 reads a fixed-width little-endian 64-bit word.
func (d *Dec) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail("truncated u64 at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// Bool reads one byte that must be 0 or 1.
func (d *Dec) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.Remaining() < 1 {
		d.fail("truncated bool at offset %d", d.off)
		return false
	}
	v := d.b[d.off]
	d.off++
	if v > 1 {
		d.fail("bool byte %d at offset %d", v, d.off-1)
		return false
	}
	return v == 1
}

// Count reads an element count whose elements each occupy at least
// elemBytes input bytes, rejecting counts the remaining input cannot
// hold — the OOM guard in front of every count-sized allocation.
func (d *Dec) Count(elemBytes int) int {
	v := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if elemBytes < 1 {
		elemBytes = 1
	}
	if v > uint64(d.Remaining())/uint64(elemBytes) {
		d.fail("count %d exceeds what %d remaining bytes can hold", v, d.Remaining())
		return 0
	}
	return int(v)
}

// Blob reads a length-prefixed byte string, copied out of the input.
func (d *Dec) Blob() []byte {
	n := d.Count(1)
	if d.err != nil {
		return nil
	}
	p := make([]byte, n)
	copy(p, d.b[d.off:d.off+n]) //sbw:stickyok off+n ≤ len(b): n just passed the Count(1) guard against the remaining input
	d.off += n
	return p
}
