//sbw:stickydecoder section codecs for hostile snapshot bytes (FuzzSnapshotDecode); sticky errors, never panics
package snapshot

import (
	"fmt"
	"math"

	"smallbandwidth/internal/engine"
	"smallbandwidth/internal/graph"
)

// Codecs of the format-v1 sections. Every codec is canonical — fixed
// field order, no map iteration, minimal-length varints — so that
// decode followed by encode reproduces the bytes exactly.

// EncodeGraph writes the SecGraph payload: node count, per-node degrees
// (the offset-table deltas), then the arc arena as per-row ascending
// target deltas. A straight dump of the CSR arenas, delta-coded because
// rows are sorted.
func EncodeGraph(e *Enc, g *graph.Graph) {
	off, nbr := g.CSR()
	n := g.N()
	e.Uvarint(uint64(n))
	for v := 0; v < n; v++ {
		e.Uvarint(uint64(off[v+1] - off[v]))
	}
	for v := 0; v < n; v++ {
		prev := int64(-1)
		//sbw:stickyok encode path: off/nbr are a validated in-memory CSR, not decoded input
		for _, w := range nbr[off[v]:off[v+1]] {
			e.Uvarint(uint64(int64(w) - prev))
			prev = int64(w)
		}
	}
}

// DecodeGraph reads a SecGraph payload and rebuilds the graph through
// the validating CSR constructor, so a corrupt section yields an error,
// never a structurally broken graph.
func DecodeGraph(d *Dec) (*graph.Graph, error) {
	n := d.Count(1)
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("snapshot: graph node count %d exceeds the int32 node space", n)
	}
	off := make([]int32, n+1)
	var arcs uint64
	for v := 0; v < n; v++ {
		deg := d.Uvarint()
		// Bound deg before accumulating: every arc costs at least one
		// input byte, so a degree beyond Remaining() is invalid — and the
		// bound keeps arcs += deg from wrapping around 2^64, which would
		// let a hostile stream slip past the guards below with a tiny
		// wrapped total and panic the arc-fill loop.
		if d.err != nil || deg > uint64(d.Remaining()) {
			return nil, d.failf("graph degree stream invalid at node %d", v)
		}
		arcs += deg
		if arcs > uint64(d.Remaining()) || arcs > math.MaxInt32 {
			return nil, d.failf("graph degree stream invalid at node %d", v)
		}
		off[v+1] = off[v] + int32(deg)
	}
	nbr := make([]int32, arcs)
	for v := 0; v < n; v++ {
		prev := int64(-1)
		for i := off[v]; i < off[v+1]; i++ {
			delta := d.Uvarint()
			prev += int64(delta)
			if d.err != nil || delta == 0 || prev >= int64(n) {
				return nil, d.failf("graph arc stream invalid at node %d", v)
			}
			nbr[i] = int32(prev)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return graph.FromCSR(off, nbr)
}

// EncodeLists writes the SecLists payload: the color-space size and the
// per-node lists (sorted strictly ascending, so delta-coded).
func EncodeLists(e *Enc, c uint32, lists [][]uint32) {
	e.Uvarint(uint64(c))
	e.Uvarint(uint64(len(lists)))
	for _, list := range lists {
		e.Uvarint(uint64(len(list)))
		prev := int64(-1)
		for _, col := range list {
			e.Uvarint(uint64(int64(col) - prev))
			prev = int64(col)
		}
	}
}

// DecodeLists reads a SecLists payload. Structural checks only (sorted,
// in range); semantic validation against the graph is the caller's
// Instance.Validate.
func DecodeLists(d *Dec) (uint32, [][]uint32, error) {
	c := d.Uvarint()
	if c > math.MaxUint32 {
		return 0, nil, d.failf("color space %d exceeds uint32", c)
	}
	n := d.Count(1)
	lists := make([][]uint32, n)
	for v := range lists {
		k := d.Count(1)
		if d.err != nil {
			return 0, nil, d.err
		}
		list := make([]uint32, k)
		prev := int64(-1)
		for i := range list {
			delta := d.Uvarint()
			prev += int64(delta)
			if d.err != nil || delta == 0 || prev >= int64(c) {
				return 0, nil, d.failf("list stream invalid at node %d", v)
			}
			list[i] = uint32(prev)
		}
		lists[v] = list
	}
	if d.err != nil {
		return 0, nil, d.err
	}
	return uint32(c), lists, nil
}

// EncodeRunSnapshot writes the SecEngine payload: the engine's
// consistent cut, domain by domain. Message payload words are
// fixed-width (they are protocol data, usually near the bandwidth cap,
// where varints would pay without saving).
func EncodeRunSnapshot(e *Enc, s *engine.RunSnapshot) {
	e.Uvarint(uint64(len(s.Cuts)))
	for i := range s.Cuts {
		cut := &s.Cuts[i]
		e.Uvarint(uint64(cut.Root))
		e.Uvarint(uint64(cut.Round))
		e.Bool(cut.Final)
		e.Uvarint(uint64(cut.Stats.Rounds))
		e.Uvarint(uint64(cut.Stats.Messages))
		e.Uvarint(uint64(cut.Stats.Words))
		e.Uvarint(uint64(cut.Stats.MaxMessageWords))
		e.Uvarint(uint64(len(cut.Nodes)))
		for j := range cut.Nodes {
			nc := &cut.Nodes[j]
			e.Uvarint(uint64(nc.ID))
			e.Bool(nc.Done)
			e.Blob(nc.Blob)
		}
		e.Uvarint(uint64(len(cut.Queues)))
		for j := range cut.Queues {
			qc := &cut.Queues[j]
			e.Uvarint(uint64(qc.Sender))
			e.Uvarint(uint64(qc.Slot))
			e.Uvarint(uint64(len(qc.Msgs)))
			for _, m := range qc.Msgs {
				e.Uvarint(uint64(len(m)))
				for _, w := range m {
					e.U64(w)
				}
			}
		}
	}
}

// DecodeRunSnapshot reads a SecEngine payload. Structural checks only
// (bounded counts, int32 ID ranges); the engine's resume validation
// checks the cut against the actual topology.
func DecodeRunSnapshot(d *Dec) (*engine.RunSnapshot, error) {
	// Zero counts decode to nil slices (not empty ones) so that decoding
	// re-encodes — and DeepEqual-compares — identically to the original.
	nc := d.Count(8)
	s := &engine.RunSnapshot{}
	if nc > 0 {
		s.Cuts = make([]engine.DomainCut, nc)
	}
	for i := range s.Cuts {
		cut := &s.Cuts[i]
		root := d.Uvarint()
		round := d.Uvarint()
		cut.Final = d.Bool()
		rounds := d.Uvarint()
		msgs := d.Uvarint()
		words := d.Uvarint()
		maxw := d.Uvarint()
		if d.err != nil {
			return nil, d.err
		}
		if root > math.MaxInt32 || round > math.MaxInt32 || rounds > math.MaxInt32 ||
			msgs > math.MaxInt64 || words > math.MaxInt64 || maxw > math.MaxInt32 {
			return nil, d.failf("cut %d header fields out of range", i)
		}
		cut.Root = int32(root)
		cut.Round = int(round)
		cut.Stats = engine.Stats{Rounds: int(rounds), Messages: int64(msgs), Words: int64(words), MaxMessageWords: int(maxw)}
		nodes := d.Count(3)
		if nodes > 0 {
			cut.Nodes = make([]engine.NodeCut, nodes)
		}
		for j := range cut.Nodes {
			id := d.Uvarint()
			if id > math.MaxInt32 {
				return nil, d.failf("cut %d node %d ID out of range", i, j)
			}
			cut.Nodes[j] = engine.NodeCut{ID: int32(id), Done: d.Bool(), Blob: d.Blob()}
			if d.err != nil {
				return nil, d.err
			}
		}
		queues := d.Count(3)
		if queues > 0 {
			cut.Queues = make([]engine.QueueCut, queues)
		}
		for j := range cut.Queues {
			qc := &cut.Queues[j]
			sender := d.Uvarint()
			slot := d.Uvarint()
			if sender > math.MaxInt32 || slot > math.MaxInt32 {
				return nil, d.failf("cut %d queue %d endpoint out of range", i, j)
			}
			qc.Sender = int32(sender)
			qc.Slot = int32(slot)
			nm := d.Count(2)
			if d.err != nil {
				return nil, d.err
			}
			qc.Msgs = make([]engine.Message, nm)
			for mi := range qc.Msgs {
				words := d.Count(8)
				if d.err != nil {
					return nil, d.err
				}
				m := make(engine.Message, words)
				for wi := range m {
					m[wi] = d.U64()
				}
				qc.Msgs[mi] = m
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return s, nil
}

// failf records (if first) and returns a decoding error.
func (d *Dec) failf(format string, args ...any) error {
	d.fail(format, args...)
	return d.err
}
