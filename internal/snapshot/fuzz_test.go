package snapshot_test

// FuzzSnapshotDecode pins the decoding discipline of the whole snapshot
// stack: arbitrary bytes — truncated, bit-flipped, version-bumped, or
// adversarially crafted — must produce an error or a valid value, never
// a panic and never an allocation the input size cannot justify.

import (
	"bytes"
	"os"
	"testing"

	"smallbandwidth/internal/core"
	"smallbandwidth/internal/netdecomp"
	"smallbandwidth/internal/snapshot"
)

func FuzzSnapshotDecode(f *testing.F) {
	if raw, err := os.ReadFile(goldenPath()); err == nil {
		f.Add(raw)
		f.Add(raw[:len(raw)/2])
		f.Add(raw[:len("SBWSNAP1")+8])
		mut := bytes.Clone(raw)
		mut[len(mut)/3] ^= 0xff
		f.Add(mut)
		bumped := bytes.Clone(raw)
		bumped[len("SBWSNAP1")] = 2 // unknown future version
		f.Add(bumped)
	}
	f.Add([]byte{})
	f.Add([]byte("SBWSNAP1"))
	f.Add([]byte("SBWSNAP1\x01\x00\x00\x00\x00\x00\x00\x00"))
	// Graph degree stream whose running sum wraps around 2^64 (nine unit
	// degrees, then 2^64-5): must error, not under-allocate and panic.
	var ovf snapshot.Enc
	ovf.Uvarint(10)
	for i := 0; i < 9; i++ {
		ovf.Uvarint(1)
	}
	ovf.Uvarint(1<<64 - 5)
	for i := 0; i < 8; i++ {
		ovf.Uvarint(1)
	}
	f.Add(ovf.Bytes())

	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) > 1<<20 {
			return
		}
		// Container layer: a successfully decoded container re-encodes to
		// exactly the input (the format has no redundancy to normalize).
		if c, err := snapshot.Decode(b); err == nil {
			if !bytes.Equal(snapshot.Encode(c), b) {
				t.Fatal("valid container did not re-encode to its input")
			}
		}
		// Full checkpoint decoders (container + section codecs + semantic
		// validation). Their outputs are exercised but not asserted: a
		// fuzz-crafted valid file may order sections non-canonically.
		if cp, err := core.DecodeCheckpoint(b); err == nil {
			_ = core.EncodeCheckpoint(cp)
		}
		if cp, err := netdecomp.DecodeCheckpoint(b); err == nil {
			_ = netdecomp.EncodeCheckpoint(cp)
		}
		// Raw section codecs on the bare bytes.
		if g, err := snapshot.DecodeGraph(snapshot.NewDec(b)); err == nil && g.N() >= 0 {
			_ = g.MaxDegree()
		}
		if _, lists, err := snapshot.DecodeLists(snapshot.NewDec(b)); err == nil {
			_ = lists
		}
		if s, err := snapshot.DecodeRunSnapshot(snapshot.NewDec(b)); err == nil {
			_ = s
		}
	})
}
