package snapshot_test

// Container-level tests for the versioned snapshot format, plus the
// golden v1 file: a checked-in mid-run checkpoint that every future
// build must keep decoding, resuming, and re-encoding byte for byte.

import (
	"bytes"
	"encoding/binary"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/core"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/snapshot"
)

var update = flag.Bool("update", false, "rewrite the golden snapshot files")

func sampleContainer() *snapshot.Container {
	return &snapshot.Container{
		Version: snapshot.Version,
		Sections: []snapshot.Section{
			{ID: snapshot.SecMeta, Data: []byte("meta")},
			{ID: snapshot.SecGraph, Data: []byte{1, 2, 3, 4, 5}},
			{ID: snapshot.SecRNG, Data: nil},
		},
	}
}

func TestContainerRoundTrip(t *testing.T) {
	c := sampleContainer()
	raw := snapshot.Encode(c)
	got, err := snapshot.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != c.Version || len(got.Sections) != len(c.Sections) {
		t.Fatalf("decoded container shape differs: %+v", got)
	}
	for i := range c.Sections {
		if got.Sections[i].ID != c.Sections[i].ID || !bytes.Equal(got.Sections[i].Data, c.Sections[i].Data) {
			t.Fatalf("section %d differs", i)
		}
	}
	if !bytes.Equal(snapshot.Encode(got), raw) {
		t.Fatal("decode followed by encode did not reproduce the bytes")
	}
	if got.Find(snapshot.SecGraph) == nil || got.Find(snapshot.SecEngine) != nil {
		t.Fatal("Find misreported section presence")
	}
}

func TestContainerRejectsCorruption(t *testing.T) {
	raw := snapshot.Encode(sampleContainer())
	warps := []struct {
		name string
		warp func(b []byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short-header", func(b []byte) []byte { return b[:10] }},
		{"bad-magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"future-version", func(b []byte) []byte { b[8] = 99; return b }},
		{"section-count-bomb", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], 1<<30)
			return b
		}},
		{"truncated-table", func(b []byte) []byte { return b[:len("SBWSNAP1")+8+5] }},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-3] }},
		{"trailing-payload", func(b []byte) []byte { return append(b, 0xaa) }},
		{"duplicate-section", func(b []byte) []byte {
			// Rewrite section 2's ID to collide with section 0's.
			binary.LittleEndian.PutUint32(b[len("SBWSNAP1")+8+24:], snapshot.SecMeta)
			return b
		}},
		{"crc-flip", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }},
	}
	for _, w := range warps {
		t.Run(w.name, func(t *testing.T) {
			if _, err := snapshot.Decode(w.warp(bytes.Clone(raw))); err == nil {
				t.Fatal("corrupt container was accepted")
			}
		})
	}
}

func TestDecPrimitives(t *testing.T) {
	var e snapshot.Enc
	e.Uvarint(300)
	e.Varint(-7)
	e.U64(0xdeadbeef)
	e.Bool(true)
	e.Blob([]byte("abc"))
	d := snapshot.NewDec(e.Bytes())
	if d.Uvarint() != 300 || d.Varint() != -7 || d.U64() != 0xdeadbeef || !d.Bool() || string(d.Blob()) != "abc" {
		t.Fatal("primitive round-trip failed")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Trailing bytes are an error: canonical streams are consumed exactly.
	d = snapshot.NewDec(append(e.Bytes(), 0))
	d.Uvarint()
	d.Varint()
	d.U64()
	d.Bool()
	d.Blob()
	if err := d.Close(); err == nil {
		t.Fatal("trailing byte was accepted")
	}

	// The count guard refuses counts the input cannot hold, before any
	// allocation sized by them.
	var bomb snapshot.Enc
	bomb.Uvarint(1 << 40)
	d = snapshot.NewDec(bomb.Bytes())
	if d.Count(8) != 0 || d.Err() == nil {
		t.Fatal("count bomb was accepted")
	}

	// Bool bytes other than 0/1 are malformed.
	d = snapshot.NewDec([]byte{2})
	if d.Bool(); d.Err() == nil {
		t.Fatal("bool byte 2 was accepted")
	}

	// The error is sticky: every later read returns zero values.
	if d.Uvarint() != 0 || d.U64() != 0 || d.Blob() != nil {
		t.Fatal("reads after a decoding error returned data")
	}
}

// TestDecodeGraphDegreeOverflow pins the guard against a degree stream
// whose running sum wraps around 2^64: nine unit degrees followed by a
// degree of 2^64-5 wrap the total back to 4, which would pass the
// remaining-bytes and int32 checks, under-allocate the arc arena, and
// panic the fill loop. The decoder must return an error instead.
func TestDecodeGraphDegreeOverflow(t *testing.T) {
	var e snapshot.Enc
	e.Uvarint(10)
	for i := 0; i < 9; i++ {
		e.Uvarint(1)
	}
	e.Uvarint(1<<64 - 5)
	// Arc deltas the wrapped decoder would start consuming.
	for i := 0; i < 8; i++ {
		e.Uvarint(1)
	}
	if _, err := snapshot.DecodeGraph(snapshot.NewDec(e.Bytes())); err == nil {
		t.Fatal("degree-sum overflow was accepted")
	}
}

// goldenPath is the checked-in format-v1 checkpoint.
func goldenPath() string { return filepath.Join("testdata", "golden_v1.snap") }

// makeGoldenCheckpoint reproduces the golden file's content: a mid-run
// cut of a small deterministic Theorem 1.1 run.
func makeGoldenCheckpoint(t *testing.T) *core.Checkpoint {
	t.Helper()
	inst := graph.DeltaPlusOneInstance(graph.Grid2D(3, 4))
	ck := &congest.Checkpointer{KeepAll: true}
	if _, err := core.ListColorResumable(inst, core.Options{}, ck, nil); err != nil {
		t.Fatal(err)
	}
	rounds := ck.CutRounds()
	if len(rounds) < 2 {
		t.Fatalf("golden run recorded only %d cuts", len(rounds))
	}
	return &core.Checkpoint{Inst: inst, Opts: core.Options{}, Snap: ck.At(rounds[len(rounds)/2])}
}

// TestGoldenV1 pins format v1: the checked-in snapshot must decode,
// resume to a verified coloring, and re-encode byte for byte. Run with
// -update to regenerate the file after an intentional format change
// (which must also bump snapshot.Version).
func TestGoldenV1(t *testing.T) {
	if *update {
		raw := core.EncodeCheckpoint(makeGoldenCheckpoint(t))
		if err := os.WriteFile(goldenPath(), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("golden file missing (generate with -update): %v", err)
	}

	c, err := snapshot.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if c.Version != snapshot.Version {
		t.Fatalf("golden version %d, build reads %d", c.Version, snapshot.Version)
	}
	for _, id := range []uint32{snapshot.SecMeta, snapshot.SecGraph, snapshot.SecLists, snapshot.SecEngine, snapshot.SecRNG} {
		if c.Find(id) == nil {
			t.Fatalf("golden snapshot lacks section %d", id)
		}
	}

	cp, err := core.DecodeCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	if again := core.EncodeCheckpoint(cp); !bytes.Equal(again, raw) {
		t.Fatal("golden snapshot did not re-encode byte for byte")
	}

	res, err := core.ListColorFromCheckpoint(cp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("golden resume did not finish the coloring")
	}
	if err := cp.Inst.VerifyColoring(res.Colors); err != nil {
		t.Fatal(err)
	}

	// The golden content is reproducible from source: a fresh run of the
	// same instance produces the identical file.
	if fresh := core.EncodeCheckpoint(makeGoldenCheckpoint(t)); !bytes.Equal(fresh, raw) {
		t.Fatal("a fresh run no longer reproduces the golden snapshot; if the protocol intentionally changed, regenerate with -update")
	}
}
