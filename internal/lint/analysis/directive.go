package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix introduces an sbw annotation: a line comment of the
// form
//
//	//sbw:<name> <justification>
//
// attached to the line it appears on, to the line immediately below
// (comment-above form), or — for the file-scoped names — anywhere in
// the file. The grammar is deliberately rigid: no space before "sbw:",
// the name runs to the first space, everything after it is the
// justification. A malformed directive ("// sbw:...", unknown name,
// empty justification) fails safe: the waiver is not granted and the
// sbwdirective grammar check reports it.
const DirectivePrefix = "//sbw:"

// Directive is one parsed //sbw: annotation.
type Directive struct {
	Name   string // "orderinvariant", "nondet", ...
	Reason string // justification; analyzers require non-empty
	Pos    token.Pos
	Line   int
}

// ParseDirective parses one comment. ok is false when the comment is
// not an sbw directive at all.
func ParseDirective(c *ast.Comment, fset *token.FileSet) (d Directive, ok bool) {
	if !strings.HasPrefix(c.Text, DirectivePrefix) {
		return Directive{}, false
	}
	rest := c.Text[len(DirectivePrefix):]
	name, reason, _ := strings.Cut(rest, " ")
	return Directive{
		Name:   strings.TrimSpace(name),
		Reason: strings.TrimSpace(reason),
		Pos:    c.Pos(),
		Line:   fset.Position(c.Pos()).Line,
	}, true
}

// GroupDirectives returns every sbw directive in a comment group (nil
// group is fine).
func GroupDirectives(g *ast.CommentGroup, fset *token.FileSet) []Directive {
	if g == nil {
		return nil
	}
	var out []Directive
	for _, c := range g.List {
		if d, ok := ParseDirective(c, fset); ok {
			out = append(out, d)
		}
	}
	return out
}

// FileDirectives indexes every sbw directive in one file by line.
type FileDirectives struct {
	All    []Directive
	byLine map[int][]Directive
}

// FileDirs returns the directive index for f, building it on first use.
func (p *Pass) FileDirs(f *ast.File) *FileDirectives {
	if p.directives == nil {
		p.directives = make(map[*ast.File]*FileDirectives)
	}
	if fd, ok := p.directives[f]; ok {
		return fd
	}
	fd := &FileDirectives{byLine: make(map[int][]Directive)}
	for _, g := range f.Comments {
		for _, c := range g.List {
			if d, ok := ParseDirective(c, p.Fset); ok {
				fd.All = append(fd.All, d)
				fd.byLine[d.Line] = append(fd.byLine[d.Line], d)
			}
		}
	}
	p.directives[f] = fd
	return fd
}

// Covering returns the named directive attached to the given line: on
// the line itself (trailing comment) or on the line directly above.
func (fd *FileDirectives) Covering(line int, name string) *Directive {
	for _, candidates := range [2][]Directive{fd.byLine[line], fd.byLine[line-1]} {
		for i := range candidates {
			if candidates[i].Name == name {
				return &candidates[i]
			}
		}
	}
	return nil
}

// Anywhere returns the named directive if it appears anywhere in the
// file (file-scoped names like stickydecoder).
func (fd *FileDirectives) Anywhere(name string) *Directive {
	for i := range fd.All {
		if fd.All[i].Name == name {
			return &fd.All[i]
		}
	}
	return nil
}

// Waived reports whether the named waiver covers line with a non-empty
// justification. An empty justification grants nothing (and is reported
// separately by the sbwdirective grammar check).
func (fd *FileDirectives) Waived(line int, name string) bool {
	d := fd.Covering(line, name)
	return d != nil && d.Reason != ""
}

// NodeLine is the line a node starts on.
func (p *Pass) NodeLine(n ast.Node) int { return p.Fset.Position(n.Pos()).Line }
