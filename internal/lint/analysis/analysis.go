// Package analysis is a deliberately small, dependency-free shadow of
// golang.org/x/tools/go/analysis: just enough structure to write the
// repo's invariant analyzers against a stable API without pulling an
// external module into a tree that is otherwise stdlib-only. The shapes
// (Analyzer, Pass, Diagnostic) match the x/tools API closely enough
// that migrating onto the real framework later is a mechanical rename.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the sbwlint
	// command line. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by `sbwlint -help`.
	Doc string
	// Run applies the analyzer to one package and reports findings
	// through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	// PkgPath is the package's import path ("smallbandwidth/internal/core").
	// Analyzers scope themselves by this path.
	PkgPath string
	Fset    *token.FileSet
	// Files holds the package's non-test source files, parsed with
	// comments.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver fills it in.
	Report func(Diagnostic)

	directives map[*ast.File]*FileDirectives
}

// Reportf formats and reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Position resolves a diagnostic position against the pass's FileSet.
func (p *Pass) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }
