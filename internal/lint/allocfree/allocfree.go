// Package allocfree statically polices the zero-allocation hot paths.
// Functions annotated
//
//	//sbw:allocfree <which hot loop this is>
//
// in their doc comment (the Theorem 1.1 phase-step kernels, the engine
// delivery inner loops) may not contain allocation-introducing
// constructs. The dynamic TestPhaseStepAllocFree proves the steady
// state allocates nothing; this pass catches the regression at vet time
// and in every function the dynamic test doesn't reach.
//
// Flagged: new, make, append, slice/map composite literals and
// &T{...} literals (value struct literals stay on the stack and are
// allowed), string concatenation, closures (FuncLit), calls into fmt
// or errors (formatting and wrapping allocate by design), and
// conversions of non-pointer-shaped concrete values to interface types
// (each one boxes). A reviewed cold path inside a hot function —
// a panic on a broken invariant, a pool refill — carries
//
//	//sbw:allocok <why this path is cold or amortized>
//
// on its line or the line above.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"

	"smallbandwidth/internal/lint/analysis"
)

// Analyzer is the allocfree pass.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "functions annotated //sbw:allocfree may not allocate: no new/make/append, no slice/map/& literals, no string concat, no closures, no fmt/errors, no interface boxing; //sbw:allocok <reason> waives a reviewed cold path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		fd := pass.FileDirs(file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var tag *analysis.Directive
			for _, d := range analysis.GroupDirectives(fn.Doc, pass.Fset) {
				if d.Name == "allocfree" {
					tag = &d
					break
				}
			}
			if tag == nil || tag.Reason == "" {
				continue
			}
			checkFunc(pass, fd, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *analysis.FileDirectives, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	waived := func(n ast.Node) bool { return fd.Waived(pass.NodeLine(n), "allocok") }
	report := func(n ast.Node, format string, args ...any) {
		if !waived(n) {
			pass.Reportf(n.Pos(), format, args...)
		}
	}
	// pointerShaped: values whose interface representation reuses the
	// value word, so boxing does not allocate.
	pointerShaped := func(t types.Type) bool {
		switch t.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			return true
		case *types.Basic:
			return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
		}
		return false
	}
	isInterface := func(t types.Type) bool {
		_, ok := t.Underlying().(*types.Interface)
		return ok
	}
	boxes := func(arg ast.Expr, to types.Type) bool {
		if !isInterface(to) {
			return false
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil {
			return false
		}
		from := types.Default(tv.Type)
		if isInterface(from) || pointerShaped(from) {
			return false
		}
		if b, ok := from.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			return false
		}
		return true
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "closure in //sbw:allocfree function %s: the FuncLit (and captured variables) allocate; hoist it or annotate //sbw:allocok <reason>", fn.Name.Name)
			return false // its body runs outside this hot path
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				report(n, "%s literal in //sbw:allocfree function %s allocates; reuse a buffer or annotate //sbw:allocok <reason>", kindName(tv.Type), fn.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n, "&literal in //sbw:allocfree function %s escapes to the heap; reuse a struct or annotate //sbw:allocok <reason>", fn.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && tv.Type != nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n, "string concatenation in //sbw:allocfree function %s allocates; annotate //sbw:allocok <reason> if cold", fn.Name.Name)
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "new", "make", "append":
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						report(n, "%s in //sbw:allocfree function %s allocates (or may grow); preallocate outside the hot loop or annotate //sbw:allocok <reason>", id.Name, fn.Name.Name)
						return true
					}
				}
			}
			if pkg := calleePackage(info, n); pkg == "fmt" || pkg == "errors" {
				report(n, "%s call in //sbw:allocfree function %s: formatting/wrapping allocates; annotate //sbw:allocok <reason> if this is a cold failure path", pkg, fn.Name.Name)
				return true // don't double-report its boxed arguments
			}
			tv, ok := info.Types[n.Fun]
			if !ok || tv.Type == nil {
				return true
			}
			if tv.IsType() {
				// Explicit conversion: interface target boxes.
				if len(n.Args) == 1 && boxes(n.Args[0], tv.Type) {
					report(n, "conversion of non-pointer value to interface in //sbw:allocfree function %s boxes (allocates); annotate //sbw:allocok <reason> if cold", fn.Name.Name)
				}
				return true
			}
			sig, ok := tv.Type.(*types.Signature)
			if !ok {
				return true
			}
			params := sig.Params()
			for i, arg := range n.Args {
				var pt types.Type
				switch {
				case sig.Variadic() && i >= params.Len()-1:
					if n.Ellipsis != token.NoPos {
						continue // slice passed through, no per-element boxing
					}
					pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
				case i < params.Len():
					pt = params.At(i).Type()
				}
				if pt != nil && boxes(arg, pt) {
					report(arg, "argument %s boxes a non-pointer value into an interface parameter in //sbw:allocfree function %s; annotate //sbw:allocok <reason> if cold", types.ExprString(arg), fn.Name.Name)
				}
			}
		}
		return true
	})
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

// calleePackage returns the import path of the called function's
// package, or "" for local/builtin/method calls it cannot attribute.
func calleePackage(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	xid, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[xid].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
