// Package detmaprange flags `for range` over a map inside the
// deterministic packages. Map iteration order is randomized per run, so
// any map-range whose body's effects depend on order (message emission,
// float accumulation, appending to an encoded buffer) breaks the
// bit-identity guarantee the conformance suite pins — exactly the class
// of bug that is invisible in a single-seed test and fatal in a
// cross-shard differential sweep.
//
// Order-insensitive loops (collect-keys-then-sort, counting, draining
// into an order-normalizing structure) are allowlisted with
//
//	//sbw:orderinvariant <why the body is order-insensitive>
//
// on the range statement's line or the line above. The justification is
// required: an empty reason grants nothing.
package detmaprange

import (
	"go/ast"
	"go/types"

	"smallbandwidth/internal/lint/analysis"
	"smallbandwidth/internal/lint/scope"
)

// Analyzer is the detmaprange pass.
var Analyzer = &analysis.Analyzer{
	Name: "detmaprange",
	Doc:  "flag map iteration in the deterministic packages (order-randomized per run); //sbw:orderinvariant <reason> allowlists order-insensitive loops",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !scope.Deterministic[pass.PkgPath] {
		return nil
	}
	for _, file := range pass.Files {
		fd := pass.FileDirs(file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if fd.Waived(pass.NodeLine(rs), "orderinvariant") {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s in deterministic package %s: iteration order is randomized per run; sort the keys or annotate //sbw:orderinvariant <reason>",
				types.ExprString(rs.X), pass.PkgPath)
			return true
		})
	}
	return nil
}
