// Package load type-checks Go packages for the sbwlint analyzers using
// nothing but the standard library and the go command: `go list -deps
// -json` resolves patterns, files, and import graphs (in dependency
// order), go/parser parses, and go/types checks each package against
// its already-checked dependencies. It is the stdlib-only stand-in for
// golang.org/x/tools/go/packages in a module that deliberately has no
// external dependencies — everything it loads (this module plus the
// stdlib closure) type-checks from source, offline.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked target package with full syntax.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors holds this package's own type-check errors. Target
	// packages are expected to be error-free; the driver surfaces these.
	TypeErrors []error
}

type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Loader caches type-checked packages across Load calls, so fixture
// tests and the self-check share one stdlib pass.
type Loader struct {
	// Dir is the working directory for go list (the module root, or any
	// directory inside it).
	Dir  string
	Fset *token.FileSet

	meta    map[string]*listPkg
	checked map[string]*types.Package
}

// New returns a Loader rooted at dir.
func New(dir string) *Loader {
	return &Loader{
		Dir:     dir,
		Fset:    token.NewFileSet(),
		meta:    make(map[string]*listPkg),
		checked: make(map[string]*types.Package),
	}
}

func (l *Loader) goList(args ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.Dir
	// CGO off: the pure-Go fallback files of net/os are self-contained
	// Go, so the whole closure type-checks from source. GOPROXY off
	// keeps the load hermetic — nothing here may touch the network.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0", "GOPROXY=off")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	return out.Bytes(), nil
}

// listDeps resolves patterns and merges the dependency closure into
// l.meta, returning (in order) the closure's import paths and the set
// of paths the patterns matched directly.
func (l *Loader) listDeps(patterns []string) (order []string, targets map[string]bool, err error) {
	out, err := l.goList(append([]string{"-deps", "-json=ImportPath,Name,Dir,Standard,GoFiles,Imports,ImportMap,Error"}, patterns...)...)
	if err != nil {
		return nil, nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list json: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if _, dup := l.meta[p.ImportPath]; !dup {
			l.meta[p.ImportPath] = &p
		}
		order = append(order, p.ImportPath)
	}
	tout, err := l.goList(patterns...)
	if err != nil {
		return nil, nil, err
	}
	targets = make(map[string]bool)
	for _, line := range strings.Split(strings.TrimSpace(string(tout)), "\n") {
		if line != "" {
			targets[line] = true
		}
	}
	return order, targets, nil
}

func (l *Loader) parse(p *listPkg, withComments bool) ([]*ast.File, error) {
	mode := parser.SkipObjectResolution
	if withComments {
		mode |= parser.ParseComments
	}
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(p.Dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// importerFor adapts the loader's cache to go/types for one package,
// honoring its vendor ImportMap.
type importerFor struct {
	l *Loader
	p *listPkg
}

func (im importerFor) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := im.p.ImportMap[path]; ok {
		path = mapped
	}
	if pkg, ok := im.l.checked[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("load: import %q not in dependency closure of %s", path, im.p.ImportPath)
}

// check type-checks one package. Dependencies must already be in
// l.checked. For non-target packages only the package-level API is
// checked (function bodies skipped) and errors are tolerated best
// effort; targets are fully checked with Info filled.
func (l *Loader) check(p *listPkg, target bool) (*Package, error) {
	files, err := l.parse(p, target)
	if err != nil {
		if target {
			return nil, err
		}
		return nil, nil // tolerate unparsable deps; imports of them fail later
	}
	var errs []error
	conf := types.Config{
		Importer:         importerFor{l, p},
		FakeImportC:      true,
		IgnoreFuncBodies: !target,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		Error:            func(err error) { errs = append(errs, err) },
	}
	var info *types.Info
	if target {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
	}
	tpkg, _ := conf.Check(p.ImportPath, l.Fset, files, info)
	if tpkg != nil {
		l.checked[p.ImportPath] = tpkg
	}
	if !target {
		return nil, nil
	}
	return &Package{
		PkgPath:    p.ImportPath,
		Dir:        p.Dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: errs,
	}, nil
}

// Load resolves patterns ("./...", an import path, ...) and returns the
// matched packages, fully type-checked with comments and Info. The
// dependency closure is checked API-only and cached across calls.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	order, targets, err := l.listDeps(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range order {
		if path == "unsafe" {
			continue
		}
		target := targets[path]
		if _, done := l.checked[path]; done && !target {
			continue
		}
		pkg, err := l.check(l.meta[path], target)
		if err != nil {
			return nil, fmt.Errorf("load %s: %v", path, err)
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}
