package load

import (
	"path/filepath"
	"runtime"
	"testing"
)

func moduleRoot(t *testing.T) string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

// TestLoadGraphPackage type-checks a real module package (and its
// stdlib closure) entirely from source, offline.
func TestLoadGraphPackage(t *testing.T) {
	l := New(moduleRoot(t))
	pkgs, err := l.Load("smallbandwidth/internal/graph")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "smallbandwidth/internal/graph" {
		t.Errorf("PkgPath = %q", p.PkgPath)
	}
	for _, err := range p.TypeErrors {
		t.Errorf("type error: %v", err)
	}
	if len(p.Files) == 0 || p.Types == nil || p.Info == nil {
		t.Fatalf("incomplete package: files=%d types=%v", len(p.Files), p.Types)
	}
	if p.Types.Scope().Lookup("Graph") == nil {
		t.Error("graph.Graph not found in package scope")
	}
}

// TestLoadWholeModule loads every package in the module; every target
// must type-check clean. This doubles as the guard that the loader
// keeps working against the real tree the self-check lints.
func TestLoadWholeModule(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in long mode only; selfcheck covers it")
	}
	l := New(moduleRoot(t))
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("only %d packages loaded", len(pkgs))
	}
	for _, p := range pkgs {
		for _, err := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.PkgPath, err)
		}
	}
}
