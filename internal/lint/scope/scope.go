// Package scope pins which packages each sbwlint analyzer covers. The
// lists are import paths, not patterns: adding a package to the
// deterministic core is a reviewed, deliberate act (it buys the
// bit-identity guarantee and the lint gate that enforces it).
package scope

// Deterministic lists the packages whose outputs (Colors, Stats,
// ChargedRounds, encoded bytes) must be bit-identical across runs,
// worker counts, and hosts. detmaprange and detsource police these.
var Deterministic = map[string]bool{
	"smallbandwidth/internal/engine":   true,
	"smallbandwidth/internal/core":     true,
	"smallbandwidth/internal/netdecomp": true,
	"smallbandwidth/internal/gf2":      true,
	"smallbandwidth/internal/linial":   true,
	"smallbandwidth/internal/mis":      true,
	"smallbandwidth/internal/clique":   true,
	"smallbandwidth/internal/mpc":      true,
	"smallbandwidth/internal/graph":    true,
	"smallbandwidth/internal/snapshot": true,
}

// NondetSource extends the detsource net beyond the deterministic core:
// serve answers requests whose payloads must be bit-identical, so its
// one sanctioned wall-clock use (the shutdown read-deadline) carries a
// reviewed //sbw:nondet annotation instead of a free pass.
var NondetSource = map[string]bool{
	"smallbandwidth/internal/serve": true,
}

// DurableWriter lists the packages allowed to touch the filesystem
// write primitives directly: internal/store owns the one durable write
// path (WriteFileAtomic) everything else must go through.
var DurableWriter = map[string]bool{
	"smallbandwidth/internal/store": true,
}

// DetSource reports whether detsource covers pkg.
func DetSource(pkg string) bool { return Deterministic[pkg] || NondetSource[pkg] }
