// Package atomicwrite enforces the durable-write discipline from
// docs/STORE.md: outside internal/store, nothing writes persistent
// artifacts with os.WriteFile/os.Create or hand-rolled temp+rename
// (os.Rename) sequences. store.WriteFileAtomic is the one sanctioned
// path — it is the only place that gets the ordering right
// (write → fsync(temp) → close → rename → fsync(dir)); the checkpoint
// bug PR 7 fixed was precisely a temp+rename dance that skipped both
// fsyncs and could surface an empty file after a crash that followed a
// "successful" save.
//
// A write that is genuinely non-durable — a scratch file in a test
// harness, output explicitly allowed to vanish on power loss — carries
//
//	//sbw:directwrite <why durability does not matter here>
//
// on its line or the line above.
package atomicwrite

import (
	"go/ast"
	"go/types"

	"smallbandwidth/internal/lint/analysis"
	"smallbandwidth/internal/lint/scope"
)

// Analyzer is the atomicwrite pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc:  "outside internal/store: no os.WriteFile/os.Create/os.Rename — durable artifacts go through store.WriteFileAtomic; //sbw:directwrite <reason> waives genuinely non-durable writes",
	Run:  run,
}

// banned maps os functions to what their use implies.
var banned = map[string]string{
	"WriteFile": "writes without fsync — a crash after return can surface an empty or torn file",
	"Create":    "creates/truncates in place — a crash mid-write destroys the previous good file",
	"Rename":    "a hand-rolled temp+rename sequence skips the fsyncs that make the swap durable",
}

func run(pass *analysis.Pass) error {
	if scope.DurableWriter[pass.PkgPath] {
		return nil
	}
	for _, file := range pass.Files {
		fd := pass.FileDirs(file)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			why, bad := banned[sel.Sel.Name]
			if !bad {
				return true
			}
			xid, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pn, ok := pass.TypesInfo.Uses[xid].(*types.PkgName); !ok || pn.Imported().Path() != "os" {
				return true
			}
			if fd.Waived(pass.NodeLine(sel), "directwrite") {
				return true
			}
			pass.Reportf(sel.Pos(),
				"os.%s outside internal/store: %s; use store.WriteFileAtomic, or annotate //sbw:directwrite <reason> if this artifact is genuinely non-durable",
				sel.Sel.Name, why)
			return true
		})
	}
	return nil
}
