// Package sbwdirective is the grammar guard for the //sbw: annotation
// language: every directive in the tree must use a known name and carry
// a non-empty justification. Without this pass a typo'd or bare
// annotation would silently grant nothing (the site analyzer ignores
// it) while looking reviewed to a human reader — the worst of both.
package sbwdirective

import (
	"smallbandwidth/internal/lint/analysis"
)

// Analyzer is the sbwdirective pass.
var Analyzer = &analysis.Analyzer{
	Name: "sbwdirective",
	Doc:  "every //sbw: annotation must use a known directive name and carry a non-empty justification",
	Run:  run,
}

// Known is the full //sbw: directive vocabulary (see docs/LINT.md).
var Known = map[string]string{
	"orderinvariant": "detmaprange: this map-range body is order-insensitive",
	"nondet":         "detsource: reviewed nondeterminism that cannot reach results",
	"stickydecoder":  "stickydecode: file-scoped opt-in marking a hostile-input decode path",
	"stickyok":       "stickydecode: this access is provably in range",
	"allocfree":      "allocfree: function-scoped opt-in marking a zero-allocation hot path",
	"allocok":        "allocfree: reviewed cold/amortized allocation inside a hot path",
	"directwrite":    "atomicwrite: this write is genuinely non-durable",
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, d := range pass.FileDirs(file).All {
			if _, ok := Known[d.Name]; !ok {
				pass.Reportf(d.Pos, "unknown //sbw: directive %q (known: orderinvariant, nondet, stickydecoder, stickyok, allocfree, allocok, directwrite)", d.Name)
				continue
			}
			if d.Reason == "" {
				pass.Reportf(d.Pos, "//sbw:%s needs a non-empty justification — an annotation without its why is a waiver nobody reviewed", d.Name)
			}
		}
	}
	return nil
}
