// Package lint wires the sbwlint analyzer suite to the loader: one call
// loads a pattern set, runs every analyzer over every package, and
// returns position-sorted findings. cmd/sbwlint and the in-repo
// self-check test are both thin wrappers around Run, so the CI gate and
// `go test ./...` cannot drift apart.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"smallbandwidth/internal/lint/allocfree"
	"smallbandwidth/internal/lint/analysis"
	"smallbandwidth/internal/lint/atomicwrite"
	"smallbandwidth/internal/lint/detmaprange"
	"smallbandwidth/internal/lint/detsource"
	"smallbandwidth/internal/lint/load"
	"smallbandwidth/internal/lint/sbwdirective"
	"smallbandwidth/internal/lint/stickydecode"
)

// Suite is the full sbwlint analyzer set: the five invariant analyzers
// plus the annotation-grammar guard.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detmaprange.Analyzer,
		detsource.Analyzer,
		stickydecode.Analyzer,
		allocfree.Analyzer,
		atomicwrite.Analyzer,
		sbwdirective.Analyzer,
	}
}

// Finding is one reported diagnostic, resolved to a file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run loads patterns (relative to dir) and applies the whole suite.
// A type-check error in a target package is an error, not a finding:
// the gate must not silently skip code it cannot see.
func Run(dir string, patterns []string) ([]Finding, error) {
	loader := load.New(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("%s does not type-check: %v", pkg.PkgPath, pkg.TypeErrors[0])
		}
		fs, err := RunPackage(pkg, Suite())
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// RunPackage applies analyzers to one loaded package.
func RunPackage(pkg *load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			PkgPath:   pkg.PkgPath,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			findings = append(findings, Finding{Analyzer: name, Pos: pkg.Fset.Position(d.Pos), Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
		}
	}
	return findings, nil
}
