// Package stickydecode is the static shadow of FuzzSnapshotDecode and
// FuzzStoreDecode: decode paths for hostile bytes must never panic —
// they carry a sticky error instead. Files opt in with a file-scoped
//
//	//sbw:stickydecoder <what this file decodes>
//
// annotation. Inside an annotated file the analyzer flags:
//
//   - explicit panic(...) — a decoder fails by sticky error, never by
//     panicking on input;
//   - slice/array/string indexing and slicing whose bounds are not
//     visibly tested: the index is non-constant, the indexed value is
//     never measured with len/cap in the function, and no atom of the
//     index expression appears in a comparison, a range clause, or a
//     Count/min/max guard — i.e. nothing in the function bounds it;
//   - make whose size derives from decoded input with no visible guard
//     (same atom rule; snapshot's Dec.Count is the canonical guard —
//     it validates a count against the remaining input before the
//     allocation happens).
//
// The "visibly tested" rule is a per-function heuristic, not a dominance
// proof: it exists to force every unguarded site through review. A site
// the heuristic cannot see through carries
//
//	//sbw:stickyok <why the access cannot go out of bounds>
//
// on its line or the line above.
package stickydecode

import (
	"go/ast"
	"go/token"
	"go/types"

	"smallbandwidth/internal/lint/analysis"
)

// Analyzer is the stickydecode pass.
var Analyzer = &analysis.Analyzer{
	Name: "stickydecode",
	Doc:  "in //sbw:stickydecoder files: no panic, no unguarded indexing, no unguarded input-sized make; //sbw:stickyok <reason> waives a reviewed site",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		fd := pass.FileDirs(file)
		if d := fd.Anywhere("stickydecoder"); d == nil || d.Reason == "" {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fd, fn)
		}
	}
	return nil
}

// guards is the per-function record of what the code visibly bounds.
type guards struct {
	// measured holds ExprString of every value the function takes
	// len/cap of, anywhere.
	measured map[string]bool
	// tested holds atoms (identifiers and selector chains) that appear
	// in a comparison, a range clause, a for-loop post statement, or on
	// the left of an assignment from a Count/min/max guard.
	tested map[string]bool
}

func collectGuards(fn *ast.FuncDecl) *guards {
	g := &guards{measured: map[string]bool{}, tested: map[string]bool{}}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				for _, a := range atomsOf(n.X) {
					g.tested[a] = true
				}
				for _, a := range atomsOf(n.Y) {
					g.tested[a] = true
				}
			}
		case *ast.CallExpr:
			if name := builtinName(n.Fun); name == "len" || name == "cap" {
				for _, arg := range n.Args {
					g.measured[types.ExprString(arg)] = true
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					g.tested[id.Name] = true
				}
			}
			// Ranging over x makes x itself a measured quantity: the
			// loop cannot step outside it.
			g.measured[types.ExprString(n.X)] = true
		case *ast.AssignStmt:
			if rhsGuarded(n.Rhs) {
				for _, lhs := range n.Lhs {
					for _, a := range atomsOf(lhs) {
						g.tested[a] = true
					}
				}
			}
		}
		return true
	})
	return g
}

// rhsGuarded reports whether any RHS is a call to a recognized
// input-validating guard: Dec.Count (checks the count against the
// remaining input) or the min/max builtins.
func rhsGuarded(rhs []ast.Expr) bool {
	for _, e := range rhs {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			continue
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Count" {
				return true
			}
		case *ast.Ident:
			if fun.Name == "min" || fun.Name == "max" {
				return true
			}
		}
	}
	return false
}

func builtinName(fun ast.Expr) string {
	if id, ok := fun.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// atomsOf returns the identifier and selector-chain atoms of an
// expression: the smallest named values whose bounds could have been
// tested. Constants contribute nothing.
func atomsOf(e ast.Expr) []string {
	var out []string
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Ident:
			out = append(out, e.Name)
		case *ast.SelectorExpr:
			out = append(out, types.ExprString(e))
		case *ast.ParenExpr:
			walk(e.X)
		case *ast.UnaryExpr:
			walk(e.X)
		case *ast.BinaryExpr:
			walk(e.X)
			walk(e.Y)
		case *ast.IndexExpr:
			walk(e.X)
			walk(e.Index)
		case *ast.CallExpr:
			// A method call participating in a test counts as testing its
			// receiver chain: `if d.Remaining() < 8` is how the Dec
			// primitives bounds-check d.off against len(d.b).
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				walk(sel.X)
			}
			for _, a := range e.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

// coveredBy reports whether atom is tested directly or through a tested
// dotted prefix: a test involving `d` (e.g. a method call on it in a
// comparison) covers `d.off`.
func coveredBy(tested map[string]bool, atom string) bool {
	if tested[atom] {
		return true
	}
	for i := len(atom) - 1; i > 0; i-- {
		if atom[i] == '.' && tested[atom[:i]] {
			return true
		}
	}
	return false
}

// exprGuarded reports whether every atom of e is visibly tested (or e
// has no atoms beyond constants and calls, in which case a guard call
// inside it counts).
func (g *guards) exprGuarded(e ast.Expr) bool {
	if containsGuardCall(e) {
		return true
	}
	atoms := atomsOf(e)
	if len(atoms) == 0 {
		return false
	}
	for _, a := range atoms {
		if !coveredBy(g.tested, a) && !g.measured[a] {
			return false
		}
	}
	return true
}

// containsGuardCall reports whether e contains a call to len/cap/min/max
// or a .Count method — sizes computed through those are bounded by
// construction.
func containsGuardCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			switch fun.Name {
			case "len", "cap", "min", "max":
				found = true
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Count" {
				found = true
			}
		}
		return !found
	})
	return found
}

func checkFunc(pass *analysis.Pass, fd *analysis.FileDirectives, fn *ast.FuncDecl) {
	g := collectGuards(fn)
	isConst := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		return ok && tv.Value != nil
	}
	indexable := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		switch t := tv.Type.Underlying().(type) {
		case *types.Slice, *types.Array:
			return true
		case *types.Pointer:
			_, ok := t.Elem().Underlying().(*types.Array)
			return ok
		case *types.Basic:
			return t.Info()&types.IsString != 0
		}
		return false
	}
	waived := func(n ast.Node) bool { return fd.Waived(pass.NodeLine(n), "stickyok") }

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if builtinName(n.Fun) == "panic" && !waived(n) {
				pass.Reportf(n.Pos(),
					"panic in //sbw:stickydecoder file: decoders fail by sticky error, never by panicking on input (//sbw:stickyok <reason> if unreachable on any input)")
				return true
			}
			if builtinName(n.Fun) == "make" && len(n.Args) > 1 {
				for _, size := range n.Args[1:] {
					if isConst(size) || g.exprGuarded(size) {
						continue
					}
					if !waived(n) {
						pass.Reportf(size.Pos(),
							"make size %s derives from decoded input with no visible guard; validate it against the remaining input (Dec.Count) first, or annotate //sbw:stickyok <reason>",
							types.ExprString(size))
					}
					break
				}
			}
		case *ast.IndexExpr:
			if !indexable(n.X) || isConst(n.Index) {
				return true
			}
			if g.measured[types.ExprString(n.X)] || g.exprGuarded(n.Index) {
				return true
			}
			if !waived(n) {
				pass.Reportf(n.Pos(),
					"index %s[%s] in //sbw:stickydecoder file has no visible bounds test in this function; hostile input must not be able to panic here (//sbw:stickyok <reason> if provably in range)",
					types.ExprString(n.X), types.ExprString(n.Index))
			}
		case *ast.SliceExpr:
			if !indexable(n.X) {
				return true
			}
			if g.measured[types.ExprString(n.X)] {
				return true
			}
			for _, bound := range []ast.Expr{n.Low, n.High, n.Max} {
				if bound == nil || isConst(bound) || g.exprGuarded(bound) {
					continue
				}
				if !waived(n) {
					pass.Reportf(bound.Pos(),
						"slice bound %s in //sbw:stickydecoder file has no visible bounds test in this function (//sbw:stickyok <reason> if provably in range)",
						types.ExprString(bound))
				}
				break
			}
		}
		return true
	})
}
