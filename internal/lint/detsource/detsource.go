// Package detsource forbids ambient nondeterminism sources — math/rand,
// wall-clock reads, environment lookups — in the deterministic packages
// (plus internal/serve, whose replies must be bit-identical).
// internal/prng is the one sanctioned randomness source: its stream is
// part of the reproduction's contract, while math/rand's is not
// guaranteed stable across Go releases and the global functions seed
// themselves from the OS. time.Now/time.Since smuggle the host's clock
// into control flow; os.Getenv smuggles in the host's configuration.
//
// A reviewed exception (serve's shutdown read-deadline is the canonical
// one) carries
//
//	//sbw:nondet <why this cannot leak into results>
//
// on the offending line or the line above, justification required.
package detsource

import (
	"go/ast"
	"go/types"
	"strconv"

	"smallbandwidth/internal/lint/analysis"
	"smallbandwidth/internal/lint/scope"
)

// Analyzer is the detsource pass.
var Analyzer = &analysis.Analyzer{
	Name: "detsource",
	Doc:  "forbid math/rand, time.Now/Since/Until, and os.Getenv/LookupEnv/Environ in the deterministic packages; internal/prng is the sanctioned randomness source; //sbw:nondet <reason> for reviewed exceptions",
	Run:  run,
}

// bannedCalls maps import path -> function names whose call sites are
// nondeterminism leaks.
var bannedCalls = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true},
	"os":   {"Getenv": true, "LookupEnv": true, "Environ": true},
}

// bannedImports are packages the deterministic core may not import at
// all: even a seeded *rand.Rand carries a stream that is not stable
// across Go releases, and the package-level rand.* functions are
// self-seeded on top of that.
var bannedImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func run(pass *analysis.Pass) error {
	if !scope.DetSource(pass.PkgPath) {
		return nil
	}
	for _, file := range pass.Files {
		fd := pass.FileDirs(file)
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !bannedImports[path] {
				continue
			}
			if fd.Waived(pass.NodeLine(imp), "nondet") {
				continue
			}
			pass.Reportf(imp.Pos(),
				"import of %s in deterministic package %s: its stream is not stable across Go releases; use internal/prng (or annotate //sbw:nondet <reason>)",
				path, pass.PkgPath)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			xid, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[xid].(*types.PkgName)
			if !ok {
				return true
			}
			banned := bannedCalls[pkgName.Imported().Path()]
			if banned == nil || !banned[sel.Sel.Name] {
				return true
			}
			if fd.Waived(pass.NodeLine(sel), "nondet") {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s in deterministic package %s leaks host state into a path that must be bit-identical; annotate //sbw:nondet <reason> only if it provably cannot reach results",
				pkgName.Imported().Path(), sel.Sel.Name, pass.PkgPath)
			return true
		})
	}
	return nil
}
