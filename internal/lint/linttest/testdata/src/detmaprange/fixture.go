// Package detmap is the detmaprange fixture: run as a deterministic
// package it must flag bare map ranges, honor justified
// //sbw:orderinvariant waivers, and refuse empty-justification ones;
// run as an out-of-scope package it must stay silent.
package detmap

func flagged(m map[int]int) int {
	s := 0
	for k := range m { // want "range over map m in deterministic package"
		s += k
	}
	return s
}

func waived(m map[int]int) int {
	s := 0
	//sbw:orderinvariant fixture: addition is commutative, the sum is order-independent
	for k := range m {
		s += k
	}
	return s
}

func bareWaiver(m map[int]int) int {
	s := 0
	//sbw:orderinvariant
	for k := range m { // want "range over map m in deterministic package"
		s += k
	}
	return s
}

func sliceRange(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

type bag map[string]bool

func namedMapType(b bag) int {
	n := 0
	for range b { // want "range over map b in deterministic package"
		n++
	}
	return n
}
