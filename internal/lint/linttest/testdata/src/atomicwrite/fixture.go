// Package aw is the atomicwrite fixture: outside internal/store every
// os.WriteFile/os.Create/os.Rename must be flagged unless waived with
// //sbw:directwrite; run as internal/store the whole file is exempt.
package aw

import "os"

func save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "os.WriteFile outside internal/store"
}

func create(path string) (*os.File, error) {
	return os.Create(path) // want "os.Create outside internal/store"
}

func swap(a, b string) error {
	return os.Rename(a, b) // want "os.Rename outside internal/store"
}

func scratch(path string, data []byte) error {
	//sbw:directwrite fixture: scratch artifact, allowed to vanish on power loss
	return os.WriteFile(path, data, 0o644)
}

func readIsFine(path string) ([]byte, error) {
	return os.ReadFile(path)
}
