// Package detsrc is the detsource fixture: run as a deterministic
// package it must flag the math/rand import and every wall-clock and
// environment read, while honoring justified //sbw:nondet waivers.
package detsrc

import (
	_ "math/rand" // want "import of math/rand in deterministic package"
	"os"
	"time"
)

func clock() time.Time {
	return time.Now() // want "time.Now in deterministic package"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in deterministic package"
}

func env() string {
	return os.Getenv("HOME") // want "os.Getenv in deterministic package"
}

func lookup() (string, bool) {
	return os.LookupEnv("HOME") // want "os.LookupEnv in deterministic package"
}

func waivedClock() time.Time {
	//sbw:nondet fixture: diagnostic timestamp only, never reaches results
	return time.Now()
}

func sleepIsFine() {
	time.Sleep(0)
}
