// clean.go has no //sbw:stickydecoder annotation, so nothing in it is
// checked — the analyzer is strictly opt-in per file.
package sticky

func uncheckedFileIndex(b []byte, off int) byte {
	return b[off]
}

func uncheckedFilePanic() {
	panic("not a decode path")
}
