// Package sticky is the stickydecode fixture: this file opts in below,
// so panics, unguarded indexing, and unguarded input-sized make must be
// flagged, while visibly tested sites and //sbw:stickyok waivers pass.
//
//sbw:stickydecoder fixture: exercises the hostile-input decode rules
package sticky

func badIndex(b []byte, off int) byte {
	return b[off] // want "index b[off]"
}

func goodIndex(b []byte, off int) byte {
	if off < 0 || off >= len(b) {
		return 0
	}
	return b[off]
}

func badPanic(b []byte) {
	if len(b) == 0 {
		panic("empty input") // want "panic in //sbw:stickydecoder file"
	}
}

func badMake(n int) []byte {
	return make([]byte, n) // want "make size n derives from decoded input"
}

func goodMake(b []byte, n int) []byte {
	if n > len(b) {
		n = len(b)
	}
	return make([]byte, n)
}

func badSlice(b []byte, n int) []byte {
	return b[:n] // want "slice bound n"
}

func goodSlice(b []byte, n int) []byte {
	if n > len(b) {
		return nil
	}
	return b[:n]
}

func waivedIndex(b []byte, off int) byte {
	return b[off] //sbw:stickyok fixture: the caller validated off against len(b)
}

type dec struct {
	b   []byte
	off int
}

func (d *dec) remaining() int { return len(d.b) - d.off }

// receiverGuard pins the method-receiver rule: a comparison involving a
// method call on d tests d's whole field chain, so d.b[d.off] passes.
func (d *dec) receiverGuard() byte {
	if d.remaining() < 1 {
		return 0
	}
	return d.b[d.off]
}
