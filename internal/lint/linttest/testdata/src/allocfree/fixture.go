// Package hot is the allocfree fixture: functions opted in through a
// //sbw:allocfree doc annotation may not allocate; unannotated
// functions are never checked; //sbw:allocok waives a reviewed site.
package hot

import "fmt"

//sbw:allocfree fixture: append rule
func hotAppend(dst, src []int) []int {
	return append(dst, src...) // want "append in //sbw:allocfree function hotAppend"
}

//sbw:allocfree fixture: make rule
func hotMake(n int) []int {
	return make([]int, n) // want "make in //sbw:allocfree function hotMake"
}

//sbw:allocfree fixture: closure rule
func hotClosure(xs []int) func() int {
	return func() int { return len(xs) } // want "closure in //sbw:allocfree function hotClosure"
}

//sbw:allocfree fixture: slice-literal rule
func hotLiteral() []int {
	return []int{1, 2, 3} // want "slice literal in //sbw:allocfree function hotLiteral"
}

type pair struct{ a, b int }

//sbw:allocfree fixture: value struct literals stay on the stack
func hotValueLiteral() pair {
	return pair{1, 2}
}

//sbw:allocfree fixture: &literal rule
func hotPtrLiteral() *pair {
	return &pair{1, 2} // want "&literal in //sbw:allocfree function hotPtrLiteral"
}

//sbw:allocfree fixture: string-concat rule
func hotConcat(a, b string) string {
	return a + b // want "string concatenation in //sbw:allocfree function hotConcat"
}

//sbw:allocfree fixture: fmt rule
func hotFmt(v int) string {
	return fmt.Sprintf("%d", v) // want "fmt call in //sbw:allocfree function hotFmt"
}

//sbw:allocfree fixture: explicit-conversion boxing rule
func hotBox(v int) any {
	return any(v) // want "conversion of non-pointer value to interface"
}

func sink(v any) { _ = v }

//sbw:allocfree fixture: call-argument boxing rule
func hotBoxArg(v int) {
	sink(v) // want "argument v boxes a non-pointer value"
}

//sbw:allocfree fixture: pointer-shaped values box for free
func hotBoxPtr(p *pair) {
	sink(p)
}

//sbw:allocfree fixture: allocok waiver
func hotWaived(dst []int, v int) []int {
	return append(dst, v) //sbw:allocok fixture: amortized growth against a recycled buffer
}

func coldUnchecked(dst []int, v int) []int {
	return append(dst, v)
}
