// Package dirs is the sbwdirective fixture: every //sbw: annotation in
// any package must use a known name and carry a justification.
package dirs

//sbw:orderinvarient typo'd name must be caught // want "unknown //sbw: directive"
var a = 0

//sbw:orderinvariant
// want:prev "needs a non-empty justification"
var b = 0

//sbw:allocok fixture: known name with a justification is clean
var c = 0

// A plain comment mentioning sbw: is not a directive.
var d = 0
