// Package linttest is the in-repo stand-in for
// golang.org/x/tools/go/analysis/analysistest: it loads a fixture
// package from testdata through the same loader the sbwlint driver
// uses, runs one analyzer over it, and matches the diagnostics against
// `// want "substring"` comments in the fixture source.
//
// Expectation grammar, deliberately smaller than analysistest's:
//
//	// want "substr"            a diagnostic on this line whose message
//	                            contains substr (several per comment OK)
//	// want:prev "substr"       same, anchored to the previous line —
//	                            for sites whose own line is a directive
//	                            comment and cannot carry a second one
//
// Matching is exact per line: every want must be hit by a diagnostic
// and every diagnostic must be claimed by a want, so a fixture pins
// both the positives and the annotated negatives of its analyzer.
//
// Because the scope-sensitive analyzers decide by import path and
// fixtures live under testdata (import path smallbandwidth/internal/
// lint/linttest/testdata/...), Run takes an asPkgPath override: the
// fixture is analyzed as if it were that package. Empty keeps the
// natural path.
package linttest

import (
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"smallbandwidth/internal/lint/analysis"
	"smallbandwidth/internal/lint/load"
)

var (
	loaderMu sync.Mutex
	shared   *load.Loader
)

// ModuleRoot returns the repository's module root, located relative to
// this source file.
func ModuleRoot(t *testing.T) string {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("linttest: runtime.Caller failed")
	}
	// internal/lint/linttest/linttest.go -> module root is 3 dirs up.
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(thisFile))))
}

// loadFixture loads the one package at rel (slash path relative to the
// module root) through the shared loader, so every fixture test reuses
// one stdlib type-check.
func loadFixture(t *testing.T, rel string) *load.Package {
	t.Helper()
	loaderMu.Lock()
	defer loaderMu.Unlock()
	if shared == nil {
		shared = load.New(ModuleRoot(t))
	}
	pkgs, err := shared.Load("./" + rel)
	if err != nil {
		t.Fatalf("linttest: load %s: %v", rel, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("linttest: %s resolved to %d packages, want 1", rel, len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("linttest: fixture %s does not type-check: %v", rel, pkg.TypeErrors[0])
	}
	return pkg
}

// diag is one collected diagnostic, resolved to file base name + line.
type diag struct {
	file    string
	line    int
	message string
	matched bool
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	substr  string
	matched bool
}

var wantRE = regexp.MustCompile(`want(:prev)? "([^"]*)"`)

// collectWants scans every comment of the fixture for expectations.
func collectWants(pkg *load.Package) []want {
	var out []want
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					pos := pkg.Fset.Position(c.Pos())
					line := pos.Line
					if m[1] == ":prev" {
						line--
					}
					out = append(out, want{
						file:   filepath.Base(pos.Filename),
						line:   line,
						substr: m[2],
					})
				}
			}
		}
	}
	return out
}

// runAnalyzer applies a to the fixture under the (possibly overridden)
// import path and returns the diagnostics.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, pkg *load.Package, asPkgPath string) []diag {
	t.Helper()
	pkgPath := pkg.PkgPath
	if asPkgPath != "" {
		pkgPath = asPkgPath
	}
	var diags []diag
	pass := &analysis.Pass{
		Analyzer:  a,
		PkgPath:   pkgPath,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report: func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			diags = append(diags, diag{
				file:    filepath.Base(pos.Filename),
				line:    pos.Line,
				message: d.Message,
			})
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("linttest: %s on %s: %v", a.Name, pkgPath, err)
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].file != diags[j].file {
			return diags[i].file < diags[j].file
		}
		return diags[i].line < diags[j].line
	})
	return diags
}

// Run loads the fixture package at rel, runs a over it as asPkgPath,
// and requires the diagnostics and the `// want` expectations to match
// one-to-one.
func Run(t *testing.T, a *analysis.Analyzer, rel, asPkgPath string) {
	t.Helper()
	pkg := loadFixture(t, rel)
	diags := runAnalyzer(t, a, pkg, asPkgPath)
	wants := collectWants(pkg)

	for di := range diags {
		d := &diags[di]
		for wi := range wants {
			w := &wants[wi]
			if !w.matched && w.file == d.file && w.line == d.line && strings.Contains(d.message, w.substr) {
				w.matched, d.matched = true, true
				break
			}
		}
	}
	for _, d := range diags {
		if !d.matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, d.file, d.line, d.message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: expected diagnostic at %s:%d containing %q, got none", a.Name, w.file, w.line, w.substr)
		}
	}
}

// RunExpectNone loads the fixture at rel and requires a to report
// nothing under asPkgPath — the scope-negative half of a fixture
// (`// want` comments in the file are ignored).
func RunExpectNone(t *testing.T, a *analysis.Analyzer, rel, asPkgPath string) {
	t.Helper()
	pkg := loadFixture(t, rel)
	for _, d := range runAnalyzer(t, a, pkg, asPkgPath) {
		t.Errorf("%s as %s: want no diagnostics, got %s:%d: %s", a.Name, asPkgPath, d.file, d.line, d.message)
	}
}
