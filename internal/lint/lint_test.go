package lint_test

import (
	"testing"

	"smallbandwidth/internal/lint"
	"smallbandwidth/internal/lint/allocfree"
	"smallbandwidth/internal/lint/atomicwrite"
	"smallbandwidth/internal/lint/detmaprange"
	"smallbandwidth/internal/lint/detsource"
	"smallbandwidth/internal/lint/linttest"
	"smallbandwidth/internal/lint/sbwdirective"
	"smallbandwidth/internal/lint/stickydecode"
)

// fixtures is the testdata root, relative to the module root. Each
// fixture package pins one analyzer's positives (every `// want` must
// fire) and negatives (nothing else may fire).
const fixtures = "internal/lint/linttest/testdata/src/"

func TestDetMapRangeFixture(t *testing.T) {
	linttest.Run(t, detmaprange.Analyzer, fixtures+"detmaprange", "smallbandwidth/internal/engine")
}

// Out of the deterministic scope the same fixture must be silent.
func TestDetMapRangeOutOfScope(t *testing.T) {
	linttest.RunExpectNone(t, detmaprange.Analyzer, fixtures+"detmaprange", "smallbandwidth/cmd/colorcli")
}

func TestDetSourceFixture(t *testing.T) {
	linttest.Run(t, detsource.Analyzer, fixtures+"detsource", "smallbandwidth/internal/core")
}

// internal/serve is in detsource's scope too (bit-identical replies).
func TestDetSourceServeScope(t *testing.T) {
	linttest.Run(t, detsource.Analyzer, fixtures+"detsource", "smallbandwidth/internal/serve")
}

func TestDetSourceOutOfScope(t *testing.T) {
	linttest.RunExpectNone(t, detsource.Analyzer, fixtures+"detsource", "smallbandwidth/cmd/colorcli")
}

// stickydecode and allocfree scope by annotation, not import path.
func TestStickyDecodeFixture(t *testing.T) {
	linttest.Run(t, stickydecode.Analyzer, fixtures+"stickydecode", "")
}

func TestAllocFreeFixture(t *testing.T) {
	linttest.Run(t, allocfree.Analyzer, fixtures+"allocfree", "")
}

func TestAtomicWriteFixture(t *testing.T) {
	linttest.Run(t, atomicwrite.Analyzer, fixtures+"atomicwrite", "")
}

// As internal/store the same writes are the sanctioned implementation.
func TestAtomicWriteStoreExempt(t *testing.T) {
	linttest.RunExpectNone(t, atomicwrite.Analyzer, fixtures+"atomicwrite", "smallbandwidth/internal/store")
}

func TestSbwDirectiveFixture(t *testing.T) {
	linttest.Run(t, sbwdirective.Analyzer, fixtures+"sbwdirective", "")
}

// TestRepoLintClean is the in-test twin of the CI sbwlint gate: the
// whole module must produce zero findings, so `go test ./...` fails the
// moment a new violation lands — with or without the CI step.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint pass; skipped in -short")
	}
	findings, err := lint.Run(linttest.ModuleRoot(t), []string{"./..."})
	if err != nil {
		t.Fatalf("sbwlint: %v", err)
	}
	for _, f := range findings {
		t.Errorf("sbwlint: %s", f)
	}
}
