package mpc

import (
	"sort"
	"testing"

	"smallbandwidth/internal/engine"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/prng"
)

func TestRuntimeEnforcement(t *testing.T) {
	rt, err := NewRuntime(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.CheckMemory([]int{50, 100, 3, 0}); err != nil {
		t.Errorf("in-budget memory rejected: %v", err)
	}
	if err := rt.CheckMemory([]int{101}); err == nil {
		t.Error("over-budget memory accepted")
	}
	if err := rt.ChargeRound([]int{100, 100, 100, 100}); err != nil {
		t.Errorf("in-budget round rejected: %v", err)
	}
	if err := rt.ChargeRound([]int{101, 0, 0, 0}); err == nil {
		t.Error("over-budget IO accepted")
	}
	if rt.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", rt.Rounds)
	}
	if rt.HighWaterMemory != 100 || rt.HighWaterIO != 100 {
		t.Errorf("high-water wrong: %+v", rt)
	}
	if _, err := NewRuntime(0, 100); err == nil {
		t.Error("zero machines accepted")
	}
}

func TestAggDepthGrowsWithMachines(t *testing.T) {
	rtSmall, _ := NewRuntime(4, 256)  // fan 16
	rtBig, _ := NewRuntime(5000, 256) // fan 16, needs more levels
	if rtSmall.AggDepth() >= rtBig.AggDepth() {
		t.Errorf("depth %d vs %d", rtSmall.AggDepth(), rtBig.AggDepth())
	}
}

func randomRecs(n int, seed uint64) []Rec {
	src := prng.New(seed)
	recs := make([]Rec, n)
	for i := range recs {
		recs[i] = Rec{src.Uint64() % 50, src.Uint64() % 50, src.Uint64() % 50}
	}
	return recs
}

func TestSortDistributed(t *testing.T) {
	rt, _ := NewRuntime(8, 1024)
	defer rt.Close()
	recs := randomRecs(500, 3)
	d, err := NewDist(rt, recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sort(rt); err != nil {
		t.Fatal(err)
	}
	if !d.IsSorted() {
		t.Fatal("not sorted")
	}
	if d.Len() != 500 {
		t.Fatalf("lost records: %d", d.Len())
	}
	// Multiset preserved.
	got := d.All()
	want := append([]Rec(nil), recs...)
	sort.Slice(want, func(i, j int) bool { return recLess(want[i], want[j]) })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %v != %v", i, got[i], want[i])
		}
	}
	if rt.Rounds == 0 || rt.Rounds > 10 {
		t.Errorf("sort took %d rounds, want O(1)", rt.Rounds)
	}
}

func TestPrefixSums(t *testing.T) {
	rt, _ := NewRuntime(5, 512)
	defer rt.Close()
	recs := make([]Rec, 100)
	for i := range recs {
		recs[i] = Rec{uint64(i), 0, 1} // value 1 each → prefix = index+1
	}
	d, err := NewDist(rt, recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sort(rt); err != nil {
		t.Fatal(err)
	}
	if err := d.PrefixSums(rt, func(a, b uint64) uint64 { return a + b }, 0); err != nil {
		t.Fatal(err)
	}
	all := d.All()
	for i, r := range all {
		if r[2] != uint64(i+1) {
			t.Fatalf("prefix at %d = %d, want %d", i, r[2], i+1)
		}
	}
}

func TestGroupRanksAndSizes(t *testing.T) {
	rt, _ := NewRuntime(4, 512)
	defer rt.Close()
	var recs []Rec
	groupSize := map[uint64]int{3: 5, 7: 1, 9: 8}
	for k, sz := range groupSize {
		for i := 0; i < sz; i++ {
			recs = append(recs, Rec{k, uint64(i * 13 % 7), 0})
		}
	}
	d, err := NewDist(rt, recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sort(rt); err != nil {
		t.Fatal(err)
	}
	if err := d.GroupRanks(rt); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]map[uint64]bool{}
	for _, r := range d.All() {
		if seen[r[0]] == nil {
			seen[r[0]] = map[uint64]bool{}
		}
		if seen[r[0]][r[2]] {
			t.Fatalf("duplicate rank %d in group %d", r[2], r[0])
		}
		seen[r[0]][r[2]] = true
		if int(r[2]) >= groupSize[r[0]] {
			t.Fatalf("rank %d out of range for group %d", r[2], r[0])
		}
	}
	// Sizes.
	d2, _ := NewDist(rt, recs)
	if err := d2.Sort(rt); err != nil {
		t.Fatal(err)
	}
	if err := d2.GroupSizes(rt); err != nil {
		t.Fatal(err)
	}
	for _, r := range d2.All() {
		if int(r[2]) != groupSize[r[0]] {
			t.Fatalf("group %d size %d, want %d", r[0], r[2], groupSize[r[0]])
		}
	}
}

func TestSetDifference(t *testing.T) {
	rt, _ := NewRuntime(4, 512)
	defer rt.Close()
	a := []Rec{{1, 10, 0}, {1, 11, 0}, {2, 10, 0}, {2, 12, 0}}
	b := []Rec{{1, 10, 0}, {1, 10, 0}, {2, 12, 0}, {3, 11, 0}}
	res, err := SetDifference(rt, a, b)
	if err != nil {
		t.Fatal(err)
	}
	expect := map[Rec]bool{
		{1, 10, 0}: true,  // in B₁ (twice, multiset)
		{1, 11, 0}: false, // not in B₁
		{2, 10, 0}: false, // 10 only in B₁, not B₂
		{2, 12, 0}: true,
	}
	for k, want := range expect {
		if res[k] != want {
			t.Errorf("membership of %v = %v, want %v", k, res[k], want)
		}
	}
}

func TestListColorMPCLinear(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path":    graph.Path(12),
		"cycle":   graph.Cycle(16),
		"star":    graph.Star(10),
		"grid":    graph.Grid2D(4, 5),
		"regular": graph.MustRandomRegular(24, 4, 5),
		"single":  graph.Path(1),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			inst := graph.DeltaPlusOneInstance(g)
			res, err := ListColorMPC(inst, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := inst.VerifyColoring(res.Colors); err != nil {
				t.Fatal(err)
			}
			if res.HighWaterMemory > res.S {
				t.Errorf("memory high-water %d > S = %d", res.HighWaterMemory, res.S)
			}
			if res.HighWaterIO > res.S {
				t.Errorf("IO high-water %d > S = %d", res.HighWaterIO, res.S)
			}
		})
	}
}

func TestListColorMPCSublinear(t *testing.T) {
	g := graph.MustRandomRegular(32, 4, 8)
	inst := graph.DeltaPlusOneInstance(g)
	res, err := ListColorMPC(inst, Options{Sublinear: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.VerifyColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.S >= 8*g.N() {
		t.Errorf("sublinear S = %d not sublinear for n = %d", res.S, g.N())
	}
	if res.FinishedLocally {
		t.Error("sublinear run must not ship the residual to one machine")
	}
	t.Logf("sublinear: S=%d machines=%d rounds=%d iterations=%d",
		res.S, res.Machines, res.Rounds, res.Iterations)
}

func TestListColorMPCRandomLists(t *testing.T) {
	g := graph.GNP(24, 0.25, 4)
	inst, err := graph.RandomListInstance(g, 64, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ListColorMPC(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.VerifyColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaPlusOneMPCObservation41(t *testing.T) {
	g := graph.MustRandomRegular(20, 4, 7)
	res, err := DeltaPlusOneMPC(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u32 := res.Colors
	if !g.IsProperColoring(u32) {
		t.Fatal("Observation 4.1 produced an improper coloring")
	}
	for v, c := range u32 {
		if int(c) > g.Degree(v) {
			t.Errorf("node %d color %d outside its degree+1 list", v, c)
		}
	}
}

func TestListColorMPCDeterministic(t *testing.T) {
	g := graph.Grid2D(4, 4)
	inst := graph.DeltaPlusOneInstance(g)
	r1, err := ListColorMPC(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ListColorMPC(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1.Colors {
		if r1.Colors[v] != r2.Colors[v] {
			t.Fatal("MPC coloring not deterministic")
		}
	}
	if r1.Rounds != r2.Rounds {
		t.Errorf("rounds differ: %d vs %d", r1.Rounds, r2.Rounds)
	}
}

func TestMPCInvalidInstance(t *testing.T) {
	g := graph.Path(3)
	inst := graph.DeltaPlusOneInstance(g)
	inst.Lists[0] = nil
	if _, err := ListColorMPC(inst, Options{}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestMPCTooSmallMemoryFails(t *testing.T) {
	g := graph.Complete(16)
	inst := graph.DeltaPlusOneInstance(g)
	// S too small to even host one node's edges+list in the linear layout.
	if _, err := ListColorMPC(inst, Options{S: 16}); err == nil {
		t.Error("impossible memory budget accepted")
	}
}

// TestMPCStatsDeterministicAcrossShards is the MPC port of the
// engine-rework regression: Rounds, HighWaterMemory, and HighWaterIO —
// every figure the runtime charges — must be bit-identical at workers=1
// and workers=N, in both memory regimes. Run under -race in CI.
func TestMPCStatsDeterministicAcrossShards(t *testing.T) {
	g := graph.MustRandomRegular(32, 4, 21)
	inst := graph.DeltaPlusOneInstance(g)
	for _, sub := range []bool{false, true} {
		name := "linear"
		if sub {
			name = "sublinear"
		}
		t.Run(name, func(t *testing.T) {
			run := func(shards int) *Result {
				engine.SetForceShards(shards)
				defer engine.SetForceShards(0)
				res, err := ListColorMPC(inst, Options{Sublinear: sub})
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				return res
			}
			serial := run(1)
			for _, shards := range []int{3, 8} {
				res := run(shards)
				if res.Rounds != serial.Rounds || res.HighWaterMemory != serial.HighWaterMemory ||
					res.HighWaterIO != serial.HighWaterIO || res.Iterations != serial.Iterations {
					t.Errorf("shards=%d resources (%d,%d,%d,%d) != serial (%d,%d,%d,%d)",
						shards, res.Rounds, res.HighWaterMemory, res.HighWaterIO, res.Iterations,
						serial.Rounds, serial.HighWaterMemory, serial.HighWaterIO, serial.Iterations)
				}
				for v := range serial.Colors {
					if res.Colors[v] != serial.Colors[v] {
						t.Fatalf("shards=%d node %d color diverged", shards, v)
					}
				}
			}
		})
	}
}

// TestToolsDeterministicAcrossShards drives the record-moving tools
// (Sort, GroupRanks, GroupSizes, PrefixSums) at 1 vs many workers and
// asserts identical record placement and identical charged resources —
// the IO vectors folded into the shard workers must merge to exactly the
// sequential accounting.
func TestToolsDeterministicAcrossShards(t *testing.T) {
	recs := randomRecs(3000, 12)
	run := func(shards int) ([][]Rec, int, int, int) {
		engine.SetForceShards(shards)
		defer engine.SetForceShards(0)
		rt, err := NewRuntime(9, 4096)
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		d, err := NewDist(rt, recs)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Sort(rt); err != nil {
			t.Fatal(err)
		}
		if !d.IsSorted() {
			t.Fatalf("shards=%d: not sorted", shards)
		}
		if err := d.GroupRanks(rt); err != nil {
			t.Fatal(err)
		}
		if err := d.GroupSizes(rt); err != nil {
			t.Fatal(err)
		}
		if err := d.PrefixSums(rt, func(a, b uint64) uint64 { return a + b }, 0); err != nil {
			t.Fatal(err)
		}
		parts := make([][]Rec, len(d.Parts))
		for i, p := range d.Parts {
			parts[i] = append([]Rec(nil), p...)
		}
		return parts, rt.Rounds, rt.HighWaterMemory, rt.HighWaterIO
	}
	serialParts, sr, sm, sio := run(1)
	for _, shards := range []int{2, 4, 8} {
		parts, r, m, io := run(shards)
		if r != sr || m != sm || io != sio {
			t.Errorf("shards=%d resources (%d,%d,%d) != serial (%d,%d,%d)", shards, r, m, io, sr, sm, sio)
		}
		for i := range serialParts {
			if len(parts[i]) != len(serialParts[i]) {
				t.Fatalf("shards=%d machine %d holds %d records, want %d", shards, i, len(parts[i]), len(serialParts[i]))
			}
			for j := range serialParts[i] {
				if parts[i][j] != serialParts[i][j] {
					t.Fatalf("shards=%d machine %d record %d = %v, want %v", shards, i, j, parts[i][j], serialParts[i][j])
				}
			}
		}
	}
}

// TestGroupSizesSpanningManyMachines pins the boundary-carry size
// computation on a group stretching across most machines.
func TestGroupSizesSpanningManyMachines(t *testing.T) {
	rt, _ := NewRuntime(6, 4096)
	defer rt.Close()
	var recs []Rec
	for i := 0; i < 100; i++ {
		recs = append(recs, Rec{7, uint64(i), 0})
	}
	recs = append(recs, Rec{1, 0, 0}, Rec{9, 0, 0}, Rec{9, 1, 0})
	d, err := NewDist(rt, recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sort(rt); err != nil {
		t.Fatal(err)
	}
	if err := d.GroupSizes(rt); err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint64{1: 1, 7: 100, 9: 2}
	for _, r := range d.All() {
		if r[2] != want[r[0]] {
			t.Fatalf("group %d size %d, want %d", r[0], r[2], want[r[0]])
		}
	}
}
