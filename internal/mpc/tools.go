package mpc

import (
	"fmt"
	"sort"
)

// Rec is the record type moved by the Section 5 tools: a lexicographically
// ordered triple of words (e.g. (u,v,·) for directed edges, (u,c,·) for
// list entries, (i,a,tag) for tagged set elements).
type Rec [3]uint64

func recLess(a, b Rec) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[2] < b[2]
}

// Dist is a distributed collection of records: Parts[i] lives on machine
// i. The tools redistribute records between parts while charging the
// runtime for every round and checking every machine's load.
type Dist struct {
	Parts [][]Rec
}

// NewDist distributes records round-robin over the runtime's machines
// (an arbitrary initial placement, as the model allows adversarial
// placement).
func NewDist(rt *Runtime, recs []Rec) (*Dist, error) {
	d := &Dist{Parts: make([][]Rec, rt.M)}
	for i, r := range recs {
		m := i % rt.M
		d.Parts[m] = append(d.Parts[m], r)
	}
	if err := rt.CheckMemory(d.loads()); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Dist) loads() []int {
	l := make([]int, len(d.Parts))
	for i, p := range d.Parts {
		l[i] = 3 * len(p)
	}
	return l
}

// Len returns the total number of records.
func (d *Dist) Len() int {
	n := 0
	for _, p := range d.Parts {
		n += len(p)
	}
	return n
}

// All returns all records in machine order (test/inspection helper; a
// real MPC algorithm would never gather like this).
func (d *Dist) All() []Rec {
	var out []Rec
	for _, p := range d.Parts {
		out = append(out, p...)
	}
	return out
}

// Sort sorts the distributed records lexicographically (Definition 5.1)
// with deterministic regular sampling (PSRS), the constant-round
// BSP/MapReduce sorting of [GSZ11, Goo99]: local sort, M−1 regular
// samples per machine to machine 0, splitter broadcast, bucket
// redistribution, local merge. Requires M² samples and the buckets to
// fit in S, which holds in the model's parameter regime.
func (d *Dist) Sort(rt *Runtime) error {
	m := rt.M
	for _, p := range d.Parts {
		sort.Slice(p, func(i, j int) bool { return recLess(p[i], p[j]) })
	}
	// Regular samples to machine 0.
	var samples []Rec
	ioSample := make([]int, m)
	for i, p := range d.Parts {
		take := m - 1
		for s := 1; s <= take; s++ {
			idx := s * len(p) / (take + 1)
			if idx < len(p) {
				samples = append(samples, p[idx])
				ioSample[i] += 3
				ioSample[0] += 3
			}
		}
	}
	if err := rt.ChargeRound(ioSample); err != nil {
		return err
	}
	if 3*len(samples) > rt.S {
		return fmt.Errorf("mpc: %d sort samples exceed S = %d at machine 0", len(samples), rt.S)
	}
	sort.Slice(samples, func(i, j int) bool { return recLess(samples[i], samples[j]) })
	splitters := make([]Rec, 0, m-1)
	for s := 1; s < m; s++ {
		idx := s * len(samples) / m
		if idx < len(samples) {
			splitters = append(splitters, samples[idx])
		}
	}
	// Broadcast splitters (1 round).
	if err := rt.ChargeRound(rt.UniformIO(3 * len(splitters))); err != nil {
		return err
	}
	// Redistribute into buckets (1 round).
	buckets := make([][]Rec, m)
	ioRedist := make([]int, m)
	for i, p := range d.Parts {
		for _, r := range p {
			b := sort.Search(len(splitters), func(j int) bool { return recLess(r, splitters[j]) })
			buckets[b] = append(buckets[b], r)
			ioRedist[i] += 3
			ioRedist[b] += 3
		}
	}
	if err := rt.ChargeRound(ioRedist); err != nil {
		return err
	}
	for b := range buckets {
		sort.Slice(buckets[b], func(i, j int) bool { return recLess(buckets[b][i], buckets[b][j]) })
	}
	d.Parts = buckets
	return rt.CheckMemory(d.loads())
}

// IsSorted reports whether the records are globally sorted across the
// machine order.
func (d *Dist) IsSorted() bool {
	var prev *Rec
	for _, p := range d.Parts {
		for i := range p {
			if prev != nil && recLess(p[i], *prev) {
				return false
			}
			prev = &p[i]
		}
	}
	return true
}

// PrefixSums solves the prefix-sums problem of Definition 5.2 on the
// sorted collection with an associative operation over word 2 of the
// records: afterwards record j's word 2 holds op(x_1,…,x_j). Constant
// rounds: local partials, machine-0 scan of M values, offset broadcast.
func (d *Dist) PrefixSums(rt *Runtime, op func(a, b uint64) uint64, identity uint64) error {
	m := rt.M
	partials := make([]uint64, m)
	for i, p := range d.Parts {
		acc := identity
		for _, r := range p {
			acc = op(acc, r[2])
		}
		partials[i] = acc
	}
	// Partials to machine 0 and offsets back: 2 rounds of M words.
	if 3*m > rt.S {
		return fmt.Errorf("mpc: %d machine partials exceed S", m)
	}
	if err := rt.ChargeRounds(2, rt.UniformIO(3)); err != nil {
		return err
	}
	offsets := make([]uint64, m)
	acc := identity
	for i := 0; i < m; i++ {
		offsets[i] = acc
		acc = op(acc, partials[i])
	}
	for i, p := range d.Parts {
		run := offsets[i]
		for j := range p {
			run = op(run, p[j][2])
			p[j][2] = run
		}
	}
	return nil
}

// GroupRanks assumes the collection is sorted by key (word 0) and fills
// word 2 of every record with its 0-based rank within its key group
// (Corollary 5.2). Constant rounds: boundary records travel one machine
// forward.
func (d *Dist) GroupRanks(rt *Runtime) error {
	// One boundary record per machine moves forward: 1 round.
	if err := rt.ChargeRound(rt.UniformIO(3)); err != nil {
		return err
	}
	var carryKey uint64
	carryCount := uint64(0)
	started := false
	for _, p := range d.Parts {
		for j := range p {
			if !started || p[j][0] != carryKey {
				carryKey = p[j][0]
				carryCount = 0
				started = true
			}
			p[j][2] = carryCount
			carryCount++
		}
	}
	return nil
}

// GroupSizes assumes sorting by key (word 0) and returns the size of
// each key's group delivered to every record's machine via the
// aggregation-tree structure (Definition 5.4): word 2 of each record is
// set to its group's size. Constant rounds.
func (d *Dist) GroupSizes(rt *Runtime) error {
	if err := d.GroupRanks(rt); err != nil {
		return err
	}
	// Reverse ranks via a backward boundary pass (1 round), then size =
	// rank + reverse rank + 1, entirely local.
	if err := rt.ChargeRound(rt.UniformIO(3)); err != nil {
		return err
	}
	sizes := map[uint64]uint64{}
	for _, p := range d.Parts {
		for _, r := range p {
			if r[2]+1 > sizes[r[0]] {
				sizes[r[0]] = r[2] + 1
			}
		}
	}
	// Deliver group sizes down the trees (depth rounds).
	if err := rt.ChargeRounds(rt.AggDepth(), rt.UniformIO(3)); err != nil {
		return err
	}
	for _, p := range d.Parts {
		for j := range p {
			p[j][2] = sizes[p[j][0]]
		}
	}
	return nil
}

// SetDifference solves Definition 5.3: given sets A_i (records (i,a))
// and multisets B_i (records (i,b)), it returns for every A-record
// whether its value appears in B_i. Implemented by sorting the tagged
// union (B-tags sort before A-tags within an equal (i,a)) and a
// boundary-carrying scan — constant rounds.
func SetDifference(rt *Runtime, a, b []Rec) (map[Rec]bool, error) {
	const tagB, tagA = 0, 1
	var tagged []Rec
	for _, r := range b {
		tagged = append(tagged, Rec{r[0], r[1], tagB})
	}
	for _, r := range a {
		tagged = append(tagged, Rec{r[0], r[1], tagA})
	}
	d, err := NewDist(rt, tagged)
	if err != nil {
		return nil, err
	}
	if err := d.Sort(rt); err != nil {
		return nil, err
	}
	// Boundary scan: last (i,a,sawB) of each machine moves forward.
	if err := rt.ChargeRound(rt.UniformIO(3)); err != nil {
		return nil, err
	}
	result := map[Rec]bool{}
	var curKey Rec
	sawB := false
	started := false
	for _, p := range d.Parts {
		for _, r := range p {
			k := Rec{r[0], r[1], 0}
			if !started || k != curKey {
				curKey = k
				sawB = false
				started = true
			}
			if r[2] == tagB {
				sawB = true
			} else {
				result[Rec{r[0], r[1], 0}] = sawB
			}
		}
	}
	return result, nil
}
