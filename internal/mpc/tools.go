package mpc

import (
	"fmt"
	"slices"
	"sort"
)

// Rec is the record type moved by the Section 5 tools: a lexicographically
// ordered triple of words (e.g. (u,v,·) for directed edges, (u,c,·) for
// list entries, (i,a,tag) for tagged set elements).
type Rec [3]uint64

func recLess(a, b Rec) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[2] < b[2]
}

func recCmp(a, b Rec) int {
	for i := 0; i < 3; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Dist is a distributed collection of records: Parts[i] lives on machine
// i. The tools redistribute records between parts on the runtime's
// engine pool — local phases run machine-sharded across the workers, and
// the IO they charge is accumulated per worker and merged by sum — while
// charging the runtime for every round and checking every machine's
// load.
type Dist struct {
	Parts [][]Rec
}

// NewDist distributes records round-robin over the runtime's machines
// (an arbitrary initial placement, as the model allows adversarial
// placement).
func NewDist(rt *Runtime, recs []Rec) (*Dist, error) {
	d := &Dist{Parts: make([][]Rec, rt.M)}
	for i := 0; i < rt.M && i < len(recs); i++ {
		d.Parts[i] = make([]Rec, 0, (len(recs)-i+rt.M-1)/rt.M)
	}
	for j, r := range recs {
		m := j % rt.M
		d.Parts[m] = append(d.Parts[m], r)
	}
	if err := rt.CheckMemory(d.loads()); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Dist) loads() []int {
	l := make([]int, len(d.Parts))
	for i, p := range d.Parts {
		l[i] = 3 * len(p)
	}
	return l
}

// Len returns the total number of records.
func (d *Dist) Len() int {
	n := 0
	for _, p := range d.Parts {
		n += len(p)
	}
	return n
}

// All returns all records in machine order (test/inspection helper; a
// real MPC algorithm would never gather like this).
func (d *Dist) All() []Rec {
	var out []Rec
	for _, p := range d.Parts {
		out = append(out, p...)
	}
	return out
}

// Sort sorts the distributed records lexicographically (Definition 5.1)
// with deterministic regular sampling (PSRS), the constant-round
// BSP/MapReduce sorting of [GSZ11, Goo99]: local sort, M−1 regular
// samples per machine to machine 0, splitter broadcast, bucket
// redistribution, local merge. Requires M² samples and the buckets to
// fit in S, which holds in the model's parameter regime.
//
// Every phase runs machine-sharded on the runtime's engine pool: the
// local sorts in parallel, and the redistribution as cut-point bulk
// moves (each locally sorted part is split by binary search on the
// splitters, so records travel as contiguous runs, not one by one) with
// the per-machine IO accounting accumulated by the shard workers and
// merged by sum — bit-identical to a sequential redistribution.
func (d *Dist) Sort(rt *Runtime) error {
	m := rt.M
	pool := rt.Pool()
	pool.ForEach(func(wid, lo, hi int) {
		for i := lo; i < hi; i++ {
			slices.SortFunc(d.Parts[i], recCmp)
		}
	})
	// Regular samples to machine 0.
	var samples []Rec
	ioSample := make([]int, m)
	for i, p := range d.Parts {
		take := m - 1
		for s := 1; s <= take; s++ {
			idx := s * len(p) / (take + 1)
			if idx < len(p) {
				samples = append(samples, p[idx])
				ioSample[i] += 3
				ioSample[0] += 3
			}
		}
	}
	if err := rt.ChargeRound(ioSample); err != nil {
		return err
	}
	if 3*len(samples) > rt.S {
		return fmt.Errorf("mpc: %d sort samples exceed S = %d at machine 0", len(samples), rt.S)
	}
	slices.SortFunc(samples, recCmp)
	splitters := make([]Rec, 0, m-1)
	for s := 1; s < m; s++ {
		idx := s * len(samples) / m
		if idx < len(samples) {
			splitters = append(splitters, samples[idx])
		}
	}
	// Broadcast splitters (1 round).
	if err := rt.ChargeRound(rt.UniformIO(3 * len(splitters))); err != nil {
		return err
	}
	// Redistribute into buckets (1 round). Each machine's sorted part
	// falls into at most len(splitters)+1 contiguous runs; cuts[i][b] is
	// the start of machine i's run for bucket b.
	nb := len(splitters) + 1
	cuts := make([][]int, m)
	ioW := make([][]int, pool.Shards())
	pool.ForEach(func(wid, lo, hi int) {
		io := make([]int, m)
		ioW[wid] = io
		for i := lo; i < hi; i++ {
			p := d.Parts[i]
			c := make([]int, nb+1)
			for b := 1; b < nb; b++ {
				spl := splitters[b-1]
				c[b] = sort.Search(len(p), func(j int) bool { return !recLess(p[j], spl) })
			}
			c[nb] = len(p)
			cuts[i] = c
			for b := 0; b < nb; b++ {
				words := 3 * (c[b+1] - c[b])
				io[i] += words
				io[b] += words
			}
		}
	})
	ioRedist := make([]int, m)
	for _, io := range ioW {
		for i, w := range io {
			ioRedist[i] += w
		}
	}
	if err := rt.ChargeRound(ioRedist); err != nil {
		return err
	}
	buckets := make([][]Rec, m)
	pool.ForEach(func(wid, lo, hi int) {
		var runs [][]Rec
		for b := lo; b < hi && b < nb; b++ {
			runs = runs[:0]
			total := 0
			for i := 0; i < m; i++ {
				if r := d.Parts[i][cuts[i][b]:cuts[i][b+1]]; len(r) > 0 {
					runs = append(runs, r)
					total += len(r)
				}
			}
			if total == 0 {
				continue
			}
			buckets[b] = mergeRuns(runs, total)
		}
	})
	d.Parts = buckets
	return rt.CheckMemory(d.loads())
}

// mergeRuns k-way-merges sorted runs into one sorted slice of the given
// total length using an index min-heap over the run heads — O(total·log
// k) comparisons instead of re-sorting the concatenation. Equal records
// are identical triples, so heap tie order cannot affect the output.
func mergeRuns(runs [][]Rec, total int) []Rec {
	out := make([]Rec, 0, total)
	if len(runs) == 1 {
		return append(out, runs[0]...)
	}
	heap := make([]int, len(runs))
	for i := range heap {
		heap[i] = i
	}
	less := func(a, b int) bool { return recLess(runs[heap[a]][0], runs[heap[b]][0]) }
	sift := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && less(l, small) {
				small = l
			}
			if r < len(heap) && less(r, small) {
				small = r
			}
			if small == i {
				return
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		sift(i)
	}
	for len(heap) > 0 {
		top := heap[0]
		out = append(out, runs[top][0])
		runs[top] = runs[top][1:]
		if len(runs[top]) == 0 {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		sift(0)
	}
	return out
}

// IsSorted reports whether the records are globally sorted across the
// machine order.
func (d *Dist) IsSorted() bool {
	var prev *Rec
	for _, p := range d.Parts {
		for i := range p {
			if prev != nil && recLess(p[i], *prev) {
				return false
			}
			prev = &p[i]
		}
	}
	return true
}

// PrefixSums solves the prefix-sums problem of Definition 5.2 on the
// sorted collection with an associative operation over word 2 of the
// records: afterwards record j's word 2 holds op(x_1,…,x_j). Constant
// rounds: machine-local partials (computed machine-sharded on the
// pool), machine-0 scan of M values, offset broadcast and local apply.
func (d *Dist) PrefixSums(rt *Runtime, op func(a, b uint64) uint64, identity uint64) error {
	m := rt.M
	pool := rt.Pool()
	partials := make([]uint64, m)
	pool.ForEach(func(wid, lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := identity
			for _, r := range d.Parts[i] {
				acc = op(acc, r[2])
			}
			partials[i] = acc
		}
	})
	// Partials to machine 0 and offsets back: 2 rounds of M words.
	if 3*m > rt.S {
		return fmt.Errorf("mpc: %d machine partials exceed S", m)
	}
	if err := rt.ChargeRounds(2, rt.UniformIO(3)); err != nil {
		return err
	}
	offsets := make([]uint64, m)
	acc := identity
	for i := 0; i < m; i++ {
		offsets[i] = acc
		acc = op(acc, partials[i])
	}
	pool.ForEach(func(wid, lo, hi int) {
		for i := lo; i < hi; i++ {
			run := offsets[i]
			p := d.Parts[i]
			for j := range p {
				run = op(run, p[j][2])
				p[j][2] = run
			}
		}
	})
	return nil
}

// runInfo summarizes one machine's part for the boundary-carry passes:
// the keys and lengths of its leading and trailing runs of equal keys.
type runInfo struct {
	n                int
	headKey, tailKey uint64
	headRun, tailRun int
}

func (ri runInfo) allSame() bool { return ri.headRun == ri.n }

// runInfoOf scans p once (p sorted by key).
func runInfoOf(p []Rec) runInfo {
	ri := runInfo{n: len(p)}
	if len(p) == 0 {
		return ri
	}
	ri.headKey = p[0][0]
	for ri.headRun < len(p) && p[ri.headRun][0] == ri.headKey {
		ri.headRun++
	}
	ri.tailKey = p[len(p)-1][0]
	j := len(p)
	for j > 0 && p[j-1][0] == ri.tailKey {
		j--
	}
	ri.tailRun = len(p) - j
	return ri
}

// forwardCarries returns, per machine, how many records with its head
// key sit in the contiguous same-key run immediately preceding it —
// what the forward boundary records of Corollary 5.2 communicate.
func forwardCarries(info []runInfo) []uint64 {
	carry := make([]uint64, len(info))
	var prevKey uint64
	prevRun := uint64(0)
	started := false
	for i, ri := range info {
		if ri.n == 0 {
			continue
		}
		c := uint64(0)
		if started && ri.headKey == prevKey {
			c = prevRun
		}
		carry[i] = c
		if ri.allSame() && c > 0 {
			prevRun = c + uint64(ri.n)
		} else {
			prevRun = uint64(ri.tailRun)
		}
		prevKey = ri.tailKey
		started = true
	}
	return carry
}

// backwardCarries is the mirror pass: how many records with machine i's
// tail key sit in the run immediately following it.
func backwardCarries(info []runInfo) []uint64 {
	carry := make([]uint64, len(info))
	var prevKey uint64
	prevRun := uint64(0)
	started := false
	for i := len(info) - 1; i >= 0; i-- {
		ri := info[i]
		if ri.n == 0 {
			continue
		}
		c := uint64(0)
		if started && ri.tailKey == prevKey {
			c = prevRun
		}
		carry[i] = c
		if ri.allSame() && c > 0 {
			prevRun = c + uint64(ri.n)
		} else {
			prevRun = uint64(ri.headRun)
		}
		prevKey = ri.headKey
		started = true
	}
	return carry
}

// GroupRanks assumes the collection is sorted by key (word 0) and fills
// word 2 of every record with its 0-based rank within its key group
// (Corollary 5.2). Constant rounds: local ranks are computed
// machine-sharded, then one boundary record per machine travels forward
// (1 accounted round) and the carries are applied machine-sharded.
func (d *Dist) GroupRanks(rt *Runtime) error {
	// One boundary record per machine moves forward: 1 round.
	if err := rt.ChargeRound(rt.UniformIO(3)); err != nil {
		return err
	}
	pool := rt.Pool()
	info := make([]runInfo, len(d.Parts))
	pool.ForEach(func(wid, lo, hi int) {
		for i := lo; i < hi; i++ {
			p := d.Parts[i]
			var key uint64
			count := uint64(0)
			for j := range p {
				if j == 0 || p[j][0] != key {
					key = p[j][0]
					count = 0
				}
				p[j][2] = count
				count++
			}
			info[i] = runInfoOf(p)
		}
	})
	carry := forwardCarries(info)
	pool.ForEach(func(wid, lo, hi int) {
		for i := lo; i < hi; i++ {
			if carry[i] == 0 {
				continue
			}
			p := d.Parts[i]
			for j := 0; j < info[i].headRun; j++ {
				p[j][2] += carry[i]
			}
		}
	})
	return nil
}

// GroupSizes assumes sorting by key (word 0) and returns the size of
// each key's group delivered to every record's machine via the
// aggregation-tree structure (Definition 5.4): word 2 of each record is
// set to its group's size. Constant rounds. Group sizes are derived
// machine-sharded from the run structure plus the forward/backward
// boundary carries — no global table, so the local computation stays
// O(records per machine) per worker.
func (d *Dist) GroupSizes(rt *Runtime) error {
	if err := d.GroupRanks(rt); err != nil {
		return err
	}
	// Reverse ranks via a backward boundary pass (1 round), then size =
	// rank + reverse rank + 1, entirely local.
	if err := rt.ChargeRound(rt.UniformIO(3)); err != nil {
		return err
	}
	// Deliver boundary-spanning sizes down the trees (depth rounds).
	if err := rt.ChargeRounds(rt.AggDepth(), rt.UniformIO(3)); err != nil {
		return err
	}
	pool := rt.Pool()
	info := make([]runInfo, len(d.Parts))
	pool.ForEach(func(wid, lo, hi int) {
		for i := lo; i < hi; i++ {
			info[i] = runInfoOf(d.Parts[i])
		}
	})
	before := forwardCarries(info)
	after := backwardCarries(info)
	pool.ForEach(func(wid, lo, hi int) {
		for i := lo; i < hi; i++ {
			p := d.Parts[i]
			if len(p) == 0 {
				continue
			}
			ri := info[i]
			if ri.allSame() {
				sz := before[i] + uint64(ri.n) + after[i]
				for j := range p {
					p[j][2] = sz
				}
				continue
			}
			headSz := before[i] + uint64(ri.headRun)
			for j := 0; j < ri.headRun; j++ {
				p[j][2] = headSz
			}
			// Internal runs are wholly on this machine.
			for a := ri.headRun; a < ri.n-ri.tailRun; {
				b := a + 1
				for b < ri.n && p[b][0] == p[a][0] {
					b++
				}
				for j := a; j < b; j++ {
					p[j][2] = uint64(b - a)
				}
				a = b
			}
			tailSz := uint64(ri.tailRun) + after[i]
			for j := ri.n - ri.tailRun; j < ri.n; j++ {
				p[j][2] = tailSz
			}
		}
	})
	return nil
}

// SetDifference solves Definition 5.3: given sets A_i (records (i,a))
// and multisets B_i (records (i,b)), it returns for every A-record
// whether its value appears in B_i. Implemented by sorting the tagged
// union (B-tags sort before A-tags within an equal (i,a)) and a
// boundary-carrying scan — constant rounds.
func SetDifference(rt *Runtime, a, b []Rec) (map[Rec]bool, error) {
	const tagB, tagA = 0, 1
	tagged := make([]Rec, 0, len(a)+len(b))
	for _, r := range b {
		tagged = append(tagged, Rec{r[0], r[1], tagB})
	}
	for _, r := range a {
		tagged = append(tagged, Rec{r[0], r[1], tagA})
	}
	d, err := NewDist(rt, tagged)
	if err != nil {
		return nil, err
	}
	if err := d.Sort(rt); err != nil {
		return nil, err
	}
	// Boundary scan: last (i,a,sawB) of each machine moves forward.
	if err := rt.ChargeRound(rt.UniformIO(3)); err != nil {
		return nil, err
	}
	result := map[Rec]bool{}
	var curKey Rec
	sawB := false
	started := false
	for _, p := range d.Parts {
		for _, r := range p {
			k := Rec{r[0], r[1], 0}
			if !started || k != curKey {
				curKey = k
				sawB = false
				started = true
			}
			if r[2] == tagB {
				sawB = true
			} else {
				result[Rec{r[0], r[1], 0}] = sawB
			}
		}
	}
	return result, nil
}
