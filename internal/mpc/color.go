package mpc

import (
	"fmt"
	"math"
	"math/bits"

	"smallbandwidth/internal/gf2"
	"smallbandwidth/internal/graph"
)

// Options configures the MPC coloring algorithms.
type Options struct {
	// Sublinear selects the Theorem 1.5 layout (node data spread over
	// many machines, Section 5 aggregation trees); otherwise the
	// Theorem 1.4 linear-memory layout is used (every node's edges and
	// list co-located on one machine).
	Sublinear bool
	// S overrides the per-machine memory in words (0 = derived: Θ(n) in
	// the linear regime, Θ(n^Alpha) in the sublinear regime).
	S int
	// Alpha is the sublinear memory exponent (0 = default 0.5).
	Alpha float64
	// LambdaCap caps the seed-segment width (0 = default 16).
	LambdaCap int
}

// Result reports the coloring and measured resources.
type Result struct {
	Colors          []uint32
	Rounds          int
	Machines        int
	S               int
	HighWaterMemory int
	HighWaterIO     int
	Iterations      int
	FinishedLocally bool // residual instance solved on one machine (Thm 1.4 path)
}

// mpcNode keeps one node's protocol state. Neighbor sets are sorted
// int32 slices, not maps: every iteration over them is in ascending
// order, so the floating-point accumulations of the derandomization are
// evaluated in one fixed order and the whole run is bit-deterministic.
type mpcNode struct {
	alive    bool
	colored  bool
	color    uint32
	list     []uint32
	cands    []uint32
	aliveNbr []int32 // still-uncolored neighbors, sorted
	conflict []int32 // conflict neighbors of the current iteration, sorted
	k1       uint64
	phi      int
}

// ListColorMPC solves the (degree+1)-list-coloring instance in the MPC
// model: Theorem 1.4 with linear memory, Theorem 1.5 with sublinear
// memory. Node IDs serve as the input coloring; one candidate-color bit
// is fixed per O(logS-segment) constant-round derandomization pass; the
// MIS-avoidance accuracy (Section 4) colors ≥ 1/4 of the uncolored nodes
// per iteration; the linear regime ships the residual instance to one
// machine once it fits (the n/Δ² point of the proof), the sublinear
// regime iterates to completion (the "+ log n" term of Theorem 1.5; see
// DESIGN.md for the Lemma 4.2 substitution).
func ListColorMPC(inst *graph.Instance, opts Options) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	g := inst.G
	n := g.N()
	if n == 0 {
		return &Result{}, nil
	}
	totalWords := 0
	for v := 0; v < n; v++ {
		totalWords += 3 * (2*g.Degree(v) + len(inst.Lists[v]))
	}
	if opts.Alpha == 0 {
		opts.Alpha = 0.5
	}
	if opts.LambdaCap == 0 {
		opts.LambdaCap = 16
	}
	s := opts.S
	if s == 0 {
		if opts.Sublinear {
			s = max(int(8*pow(float64(n), opts.Alpha)), 64)
		} else {
			// Θ(n) with a constant that fits a Δ = n−1 node's edges and
			// list (≈ 9n words) plus slack.
			s = max(12*n, 64)
		}
	}
	m := max((2*totalWords)/s, 1) + 1
	rt, err := NewRuntime(m, s)
	if err != nil {
		return nil, err
	}
	defer rt.Close()

	delta := g.MaxDegree()
	logC := bits.Len32(inst.C - 1)
	effLogC := max(logC, 1)
	b := bits.Len64(10 * uint64(delta+1) * uint64(delta+1) * uint64(effLogC))
	a := max(bits.Len64(uint64(n-1)), 1)
	hm := max(a, b)
	if hm > 63 {
		return nil, fmt.Errorf("mpc: hash degree %d exceeds 63", hm)
	}
	fam, err := gf2.NewFamily(hm, 2)
	if err != nil {
		return nil, err
	}
	d := fam.SeedBits()
	// λ: the vector of 2^λ conditional expectations must fit the
	// aggregation-tree IO budget: 2^λ ≤ √S.
	lambda := max(1, min(min(bits.Len(uint(isqrt(rt.S)))-1, d), opts.LambdaCap))

	// Node-to-machine placement for IO accounting: first-fit by size in
	// the linear regime; in the sublinear regime records are spread
	// round-robin so per-node placement does not exist (aggregation
	// trees carry everything).
	nodeMachine := make([]int, n)
	if opts.Sublinear {
		// Records (edges, list entries) are spread round-robin; register
		// the resulting per-machine residency with the runtime.
		loads := make([]int, rt.M)
		i := 0
		add := func(words int) {
			loads[i%rt.M] += words
			i++
		}
		for v := 0; v < n; v++ {
			for range g.Neighbors(v) {
				add(3)
			}
			for range inst.Lists[v] {
				add(3)
			}
		}
		if err := rt.CheckMemory(loads); err != nil {
			return nil, fmt.Errorf("mpc: sublinear layout does not fit: %w", err)
		}
	}
	if !opts.Sublinear {
		loads := make([]int, rt.M)
		for v := 0; v < n; v++ {
			size := 3 * (2*g.Degree(v) + len(inst.Lists[v]))
			bestM := 0
			for i := 1; i < rt.M; i++ {
				if loads[i] < loads[bestM] {
					bestM = i
				}
			}
			nodeMachine[v] = bestM
			loads[bestM] += size
		}
		if err := rt.CheckMemory(loads); err != nil {
			return nil, fmt.Errorf("mpc: linear layout does not fit: %w", err)
		}
	}

	nodes := make([]*mpcNode, n)
	for v := 0; v < n; v++ {
		nodes[v] = &mpcNode{
			alive:    true,
			list:     append([]uint32(nil), inst.Lists[v]...),
			aliveNbr: append([]int32(nil), g.Neighbors(v)...),
		}
	}

	res := &Result{Machines: rt.M, S: rt.S}
	depth := rt.AggDepth()

	conflictEdgeIO := func() []int {
		io := make([]int, rt.M)
		for v, nd := range nodes {
			if !nd.alive {
				continue
			}
			for _, u32 := range nd.conflict {
				u := int(u32)
				if opts.Sublinear {
					io[(v*31+u)%rt.M] += 6
				} else {
					io[nodeMachine[v]] += 3
					io[nodeMachine[u]] += 3
				}
			}
		}
		return io
	}

	for iter := 0; ; iter++ {
		// Status aggregation: U and Δcur over the tree.
		u, deltaCur := 0, 0
		for _, nd := range nodes {
			if nd.alive {
				u++
				deltaCur = max(deltaCur, len(nd.aliveNbr))
			}
		}
		if err := rt.ChargeRounds(depth, rt.UniformIO(3*isqrt(rt.S))); err != nil {
			return nil, err
		}
		if u == 0 {
			break
		}
		if iter > 16*bits.Len(uint(n))+64 {
			return nil, fmt.Errorf("mpc: iteration budget exceeded")
		}

		// Linear-memory finish: ship the residual instance to machine 0
		// once it fits (≈ the n/Δ² point of Theorem 1.4's proof).
		if !opts.Sublinear {
			residual := 0
			for v, nd := range nodes {
				if nd.alive {
					residual += 3 * (len(nd.aliveNbr) + len(nd.list))
				}
				_ = v
			}
			if residual <= rt.S/2 {
				io := rt.UniformIO(0)
				io[0] = residual
				if err := rt.ChargeRounds(depth, io); err != nil {
					return nil, err
				}
				if err := greedyResidual(g, nodes); err != nil {
					return nil, err
				}
				if err := rt.ChargeRound(io); err != nil { // distribute colors
					return nil, err
				}
				res.FinishedLocally = true
				break
			}
		}
		res.Iterations++

		// Trim candidates (|L| ≤ uncolored degree + 1, Equation (9)).
		for _, nd := range nodes {
			if !nd.alive {
				nd.cands = nil
				nd.conflict = nd.conflict[:0]
				continue
			}
			keep := min(len(nd.aliveNbr)+1, len(nd.list))
			nd.cands = append(nd.cands[:0], nd.list[:keep]...)
			nd.conflict = append(nd.conflict[:0], nd.aliveNbr...)
		}

		for l := 1; l <= logC; l++ {
			bitPos := logC - l
			// k1 computation and exchange across conflict edges. In the
			// sublinear regime computing k1(u) itself costs a group
			// aggregation over u's list machines.
			if opts.Sublinear {
				if err := rt.ChargeRounds(2*depth, rt.UniformIO(3*isqrt(rt.S))); err != nil {
					return nil, err
				}
			}
			for _, nd := range nodes {
				if nd.alive {
					nd.k1 = countBit(nd.cands, bitPos)
				}
			}
			if err := rt.ChargeRound(conflictEdgeIO()); err != nil {
				return nil, err
			}

			// Derandomize the seed segment by segment.
			basis := gf2.NewBasis()
			var seed gf2.Vec128
			for segStart := 0; segStart < d; segStart += lambda {
				segW := min(lambda, d-segStart)
				nAssign := 1 << segW
				best, bestVal := 0, 0.0
				for r := 0; r < nAssign; r++ {
					bs := basis.Clone()
					for t := 0; t < segW; t++ {
						bs.FixBit(segStart+t, r>>uint(t)&1 == 1)
					}
					total := 0.0
					for v, nd := range nodes {
						if !nd.alive {
							continue
						}
						for _, w32 := range nd.conflict {
							w := int(w32)
							if w < v {
								continue
							}
							total += edgeExp1(bs, fam, b,
								uint64(v), nd.k1, uint64(len(nd.cands)),
								uint64(w), nodes[w].k1, uint64(len(nodes[w].cands)))
						}
					}
					if r == 0 || total < bestVal {
						best, bestVal = r, total
					}
				}
				// Vector aggregation up the tree + argmin broadcast.
				vecIO := rt.UniformIO(min(isqrt(rt.S)*(2+nAssign), rt.S))
				if err := rt.ChargeRounds(depth, vecIO); err != nil {
					return nil, err
				}
				if err := rt.ChargeRounds(depth, rt.UniformIO(3)); err != nil {
					return nil, err
				}
				for t := 0; t < segW; t++ {
					val := best>>uint(t)&1 == 1
					basis.FixBit(segStart+t, val)
					seed = seed.WithBit(segStart+t, val)
				}
			}

			// Every alive node evaluates its coin, filters, exchanges bit.
			bitsChosen := make([]bool, n)
			for v, nd := range nodes {
				if !nd.alive {
					continue
				}
				coin, err := gf2.NewCoin(fam, uint64(v), b, nd.k1, uint64(len(nd.cands)))
				if err != nil {
					return nil, err
				}
				bitsChosen[v] = coin.Value(seed)
				nd.cands = filterBit(nd.cands, bitPos, bitsChosen[v])
				if len(nd.cands) == 0 {
					return nil, fmt.Errorf("mpc: node %d candidate set emptied", v)
				}
			}
			if err := rt.ChargeRound(conflictEdgeIO()); err != nil {
				return nil, err
			}
			for v, nd := range nodes {
				if !nd.alive {
					continue
				}
				kept := nd.conflict[:0]
				for _, w := range nd.conflict {
					if bitsChosen[w] == bitsChosen[v] {
						kept = append(kept, w)
					}
				}
				nd.conflict = kept
			}
		}

		// MIS-free keep step (1 exchange round) and announcement with
		// list updates via set difference (constant rounds, Lemma 5.1).
		for v, nd := range nodes {
			nd.phi = len(nd.conflict)
			_ = v
		}
		if err := rt.ChargeRound(conflictEdgeIO()); err != nil {
			return nil, err
		}
		for v, nd := range nodes {
			if !nd.alive {
				continue
			}
			switch {
			case nd.phi == 0:
				nd.colored, nd.color = true, nd.cands[0]
			case nd.phi == 1:
				partner := int(nd.conflict[0])
				if nodes[partner].phi > 1 || v > partner {
					nd.colored, nd.color = true, nd.cands[0]
				}
			}
		}
		if err := rt.ChargeRounds(2+depth, conflictEdgeIO()); err != nil {
			return nil, err
		}
		for v, nd := range nodes {
			if nd.colored && nd.alive {
				nd.alive = false
				for _, w := range nd.aliveNbr {
					other := nodes[w]
					other.aliveNbr = graph.SortedRemove(other.aliveNbr, v)
					if !other.colored {
						other.list = removeColor(other.list, nd.color)
					}
				}
			}
		}
	}

	colors := make([]uint32, n)
	for v, nd := range nodes {
		if !nd.colored {
			return nil, fmt.Errorf("mpc: node %d left uncolored", v)
		}
		colors[v] = nd.color
	}
	if err := inst.VerifyColoring(colors); err != nil {
		return nil, fmt.Errorf("mpc: coloring invalid: %w", err)
	}
	res.Colors = colors
	res.Rounds = rt.Rounds
	res.HighWaterMemory = rt.HighWaterMemory
	res.HighWaterIO = rt.HighWaterIO
	return res, nil
}

// DeltaPlusOneMPC runs Observation 4.1: it synthesizes the
// (degree+1)-lists {0,…,deg(v)} in O(1) rounds (GroupRanks over the
// edge records gives every edge its position among its node's
// neighbors) and then colors the instance.
func DeltaPlusOneMPC(g *graph.Graph, opts Options) (*Result, error) {
	// Materialize directed edge records, sort, rank — exercising the
	// Section 5 tools exactly as the observation describes.
	s := opts.S
	if s == 0 {
		s = max(12*g.N(), 64)
	}
	// Enough machines that one machine's share (and thus its send+receive
	// volume during the sort redistribution) stays well under S.
	rtProbe, err := NewRuntime(max(18*g.M()/s, 1)+2, s)
	if err != nil {
		return nil, err
	}
	defer rtProbe.Close()
	var recs []Rec
	g.Edges(func(u, v int) {
		recs = append(recs, Rec{uint64(u), uint64(v), 0}, Rec{uint64(v), uint64(u), 0})
	})
	dist, err := NewDist(rtProbe, recs)
	if err != nil {
		return nil, err
	}
	if err := dist.Sort(rtProbe); err != nil {
		return nil, err
	}
	if err := dist.GroupRanks(rtProbe); err != nil {
		return nil, err
	}
	inst := graph.DeltaPlusOneInstance(g)
	res, err := ListColorMPC(inst, opts)
	if err != nil {
		return nil, err
	}
	res.Rounds += rtProbe.Rounds
	return res, nil
}

// greedyResidual colors all still-alive nodes at machine 0.
func greedyResidual(g *graph.Graph, nodes []*mpcNode) error {
	for v := 0; v < g.N(); v++ {
		nd := nodes[v]
		if !nd.alive {
			continue
		}
		taken := map[uint32]bool{}
		for _, w := range g.Neighbors(v) {
			if nodes[w].colored {
				taken[nodes[w].color] = true
			}
		}
		found := false
		for _, c := range nd.list {
			if !taken[c] {
				nd.color, nd.colored, found = c, true, true
				break
			}
		}
		if !found {
			return fmt.Errorf("mpc: residual greedy failed at node %d", v)
		}
	}
	for _, nd := range nodes {
		if nd.colored {
			nd.alive = false
		}
	}
	return nil
}

// edgeExp1 is the single-bit conditional edge expectation of Lemma 2.2.
func edgeExp1(bs *gf2.Basis, fam *gf2.Family, b int, xu, k1u, lu, xv, k1v, lv uint64) float64 {
	cu, err := gf2.NewCoin(fam, xu, b, k1u, lu)
	if err != nil {
		panic(err)
	}
	cv, err := gf2.NewCoin(fam, xv, b, k1v, lv)
	if err != nil {
		panic(err)
	}
	p1u := cu.ProbOne(bs)
	p1v := cv.ProbOne(bs)
	p11 := gf2.ProbBothOne(bs, cu, cv)
	p00 := 1 - p1u - p1v + p11
	var e float64
	if p11 > 0 {
		e += p11 * (1/float64(k1u) + 1/float64(k1v))
	}
	if p00 > 0 {
		e += p00 * (1/float64(lu-k1u) + 1/float64(lv-k1v))
	}
	return e
}

func countBit(cands []uint32, bitPos int) uint64 {
	var k uint64
	for _, c := range cands {
		if c>>uint(bitPos)&1 == 1 {
			k++
		}
	}
	return k
}

func filterBit(cands []uint32, bitPos int, val bool) []uint32 {
	out := cands[:0]
	for _, c := range cands {
		if (c>>uint(bitPos)&1 == 1) == val {
			out = append(out, c)
		}
	}
	return out
}

func removeColor(list []uint32, c uint32) []uint32 {
	for i, x := range list {
		if x == c {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
