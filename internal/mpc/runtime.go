// Package mpc simulates the Massively Parallel Computation model
// [KSV10, ANOY14] and implements the paper's Section 4 and Section 5:
// deterministic (degree+1)-list coloring with linear memory
// (Theorem 1.4) and sublinear memory (Theorem 1.5), the (Δ+1)→list
// reduction (Observation 4.1), the MIS-avoidance finish, and the
// constant-round basic tools of Lemma 5.1 (sorting, prefix sums, set
// difference, aggregation trees).
//
// The Runtime enforces the model's resource constraints: every machine
// has S words of memory; in one round a machine's sent plus received
// words may not exceed S; local computation is free. The coloring
// algorithms keep per-node protocol state centrally for speed but derive
// every memory/IO figure they charge from the real data sizes placed on
// each machine, so a configuration that would overflow a machine fails
// loudly (see DESIGN.md for this cost-model discussion); the Section 5
// tools move real records between real machine buffers.
//
// The record-moving tools run on the shared sharded round engine
// (internal/engine): the runtime owns an engine pool over the
// machine-to-machine topology, the tools' local phases (sorting,
// scanning, bucket assembly) run machine-sharded across its workers, and
// the per-round S-word IO accounting is folded into the shard workers —
// each worker accumulates the IO of its machine range privately and the
// vectors merge by elementwise sum, so Rounds/HighWaterMemory/
// HighWaterIO are bit-identical regardless of the worker count.
package mpc

import (
	"fmt"

	"smallbandwidth/internal/engine"
)

// Runtime tracks rounds and enforces per-machine memory and IO.
type Runtime struct {
	S int // words of memory per machine
	M int // number of machines

	Rounds          int
	HighWaterMemory int
	HighWaterIO     int

	pool *engine.Pool
}

// NewRuntime builds a runtime with M machines of S words each. Call
// Close when done: the engine pool's shard workers are persistent
// goroutines.
func NewRuntime(m, s int) (*Runtime, error) {
	if m < 1 || s < 4 {
		return nil, fmt.Errorf("mpc: invalid runtime (M=%d, S=%d)", m, s)
	}
	return &Runtime{S: s, M: m}, nil
}

// Pool returns the engine pool over the runtime's machines, creating it
// on first use.
func (rt *Runtime) Pool() *engine.Pool {
	if rt.pool == nil {
		rt.pool = engine.NewPool(rt.M, 1)
	}
	return rt.pool
}

// Close releases the engine pool. The Runtime must not be used afterwards.
func (rt *Runtime) Close() {
	if rt.pool != nil {
		rt.pool.Close()
		rt.pool = nil
	}
}

// CheckMemory verifies that every machine's resident words fit in S.
func (rt *Runtime) CheckMemory(loads []int) error {
	for i, l := range loads {
		if l > rt.S {
			return fmt.Errorf("mpc: machine %d holds %d words > S = %d", i, l, rt.S)
		}
		if l > rt.HighWaterMemory {
			rt.HighWaterMemory = l
		}
	}
	return nil
}

// ChargeRound accounts one communication round in which machine i sends
// plus receives io[i] words.
func (rt *Runtime) ChargeRound(io []int) error {
	rt.Rounds++
	for i, l := range io {
		if l > rt.S {
			return fmt.Errorf("mpc: machine %d moved %d words > S = %d in one round", i, l, rt.S)
		}
		if l > rt.HighWaterIO {
			rt.HighWaterIO = l
		}
	}
	return nil
}

// ChargeRounds accounts k uniform rounds with the same per-machine IO.
func (rt *Runtime) ChargeRounds(k int, io []int) error {
	for i := 0; i < k; i++ {
		if err := rt.ChargeRound(io); err != nil {
			return err
		}
	}
	return nil
}

// AggDepth returns the depth of a √S-ary aggregation tree over all M
// machines (Definition 5.4): the constant number of rounds a tree-wide
// aggregate or broadcast costs.
func (rt *Runtime) AggDepth() int {
	fan := isqrt(rt.S)
	if fan < 2 {
		fan = 2
	}
	depth := 0
	for span := 1; span < rt.M; span *= fan {
		depth++
	}
	if depth == 0 {
		depth = 1
	}
	return depth
}

// UniformIO returns an IO vector with the same load on every machine.
func (rt *Runtime) UniformIO(words int) []int {
	io := make([]int, rt.M)
	for i := range io {
		io[i] = words
	}
	return io
}

func isqrt(x int) int {
	if x < 0 {
		return 0
	}
	r := 0
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}
