package clique

import (
	"strings"
	"testing"

	"smallbandwidth/internal/engine"
	"smallbandwidth/internal/graph"
)

func TestSimExchangeBasics(t *testing.T) {
	s := NewSim(3, 4)
	defer s.Close()
	out := NewOut(3)
	out[0] = append(out[0], Directed{To: 1, Payload: Message{42}}, Directed{To: 2, Payload: Message{43, 44}})
	out[2] = append(out[2], Directed{To: 0, Payload: Message{7}})
	in, err := s.Exchange(out)
	if err != nil {
		t.Fatal(err)
	}
	m10, ok1 := Lookup(in[1], 0)
	m20, ok2 := Lookup(in[2], 0)
	m02, ok3 := Lookup(in[0], 2)
	if !ok1 || !ok2 || !ok3 || m10[0] != 42 || m20[1] != 44 || m02[0] != 7 {
		t.Error("messages misdelivered")
	}
	if s.Stats.Rounds != 1 || s.Stats.Messages != 3 || s.Stats.Words != 4 {
		t.Errorf("stats: %+v", s.Stats)
	}
}

func TestSimExchangeRejectsViolations(t *testing.T) {
	s := NewSim(2, 2)
	defer s.Close()
	out := NewOut(2)
	out[0] = append(out[0], Directed{To: 1, Payload: Message{1, 2, 3}})
	if _, err := s.Exchange(out); err == nil {
		t.Error("oversized message accepted")
	}
	out = NewOut(2)
	out[0] = append(out[0], Directed{To: 0, Payload: Message{1}})
	if _, err := s.Exchange(out); err == nil {
		t.Error("self-send accepted")
	}
	out = NewOut(2)
	out[0] = append(out[0], Directed{To: 1, Payload: Message{1}}, Directed{To: 1, Payload: Message{2}})
	if _, err := s.Exchange(out); err == nil {
		t.Error("double send to one destination accepted")
	}
}

func TestRouteAllBatchesChargedByLoad(t *testing.T) {
	// 3 messages through n = 2 exceeds one Lenzen batch: 2 batches = 4
	// rounds must be charged.
	s := NewSim(2, 4)
	out := make([][]Routed, 2)
	for i := 0; i < 3; i++ {
		out[0] = append(out[0], Routed{Dst: 1, Payload: Message{uint64(i)}})
	}
	in, err := s.RouteAll(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(in[1]) != 3 {
		t.Errorf("routed %d messages, want 3", len(in[1]))
	}
	if s.Stats.Rounds != 4 {
		t.Errorf("overloaded RouteAll cost %d rounds, want 4", s.Stats.Rounds)
	}

	s2 := NewSim(2, 4)
	out = make([][]Routed, 2)
	out[0] = []Routed{{Dst: 1, Payload: Message{9}}, {Dst: 1, Payload: Message{8}}}
	if _, err := s2.RouteAll(out); err != nil {
		t.Fatal(err)
	}
	if s2.Stats.Rounds != 2 {
		t.Errorf("in-capacity RouteAll cost %d rounds, want 2", s2.Stats.Rounds)
	}
	// Invalid destination is still an error.
	out = make([][]Routed, 2)
	out[0] = []Routed{{Dst: 5, Payload: Message{1}}}
	if _, err := s2.RouteAll(out); err == nil {
		t.Error("invalid destination accepted")
	}
}

func TestListColorCliqueSmall(t *testing.T) {
	cases := map[string]*graph.Graph{
		"single":   graph.Path(1),
		"edge":     graph.Path(2),
		"triangle": graph.Complete(3),
		"path":     graph.Path(10),
		"cycle":    graph.Cycle(12),
		"star":     graph.Star(9),
		"grid":     graph.Grid2D(4, 4),
		"clique":   graph.Complete(8),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			inst := graph.DeltaPlusOneInstance(g)
			res, err := ListColorClique(inst, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := inst.VerifyColoring(res.Colors); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestListColorCliqueDense(t *testing.T) {
	// Dense enough that the local-finish condition U·Δ ≤ n does not fire
	// immediately, forcing derandomized iterations.
	g := graph.MustRandomRegular(24, 6, 3)
	inst := graph.DeltaPlusOneInstance(g)
	res, err := ListColorClique(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.VerifyColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Error("expected at least one derandomized iteration on a dense instance")
	}
	t.Logf("iterations=%d maxBatch=%d localFinishAt=%d rounds=%d",
		res.Iterations, res.MaxBatch, res.LocalFinishUncolored, res.Stats.Rounds)
}

// TestCliqueMultiBitBatch forces the Theorem 1.3 acceleration to fix two
// prefix bits per batch (4-path survival events, (2·2)-coin ProbConj) and
// checks the result is still a proper list coloring. The adaptive rule
// rarely engages on its own at unit-test sizes because the keep step
// overshoots the (n/4, n/Δ] window.
func TestCliqueMultiBitBatch(t *testing.T) {
	// Small on purpose: the 2-bit batch multiplies the seed length and
	// the ProbConj cost, and the machinery is identical at any size.
	g := graph.Cycle(8)
	inst := graph.DeltaPlusOneInstance(g)
	res, err := ListColorClique(inst, Options{ForceBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.VerifyColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.MaxBatch != 2 {
		t.Errorf("maxBatch = %d, want 2", res.MaxBatch)
	}
	// Same instance, single-bit: both must produce valid colorings and
	// the batched run should not need more derandemized iterations.
	single, err := ListColorClique(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("batched: rounds=%d iters=%d; single-bit: rounds=%d iters=%d",
		res.Stats.Rounds, res.Iterations, single.Stats.Rounds, single.Iterations)
}

func TestListColorCliqueRandomLists(t *testing.T) {
	g := graph.GNP(20, 0.4, 11)
	inst, err := graph.RandomListInstance(g, 48, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ListColorClique(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.VerifyColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestListColorCliqueDeterministic(t *testing.T) {
	g := graph.MustRandomRegular(20, 5, 2)
	inst := graph.DeltaPlusOneInstance(g)
	r1, err := ListColorClique(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ListColorClique(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1.Colors {
		if r1.Colors[v] != r2.Colors[v] {
			t.Fatal("clique coloring not deterministic")
		}
	}
	if r1.Stats != r2.Stats {
		t.Errorf("stats differ: %+v vs %+v", r1.Stats, r2.Stats)
	}
}

func TestCliqueInvalidInstance(t *testing.T) {
	g := graph.Path(3)
	inst := graph.DeltaPlusOneInstance(g)
	inst.Lists[0] = inst.Lists[0][:1]
	if _, err := ListColorClique(inst, Options{}); err == nil ||
		!strings.Contains(err.Error(), "list") {
		t.Errorf("invalid instance accepted: %v", err)
	}
}

func TestLeafCountsAndSubtrees(t *testing.T) {
	// Colors with 2-bit batch at bit positions 3..2: 0b1100 = path 11, etc.
	cands := []uint32{0b0000, 0b0100, 0b1000, 0b1100, 0b1101}
	counts := leafCounts(cands, 3, 2)
	want := []uint64{1, 1, 1, 2}
	for p, w := range want {
		if counts[p] != w {
			t.Fatalf("K(%b) = %d, want %d (counts %v)", p, counts[p], w, counts)
		}
	}
	if s := subtreeCount(counts, 2, 0, 0); s != 5 {
		t.Errorf("S(ε) = %d, want 5", s)
	}
	if s := subtreeCount(counts, 2, 1, 1); s != 3 {
		t.Errorf("S(1) = %d, want 3", s)
	}
	if s := subtreeCount(counts, 2, 0b11, 2); s != 2 {
		t.Errorf("S(11) = %d, want 2", s)
	}
	filtered := filterByPath(append([]uint32(nil), cands...), 3, 2, 0b11)
	if len(filtered) != 2 || filtered[0] != 0b1100 {
		t.Errorf("filterByPath wrong: %v", filtered)
	}
}

// TestCliqueFasterThanCONGESTShape: the clique run should use far fewer
// rounds than D·logn·log²Δ (its whole point).
func TestCliqueRoundsModest(t *testing.T) {
	g := graph.MustRandomRegular(32, 4, 13)
	inst := graph.DeltaPlusOneInstance(g)
	res, err := ListColorClique(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Generous cap: O(logC·logΔ·iterations) with small constants.
	if res.Stats.Rounds > 4000 {
		t.Errorf("clique used %d rounds, far above expectation", res.Stats.Rounds)
	}
	t.Logf("clique rounds: %d", res.Stats.Rounds)
}

// TestCliqueStatsDeterministicAcrossShards is the clique port of the
// engine-rework regression: the sharded Exchange/RouteAll delivery must
// leave Stats and the produced coloring bit-identical to the sequential
// (workers=1) simulator. Run under -race in CI to guard the lock-free
// scatter phases.
func TestCliqueStatsDeterministicAcrossShards(t *testing.T) {
	g := graph.MustRandomRegular(28, 5, 17)
	inst := graph.DeltaPlusOneInstance(g)
	gl := graph.GNP(24, 0.3, 9)
	instL, err := graph.RandomListInstance(gl, 64, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, inst := range map[string]*graph.Instance{"regular5": inst, "gnplists": instL} {
		t.Run(name, func(t *testing.T) {
			run := func(shards int) *Result {
				engine.SetForceShards(shards)
				defer engine.SetForceShards(0)
				res, err := ListColorClique(inst, Options{})
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				return res
			}
			serial := run(1)
			for _, shards := range []int{3, 8} {
				res := run(shards)
				if res.Stats != serial.Stats {
					t.Errorf("shards=%d stats %+v != serial %+v", shards, res.Stats, serial.Stats)
				}
				if res.Iterations != serial.Iterations || res.MaxBatch != serial.MaxBatch ||
					res.LocalFinishUncolored != serial.LocalFinishUncolored {
					t.Errorf("shards=%d trajectory diverged from serial", shards)
				}
				for v := range serial.Colors {
					if res.Colors[v] != serial.Colors[v] {
						t.Fatalf("shards=%d node %d color %d != serial %d", shards, v, res.Colors[v], serial.Colors[v])
					}
				}
			}
		})
	}
}

// TestRouteAllDeterministicAcrossShards checks the Lenzen-routing
// primitive alone: identical receipt sequences and Stats at 1 vs many
// workers.
func TestRouteAllDeterministicAcrossShards(t *testing.T) {
	const n = 30
	build := func() [][]Routed {
		out := make([][]Routed, n)
		for v := 0; v < n; v++ {
			for k := 0; k <= (v*5)%4; k++ {
				out[v] = append(out[v], Routed{Dst: (v*11 + k*7) % n, Payload: Message{uint64(v), uint64(k)}})
			}
		}
		return out
	}
	run := func(shards int) ([][]Received, Stats) {
		engine.SetForceShards(shards)
		defer engine.SetForceShards(0)
		s := NewSim(n, 4)
		defer s.Close()
		in, err := s.RouteAll(build())
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return in, s.Stats
	}
	serialIn, serialStats := run(1)
	for _, shards := range []int{3, 8} {
		in, st := run(shards)
		if st != serialStats {
			t.Errorf("shards=%d stats %+v != serial %+v", shards, st, serialStats)
		}
		for v := range serialIn {
			if len(in[v]) != len(serialIn[v]) {
				t.Fatalf("shards=%d node %d got %d messages, want %d", shards, v, len(in[v]), len(serialIn[v]))
			}
			for i := range serialIn[v] {
				a, b := in[v][i], serialIn[v][i]
				if a.Src != b.Src || len(a.Payload) != len(b.Payload) || a.Payload[0] != b.Payload[0] || a.Payload[1] != b.Payload[1] {
					t.Fatalf("shards=%d node %d message %d diverged", shards, v, i)
				}
			}
		}
	}
}
