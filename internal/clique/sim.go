// Package clique simulates the UNICAST CONGESTED CLIQUE model [LPPP03]
// and implements the paper's Theorem 1.3: deterministic
// (degree+1)-list coloring in O(loglogΔ·logC) rounds. The communication
// graph is complete — in each round every node may send a *different*
// O(log n)-bit message to every other node — while the input graph G is
// arbitrary.
//
// The simulator is a global round-loop (unlike the CONGEST package there
// is no topology to exploit with per-node goroutines); the algorithm
// keeps all per-node knowledge in per-node structs and moves information
// only through Exchange/RouteAll, so the model's information constraints
// hold by construction and every claimed O(1)-round step is paid for
// explicitly.
//
// Lenzen's deterministic routing theorem [Len13] is modeled by RouteAll:
// the primitive checks its precondition (every node sends at most n and
// receives at most n messages) and then delivers in 2 accounted rounds.
// The internals of Lenzen routing are outside the paper's scope (used as
// a black box); the precondition check keeps the accounting honest —
// violating workloads fail loudly instead of getting free bandwidth.
package clique

import (
	"fmt"
	"sort"
)

// Message is a single clique message (counted words of Θ(log n) bits).
type Message []uint64

// Stats aggregates measured costs.
type Stats struct {
	Rounds          int
	Messages        int64
	Words           int64
	MaxMessageWords int
}

// Sim is one congested-clique simulation.
type Sim struct {
	n        int
	maxWords int
	Stats    Stats
}

// NewSim creates a simulator for n nodes with the given per-message word
// cap (0 = default 4).
func NewSim(n, maxWords int) *Sim {
	if maxWords == 0 {
		maxWords = 4
	}
	return &Sim{n: n, maxWords: maxWords}
}

// MaxWords returns the per-message bandwidth cap.
func (s *Sim) MaxWords() int { return s.maxWords }

// Exchange performs one round: out[v][u] is the message from v to u.
// It enforces one message per ordered pair and the word cap, and returns
// in[v][u] = message received by v from u.
func (s *Sim) Exchange(out []map[int]Message) ([]map[int]Message, error) {
	if len(out) != s.n {
		return nil, fmt.Errorf("clique: Exchange with %d outboxes for %d nodes", len(out), s.n)
	}
	s.Stats.Rounds++
	in := make([]map[int]Message, s.n)
	for v := range in {
		in[v] = map[int]Message{}
	}
	for v, box := range out {
		for u, msg := range box {
			if u == v || u < 0 || u >= s.n {
				return nil, fmt.Errorf("clique: node %d sent to invalid destination %d", v, u)
			}
			if len(msg) == 0 || len(msg) > s.maxWords {
				return nil, fmt.Errorf("clique: node %d message of %d words (cap %d)", v, len(msg), s.maxWords)
			}
			in[u][v] = msg
			s.Stats.Messages++
			s.Stats.Words += int64(len(msg))
			if len(msg) > s.Stats.MaxMessageWords {
				s.Stats.MaxMessageWords = len(msg)
			}
		}
	}
	return in, nil
}

// Routed is a message with an explicit destination, for RouteAll.
type Routed struct {
	Dst     int
	Payload Message
}

// Received is a routed message with its source.
type Received struct {
	Src     int
	Payload Message
}

// RouteAll models Lenzen's routing: any point-to-point pattern in which
// every node sends ≤ n and receives ≤ n messages is delivered in 2
// rounds; larger workloads are split into ⌈max/n⌉ such batches and
// charged 2 rounds each, so a Θ(c·n) workload costs Θ(c) rounds exactly
// as in [Len13].
func (s *Sim) RouteAll(out [][]Routed) ([][]Received, error) {
	if len(out) != s.n {
		return nil, fmt.Errorf("clique: RouteAll with %d outboxes for %d nodes", len(out), s.n)
	}
	recvCount := make([]int, s.n)
	maxLoad := 1
	for v, msgs := range out {
		if len(msgs) > maxLoad {
			maxLoad = len(msgs)
		}
		for _, m := range msgs {
			if m.Dst < 0 || m.Dst >= s.n {
				return nil, fmt.Errorf("clique: node %d routes to invalid destination %d", v, m.Dst)
			}
			if len(m.Payload) == 0 || len(m.Payload) > s.maxWords {
				return nil, fmt.Errorf("clique: node %d routed message of %d words (cap %d)",
					v, len(m.Payload), s.maxWords)
			}
			recvCount[m.Dst]++
		}
	}
	for _, c := range recvCount {
		if c > maxLoad {
			maxLoad = c
		}
	}
	batches := (maxLoad + s.n - 1) / s.n
	s.Stats.Rounds += 2 * batches // Lenzen routing cost (substitution; see DESIGN.md)
	in := make([][]Received, s.n)
	for v, msgs := range out {
		for _, m := range msgs {
			s.Stats.Messages++
			s.Stats.Words += int64(len(m.Payload))
			if len(m.Payload) > s.Stats.MaxMessageWords {
				s.Stats.MaxMessageWords = len(m.Payload)
			}
			in[m.Dst] = append(in[m.Dst], Received{Src: v, Payload: m.Payload})
		}
	}
	for v := range in {
		sort.SliceStable(in[v], func(i, j int) bool { return in[v][i].Src < in[v][j].Src })
	}
	return in, nil
}
