// Package clique simulates the UNICAST CONGESTED CLIQUE model [LPPP03]
// and implements the paper's Theorem 1.3: deterministic
// (degree+1)-list coloring in O(loglogΔ·logC) rounds. The communication
// graph is complete — in each round every node may send a *different*
// O(log n)-bit message to every other node — while the input graph G is
// arbitrary.
//
// The simulator is data-parallel rather than goroutine-per-node (there
// is no topology to exploit; the algorithm keeps all per-node knowledge
// in per-node structs and moves information only through
// Exchange/RouteAll, so the model's information constraints hold by
// construction and every claimed O(1)-round step is paid for
// explicitly). Both primitives run on the shared sharded round engine
// (internal/engine): outboxes are flat slices of directed messages, and
// an engine.Scatter pass moves them — sender-sharded routing, then
// receiver-sharded delivery in ascending sender order with per-worker
// stats — so delivery is allocation-lean and bit-for-bit independent of
// the worker count.
//
// Lenzen's deterministic routing theorem [Len13] is modeled by RouteAll:
// the primitive checks its precondition (every node sends at most n and
// receives at most n messages) and then delivers in 2 accounted rounds.
// The internals of Lenzen routing are outside the paper's scope (used as
// a black box); the precondition check keeps the accounting honest —
// violating workloads fail loudly instead of getting free bandwidth.
package clique

import (
	"cmp"
	"fmt"
	"slices"

	"smallbandwidth/internal/engine"
)

// Message is a single clique message (counted words of Θ(log n) bits).
type Message = engine.Message

// Directed is one outgoing message with its destination; out[v] in
// Exchange is node v's flat outbox of these.
type Directed = engine.Directed

// Incoming is a delivered message with its sender; in[v] returned by
// Exchange is sorted by ascending sender.
type Incoming = engine.Incoming

// Stats aggregates measured costs.
type Stats = engine.Stats

// poolMin is the minimum number of nodes per delivery shard; below it
// the pool collapses to the inline sequential path.
const poolMin = 32

// Sim is one congested-clique simulation. Call Close when done: the
// engine pool's shard workers are persistent goroutines.
type Sim struct {
	n        int
	maxWords int
	Stats    Stats
	p        *engine.Pool
	inBuf    [][]Incoming // recycled inboxes: backing arrays live across rounds
}

// NewSim creates a simulator for n nodes with the given per-message word
// cap (0 = default 4).
func NewSim(n, maxWords int) *Sim {
	if maxWords == 0 {
		maxWords = 4
	}
	return &Sim{n: n, maxWords: maxWords}
}

// MaxWords returns the per-message bandwidth cap.
func (s *Sim) MaxWords() int { return s.maxWords }

// Close releases the engine pool. The Sim must not be used afterwards.
func (s *Sim) Close() {
	if s.p != nil {
		s.p.Close()
		s.p = nil
	}
}

func (s *Sim) pool() *engine.Pool {
	if s.p == nil {
		s.p = engine.NewPool(s.n, poolMin)
	}
	return s.p
}

// NewOut returns an empty outbox set for one Exchange round.
func NewOut(n int) [][]Directed { return make([][]Directed, n) }

// Lookup returns the message from node u in the sorted inbox box, if
// any (binary search over the ascending sender order).
func Lookup(box []Incoming, u int) (Message, bool) {
	i, ok := slices.BinarySearchFunc(box, u, func(m Incoming, u int) int {
		return cmp.Compare(m.From, u)
	})
	if !ok {
		return nil, false
	}
	return box[i].Payload, true
}

// Exchange performs one round: out[v] is node v's outbox of directed
// messages. It enforces one message per ordered pair and the word cap,
// and returns in[v] = the messages received by v, sorted by ascending
// sender. The returned inboxes are recycled: they are valid only until
// the next Exchange call on this Sim.
func (s *Sim) Exchange(out [][]Directed) ([][]Incoming, error) {
	if len(out) != s.n {
		return nil, fmt.Errorf("clique: Exchange with %d outboxes for %d nodes", len(out), s.n)
	}
	s.Stats.Rounds++
	p := s.pool()
	k := p.Shards()
	if s.inBuf == nil {
		s.inBuf = make([][]Incoming, s.n)
	}
	in := s.inBuf
	for v := range in {
		in[v] = in[v][:0]
	}
	sendErr := make([]error, k)
	recvErr := make([]error, k)
	wstats := make([]engine.WorkerStats, k)
	engine.Scatter(p,
		func(wid, v int, emit func(int, Message)) {
			if sendErr[wid] != nil {
				return
			}
			for _, d := range out[v] {
				u := int(d.To)
				if u == v || u < 0 || u >= s.n {
					sendErr[wid] = fmt.Errorf("clique: node %d sent to invalid destination %d", v, u)
					return
				}
				if len(d.Payload) == 0 || len(d.Payload) > s.maxWords {
					sendErr[wid] = fmt.Errorf("clique: node %d message of %d words (cap %d)", v, len(d.Payload), s.maxWords)
					return
				}
				wstats[wid].Note(len(d.Payload))
				emit(u, d.Payload)
			}
		},
		func(wid int, src, dst int32, msg Message) {
			box := in[dst]
			if len(box) > 0 && box[len(box)-1].From == int(src) {
				if recvErr[wid] == nil {
					recvErr[wid] = fmt.Errorf("clique: node %d sent twice to %d in one round", src, dst)
				}
				return
			}
			in[dst] = append(box, Incoming{From: int(src), Payload: msg})
		})
	for _, errs := range [2][]error{sendErr, recvErr} {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	s.Stats.MergeWorkers(wstats)
	return in, nil
}

// Routed is a message with an explicit destination, for RouteAll.
type Routed struct {
	Dst     int
	Payload Message
}

// Received is a routed message with its source.
type Received struct {
	Src     int
	Payload Message
}

// RouteAll models Lenzen's routing: any point-to-point pattern in which
// every node sends ≤ n and receives ≤ n messages is delivered in 2
// rounds; larger workloads are split into ⌈max/n⌉ such batches and
// charged 2 rounds each, so a Θ(c·n) workload costs Θ(c) rounds exactly
// as in [Len13]. in[v] is sorted by ascending source (ties in the
// sender's emission order).
func (s *Sim) RouteAll(out [][]Routed) ([][]Received, error) {
	if len(out) != s.n {
		return nil, fmt.Errorf("clique: RouteAll with %d outboxes for %d nodes", len(out), s.n)
	}
	p := s.pool()
	k := p.Shards()
	in := make([][]Received, s.n)
	sendErr := make([]error, k)
	wstats := make([]engine.WorkerStats, k)
	maxSent := make([]int, k)
	engine.Scatter(p,
		func(wid, v int, emit func(int, Message)) {
			if sendErr[wid] != nil {
				return
			}
			if len(out[v]) > maxSent[wid] {
				maxSent[wid] = len(out[v])
			}
			for _, m := range out[v] {
				if m.Dst < 0 || m.Dst >= s.n {
					sendErr[wid] = fmt.Errorf("clique: node %d routes to invalid destination %d", v, m.Dst)
					return
				}
				if len(m.Payload) == 0 || len(m.Payload) > s.maxWords {
					sendErr[wid] = fmt.Errorf("clique: node %d routed message of %d words (cap %d)",
						v, len(m.Payload), s.maxWords)
					return
				}
				wstats[wid].Note(len(m.Payload))
				emit(m.Dst, m.Payload)
			}
		},
		func(wid int, src, dst int32, msg Message) {
			in[dst] = append(in[dst], Received{Src: int(src), Payload: msg})
		})
	for _, err := range sendErr {
		if err != nil {
			return nil, err
		}
	}
	maxLoad := 1
	for _, m := range maxSent {
		if m > maxLoad {
			maxLoad = m
		}
	}
	for v := range in {
		if len(in[v]) > maxLoad {
			maxLoad = len(in[v])
		}
	}
	batches := (maxLoad + s.n - 1) / s.n
	s.Stats.Rounds += 2 * batches // Lenzen routing cost (substitution; see DESIGN.md)
	s.Stats.MergeWorkers(wstats)
	return in, nil
}
