package clique

import (
	"fmt"
	"math"
	"math/bits"

	"smallbandwidth/internal/gf2"
	"smallbandwidth/internal/graph"
)

// Options configures the Theorem 1.3 algorithm.
type Options struct {
	// MaxWords is the per-message bandwidth cap (0 = default 4).
	MaxWords int
	// BatchCap caps how many prefix bits are fixed per derandomization
	// batch once few nodes remain (0 = default 2). The paper's
	// acceleration fixes i bits when ≤ n/2^i nodes are uncolored.
	BatchCap int
	// LambdaCap caps the seed-segment width λ ≤ ⌊log₂ n⌋ (0 = default 16).
	LambdaCap int
	// ForceBatch, if > 0, fixes that many prefix bits per batch from the
	// first iteration regardless of the uncolored count — an ablation
	// knob for exercising the multi-bit machinery (the adaptive rule only
	// engages when the uncolored count lands in (n/Δ, n/4]).
	ForceBatch int
}

// Result reports the coloring and measured cost.
type Result struct {
	Colors []uint32
	Stats  Stats
	// Iterations is the number of partial-coloring iterations before the
	// residual subgraph was shipped to the leader.
	Iterations int
	// MaxBatch is the largest number of prefix bits fixed at once.
	MaxBatch int
	// LocalFinishUncolored is the number of uncolored nodes at the moment
	// the residual instance was solved locally at the leader (0 if the
	// iterations colored everything).
	LocalFinishUncolored int
}

// clqNode keeps one node's protocol state. Neighbor sets are sorted
// int32 slices, not maps: every iteration over them is in ascending
// order, so the floating-point accumulations of the derandomization are
// evaluated in one fixed order and the whole run is bit-deterministic.
type clqNode struct {
	id       int
	alive    bool
	colored  bool
	color    uint32
	list     []uint32
	cands    []uint32
	nbrs     []int32
	aliveNbr []int32 // still-uncolored G-neighbors, sorted
	conflict []int32 // conflict neighbors of the current iteration, sorted
	nbrK     map[int][]uint64
	phi      int
}

// ListColorClique solves the (degree+1)-list-coloring instance in the
// congested clique (Theorem 1.3): node IDs serve as the input coloring
// (seed length O(log n)); Ω(log n) seed bits are fixed per O(1) rounds by
// splitting the seed into segments whose 2^λ candidate assignments are
// evaluated by 2^λ responsible nodes in parallel; once ≤ n/2^i nodes
// remain uncolored, i prefix bits are fixed per batch; and once the
// uncolored subgraph has ≤ n edges it is routed to a leader (Lenzen) and
// solved locally.
func ListColorClique(inst *graph.Instance, opts Options) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	n := inst.G.N()
	if n == 0 {
		return &Result{}, nil
	}
	if opts.BatchCap == 0 {
		opts.BatchCap = 2
	}
	if opts.LambdaCap == 0 {
		opts.LambdaCap = 16
	}
	sim := NewSim(n, opts.MaxWords)
	defer sim.Close()
	delta := inst.G.MaxDegree()
	logC := bits.Len32(inst.C - 1)
	effLogC := max(logC, 1)
	// MIS-free accuracy (Section 4, "How to Avoid MIS"):
	// ε ≤ 1/(10·(Δ+1)²·⌈logC⌉).
	b := bits.Len64(10 * uint64(delta+1) * uint64(delta+1) * uint64(effLogC))
	a := max(bits.Len64(uint64(n-1)), 1)

	nodes := make([]*clqNode, n)
	for v := 0; v < n; v++ {
		nd := &clqNode{
			id:       v,
			alive:    true,
			list:     append([]uint32(nil), inst.Lists[v]...),
			nbrs:     inst.G.Neighbors(v),
			aliveNbr: append([]int32(nil), inst.G.Neighbors(v)...),
		}
		nodes[v] = nd
	}

	st := &cliqueRun{
		sim: sim, nodes: nodes, n: n, logC: logC, b: b, a: a,
		delta: delta, opts: opts, c: inst.C,
	}
	res := &Result{}
	for {
		u, deltaCur, err := st.statusRounds()
		if err != nil {
			return nil, err
		}
		if u == 0 {
			break
		}
		if u*max(deltaCur, 1) <= n {
			res.LocalFinishUncolored = u
			if err := st.localFinish(inst); err != nil {
				return nil, err
			}
			break
		}
		// Acceleration: with u ≤ n/2^i uncolored nodes, fix i bits at once.
		w := 1
		for w < opts.BatchCap && u*(1<<(w+1)) <= n && (w+1)*b <= 63 {
			w++
		}
		if opts.ForceBatch > 0 {
			w = opts.ForceBatch
			for w > 1 && w*b > 63 {
				w--
			}
		}
		if w > res.MaxBatch {
			res.MaxBatch = w
		}
		if err := st.iteration(w, deltaCur); err != nil {
			return nil, err
		}
		res.Iterations++
		if res.Iterations > 16*bits.Len(uint(n))+64 {
			return nil, fmt.Errorf("clique: iteration budget exceeded (progress guarantee violated)")
		}
	}
	colors := make([]uint32, n)
	for v, nd := range nodes {
		if !nd.colored {
			return nil, fmt.Errorf("clique: node %d left uncolored", v)
		}
		colors[v] = nd.color
	}
	if err := inst.VerifyColoring(colors); err != nil {
		return nil, fmt.Errorf("clique: coloring invalid: %w", err)
	}
	res.Colors = colors
	res.Stats = sim.Stats
	return res, nil
}

type cliqueRun struct {
	sim   *Sim
	nodes []*clqNode
	n     int
	logC  int
	b, a  int
	delta int
	c     uint32
	opts  Options
}

// statusRounds aggregates (uncolored count, max uncolored degree) at the
// leader and broadcasts them: 2 rounds.
func (st *cliqueRun) statusRounds() (int, int, error) {
	out := NewOut(st.n)
	for v, nd := range st.nodes {
		if v == 0 {
			continue
		}
		deg := 0
		if nd.alive {
			deg = len(nd.aliveNbr)
		}
		out[v] = append(out[v], Directed{To: 0, Payload: Message{boolW(nd.alive), uint64(deg)}})
	}
	in, err := st.sim.Exchange(out)
	if err != nil {
		return 0, 0, err
	}
	u, dmax := 0, 0
	if st.nodes[0].alive {
		u, dmax = 1, len(st.nodes[0].aliveNbr)
	}
	for _, m := range in[0] {
		if m.Payload[0] == 1 {
			u++
			dmax = max(dmax, int(m.Payload[1]))
		}
	}
	out = NewOut(st.n)
	for v := 1; v < st.n; v++ {
		out[0] = append(out[0], Directed{To: int32(v), Payload: Message{uint64(u), uint64(dmax)}})
	}
	if _, err := st.sim.Exchange(out); err != nil {
		return 0, 0, err
	}
	return u, dmax, nil
}

// iteration runs one partial-coloring pass fixing w bits per batch, then
// the MIS-free keep step, then the announcement round.
func (st *cliqueRun) iteration(w, deltaCur int) error {
	// Trim candidate lists to exactly (uncolored degree + 1) colors so
	// that ΣΦ₀ ≤ U − U/(Δ+1) (Equation (9) needs |L| ≤ Δ+1).
	for _, nd := range st.nodes {
		if !nd.alive {
			nd.cands = nil
			nd.conflict = nd.conflict[:0]
			continue
		}
		keep := min(len(nd.aliveNbr)+1, len(nd.list))
		nd.cands = append(nd.cands[:0], nd.list[:keep]...)
		nd.conflict = append(nd.conflict[:0], nd.aliveNbr...)
	}
	for fixed := 0; fixed < st.logC; {
		ww := min(w, st.logC-fixed)
		if err := st.runBatch(ww, fixed); err != nil {
			return err
		}
		fixed += ww
	}

	// MIS-free keep step: nodes with ≤ 1 conflict exchange membership;
	// the larger ID (or the unique V₁ member) keeps its candidate.
	out := NewOut(st.n)
	for v, nd := range st.nodes {
		nd.phi = len(nd.conflict)
		if nd.alive && nd.phi <= 1 {
			for _, u := range nd.conflict {
				out[v] = append(out[v], Directed{To: u, Payload: Message{1}})
			}
		}
	}
	in, err := st.sim.Exchange(out)
	if err != nil {
		return err
	}
	for v, nd := range st.nodes {
		if !nd.alive {
			continue
		}
		switch {
		case nd.phi == 0:
			nd.keepColor()
		case nd.phi == 1:
			partner := int(nd.conflict[0])
			_, partnerInV1 := Lookup(in[v], partner)
			if !partnerInV1 || v > partner {
				nd.keepColor()
			}
		}
	}

	// Announcement: colored nodes tell all still-uncolored G-neighbors.
	out = NewOut(st.n)
	for v, nd := range st.nodes {
		if nd.colored && nd.alive {
			// keepColor marks colored; alive flips below after announcing.
			for _, u := range nd.aliveNbr {
				out[v] = append(out[v], Directed{To: u, Payload: Message{uint64(nd.color)}})
			}
		}
	}
	in, err = st.sim.Exchange(out)
	if err != nil {
		return err
	}
	for v, nd := range st.nodes {
		if nd.colored {
			nd.alive = false
		}
		for _, m := range in[v] {
			nd.aliveNbr = graph.SortedRemove(nd.aliveNbr, m.From)
			if !nd.colored {
				nd.list = removeColor(nd.list, uint32(m.Payload[0]))
			}
		}
	}
	return nil
}

func (nd *clqNode) keepColor() {
	nd.color = nd.cands[0]
	nd.colored = true
}

// runBatch fixes the w prefix bits at positions
// [logC−fixed−w, logC−fixed) for every alive node, derandomizing the
// shared seed segment by segment with 2^λ responsible nodes per segment.
func (st *cliqueRun) runBatch(w, fixed int) error {
	m := max(st.a, w*st.b)
	if m > 63 {
		return fmt.Errorf("clique: hash degree %d exceeds 63", m)
	}
	fam, err := gf2.NewFamily(m, 2)
	if err != nil {
		return err
	}
	d := fam.SeedBits()
	hi := st.logC - fixed - 1 // most significant bit of this batch
	paths := 1 << w

	// Leaf counts K(p) and their exchange with conflict neighbors.
	for _, nd := range st.nodes {
		nd.nbrK = map[int][]uint64{}
		if !nd.alive {
			continue
		}
		nd.nbrK[nd.id] = leafCounts(nd.cands, hi, w)
	}
	chunk := st.sim.maxWords - 1
	for off := 0; off < paths; off += chunk {
		end := min(off+chunk, paths)
		out := NewOut(st.n)
		for v, nd := range st.nodes {
			if !nd.alive || len(nd.conflict) == 0 {
				continue
			}
			msg := make(Message, 0, 1+end-off)
			msg = append(msg, uint64(off))
			msg = append(msg, nd.nbrK[nd.id][off:end]...)
			for _, u := range nd.conflict {
				out[v] = append(out[v], Directed{To: u, Payload: msg})
			}
		}
		in, err := st.sim.Exchange(out)
		if err != nil {
			return err
		}
		for v, nd := range st.nodes {
			for _, rm := range in[v] {
				if !graph.SortedHas(nd.conflict, rm.From) {
					continue
				}
				if nd.nbrK[rm.From] == nil {
					nd.nbrK[rm.From] = make([]uint64, paths)
				}
				copy(nd.nbrK[rm.From][rm.Payload[0]:], rm.Payload[1:])
			}
		}
	}

	// Derandomize the seed segment by segment.
	lambda := max(1, min(min(bits.Len(uint(st.n))-1, d), st.opts.LambdaCap))
	basis := gf2.NewBasis()
	var seed gf2.Vec128
	for segStart := 0; segStart < d; segStart += lambda {
		segW := min(lambda, d-segStart)
		nAssign := 1 << segW

		// Every node evaluates its owned conflict edges for every
		// candidate assignment and sends each value to its responsible
		// node (1 round).
		out := NewOut(st.n)
		own := make([]float64, nAssign)
		sums := make([][]float64, st.n)
		for v, nd := range st.nodes {
			vals := make([]float64, nAssign)
			if nd.alive {
				for r := 0; r < nAssign; r++ {
					bs := basis.Clone()
					for t := 0; t < segW; t++ {
						bs.FixBit(segStart+t, r>>uint(t)&1 == 1)
					}
					for _, u32 := range nd.conflict {
						u := int(u32)
						if u < v {
							continue // owner is the smaller endpoint
						}
						vals[r] += st.edgeExp(bs, fam, nd, u, w)
					}
				}
			}
			for r := 0; r < nAssign; r++ {
				if r == v {
					own[r] += vals[r]
					continue
				}
				out[v] = append(out[v], Directed{To: int32(r), Payload: Message{uint64(r), math.Float64bits(vals[r])}})
			}
		}
		in, err := st.sim.Exchange(out)
		if err != nil {
			return err
		}
		for r := 0; r < nAssign && r < st.n; r++ {
			sums[r] = []float64{own[r]}
			for _, rm := range in[r] {
				sums[r][0] += math.Float64frombits(rm.Payload[1])
			}
		}
		// Responsible nodes forward to the leader (1 round).
		out = NewOut(st.n)
		for r := 1; r < nAssign; r++ {
			out[r] = append(out[r], Directed{To: 0, Payload: Message{uint64(r), math.Float64bits(sums[r][0])}})
		}
		in, err = st.sim.Exchange(out)
		if err != nil {
			return err
		}
		best, bestVal := 0, sums[0][0]
		for r := 1; r < nAssign; r++ {
			msg, ok := Lookup(in[0], r)
			if !ok {
				return fmt.Errorf("clique: responsible node %d did not report", r)
			}
			if v := math.Float64frombits(msg[1]); v < bestVal {
				best, bestVal = int(msg[0]), v
			}
		}
		// Broadcast the chosen assignment (1 round).
		out = NewOut(st.n)
		for v := 1; v < st.n; v++ {
			out[0] = append(out[0], Directed{To: int32(v), Payload: Message{uint64(best)}})
		}
		if _, err := st.sim.Exchange(out); err != nil {
			return err
		}
		for t := 0; t < segW; t++ {
			val := best>>uint(t)&1 == 1
			basis.FixBit(segStart+t, val)
			seed = seed.WithBit(segStart+t, val)
		}
	}

	// Every alive node runs its w sequential coins under the fixed seed,
	// extends its prefix, and exchanges the chosen path (1 round).
	chosen := make([]uint64, st.n)
	out := NewOut(st.n)
	for v, nd := range st.nodes {
		if !nd.alive {
			continue
		}
		path := uint64(0)
		counts := nd.nbrK[nd.id]
		for t := 0; t < w; t++ {
			den := subtreeCount(counts, w, int(path), t)
			num := subtreeCount(counts, w, int(path<<1|1), t+1)
			coin, err := gf2.NewCoinFromForms(
				fam.WindowForms(uint64(nd.id), m-(t+1)*st.b, st.b), num, den)
			if err != nil {
				return fmt.Errorf("clique: node %d sequential coin: %w", v, err)
			}
			path <<= 1
			if coin.Value(seed) {
				path |= 1
			}
		}
		chosen[v] = path
		nd.cands = filterByPath(nd.cands, hi, w, path)
		if len(nd.cands) == 0 {
			return fmt.Errorf("clique: node %d candidate set emptied", v)
		}
		for _, u := range nd.conflict {
			out[v] = append(out[v], Directed{To: u, Payload: Message{path}})
		}
	}
	in, err := st.sim.Exchange(out)
	if err != nil {
		return err
	}
	for v, nd := range st.nodes {
		if !nd.alive {
			continue
		}
		kept := nd.conflict[:0]
		for _, u := range nd.conflict {
			if msg, ok := Lookup(in[v], int(u)); ok && msg[0] == chosen[v] {
				kept = append(kept, u)
			}
		}
		nd.conflict = kept
	}
	return nil
}

// edgeExp computes E[X_e | basis] for the conflict edge (nd.id, u) over
// the w-bit batch: survival requires both endpoints to pick the same
// path, and each path contributes the reciprocal surviving list sizes.
func (st *cliqueRun) edgeExp(bs *gf2.Basis, fam *gf2.Family, nd *clqNode, u, w int) float64 {
	m := fam.Field().M()
	ku := nd.nbrK[nd.id]
	kv := nd.nbrK[u]
	if kv == nil {
		return 0
	}
	total := 0.0
	events := make([]gf2.CoinEvent, 0, 2*w)
	for p := 0; p < 1<<w; p++ {
		if ku[p] == 0 || kv[p] == 0 {
			continue
		}
		events = events[:0]
		ok := true
		for t := 0; t < w && ok; t++ {
			prefix := p >> uint(w-t) // first t bits of p
			want := p>>uint(w-1-t)&1 == 1
			for side, id := range [2]int{nd.id, u} {
				counts := ku
				if side == 1 {
					counts = kv
				}
				den := subtreeCount(counts, w, prefix, t)
				num := subtreeCount(counts, w, prefix<<1|1, t+1)
				if den == 0 {
					ok = false
					break
				}
				coin, err := gf2.NewCoinFromForms(
					fam.WindowForms(uint64(id), m-(t+1)*st.b, st.b), num, den)
				if err != nil {
					panic(err)
				}
				events = append(events, gf2.CoinEvent{Coin: coin, Want: want})
			}
		}
		if !ok {
			continue
		}
		if pr := gf2.ProbConj(bs, events); pr > 0 {
			total += pr * (1/float64(ku[p]) + 1/float64(kv[p]))
		}
	}
	return total
}

// localFinish routes the uncolored subgraph and lists to the leader,
// solves greedily there, and distributes the colors (Lenzen routing +
// one broadcast-style round).
func (st *cliqueRun) localFinish(inst *graph.Instance) error {
	out := make([][]Routed, st.n)
	for v, nd := range st.nodes {
		if !nd.alive {
			continue
		}
		for _, u := range nd.aliveNbr {
			if int(u) > v {
				out[v] = append(out[v], Routed{Dst: 0, Payload: Message{0, uint64(v), uint64(u)}})
			}
		}
		for _, c := range nd.list {
			out[v] = append(out[v], Routed{Dst: 0, Payload: Message{1, uint64(v), uint64(c)}})
		}
	}
	in, err := st.sim.RouteAll(out)
	if err != nil {
		return err
	}
	// Leader assembles and greedily list-colors the residual instance.
	type resid struct {
		nbrs []int
		list []uint32
	}
	sub := map[int]*resid{}
	get := func(v int) *resid {
		if sub[v] == nil {
			sub[v] = &resid{}
		}
		return sub[v]
	}
	if nd := st.nodes[0]; nd.alive {
		for _, u32 := range nd.aliveNbr {
			u := int(u32)
			get(0).nbrs = append(get(0).nbrs, u)
			get(u).nbrs = append(get(u).nbrs, 0)
		}
		get(0).list = append(get(0).list, nd.list...)
	}
	for _, rm := range in[0] {
		p := rm.Payload
		switch p[0] {
		case 0:
			v, u := int(p[1]), int(p[2])
			get(v).nbrs = append(get(v).nbrs, u)
			get(u).nbrs = append(get(u).nbrs, v)
		case 1:
			get(int(p[1])).list = append(get(int(p[1])).list, uint32(p[2]))
		}
	}
	assigned := map[int]uint32{}
	// Deterministic order: ascending node ID.
	ids := make([]int, 0, len(sub))
	//sbw:orderinvariant key collection only; ids is sorted before any order-sensitive use
	for v := range sub {
		ids = append(ids, v)
	}
	sortInts(ids)
	for _, v := range ids {
		taken := map[uint32]bool{}
		for _, u := range sub[v].nbrs {
			if c, ok := assigned[u]; ok {
				taken[c] = true
			}
		}
		found := false
		for _, c := range sub[v].list {
			if !taken[c] {
				assigned[v] = c
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("clique: leader greedy failed at node %d", v)
		}
	}
	// Distribute colors (1 round; the leader unicasts each node its
	// color) in ascending node ID — the sorted ids slice, not the
	// assigned map, so the leader's outbox order is deterministic.
	outX := NewOut(st.n)
	for _, v := range ids {
		c := assigned[v]
		if v == 0 {
			st.nodes[0].color = c
			st.nodes[0].colored = true
			st.nodes[0].alive = false
			continue
		}
		outX[0] = append(outX[0], Directed{To: int32(v), Payload: Message{uint64(c)}})
	}
	inX, err := st.sim.Exchange(outX)
	if err != nil {
		return err
	}
	for _, nd := range st.nodes {
		if msg, ok := Lookup(inX[nd.id], 0); ok {
			nd.color = uint32(msg[0])
			nd.colored = true
			nd.alive = false
		}
	}
	return nil
}

// leafCounts returns K(p) for every w-bit path p over the batch whose
// most significant bit position is hi.
func leafCounts(cands []uint32, hi, w int) []uint64 {
	counts := make([]uint64, 1<<w)
	for _, c := range cands {
		p := 0
		for t := 0; t < w; t++ {
			p = p<<1 | int(c>>uint(hi-t)&1)
		}
		counts[p]++
	}
	return counts
}

// subtreeCount returns S(q) = Σ_{p extends q} K(p) for a t-bit prefix q.
func subtreeCount(counts []uint64, w, q, t int) uint64 {
	var s uint64
	width := w - t
	base := q << uint(width)
	for i := 0; i < 1<<width; i++ {
		s += counts[base+i]
	}
	return s
}

// filterByPath keeps candidates whose batch bits equal path.
func filterByPath(cands []uint32, hi, w int, path uint64) []uint32 {
	out := cands[:0]
	for _, c := range cands {
		p := uint64(0)
		for t := 0; t < w; t++ {
			p = p<<1 | uint64(c>>uint(hi-t)&1)
		}
		if p == path {
			out = append(out, c)
		}
	}
	return out
}

func removeColor(list []uint32, c uint32) []uint32 {
	for i, x := range list {
		if x == c {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

func boolW(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
