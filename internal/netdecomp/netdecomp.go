// Package netdecomp builds the network decompositions with congestion of
// the paper's Definition 3.1, following the deterministic bit-by-bit
// cluster-merging construction of Rozhoň–Ghaffari [RG19] that Theorem 3.1
// cites, and provides the Corollary 1.2 driver that list-colors a graph
// in polylog(n) rounds by running Theorem 1.1 on the clusters of one
// color class at a time.
//
// Construction of one color class over the still-undecomposed nodes:
// every node starts as a singleton cluster labeled with its b = ⌈log n⌉
// bit ID. Label bits are processed one at a time; at bit i, clusters
// whose label has bit i = 1 are "red", the others "blue". Repeatedly,
// every red border node proposes to its smallest-labeled unfinished blue
// neighbor cluster; a blue cluster that would grow by at least a
// 1/(2b)-fraction absorbs all its proposers (they re-label and attach to
// its tree through the proposal edge), and otherwise it finishes the bit
// and its proposers are pruned to the next color class. Every red–blue
// conflict at bit i is resolved the iteration after it appears, so at the
// end of the phase adjacent surviving clusters agree on bit i — and, by
// the transitive-inheritance argument of [RG19], on all previous bits, so
// the clusters of one class are pairwise non-adjacent. Each blue cluster
// finishes each bit at most once and then prunes < |Y|/(2b) nodes, so at
// least half of the class's nodes survive; growth steps multiply a
// cluster's size by ≥ 1+1/(2b), bounding tree depth by O(log²n).
//
// Pruned-then-absorbed nodes remain in the trees of clusters they passed
// through, so trees may contain non-member (Steiner) nodes — this is
// exactly why Definition 3.1 only requires containment (i) and why the
// congestion parameter κ (iv) can exceed one. The builder runs
// centrally but charges CONGEST rounds according to the distributed
// schedule (per proposal iteration: one border exchange plus an
// aggregation and a decision broadcast over the deepest active tree);
// DESIGN.md documents this cost model.
package netdecomp

import (
	"cmp"
	"fmt"
	"math/bits"
	"slices"

	"smallbandwidth/internal/graph"
)

// Cluster is one cluster of the decomposition together with its
// associated tree (Definition 3.1 (i)–(ii)).
type Cluster struct {
	Label   uint64 // founder ID; unique
	Color   int    // color class, 1-based
	Members []int  // nodes of the cluster, sorted
	// TreeParent maps every tree node to its parent (the root maps to
	// -1). Tree nodes that are not members are Steiner relays.
	TreeParent map[int]int
	Root       int
	TreeDepth  int // max depth over tree nodes
}

// Decomposition is an (α, β)-network decomposition with congestion κ.
type Decomposition struct {
	G            *graph.Graph
	Colors       int // α
	Clusters     []*Cluster
	ClusterOf    []int // node -> index into Clusters
	Beta         int   // max tree diameter bound (2·max depth)
	Congestion   int   // measured κ
	ChargedRound int   // CONGEST rounds charged by the cost model
}

// Build computes the decomposition of g. The graph may be disconnected.
func Build(g *graph.Graph) (*Decomposition, error) {
	n := g.N()
	d := &Decomposition{G: g, ClusterOf: make([]int, n)}
	for i := range d.ClusterOf {
		d.ClusterOf[i] = -1
	}
	if n == 0 {
		return d, nil
	}
	b := bits.Len(uint(n - 1))
	if b < 1 {
		b = 1
	}
	remaining := make([]bool, n)
	remainingCount := n
	for v := range remaining {
		remaining[v] = true
	}
	maxClasses := b + 2
	for class := 1; remainingCount > 0; class++ {
		if class > maxClasses {
			return nil, fmt.Errorf("netdecomp: exceeded %d color classes (budget argument violated)", maxClasses)
		}
		clustered := d.buildClass(g, class, b, remaining)
		if clustered*2 < countTrue(remaining)+clustered {
			return nil, fmt.Errorf("netdecomp: class %d clustered %d of %d (< half)",
				class, clustered, countTrue(remaining)+clustered)
		}
		remainingCount -= clustered
		d.Colors = class
	}
	d.finish()
	return d, nil
}

// classState tracks one in-construction cluster, slice-backed: membership
// is implicit in (live, clusterOf) with only a size counter here, and the
// associated tree is three parallel append-only slices holding the nodes
// *absorbed* into the cluster (the founder's root entry is implicit).
// Nothing in the per-iteration hot path touches a map.
type classState struct {
	label  uint64
	size   int  // current member count
	maxDep int  // max tree depth
	done   bool // finished for the current bit
	used   bool // this founder had a cluster in this class

	treeNodes  []int32 // absorbed tree nodes, in absorption order
	treeParent []int32
	treeDepth  []int32
}

// chargeHook, when non-nil, observes every proposal iteration's charged
// tree depth next to the depth the pre-fix cost model would have charged
// (max over *all* surviving clusters, idle and finished ones included).
// Test instrumentation only; production runs leave it nil.
var chargeHook func(activeMaxDep, globalMaxDep int)

// proposal is one red border node's offer to join a blue cluster.
type proposal struct {
	target int32 // founder of the blue cluster proposed to
	node   int32
	via    int32
}

// buildClass runs the bit-by-bit construction over the remaining nodes,
// appends the surviving clusters with the given color, and unmarks their
// members from remaining. Returns the number of nodes clustered.
//
// The construction is centralized but avoids the former per-iteration
// Θ(n+m) full scans: only an *active frontier* of red border nodes is
// scanned for proposals each iteration. The frontier is exact — a red
// node can gain an eligible blue target only when one of its neighbors
// changes cluster (labels are fixed within a bit, done flags and deaths
// only disable), and every proposer is either absorbed or pruned the same
// iteration — so the frontier for iteration k+1 is precisely the red live
// neighbors of the nodes iteration k moved. Member depths of current
// members live in one flat array; the rare re-absorption into a cluster
// whose tree already holds the node (as a Steiner relay) is resolved
// through a (founder,node)-keyed map touched only on absorption events.
func (d *Decomposition) buildClass(g *graph.Graph, color, b int, remaining []bool) int {
	n := g.N()
	// The frontier and proposal scans run over the graph's flat CSR
	// arrays: one offset lookup per node and contiguous arc ranges, no
	// per-node slice headers in the inner loops.
	off, nbr := g.CSR()
	live := make([]bool, n)
	clusterOf := make([]int32, n) // founder ID, or -1
	states := make([]classState, n)
	memberDepth := make([]int32, n) // depth of v in its current cluster's tree
	// treeAt records (founder<<32|node) -> depth for absorbed tree nodes;
	// the founder's own root entry (depth 0) is implicit.
	treeAt := make(map[uint64]int32)
	treeKey := func(founder, node int32) uint64 {
		return uint64(uint32(founder))<<32 | uint64(uint32(node))
	}

	frontier := make([]int32, 0, n)
	inFrontier := make([]bool, n)
	var props []proposal
	var moved []int32

	for v := 0; v < n; v++ {
		clusterOf[v] = -1
		if remaining[v] {
			live[v] = true
			clusterOf[v] = int32(v)
			states[v] = classState{label: uint64(v), size: 1, used: true}
		}
	}

	for bit := 0; bit < b; bit++ {
		bitMask := uint64(1) << uint(bit)
		for v := 0; v < n; v++ {
			if states[v].used {
				states[v].done = false
			}
		}

		// Seed the frontier: live red-cluster nodes bordering a live node
		// of any other cluster (conservative: the scan below re-checks the
		// target's color and done flag).
		frontier = frontier[:0]
		for v := 0; v < n; v++ {
			if !live[v] || states[clusterOf[v]].label&bitMask == 0 {
				continue
			}
			for _, w := range nbr[off[v]:off[v+1]] {
				if live[w] && clusterOf[w] != clusterOf[v] {
					frontier = append(frontier, int32(v))
					inFrontier[v] = true
					break
				}
			}
		}

		for len(frontier) > 0 {
			// Collect proposals: each frontier node (ascending) offers to
			// its smallest-labeled live blue unfinished neighbor cluster.
			props = props[:0]
			for _, v := range frontier {
				inFrontier[v] = false
				if !live[v] {
					continue
				}
				bestTarget, bestVia := int32(-1), int32(-1)
				for _, w := range nbr[off[v]:off[v+1]] {
					if !live[w] || clusterOf[w] == clusterOf[v] {
						continue
					}
					y := &states[clusterOf[w]]
					if y.label&bitMask != 0 || y.done {
						continue
					}
					if bestTarget == -1 || y.label < states[bestTarget].label {
						bestTarget, bestVia = clusterOf[w], w
					}
				}
				if bestTarget >= 0 {
					props = append(props, proposal{bestTarget, v, bestVia})
				}
			}
			if len(props) == 0 {
				break
			}
			// Group by target: proposals arrive in ascending node order, so
			// a stable sort on the target yields, per target, exactly the
			// ascending-node order of the old full scan.
			slices.SortStableFunc(props, func(a, b proposal) int { return cmp.Compare(a.target, b.target) })

			// Charge the distributed cost of one iteration: border
			// exchange + tree aggregation + decision broadcast over the
			// deepest tree among this iteration's *target* clusters — the
			// only trees the aggregation and broadcast actually traverse
			// (idle and finished clusters exchange nothing).
			maxDep := 0
			for i := 0; i < len(props); i++ {
				if i == 0 || props[i].target != props[i-1].target {
					if md := states[props[i].target].maxDep; md > maxDep {
						maxDep = md
					}
				}
			}
			if chargeHook != nil {
				global := 0
				for f := 0; f < n; f++ {
					if states[f].used && states[f].size > 0 && states[f].maxDep > global {
						global = states[f].maxDep
					}
				}
				chargeHook(maxDep, global)
			}
			d.ChargedRound += 2 + 2*(maxDep+1)

			moved = moved[:0]
			for lo := 0; lo < len(props); {
				hi := lo
				for hi < len(props) && props[hi].target == props[lo].target {
					hi++
				}
				t := props[lo].target
				y := &states[t]
				if (hi-lo)*2*b >= y.size {
					// Grow: absorb all proposers.
					for _, pr := range props[lo:hi] {
						states[clusterOf[pr.node]].size--
						clusterOf[pr.node] = t
						y.size++
						switch depth, inTree := treeAt[treeKey(t, pr.node)]; {
						case pr.node == t:
							memberDepth[pr.node] = 0 // back in its founder's root slot
						case inTree:
							memberDepth[pr.node] = depth // was a Steiner relay here
						default:
							dep := memberDepth[pr.via] + 1
							y.treeNodes = append(y.treeNodes, pr.node)
							y.treeParent = append(y.treeParent, pr.via)
							y.treeDepth = append(y.treeDepth, dep)
							treeAt[treeKey(t, pr.node)] = dep
							memberDepth[pr.node] = dep
							if int(dep) > y.maxDep {
								y.maxDep = int(dep)
							}
						}
						moved = append(moved, pr.node)
					}
				} else {
					// Finish the bit: prune all proposers to later classes.
					y.done = true
					for _, pr := range props[lo:hi] {
						states[clusterOf[pr.node]].size--
						clusterOf[pr.node] = -1
						live[pr.node] = false
					}
				}
				lo = hi
			}

			// Next frontier: red live neighbors of the nodes that changed
			// cluster (the only nodes whose target eligibility can have
			// improved).
			frontier = frontier[:0]
			for _, v := range moved {
				for _, w := range nbr[off[v]:off[v+1]] {
					if live[w] && !inFrontier[w] && states[clusterOf[w]].label&bitMask != 0 {
						frontier = append(frontier, w)
						inFrontier[w] = true
					}
				}
			}
			slices.Sort(frontier)
		}
	}

	// Surviving clusters become this color class, ascending founder order;
	// member lists fill in ascending node order from the live survivors.
	clusterIdx := make([]int32, 0, n)
	for f := 0; f < n; f++ {
		st := &states[f]
		if !st.used || st.size == 0 {
			clusterIdx = append(clusterIdx, -1)
			continue
		}
		clusterIdx = append(clusterIdx, int32(len(d.Clusters)))
		parent := make(map[int]int, len(st.treeNodes)+1)
		parent[f] = -1
		for i, v := range st.treeNodes {
			parent[int(v)] = int(st.treeParent[i])
		}
		d.Clusters = append(d.Clusters, &Cluster{
			Label:      st.label,
			Color:      color,
			Members:    make([]int, 0, st.size),
			TreeParent: parent,
			Root:       f,
			TreeDepth:  st.maxDep,
		})
	}
	clustered := 0
	for v := 0; v < n; v++ {
		if !live[v] {
			continue
		}
		ci := clusterIdx[clusterOf[v]]
		c := d.Clusters[ci]
		c.Members = append(c.Members, v)
		remaining[v] = false
		d.ClusterOf[v] = int(ci)
		clustered++
	}
	return clustered
}

// finish computes β and the congestion κ.
func (d *Decomposition) finish() {
	type edgeColor struct {
		u, v  int
		color int
	}
	usage := map[edgeColor]int{}
	for _, c := range d.Clusters {
		if 2*c.TreeDepth > d.Beta {
			d.Beta = 2 * c.TreeDepth
		}
		//sbw:orderinvariant usage counts only ever grow, so the running Beta/Congestion maxima equal the maxima over the final counts in any order
		for v, p := range c.TreeParent {
			if p < 0 {
				continue
			}
			u, w := v, p
			if u > w {
				u, w = w, u
			}
			key := edgeColor{u, w, c.Color}
			usage[key]++
			if usage[key] > d.Congestion {
				d.Congestion = usage[key]
			}
		}
	}
}

// Validate checks Definition 3.1: (i) trees contain their clusters and
// are connected subtrees of G; (ii) tree diameter ≤ beta; (iii) clusters
// joined by an edge have different colors; additionally every node is in
// exactly one cluster.
func (d *Decomposition) Validate() error {
	g := d.G
	for v := 0; v < g.N(); v++ {
		if d.ClusterOf[v] < 0 || d.ClusterOf[v] >= len(d.Clusters) {
			return fmt.Errorf("netdecomp: node %d not assigned to a cluster", v)
		}
	}
	for ci, c := range d.Clusters {
		for _, v := range c.Members {
			if d.ClusterOf[v] != ci {
				return fmt.Errorf("netdecomp: membership mismatch at node %d", v)
			}
			if _, ok := c.TreeParent[v]; !ok {
				return fmt.Errorf("netdecomp: cluster %d member %d missing from its tree", ci, v)
			}
		}
		// Tree edges are graph edges; parents chain to the root.
		//sbw:orderinvariant validation: every entry either passes or fails the same checks; the nil-error outcome is order-independent
		for v, p := range c.TreeParent {
			if p == -1 {
				if v != c.Root {
					return fmt.Errorf("netdecomp: cluster %d has non-root %d without parent", ci, v)
				}
				continue
			}
			if !g.HasEdge(v, p) {
				return fmt.Errorf("netdecomp: cluster %d tree edge (%d,%d) not in G", ci, v, p)
			}
			steps := 0
			for u := v; u != c.Root; u = c.TreeParent[u] {
				if steps++; steps > g.N() {
					return fmt.Errorf("netdecomp: cluster %d tree has a cycle at %d", ci, v)
				}
				if _, ok := c.TreeParent[u]; !ok {
					return fmt.Errorf("netdecomp: cluster %d tree broken above %d", ci, v)
				}
			}
		}
		if 2*c.TreeDepth > d.Beta {
			return fmt.Errorf("netdecomp: cluster %d diameter exceeds beta", ci)
		}
	}
	var bad error
	g.Edges(func(u, v int) {
		cu, cv := d.Clusters[d.ClusterOf[u]], d.Clusters[d.ClusterOf[v]]
		if bad == nil && cu != cv && cu.Color == cv.Color {
			bad = fmt.Errorf("netdecomp: adjacent clusters %d,%d share color %d",
				d.ClusterOf[u], d.ClusterOf[v], cu.Color)
		}
	})
	return bad
}

func countTrue(b []bool) int {
	c := 0
	for _, v := range b {
		if v {
			c++
		}
	}
	return c
}
