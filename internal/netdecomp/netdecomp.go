// Package netdecomp builds the network decompositions with congestion of
// the paper's Definition 3.1, following the deterministic bit-by-bit
// cluster-merging construction of Rozhoň–Ghaffari [RG19] that Theorem 3.1
// cites, and provides the Corollary 1.2 driver that list-colors a graph
// in polylog(n) rounds by running Theorem 1.1 on the clusters of one
// color class at a time.
//
// Construction of one color class over the still-undecomposed nodes:
// every node starts as a singleton cluster labeled with its b = ⌈log n⌉
// bit ID. Label bits are processed one at a time; at bit i, clusters
// whose label has bit i = 1 are "red", the others "blue". Repeatedly,
// every red border node proposes to its smallest-labeled unfinished blue
// neighbor cluster; a blue cluster that would grow by at least a
// 1/(2b)-fraction absorbs all its proposers (they re-label and attach to
// its tree through the proposal edge), and otherwise it finishes the bit
// and its proposers are pruned to the next color class. Every red–blue
// conflict at bit i is resolved the iteration after it appears, so at the
// end of the phase adjacent surviving clusters agree on bit i — and, by
// the transitive-inheritance argument of [RG19], on all previous bits, so
// the clusters of one class are pairwise non-adjacent. Each blue cluster
// finishes each bit at most once and then prunes < |Y|/(2b) nodes, so at
// least half of the class's nodes survive; growth steps multiply a
// cluster's size by ≥ 1+1/(2b), bounding tree depth by O(log²n).
//
// Pruned-then-absorbed nodes remain in the trees of clusters they passed
// through, so trees may contain non-member (Steiner) nodes — this is
// exactly why Definition 3.1 only requires containment (i) and why the
// congestion parameter κ (iv) can exceed one. The builder runs
// centrally but charges CONGEST rounds according to the distributed
// schedule (per proposal iteration: one border exchange plus an
// aggregation and a decision broadcast over the deepest active tree);
// DESIGN.md documents this cost model.
package netdecomp

import (
	"fmt"
	"math/bits"
	"sort"

	"smallbandwidth/internal/graph"
)

// Cluster is one cluster of the decomposition together with its
// associated tree (Definition 3.1 (i)–(ii)).
type Cluster struct {
	Label   uint64 // founder ID; unique
	Color   int    // color class, 1-based
	Members []int  // nodes of the cluster, sorted
	// TreeParent maps every tree node to its parent (the root maps to
	// -1). Tree nodes that are not members are Steiner relays.
	TreeParent map[int]int
	Root       int
	TreeDepth  int // max depth over tree nodes
}

// Decomposition is an (α, β)-network decomposition with congestion κ.
type Decomposition struct {
	G            *graph.Graph
	Colors       int // α
	Clusters     []*Cluster
	ClusterOf    []int // node -> index into Clusters
	Beta         int   // max tree diameter bound (2·max depth)
	Congestion   int   // measured κ
	ChargedRound int   // CONGEST rounds charged by the cost model
}

// Build computes the decomposition of g. The graph may be disconnected.
func Build(g *graph.Graph) (*Decomposition, error) {
	n := g.N()
	d := &Decomposition{G: g, ClusterOf: make([]int, n)}
	for i := range d.ClusterOf {
		d.ClusterOf[i] = -1
	}
	if n == 0 {
		return d, nil
	}
	b := bits.Len(uint(n - 1))
	if b < 1 {
		b = 1
	}
	remaining := make([]bool, n)
	remainingCount := n
	for v := range remaining {
		remaining[v] = true
	}
	maxClasses := b + 2
	for class := 1; remainingCount > 0; class++ {
		if class > maxClasses {
			return nil, fmt.Errorf("netdecomp: exceeded %d color classes (budget argument violated)", maxClasses)
		}
		clustered := d.buildClass(g, class, b, remaining)
		if clustered*2 < countTrue(remaining)+clustered {
			return nil, fmt.Errorf("netdecomp: class %d clustered %d of %d (< half)",
				class, clustered, countTrue(remaining)+clustered)
		}
		remainingCount -= clustered
		d.Colors = class
	}
	d.finish()
	return d, nil
}

// classState tracks one in-construction cluster.
type classState struct {
	label   uint64
	members map[int]struct{}
	parent  map[int]int
	depth   map[int]int
	root    int
	maxDep  int
	done    bool // finished for the current bit
}

// buildClass runs the bit-by-bit construction over the remaining nodes,
// appends the surviving clusters with the given color, and unmarks their
// members from remaining. Returns the number of nodes clustered.
func (d *Decomposition) buildClass(g *graph.Graph, color, b int, remaining []bool) int {
	n := g.N()
	live := make([]bool, n)
	clusterOf := make([]int, n) // founder ID, or -1
	states := map[int]*classState{}
	for v := 0; v < n; v++ {
		clusterOf[v] = -1
		if remaining[v] {
			live[v] = true
			clusterOf[v] = v
			states[v] = &classState{
				label:   uint64(v),
				members: map[int]struct{}{v: {}},
				parent:  map[int]int{v: -1},
				depth:   map[int]int{v: 0},
				root:    v,
			}
		}
	}

	for bit := 0; bit < b; bit++ {
		for _, st := range states {
			st.done = false
		}
		for {
			// Collect proposals: red border node -> (target founder, via).
			type proposal struct{ node, via int }
			props := map[int][]proposal{}
			var targets []int
			for v := 0; v < n; v++ {
				if !live[v] {
					continue
				}
				x := states[clusterOf[v]]
				if x.label>>uint(bit)&1 == 0 {
					continue // blue
				}
				bestTarget, bestVia := -1, -1
				for _, w := range g.Neighbors(v) {
					if !live[w] || clusterOf[w] == clusterOf[v] {
						continue
					}
					y := states[clusterOf[w]]
					if y.label>>uint(bit)&1 == 1 || y.done {
						continue
					}
					if bestTarget == -1 || y.label < states[bestTarget].label {
						bestTarget, bestVia = clusterOf[w], int(w)
					}
				}
				if bestTarget >= 0 {
					if _, seen := props[bestTarget]; !seen {
						targets = append(targets, bestTarget)
					}
					props[bestTarget] = append(props[bestTarget], proposal{v, bestVia})
				}
			}
			if len(targets) == 0 {
				break
			}
			sort.Ints(targets)

			// Charge the distributed cost of one iteration: border
			// exchange + tree aggregation + decision broadcast.
			maxDep := 0
			for _, st := range states {
				if len(st.members) > 0 && st.maxDep > maxDep {
					maxDep = st.maxDep
				}
			}
			d.ChargedRound += 2 + 2*(maxDep+1)

			for _, t := range targets {
				y := states[t]
				p := props[t]
				if len(p)*2*b >= len(y.members) {
					// Grow: absorb all proposers.
					for _, pr := range p {
						x := states[clusterOf[pr.node]]
						delete(x.members, pr.node)
						clusterOf[pr.node] = t
						y.members[pr.node] = struct{}{}
						if _, inTree := y.parent[pr.node]; !inTree {
							y.parent[pr.node] = pr.via
							y.depth[pr.node] = y.depth[pr.via] + 1
							if y.depth[pr.node] > y.maxDep {
								y.maxDep = y.depth[pr.node]
							}
						}
					}
				} else {
					// Finish the bit: prune all proposers to later classes.
					y.done = true
					for _, pr := range p {
						x := states[clusterOf[pr.node]]
						delete(x.members, pr.node)
						clusterOf[pr.node] = -1
						live[pr.node] = false
					}
				}
			}
		}
	}

	// Surviving clusters become this color class.
	founders := make([]int, 0, len(states))
	for f, st := range states {
		if len(st.members) > 0 {
			founders = append(founders, f)
		}
	}
	sort.Ints(founders)
	clustered := 0
	for _, f := range founders {
		st := states[f]
		c := &Cluster{
			Label:      st.label,
			Color:      color,
			TreeParent: st.parent,
			Root:       st.root,
			TreeDepth:  st.maxDep,
		}
		for v := range st.members {
			c.Members = append(c.Members, v)
			remaining[v] = false
			d.ClusterOf[v] = len(d.Clusters)
			clustered++
		}
		sort.Ints(c.Members)
		d.Clusters = append(d.Clusters, c)
	}
	return clustered
}

// finish computes β and the congestion κ.
func (d *Decomposition) finish() {
	type edgeColor struct {
		u, v  int
		color int
	}
	usage := map[edgeColor]int{}
	for _, c := range d.Clusters {
		if 2*c.TreeDepth > d.Beta {
			d.Beta = 2 * c.TreeDepth
		}
		for v, p := range c.TreeParent {
			if p < 0 {
				continue
			}
			u, w := v, p
			if u > w {
				u, w = w, u
			}
			key := edgeColor{u, w, c.Color}
			usage[key]++
			if usage[key] > d.Congestion {
				d.Congestion = usage[key]
			}
		}
	}
}

// Validate checks Definition 3.1: (i) trees contain their clusters and
// are connected subtrees of G; (ii) tree diameter ≤ beta; (iii) clusters
// joined by an edge have different colors; additionally every node is in
// exactly one cluster.
func (d *Decomposition) Validate() error {
	g := d.G
	for v := 0; v < g.N(); v++ {
		if d.ClusterOf[v] < 0 || d.ClusterOf[v] >= len(d.Clusters) {
			return fmt.Errorf("netdecomp: node %d not assigned to a cluster", v)
		}
	}
	for ci, c := range d.Clusters {
		for _, v := range c.Members {
			if d.ClusterOf[v] != ci {
				return fmt.Errorf("netdecomp: membership mismatch at node %d", v)
			}
			if _, ok := c.TreeParent[v]; !ok {
				return fmt.Errorf("netdecomp: cluster %d member %d missing from its tree", ci, v)
			}
		}
		// Tree edges are graph edges; parents chain to the root.
		for v, p := range c.TreeParent {
			if p == -1 {
				if v != c.Root {
					return fmt.Errorf("netdecomp: cluster %d has non-root %d without parent", ci, v)
				}
				continue
			}
			if !g.HasEdge(v, p) {
				return fmt.Errorf("netdecomp: cluster %d tree edge (%d,%d) not in G", ci, v, p)
			}
			steps := 0
			for u := v; u != c.Root; u = c.TreeParent[u] {
				if steps++; steps > g.N() {
					return fmt.Errorf("netdecomp: cluster %d tree has a cycle at %d", ci, v)
				}
				if _, ok := c.TreeParent[u]; !ok {
					return fmt.Errorf("netdecomp: cluster %d tree broken above %d", ci, v)
				}
			}
		}
		if 2*c.TreeDepth > d.Beta {
			return fmt.Errorf("netdecomp: cluster %d diameter exceeds beta", ci)
		}
	}
	var bad error
	g.Edges(func(u, v int) {
		cu, cv := d.Clusters[d.ClusterOf[u]], d.Clusters[d.ClusterOf[v]]
		if bad == nil && cu != cv && cu.Color == cv.Color {
			bad = fmt.Errorf("netdecomp: adjacent clusters %d,%d share color %d",
				d.ClusterOf[u], d.ClusterOf[v], cu.Color)
		}
	})
	return bad
}

func countTrue(b []bool) int {
	c := 0
	for _, v := range b {
		if v {
			c++
		}
	}
	return c
}
