package netdecomp

import (
	"fmt"

	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/core"
	"smallbandwidth/internal/graph"
)

// DecompResult is the outcome of the Corollary 1.2 pipeline.
type DecompResult struct {
	Colors []uint32
	Decomp *Decomposition
	// ChargedRounds follows the paper's accounting: decomposition
	// construction + per color class the maximum cluster coloring rounds
	// multiplied by the measured congestion κ (same-color cluster trees
	// sharing an edge pipeline their messages), plus one global exchange
	// round between consecutive classes (classes − 1 in total: after the
	// final class there is nothing left to update).
	ChargedRounds int
	// ClassRounds[c] is the max rounds over the clusters of class c+1 —
	// with the batched execution, directly the engine rounds of class
	// c+1's single run (a cluster's nodes exit when their cluster is
	// colored, so the run lasts exactly as long as its slowest cluster).
	ClassRounds []int
	// ClassStats[c] is the full engine measurement of class c+1's run:
	// Rounds is the max over the class's clusters (components), while
	// Messages/Words sum over them.
	ClassStats []congest.Stats
	Messages   int64
	Words      int64
}

// ListColorDecomposed solves the (degree+1)-list-coloring instance with
// the Corollary 1.2 pipeline: build an (O(log n), O(log³n))-network
// decomposition with congestion (Theorem 3.1 [RG19]), then iterate
// through its color classes and apply the Theorem 1.1 algorithm to all
// clusters of one class in parallel, updating lists between classes.
// Unlike Theorem 1.1 its cost is polylog(n) independent of the diameter.
//
// Each class executes as ONE sharded engine run: clusters of one class
// are pairwise non-adjacent (Definition 3.1 (iii)), so the subgraph
// induced by all their members is their disjoint union, and the
// component-aware core.ListColorCONGEST runs every cluster concurrently —
// per-cluster BFS roots, per-cluster converge() aggregation, staggered
// exits. The run's Rounds is the max over the class's clusters and its
// Messages/Words are sums, which is exactly the "all clusters of one
// class in parallel" accounting the corollary charges. Sub-instance lists
// are copied at the boundary; the caller's inst.Lists are never aliased
// into a run.
func ListColorDecomposed(inst *graph.Instance, opts core.Options) (*DecompResult, error) {
	return listColorDecomposed(inst, opts, true, nil, nil)
}

// ListColorDecomposedSeq is the pre-batching reference pipeline: one
// sequential engine spin-up per cluster per connected component of the
// cluster's member-induced subgraph, exactly as the seed implementation
// scheduled it. It exists as the recorded baseline of `benchtables
// -decomp` and as a differential oracle in tests; new callers want
// ListColorDecomposed.
func ListColorDecomposedSeq(inst *graph.Instance, opts core.Options) (*DecompResult, error) {
	return listColorDecomposed(inst, opts, false, nil, nil)
}

// listColorDecomposed runs the pipeline. onCk, when non-nil, receives a
// PipelineCheckpoint after every class boundary (class run plus the
// between-class exchange); resume, when non-nil, restores the pipeline
// at such a boundary instead of starting at class 1 (see checkpoint.go).
func listColorDecomposed(inst *graph.Instance, opts core.Options, batched bool, onCk func(*PipelineCheckpoint), resume *PipelineCheckpoint) (*DecompResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	d, err := Build(inst.G)
	if err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("netdecomp: decomposition invalid: %w", err)
	}

	n := inst.G.N()
	colors := make([]uint32, n)
	colored := make([]bool, n)
	// Working copy of the lists; colors taken by earlier classes are
	// removed before a node's own class runs.
	lists := make([][]uint32, n)
	for v := range lists {
		lists[v] = append([]uint32(nil), inst.Lists[v]...)
	}

	res := &DecompResult{Decomp: d, ChargedRounds: d.ChargedRound}
	kappa := d.Congestion
	if kappa < 1 {
		kappa = 1
	}

	start := 1
	if resume != nil {
		// The decomposition is rebuilt deterministically from the graph, so
		// the checkpoint carries only the pipeline's own progress: the
		// already-charged accounting and the post-exchange coloring state.
		if err := restorePipeline(inst, d, resume, colors, colored, lists, res); err != nil {
			return nil, err
		}
		start = resume.Class + 1
	}

	for class := start; class <= d.Colors; class++ {
		var st congest.Stats
		if batched {
			st, err = runClassBatched(inst, d, class, lists, colors, colored, opts)
		} else {
			st, err = runClassSequential(inst, d, class, lists, colors, colored, opts)
		}
		if err != nil {
			return nil, fmt.Errorf("netdecomp: class %d: %w", class, err)
		}
		res.ClassRounds = append(res.ClassRounds, st.Rounds)
		res.ClassStats = append(res.ClassStats, st)
		res.Messages += st.Messages
		res.Words += st.Words
		res.ChargedRounds += st.Rounds * kappa

		// Global exchange between classes: uncolored nodes remove the
		// colors just taken by colored neighbors. After the final class
		// every node is colored, so there is no exchange to charge.
		if class < d.Colors {
			res.ChargedRounds++
			for v := 0; v < n; v++ {
				if colored[v] {
					continue
				}
				for _, w := range inst.G.Neighbors(v) {
					if colored[w] && d.Clusters[d.ClusterOf[int(w)]].Color == class {
						lists[v] = removeColor(lists[v], colors[w])
					}
				}
			}
		}
		if onCk != nil {
			onCk(capturePipeline(class, colors, colored, lists, res))
		}
	}
	for v := 0; v < n; v++ {
		if !colored[v] {
			return nil, fmt.Errorf("netdecomp: node %d left uncolored", v)
		}
	}
	if err := inst.VerifyColoring(colors); err != nil {
		return nil, fmt.Errorf("netdecomp: coloring invalid: %w", err)
	}
	res.Colors = colors
	return res, nil
}

// runClassBatched colors every cluster of one color class in a single
// disjoint-union engine run and reports that run's Stats (Rounds already
// max-over-clusters, Messages/Words already summed by the engine).
func runClassBatched(inst *graph.Instance, d *Decomposition, class int, lists [][]uint32, colors []uint32, colored []bool, opts core.Options) (congest.Stats, error) {
	var members []int
	for _, c := range d.Clusters {
		if c.Color == class {
			members = append(members, c.Members...)
		}
	}
	sub, orig := inst.G.InducedSubgraph(members)
	subLists := make([][]uint32, sub.N())
	for i, v := range orig {
		subLists[i] = append([]uint32(nil), lists[v]...)
	}
	subInst := &graph.Instance{G: sub, C: inst.C, Lists: subLists}
	r, err := core.ListColorCONGEST(subInst, opts)
	if err != nil {
		return congest.Stats{}, err
	}
	if !r.Done {
		return congest.Stats{}, fmt.Errorf("class run did not finish")
	}
	for i, v := range orig {
		colors[v] = r.Colors[i]
		colored[v] = true
	}
	return r.Stats, nil
}

// runClassSequential colors the class cluster by cluster, component by
// component, each in its own engine run, and folds the per-run stats
// into the parallel-composition shape (max rounds, summed traffic).
func runClassSequential(inst *graph.Instance, d *Decomposition, class int, lists [][]uint32, colors []uint32, colored []bool, opts core.Options) (congest.Stats, error) {
	var total congest.Stats
	for _, c := range d.Clusters {
		if c.Color != class {
			continue
		}
		sub, orig := inst.G.InducedSubgraph(c.Members)
		for _, comp := range sub.ConnectedComponents() {
			subsub, subOrig := sub.InducedSubgraph(comp)
			compLists := make([][]uint32, subsub.N())
			compOrig := make([]int, subsub.N())
			for i, sv := range subOrig {
				v := orig[sv]
				compOrig[i] = v
				compLists[i] = append([]uint32(nil), lists[v]...)
			}
			subInst := &graph.Instance{G: subsub, C: inst.C, Lists: compLists}
			r, err := core.ListColorCONGEST(subInst, opts)
			if err != nil {
				return congest.Stats{}, err
			}
			if !r.Done {
				return congest.Stats{}, fmt.Errorf("cluster run did not finish")
			}
			for i, v := range compOrig {
				colors[v] = r.Colors[i]
				colored[v] = true
			}
			if r.Stats.Rounds > total.Rounds {
				total.Rounds = r.Stats.Rounds
			}
			total.Messages += r.Stats.Messages
			total.Words += r.Stats.Words
			if r.Stats.MaxMessageWords > total.MaxMessageWords {
				total.MaxMessageWords = r.Stats.MaxMessageWords
			}
		}
	}
	return total, nil
}

func removeColor(list []uint32, c uint32) []uint32 {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(list) && list[lo] == c {
		return append(list[:lo], list[lo+1:]...)
	}
	return list
}
