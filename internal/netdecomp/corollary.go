package netdecomp

import (
	"fmt"

	"smallbandwidth/internal/core"
	"smallbandwidth/internal/graph"
)

// DecompResult is the outcome of the Corollary 1.2 pipeline.
type DecompResult struct {
	Colors []uint32
	Decomp *Decomposition
	// ChargedRounds follows the paper's accounting: decomposition
	// construction + per color class the maximum cluster coloring rounds
	// multiplied by the measured congestion κ (same-color cluster trees
	// sharing an edge pipeline their messages), plus one global exchange
	// round between classes.
	ChargedRounds int
	// ClassRounds[c] is the max rounds over the clusters of class c+1.
	ClassRounds []int
	Messages    int64
}

// ListColorDecomposed solves the (degree+1)-list-coloring instance with
// the Corollary 1.2 pipeline: build an (O(log n), O(log³n))-network
// decomposition with congestion (Theorem 3.1 [RG19]), then iterate
// through its color classes and apply the Theorem 1.1 algorithm to all
// clusters of one class in parallel, updating lists between classes.
// Unlike Theorem 1.1 its cost is polylog(n) independent of the diameter.
func ListColorDecomposed(inst *graph.Instance, opts core.Options) (*DecompResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	d, err := Build(inst.G)
	if err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("netdecomp: decomposition invalid: %w", err)
	}

	n := inst.G.N()
	colors := make([]uint32, n)
	colored := make([]bool, n)
	// Working copy of the lists; colors taken by earlier classes are
	// removed before a node's own class runs.
	lists := make([][]uint32, n)
	for v := range lists {
		lists[v] = append([]uint32(nil), inst.Lists[v]...)
	}

	res := &DecompResult{Decomp: d, ChargedRounds: d.ChargedRound}
	kappa := d.Congestion
	if kappa < 1 {
		kappa = 1
	}

	for class := 1; class <= d.Colors; class++ {
		classMax := 0
		for _, c := range d.Clusters {
			if c.Color != class {
				continue
			}
			sub, orig := inst.G.InducedSubgraph(c.Members)
			subLists := make([][]uint32, sub.N())
			for i, v := range orig {
				subLists[i] = lists[v]
			}
			subInst := &graph.Instance{G: sub, C: inst.C, Lists: subLists}
			if err := subInst.Validate(); err != nil {
				return nil, fmt.Errorf("netdecomp: class %d cluster instance invalid: %w", class, err)
			}
			r, err := core.ListColorComponents(subInst, opts)
			if err != nil {
				return nil, fmt.Errorf("netdecomp: class %d cluster failed: %w", class, err)
			}
			if !r.Done {
				return nil, fmt.Errorf("netdecomp: class %d cluster did not finish", class)
			}
			for i, v := range orig {
				colors[v] = r.Colors[i]
				colored[v] = true
			}
			if r.Stats.Rounds > classMax {
				classMax = r.Stats.Rounds
			}
			res.Messages += r.Stats.Messages
		}
		res.ClassRounds = append(res.ClassRounds, classMax)
		res.ChargedRounds += classMax*kappa + 1

		// Global exchange: uncolored nodes remove the colors just taken
		// by colored neighbors.
		for v := 0; v < n; v++ {
			if colored[v] {
				continue
			}
			for _, w := range inst.G.Neighbors(v) {
				if colored[w] && d.Clusters[d.ClusterOf[int(w)]].Color == class {
					lists[v] = removeColor(lists[v], colors[w])
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if !colored[v] {
			return nil, fmt.Errorf("netdecomp: node %d left uncolored", v)
		}
	}
	if err := inst.VerifyColoring(colors); err != nil {
		return nil, fmt.Errorf("netdecomp: coloring invalid: %w", err)
	}
	res.Colors = colors
	return res, nil
}

func removeColor(list []uint32, c uint32) []uint32 {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(list) && list[lo] == c {
		return append(list[:lo], list[lo+1:]...)
	}
	return list
}
