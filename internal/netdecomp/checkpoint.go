package netdecomp

// Checkpoint/restore for the Corollary 1.2 pipeline. The pipeline's
// natural consistent cuts are its class boundaries: after class c's
// engine run and the between-class exchange, the whole state of the
// computation is the working lists, the colors taken so far, and the
// cost accounting — no engine run is in flight. A PipelineCheckpoint
// captures exactly that, and a resumed pipeline rebuilds the (fully
// deterministic) decomposition from the graph and continues at class
// c+1, finishing with bit-identical Colors, ChargedRounds, and
// per-class Stats.

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/core"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/snapshot"
)

// decompCheckpointModel fingerprints the pipeline a checkpoint belongs
// to; a resume refuses state from a different algorithm.
const decompCheckpointModel = "netdecomp/corollary12/v1"

// PipelineCheckpoint is the pipeline's complete state at a class
// boundary: classes 1..Class have run and their exchange (if any) is
// applied. Class == Decomposition.Colors marks a finished pipeline.
type PipelineCheckpoint struct {
	Class         int
	Colors        []uint32
	Colored       []bool
	Lists         [][]uint32 // working lists after the exchange
	ChargedRounds int
	ClassRounds   []int
	ClassStats    []congest.Stats
	Messages      int64
	Words         int64
}

// Checkpoint bundles a resumable pipeline run: the instance, the
// options it ran under, and the class-boundary state.
type Checkpoint struct {
	Inst  *graph.Instance
	Opts  core.Options
	State *PipelineCheckpoint
}

// ListColorDecomposedResumable is ListColorDecomposed with
// checkpoint/restore: onCheckpoint, when non-nil, receives the pipeline
// state after every class boundary (the callback owns the value; it
// shares nothing with the live run); resume, when non-nil, restores the
// pipeline from such a state instead of starting at class 1. The
// resumed run finishes with exactly the Colors, ChargedRounds, and
// per-class Stats of the uninterrupted run.
func ListColorDecomposedResumable(inst *graph.Instance, opts core.Options, onCheckpoint func(*PipelineCheckpoint), resume *PipelineCheckpoint) (*DecompResult, error) {
	return listColorDecomposed(inst, opts, true, onCheckpoint, resume)
}

// capturePipeline deep-copies the pipeline state at a class boundary.
func capturePipeline(class int, colors []uint32, colored []bool, lists [][]uint32, res *DecompResult) *PipelineCheckpoint {
	cp := &PipelineCheckpoint{
		Class:         class,
		Colors:        slices.Clone(colors),
		Colored:       slices.Clone(colored),
		Lists:         make([][]uint32, len(lists)),
		ChargedRounds: res.ChargedRounds,
		ClassRounds:   slices.Clone(res.ClassRounds),
		ClassStats:    slices.Clone(res.ClassStats),
		Messages:      res.Messages,
		Words:         res.Words,
	}
	for v := range lists {
		cp.Lists[v] = slices.Clone(lists[v])
	}
	return cp
}

// restorePipeline validates a checkpoint against the instance and the
// rebuilt decomposition, then installs its state into the run's working
// arrays (deep copies: the run never aliases the checkpoint).
func restorePipeline(inst *graph.Instance, d *Decomposition, cp *PipelineCheckpoint, colors []uint32, colored []bool, lists [][]uint32, res *DecompResult) error {
	n := inst.G.N()
	if cp.Class < 1 || cp.Class > d.Colors {
		return fmt.Errorf("netdecomp: checkpoint class %d outside 1..%d", cp.Class, d.Colors)
	}
	if len(cp.Colors) != n || len(cp.Colored) != n || len(cp.Lists) != n {
		return errors.New("netdecomp: checkpoint state sized for a different instance")
	}
	if len(cp.ClassRounds) != cp.Class || len(cp.ClassStats) != cp.Class {
		return fmt.Errorf("netdecomp: checkpoint at class %d carries %d class records", cp.Class, len(cp.ClassRounds))
	}
	for v := 0; v < n; v++ {
		if want := d.Clusters[d.ClusterOf[v]].Color <= cp.Class; cp.Colored[v] != want {
			return fmt.Errorf("netdecomp: checkpoint coloring of node %d contradicts its cluster class", v)
		}
		if cp.Colored[v] {
			continue
		}
		// An uncolored node's working list must be a subsequence of its
		// original list (exchanges only ever remove colors).
		orig := inst.Lists[v]
		j := 0
		for _, c := range cp.Lists[v] {
			for j < len(orig) && orig[j] != c {
				j++
			}
			if j == len(orig) {
				return fmt.Errorf("netdecomp: checkpoint list of node %d is not a subsequence of its original list", v)
			}
			j++
		}
	}
	copy(colors, cp.Colors)
	copy(colored, cp.Colored)
	for v := range cp.Lists {
		lists[v] = append(lists[v][:0], cp.Lists[v]...)
	}
	res.ChargedRounds = cp.ChargedRounds
	res.ClassRounds = slices.Clone(cp.ClassRounds)
	res.ClassStats = slices.Clone(cp.ClassStats)
	res.Messages = cp.Messages
	res.Words = cp.Words
	return nil
}

// EncodeCheckpoint serializes a pipeline checkpoint into the versioned
// snapshot container: options fingerprint, CSR graph dump, the original
// color lists, and the class-boundary state in the algorithm section.
// The encoding is canonical: decode followed by encode reproduces the
// bytes exactly.
func EncodeCheckpoint(cp *Checkpoint) []byte {
	var meta snapshot.Enc
	meta.Blob([]byte(decompCheckpointModel))
	meta.Uvarint(uint64(cp.Opts.MaxWords))
	meta.Uvarint(uint64(cp.Opts.MaxRounds))
	meta.Uvarint(uint64(cp.Opts.MaxIterations))
	meta.Bool(cp.Opts.HighAccuracy)
	var g snapshot.Enc
	snapshot.EncodeGraph(&g, cp.Inst.G)
	var lists snapshot.Enc
	snapshot.EncodeLists(&lists, cp.Inst.C, cp.Inst.Lists)
	var algo snapshot.Enc
	encodePipelineState(&algo, cp.State)
	return snapshot.Encode(&snapshot.Container{
		Version: snapshot.Version,
		Sections: []snapshot.Section{
			{ID: snapshot.SecMeta, Data: meta.Bytes()},
			{ID: snapshot.SecGraph, Data: g.Bytes()},
			{ID: snapshot.SecLists, Data: lists.Bytes()},
			{ID: snapshot.SecAlgo, Data: algo.Bytes()},
		},
	})
}

func encodePipelineState(e *snapshot.Enc, s *PipelineCheckpoint) {
	e.Uvarint(uint64(s.Class))
	e.Uvarint(uint64(s.ChargedRounds))
	e.Uvarint(uint64(s.Messages))
	e.Uvarint(uint64(s.Words))
	e.Uvarint(uint64(len(s.ClassRounds)))
	for i := range s.ClassRounds {
		e.Uvarint(uint64(s.ClassRounds[i]))
		st := &s.ClassStats[i]
		e.Uvarint(uint64(st.Rounds))
		e.Uvarint(uint64(st.Messages))
		e.Uvarint(uint64(st.Words))
		e.Uvarint(uint64(st.MaxMessageWords))
	}
	e.Uvarint(uint64(len(s.Colors)))
	for _, c := range s.Colors {
		e.Uvarint(uint64(c))
	}
	for _, b := range s.Colored {
		e.Bool(b)
	}
	for v := range s.Lists {
		e.Uvarint(uint64(len(s.Lists[v])))
		prev := int64(-1)
		for _, c := range s.Lists[v] {
			e.Uvarint(uint64(int64(c) - prev))
			prev = int64(c)
		}
	}
}

// DecodeCheckpoint parses a pipeline checkpoint file. Corrupt or
// truncated input returns an error, never panics.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	c, err := snapshot.Decode(b)
	if err != nil {
		return nil, err
	}
	section := func(id uint32, name string) (*snapshot.Dec, error) {
		data := c.Find(id)
		if data == nil {
			return nil, fmt.Errorf("netdecomp: checkpoint lacks its %s section", name)
		}
		return snapshot.NewDec(data), nil
	}

	md, err := section(snapshot.SecMeta, "meta")
	if err != nil {
		return nil, err
	}
	model := string(md.Blob())
	maxWords := md.Uvarint()
	maxRounds := md.Uvarint()
	maxIter := md.Uvarint()
	high := md.Bool()
	if err := md.Close(); err != nil {
		return nil, err
	}
	if model != decompCheckpointModel {
		return nil, fmt.Errorf("netdecomp: checkpoint fingerprint %q, this decoder reads %q", model, decompCheckpointModel)
	}
	if maxWords > math.MaxInt32 || maxRounds > math.MaxInt32 || maxIter > math.MaxInt32 {
		return nil, errors.New("netdecomp: checkpoint option fields out of range")
	}
	opts := core.Options{
		MaxWords:      int(maxWords),
		MaxRounds:     int(maxRounds),
		MaxIterations: int(maxIter),
		HighAccuracy:  high,
	}

	gd, err := section(snapshot.SecGraph, "graph")
	if err != nil {
		return nil, err
	}
	g, err := snapshot.DecodeGraph(gd)
	if err != nil {
		return nil, err
	}
	if err := gd.Close(); err != nil {
		return nil, err
	}

	ld, err := section(snapshot.SecLists, "lists")
	if err != nil {
		return nil, err
	}
	cc, origLists, err := snapshot.DecodeLists(ld)
	if err != nil {
		return nil, err
	}
	if err := ld.Close(); err != nil {
		return nil, err
	}
	inst := &graph.Instance{G: g, C: cc, Lists: origLists}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("netdecomp: checkpoint instance invalid: %w", err)
	}

	ad, err := section(snapshot.SecAlgo, "pipeline state")
	if err != nil {
		return nil, err
	}
	state, err := decodePipelineState(ad, g.N(), cc)
	if err != nil {
		return nil, err
	}
	if err := ad.Close(); err != nil {
		return nil, err
	}
	return &Checkpoint{Inst: inst, Opts: opts, State: state}, nil
}

func decodePipelineState(d *snapshot.Dec, n int, c uint32) (*PipelineCheckpoint, error) {
	s := &PipelineCheckpoint{}
	class := d.Uvarint()
	charged := d.Uvarint()
	msgs := d.Uvarint()
	words := d.Uvarint()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if class > math.MaxInt32 || charged > math.MaxInt32 || msgs > math.MaxInt64 || words > math.MaxInt64 {
		return nil, errors.New("netdecomp: checkpoint accounting fields out of range")
	}
	s.Class = int(class)
	s.ChargedRounds = int(charged)
	s.Messages = int64(msgs)
	s.Words = int64(words)
	classes := d.Count(4)
	if d.Err() != nil {
		return nil, d.Err()
	}
	if classes > 0 {
		s.ClassRounds = make([]int, classes)
		s.ClassStats = make([]congest.Stats, classes)
	}
	for i := 0; i < classes; i++ {
		cr := d.Uvarint()
		rounds := d.Uvarint()
		cm := d.Uvarint()
		cw := d.Uvarint()
		mw := d.Uvarint()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if cr > math.MaxInt32 || rounds > math.MaxInt32 || cm > math.MaxInt64 || cw > math.MaxInt64 || mw > math.MaxInt32 {
			return nil, errors.New("netdecomp: checkpoint class record out of range")
		}
		s.ClassRounds[i] = int(cr)
		s.ClassStats[i] = congest.Stats{Rounds: int(rounds), Messages: int64(cm), Words: int64(cw), MaxMessageWords: int(mw)}
	}
	nn := d.Count(1)
	if d.Err() != nil {
		return nil, d.Err()
	}
	if nn != n {
		return nil, fmt.Errorf("netdecomp: checkpoint state covers %d nodes, instance has %d", nn, n)
	}
	s.Colors = make([]uint32, n)
	for v := range s.Colors {
		col := d.Uvarint()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if col >= uint64(c) {
			return nil, fmt.Errorf("netdecomp: checkpoint color of node %d out of range", v)
		}
		s.Colors[v] = uint32(col)
	}
	s.Colored = make([]bool, n)
	for v := range s.Colored {
		s.Colored[v] = d.Bool()
	}
	s.Lists = make([][]uint32, n)
	for v := range s.Lists {
		k := d.Count(1)
		if d.Err() != nil {
			return nil, d.Err()
		}
		list := make([]uint32, k)
		prev := int64(-1)
		for i := range list {
			delta := d.Uvarint()
			prev += int64(delta)
			if d.Err() != nil || delta == 0 || prev >= int64(c) {
				return nil, fmt.Errorf("netdecomp: checkpoint list of node %d invalid", v)
			}
			list[i] = uint32(prev)
		}
		s.Lists[v] = list
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return s, nil
}
