package netdecomp

import (
	"math/bits"
	"testing"

	"smallbandwidth/internal/core"
	"smallbandwidth/internal/graph"
)

func decompGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":     graph.Path(40),
		"cycle":    graph.Cycle(64),
		"grid":     graph.Grid2D(8, 8),
		"star":     graph.Star(20),
		"regular":  graph.MustRandomRegular(48, 4, 3),
		"gnp":      graph.GNP(50, 0.1, 7),
		"barbell":  graph.Barbell(8, 20),
		"caveman":  graph.Caveman(5, 6),
		"tree":     graph.BinaryTree(63),
		"complete": graph.Complete(16),
		"single":   graph.Path(1),
	}
}

func TestBuildValidDecomposition(t *testing.T) {
	for name, g := range decompGraphs() {
		t.Run(name, func(t *testing.T) {
			d, err := Build(g)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDecompositionQuality(t *testing.T) {
	for name, g := range decompGraphs() {
		t.Run(name, func(t *testing.T) {
			d, err := Build(g)
			if err != nil {
				t.Fatal(err)
			}
			n := g.N()
			logn := bits.Len(uint(n))
			// α = O(log n): the construction halves remaining nodes.
			if d.Colors > logn+2 {
				t.Errorf("α = %d colors > log n + 2 = %d", d.Colors, logn+2)
			}
			// β = O(log³ n): generous constant for small n.
			betaCap := 8*logn*logn*logn + 8
			if d.Beta > betaCap {
				t.Errorf("β = %d > %d", d.Beta, betaCap)
			}
			// κ = O(log n).
			if d.Congestion > 4*logn+4 {
				t.Errorf("κ = %d > 4·log n + 4", d.Congestion)
			}
		})
	}
}

func TestEveryNodeClusteredExactlyOnce(t *testing.T) {
	g := graph.Grid2D(7, 9)
	d, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]int, g.N())
	for _, c := range d.Clusters {
		for _, v := range c.Members {
			seen[v]++
		}
	}
	for v, s := range seen {
		if s != 1 {
			t.Errorf("node %d in %d clusters", v, s)
		}
	}
}

func TestClustersNonAdjacentWithinColor(t *testing.T) {
	g := graph.MustRandomRegular(60, 5, 9)
	d, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	g.Edges(func(u, v int) {
		cu, cv := d.ClusterOf[u], d.ClusterOf[v]
		if cu != cv && d.Clusters[cu].Color == d.Clusters[cv].Color {
			t.Fatalf("edge (%d,%d) joins distinct same-color clusters", u, v)
		}
	})
}

func TestTreesContainMembersAndAllowSteiner(t *testing.T) {
	g := graph.Barbell(10, 30)
	d, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	steiner := 0
	for _, c := range d.Clusters {
		memberSet := map[int]struct{}{}
		for _, v := range c.Members {
			memberSet[v] = struct{}{}
			if _, ok := c.TreeParent[v]; !ok {
				t.Fatalf("member %d missing from tree", v)
			}
		}
		for v := range c.TreeParent {
			if _, ok := memberSet[v]; !ok {
				steiner++
			}
		}
	}
	// Steiner nodes are allowed; just record that the machinery tolerates
	// them (some graphs produce none).
	t.Logf("steiner tree nodes: %d", steiner)
}

func TestBuildDeterministic(t *testing.T) {
	g := graph.GNP(40, 0.15, 3)
	d1, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Colors != d2.Colors || len(d1.Clusters) != len(d2.Clusters) {
		t.Fatal("decomposition not deterministic")
	}
	for v := range d1.ClusterOf {
		if d1.ClusterOf[v] != d2.ClusterOf[v] {
			t.Fatal("cluster assignment not deterministic")
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g, _ := graph.FromEdges(0, nil)
	d, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if d.Colors != 0 || len(d.Clusters) != 0 {
		t.Errorf("empty graph decomposition: %+v", d)
	}
}

func TestListColorDecomposed(t *testing.T) {
	cases := map[string]*graph.Graph{
		"cycle":   graph.Cycle(48),
		"grid":    graph.Grid2D(6, 6),
		"barbell": graph.Barbell(6, 12),
		"regular": graph.MustRandomRegular(40, 4, 5),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			inst := graph.DeltaPlusOneInstance(g)
			res, err := ListColorDecomposed(inst, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := inst.VerifyColoring(res.Colors); err != nil {
				t.Fatal(err)
			}
			if res.ChargedRounds <= 0 {
				t.Error("no rounds charged")
			}
			if len(res.ClassRounds) != res.Decomp.Colors {
				t.Errorf("class rounds %d for %d classes", len(res.ClassRounds), res.Decomp.Colors)
			}
		})
	}
}

func TestListColorDecomposedRandomLists(t *testing.T) {
	g := graph.Cycle(32)
	inst, err := graph.RandomListInstance(g, 64, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ListColorDecomposed(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.VerifyColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
}

// TestDecomposedBeatsDiameterOnLargeD: on a long cycle, the Corollary 1.2
// charged rounds should grow much slower than Theorem 1.1's D-dependent
// rounds as n doubles.
func TestDecomposedBeatsDiameterOnLargeD(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling comparison skipped in -short")
	}
	small, big := graph.Cycle(32), graph.Cycle(128)
	instS, instB := graph.DeltaPlusOneInstance(small), graph.DeltaPlusOneInstance(big)
	dS, err := ListColorDecomposed(instS, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dB, err := ListColorDecomposed(instB, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tS, err := core.ListColorCONGEST(instS, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tB, err := core.ListColorCONGEST(instB, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	growthDecomp := float64(dB.ChargedRounds) / float64(dS.ChargedRounds)
	growthDirect := float64(tB.Stats.Rounds) / float64(tS.Stats.Rounds)
	t.Logf("4×n: decomposed rounds ×%.2f (%d→%d), direct ×%.2f (%d→%d)",
		growthDecomp, dS.ChargedRounds, dB.ChargedRounds,
		growthDirect, tS.Stats.Rounds, tB.Stats.Rounds)
	// At unit-test sizes both are in the same regime (the polylog pipeline
	// overtakes the Θ(D·logn) one only for much larger cycles; the bench
	// harness E5 shows the crossover). Guard only against the decomposed
	// pipeline scaling *clearly* worse than linear-in-D.
	if growthDecomp > 1.5*growthDirect {
		t.Errorf("decomposition pipeline scaled much worse (×%.2f) than the diameter-bound one (×%.2f)",
			growthDecomp, growthDirect)
	}
}
