package netdecomp

// Class-boundary checkpoint/restore of the Corollary 1.2 pipeline: the
// crash-at-every-class sweep must reproduce the uninterrupted run's
// colors and cost accounting exactly, the on-disk format must
// round-trip byte for byte, and corrupt state must be refused.

import (
	"bytes"
	"reflect"
	"testing"

	"smallbandwidth/internal/core"
	"smallbandwidth/internal/graph"
)

func requireDecompEq(t *testing.T, label string, got, want *DecompResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Colors, want.Colors) {
		t.Fatalf("%s: colors diverged", label)
	}
	if got.ChargedRounds != want.ChargedRounds {
		t.Fatalf("%s: ChargedRounds %d, want %d", label, got.ChargedRounds, want.ChargedRounds)
	}
	if !reflect.DeepEqual(got.ClassRounds, want.ClassRounds) || !reflect.DeepEqual(got.ClassStats, want.ClassStats) {
		t.Fatalf("%s: per-class accounting diverged", label)
	}
	if got.Messages != want.Messages || got.Words != want.Words {
		t.Fatalf("%s: traffic (%d,%d), want (%d,%d)", label, got.Messages, got.Words, want.Messages, want.Words)
	}
}

// TestPipelineCheckpointSweep crashes the pipeline at every class
// boundary and resumes each time from the recorded checkpoint.
func TestPipelineCheckpointSweep(t *testing.T) {
	inst := graph.DeltaPlusOneInstance(graph.Grid2D(6, 6))
	want, err := ListColorDecomposed(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want.Decomp.Colors < 2 {
		t.Fatalf("instance too easy: %d color class(es)", want.Decomp.Colors)
	}

	var cps []*PipelineCheckpoint
	got, err := ListColorDecomposedResumable(inst, core.Options{},
		func(cp *PipelineCheckpoint) { cps = append(cps, cp) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireDecompEq(t, "checkpointing perturbed the run", got, want)
	if len(cps) != want.Decomp.Colors {
		t.Fatalf("recorded %d checkpoints, want one per class (%d)", len(cps), want.Decomp.Colors)
	}

	for _, cp := range cps {
		resumed, err := ListColorDecomposedResumable(inst, core.Options{}, nil, cp)
		if err != nil {
			t.Fatalf("resume at class %d: %v", cp.Class, err)
		}
		requireDecompEq(t, "resume", resumed, want)
	}
}

// TestPipelineCheckpointFileRoundTrip pins the on-disk format and that
// a decoded file resumes identically.
func TestPipelineCheckpointFileRoundTrip(t *testing.T) {
	inst := graph.DeltaPlusOneInstance(graph.Grid2D(6, 6))
	var cps []*PipelineCheckpoint
	want, err := ListColorDecomposedResumable(inst, core.Options{},
		func(cp *PipelineCheckpoint) { cps = append(cps, cp) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	mid := cps[len(cps)/2]

	raw := EncodeCheckpoint(&Checkpoint{Inst: inst, Opts: core.Options{}, State: mid})
	cp, err := DecodeCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Inst.G.Equal(inst.G) || cp.Inst.C != inst.C || !reflect.DeepEqual(cp.Inst.Lists, inst.Lists) {
		t.Fatal("decoded checkpoint instance differs from the original")
	}
	if !reflect.DeepEqual(cp.State, mid) {
		t.Fatal("decoded pipeline state differs from the original")
	}
	if again := EncodeCheckpoint(cp); !bytes.Equal(again, raw) {
		t.Fatal("decode followed by encode did not reproduce the bytes")
	}

	resumed, err := ListColorDecomposedResumable(cp.Inst, cp.Opts, nil, cp.State)
	if err != nil {
		t.Fatal(err)
	}
	requireDecompEq(t, "resume from decoded file", resumed, want)
}

// TestPipelineRestoreRejects pins that inconsistent checkpoint state is
// refused before any class run starts.
func TestPipelineRestoreRejects(t *testing.T) {
	inst := graph.DeltaPlusOneInstance(graph.Grid2D(5, 5))
	var cps []*PipelineCheckpoint
	if _, err := ListColorDecomposedResumable(inst, core.Options{},
		func(cp *PipelineCheckpoint) { cps = append(cps, cp) }, nil); err != nil {
		t.Fatal(err)
	}
	if len(cps) < 2 {
		t.Skip("pipeline finished in one class")
	}

	warps := []struct {
		name string
		warp func(cp *PipelineCheckpoint)
	}{
		{"class-out-of-range", func(cp *PipelineCheckpoint) { cp.Class = 99 }},
		{"wrong-node-count", func(cp *PipelineCheckpoint) { cp.Colors = cp.Colors[:1] }},
		{"colored-contradicts-class", func(cp *PipelineCheckpoint) {
			for v := range cp.Colored {
				if !cp.Colored[v] {
					cp.Colored[v] = true
					return
				}
			}
		}},
		{"foreign-color-in-list", func(cp *PipelineCheckpoint) {
			for v := range cp.Colored {
				if !cp.Colored[v] {
					cp.Lists[v] = append([]uint32{inst.C - 1}, cp.Lists[v]...)
					return
				}
			}
		}},
		{"missing-class-record", func(cp *PipelineCheckpoint) { cp.ClassRounds = cp.ClassRounds[:0] }},
	}
	for _, w := range warps {
		t.Run(w.name, func(t *testing.T) {
			var cps2 []*PipelineCheckpoint
			if _, err := ListColorDecomposedResumable(inst, core.Options{},
				func(cp *PipelineCheckpoint) { cps2 = append(cps2, cp) }, nil); err != nil {
				t.Fatal(err)
			}
			cp := cps2[0]
			w.warp(cp)
			if _, err := ListColorDecomposedResumable(inst, core.Options{}, nil, cp); err == nil {
				t.Fatal("corrupt checkpoint was accepted")
			}
		})
	}
}
