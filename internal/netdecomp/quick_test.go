package netdecomp

import (
	"math/bits"
	"testing"
	"testing/quick"

	"smallbandwidth/internal/graph"
)

// TestDecompositionPropertyQuick builds decompositions of random graphs
// and checks the full Definition 3.1 contract plus the α/β/κ quality
// bounds on each.
func TestDecompositionPropertyQuick(t *testing.T) {
	check := func(seed uint64, nRaw, pRaw uint8) bool {
		n := int(nRaw)%40 + 2
		p := float64(pRaw%50)/100 + 0.05
		g := graph.GNP(n, p, seed)
		d, err := Build(g)
		if err != nil {
			t.Logf("seed=%d n=%d p=%.2f: %v", seed, n, p, err)
			return false
		}
		if err := d.Validate(); err != nil {
			t.Logf("seed=%d n=%d p=%.2f: %v", seed, n, p, err)
			return false
		}
		logn := bits.Len(uint(n))
		if d.Colors > logn+2 {
			t.Logf("seed=%d: α=%d too large", seed, d.Colors)
			return false
		}
		if d.Congestion > 4*logn+4 {
			t.Logf("seed=%d: κ=%d too large", seed, d.Congestion)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSurvivorsAtLeastHalfPerClass re-derives the ≥½ per-class guarantee
// from the recorded classes: class c must contain at least half of the
// nodes not in classes < c.
func TestSurvivorsAtLeastHalfPerClass(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(64), graph.Grid2D(8, 8), graph.GNP(60, 0.12, 4),
		graph.MustRandomRegular(64, 5, 6),
	} {
		d, err := Build(g)
		if err != nil {
			t.Fatal(err)
		}
		perClass := make([]int, d.Colors+1)
		for _, c := range d.Clusters {
			perClass[c.Color] += len(c.Members)
		}
		remaining := g.N()
		for class := 1; class <= d.Colors; class++ {
			if 2*perClass[class] < remaining {
				t.Errorf("class %d clustered %d of %d (< half)", class, perClass[class], remaining)
			}
			remaining -= perClass[class]
		}
		if remaining != 0 {
			t.Errorf("%d nodes never clustered", remaining)
		}
	}
}

// TestChargedRoundsPolylogShape: construction rounds on growing cycles
// must grow far slower than n (polylog), unlike D = n/2.
func TestChargedRoundsPolylogShape(t *testing.T) {
	var rounds []int
	for _, n := range []int{64, 256} {
		d, err := Build(graph.Cycle(n))
		if err != nil {
			t.Fatal(err)
		}
		rounds = append(rounds, d.ChargedRound)
	}
	// 4× n: charged construction rounds should grow ≤ ~3× (polylog),
	// certainly not 4× (linear).
	if float64(rounds[1]) > 3.5*float64(rounds[0]) {
		t.Errorf("construction rounds grew ×%.2f for 4× n: %v — not polylog-shaped",
			float64(rounds[1])/float64(rounds[0]), rounds)
	}
}
