package netdecomp

import (
	"testing"

	"smallbandwidth/internal/core"
	"smallbandwidth/internal/engine"
	"smallbandwidth/internal/graph"
)

// TestChargedRoundsExchangeOnlyBetweenClasses pins the Corollary 1.2
// accounting on a fixed instance: construction rounds, plus κ·rounds per
// class, plus exactly one global exchange round between consecutive
// classes — NOT after the final class (the old code charged classes
// exchange rounds, one too many).
func TestChargedRoundsExchangeOnlyBetweenClasses(t *testing.T) {
	inst := graph.DeltaPlusOneInstance(graph.Grid2D(6, 6))
	res, err := ListColorDecomposed(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decomp.Colors < 2 {
		t.Fatalf("instance too easy: %d color class(es) cannot exercise the between-classes charge", res.Decomp.Colors)
	}
	kappa := res.Decomp.Congestion
	if kappa < 1 {
		kappa = 1
	}
	want := res.Decomp.ChargedRound + (res.Decomp.Colors - 1)
	for _, cr := range res.ClassRounds {
		want += cr * kappa
	}
	if res.ChargedRounds != want {
		t.Errorf("ChargedRounds = %d, want construction %d + Σ κ·classRounds + (α−1) = %d",
			res.ChargedRounds, res.Decomp.ChargedRound, want)
	}
}

// TestIdleDeepClustersNotCharged is the cost-model regression for the
// decomposition builder: the decision broadcast of a proposal iteration
// must be charged over the iteration's *target* clusters only. The old
// model charged the max tree depth over all surviving clusters, so a
// deep cluster sitting idle (no proposals) inflated every other
// cluster's iterations. The hook records both depths per iteration; on a
// graph mixing deep path clusters with shallow dense pockets the
// old-model total must be strictly larger.
func TestIdleDeepClustersNotCharged(t *testing.T) {
	oldModel, newModel, iters := 0, 0, 0
	chargeHook = func(active, global int) {
		newModel += 2 + 2*(active+1)
		oldModel += 2 + 2*(global+1)
		iters++
	}
	defer func() { chargeHook = nil }()

	g := graph.Barbell(8, 64) // two K8 pockets joined by a 64-node path
	d, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if d.ChargedRound != newModel {
		t.Errorf("ChargedRound = %d, hook-accumulated active-target model = %d", d.ChargedRound, newModel)
	}
	if oldModel <= newModel {
		t.Errorf("old all-clusters model (%d) not larger than active-target model (%d) over %d iterations — instance has no idle deep cluster, pick a better one",
			oldModel, newModel, iters)
	}
	t.Logf("charged %d rounds over %d iterations (old model: %d, −%.0f%%)",
		newModel, iters, oldModel, 100*float64(oldModel-newModel)/float64(oldModel))
}

// TestDecomposedListsNotAliased asserts the caller's inst.Lists survive a
// full Corollary 1.2 run byte-identical: per-class sub-instances copy the
// working lists at the boundary instead of sharing backing arrays with
// the in-place-shifting removeColor.
func TestDecomposedListsNotAliased(t *testing.T) {
	g := graph.Barbell(5, 16)
	inst, err := graph.RandomListInstance(g, 64, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([][]uint32, len(inst.Lists))
	for v, l := range inst.Lists {
		snapshot[v] = append([]uint32(nil), l...)
	}
	res, err := ListColorDecomposed(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.VerifyColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
	for v, l := range inst.Lists {
		if len(l) != len(snapshot[v]) {
			t.Fatalf("node %d list length changed: %d -> %d", v, len(snapshot[v]), len(l))
		}
		for i := range l {
			if l[i] != snapshot[v][i] {
				t.Fatalf("node %d list mutated at index %d: %d -> %d", v, i, snapshot[v][i], l[i])
			}
		}
	}
}

// TestBatchedMatchesSequentialPipeline runs the batched per-class
// pipeline next to the seed-equivalent sequential one: both must produce
// proper colorings, agree on the decomposition, and report class rounds
// of the same parallel-composition shape (the values may differ — the
// batched run derives parameters from the class union, the sequential
// one per component).
func TestBatchedMatchesSequentialPipeline(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(48),
		graph.Grid2D(6, 7),
		graph.Barbell(6, 12),
	} {
		inst := graph.DeltaPlusOneInstance(g)
		batched, err := ListColorDecomposed(inst, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := ListColorDecomposedSeq(inst, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []*DecompResult{batched, seq} {
			if err := inst.VerifyColoring(r.Colors); err != nil {
				t.Fatal(err)
			}
		}
		if batched.Decomp.Colors != seq.Decomp.Colors || len(batched.ClassRounds) != len(seq.ClassRounds) {
			t.Errorf("pipelines disagree on the decomposition: %d/%d classes",
				batched.Decomp.Colors, seq.Decomp.Colors)
		}
		for c := range batched.ClassStats {
			if batched.ClassStats[c].Messages != seq.ClassStats[c].Messages && batched.ClassStats[c].Messages == 0 {
				t.Errorf("class %d: batched run delivered no messages", c+1)
			}
		}
	}
}

// TestDecompDeterministicAcrossShards is the Corollary 1.2 lockdown on
// the shared engine: Colors, per-class Stats, ClassRounds, and
// ChargedRounds must be bit-identical whether the engine delivers with 1
// worker or many. Run under -race in CI.
func TestDecompDeterministicAcrossShards(t *testing.T) {
	// Disconnected and irregular on purpose: components + clusters of many
	// sizes land in one batched run per class.
	g := graph.GNP(700, 3.0/700, 17)
	inst := graph.DeltaPlusOneInstance(g)

	run := func(shards int) *DecompResult {
		t.Helper()
		engine.SetForceShards(shards)
		defer engine.SetForceShards(0)
		res, err := ListColorDecomposed(inst, core.Options{})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return res
	}

	base := run(1)
	if err := inst.VerifyColoring(base.Colors); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 7} {
		res := run(shards)
		if res.ChargedRounds != base.ChargedRounds {
			t.Errorf("shards=%d: ChargedRounds %d != serial %d", shards, res.ChargedRounds, base.ChargedRounds)
		}
		if res.Messages != base.Messages || res.Words != base.Words {
			t.Errorf("shards=%d: traffic (%d msgs, %d words) != serial (%d, %d)",
				shards, res.Messages, res.Words, base.Messages, base.Words)
		}
		for c := range base.ClassStats {
			if res.ClassStats[c] != base.ClassStats[c] {
				t.Errorf("shards=%d: class %d stats %+v != serial %+v",
					shards, c+1, res.ClassStats[c], base.ClassStats[c])
			}
		}
		for c := range base.ClassRounds {
			if res.ClassRounds[c] != base.ClassRounds[c] {
				t.Errorf("shards=%d: class %d rounds %d != serial %d",
					shards, c+1, res.ClassRounds[c], base.ClassRounds[c])
			}
		}
		for v := range base.Colors {
			if res.Colors[v] != base.Colors[v] {
				t.Fatalf("shards=%d: node %d colored %d, serial %d", shards, v, res.Colors[v], base.Colors[v])
			}
		}
	}
}
