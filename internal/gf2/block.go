package gf2

import "math/bits"

// FormSheet lays the residuals of up to 64 single-word forms out as
// bit-sliced planes, one lane per form, so the conditional-expectation
// loop can maintain every residual of a node's owned conflict edges
// incrementally instead of re-deriving them per seed bit:
//
//   - lane[l] is lane l's residual mask (the form's mask minus every
//     seed bit folded so far);
//   - rhs is the branch-0 right-hand-side plane: bit l is lane l's
//     residual constant, Const_l ⊕ ⟨folded bits of mask_l, their chosen
//     values⟩ — exactly the bit-0 byte loReduce computes;
//   - bitp[b] is the transposed residual plane of seed bit b: bit l is
//     set iff lane l's residual mask still contains b. Sealing a sheet
//     builds the planes with one 64×64 bit-matrix transpose.
//
// Fixing seed bit j to value r then folds into every lane at once:
// rhs ^= bitp[j] when r (one masked-XOR pass over the whole sheet),
// the affected lanes drop bit j, and bitp[j] clears — per-bit work
// O(planes), not O(edges·forms·words). The current split bit j is the
// one bit handled at read time: a lane's branch-1 right-hand side is
// its branch-0 bit XOR its bitp[j] bit, which is how one word op
// carries both β branches of the whole block.
//
// A sheet represents residuals against the *fixed bits* of a basis
// only; the gather path re-applies any source rows (loRowReduce), so
// block results stay bit-identical to the scalar loReduce path in
// every case. Sheets hold whatever form groups the caller lays out —
// the phase loop packs a node's own coin plus the coins of its owned
// conflict edges' neighbors.
type FormSheet struct {
	lane [64]uint64
	bitp [64]uint64
	rhs  uint64
	n    int
}

// Reset empties the sheet for reuse.
func (s *FormSheet) Reset() {
	*s = FormSheet{}
}

// Lanes returns the number of lanes in use.
func (s *FormSheet) Lanes() int { return s.n }

// Free returns the number of unused lanes.
func (s *FormSheet) Free() int { return 64 - s.n }

// AddForms appends one form group (a coin's forms) as consecutive
// lanes and returns the first lane. It fails — leaving the sheet
// unchanged — if the group does not fit or any mask has high bits
// (sheets are single-word, like the lo walks they feed).
func (s *FormSheet) AddForms(fs []Form) (lane int, ok bool) {
	if len(fs) > 64-s.n {
		return 0, false
	}
	for i := range fs {
		if fs[i].Mask.Hi != 0 {
			return 0, false
		}
	}
	lane = s.n
	for i := range fs {
		l := lane + i
		s.lane[l] = fs[i].Mask.Lo
		if fs[i].Const {
			s.rhs |= uint64(1) << l
		}
	}
	s.n += len(fs)
	return lane, true
}

// Seal builds the transposed residual planes from the lanes. Call it
// once after the last AddForms and before the first Fix or gather.
func (s *FormSheet) Seal() {
	s.bitp = s.lane
	transpose64(&s.bitp)
}

// Fix folds the choice "seed bit j = val" into every residual of the
// sheet: one masked-XOR pass over the right-hand-side plane, and the
// lanes still containing bit j drop it. After the fold the sheet's
// residuals are exactly what loReduce would derive against a basis
// with the same bits fixed to the same values.
//sbw:allocfree phase-step kernel: per-seed-bit incremental plane fold
func (s *FormSheet) Fix(j int, val bool) {
	if j >= 64 {
		return // single-word sheets never contain bits ≥ 64
	}
	p := s.bitp[j]
	if p == 0 {
		return
	}
	if val {
		s.rhs ^= p
	}
	bit := uint64(1) << j
	for rest := p; rest != 0; rest &= rest - 1 {
		s.lane[bits.TrailingZeros64(rest)] &^= bit
	}
	s.bitp[j] = 0
}

// transpose64 transposes the 64×64 bit matrix a in place (row r bit c
// becomes row c bit r) by recursive block swaps — the classic
// power-of-two transpose, ⌈log 64⌉ passes of masked shifts.
func transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := 32; j != 0; j, m = j>>1, m^(m<<uint(j>>1)) {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (a[k]>>uint(j) ^ a[k+j]) & m
			a[k+j] ^= t
			a[k] ^= t << uint(j)
		}
	}
}

// BlockCoin locates one coin's forms on a FormSheet.
type BlockCoin struct {
	Lane int    // first lane of the coin's form group
	B    int    // number of forms (Coin.Bits)
	T    uint64 // threshold (Coin.Threshold)
}

// ProbPair is Pr[C = 1] under branch 0 and branch 1 of a split bit.
type ProbPair struct {
	P0, P1 float64
}

// gatherResid reads b residuals starting at lane from the sheet, under
// this SplitBasis's split bit: the mask is the lane minus the split
// bit, branch 0's right-hand side is the lane's rhs-plane bit, and
// branch 1 differs by the lane's split-plane bit — the same bytes
// loReduce packs. The sheet must have folded exactly this basis's
// fixed bits; any source rows are re-applied here.
//sbw:allocfree phase-step kernel: residual gather feeding the block walks
func (sb *SplitBasis) gatherResid(sheet *FormSheet, lane, b int, out []loResid) {
	split := uint(bits.TrailingZeros64(sb.split.Lo))
	haveRows := len(sb.rows) > 0
	for i := 0; i < b; i++ {
		l := uint(lane + i)
		w := sheet.lane[l]
		m := w &^ (uint64(1) << split)
		r0 := uint8(sheet.rhs >> l & 1)
		rhs := r0 | (r0^uint8(w>>split&1))<<1
		if haveRows {
			m, rhs = sb.loRowReduce(m, rhs)
		}
		out[i] = loResid{mask: m, rhs: rhs}
	}
}

// ProbOnePairBlock is ProbOnePair over a block of coins laid out on a
// sheet: out[k] receives both branch marginals of reqs[k]. The phase
// loop uses it to fill every pending marginal-memo key of a band in
// one call. Requires a low-word split (split bit < 64) and a sheet
// folded in step with this basis; each result is bit-identical to
// ProbOnePair on the coin.
//sbw:allocfree phase-step kernel: batched neighbor marginals, the memo batch-fill path
func (sb *SplitBasis) ProbOnePairBlock(sheet *FormSheet, reqs []BlockCoin, out []ProbPair) {
	for k := range reqs {
		rq := reqs[k]
		if rq.T == 0 {
			out[k] = ProbPair{}
			continue
		}
		if rq.T >= uint64(1)<<rq.B {
			out[k] = ProbPair{P0: 1, P1: 1}
			continue
		}
		res := sb.resLo[:rq.B]
		sb.gatherResid(sheet, rq.Lane, rq.B, res)
		p0, p1 := loInnerWalk(&sb.innerLo, res, rq.T, 0, 0, false, 3)
		out[k] = ProbPair{P0: p0, P1: p1}
	}
}

// EdgePairBlock is EdgePairGivenMarginal with both coins read from a
// sheet: it returns C1's marginal and the joint probabilities under
// both branches, with C2's marginal (pv0/pv1) supplied by the caller —
// typically from the memo ProbOnePairBlock just filled. Preconditions
// as for ProbOnePairBlock; results are bit-identical to the scalar
// call on the same coins.
//sbw:allocfree phase-step kernel: batched joint edge probabilities
func (sb *SplitBasis) EdgePairBlock(sheet *FormSheet, cu, cv BlockCoin, pv0, pv1 float64) (p1u0, p110, p1u1, p111 float64) {
	if cu.T == 0 {
		return 0, 0, 0, 0
	}
	if cu.T >= uint64(1)<<cu.B {
		return 1, pv0, 1, pv1
	}
	if cv.T == 0 {
		resU := sb.resLo[:cu.B]
		sb.gatherResid(sheet, cu.Lane, cu.B, resU)
		p1u0, p1u1 = loInnerWalk(&sb.innerLo, resU, cu.T, 0, 0, false, 3)
		return p1u0, 0, p1u1, 0
	}
	resU := sb.resLoU[:cu.B]
	sb.gatherResid(sheet, cu.Lane, cu.B, resU)
	res := sb.resLo[:cv.B]
	fvWalkable := cv.T < uint64(1)<<cv.B
	if fvWalkable {
		sb.gatherResid(sheet, cv.Lane, cv.B, res)
	}
	return sb.loJointWalkResid(resU, cu.T, res, cv.T, fvWalkable)
}
