package gf2

import (
	"testing"
	"testing/quick"
)

func TestNewFieldRange(t *testing.T) {
	for _, m := range []int{0, -1, 64, 100} {
		if _, err := NewField(m); err == nil {
			t.Errorf("NewField(%d): expected error", m)
		}
	}
	for _, m := range []int{1, 2, 8, 16, 32, 63} {
		f, err := NewField(m)
		if err != nil {
			t.Fatalf("NewField(%d): %v", m, err)
		}
		if f.M() != m {
			t.Errorf("NewField(%d).M() = %d", m, f.M())
		}
		if f.Order() != uint64(1)<<m {
			t.Errorf("NewField(%d).Order() = %d", m, f.Order())
		}
	}
}

func TestFieldCached(t *testing.T) {
	a := MustField(8)
	b := MustField(8)
	if a != b {
		t.Error("MustField(8) not cached")
	}
}

func TestReductionPolyIrreducible(t *testing.T) {
	for m := 1; m <= 20; m++ {
		f := MustField(m)
		if m > 1 && !isIrreducible(f.ReductionPoly(), m) {
			t.Errorf("m=%d: reduction poly %#x not irreducible", m, f.ReductionPoly())
		}
	}
}

func TestKnownIrreducibles(t *testing.T) {
	// Cross-check the search against textbook irreducible polynomials.
	if !isIrreducible(0x1B, 8) {
		t.Error("AES polynomial x^8+x^4+x^3+x+1 reported reducible")
	}
	if isIrreducible(0x1A, 8) {
		t.Error("x^8+x^4+x^3+x reported irreducible (divisible by x)")
	}
	if !isIrreducible(0b11, 2) {
		t.Error("x^2+x+1 reported reducible")
	}
	if isIrreducible(0b01, 2) {
		t.Error("x^2+1 = (x+1)^2 reported irreducible")
	}
}

func TestMulSmallFieldTables(t *testing.T) {
	// GF(4) with x^2+x+1: elements 0,1,x=2,x+1=3.
	f := MustField(2)
	if f.ReductionPoly() != 0b11 {
		t.Fatalf("GF(4) reduction poly = %#b, want 11", f.ReductionPoly())
	}
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0}, {0, 3, 0}, {1, 2, 2}, {1, 3, 3},
		{2, 2, 3}, // x·x = x² = x+1
		{2, 3, 1}, // x(x+1) = x²+x = 1
		{3, 3, 2}, // (x+1)² = x²+1 = x
	}
	for _, c := range cases {
		if got := f.Mul(c.a, c.b); got != c.want {
			t.Errorf("GF(4): %d·%d = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	for _, m := range []int{3, 8, 16, 33, 63} {
		f := MustField(m)
		mask := f.Order() - 1
		comm := func(a, b uint64) bool {
			a, b = a&mask, b&mask
			return f.Mul(a, b) == f.Mul(b, a)
		}
		assoc := func(a, b, c uint64) bool {
			a, b, c = a&mask, b&mask, c&mask
			return f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c))
		}
		distrib := func(a, b, c uint64) bool {
			a, b, c = a&mask, b&mask, c&mask
			return f.Mul(a, b^c) == f.Mul(a, b)^f.Mul(a, c)
		}
		identity := func(a uint64) bool {
			a &= mask
			return f.Mul(a, 1) == a && f.Mul(1, a) == a
		}
		for name, prop := range map[string]any{
			"commutative": comm, "associative": assoc,
			"distributive": distrib, "identity": identity,
		} {
			if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
				t.Errorf("m=%d %s: %v", m, name, err)
			}
		}
	}
}

func TestFieldInverse(t *testing.T) {
	f := MustField(11)
	for a := uint64(1); a < 300; a++ {
		inv, err := f.Inv(a)
		if err != nil {
			t.Fatalf("Inv(%d): %v", a, err)
		}
		if f.Mul(a, inv) != 1 {
			t.Fatalf("a·a⁻¹ ≠ 1 for a=%d (inv=%d)", a, inv)
		}
	}
	if _, err := f.Inv(0); err == nil {
		t.Error("Inv(0): expected error")
	}
}

func TestMulByXMatchesMul(t *testing.T) {
	for _, m := range []int{4, 9, 24, 63} {
		f := MustField(m)
		check := func(a uint64) bool {
			a &= f.Order() - 1
			return f.MulByX(a) == f.Mul(a, 2)
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("m=%d: MulByX disagrees with Mul: %v", m, err)
		}
	}
}

func TestPow(t *testing.T) {
	f := MustField(8)
	for a := uint64(0); a < 40; a++ {
		want := uint64(1)
		for e := 0; e < 10; e++ {
			if got := f.Pow(a, uint64(e)); got != want {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, e, got, want)
			}
			want = f.Mul(want, a)
		}
	}
	// Fermat: a^(2^m−1) = 1 for a ≠ 0.
	for a := uint64(1); a < 256; a++ {
		if f.Pow(a, f.Order()-1) != 1 {
			t.Fatalf("Fermat fails for a=%d", a)
		}
	}
}

func TestClmul(t *testing.T) {
	cases := []struct {
		a, b   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 0xffffffffffffffff, 0, 0xffffffffffffffff},
		{2, 1 << 63, 1, 0},
		{3, 3, 0, 5}, // (x+1)² = x²+1
	}
	for _, c := range cases {
		hi, lo := clmul(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("clmul(%#x,%#x) = (%#x,%#x), want (%#x,%#x)",
				c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
	comm := func(a, b uint64) bool {
		h1, l1 := clmul(a, b)
		h2, l2 := clmul(b, a)
		return h1 == h2 && l1 == l2
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
}
