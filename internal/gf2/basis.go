package gf2

import (
	"math/bits"
	"sync"
)

// basisPool recycles the scratch bases that ProbLess/ProbBothLess clone
// on every call: the conditional-expectation inner loop evaluates these
// millions of times per run, and pooling the row storage removes the
// dominant allocation of the whole derandomization.
var basisPool = sync.Pool{New: func() any { return new(Basis) }}

func cloneFromPool(bs *Basis) *Basis {
	return bs.CloneInto(basisPool.Get().(*Basis))
}

func releaseBasis(w *Basis) { basisPool.Put(w) }

// AddResult classifies the outcome of adding an affine constraint to a
// Basis.
type AddResult int

const (
	// Independent: the constraint was linearly independent and was added;
	// the rank grew by one (the event probability halves).
	Independent AddResult = iota + 1
	// Redundant: the constraint is implied by the basis; nothing changed.
	Redundant
	// Inconsistent: the constraint contradicts the basis; the joint event
	// has probability zero. The basis is left unchanged.
	Inconsistent
)

// Basis is a system of consistent affine constraints over the seed bits,
// kept in echelon form. Over a uniformly random seed, the event "all
// constraints hold" has probability 2^−rank.
//
// Basis is the workhorse of the method of conditional expectations
// (Lemma 2.6): fixed seed bits are unit constraints, and coin events add
// hash-output-bit constraints. The zero value is an empty basis.
//
// Representation: the method-of-conditional-expectations outer loop only
// ever adds *unit* constraints ("seed bit i = β"), so those are stored
// compressed as two bit vectors (fixedMask, fixedVals) instead of one
// echelon row each. Reducing a form against all fixed bits is then two
// AND/XOR word operations — O(1) instead of O(#fixed bits) row scans —
// and cloning a fixed-bits-only basis copies four words. Constraints
// whose residual is not a unit vector keep the classic one-row-per-pivot
// echelon form. The invariants connecting the two halves:
//
//   - no row's mask intersects fixedMask (maintained by back-substituting
//     rows when a residual turns out to be a unit vector), and
//   - no fixed bit is any row's pivot (a unit residual can never land on
//     an existing pivot — reduction would have eliminated it);
//
// so "fold the fixed bits, then one in-insertion-order pass over the
// rows" is a complete reduction, and — reduction modulo a fixed affine
// span being unique — every residual, AddResult classification, and
// probability is bit-identical to the all-rows representation.
type Basis struct {
	fixedMask Vec128 // bits with a stored unit constraint
	fixedVals Vec128 // their values (0 outside fixedMask)
	rows      []basisRow
	// hiRows records whether any row mask has bits ≥ 64. The families in
	// every practical parameterization have seed length ≤ 64 (k·m ≤ 64),
	// so reductions run on single words; hiRows = true falls back to the
	// two-word path. The flag is conservative: false means provably no
	// high bits (the zero value, an empty basis, qualifies).
	hiRows bool
}

type basisRow struct {
	mask  Vec128 // left-hand side: parity(mask & seed)
	rhs   bool   // right-hand side
	pivot int    // lowest set bit of mask; unique per row
}

// NewBasis returns an empty basis.
func NewBasis() *Basis { return &Basis{} }

// Reset empties the basis in place, keeping the row storage for reuse.
func (bs *Basis) Reset() {
	bs.fixedMask = Vec128{}
	bs.fixedVals = Vec128{}
	bs.rows = bs.rows[:0]
	bs.hiRows = false
}

// Rank returns the number of independent constraints.
func (bs *Basis) Rank() int { return bs.fixedMask.OnesCount() + len(bs.rows) }

// Clone returns an independent copy of the basis.
func (bs *Basis) Clone() *Basis {
	rows := make([]basisRow, len(bs.rows))
	copy(rows, bs.rows)
	return &Basis{fixedMask: bs.fixedMask, fixedVals: bs.fixedVals, rows: rows, hiRows: bs.hiRows}
}

// CloneInto copies the basis into dst, reusing dst's backing storage,
// and returns dst. It exists for hot loops — the method of conditional
// expectations clones the basis twice per seed bit per conflict edge —
// where Clone's fresh allocation dominates the profile. dst must not be
// bs itself.
func (bs *Basis) CloneInto(dst *Basis) *Basis {
	dst.fixedMask = bs.fixedMask
	dst.fixedVals = bs.fixedVals
	dst.rows = append(dst.rows[:0], bs.rows...)
	dst.hiRows = bs.hiRows
	return dst
}

// reduce eliminates all stored constraints from (mask, rhs): the fixed
// bits in one fold, then the rows in insertion order. Because each row
// was reduced against the fixed bits and all earlier rows when it was
// inserted, a single in-order pass is a complete reduction. Forms whose
// mask fits the low word run entirely on single-word operations when no
// row has high bits.
func (bs *Basis) reduce(mask Vec128, rhs bool) (Vec128, bool) {
	if mask.Hi == 0 && !bs.hiRows {
		lo := mask.Lo
		if f := lo & bs.fixedMask.Lo; f != 0 {
			rhs = rhs != (bits.OnesCount64(f&bs.fixedVals.Lo)&1 == 1)
			lo &^= bs.fixedMask.Lo
		}
		for i := range bs.rows {
			r := &bs.rows[i]
			if lo&(1<<r.pivot) != 0 {
				lo ^= r.mask.Lo
				rhs = rhs != r.rhs
			}
		}
		return Vec128{Lo: lo}, rhs
	}
	if fixed := mask.And(bs.fixedMask); !fixed.IsZero() {
		rhs = rhs != fixed.And(bs.fixedVals).Parity()
		mask = mask.AndNot(bs.fixedMask)
	}
	for i := range bs.rows {
		r := &bs.rows[i]
		if mask.Bit(r.pivot) {
			mask = mask.Xor(r.mask)
			rhs = rhs != r.rhs
		}
	}
	return mask, rhs
}

// Add inserts the constraint "form evaluates to val" and reports whether
// it was independent, redundant, or inconsistent.
func (bs *Basis) Add(fo Form, val bool) AddResult {
	// parity(mask & seed) ^ const == val  ⇔  parity(mask & seed) == val ^ const.
	mask, rhs := bs.reduce(fo.Mask, fo.Const)
	return bs.addReduced(mask, rhs, val)
}

// addReduced finishes an Add whose reduction already happened: (mask,
// rhs) must be reduce(fo.Mask, fo.Const) against this basis — or against
// a basis with identical content, which is how the probability walks
// share one reduction between the "event" and "continue" branches of a
// threshold bit, and between a scratch clone and its source.
func (bs *Basis) addReduced(mask Vec128, rhs, val bool) AddResult {
	rhs = rhs != val
	if mask.IsZero() {
		if rhs {
			return Inconsistent
		}
		return Redundant
	}
	if mask.IsUnit() {
		// Unit residual: store compressed. The bit cannot be an existing
		// pivot (reduction would have cleared it), so back-substituting it
		// out of the row masks never moves a pivot and preserves the
		// "rows avoid fixed bits" invariant.
		bs.fixedMask = bs.fixedMask.Xor(mask)
		if rhs {
			bs.fixedVals = bs.fixedVals.Xor(mask)
		}
		for i := range bs.rows {
			r := &bs.rows[i]
			if !r.mask.And(mask).IsZero() {
				r.mask = r.mask.AndNot(mask)
				r.rhs = r.rhs != rhs
			}
		}
		return Independent
	}
	bs.rows = append(bs.rows, basisRow{mask: mask, rhs: rhs, pivot: mask.LowestBit()})
	if mask.Hi != 0 {
		bs.hiRows = true
	}
	return Independent
}

// FixBit adds the unit constraint "seed bit i == val". It returns false
// if that contradicts the basis.
func (bs *Basis) FixBit(i int, val bool) bool {
	return bs.Add(Form{Mask: UnitVec(i)}, val) != Inconsistent
}

// ProbOf returns Pr[form = val | basis event]: 1 if implied, 0 if
// contradicted, and 1/2 if independent. Probabilities are exact.
func (bs *Basis) ProbOf(fo Form, val bool) float64 {
	mask, rhs := bs.reduce(fo.Mask, val != fo.Const)
	if mask.IsZero() {
		if rhs {
			return 0
		}
		return 1
	}
	return 0.5
}

// Determined reports whether the basis forces the value of form, and the
// forced value if so.
func (bs *Basis) Determined(fo Form) (val bool, determined bool) {
	mask, rhs := bs.reduce(fo.Mask, fo.Const)
	if mask.IsZero() {
		// parity(mask&seed) == rhs reduced with val unknown; reconstruct:
		// reduce(fo.Mask, fo.Const) computed lhs-only residue with rhs
		// tracking fo.Const, so the forced value is rhs.
		return rhs, true
	}
	return false, false
}

// ProbLess returns Pr[val(forms) < t | basis event], where forms are the
// MSB-first affine forms of a b-bit value and 0 ≤ t ≤ 2^b. The basis is
// not modified. The result is an exact dyadic rational.
//
// Decomposition: {V < t} = ⊎_{j: t_j = 1} {V_{>j} = t_{>j} ∧ V_j = 0},
// walking bits MSB→LSB while accumulating prefix-equality constraints.
func ProbLess(bs *Basis, forms []Form, t uint64) float64 {
	if t == 0 {
		return 0
	}
	if t >= uint64(1)<<len(forms) {
		return 1
	}
	w := cloneFromPool(bs)
	prob := probLessInPlace(w, forms, t)
	releaseBasis(w)
	return prob
}

// probLessInPlace is the ProbLess walk on a basis the caller owns and
// lets the walk consume (it accumulates the prefix-equality constraints
// directly instead of cloning first). Each threshold bit costs one
// reduction, shared between the event-probability read and the
// constraint insertion — the ProbOf+Add pair of the naive walk reduced
// the same form twice. The accumulated terms and their order are
// identical to the naive walk, so results are bit-identical.
func probLessInPlace(w *Basis, forms []Form, t uint64) float64 {
	b := len(forms)
	if t == 0 {
		return 0
	}
	if t >= uint64(1)<<b {
		return 1
	}
	prob := 0.0
	condProb := 1.0 // Pr[prefix constraints so far | basis]
	for idx, fo := range forms {
		bitPos := b - 1 - idx // semantic bit position (MSB = b−1)
		tj := t&(1<<bitPos) != 0
		mask, rhs := w.reduce(fo.Mask, fo.Const) // rhs of the event "form = 0"
		if tj {
			if mask.IsZero() {
				if !rhs {
					prob += condProb // bit forced to 0: event implied
				}
			} else {
				prob += condProb * 0.5
			}
		}
		switch w.addReduced(mask, rhs, tj) {
		case Independent:
			condProb *= 0.5
		case Redundant:
			// condProb unchanged
		case Inconsistent:
			return prob
		}
	}
	return prob
}

// ProbBothLess returns Pr[val(fu) < tu ∧ val(fv) < tv | basis event].
// It decomposes the first event into prefix-disjoint affine events and
// evaluates ProbLess for the second under each; exact, O(b³) word ops.
func ProbBothLess(bs *Basis, fu []Form, tu uint64, fv []Form, tv uint64) float64 {
	if tu == 0 || tv == 0 {
		return 0
	}
	_, pboth := ProbBothLessMarginal(bs, fu, tu, fv, tv)
	return pboth
}

// ProbBothLessMarginal returns both Pr[val(fu) < tu | basis event] and
// Pr[val(fu) < tu ∧ val(fv) < tv | basis event] from one walk of fu's
// threshold decomposition: the joint query visits exactly the atoms and
// conditional probabilities of the marginal's walk, so computing them
// together saves the conditional-expectation hot path a full ProbLess
// per edge evaluation. Terms accumulate in the same order as the
// separate queries, so both results are bit-identical to them.
func ProbBothLessMarginal(bs *Basis, fu []Form, tu uint64, fv []Form, tv uint64) (pu, pboth float64) {
	bu := len(fu)
	if tu == 0 {
		return 0, 0
	}
	if tv == 0 {
		if tu >= uint64(1)<<bu {
			return 1, 0
		}
		return ProbLess(bs, fu, tu), 0
	}
	if tu >= uint64(1)<<bu {
		return 1, ProbLess(bs, fv, tv)
	}
	w := cloneFromPool(bs)
	defer releaseBasis(w)
	condProb := 1.0
	for idx, fo := range fu {
		bitPos := bu - 1 - idx
		tj := tu&(1<<bitPos) != 0
		mask, rhs := w.reduce(fo.Mask, fo.Const) // rhs of the event "form = 0"
		if tj {
			// Event E: prefix equal (already in w) ∧ this bit = 0.
			if mask.IsZero() {
				if !rhs {
					pu += condProb
					pboth += condProb * ProbLess(w, fv, tv)
				}
				// Contradicted atom: contributes zero to both.
			} else {
				pu += condProb * 0.5
				w2 := cloneFromPool(w)
				w2.addReduced(mask, rhs, false)
				pboth += condProb * 0.5 * probLessInPlace(w2, fv, tv)
				releaseBasis(w2)
			}
		}
		switch w.addReduced(mask, rhs, tj) {
		case Independent:
			condProb *= 0.5
		case Redundant:
		case Inconsistent:
			return pu, pboth
		}
	}
	return pu, pboth
}
