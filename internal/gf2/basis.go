package gf2

import "sync"

// basisPool recycles the scratch bases that ProbLess/ProbBothLess clone
// on every call: the conditional-expectation inner loop evaluates these
// millions of times per run, and pooling the row storage removes the
// dominant allocation of the whole derandomization.
var basisPool = sync.Pool{New: func() any { return new(Basis) }}

func cloneFromPool(bs *Basis) *Basis {
	return bs.CloneInto(basisPool.Get().(*Basis))
}

func releaseBasis(w *Basis) { basisPool.Put(w) }

// AddResult classifies the outcome of adding an affine constraint to a
// Basis.
type AddResult int

const (
	// Independent: the constraint was linearly independent and was added;
	// the rank grew by one (the event probability halves).
	Independent AddResult = iota + 1
	// Redundant: the constraint is implied by the basis; nothing changed.
	Redundant
	// Inconsistent: the constraint contradicts the basis; the joint event
	// has probability zero. The basis is left unchanged.
	Inconsistent
)

// Basis is a system of consistent affine constraints over the seed bits,
// kept in echelon form (one row per pivot bit). Over a uniformly random
// seed, the event "all constraints hold" has probability 2^−rank.
//
// Basis is the workhorse of the method of conditional expectations
// (Lemma 2.6): fixed seed bits are unit constraints, and coin events add
// hash-output-bit constraints. The zero value is an empty basis.
type Basis struct {
	rows []basisRow
}

type basisRow struct {
	mask  Vec128 // left-hand side: parity(mask & seed)
	rhs   bool   // right-hand side
	pivot int    // lowest set bit of mask; unique per row
}

// NewBasis returns an empty basis.
func NewBasis() *Basis { return &Basis{} }

// Rank returns the number of independent constraints.
func (bs *Basis) Rank() int { return len(bs.rows) }

// Clone returns an independent copy of the basis.
func (bs *Basis) Clone() *Basis {
	rows := make([]basisRow, len(bs.rows))
	copy(rows, bs.rows)
	return &Basis{rows: rows}
}

// CloneInto copies the basis into dst, reusing dst's backing storage,
// and returns dst. It exists for hot loops — the method of conditional
// expectations clones the basis twice per seed bit per conflict edge —
// where Clone's fresh allocation dominates the profile. dst must not be
// bs itself.
func (bs *Basis) CloneInto(dst *Basis) *Basis {
	dst.rows = append(dst.rows[:0], bs.rows...)
	return dst
}

// reduce eliminates the pivots of all existing rows from (mask, rhs).
// Rows are processed in insertion order; because each row was reduced
// against all earlier rows when it was inserted, a single in-order pass
// is a complete reduction.
func (bs *Basis) reduce(mask Vec128, rhs bool) (Vec128, bool) {
	for i := range bs.rows {
		r := &bs.rows[i]
		if mask.Bit(r.pivot) {
			mask = mask.Xor(r.mask)
			rhs = rhs != r.rhs
		}
	}
	return mask, rhs
}

// Add inserts the constraint "form evaluates to val" and reports whether
// it was independent, redundant, or inconsistent.
func (bs *Basis) Add(fo Form, val bool) AddResult {
	// parity(mask & seed) ^ const == val  ⇔  parity(mask & seed) == val ^ const.
	mask, rhs := bs.reduce(fo.Mask, val != fo.Const)
	if mask.IsZero() {
		if rhs {
			return Inconsistent
		}
		return Redundant
	}
	bs.rows = append(bs.rows, basisRow{mask: mask, rhs: rhs, pivot: mask.LowestBit()})
	return Independent
}

// FixBit adds the unit constraint "seed bit i == val". It returns false
// if that contradicts the basis.
func (bs *Basis) FixBit(i int, val bool) bool {
	return bs.Add(Form{Mask: UnitVec(i)}, val) != Inconsistent
}

// ProbOf returns Pr[form = val | basis event]: 1 if implied, 0 if
// contradicted, and 1/2 if independent. Probabilities are exact.
func (bs *Basis) ProbOf(fo Form, val bool) float64 {
	mask, rhs := bs.reduce(fo.Mask, val != fo.Const)
	if mask.IsZero() {
		if rhs {
			return 0
		}
		return 1
	}
	return 0.5
}

// Determined reports whether the basis forces the value of form, and the
// forced value if so.
func (bs *Basis) Determined(fo Form) (val bool, determined bool) {
	mask, rhs := bs.reduce(fo.Mask, fo.Const)
	if mask.IsZero() {
		// parity(mask&seed) == rhs reduced with val unknown; reconstruct:
		// reduce(fo.Mask, fo.Const) computed lhs-only residue with rhs
		// tracking fo.Const, so the forced value is rhs.
		return rhs, true
	}
	return false, false
}

// ProbLess returns Pr[val(forms) < t | basis event], where forms are the
// MSB-first affine forms of a b-bit value and 0 ≤ t ≤ 2^b. The basis is
// not modified. The result is an exact dyadic rational.
//
// Decomposition: {V < t} = ⊎_{j: t_j = 1} {V_{>j} = t_{>j} ∧ V_j = 0},
// walking bits MSB→LSB while accumulating prefix-equality constraints.
func ProbLess(bs *Basis, forms []Form, t uint64) float64 {
	b := len(forms)
	if t == 0 {
		return 0
	}
	if t >= uint64(1)<<b {
		return 1
	}
	w := cloneFromPool(bs)
	defer releaseBasis(w)
	prob := 0.0
	condProb := 1.0 // Pr[prefix constraints so far | basis]
	for idx, fo := range forms {
		bitPos := b - 1 - idx // semantic bit position (MSB = b−1)
		tj := t&(1<<bitPos) != 0
		if tj {
			prob += condProb * w.ProbOf(fo, false)
		}
		switch w.Add(fo, tj) {
		case Independent:
			condProb *= 0.5
		case Redundant:
			// condProb unchanged
		case Inconsistent:
			return prob
		}
	}
	return prob
}

// ProbBothLess returns Pr[val(fu) < tu ∧ val(fv) < tv | basis event].
// It decomposes the first event into prefix-disjoint affine events and
// evaluates ProbLess for the second under each; exact, O(b³) word ops.
func ProbBothLess(bs *Basis, fu []Form, tu uint64, fv []Form, tv uint64) float64 {
	bu := len(fu)
	if tu == 0 || tv == 0 {
		return 0
	}
	if tu >= uint64(1)<<bu {
		return ProbLess(bs, fv, tv)
	}
	w := cloneFromPool(bs)
	defer releaseBasis(w)
	prob := 0.0
	condProb := 1.0
	for idx, fo := range fu {
		bitPos := bu - 1 - idx
		tj := tu&(1<<bitPos) != 0
		if tj {
			// Event E: prefix equal (already in w) ∧ this bit = 0.
			w2 := cloneFromPool(w)
			switch w2.Add(fo, false) {
			case Independent:
				prob += condProb * 0.5 * ProbLess(w2, fv, tv)
			case Redundant:
				prob += condProb * ProbLess(w2, fv, tv)
			case Inconsistent:
				// contributes zero
			}
			releaseBasis(w2)
		}
		switch w.Add(fo, tj) {
		case Independent:
			condProb *= 0.5
		case Redundant:
		case Inconsistent:
			return prob
		}
	}
	return prob
}
