package gf2

import (
	"math/bits"
	"sync"
)

// SplitBasis evaluates probability queries under *both* values of one
// free seed bit at once — the inner question of the method of
// conditional expectations, which needs E[X | S, bit=0] and
// E[X | S, bit=1] for every candidate bit.
//
// The observation making one pass suffice: the two conditioned bases
// differ only in the *value* of the split bit, never in which bits are
// fixed, so the mask side of every Gaussian reduction — the eliminations
// performed, the Independent/zero-residual classification, and therefore
// every 2^−rank conditional factor — is identical for the two branches.
// Only the affine right-hand sides diverge, by the parity of the split
// bit's occurrences in the reduction. SplitBasis therefore stores one
// shared mask structure and carries an rhs *pair* per constraint,
// evaluating both branches with the mask work of one.
//
// Each branch's classifications, accumulated terms, and term order are
// exactly those of evaluating the branch alone on a Basis with the bit
// fixed, so all results are bit-identical to the two-pass evaluation
// (which the differential tests pin).
type SplitBasis struct {
	fixedMask Vec128 // fixed bits of the source basis plus the split bit
	fixedVals Vec128 // branch-0 values; branch 1 differs exactly at split
	split     Vec128 // unit vector at the split bit
	rows      []splitRow
	// hiRows: some row mask has bits ≥ 64 (conservative; false enables
	// the single-word reduction path for low-word forms).
	hiRows bool

	// EdgePair walk scratch, pooled with the basis so the hot loop never
	// zero-initializes stack arrays (b ≤ m ≤ 63 bounds every index).
	res    [64]residPair
	fuRows [64]splitRow
	inner  [64]splitRow

	// Single-word EdgePair scratch (see loEdgePair). resLoU holds C1's
	// residuals for the joint walks, so C2's residuals in resLo survive
	// the walk; the block kernels gather sheet residuals into the same
	// two arrays.
	resLo   [64]loResid
	resLoU  [64]loResid
	fuLo    loRows
	innerLo loRows
}

// loRow / loResid are the compact single-word forms of splitRow /
// residPair used by loEdgePair when every mask fits the low word: the
// two branch right-hand sides pack into one byte (bit 0 = branch 0,
// bit 1 = branch 1), so a row elimination is two XORs.
type loRow struct {
	mask uint64
	rhs  uint8
}

type loResid struct {
	mask uint64
	rhs  uint8
}

// loRows is an echelon system over single-word masks with a pivot
// index: pivs is the OR of all pivot bits and pivMap[b] the row whose
// pivot is bit b (valid only where pivs has the bit, so reuse needs no
// clearing). Reduction is pivot-driven — each step eliminates the
// lowest pivot present, which strictly clears bits from the bottom up,
// so it terminates and yields the canonical residual of the span; no
// time is spent scanning rows that cannot hit. Residual uniqueness
// makes the result identical to the insertion-order scan.
type loRows struct {
	rows   [64]loRow
	n      int
	pivs   uint64
	pivMap [64]uint8
}

func (st *loRows) reset() {
	st.n = 0
	st.pivs = 0
}

// reduce eliminates every stored row from (m, rhs).
func (st *loRows) reduce(m uint64, rhs uint8) (uint64, uint8) {
	for {
		pm := m & st.pivs
		if pm == 0 {
			return m, rhs
		}
		r := &st.rows[st.pivMap[bits.TrailingZeros64(pm)]]
		m ^= r.mask
		rhs ^= r.rhs
	}
}

// add inserts a fully reduced, non-zero residual as a new row.
func (st *loRows) add(m uint64, rhs uint8) {
	piv := m & -m
	st.rows[st.n] = loRow{mask: m, rhs: rhs}
	st.pivMap[bits.TrailingZeros64(piv)] = uint8(st.n)
	st.pivs |= piv
	st.n++
}

type splitRow struct {
	mask Vec128
	piv  Vec128 // unit vector at the pivot (lowest set bit of mask)
	rhs0 bool   // right-hand side under branch 0 (split bit = 0)
	rhs1 bool   // right-hand side under branch 1 (split bit = 1)
}

var splitPool = sync.Pool{New: func() any { return new(SplitBasis) }}

// Split conditions the basis on seed bit `bit` symbolically, returning a
// SplitBasis whose branch 0 is "basis ∧ bit=0" and branch 1 is
// "basis ∧ bit=1". It requires the bit to be untouched by the basis —
// not fixed and absent from every row — which is exactly the state of
// the conditional-expectation loop's candidate bit (bits are examined in
// order and only earlier ones are fixed); ok reports whether that held.
// Release the result with Release when done.
//sbw:allocfree Theorem 1.1 phase-step kernel: one Split per seed bit per node per phase
func (bs *Basis) Split(bit int) (sb *SplitBasis, ok bool) {
	u := UnitVec(bit)
	if !bs.fixedMask.And(u).IsZero() {
		return nil, false
	}
	for i := range bs.rows {
		if !bs.rows[i].mask.And(u).IsZero() {
			return nil, false
		}
	}
	sb = splitPool.Get().(*SplitBasis)
	sb.fixedMask = bs.fixedMask.Xor(u)
	sb.fixedVals = bs.fixedVals // branch 0: split bit = 0
	sb.split = u
	sb.rows = sb.rows[:0]
	sb.hiRows = bs.hiRows
	for i := range bs.rows {
		r := &bs.rows[i]
		sb.rows = append(sb.rows, splitRow{mask: r.mask, piv: UnitVec(r.pivot), rhs0: r.rhs, rhs1: r.rhs}) //sbw:allocok amortized: sb comes from splitPool with its row capacity retained; TestPhaseStepAllocFree pins the steady state at 0 allocs
	}
	return sb, true
}

// Release returns the SplitBasis (and its scratch) to the pool.
func (sb *SplitBasis) Release() { splitPool.Put(sb) }

//sbw:allocfree phase-step kernel: clone target comes from the split pool
func (sb *SplitBasis) cloneInto(dst *SplitBasis) *SplitBasis {
	dst.fixedMask = sb.fixedMask
	dst.fixedVals = sb.fixedVals
	dst.split = sb.split
	dst.rows = append(dst.rows[:0], sb.rows...) //sbw:allocok amortized: dst comes from splitPool with its row capacity retained
	dst.hiRows = sb.hiRows
	return dst
}

func splitFromPool(sb *SplitBasis) *SplitBasis {
	return sb.cloneInto(splitPool.Get().(*SplitBasis))
}

// reduce eliminates the stored constraints from the form (mask, c),
// returning the shared residual mask and the branch right-hand sides of
// the event "form = false".
//sbw:allocfree phase-step kernel: per-form residual reduction, innermost loop
func (sb *SplitBasis) reduce(mask Vec128, c bool) (Vec128, bool, bool) {
	rhs0, rhs1 := c, c
	if mask.Hi == 0 && !sb.hiRows {
		lo := mask.Lo
		if f := lo & sb.fixedMask.Lo; f != 0 {
			rhs0 = rhs0 != (bits.OnesCount64(f&sb.fixedVals.Lo)&1 == 1)
			rhs1 = rhs0 != (f&sb.split.Lo != 0)
			lo &^= sb.fixedMask.Lo
		} else {
			rhs1 = rhs0
		}
		for i := range sb.rows {
			r := &sb.rows[i]
			if lo&r.piv.Lo != 0 {
				lo ^= r.mask.Lo
				rhs0 = rhs0 != r.rhs0
				rhs1 = rhs1 != r.rhs1
			}
		}
		return Vec128{Lo: lo}, rhs0, rhs1
	}
	if f := mask.And(sb.fixedMask); !f.IsZero() {
		rhs0 = rhs0 != f.And(sb.fixedVals).Parity()
		rhs1 = rhs0 != !f.And(sb.split).IsZero() // branches differ by the split bit's presence
		mask = mask.AndNot(sb.fixedMask)
	}
	for i := range sb.rows {
		r := &sb.rows[i]
		if !mask.And(r.piv).IsZero() {
			mask = mask.Xor(r.mask)
			rhs0 = rhs0 != r.rhs0
			rhs1 = rhs1 != r.rhs1
		}
	}
	return mask, rhs0, rhs1
}

// addReduced inserts the pre-reduced residual of "form = val" and
// returns each branch's AddResult. Independence is mask-determined and
// thus shared; a zero residual classifies per branch.
//sbw:allocfree phase-step kernel: row insertion on the pooled walk basis
func (sb *SplitBasis) addReduced(mask Vec128, rhs0, rhs1, val bool) (AddResult, AddResult) {
	rhs0 = rhs0 != val
	rhs1 = rhs1 != val
	if mask.IsZero() {
		a0, a1 := Redundant, Redundant
		if rhs0 {
			a0 = Inconsistent
		}
		if rhs1 {
			a1 = Inconsistent
		}
		return a0, a1
	}
	sb.rows = append(sb.rows, splitRow{mask: mask, piv: UnitVec(mask.LowestBit()), rhs0: rhs0, rhs1: rhs1}) //sbw:allocok amortized: pooled walk basis retains row capacity across evaluations
	if mask.Hi != 0 {
		sb.hiRows = true
	}
	return Independent, Independent
}

// probLessPairInPlace is the dual-branch ProbLess walk on a SplitBasis
// the caller owns: it returns Pr[val(forms) < t] for branch 0 and
// branch 1, accumulating a branch's terms only while that branch's
// constraint system stays consistent (alive0/alive1 seed the flags for
// callers whose branch already died upstream; a dead branch's
// accumulator returns 0). The walk keeps adding the shared mask rows
// after a single branch dies — the survivor still needs them.
//sbw:allocfree phase-step kernel: dual-branch ProbLess walk on a pooled basis
func probLessPairInPlace(w *SplitBasis, forms []Form, t uint64, alive0, alive1 bool) (p0, p1 float64) {
	b := len(forms)
	if t == 0 {
		return 0, 0
	}
	if t >= uint64(1)<<b {
		p0, p1 = 0, 0
		if alive0 {
			p0 = 1
		}
		if alive1 {
			p1 = 1
		}
		return p0, p1
	}
	condProb := 1.0
	for idx, fo := range forms {
		bitPos := b - 1 - idx
		tj := t&(1<<bitPos) != 0
		mask, rhs0, rhs1 := w.reduce(fo.Mask, fo.Const)
		if tj {
			if mask.IsZero() {
				if alive0 && !rhs0 {
					p0 += condProb
				}
				if alive1 && !rhs1 {
					p1 += condProb
				}
			} else {
				half := condProb * 0.5
				if alive0 {
					p0 += half
				}
				if alive1 {
					p1 += half
				}
			}
		}
		a0, a1 := w.addReduced(mask, rhs0, rhs1, tj)
		if a0 == Independent {
			condProb *= 0.5 // shared: independence is mask-determined
		}
		if a0 == Inconsistent {
			alive0 = false
		}
		if a1 == Inconsistent {
			alive1 = false
		}
		if !alive0 && !alive1 {
			return p0, p1
		}
	}
	return p0, p1
}

// residPair is one form's residual against a SplitBasis plus any rows a
// walk has layered on top: the shared mask and the per-branch right-hand
// sides of the event "form = false".
type residPair struct {
	mask Vec128
	rhs0 bool
	rhs1 bool
}

// residual reduces a form against the conditioned basis only (fixed
// bits and source rows) — the part shared by every walk of one edge
// evaluation.
//sbw:allocfree phase-step kernel: shared residual of one edge evaluation
func (sb *SplitBasis) residual(fo Form) residPair {
	mask, rhs0, rhs1 := sb.reduce(fo.Mask, fo.Const)
	return residPair{mask: mask, rhs0: rhs0, rhs1: rhs1}
}

// innerPairWalk is the dual-branch ProbLess walk over precomputed
// residuals: res[i] is forms[i] reduced against everything below this
// walk (the conditioned basis and, for the joint query, the outer
// walk's accumulated prefix rows), and atom, when non-nil, is one
// additional constraint row ordered before the walk's own rows. Rows
// live in a stack array, so an inner walk allocates nothing and rescans
// only the constraints that are actually new — the residuals already
// absorbed the outer context. Classifications, terms, and order are
// exactly those of probLessPairInPlace on an equivalent SplitBasis.
//sbw:allocfree phase-step kernel: stack-array walk, the hottest loop of the derandomization
func innerPairWalk(rows *[64]splitRow, res []residPair, t uint64, atom *splitRow, alive0, alive1 bool) (p0, p1 float64) {
	b := len(res)
	if t == 0 {
		return 0, 0
	}
	if t >= uint64(1)<<b {
		if alive0 {
			p0 = 1
		}
		if alive1 {
			p1 = 1
		}
		return p0, p1
	}
	n := 0
	condProb := 1.0
	for idx := 0; idx < b; idx++ {
		r := res[idx]
		if atom != nil && !r.mask.And(atom.piv).IsZero() {
			r.mask = r.mask.Xor(atom.mask)
			r.rhs0 = r.rhs0 != atom.rhs0
			r.rhs1 = r.rhs1 != atom.rhs1
		}
		for k := 0; k < n; k++ {
			w := &rows[k]
			if !r.mask.And(w.piv).IsZero() {
				r.mask = r.mask.Xor(w.mask)
				r.rhs0 = r.rhs0 != w.rhs0
				r.rhs1 = r.rhs1 != w.rhs1
			}
		}
		tj := t&(1<<(b-1-idx)) != 0
		if tj {
			if r.mask.IsZero() {
				if alive0 && !r.rhs0 {
					p0 += condProb
				}
				if alive1 && !r.rhs1 {
					p1 += condProb
				}
			} else {
				half := condProb * 0.5
				if alive0 {
					p0 += half
				}
				if alive1 {
					p1 += half
				}
			}
		}
		// Continue branch: prefix bit equals tj.
		rr0, rr1 := r.rhs0 != tj, r.rhs1 != tj
		if r.mask.IsZero() {
			if rr0 {
				alive0 = false
			}
			if rr1 {
				alive1 = false
			}
			if !alive0 && !alive1 {
				return p0, p1
			}
		} else {
			rows[n] = splitRow{mask: r.mask, piv: UnitVec(r.mask.LowestBit()), rhs0: rr0, rhs1: rr1}
			n++
			condProb *= 0.5
		}
	}
	return p0, p1
}

// EdgePair returns the six probabilities the Lemma 2.6 edge term needs —
// Pr[C1=1], Pr[C2=1], and Pr[C1=1 ∧ C2=1], each under branch 0 and
// branch 1 — in one pass: C2's residuals against the conditioned basis
// are computed once and shared by its marginal walk and by every inner
// walk of the joint query (updated incrementally as the outer walk adds
// prefix rows), and all walk rows live on the stack. Every output is
// bit-identical to the corresponding single-query evaluations
// (ProbOnePair, and ProbBothLessMarginal on a conditioned Basis).
//sbw:allocfree phase-step kernel: six edge probabilities per owned edge per seed bit
func (sb *SplitBasis) EdgePair(c1, c2 Coin) (p1u0, p1v0, p110, p1u1, p1v1, p111 float64) {
	fu, tu, fv, tv := c1.forms, c1.t, c2.forms, c2.t
	if !sb.hiRows && c1.lo && c2.lo {
		return sb.loEdgePair(fu, tu, fv, tv)
	}
	bu, bv := len(fu), len(fv)

	res := sb.res[:bv]
	fvWalkable := tv > 0 && tv < uint64(1)<<bv
	if fvWalkable {
		for i, fo := range fv {
			res[i] = sb.residual(fo)
		}
		p1v0, p1v1 = innerPairWalk(&sb.inner, res, tv, nil, true, true)
	} else if tv != 0 {
		p1v0, p1v1 = 1, 1
	}

	if tu == 0 {
		return 0, p1v0, 0, 0, p1v1, 0
	}
	if tu >= uint64(1)<<bu {
		// C1 always 1: the joint walk degenerates to C2's marginal.
		return 1, p1v0, p1v0, 1, p1v1, p1v1
	}
	if tv == 0 {
		p1u0, p1u1 = sb.probLessPairClone(fu, tu)
		return p1u0, 0, 0, p1u1, 0, 0
	}

	// Joint walk over C1's threshold decomposition, residuals of C2
	// updated in step with the accumulated prefix rows.
	fuRows := &sb.fuRows
	nfu := 0
	alive0, alive1 := true, true
	condProb := 1.0
	for idx, fo := range fu {
		mask, rhs0, rhs1 := sb.reduce(fo.Mask, fo.Const)
		for k := 0; k < nfu; k++ {
			w := &fuRows[k]
			if !mask.And(w.piv).IsZero() {
				mask = mask.Xor(w.mask)
				rhs0 = rhs0 != w.rhs0
				rhs1 = rhs1 != w.rhs1
			}
		}
		tj := tu&(1<<(bu-1-idx)) != 0
		if tj {
			if mask.IsZero() {
				e0 := alive0 && !rhs0
				e1 := alive1 && !rhs1
				if e0 || e1 {
					q0, q1 := innerPairWalk(&sb.inner, res, tv, nil, e0, e1)
					if e0 {
						p1u0 += condProb
						p110 += condProb * q0
					}
					if e1 {
						p1u1 += condProb
						p111 += condProb * q1
					}
				}
			} else {
				half := condProb * 0.5
				atom := splitRow{mask: mask, piv: UnitVec(mask.LowestBit()), rhs0: rhs0, rhs1: rhs1}
				q0, q1 := innerPairWalk(&sb.inner, res, tv, &atom, alive0, alive1)
				if alive0 {
					p1u0 += half
					p110 += half * q0
				}
				if alive1 {
					p1u1 += half
					p111 += half * q1
				}
			}
		}
		// Continue branch: prefix bit equals tj.
		rr0, rr1 := rhs0 != tj, rhs1 != tj
		if mask.IsZero() {
			if rr0 {
				alive0 = false
			}
			if rr1 {
				alive1 = false
			}
			if !alive0 && !alive1 {
				return p1u0, p1v0, p110, p1u1, p1v1, p111
			}
		} else {
			row := splitRow{mask: mask, piv: UnitVec(mask.LowestBit()), rhs0: rr0, rhs1: rr1}
			fuRows[nfu] = row
			nfu++
			condProb *= 0.5
			if fvWalkable {
				for i := 0; i < bv; i++ {
					if !res[i].mask.And(row.piv).IsZero() {
						res[i].mask = res[i].mask.Xor(row.mask)
						res[i].rhs0 = res[i].rhs0 != row.rhs0
						res[i].rhs1 = res[i].rhs1 != row.rhs1
					}
				}
			}
		}
	}
	return p1u0, p1v0, p110, p1u1, p1v1, p111
}

// formsLo reports whether every form's mask fits the low word.
func formsLo(fs []Form) bool {
	for i := range fs {
		if fs[i].Mask.Hi != 0 {
			return false
		}
	}
	return true
}

// loReduce is the single-word residual of a form against the
// conditioned basis: mask must fit the low word and no row may have
// high bits. The returned byte packs the branch right-hand sides of
// "form = false" (bit 0 = branch 0, bit 1 = branch 1).
func (sb *SplitBasis) loReduce(mask uint64, c bool) (uint64, uint8) {
	var rhs uint8
	if c {
		rhs = 3
	}
	if f := mask & sb.fixedMask.Lo; f != 0 {
		if bits.OnesCount64(f&sb.fixedVals.Lo)&1 == 1 {
			rhs ^= 3
		}
		if f&sb.split.Lo != 0 {
			rhs ^= 2
		}
		mask &^= sb.fixedMask.Lo
	}
	return sb.loRowReduce(mask, rhs)
}

// loRowReduce eliminates the source basis rows from an already
// fixed-bit-reduced residual — the row half of loReduce, shared with
// the sheet gather path (whose planes fold the fixed bits but cannot
// know the rows).
func (sb *SplitBasis) loRowReduce(mask uint64, rhs uint8) (uint64, uint8) {
	for i := range sb.rows {
		r := &sb.rows[i]
		if mask&r.piv.Lo != 0 {
			mask ^= r.mask.Lo
			if r.rhs0 {
				rhs ^= 1
			}
			if r.rhs1 {
				rhs ^= 2
			}
		}
	}
	return mask, rhs
}

// loInnerWalk is innerPairWalk on the compact single-word rows: alive
// packs the branch liveness the same way the rhs bytes pack the
// right-hand sides. atom, when hasAtom, is one fully reduced constraint
// seeding the system. The accumulated terms and their order are
// identical to the two-word walk.
func loInnerWalk(st *loRows, res []loResid, t uint64, atomMask uint64, atomRhs uint8, hasAtom bool, alive uint8) (p0, p1 float64) {
	b := len(res)
	if t == 0 {
		return 0, 0
	}
	if t >= uint64(1)<<b {
		if alive&1 != 0 {
			p0 = 1
		}
		if alive&2 != 0 {
			p1 = 1
		}
		return p0, p1
	}
	st.reset()
	if hasAtom {
		st.add(atomMask, atomRhs)
	}
	condProb := 1.0
	for idx := 0; idx < b; idx++ {
		m, rhs := st.reduce(res[idx].mask, res[idx].rhs)
		tj := t&(1<<(b-1-idx)) != 0
		if tj {
			if m == 0 {
				if alive&1 != 0 && rhs&1 == 0 {
					p0 += condProb
				}
				if alive&2 != 0 && rhs&2 == 0 {
					p1 += condProb
				}
			} else {
				half := condProb * 0.5
				if alive&1 != 0 {
					p0 += half
				}
				if alive&2 != 0 {
					p1 += half
				}
			}
		}
		// Continue branch: prefix bit equals tj.
		rr := rhs
		if tj {
			rr ^= 3
		}
		if m == 0 {
			alive &^= rr
			if alive == 0 {
				return p0, p1
			}
		} else {
			st.add(m, rr)
			condProb *= 0.5
		}
	}
	return p0, p1
}

// loEdgePair is EdgePair on the compact single-word representation —
// the steady state of every practical parameterization (seed length
// k·m ≤ 64). Walk for walk and term for term it mirrors the generic
// path, so results are bit-identical.
func (sb *SplitBasis) loEdgePair(fu []Form, tu uint64, fv []Form, tv uint64) (p1u0, p1v0, p110, p1u1, p1v1, p111 float64) {
	bu, bv := len(fu), len(fv)
	res := sb.resLo[:bv]
	fvWalkable := tv > 0 && tv < uint64(1)<<bv
	if fvWalkable {
		for i, fo := range fv {
			m, rhs := sb.loReduce(fo.Mask.Lo, fo.Const)
			res[i] = loResid{mask: m, rhs: rhs}
		}
		p1v0, p1v1 = loInnerWalk(&sb.innerLo, res, tv, 0, 0, false, 3)
	} else if tv != 0 {
		p1v0, p1v1 = 1, 1
	}

	if tu == 0 {
		return 0, p1v0, 0, 0, p1v1, 0
	}
	if tu >= uint64(1)<<bu {
		// C1 always 1: the joint walk degenerates to C2's marginal.
		return 1, p1v0, p1v0, 1, p1v1, p1v1
	}
	if tv == 0 {
		resU := sb.resLo[:bu]
		for i, fo := range fu {
			m, rhs := sb.loReduce(fo.Mask.Lo, fo.Const)
			resU[i] = loResid{mask: m, rhs: rhs}
		}
		p1u0, p1u1 = loInnerWalk(&sb.innerLo, resU, tu, 0, 0, false, 3)
		return p1u0, 0, 0, p1u1, 0, 0
	}

	p1u0, p110, p1u1, p111 = sb.loJointWalk(fu, tu, res, tv, fvWalkable)
	return p1u0, p1v0, p110, p1u1, p1v1, p111
}

// loJointPair is loEdgePair minus C2's marginal walk, for callers that
// already hold the marginal (pv0/pv1, used only by the tu ≥ 2^b
// boundary, where the joint equals it).
func (sb *SplitBasis) loJointPair(fu []Form, tu uint64, fv []Form, tv uint64, pv0, pv1 float64) (p1u0, p110, p1u1, p111 float64) {
	bu, bv := len(fu), len(fv)
	if tu == 0 {
		return 0, 0, 0, 0
	}
	if tu >= uint64(1)<<bu {
		return 1, pv0, 1, pv1
	}
	if tv == 0 {
		resU := sb.resLo[:bu]
		for i, fo := range fu {
			m, rhs := sb.loReduce(fo.Mask.Lo, fo.Const)
			resU[i] = loResid{mask: m, rhs: rhs}
		}
		p1u0, p1u1 = loInnerWalk(&sb.innerLo, resU, tu, 0, 0, false, 3)
		return p1u0, 0, p1u1, 0
	}
	res := sb.resLo[:bv]
	fvWalkable := tv < uint64(1)<<bv
	if fvWalkable {
		for i, fo := range fv {
			m, rhs := sb.loReduce(fo.Mask.Lo, fo.Const)
			res[i] = loResid{mask: m, rhs: rhs}
		}
	}
	return sb.loJointWalk(fu, tu, res, tv, fvWalkable)
}

// loJointWalk is the joint walk over C1's threshold decomposition, with
// C2's residuals (against the conditioned basis) updated in step with
// the accumulated prefix rows. C1's residuals against the conditioned
// basis depend only on the basis — never on the prefix rows the walk
// accumulates — so they are computed up front (which is also where the
// sheet-gathered block path joins) and the walk proper reduces them
// only against its own rows.
func (sb *SplitBasis) loJointWalk(fu []Form, tu uint64, res []loResid, tv uint64, fvWalkable bool) (p1u0, p110, p1u1, p111 float64) {
	resU := sb.resLoU[:len(fu)]
	for i := range fu {
		m, rhs := sb.loReduce(fu[i].Mask.Lo, fu[i].Const)
		resU[i] = loResid{mask: m, rhs: rhs}
	}
	return sb.loJointWalkResid(resU, tu, res, tv, fvWalkable)
}

// loJointWalkResid is loJointWalk over precomputed C1 residuals.
//sbw:allocfree phase-step kernel: the joint walk shared by the scalar and block paths
func (sb *SplitBasis) loJointWalkResid(resU []loResid, tu uint64, res []loResid, tv uint64, fvWalkable bool) (p1u0, p110, p1u1, p111 float64) {
	bu, bv := len(resU), len(res)
	fuRows := &sb.fuLo
	fuRows.reset()
	alive := uint8(3)
	condProb := 1.0
	for idx := range resU {
		m, rhs := fuRows.reduce(resU[idx].mask, resU[idx].rhs)
		tj := tu&(1<<(bu-1-idx)) != 0
		if tj {
			if m == 0 {
				var e uint8
				if alive&1 != 0 && rhs&1 == 0 {
					e |= 1
				}
				if alive&2 != 0 && rhs&2 == 0 {
					e |= 2
				}
				if e != 0 {
					q0, q1 := loInnerWalk(&sb.innerLo, res, tv, 0, 0, false, e)
					if e&1 != 0 {
						p1u0 += condProb
						p110 += condProb * q0
					}
					if e&2 != 0 {
						p1u1 += condProb
						p111 += condProb * q1
					}
				}
			} else {
				half := condProb * 0.5
				q0, q1 := loInnerWalk(&sb.innerLo, res, tv, m, rhs, true, alive)
				if alive&1 != 0 {
					p1u0 += half
					p110 += half * q0
				}
				if alive&2 != 0 {
					p1u1 += half
					p111 += half * q1
				}
			}
		}
		// Continue branch: prefix bit equals tj.
		rr := rhs
		if tj {
			rr ^= 3
		}
		if m == 0 {
			alive &^= rr
			if alive == 0 {
				return p1u0, p110, p1u1, p111
			}
		} else {
			piv := m & -m
			fuRows.add(m, rr)
			condProb *= 0.5
			if fvWalkable {
				for i := 0; i < bv; i++ {
					if res[i].mask&piv != 0 {
						res[i].mask ^= m
						res[i].rhs ^= rr
					}
				}
			}
		}
	}
	return p1u0, p110, p1u1, p111
}

// probLessPairClone runs the dual-branch ProbLess on a pooled clone.
func (sb *SplitBasis) probLessPairClone(forms []Form, t uint64) (float64, float64) {
	w := splitFromPool(sb)
	p0, p1 := probLessPairInPlace(w, forms, t, true, true)
	w.Release()
	return p0, p1
}

// ProbOnePair returns Pr[C = 1] under branch 0 and branch 1.
//sbw:allocfree phase-step kernel: neighbor-marginal walk, memo-miss path
func (sb *SplitBasis) ProbOnePair(c Coin) (p0, p1 float64) {
	if c.t == 0 {
		return 0, 0
	}
	if c.t >= uint64(1)<<c.b {
		return 1, 1
	}
	if !sb.hiRows && c.lo {
		res := sb.resLo[:c.b]
		for i, fo := range c.forms {
			m, rhs := sb.loReduce(fo.Mask.Lo, fo.Const)
			res[i] = loResid{mask: m, rhs: rhs}
		}
		return loInnerWalk(&sb.innerLo, res, c.t, 0, 0, false, 3)
	}
	w := splitFromPool(sb)
	p0, p1 = probLessPairInPlace(w, c.forms, c.t, true, true)
	w.Release()
	return p0, p1
}

// EdgePairGivenMarginal is EdgePair with C2's marginal supplied by the
// caller (typically from a memo of this pure function of the coin and
// the conditioning): it returns only the C1 marginal and the joint
// probabilities, skipping C2's marginal walk. pv0/pv1 must equal
// ProbOnePair(c2) under this basis — the tu ≥ 2^b boundary reuses them.
//sbw:allocfree phase-step kernel: memo-hit variant of EdgePair
func (sb *SplitBasis) EdgePairGivenMarginal(c1, c2 Coin, pv0, pv1 float64) (p1u0, p110, p1u1, p111 float64) {
	if !sb.hiRows && c1.lo && c2.lo {
		return sb.loJointPair(c1.forms, c1.t, c2.forms, c2.t, pv0, pv1)
	}
	// Generic fallback: recompute the marginal along the way (cold path).
	p1u0, _, p110, p1u1, _, p111 = sb.EdgePair(c1, c2)
	return p1u0, p110, p1u1, p111
}
