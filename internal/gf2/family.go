package gf2

import "fmt"

// Family is the k-wise independent hash family of Theorem 2.4 [Vad12]:
//
//	h_S(x) = A_{k−1} ⊗ x^{k−1} ⊕ … ⊕ A_1 ⊗ x ⊕ A_0   over GF(2^m),
//
// where the seed S packs the k coefficients A_0..A_{k−1} into k·m bits
// (coefficient j occupies seed bits [j·m, (j+1)·m)). For distinct inputs
// x_1,…,x_k the values h_S(x_1),…,h_S(x_k) are independent and uniform
// over GF(2^m) when S is uniform (Vandermonde argument). The paper's
// algorithms use k = 2 (pairwise independence suffices, Section 1.4).
//
// Every output bit of h_S(x) is an affine (here: linear) form over the
// seed bits, because carry-less multiplication by the constant x^j is
// GF(2)-linear in A_j. OutputForms materializes those forms; they are the
// input to the conditional-probability engine.
type Family struct {
	f *Field
	k int
}

// NewFamily returns the k-wise independent family over GF(2^m).
// Requires k ≥ 1 and k·m ≤ 128 so that seeds fit in a Vec128.
func NewFamily(m, k int) (*Family, error) {
	if k < 1 {
		return nil, fmt.Errorf("gf2: family independence k=%d < 1", k)
	}
	if k*m > 128 {
		return nil, fmt.Errorf("gf2: seed length k·m = %d exceeds 128 bits", k*m)
	}
	f, err := NewField(m)
	if err != nil {
		return nil, err
	}
	return &Family{f: f, k: k}, nil
}

// MustFamily is NewFamily but panics on error.
func MustFamily(m, k int) *Family {
	fam, err := NewFamily(m, k)
	if err != nil {
		panic(err)
	}
	return fam
}

// Field returns the underlying field.
func (fam *Family) Field() *Field { return fam.f }

// K returns the independence parameter.
func (fam *Family) K() int { return fam.k }

// SeedBits returns the seed length d = k·m in bits.
func (fam *Family) SeedBits() int { return fam.k * fam.f.m }

// coefficient extracts A_j from the seed.
func (fam *Family) coefficient(seed Vec128, j int) uint64 {
	m := fam.f.m
	start := j * m
	var out uint64
	for b := 0; b < m; b++ {
		if seed.Bit(start + b) {
			out |= 1 << b
		}
	}
	return out
}

// Eval evaluates h_S(x) directly (Horner's rule). Used for executing a
// chosen seed and for cross-checking OutputForms in tests.
func (fam *Family) Eval(seed Vec128, x uint64) uint64 {
	acc := uint64(0)
	for j := fam.k - 1; j >= 0; j-- {
		acc = fam.f.Mul(acc, x)
		acc ^= fam.coefficient(seed, j)
	}
	return acc
}

// OutputForms returns the affine forms of the low outBits bits of h_S(x),
// most significant first: result[0] is bit outBits−1 of h_S(x), and
// result[outBits−1] is bit 0. Requires 1 ≤ outBits ≤ m.
//
// Construction: h_S(x) = Σ_j A_j ⊗ c_j with constants c_j = x^j. Bit t of
// A_j ⊗ c_j equals the parity over i of A_j[i]·(c_j·y^i mod g)[t], so the
// mask of output bit t collects, for every coefficient j and every bit i,
// whether (c_j · y^i mod g) has bit t set.
func (fam *Family) OutputForms(x uint64, outBits int) []Form {
	m := fam.f.m
	if outBits < 1 || outBits > m {
		panic(fmt.Sprintf("gf2: outBits=%d out of range [1,%d]", outBits, m))
	}
	forms := make([]Form, outBits)
	cj := uint64(1) // x^0
	for j := 0; j < fam.k; j++ {
		// col = c_j · y^i mod g for i = 0..m−1; seed bit index j·m+i.
		col := cj
		for i := 0; i < m; i++ {
			for t := 0; t < outBits; t++ {
				if col&(1<<t) != 0 {
					idx := outBits - 1 - t // MSB-first position of bit t
					forms[idx].Mask = forms[idx].Mask.WithBit(j*m+i, true)
				}
			}
			col = fam.f.MulByX(col)
		}
		cj = fam.f.Mul(cj, x)
	}
	return forms
}

// WindowForms returns the affine forms of bits [lo, lo+width) of h_S(x),
// most significant first (result[0] is bit lo+width−1). Windows let one
// pairwise-independent hash evaluation drive several independent biased
// coins per node (the multi-bit acceleration of Theorem 1.3): for a
// uniform field element, disjoint bit windows are independent, and across
// two nodes the full values are already independent.
func (fam *Family) WindowForms(x uint64, lo, width int) []Form {
	m := fam.f.m
	if lo < 0 || width < 1 || lo+width > m {
		panic(fmt.Sprintf("gf2: window [%d,%d) out of range for m=%d", lo, lo+width, m))
	}
	full := fam.OutputForms(x, m) // full[i] is bit m−1−i
	forms := make([]Form, width)
	for i := 0; i < width; i++ {
		// forms[i] must be bit lo+width−1−i.
		forms[i] = full[m-1-(lo+width-1-i)]
	}
	return forms
}

// ValueFromForms evaluates MSB-first forms on a seed and packs them into
// an integer (forms[0] is the most significant bit).
func ValueFromForms(forms []Form, seed Vec128) uint64 {
	var v uint64
	for _, fo := range forms {
		v <<= 1
		if fo.Eval(seed) {
			v |= 1
		}
	}
	return v
}
