package gf2

import (
	"fmt"
	"math/bits"
	"sync"
)

// Family is the k-wise independent hash family of Theorem 2.4 [Vad12]:
//
//	h_S(x) = A_{k−1} ⊗ x^{k−1} ⊕ … ⊕ A_1 ⊗ x ⊕ A_0   over GF(2^m),
//
// where the seed S packs the k coefficients A_0..A_{k−1} into k·m bits
// (coefficient j occupies seed bits [j·m, (j+1)·m)). For distinct inputs
// x_1,…,x_k the values h_S(x_1),…,h_S(x_k) are independent and uniform
// over GF(2^m) when S is uniform (Vandermonde argument). The paper's
// algorithms use k = 2 (pairwise independence suffices, Section 1.4).
//
// Every output bit of h_S(x) is an affine (here: linear) form over the
// seed bits, because carry-less multiplication by the constant x^j is
// GF(2)-linear in A_j. OutputForms materializes those forms; they are the
// input to the conditional-probability engine.
type Family struct {
	f *Field
	k int
}

// NewFamily returns the k-wise independent family over GF(2^m).
// Requires k ≥ 1 and k·m ≤ 128 so that seeds fit in a Vec128.
func NewFamily(m, k int) (*Family, error) {
	if k < 1 {
		return nil, fmt.Errorf("gf2: family independence k=%d < 1", k)
	}
	if k*m > 128 {
		return nil, fmt.Errorf("gf2: seed length k·m = %d exceeds 128 bits", k*m)
	}
	f, err := NewField(m)
	if err != nil {
		return nil, err
	}
	return &Family{f: f, k: k}, nil
}

// MustFamily is NewFamily but panics on error.
func MustFamily(m, k int) *Family {
	fam, err := NewFamily(m, k)
	if err != nil {
		panic(err)
	}
	return fam
}

// Field returns the underlying field.
func (fam *Family) Field() *Field { return fam.f }

// K returns the independence parameter.
func (fam *Family) K() int { return fam.k }

// SeedBits returns the seed length d = k·m in bits.
func (fam *Family) SeedBits() int { return fam.k * fam.f.m }

// coefficient extracts A_j from the seed in two word shifts.
func (fam *Family) coefficient(seed Vec128, j int) uint64 {
	m := fam.f.m
	return seed.Extract(j*m, m)
}

// Eval evaluates h_S(x) directly (Horner's rule). Used for executing a
// chosen seed and for cross-checking OutputForms in tests. The Horner
// chain costs k−1 table-driven multiplies; the coefficients come out of
// the seed as word extractions, not per-bit probes.
func (fam *Family) Eval(seed Vec128, x uint64) uint64 {
	acc := uint64(0)
	for j := fam.k - 1; j >= 0; j-- {
		acc = fam.f.Mul(acc, x)
		acc ^= fam.coefficient(seed, j)
	}
	return acc
}

// OutputForms returns the affine forms of the low outBits bits of h_S(x),
// most significant first: result[0] is bit outBits−1 of h_S(x), and
// result[outBits−1] is bit 0. Requires 1 ≤ outBits ≤ m.
func (fam *Family) OutputForms(x uint64, outBits int) []Form {
	return fam.OutputFormsInto(x, outBits, nil)
}

// OutputFormsInto is OutputForms writing into dst (grown from dst[:0] and
// returned), so hot callers that cache or pool their form slices add no
// allocation per call.
//
// Construction: h_S(x) = Σ_j A_j ⊗ c_j with constants c_j = x^j, and the
// x-power chain c_0, c_1, … is carried across coefficients (one multiply
// per j, none for the k = 2 case of the paper: c_0 = 1 contributes the
// identity map and c_1 = x is free). Bit t of A_j ⊗ c_j equals the
// parity over i of A_j[i]·(c_j·y^i mod g)[t], so coefficient j's columns
// col_i = c_j·y^i are walked by a MulByX chain and transposed into one
// m-bit mask word per output bit, placed at seed-bit offset j·m.
func (fam *Family) OutputFormsInto(x uint64, outBits int, dst []Form) []Form {
	m := fam.f.m
	if outBits < 1 || outBits > m {
		panic(fmt.Sprintf("gf2: outBits=%d out of range [1,%d]", outBits, m))
	}
	forms := growForms(dst, outBits)
	// Coefficient 0: c_0 = 1, so col_i = y^i and bit t of col_i is set
	// iff i == t — output bit t is exactly seed bit t.
	for t := 0; t < outBits; t++ {
		forms[outBits-1-t].Mask = forms[outBits-1-t].Mask.orAt(0, uint64(1)<<t)
	}
	cj := x
	outMask := uint64(1)<<outBits - 1
	var wt [64]uint64 // wt[t]: transposed mask word of output bit t
	for j := 1; j < fam.k; j++ {
		if j > 1 {
			cj = fam.f.Mul(cj, x) // c_j = x^j; no multiplies for k ≤ 2
		}
		for t := 0; t < outBits; t++ {
			wt[t] = 0
		}
		col := cj
		for i := 0; i < m; i++ {
			rem := col & outMask
			for rem != 0 {
				t := bits.TrailingZeros64(rem)
				rem &= rem - 1
				wt[t] |= uint64(1) << i
			}
			col = fam.f.MulByX(col)
		}
		for t := 0; t < outBits; t++ {
			idx := outBits - 1 - t // MSB-first position of bit t
			forms[idx].Mask = forms[idx].Mask.orAt(j*m, wt[t])
		}
	}
	return forms
}

// growForms resizes dst to n zeroed Forms, reusing its backing storage
// when the capacity suffices.
func growForms(dst []Form, n int) []Form {
	if cap(dst) < n {
		return make([]Form, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = Form{}
	}
	return dst
}

// formScratch pools the full-width intermediate of WindowFormsInto.
var formScratch = sync.Pool{New: func() any { return new([]Form) }}

// WindowForms returns the affine forms of bits [lo, lo+width) of h_S(x),
// most significant first (result[0] is bit lo+width−1). Windows let one
// pairwise-independent hash evaluation drive several independent biased
// coins per node (the multi-bit acceleration of Theorem 1.3): for a
// uniform field element, disjoint bit windows are independent, and across
// two nodes the full values are already independent.
func (fam *Family) WindowForms(x uint64, lo, width int) []Form {
	return fam.WindowFormsInto(x, lo, width, nil)
}

// WindowFormsInto is WindowForms writing into dst (grown from dst[:0] and
// returned); the full-width intermediate comes from an internal pool.
func (fam *Family) WindowFormsInto(x uint64, lo, width int, dst []Form) []Form {
	m := fam.f.m
	if lo < 0 || width < 1 || lo+width > m {
		panic(fmt.Sprintf("gf2: window [%d,%d) out of range for m=%d", lo, lo+width, m))
	}
	scratch := formScratch.Get().(*[]Form)
	full := fam.OutputFormsInto(x, m, *scratch) // full[i] is bit m−1−i
	forms := growForms(dst, width)
	for i := 0; i < width; i++ {
		// forms[i] must be bit lo+width−1−i.
		forms[i] = full[m-1-(lo+width-1-i)]
	}
	*scratch = full
	formScratch.Put(scratch)
	return forms
}

// ValueFromForms evaluates MSB-first forms on a seed and packs them into
// an integer (forms[0] is the most significant bit).
func ValueFromForms(forms []Form, seed Vec128) uint64 {
	var v uint64
	for _, fo := range forms {
		v <<= 1
		if fo.Eval(seed) {
			v |= 1
		}
	}
	return v
}
