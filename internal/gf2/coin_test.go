package gf2

import (
	"math"
	"testing"

	"smallbandwidth/internal/prng"
)

func TestNewCoinValidation(t *testing.T) {
	fam := MustFamily(8, 2)
	if _, err := NewCoin(fam, 1, 8, 3, 0); err == nil {
		t.Error("den=0 accepted")
	}
	if _, err := NewCoin(fam, 1, 8, 5, 3); err == nil {
		t.Error("num>den accepted")
	}
	if _, err := NewCoin(fam, 1, 0, 1, 2); err == nil {
		t.Error("b=0 accepted")
	}
	if _, err := NewCoin(fam, 1, 9, 1, 2); err == nil {
		t.Error("b>m accepted")
	}
}

// TestCoinExactProbability verifies Lemma 2.5 exactly by enumerating all
// seeds: Pr[C=1] = T/2^b ∈ [p, p+2^−b], with p ∈ {0,1} exact.
func TestCoinExactProbability(t *testing.T) {
	fam := MustFamily(4, 2)
	seeds := allSeeds(fam.SeedBits())
	for _, pc := range []struct{ num, den uint64 }{
		{0, 5}, {5, 5}, {1, 3}, {2, 3}, {1, 7}, {3, 4}, {7, 9}, {1, 2},
	} {
		for x := uint64(0); x < 16; x++ {
			b := 4
			coin, err := NewCoin(fam, x, b, pc.num, pc.den)
			if err != nil {
				t.Fatal(err)
			}
			ones := 0
			for _, s := range seeds {
				if coin.Value(s) {
					ones++
				}
			}
			got := float64(ones) / float64(len(seeds))
			p := float64(pc.num) / float64(pc.den)
			eps := 1.0 / 16
			if pc.num == 0 && got != 0 {
				t.Fatalf("p=0 x=%d: Pr = %v, want exactly 0", x, got)
			}
			if pc.num == pc.den && got != 1 {
				t.Fatalf("p=1 x=%d: Pr = %v, want exactly 1", x, got)
			}
			if got < p-1e-12 || got > p+eps+1e-12 {
				t.Fatalf("p=%d/%d x=%d: Pr = %v outside [p, p+2^-b]", pc.num, pc.den, x, got)
			}
			// Also: the engine's marginal with empty basis must match the census.
			if eng := coin.ProbOne(NewBasis()); math.Abs(eng-got) > 1e-12 {
				t.Fatalf("engine %v vs census %v", eng, got)
			}
		}
	}
}

// TestAdjacentCoinsIndependent: coins built on distinct inputs are
// independent (the heart of Lemma 2.5's third property).
func TestAdjacentCoinsIndependent(t *testing.T) {
	fam := MustFamily(4, 2)
	seeds := allSeeds(fam.SeedBits())
	c1, _ := NewCoin(fam, 3, 4, 1, 3)
	c2, _ := NewCoin(fam, 9, 4, 2, 5)
	var n11, n1, n2 int
	for _, s := range seeds {
		v1, v2 := c1.Value(s), c2.Value(s)
		if v1 {
			n1++
		}
		if v2 {
			n2++
		}
		if v1 && v2 {
			n11++
		}
	}
	total := float64(len(seeds))
	gotJoint := float64(n11) / total
	wantJoint := float64(n1) / total * float64(n2) / total
	if math.Abs(gotJoint-wantJoint) > 1e-12 {
		t.Fatalf("joint %v ≠ product %v: coins not independent", gotJoint, wantJoint)
	}
	if eng := ProbBothOne(NewBasis(), c1, c2); math.Abs(eng-gotJoint) > 1e-12 {
		t.Fatalf("engine joint %v vs census %v", eng, gotJoint)
	}
	if eng := ProbBothZero(NewBasis(), c1, c2); math.Abs(eng-(1-float64(n1)/total-float64(n2)/total+gotJoint)) > 1e-12 {
		t.Fatalf("engine ProbBothZero mismatch")
	}
}

// TestCoinConditionalVsBrute: marginals and joints conditioned on partial
// seeds agree with enumeration.
func TestCoinConditionalVsBrute(t *testing.T) {
	fam := MustFamily(4, 2)
	d := fam.SeedBits()
	src := prng.New(1234)
	for trial := 0; trial < 200; trial++ {
		den := uint64(1 + src.Intn(9))
		num := uint64(src.Intn(int(den) + 1))
		x1 := src.Uint64() & 15
		x2 := (x1 + 1 + src.Uint64()%15) & 15
		c1, err := NewCoin(fam, x1, 4, num, den)
		if err != nil {
			t.Fatal(err)
		}
		den2 := uint64(1 + src.Intn(9))
		num2 := uint64(src.Intn(int(den2) + 1))
		c2, err := NewCoin(fam, x2, 4, num2, den2)
		if err != nil {
			t.Fatal(err)
		}
		bs := NewBasis()
		var fixedMask, fixedVal uint64
		for i := 0; i < d; i++ {
			if src.Intn(4) == 0 {
				v := src.Bool()
				fixedMask |= 1 << i
				if v {
					fixedVal |= 1 << i
				}
				bs.FixBit(i, v)
			}
		}
		var n11, n1, total int
		for s := uint64(0); s < 1<<d; s++ {
			if s&fixedMask != fixedVal {
				continue
			}
			total++
			v1 := c1.Value(VecFromUint64(s))
			v2 := c2.Value(VecFromUint64(s))
			if v1 {
				n1++
			}
			if v1 && v2 {
				n11++
			}
		}
		if p := c1.ProbOne(bs); math.Abs(p-float64(n1)/float64(total)) > 1e-12 {
			t.Fatalf("trial %d: marginal %v vs brute %v", trial, p, float64(n1)/float64(total))
		}
		if p := ProbBothOne(bs, c1, c2); math.Abs(p-float64(n11)/float64(total)) > 1e-12 {
			t.Fatalf("trial %d: joint %v vs brute %v", trial, p, float64(n11)/float64(total))
		}
	}
}

func TestCoinThreshold(t *testing.T) {
	fam := MustFamily(8, 2)
	// p = 1/3, b = 4 → T = ceil(16/3) = 6.
	coin, err := NewCoin(fam, 7, 4, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if coin.Threshold() != 6 {
		t.Errorf("T = %d, want 6", coin.Threshold())
	}
	if coin.Bits() != 4 {
		t.Errorf("Bits = %d, want 4", coin.Bits())
	}
	// p = 1 → T = 2^b exactly.
	coin, _ = NewCoin(fam, 7, 4, 3, 3)
	if coin.Threshold() != 16 {
		t.Errorf("p=1: T = %d, want 16", coin.Threshold())
	}
	coin, _ = NewCoin(fam, 7, 4, 0, 3)
	if coin.Threshold() != 0 {
		t.Errorf("p=0: T = %d, want 0", coin.Threshold())
	}
}
