package gf2

import (
	"math"
	"testing"

	"smallbandwidth/internal/prng"
)

func TestBasisAddAndRank(t *testing.T) {
	bs := NewBasis()
	if bs.Rank() != 0 {
		t.Fatal("fresh basis has nonzero rank")
	}
	// seed bit 0 = 1
	if got := bs.Add(Form{Mask: UnitVec(0)}, true); got != Independent {
		t.Fatalf("first constraint: %v", got)
	}
	// same constraint again: redundant
	if got := bs.Add(Form{Mask: UnitVec(0)}, true); got != Redundant {
		t.Fatalf("repeat constraint: %v", got)
	}
	// contradiction
	if got := bs.Add(Form{Mask: UnitVec(0)}, false); got != Inconsistent {
		t.Fatalf("contradiction: %v", got)
	}
	if bs.Rank() != 1 {
		t.Fatalf("rank = %d, want 1", bs.Rank())
	}
	// bit0 ^ bit1 = 0 → independent; then bit1 determined = 1.
	if got := bs.Add(Form{Mask: UnitVec(0).Xor(UnitVec(1))}, false); got != Independent {
		t.Fatalf("xor constraint: %v", got)
	}
	val, det := bs.Determined(Form{Mask: UnitVec(1)})
	if !det || !val {
		t.Fatalf("bit1 should be determined true, got det=%v val=%v", det, val)
	}
	if p := bs.ProbOf(Form{Mask: UnitVec(1)}, true); p != 1 {
		t.Fatalf("ProbOf(bit1=1) = %v, want 1", p)
	}
	if p := bs.ProbOf(Form{Mask: UnitVec(1)}, false); p != 0 {
		t.Fatalf("ProbOf(bit1=0) = %v, want 0", p)
	}
	if p := bs.ProbOf(Form{Mask: UnitVec(2)}, true); p != 0.5 {
		t.Fatalf("ProbOf(bit2=1) = %v, want 0.5", p)
	}
}

func TestBasisCloneIndependence(t *testing.T) {
	bs := NewBasis()
	bs.FixBit(3, true)
	cl := bs.Clone()
	cl.FixBit(4, false)
	if bs.Rank() != 1 || cl.Rank() != 2 {
		t.Fatalf("clone not independent: ranks %d, %d", bs.Rank(), cl.Rank())
	}
}

func TestFixBitInconsistent(t *testing.T) {
	bs := NewBasis()
	if !bs.FixBit(5, true) {
		t.Fatal("first FixBit failed")
	}
	if bs.FixBit(5, false) {
		t.Fatal("contradictory FixBit succeeded")
	}
}

// bruteProbLess enumerates free seed bits directly.
func bruteProbLess(fixedMask, fixedVal uint64, d int, forms []Form, thr uint64) float64 {
	count, total := 0, 0
	for s := uint64(0); s < 1<<d; s++ {
		if s&fixedMask != fixedVal&fixedMask {
			continue
		}
		total++
		if ValueFromForms(forms, VecFromUint64(s)) < thr {
			count++
		}
	}
	return float64(count) / float64(total)
}

// TestProbLessVsBruteForce cross-validates the echelon-basis engine
// against exhaustive seed enumeration on random small families, random
// thresholds, and random partial seed assignments.
func TestProbLessVsBruteForce(t *testing.T) {
	src := prng.New(7)
	for trial := 0; trial < 300; trial++ {
		m := 3 + src.Intn(3) // field degree 3..5
		fam := MustFamily(m, 2)
		d := fam.SeedBits()
		b := 1 + src.Intn(m)
		x := src.Uint64() & (fam.Field().Order() - 1)
		forms := fam.OutputForms(x, b)
		thr := src.Uint64() % (1<<uint(b) + 1)

		// Random partial assignment.
		var fixedMask, fixedVal uint64
		bs := NewBasis()
		for i := 0; i < d; i++ {
			if src.Bool() {
				v := src.Bool()
				fixedMask |= 1 << i
				if v {
					fixedVal |= 1 << i
				}
				bs.FixBit(i, v)
			}
		}
		got := ProbLess(bs, forms, thr)
		want := bruteProbLess(fixedMask, fixedVal, d, forms, thr)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d (m=%d b=%d x=%d thr=%d fixed=%#x/%#x): engine %v, brute %v",
				trial, m, b, x, thr, fixedMask, fixedVal, got, want)
		}
	}
}

// TestProbBothLessVsBruteForce does the same for the joint query on two
// distinct inputs.
func TestProbBothLessVsBruteForce(t *testing.T) {
	src := prng.New(99)
	for trial := 0; trial < 300; trial++ {
		m := 3 + src.Intn(2) // 3..4
		fam := MustFamily(m, 2)
		d := fam.SeedBits()
		b := 1 + src.Intn(m)
		order := fam.Field().Order()
		x1 := src.Uint64() & (order - 1)
		x2 := src.Uint64() & (order - 1)
		if x1 == x2 {
			x2 = (x2 + 1) & (order - 1)
		}
		f1 := fam.OutputForms(x1, b)
		f2 := fam.OutputForms(x2, b)
		t1 := src.Uint64() % (1<<uint(b) + 1)
		t2 := src.Uint64() % (1<<uint(b) + 1)

		var fixedMask, fixedVal uint64
		bs := NewBasis()
		for i := 0; i < d; i++ {
			if src.Intn(3) == 0 {
				v := src.Bool()
				fixedMask |= 1 << i
				if v {
					fixedVal |= 1 << i
				}
				bs.FixBit(i, v)
			}
		}
		got := ProbBothLess(bs, f1, t1, f2, t2)

		count, total := 0, 0
		for s := uint64(0); s < 1<<d; s++ {
			if s&fixedMask != fixedVal {
				continue
			}
			total++
			if ValueFromForms(f1, VecFromUint64(s)) < t1 &&
				ValueFromForms(f2, VecFromUint64(s)) < t2 {
				count++
			}
		}
		want := float64(count) / float64(total)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d (m=%d b=%d x1=%d x2=%d t1=%d t2=%d): engine %v, brute %v",
				trial, m, b, x1, x2, t1, t2, got, want)
		}
	}
}

func TestProbLessBoundaries(t *testing.T) {
	fam := MustFamily(5, 2)
	forms := fam.OutputForms(3, 5)
	bs := NewBasis()
	if p := ProbLess(bs, forms, 0); p != 0 {
		t.Errorf("ProbLess(T=0) = %v, want 0", p)
	}
	if p := ProbLess(bs, forms, 1<<5); p != 1 {
		t.Errorf("ProbLess(T=2^b) = %v, want 1", p)
	}
	// Under an empty basis the hash value is uniform: Pr[< T] = T/2^b.
	for thr := uint64(0); thr <= 1<<5; thr++ {
		want := float64(thr) / 32
		if p := ProbLess(bs, forms, thr); math.Abs(p-want) > 1e-15 {
			t.Fatalf("uniform ProbLess(T=%d) = %v, want %v", thr, p, want)
		}
	}
}

// TestProbLessFullyFixedSeed: with every seed bit fixed the probability
// must be exactly 0 or 1 and agree with direct evaluation.
func TestProbLessFullyFixedSeed(t *testing.T) {
	fam := MustFamily(4, 2)
	forms := fam.OutputForms(5, 4)
	src := prng.New(11)
	for trial := 0; trial < 100; trial++ {
		seedVal := src.Uint64() & 0xff
		bs := NewBasis()
		for i := 0; i < 8; i++ {
			bs.FixBit(i, seedVal&(1<<i) != 0)
		}
		thr := src.Uint64() % 17
		got := ProbLess(bs, forms, thr)
		want := 0.0
		if ValueFromForms(forms, VecFromUint64(seedVal)) < thr {
			want = 1.0
		}
		if got != want {
			t.Fatalf("seed %#x thr %d: ProbLess = %v, want %v", seedVal, thr, got, want)
		}
	}
}
