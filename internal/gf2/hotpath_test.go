package gf2

import (
	"testing"

	"smallbandwidth/internal/prng"
)

// TestReduceEquivalence pins the three reduction paths against each
// other on random products of reduced operands: the historical full
// scan from degree 127, the tightened scan from degree 2m−2 (products
// of reduced operands never exceed that), and the table-driven byte
// fold used by Mul.
func TestReduceEquivalence(t *testing.T) {
	src := prng.New(42)
	for _, m := range []int{1, 2, 3, 7, 8, 11, 16, 24, 31, 32, 33, 47, 48, 63} {
		f := MustField(m)
		for trial := 0; trial < 500; trial++ {
			a := src.Uint64() & f.max
			b := src.Uint64() & f.max
			hi, lo := clmul(a, b)
			full := f.reduceScan(hi, lo, 127)
			tight := f.reduceScan(hi, lo, 2*m-2)
			table := f.reduce(hi, lo)
			if full != tight {
				t.Fatalf("m=%d a=%#x b=%#x: scan from 127 gives %#x, from 2m-2 gives %#x",
					m, a, b, full, tight)
			}
			if full != table {
				t.Fatalf("m=%d a=%#x b=%#x: scan gives %#x, fold table gives %#x",
					m, a, b, full, table)
			}
			if ref := polyMulMod(a, b, f.g, m); ref != table {
				t.Fatalf("m=%d a=%#x b=%#x: polyMulMod gives %#x, Mul path gives %#x",
					m, a, b, ref, table)
			}
		}
	}
}

// TestClmulMatchesBitSerial pins the windowed carry-less multiply
// against the bit-serial reference.
func TestClmulMatchesBitSerial(t *testing.T) {
	src := prng.New(7)
	check := func(a, b uint64) {
		h1, l1 := clmul(a, b)
		h2, l2 := clmulBitSerial(a, b)
		if h1 != h2 || l1 != l2 {
			t.Fatalf("clmul(%#x,%#x) = (%#x,%#x), bit-serial gives (%#x,%#x)", a, b, h1, l1, h2, l2)
		}
	}
	check(0, 0)
	check(^uint64(0), ^uint64(0))
	check(1<<63, 1<<63)
	for trial := 0; trial < 2000; trial++ {
		check(src.Uint64(), src.Uint64())
	}
}

// TestOutputFormsIntoReuse: the Into variant must reuse caller storage
// and agree with the allocating path.
func TestOutputFormsIntoReuse(t *testing.T) {
	fam := MustFamily(9, 2)
	var buf []Form
	for x := uint64(0); x < 40; x++ {
		want := fam.OutputForms(x, 7)
		buf = fam.OutputFormsInto(x, 7, buf)
		if len(buf) != len(want) {
			t.Fatalf("x=%d: Into returned %d forms, want %d", x, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("x=%d form %d: Into %v, want %v", x, i, buf[i], want[i])
			}
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		buf = fam.OutputFormsInto(3, 7, buf)
	}); n != 0 {
		t.Fatalf("OutputFormsInto allocates %v per call with warm storage", n)
	}
}

// TestBasisMixedRepresentation pins the compressed fixed-bit
// representation against a naive rows-only echelon reference on random
// mixed sequences of unit and general constraints: every AddResult
// classification and every ProbLess/ProbBothLess value must agree.
func TestBasisMixedRepresentation(t *testing.T) {
	src := prng.New(1234)
	for trial := 0; trial < 400; trial++ {
		m := 3 + src.Intn(3)
		fam := MustFamily(m, 2)
		d := fam.SeedBits()
		bs := NewBasis()
		ref := newNaiveBasis()
		for step := 0; step < d+4; step++ {
			var fo Form
			if src.Intn(2) == 0 {
				fo = Form{Mask: UnitVec(src.Intn(d))}
			} else {
				fo = Form{Mask: VecFromUint64(src.Uint64() & (uint64(1)<<d - 1)), Const: src.Bool()}
			}
			val := src.Bool()
			want := ref.add(fo, val)
			got := bs.Add(fo, val)
			if want == Inconsistent {
				// The reference rejects; Basis must agree and stay usable.
				if got != Inconsistent {
					t.Fatalf("trial %d step %d: Basis %v, naive Inconsistent", trial, step, got)
				}
				continue
			}
			if got != want {
				t.Fatalf("trial %d step %d: Basis %v, naive %v", trial, step, got, want)
			}
			if bs.Rank() != ref.rank() {
				t.Fatalf("trial %d step %d: rank %d vs naive %d", trial, step, bs.Rank(), ref.rank())
			}
		}
		x := src.Uint64() & (fam.Field().Order() - 1)
		b := 1 + src.Intn(m)
		forms := fam.OutputForms(x, b)
		thr := src.Uint64() % (1<<uint(b) + 1)
		got := ProbLess(bs, forms, thr)
		want := ref.probLess(forms, thr)
		if got != want {
			t.Fatalf("trial %d: ProbLess %v vs naive %v", trial, got, want)
		}
	}
}

// naiveBasis is the pre-optimization representation — one echelon row
// per constraint, no fixed-bit compression — kept verbatim as the
// differential reference for Basis.
type naiveBasis struct {
	rows []basisRow
}

func newNaiveBasis() *naiveBasis { return &naiveBasis{} }

func (nb *naiveBasis) rank() int { return len(nb.rows) }

func (nb *naiveBasis) reduce(mask Vec128, rhs bool) (Vec128, bool) {
	for i := range nb.rows {
		r := &nb.rows[i]
		if mask.Bit(r.pivot) {
			mask = mask.Xor(r.mask)
			rhs = rhs != r.rhs
		}
	}
	return mask, rhs
}

func (nb *naiveBasis) add(fo Form, val bool) AddResult {
	mask, rhs := nb.reduce(fo.Mask, val != fo.Const)
	if mask.IsZero() {
		if rhs {
			return Inconsistent
		}
		return Redundant
	}
	nb.rows = append(nb.rows, basisRow{mask: mask, rhs: rhs, pivot: mask.LowestBit()})
	return Independent
}

func (nb *naiveBasis) clone() *naiveBasis {
	rows := make([]basisRow, len(nb.rows))
	copy(rows, nb.rows)
	return &naiveBasis{rows: rows}
}

func (nb *naiveBasis) probLess(forms []Form, t uint64) float64 {
	b := len(forms)
	if t == 0 {
		return 0
	}
	if t >= uint64(1)<<b {
		return 1
	}
	w := nb.clone()
	prob := 0.0
	condProb := 1.0
	for idx, fo := range forms {
		bitPos := b - 1 - idx
		tj := t&(1<<bitPos) != 0
		if tj {
			mask, rhs := w.reduce(fo.Mask, fo.Const)
			if mask.IsZero() {
				if !rhs {
					prob += condProb
				}
			} else {
				prob += condProb * 0.5
			}
		}
		switch w.add(fo, tj) {
		case Independent:
			condProb *= 0.5
		case Redundant:
		case Inconsistent:
			return prob
		}
	}
	return prob
}

// TestSplitMatchesFixedBit: Split + the pair queries must reproduce the
// two-pass Clone+FixBit evaluation bit for bit, across random bases,
// coins, and split bits — including the EdgePair / EdgePairGivenMarginal
// fused forms.
func TestSplitMatchesFixedBit(t *testing.T) {
	src := prng.New(99)
	for trial := 0; trial < 600; trial++ {
		m := 3 + src.Intn(3)
		if trial%5 == 0 {
			// Seed length 2m > 64: forms carry high-word masks, driving
			// the generic two-word SplitBasis arm instead of the lo paths.
			m = 33 + src.Intn(4)
		}
		fam := MustFamily(m, 2)
		d := fam.SeedBits()
		order := fam.Field().Order()
		bs := NewBasis()
		for i := 0; i < d; i++ {
			if src.Intn(3) == 0 {
				bs.FixBit(i, src.Bool())
			}
		}
		var free []int
		for i := 0; i < d; i++ {
			if v := UnitVec(i); bs.fixedMask.And(v).IsZero() {
				free = append(free, i)
			}
		}
		if len(free) == 0 {
			continue
		}
		bit := free[src.Intn(len(free))]

		b := 1 + src.Intn(m)
		x1 := src.Uint64() & (order - 1)
		x2 := (x1 + 1 + src.Uint64()%(order-1)) & (order - 1)
		c1, err := NewCoin(fam, x1, b, src.Uint64()%5, 4)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := NewCoin(fam, x2, b, src.Uint64()%5, 4)
		if err != nil {
			t.Fatal(err)
		}

		// Reference: two separate conditioned bases.
		var want [2][3]float64 // per branch: p1u, p1v, p11
		for beta := 0; beta < 2; beta++ {
			w := bs.Clone()
			if !w.FixBit(bit, beta == 1) {
				t.Fatalf("trial %d: free bit %d re-fix failed", trial, bit)
			}
			want[beta][0] = c1.ProbOne(w)
			want[beta][1] = c2.ProbOne(w)
			want[beta][2] = ProbBothOne(w, c1, c2)
		}

		sb, ok := bs.Split(bit)
		if !ok {
			t.Fatalf("trial %d: Split(%d) refused on a free bit", trial, bit)
		}
		p1u0, p1v0, p110, p1u1, p1v1, p111 := sb.EdgePair(c1, c2)
		if p1u0 != want[0][0] || p1v0 != want[0][1] || p110 != want[0][2] ||
			p1u1 != want[1][0] || p1v1 != want[1][1] || p111 != want[1][2] {
			t.Fatalf("trial %d (bit %d): EdgePair (%v %v %v | %v %v %v), want (%v %v %v | %v %v %v)",
				trial, bit, p1u0, p1v0, p110, p1u1, p1v1, p111,
				want[0][0], want[0][1], want[0][2], want[1][0], want[1][1], want[1][2])
		}
		q0, q1 := sb.ProbOnePair(c2)
		if q0 != want[0][1] || q1 != want[1][1] {
			t.Fatalf("trial %d: ProbOnePair (%v %v), want (%v %v)", trial, q0, q1, want[0][1], want[1][1])
		}
		ju0, j110, ju1, j111 := sb.EdgePairGivenMarginal(c1, c2, q0, q1)
		if ju0 != want[0][0] || j110 != want[0][2] || ju1 != want[1][0] || j111 != want[1][2] {
			t.Fatalf("trial %d: EdgePairGivenMarginal (%v %v | %v %v), want (%v %v | %v %v)",
				trial, ju0, j110, ju1, j111, want[0][0], want[0][2], want[1][0], want[1][2])
		}
		sb.Release()
	}
}

// TestSplitRefusesTouchedBit: Split must refuse a bit the basis already
// constrains.
func TestSplitRefusesTouchedBit(t *testing.T) {
	bs := NewBasis()
	bs.FixBit(3, true)
	if _, ok := bs.Split(3); ok {
		t.Fatal("Split accepted an already-fixed bit")
	}
	bs2 := NewBasis()
	bs2.Add(Form{Mask: UnitVec(1).Xor(UnitVec(5))}, true)
	if _, ok := bs2.Split(5); ok {
		t.Fatal("Split accepted a bit present in a row")
	}
	if sb, ok := bs2.Split(7); !ok {
		t.Fatal("Split refused an untouched bit")
	} else {
		sb.Release()
	}
}

// TestProbOneAndBothOneMatchesSeparate pins the single-basis fused walk
// against the separate queries.
func TestProbOneAndBothOneMatchesSeparate(t *testing.T) {
	src := prng.New(5)
	for trial := 0; trial < 400; trial++ {
		m := 3 + src.Intn(3)
		fam := MustFamily(m, 2)
		d := fam.SeedBits()
		order := fam.Field().Order()
		bs := NewBasis()
		for i := 0; i < d; i++ {
			if src.Intn(3) == 0 {
				bs.FixBit(i, src.Bool())
			}
		}
		b := 1 + src.Intn(m)
		x1 := src.Uint64() & (order - 1)
		x2 := (x1 + 1) & (order - 1)
		c1, _ := NewCoin(fam, x1, b, src.Uint64()%7, 6)
		c2, _ := NewCoin(fam, x2, b, src.Uint64()%7, 6)
		p1, p11 := ProbOneAndBothOne(bs, c1, c2)
		if want := c1.ProbOne(bs); p1 != want {
			t.Fatalf("trial %d: marginal %v, want %v", trial, p1, want)
		}
		if want := ProbBothOne(bs, c1, c2); p11 != want {
			t.Fatalf("trial %d: joint %v, want %v", trial, p11, want)
		}
	}
}
