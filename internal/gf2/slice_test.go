package gf2

import (
	"testing"

	"smallbandwidth/internal/prng"
)

// TestSeedBlockRoundTrip: LaneSeed is the inverse of SetLane, and lanes
// beyond Len behave as zero seeds.
func TestSeedBlockRoundTrip(t *testing.T) {
	src := prng.New(11)
	seeds := make([]Vec128, 64)
	for k := range seeds {
		seeds[k] = Vec128{Lo: src.Uint64(), Hi: src.Uint64()}
	}
	sb := NewSeedBlock(seeds[:37])
	if sb.Len() != 37 {
		t.Fatalf("Len = %d, want 37", sb.Len())
	}
	for k := 0; k < 37; k++ {
		if got := sb.LaneSeed(k); got != seeds[k] {
			t.Fatalf("lane %d: round trip gives %v, want %v", k, got, seeds[k])
		}
	}
	for k := 37; k < 64; k++ {
		if got := sb.LaneSeed(k); !got.IsZero() {
			t.Fatalf("unoccupied lane %d is %v, want zero", k, got)
		}
	}
	sb.SetLane(50, seeds[50])
	if sb.Len() != 51 {
		t.Fatalf("Len after SetLane(50) = %d, want 51", sb.Len())
	}
	if got := sb.LaneSeed(50); got != seeds[50] {
		t.Fatalf("lane 50 after SetLane: %v, want %v", got, seeds[50])
	}
}

// TestEvalBlockMatchesScalar: the bit-sliced form evaluation must agree
// with the scalar oracle Form.Eval on every lane, across real hash-family
// forms and random seeds.
func TestEvalBlockMatchesScalar(t *testing.T) {
	src := prng.New(23)
	for _, m := range []int{5, 9, 17, 33} {
		fam := MustFamily(m, 2)
		seeds := make([]Vec128, 64)
		for k := range seeds {
			s := Vec128{Lo: src.Uint64(), Hi: src.Uint64()}
			for i := fam.SeedBits(); i < 128; i++ {
				s = s.WithBit(i, false)
			}
			seeds[k] = s
		}
		sb := NewSeedBlock(seeds)
		for x := uint64(0); x < 20; x++ {
			for _, fo := range fam.OutputForms(x, m) {
				fo.Const = src.Uint64()&1 == 1
				got := fo.EvalBlock(sb)
				for k, s := range seeds {
					if want := fo.Eval(s); want != (got>>k&1 == 1) {
						t.Fatalf("m=%d x=%d lane %d: EvalBlock bit %v, scalar Eval %v",
							m, x, k, got>>k&1 == 1, want)
					}
				}
			}
		}
	}
}

// TestValueBlockMatchesScalar: the fused bit-sliced threshold comparison
// must agree with the scalar oracle Coin.Value on every lane, including
// the exactly-representable boundary probabilities p = 0 and p = 1.
func TestValueBlockMatchesScalar(t *testing.T) {
	src := prng.New(31)
	fam := MustFamily(11, 2)
	const b = 9
	seeds := make([]Vec128, 64)
	for k := range seeds {
		s := Vec128{Lo: src.Uint64(), Hi: src.Uint64()}
		for i := fam.SeedBits(); i < 128; i++ {
			s = s.WithBit(i, false)
		}
		seeds[k] = s
	}
	sb := NewSeedBlock(seeds)
	for x := uint64(0); x < 30; x++ {
		for _, frac := range [][2]uint64{{0, 1}, {1, 1}, {1, 2}, {1, 7}, {3, 5}, {6, 7}, {src.Uint64() % 100, 100}} {
			num, den := frac[0], frac[1]
			if num > den {
				num = den
			}
			coin, err := NewCoin(fam, x, b, num, den)
			if err != nil {
				t.Fatal(err)
			}
			got := coin.ValueBlock(sb)
			for k, s := range seeds {
				if want := coin.Value(s); want != (got>>k&1 == 1) {
					t.Fatalf("x=%d p=%d/%d lane %d: ValueBlock %v, scalar Value %v",
						x, num, den, k, got>>k&1 == 1, want)
				}
			}
		}
	}
}

// TestSliceKernelsAllocFree backs the //sbw:allocfree annotations on the
// block kernels dynamically: with a warm SeedBlock, neither EvalBlock nor
// ValueBlock may allocate.
func TestSliceKernelsAllocFree(t *testing.T) {
	src := prng.New(43)
	fam := MustFamily(9, 2)
	seeds := make([]Vec128, 64)
	for k := range seeds {
		seeds[k] = Vec128{Lo: src.Uint64() & (1<<uint(fam.SeedBits()) - 1)}
	}
	sb := NewSeedBlock(seeds)
	coin, err := NewCoin(fam, 5, 7, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	fo := fam.OutputForms(5, 9)[0]
	var sink uint64
	if n := testing.AllocsPerRun(200, func() {
		sink ^= fo.EvalBlock(sb)
		sink ^= coin.ValueBlock(sb)
	}); n != 0 {
		t.Fatalf("block kernels allocate %v per call with a warm SeedBlock", n)
	}
	_ = sink
}

// BenchmarkCoinValueScalar64 is the oracle cost of one coin against 64
// seeds, one scalar evaluation per lane.
func BenchmarkCoinValueScalar64(b *testing.B) {
	src := prng.New(3)
	fam := MustFamily(15, 2)
	seeds := make([]Vec128, 64)
	for k := range seeds {
		seeds[k] = Vec128{Lo: src.Uint64() & (1<<uint(fam.SeedBits()) - 1)}
	}
	coin, err := NewCoin(fam, 12345, 12, 7, 13)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for _, s := range seeds {
			if coin.Value(s) {
				sink++
			}
		}
	}
	_ = sink
}

// BenchmarkCoinValueBlock64 is the same work through the bit-sliced
// kernel: one ValueBlock call covers all 64 lanes.
func BenchmarkCoinValueBlock64(b *testing.B) {
	src := prng.New(3)
	fam := MustFamily(15, 2)
	seeds := make([]Vec128, 64)
	for k := range seeds {
		seeds[k] = Vec128{Lo: src.Uint64() & (1<<uint(fam.SeedBits()) - 1)}
	}
	sb := NewSeedBlock(seeds)
	coin, err := NewCoin(fam, 12345, 12, 7, 13)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= coin.ValueBlock(sb)
	}
	_ = sink
}
