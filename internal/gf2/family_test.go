package gf2

import (
	"testing"
	"testing/quick"

	"smallbandwidth/internal/prng"
)

func allSeeds(d int) []Vec128 {
	if d > 20 {
		panic("allSeeds: too many bits to enumerate")
	}
	out := make([]Vec128, 1<<d)
	for s := range out {
		out[s] = VecFromUint64(uint64(s))
	}
	return out
}

func TestFamilyParams(t *testing.T) {
	if _, err := NewFamily(65, 2); err == nil {
		t.Error("NewFamily(65,2): expected error (65·2 > 128)")
	}
	if _, err := NewFamily(8, 0); err == nil {
		t.Error("NewFamily(8,0): expected error")
	}
	fam := MustFamily(8, 2)
	if fam.SeedBits() != 16 {
		t.Errorf("SeedBits = %d, want 16", fam.SeedBits())
	}
	if fam.K() != 2 {
		t.Errorf("K = %d, want 2", fam.K())
	}
}

// TestPairwiseIndependenceExact enumerates all seeds of a small family and
// verifies the defining property of Theorem 2.4 exactly: for any distinct
// x1, x2 the pair (h(x1), h(x2)) is uniform over GF(2^m)².
func TestPairwiseIndependenceExact(t *testing.T) {
	const m = 4
	fam := MustFamily(m, 2)
	seeds := allSeeds(fam.SeedBits())
	order := int(fam.Field().Order())
	for x1 := 0; x1 < order; x1++ {
		for x2 := x1 + 1; x2 < order; x2++ {
			counts := make([]int, order*order)
			for _, s := range seeds {
				v1 := fam.Eval(s, uint64(x1))
				v2 := fam.Eval(s, uint64(x2))
				counts[int(v1)*order+int(v2)]++
			}
			want := len(seeds) / (order * order)
			for pair, c := range counts {
				if c != want {
					t.Fatalf("x1=%d x2=%d: pair %d seen %d times, want %d",
						x1, x2, pair, c, want)
				}
			}
		}
	}
}

// TestThreeWiseIndependenceExact does the same for k = 3 on a tiny field.
func TestThreeWiseIndependenceExact(t *testing.T) {
	const m = 2
	fam := MustFamily(m, 3)
	seeds := allSeeds(fam.SeedBits())
	order := int(fam.Field().Order())
	xs := []uint64{0, 1, 3}
	counts := make(map[[3]uint64]int)
	for _, s := range seeds {
		var key [3]uint64
		for i, x := range xs {
			key[i] = fam.Eval(s, x)
		}
		counts[key]++
	}
	want := len(seeds) / (order * order * order)
	if len(counts) != order*order*order {
		t.Fatalf("got %d distinct triples, want %d", len(counts), order*order*order)
	}
	for key, c := range counts {
		if c != want {
			t.Fatalf("triple %v seen %d times, want %d", key, c, want)
		}
	}
}

// TestOutputFormsMatchEval checks that the affine forms evaluate to
// exactly the same bits as direct polynomial evaluation, for random seeds
// and inputs across several field sizes and k values.
func TestOutputFormsMatchEval(t *testing.T) {
	src := prng.New(42)
	for _, cfg := range []struct{ m, k int }{{4, 2}, {8, 2}, {13, 2}, {20, 2}, {8, 3}, {6, 4}} {
		fam := MustFamily(cfg.m, cfg.k)
		for trial := 0; trial < 200; trial++ {
			x := src.Uint64() & (fam.Field().Order() - 1)
			seed := Vec128{Lo: src.Uint64(), Hi: src.Uint64()}
			// Zero out bits beyond the seed length.
			for i := fam.SeedBits(); i < 128; i++ {
				seed = seed.WithBit(i, false)
			}
			full := fam.Eval(seed, x)
			for _, b := range []int{1, cfg.m / 2, cfg.m} {
				if b < 1 {
					b = 1
				}
				forms := fam.OutputForms(x, b)
				got := ValueFromForms(forms, seed)
				want := full & ((uint64(1) << b) - 1)
				if got != want {
					t.Fatalf("m=%d k=%d x=%d b=%d: forms give %#x, Eval gives %#x",
						cfg.m, cfg.k, x, b, got, want)
				}
			}
		}
	}
}

func TestValueFromFormsMSBOrder(t *testing.T) {
	// forms[0] must be the most significant bit.
	fam := MustFamily(4, 2)
	forms := fam.OutputForms(3, 4)
	if len(forms) != 4 {
		t.Fatalf("len(forms) = %d", len(forms))
	}
	seed := VecFromUint64(0b10110101)
	v := ValueFromForms(forms, seed)
	for i, fo := range forms {
		bit := v>>(3-i)&1 == 1
		if fo.Eval(seed) != bit {
			t.Errorf("form %d evaluates inconsistently with packed value", i)
		}
	}
}

func TestFormEval(t *testing.T) {
	f := Form{Mask: VecFromUint64(0b1011), Const: true}
	cases := []struct {
		seed uint64
		want bool
	}{
		{0b0000, true},  // parity 0 ^ 1
		{0b0001, false}, // parity 1 ^ 1
		{0b1011, false}, // parity 3 bits = 1 ^ 1
		{0b0011, true},  // parity 2 bits = 0 ^ 1
	}
	for _, c := range cases {
		if got := f.Eval(VecFromUint64(c.seed)); got != c.want {
			t.Errorf("Eval(%#b) = %v, want %v", c.seed, got, c.want)
		}
	}
}

func TestVec128Quick(t *testing.T) {
	xorSelf := func(lo, hi uint64) bool {
		v := Vec128{lo, hi}
		return v.Xor(v).IsZero()
	}
	bitRoundTrip := func(lo, hi uint64, idx uint8) bool {
		v := Vec128{lo, hi}
		i := int(idx) % 128
		return v.WithBit(i, true).Bit(i) && !v.WithBit(i, false).Bit(i)
	}
	if err := quick.Check(xorSelf, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(bitRoundTrip, nil); err != nil {
		t.Error(err)
	}
	if UnitVec(77).LowestBit() != 77 {
		t.Error("UnitVec(77).LowestBit() != 77")
	}
	if (Vec128{}).LowestBit() != -1 {
		t.Error("zero vector LowestBit != -1")
	}
}
