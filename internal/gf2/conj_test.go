package gf2

import (
	"math"
	"testing"

	"smallbandwidth/internal/prng"
)

func TestWindowFormsMatchEval(t *testing.T) {
	fam := MustFamily(12, 2)
	src := prng.New(5)
	for trial := 0; trial < 200; trial++ {
		x := src.Uint64() & (fam.Field().Order() - 1)
		seed := Vec128{Lo: src.Uint64(), Hi: 0}
		for i := fam.SeedBits(); i < 64; i++ {
			seed = seed.WithBit(i, false)
		}
		full := fam.Eval(seed, x)
		lo := src.Intn(11)
		width := 1 + src.Intn(12-lo)
		forms := fam.WindowForms(x, lo, width)
		got := ValueFromForms(forms, seed)
		want := (full >> uint(lo)) & ((1 << uint(width)) - 1)
		if got != want {
			t.Fatalf("trial %d: window [%d,%d) = %#x, want %#x", trial, lo, lo+width, got, want)
		}
	}
}

func TestWindowIndependenceWithinNode(t *testing.T) {
	// Two disjoint windows of one hash value behave as independent
	// uniform values over the seed space.
	fam := MustFamily(4, 2)
	seeds := allSeeds(fam.SeedBits())
	loForms := fam.WindowForms(9, 0, 2)
	hiForms := fam.WindowForms(9, 2, 2)
	counts := map[[2]uint64]int{}
	for _, s := range seeds {
		counts[[2]uint64{ValueFromForms(loForms, s), ValueFromForms(hiForms, s)}]++
	}
	want := len(seeds) / 16
	for pair, c := range counts {
		if c != want {
			t.Fatalf("pair %v seen %d times, want %d", pair, c, want)
		}
	}
}

// TestProbConjVsBruteForce cross-validates ProbConj against enumeration
// for random event sets over one or two hash inputs and mixed
// orientations.
func TestProbConjVsBruteForce(t *testing.T) {
	src := prng.New(31)
	fam := MustFamily(4, 2)
	d := fam.SeedBits()
	for trial := 0; trial < 200; trial++ {
		nev := 1 + src.Intn(4)
		events := make([]CoinEvent, nev)
		for i := range events {
			x := src.Uint64() & 15
			lo := src.Intn(3)
			width := 1 + src.Intn(4-lo)
			den := uint64(1 + src.Intn(7))
			num := uint64(src.Intn(int(den) + 1))
			coin, err := NewCoinFromForms(fam.WindowForms(x, lo, width), num, den)
			if err != nil {
				t.Fatal(err)
			}
			events[i] = CoinEvent{Coin: coin, Want: src.Bool()}
		}
		bs := NewBasis()
		var fixedMask, fixedVal uint64
		for i := 0; i < d; i++ {
			if src.Intn(4) == 0 {
				v := src.Bool()
				fixedMask |= 1 << i
				if v {
					fixedVal |= 1 << i
				}
				bs.FixBit(i, v)
			}
		}
		got := ProbConj(bs, events)

		match, total := 0, 0
		for s := uint64(0); s < 1<<d; s++ {
			if s&fixedMask != fixedVal {
				continue
			}
			total++
			all := true
			for _, ev := range events {
				if ev.Coin.Value(VecFromUint64(s)) != ev.Want {
					all = false
					break
				}
			}
			if all {
				match++
			}
		}
		want := float64(match) / float64(total)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d (%d events): engine %v, brute %v", trial, nev, got, want)
		}
	}
}

func TestProbConjReducesToPairQueries(t *testing.T) {
	fam := MustFamily(5, 2)
	c1, _ := NewCoin(fam, 3, 5, 2, 5)
	c2, _ := NewCoin(fam, 11, 5, 3, 7)
	bs := NewBasis()
	bs.FixBit(2, true)
	both := ProbConj(bs, []CoinEvent{{c1, true}, {c2, true}})
	if math.Abs(both-ProbBothOne(bs, c1, c2)) > 1e-12 {
		t.Error("ProbConj(1,1) disagrees with ProbBothOne")
	}
	zz := ProbConj(bs, []CoinEvent{{c1, false}, {c2, false}})
	if math.Abs(zz-ProbBothZero(bs, c1, c2)) > 1e-12 {
		t.Error("ProbConj(0,0) disagrees with ProbBothZero")
	}
	one := ProbConj(bs, []CoinEvent{{c1, true}})
	if math.Abs(one-c1.ProbOne(bs)) > 1e-12 {
		t.Error("ProbConj single disagrees with ProbOne")
	}
	if ProbConj(bs, nil) != 1 {
		t.Error("empty conjunction != 1")
	}
}
