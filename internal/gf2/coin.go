package gf2

import "fmt"

// Coin is the biased coin of Lemma 2.5 for one node: given the shared
// seed S, the coin shows 1 iff h_S(x) mod 2^b < T, where x = ψ(v) is the
// node's input color and T = ⌈p·2^b⌉ encodes the target probability
// p = Num/Den. Properties (exactly as in the lemma):
//
//   - Pr[C=1] = T/2^b ∈ [p, p + 2^−b];
//   - p = 0 and p = 1 are represented exactly (T = 0, T = 2^b);
//   - coins of nodes with distinct ψ-colors are independent (pairwise for
//     the k=2 family).
type Coin struct {
	forms []Form // MSB-first affine forms of h_S(x) mod 2^b
	t     uint64 // threshold in [0, 2^b]
	b     int
	lo    bool // every form mask fits the low word (checked at build)
}

// NewCoin builds the coin for input color x with probability num/den and
// accuracy b bits. Requires 0 ≤ num ≤ den, den ≥ 1, and b small enough
// that num·2^b fits in a uint64.
func NewCoin(fam *Family, x uint64, b int, num, den uint64) (Coin, error) {
	if b < 1 || b > fam.Field().M() {
		return Coin{}, fmt.Errorf("gf2: coin accuracy b=%d out of range [1,%d]", b, fam.Field().M())
	}
	return NewCoinFromForms(fam.OutputForms(x, b), num, den)
}

// NewCoinFromForms builds a coin over explicit MSB-first forms (e.g. a
// window of the hash output from Family.WindowForms).
func NewCoinFromForms(forms []Form, num, den uint64) (Coin, error) {
	b := len(forms)
	if den == 0 || num > den {
		return Coin{}, fmt.Errorf("gf2: invalid coin probability %d/%d", num, den)
	}
	if b >= 63 || num > (uint64(1)<<(63-b)) {
		return Coin{}, fmt.Errorf("gf2: threshold ⌈%d·2^%d/%d⌉ would overflow", num, b, den)
	}
	// T = ⌈num·2^b/den⌉ = |{k ∈ [2^b] : k/2^b < num/den}|.
	t := (num<<b + den - 1) / den
	return Coin{forms: forms, t: t, b: b, lo: formsLo(forms)}, nil
}

// Threshold returns the integer threshold T.
func (c Coin) Threshold() uint64 { return c.t }

// Bits returns the accuracy parameter b.
func (c Coin) Bits() int { return c.b }

// Value returns the coin's outcome under a fully fixed seed.
func (c Coin) Value(seed Vec128) bool {
	return ValueFromForms(c.forms, seed) < c.t
}

// ProbOne returns Pr[C = 1 | basis event] exactly.
func (c Coin) ProbOne(bs *Basis) float64 {
	return ProbLess(bs, c.forms, c.t)
}

// ProbBothOne returns Pr[C1 = 1 ∧ C2 = 1 | basis event] exactly.
func ProbBothOne(bs *Basis, c1, c2 Coin) float64 {
	return ProbBothLess(bs, c1.forms, c1.t, c2.forms, c2.t)
}

// ProbOneAndBothOne returns (Pr[C1 = 1], Pr[C1 = 1 ∧ C2 = 1]) under the
// basis event, sharing one walk of C1's threshold decomposition — the
// per-edge evaluation of the conditional-expectation loop needs both,
// and the joint walk visits exactly the marginal's atoms anyway. Both
// values are bit-identical to the separate queries.
func ProbOneAndBothOne(bs *Basis, c1, c2 Coin) (p1, p11 float64) {
	return ProbBothLessMarginal(bs, c1.forms, c1.t, c2.forms, c2.t)
}

// ProbBothZero returns Pr[C1 = 0 ∧ C2 = 0 | basis event] exactly via
// inclusion–exclusion.
func ProbBothZero(bs *Basis, c1, c2 Coin) float64 {
	p := 1 - c1.ProbOne(bs) - c2.ProbOne(bs) + ProbBothOne(bs, c1, c2)
	// Clamp float noise at the boundaries; terms are dyadic so p is exact
	// whenever the ranks involved stay below float64's 53-bit mantissa.
	if p < 0 {
		return 0
	}
	return p
}

// CoinEvent is one conjunct of a ProbConj query: the coin shows Want.
type CoinEvent struct {
	Coin Coin
	Want bool
}

// ProbConj returns Pr[∧ᵢ (Cᵢ = Wantᵢ) | basis event] exactly for an
// arbitrary set of coins. Want = true decomposes {val < T} into
// prefix-disjoint affine events and recurses; Want = false uses
// Pr[rest ∧ C=0] = Pr[rest] − Pr[rest ∧ C=1]. Generalizes ProbBothOne to
// the multi-coin survival events of the clique/MPC multi-bit phases.
func ProbConj(bs *Basis, events []CoinEvent) float64 {
	if len(events) == 0 {
		return 1
	}
	ev, rest := events[0], events[1:]
	if !ev.Want {
		flipped := append([]CoinEvent{{Coin: ev.Coin, Want: true}}, rest...)
		p := ProbConj(bs, rest) - ProbConj(bs, flipped)
		if p < 0 {
			return 0
		}
		return p
	}
	c := ev.Coin
	if c.t == 0 {
		return 0
	}
	if c.t >= uint64(1)<<c.b {
		return ProbConj(bs, rest)
	}
	w := bs.Clone()
	prob := 0.0
	condProb := 1.0
	for idx, fo := range c.forms {
		bitPos := c.b - 1 - idx
		tj := c.t&(1<<bitPos) != 0
		if tj {
			w2 := w.Clone()
			switch w2.Add(fo, false) {
			case Independent:
				prob += condProb * 0.5 * ProbConj(w2, rest)
			case Redundant:
				prob += condProb * ProbConj(w2, rest)
			case Inconsistent:
			}
		}
		switch w.Add(fo, tj) {
		case Independent:
			condProb *= 0.5
		case Redundant:
		case Inconsistent:
			return prob
		}
	}
	return prob
}
