package gf2

import "testing"

// FuzzGF2Mul differentially checks the fast multiplication path — the
// 4-bit windowed carry-less multiply plus the per-field byte-fold
// reduction tables — against the bit-serial polyMulMod reference (which
// shares no code with the fast path) for every supported field degree.
// The two inputs cover the full uint64 range; operands are masked to
// the field inside the loop so every m sees the same raw material.
// FuzzVecEval differentially checks the bit-sliced block kernels against
// the scalar oracle: a Form built from the raw fuzz words is evaluated by
// EvalBlock over a 64-lane SeedBlock derived from the same material, and
// a Coin over genuine hash-family forms compares ValueBlock lane by lane
// against Coin.Value. The scalar path shares no code with the plane-XOR
// slicing, so any transpose, parity, or threshold-recurrence bug shows up
// as a lane mismatch.
func FuzzVecEval(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0), uint64(1), uint64(2))
	f.Add(uint64(0x8000000000000001), uint64(1), uint64(5), uint64(9))
	f.Add(uint64(0xdeadbeef), uint64(0xfeedface), uint64(63), uint64(64))
	f.Fuzz(func(t *testing.T, maskLo, maskHi, num, seedWord uint64) {
		seeds := make([]Vec128, 64)
		s := seedWord
		next := func() uint64 { // splitmix64: cheap deterministic stream from the fuzz word
			s += 0x9e3779b97f4a7c15
			z := s
			z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
			z = (z ^ z>>27) * 0x94d049bb133111eb
			return z ^ z>>31
		}
		for k := range seeds {
			seeds[k] = Vec128{Lo: next(), Hi: next()}
		}
		sb := NewSeedBlock(seeds)
		fo := Form{Mask: Vec128{Lo: maskLo, Hi: maskHi}, Const: num&1 == 1}
		got := fo.EvalBlock(sb)
		for k, sd := range seeds {
			if want := fo.Eval(sd); want != (got>>k&1 == 1) {
				t.Fatalf("form lane %d: EvalBlock %v, scalar %v", k, got>>k&1 == 1, want)
			}
		}
		fam := MustFamily(13, 2)
		den := num%97 + 1
		coin, err := NewCoin(fam, maskLo, 10, num%(den+1), den)
		if err != nil {
			t.Fatal(err)
		}
		cgot := coin.ValueBlock(sb)
		for k, sd := range seeds {
			if want := coin.Value(sd); want != (cgot>>k&1 == 1) {
				t.Fatalf("coin lane %d: ValueBlock %v, scalar %v", k, cgot>>k&1 == 1, want)
			}
		}
	})
}

func FuzzGF2Mul(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), ^uint64(0))
	f.Add(uint64(0xb), uint64(0x1b))
	f.Add(^uint64(0), ^uint64(0))
	f.Add(uint64(1)<<62, uint64(1)<<62)
	f.Fuzz(func(t *testing.T, a, b uint64) {
		for m := 1; m <= 63; m++ {
			fl := MustField(m)
			am, bm := a&fl.max, b&fl.max
			got := fl.Mul(am, bm)
			want := polyMulMod(am, bm, fl.ReductionPoly(), m)
			if got != want {
				t.Fatalf("m=%d: Mul(%#x,%#x) = %#x, polyMulMod reference = %#x", m, am, bm, got, want)
			}
			if gotC := fl.Mul(bm, am); gotC != got {
				t.Fatalf("m=%d: Mul not commutative on (%#x,%#x): %#x vs %#x", m, am, bm, got, gotC)
			}
		}
	})
}
