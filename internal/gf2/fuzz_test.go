package gf2

import "testing"

// FuzzGF2Mul differentially checks the fast multiplication path — the
// 4-bit windowed carry-less multiply plus the per-field byte-fold
// reduction tables — against the bit-serial polyMulMod reference (which
// shares no code with the fast path) for every supported field degree.
// The two inputs cover the full uint64 range; operands are masked to
// the field inside the loop so every m sees the same raw material.
func FuzzGF2Mul(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), ^uint64(0))
	f.Add(uint64(0xb), uint64(0x1b))
	f.Add(^uint64(0), ^uint64(0))
	f.Add(uint64(1)<<62, uint64(1)<<62)
	f.Fuzz(func(t *testing.T, a, b uint64) {
		for m := 1; m <= 63; m++ {
			fl := MustField(m)
			am, bm := a&fl.max, b&fl.max
			got := fl.Mul(am, bm)
			want := polyMulMod(am, bm, fl.ReductionPoly(), m)
			if got != want {
				t.Fatalf("m=%d: Mul(%#x,%#x) = %#x, polyMulMod reference = %#x", m, am, bm, got, want)
			}
			if gotC := fl.Mul(bm, am); gotC != got {
				t.Fatalf("m=%d: Mul not commutative on (%#x,%#x): %#x vs %#x", m, am, bm, got, gotC)
			}
		}
	})
}
