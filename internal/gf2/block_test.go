package gf2

import (
	"testing"

	"smallbandwidth/internal/prng"
)

// naiveTranspose64 is the bit-at-a-time reference for transpose64.
func naiveTranspose64(a *[64]uint64) [64]uint64 {
	var out [64]uint64
	for r := 0; r < 64; r++ {
		for c := 0; c < 64; c++ {
			if a[r]&(uint64(1)<<c) != 0 {
				out[c] |= uint64(1) << r
			}
		}
	}
	return out
}

func TestTranspose64MatchesNaive(t *testing.T) {
	src := prng.New(4242)
	for trial := 0; trial < 200; trial++ {
		var a [64]uint64
		for i := range a {
			a[i] = src.Uint64()
			if trial%3 == 0 {
				a[i] &= src.Uint64() // sparser patterns
			}
		}
		want := naiveTranspose64(&a)
		got := a
		transpose64(&got)
		if got != want {
			t.Fatalf("trial %d: transpose64 differs from naive reference", trial)
		}
		// An involution: transposing twice restores the matrix.
		back := got
		transpose64(&back)
		if back != a {
			t.Fatalf("trial %d: transpose64 is not an involution", trial)
		}
	}
}

// TestBlockKernelsAllocFree is the allocs/op regression guard on the
// bit-sliced kernels: with a sealed sheet and pooled split bases, the
// batched marginal walk, the batched joint walk, and the incremental
// plane fold must not allocate — they run once per owned edge per seed
// bit on the phase hot path.
func TestBlockKernelsAllocFree(t *testing.T) {
	fam := MustFamily(12, 2)
	const b = 9
	var sheet FormSheet
	myForms := fam.OutputForms(5, b)
	myLane, ok := sheet.AddForms(myForms)
	if !ok {
		t.Fatal("AddForms refused")
	}
	myCoin, err := NewCoinFromForms(myForms, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	cu := BlockCoin{Lane: myLane, B: myCoin.Bits(), T: myCoin.Threshold()}
	var reqs [3]BlockCoin
	for i, x := range []uint64{9, 21, 33} {
		forms := fam.OutputForms(x, b)
		lane, ok := sheet.AddForms(forms)
		if !ok {
			t.Fatal("AddForms refused")
		}
		c, err := NewCoinFromForms(forms, uint64(2+i), 7)
		if err != nil {
			t.Fatal(err)
		}
		reqs[i] = BlockCoin{Lane: lane, B: c.Bits(), T: c.Threshold()}
	}
	sheet.Seal()
	basis := NewBasis()
	var out [3]ProbPair
	j := 0
	step := func() {
		sb, ok := basis.Split(j)
		if !ok {
			t.Fatal("split refused")
		}
		sb.ProbOnePairBlock(&sheet, reqs[:], out[:])
		for i := range reqs {
			sb.EdgePairBlock(&sheet, cu, reqs[i], out[i].P0, out[i].P1)
		}
		sb.Release()
		basis.FixBit(j, j%2 == 0)
		sheet.Fix(j, j%2 == 0)
		j++
		if j == fam.SeedBits() {
			t.Fatal("ran out of free seed bits")
		}
	}
	if n := testing.AllocsPerRun(10, step); n > 0 {
		t.Fatalf("block kernel step allocates %v times per seed bit", n)
	}
}

// TestFormSheetBlockMatchesScalar drives the phase loop's exact kernel
// sequence — seal a sheet of coin form groups, then per seed bit split,
// evaluate, fix, fold — and pins every block result bitwise against the
// scalar kernels on the same coins under the same basis.
func TestFormSheetBlockMatchesScalar(t *testing.T) {
	src := prng.New(777)
	for trial := 0; trial < 400; trial++ {
		m := 3 + src.Intn(3)
		fam := MustFamily(m, 2)
		d := fam.SeedBits()
		order := fam.Field().Order()

		// One "own" coin plus a few neighbor coins, as the phase loop
		// lays them out; thresholds sweep the boundary cases (0, ≥2^b).
		b := 1 + src.Intn(m)
		nNbr := 1 + src.Intn(4)
		xs := make([]uint64, 1+nNbr)
		for i := range xs {
			xs[i] = uint64(i+1+src.Intn(3)*7) & (order - 1)
			if xs[i] == 0 {
				xs[i] = 1
			}
		}
		coins := make([]Coin, len(xs))
		lanes := make([]int, len(xs))
		var sheet FormSheet
		for i, x := range xs {
			forms := fam.OutputForms(x, b)
			var err error
			coins[i], err = NewCoinFromForms(forms, src.Uint64()%5, 4)
			if err != nil {
				t.Fatal(err)
			}
			lane, ok := sheet.AddForms(forms)
			if !ok {
				t.Fatalf("trial %d: AddForms refused %d forms with %d free lanes", trial, len(forms), sheet.Free())
			}
			lanes[i] = lane
		}
		sheet.Seal()

		bc := func(i int) BlockCoin {
			return BlockCoin{Lane: lanes[i], B: coins[i].Bits(), T: coins[i].Threshold()}
		}

		bs := NewBasis()
		reqs := make([]BlockCoin, nNbr)
		out := make([]ProbPair, nNbr)
		for j := 0; j < d; j++ {
			sb, ok := bs.Split(j)
			if !ok {
				t.Fatalf("trial %d: Split(%d) refused on the phase basis", trial, j)
			}
			// Batched neighbor marginals vs the scalar walk.
			for i := 0; i < nNbr; i++ {
				reqs[i] = bc(1 + i)
			}
			sb.ProbOnePairBlock(&sheet, reqs, out)
			for i := 0; i < nNbr; i++ {
				w0, w1 := sb.ProbOnePair(coins[1+i])
				if out[i].P0 != w0 || out[i].P1 != w1 {
					t.Fatalf("trial %d bit %d nbr %d: ProbOnePairBlock (%v %v), scalar (%v %v)",
						trial, j, i, out[i].P0, out[i].P1, w0, w1)
				}
			}
			// Batched joint probabilities vs the scalar walk.
			for i := 0; i < nNbr; i++ {
				g1u0, g110, g1u1, g111 := sb.EdgePairBlock(&sheet, bc(0), bc(1+i), out[i].P0, out[i].P1)
				w1u0, w110, w1u1, w111 := sb.EdgePairGivenMarginal(coins[0], coins[1+i], out[i].P0, out[i].P1)
				if g1u0 != w1u0 || g110 != w110 || g1u1 != w1u1 || g111 != w111 {
					t.Fatalf("trial %d bit %d nbr %d: EdgePairBlock (%v %v | %v %v), scalar (%v %v | %v %v)",
						trial, j, i, g1u0, g110, g1u1, g111, w1u0, w110, w1u1, w111)
				}
			}
			sb.Release()
			rj := src.Bool()
			if !bs.FixBit(j, rj) {
				t.Fatalf("trial %d: FixBit(%d) refused", trial, j)
			}
			sheet.Fix(j, rj)
		}
	}
}
