package gf2

import "math/bits"

// Bit-sliced evaluation kernels for the multicore tier.
//
// A SeedBlock transposes up to 64 candidate seed assignments so that one
// machine word holds the same bit position of every seed ("lane" k = bit
// k of each plane word). In that layout a linear form is evaluated
// against all 64 seeds at once: each set mask bit contributes one plane
// XOR, so Form.EvalBlock costs popcount(mask) word ops instead of 64
// full scalar evaluations, and Coin.ValueBlock fuses the MSB-first
// threshold comparison into the same pass with two running lane masks.
// The scalar Form.Eval / Coin.Value path is retained unchanged as the
// differential oracle (see TestValueBlockMatchesScalar and FuzzVecEval).

// SeedBlock holds up to 64 seed assignments in bit-sliced form:
// plane i is seed bit i across all lanes, lane k is bit k of each plane.
// Lanes ≥ Len() behave as all-zero seeds.
type SeedBlock struct {
	planes [128]uint64
	n      int
}

// NewSeedBlock transposes seeds into a block. Requires len(seeds) ≤ 64.
func NewSeedBlock(seeds []Vec128) *SeedBlock {
	sb := new(SeedBlock)
	if len(seeds) > 64 {
		panic("gf2: SeedBlock holds at most 64 lanes")
	}
	for k, s := range seeds {
		sb.SetLane(k, s)
	}
	return sb
}

// Len returns the number of occupied lanes.
func (sb *SeedBlock) Len() int { return sb.n }

// SetLane overwrites lane k with seed, growing Len() to cover k.
func (sb *SeedBlock) SetLane(k int, seed Vec128) {
	if k < 0 || k >= 64 {
		panic("gf2: SeedBlock lane out of range")
	}
	bit := uint64(1) << k
	for i := range sb.planes {
		var w uint64
		if i < 64 {
			w = seed.Lo >> i
		} else {
			w = seed.Hi >> (i - 64)
		}
		if w&1 != 0 {
			sb.planes[i] |= bit
		} else {
			sb.planes[i] &^= bit
		}
	}
	if k >= sb.n {
		sb.n = k + 1
	}
}

// LaneSeed reconstructs lane k's seed assignment (the transpose inverse;
// used by the differential tests as the bridge back to the scalar path).
func (sb *SeedBlock) LaneSeed(k int) Vec128 {
	if k < 0 || k >= 64 {
		panic("gf2: SeedBlock lane out of range")
	}
	var v Vec128
	for i, p := range sb.planes {
		if p>>k&1 != 0 {
			v = v.WithBit(i, true)
		}
	}
	return v
}

// EvalBlock evaluates the form against every lane of the block: bit k of
// the result is fo.Eval(sb.LaneSeed(k)). One plane XOR per set mask bit
// replaces 64 scalar mask-AND-parity evaluations.
//
//sbw:allocfree bit-sliced phase kernel: one call per form per 64-seed block
func (fo Form) EvalBlock(sb *SeedBlock) uint64 {
	var acc uint64
	for w := fo.Mask.Lo; w != 0; w &= w - 1 {
		acc ^= sb.planes[bits.TrailingZeros64(w)]
	}
	for w := fo.Mask.Hi; w != 0; w &= w - 1 {
		acc ^= sb.planes[64+bits.TrailingZeros64(w)]
	}
	if fo.Const {
		acc = ^acc
	}
	return acc
}

// ValueBlock returns the coin's outcome under every lane: bit k of the
// result is c.Value(sb.LaneSeed(k)). The threshold comparison
// h_S(x) mod 2^b < T runs bit-sliced alongside the form evaluations: an
// MSB-first walk keeps a "already less" and a "still equal" lane mask,
// so no lane ever materializes its b-bit hash value. Lanes decided early
// (eq empty) short-circuit the remaining forms.
//
//sbw:allocfree bit-sliced phase kernel: one call per coin per 64-seed block
func (c Coin) ValueBlock(sb *SeedBlock) uint64 {
	if c.t >= uint64(1)<<c.b {
		return ^uint64(0) // T = 2^b: the coin is constant 1 (p = 1 exactly)
	}
	var lt uint64
	eq := ^uint64(0)
	for idx := range c.forms {
		v := c.forms[idx].EvalBlock(sb)
		if c.t&(uint64(1)<<(c.b-1-idx)) != 0 {
			lt |= eq &^ v
			eq &= v
		} else {
			eq &^= v
		}
		if eq == 0 {
			break
		}
	}
	return lt
}

// ValueFromFormsBlock is the bit-sliced counterpart of ValueFromForms:
// out[i] holds bit b−1−i of every lane's packed value (MSB first, one
// plane word per output bit). Requires len(out) ≥ len(forms).
//
//sbw:allocfree bit-sliced phase kernel: one call per form window per 64-seed block
func ValueFromFormsBlock(forms []Form, sb *SeedBlock, out []uint64) {
	for i := range forms {
		out[i] = forms[i].EvalBlock(sb)
	}
}
