// Package gf2 implements the randomness substrate of the paper's
// derandomization (Section 2.2):
//
//   - arithmetic in the binary fields GF(2^m), m ≤ 63;
//   - the k-wise independent hash families of Theorem 2.4 [Vad12],
//     h_S(x) = Σ_{j<k} A_j ⊗ x^j over GF(2^m), with a seed of k·m bits;
//   - the biased coins of Lemma 2.5, C_v = 1 ⇔ h_S(ψ(v)) mod 2^b < T_v;
//   - an exact conditional-probability engine: every output bit of h_S(x)
//     is an affine form over the seed bits, so marginal and joint coin
//     probabilities under a partially fixed seed reduce to counting points
//     of affine subspaces of GF(2)^d — computed with echelon bases in
//     O(b²) word operations instead of 2^d enumeration.
//
// The engine is what lets the CONGEST/clique/MPC algorithms evaluate the
// conditional expectations of Lemma 2.6 exactly (probabilities are dyadic
// rationals, exactly representable in float64 for every seed length used
// in this repository).
package gf2

import (
	"fmt"
	"math/bits"
)

// Field is the binary field GF(2^m) with a fixed irreducible reduction
// polynomial x^m + g(x). Elements are the integers 0..2^m−1 interpreted as
// polynomials over GF(2).
type Field struct {
	m   int
	g   uint64 // low-order bits of the reduction polynomial (without x^m)
	max uint64 // 2^m − 1

	// fold is the precomputed byte-wise reduction table: fold[i][b] is
	// the fully reduced polynomial b·x^(m+8i) mod (x^m+g). A product of
	// two reduced operands has degree ≤ 2m−2, so its excess part H
	// (bits ≥ m) spans at most m−1 ≤ 63 bits; XOR-ing one table entry
	// per byte of H reduces the product with no data-dependent branches,
	// replacing the 128-step scan of reduceScan in the Mul hot path.
	fold [8][256]uint64
}

var fieldCache = map[int]*Field{}

// NewField returns GF(2^m) for 1 ≤ m ≤ 63. The reduction polynomial is
// found by deterministic search (Rabin irreducibility test), so no
// hard-coded table needs to be trusted; fields are cached per m.
//
// NewField is not safe for concurrent first use with the same m; callers
// construct fields during single-threaded setup.
func NewField(m int) (*Field, error) {
	if m < 1 || m > 63 {
		return nil, fmt.Errorf("gf2: field degree %d out of range [1,63]", m)
	}
	if f, ok := fieldCache[m]; ok {
		return f, nil
	}
	g, err := findIrreducible(m)
	if err != nil {
		return nil, err
	}
	f := &Field{m: m, g: g, max: (uint64(1) << m) - 1}
	f.buildFoldTables()
	fieldCache[m] = f
	return f, nil
}

// buildFoldTables fills the byte-wise reduction tables: fold[i][b] =
// b·x^(m+8i) mod (x^m+g). Entries are fully reduced (< 2^m), so folding
// the excess bits of a product never creates new excess bits.
func (f *Field) buildFoldTables() {
	// pow = x^(m+t) mod g for t = 0, 1, 2, ...: a MulByX chain seeded
	// with x^m mod g = g.
	pow := f.g
	for t := 0; t < 8*len(f.fold); t++ {
		tab := &f.fold[t/8]
		bit := uint64(1) << (t % 8)
		for b := bit; b < 256; b = (b + 1) | bit {
			tab[b] ^= pow
		}
		pow = f.MulByX(pow)
	}
}

// MustField is NewField but panics on error (for in-range constant m).
func MustField(m int) *Field {
	f, err := NewField(m)
	if err != nil {
		panic(err)
	}
	return f
}

// M returns the field degree m.
func (f *Field) M() int { return f.m }

// Order returns 2^m, the number of field elements.
func (f *Field) Order() uint64 { return f.max + 1 }

// ReductionPoly returns the low-order bits of the reduction polynomial
// (the full polynomial is x^m + ReductionPoly()).
func (f *Field) ReductionPoly() uint64 { return f.g }

// Add returns a + b = a XOR b.
func (f *Field) Add(a, b uint64) uint64 { return a ^ b }

// clmul returns the 128-bit carry-less product of a and b as (hi, lo),
// using a 4-bit window on b: a per-call table of the 16 carry-less
// multiples a·{0..15} turns the data-dependent popcount(b)-step loop of
// the bit-serial method into 16 branch-free window folds. clmulBitSerial
// is kept as the independent differential reference.
func clmul(a, b uint64) (hi, lo uint64) {
	if a == 0 || b == 0 {
		return 0, 0
	}
	// tab·[i] = carry-less a·i; entries reach degree 63+3, so each keeps
	// a 3-bit high word.
	var tabLo, tabHi [16]uint64
	tabLo[1] = a
	for i := 2; i < 16; i += 2 {
		tabLo[i] = tabLo[i/2] << 1
		tabHi[i] = tabHi[i/2]<<1 | tabLo[i/2]>>63
		tabLo[i+1] = tabLo[i] ^ a
		tabHi[i+1] = tabHi[i]
	}
	lo = tabLo[b&0xf]
	hi = tabHi[b&0xf]
	for s := 4; s < 64; s += 4 {
		nib := (b >> s) & 0xf
		lo ^= tabLo[nib] << s
		hi ^= tabHi[nib]<<s | tabLo[nib]>>(64-s)
	}
	return hi, lo
}

// clmulBitSerial is the bit-serial carry-less multiply, kept as the
// independent reference for the windowed clmul and for polyMulMod (so
// the pre-Field code path shares nothing with the fast path it checks).
func clmulBitSerial(a, b uint64) (hi, lo uint64) {
	for b != 0 {
		shift := bits.TrailingZeros64(b)
		b &= b - 1
		lo ^= a << shift
		if shift > 0 {
			hi ^= a >> (64 - shift)
		}
	}
	return hi, lo
}

// reduce reduces the product polynomial (hi,lo) of two *reduced*
// operands (degree ≤ 2m−2) modulo x^m + g, folding the excess bits one
// byte-table lookup at a time instead of scanning bit-by-bit.
func (f *Field) reduce(hi, lo uint64) uint64 {
	// h = bits ≥ m of the product. Degree ≤ 2m−2 means h spans at most
	// m−1 ≤ 63 bits, so it fits one word for every 1 ≤ m ≤ 63.
	h := lo>>f.m | hi<<(64-f.m)
	acc := lo & f.max
	for i := 0; h != 0; i++ {
		acc ^= f.fold[i][h&0xff]
		h >>= 8
	}
	return acc
}

// reduceScan is the bit-by-bit scan reduction, kept as the reference for
// the table-driven reduce. The scan starts at degree `top`: products of
// reduced operands never exceed degree 2m−2, so Mul-shaped callers pass
// 2m−2 rather than the historical always-127 start (the extra 131−2m
// iterations tested bits that are provably zero).
func (f *Field) reduceScan(hi, lo uint64, top int) uint64 {
	for d := top; d >= f.m; d-- {
		var set bool
		if d >= 64 {
			set = hi&(1<<(d-64)) != 0
		} else {
			set = lo&(1<<d) != 0
		}
		if !set {
			continue
		}
		// Subtract (xor) (x^m + g)·x^(d-m): clears bit d, folds g in at d-m.
		if d >= 64 {
			hi ^= 1 << (d - 64)
		} else {
			lo ^= 1 << d
		}
		shift := d - f.m
		lo ^= f.g << shift
		if shift > 0 {
			hi ^= f.g >> (64 - shift)
		}
	}
	return lo & f.max
}

// Mul returns the field product a ⊗ b.
func (f *Field) Mul(a, b uint64) uint64 {
	hi, lo := clmul(a&f.max, b&f.max)
	return f.reduce(hi, lo)
}

// MulByX returns a ⊗ x (the generator), a single reduction step.
func (f *Field) MulByX(a uint64) uint64 {
	a &= f.max
	carry := a>>(f.m-1)&1 != 0
	a = (a << 1) & f.max
	if carry {
		a ^= f.g
	}
	return a
}

// Square returns a ⊗ a.
func (f *Field) Square(a uint64) uint64 { return f.Mul(a, a) }

// Pow returns a^e in the field (a^0 = 1).
func (f *Field) Pow(a uint64, e uint64) uint64 {
	result := uint64(1)
	base := a & f.max
	for e > 0 {
		if e&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Square(base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a ≠ 0 via a^(2^m − 2).
func (f *Field) Inv(a uint64) (uint64, error) {
	if a&f.max == 0 {
		return 0, fmt.Errorf("gf2: inverse of zero")
	}
	return f.Pow(a, f.max-1), nil
}

// --- irreducibility search -------------------------------------------------

// polyMulMod multiplies two polynomials of degree < m modulo the degree-m
// polynomial x^m + g, all over GF(2). Semantically identical to field
// Mul but usable before a Field exists; it deliberately stays on the
// bit-serial multiply and bit-by-bit scan reduction so it shares no code
// with the windowed/table-driven fast path — FuzzGF2Mul uses it as the
// differential reference.
func polyMulMod(a, b, g uint64, m int) uint64 {
	hi, lo := clmulBitSerial(a, b)
	for d := 127; d >= m; d-- {
		var set bool
		if d >= 64 {
			set = hi&(1<<(d-64)) != 0
		} else {
			set = lo&(1<<d) != 0
		}
		if !set {
			continue
		}
		if d >= 64 {
			hi ^= 1 << (d - 64)
		} else {
			lo ^= 1 << d
		}
		shift := d - m
		lo ^= g << shift
		if shift > 0 {
			hi ^= g >> (64 - shift)
		}
	}
	return lo & ((uint64(1) << m) - 1)
}

// polyGCD returns gcd of two GF(2) polynomials given as bit masks.
func polyGCD(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, polyMod(a, b)
	}
	return a
}

// polyMod returns a mod b for GF(2) polynomials, b ≠ 0.
func polyMod(a, b uint64) uint64 {
	db := 63 - bits.LeadingZeros64(b)
	for {
		if a == 0 {
			return 0
		}
		da := 63 - bits.LeadingZeros64(a)
		if da < db {
			return a
		}
		a ^= b << (da - db)
	}
}

// isIrreducible applies Rabin's test to x^m + g.
func isIrreducible(g uint64, m int) bool {
	// h := x^(2^i) mod (x^m+g), starting from h = x.
	// Requirement 1: x^(2^m) ≡ x.
	// Requirement 2: for every prime p | m, gcd(x^(2^(m/p)) − x, x^m+g) = 1.
	primes := primeFactors(m)
	full := uint64(1)<<m | g // fits: m ≤ 63
	h := uint64(2)           // the polynomial x
	for i := 1; i <= m; i++ {
		h = polyMulMod(h, h, g, m)
		for _, p := range primes {
			if i == m/p {
				if polyGCD(full, h^2) != 1 {
					return false
				}
			}
		}
	}
	return h == 2
}

func primeFactors(n int) []int {
	var out []int
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			out = append(out, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// findIrreducible returns the smallest g (as an integer) such that
// x^m + g is irreducible over GF(2).
func findIrreducible(m int) (uint64, error) {
	if m == 1 {
		return 1, nil // x + 1
	}
	// The constant term must be 1, else x divides the polynomial.
	for g := uint64(1); g < uint64(1)<<m; g += 2 {
		if isIrreducible(g, m) {
			return g, nil
		}
	}
	return 0, fmt.Errorf("gf2: no irreducible polynomial of degree %d found", m)
}
