package gf2

import "math/bits"

// Vec128 is a 128-bit vector over GF(2), used both for seed assignments
// (bit i = seed bit i) and for the masks of linear forms over the seed
// bits. Bit indices run 0..127.
type Vec128 struct {
	Lo, Hi uint64
}

// Xor returns v ⊕ w.
func (v Vec128) Xor(w Vec128) Vec128 { return Vec128{v.Lo ^ w.Lo, v.Hi ^ w.Hi} }

// And returns the bitwise AND of v and w.
func (v Vec128) And(w Vec128) Vec128 { return Vec128{v.Lo & w.Lo, v.Hi & w.Hi} }

// AndNot returns v with every bit of w cleared.
func (v Vec128) AndNot(w Vec128) Vec128 { return Vec128{v.Lo &^ w.Lo, v.Hi &^ w.Hi} }

// OnesCount returns the number of set bits.
func (v Vec128) OnesCount() int {
	return bits.OnesCount64(v.Lo) + bits.OnesCount64(v.Hi)
}

// IsUnit reports whether exactly one bit is set.
func (v Vec128) IsUnit() bool {
	return (v.Lo == 0) != (v.Hi == 0) && v.Lo&(v.Lo-1) == 0 && v.Hi&(v.Hi-1) == 0
}

// IsZero reports whether all bits are zero.
func (v Vec128) IsZero() bool { return v.Lo == 0 && v.Hi == 0 }

// Parity returns the XOR of all bits of v.
func (v Vec128) Parity() bool {
	return (bits.OnesCount64(v.Lo)+bits.OnesCount64(v.Hi))&1 == 1
}

// Bit returns bit i of v.
func (v Vec128) Bit(i int) bool {
	if i < 64 {
		return v.Lo&(1<<i) != 0
	}
	return v.Hi&(1<<(i-64)) != 0
}

// WithBit returns v with bit i set to val.
func (v Vec128) WithBit(i int, val bool) Vec128 {
	if i < 64 {
		mask := uint64(1) << i
		if val {
			v.Lo |= mask
		} else {
			v.Lo &^= mask
		}
	} else {
		mask := uint64(1) << (i - 64)
		if val {
			v.Hi |= mask
		} else {
			v.Hi &^= mask
		}
	}
	return v
}

// UnitVec returns the vector with only bit i set.
func UnitVec(i int) Vec128 {
	var v Vec128
	return v.WithBit(i, true)
}

// LowestBit returns the index of the lowest set bit, or -1 if zero.
func (v Vec128) LowestBit() int {
	if v.Lo != 0 {
		return bits.TrailingZeros64(v.Lo)
	}
	if v.Hi != 0 {
		return 64 + bits.TrailingZeros64(v.Hi)
	}
	return -1
}

// VecFromUint64 returns the vector whose low 64 bits are x.
func VecFromUint64(x uint64) Vec128 { return Vec128{Lo: x} }

// Extract returns bits [start, start+width) of v as an integer (bit
// start becomes bit 0). Requires 0 ≤ start, width ≤ 64, start+width ≤ 128.
// It replaces per-bit Bit() loops in the seed-coefficient hot path.
func (v Vec128) Extract(start, width int) uint64 {
	var out uint64
	switch {
	case start >= 64:
		out = v.Hi >> (start - 64)
	case start == 0:
		out = v.Lo
	default:
		out = v.Lo>>start | v.Hi<<(64-start)
	}
	if width == 64 {
		return out
	}
	return out & (uint64(1)<<width - 1)
}

// orAt returns v with the low `width` bits of w OR-ed in at bit offset
// off. Requires off+width ≤ 128 and width ≤ 64.
func (v Vec128) orAt(off int, w uint64) Vec128 {
	if off < 64 {
		v.Lo |= w << off
		if off > 0 {
			v.Hi |= w >> (64 - off)
		}
	} else {
		v.Hi |= w << (off - 64)
	}
	return v
}

// Form is an affine form over the seed bits: Eval(seed) =
// parity(Mask AND seed) XOR Const.
type Form struct {
	Mask  Vec128
	Const bool
}

// Eval evaluates the form on a full seed assignment.
func (fo Form) Eval(seed Vec128) bool {
	return fo.Mask.And(seed).Parity() != fo.Const
}

// XorConst returns the form with its constant flipped if b is true.
func (fo Form) XorConst(b bool) Form {
	fo.Const = fo.Const != b
	return fo
}
