// Package enginebench defines the standard simulator benchmark workloads
// in one place, shared by the Go benchmarks in bench_test.go and the
// BENCH_*.json recorders (cmd/benchtables -engine/-clique/-mpc), so the
// two can never measure subtly different things.
//
// CONGEST workloads (BENCH_congest.json):
//
//   - Graph:  the benchmark topologies (4-regular, sparse GNP deg≈16);
//   - Color:  one partial-coloring iteration of Theorem 1.1, the
//     hottest realistic workload for the simulator;
//   - Barrier: empty rounds isolating wake/sleep synchronization;
//   - Flood:  full-neighborhood traffic isolating message delivery.
//
// CONGESTED CLIQUE workloads (BENCH_clique.json):
//
//   - CliqueFlood: all-to-all one-word traffic, n·(n−1) messages per
//     round — pure Exchange delivery cost;
//   - CliqueColor: ListColorClique (Theorem 1.3) end to end.
//
// MPC workloads (BENCH_mpc.json):
//
//   - MPCSortRanks: distributed sort + group ranks/sizes over millions
//     of records — the record-moving hot path of the Section 5 tools;
//   - MPCColor: ListColorMPC (Theorem 1.4) end to end.
package enginebench

import (
	"fmt"

	"smallbandwidth/internal/clique"
	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/core"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/mpc"
	"smallbandwidth/internal/netdecomp"
	"smallbandwidth/internal/prng"
)

// Kinds are the standard benchmark topologies, in recording order.
var Kinds = []string{"regular4", "gnp16"}

// BarrierRounds and FloodRounds fix the synthetic workloads' length.
const (
	BarrierRounds = 200
	FloodRounds   = 100
)

// Graph builds a standard benchmark topology (deterministic, seed 1).
func Graph(kind string, n int) *graph.Graph {
	switch kind {
	case "regular4":
		return graph.MustRandomRegular(n, 4, 1)
	case "gnp16":
		return graph.GNP(n, 16/float64(n), 1)
	}
	panic(fmt.Sprintf("enginebench: unknown graph kind %q", kind))
}

// Color runs one partial-coloring iteration of Theorem 1.1
// (MaxIterations = 1, Lemma 2.1) on the (Δ+1)-instance of g. The
// component-aware runner handles disconnected benchmark topologies in
// one engine run.
func Color(g *graph.Graph) (*core.Result, error) {
	inst := graph.DeltaPlusOneInstance(g)
	return core.ListColorCONGEST(inst, core.Options{MaxIterations: 1})
}

// DecompGraph builds a standard high-diameter decomposition topology
// (deterministic): a cycle of n nodes or a near-square grid with ~n
// nodes — the workloads where the Corollary 1.2 pipeline matters, since
// their diameters dwarf the polylog budget.
func DecompGraph(kind string, n int) *graph.Graph {
	switch kind {
	case "cycle":
		return graph.Cycle(n)
	case "grid":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		return graph.Grid2D(side, side)
	}
	panic(fmt.Sprintf("enginebench: unknown decomp graph kind %q", kind))
}

// DecompColor runs the Corollary 1.2 pipeline end to end on the
// (Δ+1)-instance of g: batched = all clusters of a decomposition color
// class in one disjoint-union engine run; otherwise the seed-equivalent
// sequential reference (one engine spin-up per cluster per component).
func DecompColor(g *graph.Graph, batched bool) (*netdecomp.DecompResult, error) {
	inst := graph.DeltaPlusOneInstance(g)
	if batched {
		return netdecomp.ListColorDecomposed(inst, core.Options{})
	}
	return netdecomp.ListColorDecomposedSeq(inst, core.Options{})
}

// DecompBuild constructs and validates the network decomposition of g —
// the frontier-driven builder's scaling workload.
func DecompBuild(g *graph.Graph) (*netdecomp.Decomposition, error) {
	d, err := netdecomp.Build(g)
	if err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Barrier ticks every node through BarrierRounds empty rounds: pure
// synchronization cost, no messages.
func Barrier(g *graph.Graph) (*congest.Stats, error) {
	return congest.Run(g, congest.Config{}, func(ctx *congest.Ctx) {
		congest.SpinUntil(ctx, BarrierRounds)
	})
}

// Flood has every node send to every neighbor every round for
// FloodRounds rounds: FloodRounds·2m messages of pure delivery cost.
func Flood(g *graph.Graph) (*congest.Stats, error) {
	return congest.Run(g, congest.Config{}, func(ctx *congest.Ctx) {
		for r := 0; r < FloodRounds; r++ {
			for _, w := range ctx.Neighbors() {
				ctx.Send(int(w), congest.Message{congest.UserTagBase, uint64(r)})
			}
			ctx.Next()
		}
	})
}

// ScaleKinds are the million-node scenario-tier topologies, in
// recording order (BENCH_scale.json): a power-law social-web shape, a
// sparse uniform random graph, and the high-diameter grid.
var ScaleKinds = []string{"chunglu", "gnp4", "grid"}

// ScaleGraph builds a scenario-tier topology of ~n nodes
// (deterministic, seed 1). The mean degrees are kept small (≈4) so the
// tier exercises *scale* — node and edge counts — rather than dense
// local work:
//
//   - chunglu: Chung–Lu with power-law (β = 2.5) expected degrees — the
//     heavy-tailed social-web shape (Δ grows like n^(2/3));
//   - gnp4:    G(n, 4/n) — sparse uniform, Θ(log n) diameter;
//   - grid:    near-square 2D grid — the Θ(√n)-diameter stress shape.
func ScaleGraph(kind string, n int) *graph.Graph {
	switch kind {
	case "chunglu":
		return graph.ChungLu(graph.PowerLawWeights(n, 2.5, 4), 1)
	case "gnp4":
		return graph.GNP(n, 4/float64(n), 1)
	case "grid":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		return graph.Grid2D(side, side)
	}
	panic(fmt.Sprintf("enginebench: unknown scale graph kind %q", kind))
}

// ScaleRound runs one full-neighborhood engine round on g: every node
// sends one message over every incident edge and reads its inbox — 2m
// messages through the complete delivery path (arena setup, barrier,
// receiver-sharded delivery) in a single round. This is the
// million-node smoke workload: it proves the substrate (graph + engine
// tables) stands up at n = 10⁶ without paying for a full protocol.
func ScaleRound(g *graph.Graph) (*congest.Stats, error) {
	return congest.Run(g, congest.Config{}, func(ctx *congest.Ctx) {
		for _, w := range ctx.Neighbors() {
			ctx.Send(int(w), congest.Message{congest.UserTagBase, uint64(ctx.ID())})
		}
		ctx.Next()
	})
}

// CliqueFloodRounds fixes the clique flood workload's length.
const CliqueFloodRounds = 4

// CliqueFlood runs an n-node all-to-all flood: every node sends a
// one-word message to every other node in each of CliqueFloodRounds
// rounds — n·(n−1) messages per round of pure Exchange delivery cost.
func CliqueFlood(n int) (clique.Stats, error) {
	sim := clique.NewSim(n, 4)
	defer sim.Close()
	for r := 0; r < CliqueFloodRounds; r++ {
		out := clique.NewOut(n)
		for v := range out {
			box := make([]clique.Directed, 0, n-1)
			for u := 0; u < n; u++ {
				if u != v {
					box = append(box, clique.Directed{To: int32(u), Payload: clique.Message{uint64(r)}})
				}
			}
			out[v] = box
		}
		if _, err := sim.Exchange(out); err != nil {
			return clique.Stats{}, err
		}
	}
	return sim.Stats, nil
}

// CliqueColor runs ListColorClique (Theorem 1.3) on the (Δ+1)-instance
// of a random d-regular graph (seed 1).
func CliqueColor(n, d int) (*clique.Result, error) {
	g := graph.MustRandomRegular(n, d, 1)
	return clique.ListColorClique(graph.DeltaPlusOneInstance(g), clique.Options{})
}

// MPCSortMachines fixes the machine count of the MPC sort workload.
const MPCSortMachines = 64

// MPCRecords builds the deterministic record set of the sort workload.
func MPCRecords(n int) []mpc.Rec {
	src := prng.New(7)
	recs := make([]mpc.Rec, n)
	for i := range recs {
		recs[i] = mpc.Rec{src.Uint64() % uint64(n), src.Uint64(), src.Uint64() % 1024}
	}
	return recs
}

// MPCSortRanks distributes n records over MPCSortMachines machines,
// sorts them, and computes group ranks and group sizes — the
// record-moving hot path of the Lemma 5.1 tools. It returns the rounds
// charged by the runtime.
func MPCSortRanks(n int) (int, error) {
	s := max(24*n/MPCSortMachines, 4096)
	rt, err := mpc.NewRuntime(MPCSortMachines, s)
	if err != nil {
		return 0, err
	}
	defer rt.Close()
	d, err := mpc.NewDist(rt, MPCRecords(n))
	if err != nil {
		return 0, err
	}
	if err := d.Sort(rt); err != nil {
		return 0, err
	}
	if !d.IsSorted() {
		return 0, fmt.Errorf("enginebench: mpc sort produced unsorted output")
	}
	if err := d.GroupRanks(rt); err != nil {
		return 0, err
	}
	if err := d.GroupSizes(rt); err != nil {
		return 0, err
	}
	return rt.Rounds, nil
}

// MPCColor runs ListColorMPC (Theorem 1.4, linear memory) on the
// (Δ+1)-instance of a random d-regular graph (seed 1).
func MPCColor(n, d int) (*mpc.Result, error) {
	g := graph.MustRandomRegular(n, d, 1)
	return mpc.ListColorMPC(graph.DeltaPlusOneInstance(g), mpc.Options{})
}
