// Package enginebench defines the standard CONGEST-engine benchmark
// workloads in one place, shared by the Go benchmarks in bench_test.go
// and the BENCH_congest.json recorder (cmd/benchtables -engine), so the
// two can never measure subtly different things:
//
//   - Graph:  the benchmark topologies (4-regular, sparse GNP deg≈16);
//   - Color:  one partial-coloring iteration of Theorem 1.1, the
//     hottest realistic workload for the simulator;
//   - Barrier: empty rounds isolating wake/sleep synchronization;
//   - Flood:  full-neighborhood traffic isolating message delivery.
package enginebench

import (
	"fmt"

	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/core"
	"smallbandwidth/internal/graph"
)

// Kinds are the standard benchmark topologies, in recording order.
var Kinds = []string{"regular4", "gnp16"}

// BarrierRounds and FloodRounds fix the synthetic workloads' length.
const (
	BarrierRounds = 200
	FloodRounds   = 100
)

// Graph builds a standard benchmark topology (deterministic, seed 1).
func Graph(kind string, n int) *graph.Graph {
	switch kind {
	case "regular4":
		return graph.MustRandomRegular(n, 4, 1)
	case "gnp16":
		return graph.GNP(n, 16/float64(n), 1)
	}
	panic(fmt.Sprintf("enginebench: unknown graph kind %q", kind))
}

// Color runs one partial-coloring iteration of Theorem 1.1
// (MaxIterations = 1, Lemma 2.1) on the (Δ+1)-instance of g.
func Color(g *graph.Graph) (*core.Result, error) {
	inst := graph.DeltaPlusOneInstance(g)
	return core.ListColorComponents(inst, core.Options{MaxIterations: 1})
}

// Barrier ticks every node through BarrierRounds empty rounds: pure
// synchronization cost, no messages.
func Barrier(g *graph.Graph) (*congest.Stats, error) {
	return congest.Run(g, congest.Config{}, func(ctx *congest.Ctx) {
		congest.SpinUntil(ctx, BarrierRounds)
	})
}

// Flood has every node send to every neighbor every round for
// FloodRounds rounds: FloodRounds·2m messages of pure delivery cost.
func Flood(g *graph.Graph) (*congest.Stats, error) {
	return congest.Run(g, congest.Config{}, func(ctx *congest.Ctx) {
		for r := 0; r < FloodRounds; r++ {
			for _, w := range ctx.Neighbors() {
				ctx.Send(int(w), congest.Message{congest.UserTagBase, uint64(r)})
			}
			ctx.Next()
		}
	})
}
