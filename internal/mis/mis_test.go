package mis

import (
	"testing"

	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/linial"
)

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":    graph.Path(17),
		"cycle":   graph.Cycle(12),
		"grid":    graph.Grid2D(5, 6),
		"star":    graph.Star(9),
		"regular": graph.MustRandomRegular(40, 5, 11),
		"gnp":     graph.GNP(35, 0.2, 4),
		"clique":  graph.Complete(9),
		"single":  graph.Path(1),
	}
}

func TestFromColoringValidMIS(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			colors, k, err := linial.ColorGraph(adjOf(g), g.MaxDegree())
			if err != nil {
				t.Fatal(err)
			}
			set := FromColoring(g, colors, k)
			if err := Verify(g, set); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFromColoringSizeBoundedDegree(t *testing.T) {
	// On a graph with max degree d, any MIS has size ≥ n/(d+1).
	g := graph.MustRandomRegular(60, 3, 5)
	colors, k, err := linial.ColorGraph(adjOf(g), 3)
	if err != nil {
		t.Fatal(err)
	}
	set := FromColoring(g, colors, k)
	size := 0
	for _, in := range set {
		if in {
			size++
		}
	}
	if size < g.N()/4 {
		t.Errorf("MIS size %d < n/(Δ+1) = %d", size, g.N()/4)
	}
}

func TestFromColoringPanicsOnImproper(t *testing.T) {
	g := graph.Path(3)
	defer func() {
		if recover() == nil {
			t.Error("improper coloring not detected")
		}
	}()
	FromColoring(g, []uint64{0, 0, 1}, 2)
}

func TestLubyValidMIS(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(0); seed < 5; seed++ {
				set := Luby(g, seed)
				if err := Verify(g, set); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestLubyDeterministicInSeed(t *testing.T) {
	g := graph.GNP(30, 0.3, 1)
	a := Luby(g, 42)
	b := Luby(g, 42)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("Luby not deterministic for fixed seed")
		}
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	g := graph.Path(4)
	// Adjacent members.
	if Verify(g, []bool{true, true, false, true}) == nil {
		t.Error("dependence not caught")
	}
	// Not maximal: node 1's set = {}; nothing dominates node 0.
	if Verify(g, []bool{false, false, false, true}) == nil {
		t.Error("non-maximality not caught")
	}
	// Wrong length.
	if Verify(g, []bool{true}) == nil {
		t.Error("length mismatch not caught")
	}
	// A valid MIS passes.
	if err := Verify(g, []bool{true, false, true, false}); err != nil {
		t.Errorf("valid MIS rejected: %v", err)
	}
}

func adjOf(g *graph.Graph) [][]int32 {
	adj := make([][]int32, g.N())
	for v := 0; v < g.N(); v++ {
		adj[v] = g.Neighbors(v)
	}
	return adj
}
