// Package mis provides maximal-independent-set primitives. The paper's
// Lemma 2.1 computes an MIS on the constant-degree graph of conflicting
// candidate colors by iterating through the classes of a proper coloring;
// this package contains the color-class construction, validation helpers,
// and Luby's randomized MIS as a baseline.
package mis

import (
	"fmt"

	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/prng"
)

// FromColoring computes the MIS obtained by scanning the color classes of
// a proper coloring in increasing order: a node joins when no neighbor
// has joined yet. In a distributed implementation each class costs one
// round, so the construction takes K rounds on a K-colored graph.
// It panics if the coloring is not proper (adjacent equal colors would
// make the scan order ambiguous).
func FromColoring(g *graph.Graph, colors []uint64, k uint64) []bool {
	inMIS := make([]bool, g.N())
	blocked := make([]bool, g.N())
	for c := uint64(0); c < k; c++ {
		for v := 0; v < g.N(); v++ {
			if colors[v] != c || blocked[v] {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if colors[w] == colors[v] {
					panic(fmt.Sprintf("mis: improper coloring, edge (%d,%d) shares color %d", v, w, colors[v]))
				}
			}
			inMIS[v] = true
			for _, w := range g.Neighbors(v) {
				blocked[w] = true
			}
		}
	}
	return inMIS
}

// Luby computes an MIS with Luby's randomized algorithm (each round every
// live node draws a random priority; local maxima join). Deterministic in
// the given seed; used as the randomized baseline.
func Luby(g *graph.Graph, seed uint64) []bool {
	src := prng.New(seed)
	n := g.N()
	inMIS := make([]bool, n)
	live := make([]bool, n)
	for v := range live {
		live[v] = true
	}
	remaining := n
	for remaining > 0 {
		prio := make([]uint64, n)
		for v := 0; v < n; v++ {
			if live[v] {
				prio[v] = src.Uint64()
			}
		}
		var joined []int
		for v := 0; v < n; v++ {
			if !live[v] {
				continue
			}
			maxLocal := true
			for _, w := range g.Neighbors(v) {
				if live[w] && (prio[w] > prio[v] || (prio[w] == prio[v] && int(w) > v)) {
					maxLocal = false
					break
				}
			}
			if maxLocal {
				joined = append(joined, v)
			}
		}
		for _, v := range joined {
			inMIS[v] = true
			if live[v] {
				live[v] = false
				remaining--
			}
			for _, w := range g.Neighbors(v) {
				if live[w] {
					live[w] = false
					remaining--
				}
			}
		}
	}
	return inMIS
}

// Verify checks independence and maximality of set on g.
func Verify(g *graph.Graph, set []bool) error {
	if len(set) != g.N() {
		return fmt.Errorf("mis: set length %d for %d nodes", len(set), g.N())
	}
	var err error
	g.Edges(func(u, v int) {
		if err == nil && set[u] && set[v] {
			err = fmt.Errorf("mis: adjacent nodes %d,%d both in set", u, v)
		}
	})
	if err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if set[v] {
			continue
		}
		dominated := false
		for _, w := range g.Neighbors(v) {
			if set[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("mis: node %d neither in set nor dominated", v)
		}
	}
	return nil
}
