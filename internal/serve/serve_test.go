package serve

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"smallbandwidth/internal/core"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/store"
)

func newTestServer(t *testing.T, workers int) *Server {
	t.Helper()
	s := New(Options{Workers: workers})
	if err := s.AddGraph("gnp", graph.GNP(40, 0.15, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddGraph("grid", graph.Grid2D(5, 6)); err != nil {
		t.Fatal(err)
	}
	return s
}

// session runs one scripted session against the server and returns the
// response lines.
func session(t *testing.T, s *Server, requests ...string) []string {
	t.Helper()
	var out strings.Builder
	if err := s.HandleSession(strings.NewReader(strings.Join(requests, "\n")+"\n"), &out); err != nil {
		t.Fatalf("session failed: %v", err)
	}
	return strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
}

// TestProtocolGolden pins the exact response lines the CI session diff
// depends on — including every error shape, which must leave the
// session usable.
func TestProtocolGolden(t *testing.T) {
	s := newTestServer(t, 2)
	grid := graph.Grid2D(5, 6)
	distinct, hash := ColorsSummary(graph.DeltaPlusOneInstance(grid).Greedy())

	got := session(t, s,
		"ping",
		"graphs",
		"info grid",
		"stats grid",
		"color grid greedy",
		"info nope",
		"color grid fancy",
		"color grid",
		"color grid greedy workers=2",
		"color grid congest workers=0",
		"color grid congest workers=banana",
		"color grid congest lanes=2",
		"frobnicate",
		"ping",
		"quit",
		"ping", // after quit: must not be answered
	)
	want := []string{
		"ok pong",
		"ok graphs=gnp,grid",
		"ok graph=grid n=30 m=49 maxdeg=4 arcs=98",
		"ok graph=grid n=30 m=49 maxdeg=4 mindeg=2 avgdeg=3.27 isolated=0 components=1",
		fmt.Sprintf("ok graph=grid model=greedy colors=%d hash=%08x", distinct, hash),
		`err unknown graph "nope" (have: gnp,grid)`,
		`err unknown model "fancy" (want congest|decomposed|clique|mpc|greedy)`,
		"err usage: color <graph> <model> [workers=N]",
		`err workers= is not supported by model "greedy" (engine-backed models: congest, decomposed)`,
		"err workers=0 is not a usable worker count (want an integer >= 1)",
		"err workers=banana is not a usable worker count (want an integer >= 1)",
		`err usage: color <graph> <model> [workers=N], got "lanes=2"`,
		`err unknown command "frobnicate"`,
		"ok pong",
		"ok bye",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d responses %q, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("response %d:\n got %q\nwant %q", i, got[i], want[i])
		}
	}
}

// TestWorkersRequestIdenticalAndCapped: an explicit workers=N answers
// the byte-identical line the default run produces (the engine knob
// never changes results), and a server with a per-request cap refuses
// requests above it while serving those within it.
func TestWorkersRequestIdenticalAndCapped(t *testing.T) {
	s := newTestServer(t, 2)
	for _, model := range []string{"congest", "decomposed"} {
		base := session(t, s, "color grid "+model)[0]
		if !strings.HasPrefix(base, "ok ") {
			t.Fatalf("base %s run failed: %q", model, base)
		}
		for _, w := range []string{"workers=1", "workers=3"} {
			if got := session(t, s, "color grid "+model+" "+w)[0]; got != base {
				t.Errorf("%s %s: got %q, want the default run's %q", model, w, got, base)
			}
		}
	}

	capped := New(Options{Workers: 1, EngineWorkers: 2})
	if err := capped.AddGraph("grid", graph.Grid2D(5, 6)); err != nil {
		t.Fatal(err)
	}
	if got := session(t, capped, "color grid congest workers=3")[0]; got != "err workers=3 exceeds this server's per-request cap 2" {
		t.Errorf("over-cap request: got %q", got)
	}
	within := session(t, capped, "color grid congest workers=2")[0]
	deflt := session(t, capped, "color grid congest")[0] // default = the cap
	if !strings.HasPrefix(within, "ok ") || within != deflt {
		t.Errorf("within-cap %q vs default %q", within, deflt)
	}
}

// TestAllModelsVerifiedAndDeterministic: each model answers ok on each
// graph, and repeating the request reproduces the identical line — the
// daemon's answers are a pure function of (graph, model).
func TestAllModelsVerifiedAndDeterministic(t *testing.T) {
	s := newTestServer(t, 4)
	for _, g := range []string{"gnp", "grid"} {
		for _, model := range []string{"congest", "decomposed", "clique", "mpc", "greedy"} {
			req := "color " + g + " " + model
			a := session(t, s, req)[0]
			if !strings.HasPrefix(a, "ok ") {
				t.Fatalf("%s: %s", req, a)
			}
			if b := session(t, s, req)[0]; a != b {
				t.Fatalf("%s not deterministic:\n%s\n%s", req, a, b)
			}
		}
	}
}

// TestServeConcurrentBitIdentical is the daemon-side acceptance test:
// 8 concurrent TCP sessions all running coloring queries, every
// response bit-identical to direct library calls on the same graphs.
func TestServeConcurrentBitIdentical(t *testing.T) {
	s := newTestServer(t, 4)

	// Reference answers straight from the library.
	want := map[string]string{}
	for _, name := range []string{"gnp", "grid"} {
		inst := s.graphs[name].inst
		res, err := core.ListColorCONGEST(inst, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		d, h := ColorsSummary(res.Colors)
		want["color "+name+" congest"] = fmt.Sprintf(
			"ok graph=%s model=congest colors=%d hash=%08x rounds=%d messages=%d maxmsgwords=%d iterations=%d",
			name, d, h, res.Stats.Rounds, res.Stats.Messages, res.Stats.MaxMessageWords, res.Iterations)
		d, h = ColorsSummary(inst.Greedy())
		want["color "+name+" greedy"] = fmt.Sprintf("ok graph=%s model=greedy colors=%d hash=%08x", name, d, h)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			name := []string{"gnp", "grid"}[i%2]
			reqs := []string{"color " + name + " congest", "color " + name + " greedy"}
			var sb strings.Builder
			for _, r := range reqs {
				sb.WriteString(r + "\n")
			}
			sb.WriteString("quit\n")
			if _, err := conn.Write([]byte(sb.String())); err != nil {
				errs <- err
				return
			}
			buf := make([]byte, 1<<16)
			var resp strings.Builder
			for {
				n, err := conn.Read(buf)
				resp.Write(buf[:n])
				if err != nil {
					break
				}
			}
			lines := strings.Split(strings.TrimSuffix(resp.String(), "\n"), "\n")
			if len(lines) != len(reqs)+1 {
				errs <- fmt.Errorf("session %d: %d responses %q", i, len(lines), lines)
				return
			}
			for j, r := range reqs {
				if lines[j] != want[r] {
					errs <- fmt.Errorf("session %d request %q:\n got %q\nwant %q", i, r, lines[j], want[r])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not drain within 10s of cancellation")
	}
}

// TestServeShutdownUnblocksIdleSession: a session sitting idle in a
// read must not wedge shutdown.
func TestServeShutdownUnblocksIdleSession(t *testing.T) {
	s := newTestServer(t, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if n, err := conn.Read(buf); err != nil || string(buf[:n]) != "ok pong\n" {
		t.Fatalf("ping answered %q (%v)", buf[:n], err)
	}
	// Leave the session idle and cancel.
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve wedged on an idle session")
	}
}

// TestLoadStore: a store file registers and serves identically to the
// in-memory graph it was written from.
func TestLoadStore(t *testing.T) {
	g := graph.GNP(35, 0.2, 9)
	path := t.TempDir() + "/g.store"
	if err := store.Write(path, g); err != nil {
		t.Fatal(err)
	}
	s := New(Options{Workers: 2})
	info, err := s.LoadStore("disk", path)
	if err != nil {
		t.Fatal(err)
	}
	if info.N != 35 {
		t.Fatalf("info.N=%d", info.N)
	}
	direct := New(Options{Workers: 2})
	if err := direct.AddGraph("disk", g); err != nil {
		t.Fatal(err)
	}
	for _, req := range []string{"info disk", "stats disk", "color disk congest", "color disk greedy"} {
		a, b := session(t, s, req)[0], session(t, direct, req)[0]
		if a != b {
			t.Fatalf("%q: store-backed %q != in-memory %q", req, a, b)
		}
	}
}

// TestWorkerPoolBounds: with a single worker, concurrent sessions still
// all complete (the pool queues rather than rejects).
func TestWorkerPoolBounds(t *testing.T) {
	s := newTestServer(t, 1)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := session(t, s, "color grid greedy")[0]; !strings.HasPrefix(got, "ok ") {
				t.Error(got)
			}
		}()
	}
	wg.Wait()
}

// TestPanicIsolated: a request that panics inside dispatch answers err
// and the session keeps serving. Exercised through an unregistered
// nil-graph entry, the only way to force a panic without reaching into
// algorithm internals.
func TestPanicIsolated(t *testing.T) {
	s := newTestServer(t, 1)
	s.graphs["bad"] = &entry{} // nil graph: any access panics
	got := session(t, s, "info bad", "ping")
	if !strings.HasPrefix(got[0], "err internal:") {
		t.Fatalf("panicking request answered %q", got[0])
	}
	if got[1] != "ok pong" {
		t.Fatalf("session dead after a panicking request: %q", got[1])
	}
}
