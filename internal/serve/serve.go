// Package serve is the coloring-service engine behind cmd/colorserve: a
// set of resident graphs (loaded once, typically from graph-store
// files) and a line-oriented request protocol served concurrently from
// a bounded worker pool.
//
// # Protocol
//
// One request per line, fields separated by spaces; one response line
// per request, in request order within a session. Responses start with
// "ok" or "err". Sessions are independent — a daemon serves many
// concurrent sessions, each on its own connection, with the worker pool
// bounding total concurrent compute across all of them.
//
//	ping                 → ok pong
//	graphs               → ok graphs=<name,...> (sorted)
//	info <graph>         → ok graph=<g> n=.. m=.. maxdeg=.. arcs=..
//	stats <graph>        → ok graph=<g> n=.. m=.. maxdeg=.. mindeg=..
//	                        avgdeg=.. isolated=.. components=..
//	color <graph> <model> [workers=N]
//	                     → ok graph=<g> model=<m> colors=.. hash=..
//	                        <model-specific cost fields>
//	quit                 → ok bye (and the session ends)
//
// model is one of congest|decomposed|clique|mpc|greedy. Every color
// response is verified against the instance before it is sent; colors=
// is the number of distinct colors used and hash= the CRC-32 (IEEE) of
// the little-endian color array — the field the differential tests and
// the CI session diff use to pin bit-identity against direct library
// calls.
//
// workers=N bounds the simulator engine's parallelism for that one
// request (engine-backed models only: congest and decomposed). N must
// be a positive integer no larger than the server's per-request cap
// (Options.EngineWorkers, when set); anything else answers "err".
// Omitting the argument uses the server's default. The knob changes
// wall-clock only — colors, hashes, and cost fields are bit-identical
// at every worker count.
//
// Every malformed request — unknown command, unknown graph, unknown
// model, wrong arity — answers "err <reason>" and leaves the session
// usable: remote input must never take the daemon down.
package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"smallbandwidth/internal/clique"
	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/core"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/mpc"
	"smallbandwidth/internal/netdecomp"
	"smallbandwidth/internal/store"
)

// Options configures a Server.
type Options struct {
	// Workers bounds the number of concurrently executing requests
	// across all sessions; 0 means GOMAXPROCS.
	Workers int
	// EngineWorkers is the per-request cap on the simulator engine's
	// worker count: the default when a color request names no workers=N,
	// and the largest N a request may ask for. 0 leaves requests at the
	// engine's own GOMAXPROCS sizing with no cap. An out-of-range value
	// is rejected per request (the engine refuses it with a diagnostic),
	// never silently clamped.
	EngineWorkers int
}

// Server holds the resident graphs and the worker pool. Register every
// graph (AddGraph/LoadStore) before serving: the graph set is immutable
// once requests flow, which is what lets sessions read it lock-free.
type Server struct {
	sem       chan struct{}
	graphs    map[string]*entry
	engineCap int
}

// entry is one resident graph with its (Δ+1)-instance materialized at
// registration, so no request pays the list build.
type entry struct {
	g    *graph.Graph
	inst *graph.Instance
}

// New returns a Server with an empty graph set.
func New(opts Options) *Server {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Server{sem: make(chan struct{}, w), graphs: map[string]*entry{}, engineCap: opts.EngineWorkers}
}

// AddGraph registers g under name and precomputes its resident
// (Δ+1)-coloring instance.
func (s *Server) AddGraph(name string, g *graph.Graph) error {
	if name == "" || strings.ContainsAny(name, " \t\r\n") {
		return fmt.Errorf("serve: invalid graph name %q", name)
	}
	if _, dup := s.graphs[name]; dup {
		return fmt.Errorf("serve: duplicate graph name %q", name)
	}
	s.graphs[name] = &entry{g: g, inst: graph.DeltaPlusOneInstance(g)}
	return nil
}

// LoadStore loads the store file at path (validated, zero-copy where
// the platform allows) and registers it under name.
func (s *Server) LoadStore(name, path string) (*store.Info, error) {
	g, info, err := store.Load(path)
	if err != nil {
		return nil, fmt.Errorf("serve: %s: %w", path, err)
	}
	if err := s.AddGraph(name, g); err != nil {
		return nil, err
	}
	return info, nil
}

// Names returns the registered graph names, sorted.
func (s *Server) Names() []string {
	names := make([]string, 0, len(s.graphs))
	for name := range s.graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// HandleSession serves one session: requests from r, responses to w,
// until quit, EOF, or a write error. Each request runs inside a worker
// slot, so N concurrent sessions never execute more than the pool's
// width of coloring runs at once.
func (s *Server) HandleSession(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 4096), 1<<20)
	bw := bufio.NewWriter(w)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		resp, quit := s.dispatch(line)
		if _, err := bw.WriteString(resp + "\n"); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if quit {
			return nil
		}
	}
	return sc.Err()
}

// dispatch executes one request line inside a worker slot.
func (s *Server) dispatch(line string) (resp string, quit bool) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	defer func() {
		// A panic inside an algorithm must not take down the daemon or
		// the session: report it as a request error. The resident state
		// is read-only, so no corruption can escape the request.
		if p := recover(); p != nil {
			resp, quit = fmt.Sprintf("err internal: %v", p), false
		}
	}()

	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "ping":
		if len(args) != 0 {
			return "err usage: ping", false
		}
		return "ok pong", false
	case "quit":
		return "ok bye", true
	case "graphs":
		if len(args) != 0 {
			return "err usage: graphs", false
		}
		return "ok graphs=" + strings.Join(s.Names(), ","), false
	case "info":
		if len(args) != 1 {
			return "err usage: info <graph>", false
		}
		e, err := s.lookup(args[0])
		if err != nil {
			return "err " + err.Error(), false
		}
		return fmt.Sprintf("ok graph=%s n=%d m=%d maxdeg=%d arcs=%d",
			args[0], e.g.N(), e.g.M(), e.g.MaxDegree(), e.g.NumArcs()), false
	case "stats":
		if len(args) != 1 {
			return "err usage: stats <graph>", false
		}
		e, err := s.lookup(args[0])
		if err != nil {
			return "err " + err.Error(), false
		}
		return statsResponse(args[0], e.g), false
	case "color":
		if len(args) != 2 && len(args) != 3 {
			return "err usage: color <graph> <model> [workers=N]", false
		}
		e, err := s.lookup(args[0])
		if err != nil {
			return "err " + err.Error(), false
		}
		workers := s.engineCap
		if len(args) == 3 {
			w, err := s.parseWorkers(args[1], args[2])
			if err != nil {
				return "err " + err.Error(), false
			}
			workers = w
		}
		return colorResponse(args[0], args[1], e.inst, workers), false
	default:
		return fmt.Sprintf("err unknown command %q", cmd), false
	}
}

// parseWorkers validates a color request's workers=N argument against
// the model and the server's per-request cap. Every failure is a
// protocol-level "err": remote input never reaches the engine with a
// worker count the operator didn't sanction.
func (s *Server) parseWorkers(model, arg string) (int, error) {
	val, ok := strings.CutPrefix(arg, "workers=")
	if !ok {
		return 0, fmt.Errorf("usage: color <graph> <model> [workers=N], got %q", arg)
	}
	if model != "congest" && model != "decomposed" {
		return 0, fmt.Errorf("workers= is not supported by model %q (engine-backed models: congest, decomposed)", model)
	}
	n, err := strconv.Atoi(val)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("workers=%s is not a usable worker count (want an integer >= 1)", val)
	}
	if s.engineCap > 0 && n > s.engineCap {
		return 0, fmt.Errorf("workers=%d exceeds this server's per-request cap %d", n, s.engineCap)
	}
	if n > congest.MaxWorkers {
		return 0, fmt.Errorf("workers=%d exceeds the engine maximum %d", n, congest.MaxWorkers)
	}
	return n, nil
}

func (s *Server) lookup(name string) (*entry, error) {
	e, ok := s.graphs[name]
	if !ok {
		return nil, fmt.Errorf("unknown graph %q (have: %s)", name, strings.Join(s.Names(), ","))
	}
	return e, nil
}

func statsResponse(name string, g *graph.Graph) string {
	minDeg, isolated := 0, 0
	if g.N() > 0 {
		minDeg = g.Degree(0)
	}
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		if d < minDeg {
			minDeg = d
		}
		if d == 0 {
			isolated++
		}
	}
	avg := 0.0
	if g.N() > 0 {
		avg = float64(2*g.M()) / float64(g.N())
	}
	return fmt.Sprintf("ok graph=%s n=%d m=%d maxdeg=%d mindeg=%d avgdeg=%.2f isolated=%d components=%d",
		name, g.N(), g.M(), g.MaxDegree(), minDeg, avg, isolated, g.ComponentCount())
}

// ColorsSummary reduces a coloring to the two protocol fields: the
// distinct-color count and the CRC-32 of the little-endian color
// array. Exported so differential tests and benchmarks compute the
// reference values through the same code.
func ColorsSummary(colors []uint32) (distinct int, hash uint32) {
	seen := make(map[uint32]struct{}, 64)
	h := crc32.NewIEEE()
	var buf [4]byte
	for _, c := range colors {
		seen[c] = struct{}{}
		binary.LittleEndian.PutUint32(buf[:], c)
		h.Write(buf[:])
	}
	return len(seen), h.Sum32()
}

func colorResponse(name, model string, inst *graph.Instance, workers int) string {
	var (
		colors []uint32
		extra  string
		err    error
	)
	switch model {
	case "congest":
		var res *core.Result
		res, err = core.ListColorCONGEST(inst, core.Options{Workers: workers})
		if err == nil {
			colors = res.Colors
			extra = fmt.Sprintf(" rounds=%d messages=%d maxmsgwords=%d iterations=%d",
				res.Stats.Rounds, res.Stats.Messages, res.Stats.MaxMessageWords, res.Iterations)
		}
	case "decomposed":
		var res *netdecomp.DecompResult
		res, err = netdecomp.ListColorDecomposed(inst, core.Options{Workers: workers})
		if err == nil {
			colors = res.Colors
			extra = fmt.Sprintf(" chargedrounds=%d classes=%d clusters=%d",
				res.ChargedRounds, res.Decomp.Colors, len(res.Decomp.Clusters))
		}
	case "clique":
		var res *clique.Result
		res, err = clique.ListColorClique(inst, clique.Options{})
		if err == nil {
			colors = res.Colors
			extra = fmt.Sprintf(" rounds=%d iterations=%d", res.Stats.Rounds, res.Iterations)
		}
	case "mpc":
		var res *mpc.Result
		res, err = mpc.ListColorMPC(inst, mpc.Options{})
		if err == nil {
			colors = res.Colors
			extra = fmt.Sprintf(" rounds=%d machines=%d s=%d", res.Rounds, res.Machines, res.S)
		}
	case "greedy":
		colors = inst.Greedy()
	default:
		return fmt.Sprintf("err unknown model %q (want congest|decomposed|clique|mpc|greedy)", model)
	}
	if err != nil {
		return "err " + err.Error()
	}
	if err := inst.VerifyColoring(colors); err != nil {
		return "err " + err.Error()
	}
	distinct, hash := ColorsSummary(colors)
	return fmt.Sprintf("ok graph=%s model=%s colors=%d hash=%08x%s", name, model, distinct, hash, extra)
}

// Serve accepts connections from ln until ctx is canceled, one session
// per connection. Cancellation is graceful: the listener stops
// accepting, idle sessions are unblocked via an expired read deadline
// (an in-flight request still finishes and writes its response), and
// Serve returns once every session goroutine has exited.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	var wg sync.WaitGroup
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		ln.Close()
	}()
	defer close(done)
	var conns sync.Map
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				conns.Range(func(k, _ any) bool {
					//sbw:nondet shutdown drain only: an already-expired deadline unblocks pending readers; the clock value never reaches request processing or reply bytes
					k.(net.Conn).SetReadDeadline(time.Now())
					return true
				})
				wg.Wait()
				return nil
			}
			wg.Wait()
			return err
		}
		wg.Add(1)
		conns.Store(conn, struct{}{})
		go func() {
			defer wg.Done()
			defer conns.Delete(conn)
			defer conn.Close()
			s.HandleSession(conn, conn)
		}()
	}
}
