//sbw:stickydecoder edge-list ingest of hostile text (FuzzIngest); malformed input is a line-numbered error, never a panic
package store

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"

	"smallbandwidth/internal/graph"
)

// IngestStats reports what Ingest saw in the input stream.
type IngestStats struct {
	Lines      int // total input lines
	Comments   int // comment or blank lines skipped
	Edges      int // undirected edges kept
	Duplicates int // repeated edges dropped (either orientation)
	SelfLoops  int // self-loop lines dropped
	Nodes      int // distinct node IDs seen (the dense ID space)
}

// Ingest reads a textual edge list and builds a graph from it. The
// grammar accepts what real published edge lists look like:
//
//   - one edge per line: two non-negative integer node IDs separated by
//     whitespace and/or commas; extra columns (weights, timestamps) are
//     ignored
//   - blank lines and lines starting with '#', '%', or "//" are
//     comments
//   - node IDs are arbitrary uint64s, relabeled to dense 0..N-1 in
//     first-appearance order (deterministic for a given input)
//   - duplicate edges (in either orientation) and self-loops are
//     dropped and counted, as published datasets routinely contain both
//
// Everything else — non-numeric tokens, a lone endpoint, more nodes
// than the int32 ID space, more edges than the arc space — is an error
// carrying the 1-based line number. The input is untrusted: no input
// can make Ingest panic (FuzzIngest pins this), because the graph is
// finalized through graph.BuildChecked, which reports invariant
// violations instead of throwing them.
func Ingest(r io.Reader) (*graph.Graph, *IngestStats, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var (
		stats  IngestStats
		ids    = map[uint64]int32{}
		seen   = map[uint64]struct{}{}
		us, vs []int32
	)
	intern := func(raw uint64) (int32, error) {
		if id, ok := ids[raw]; ok {
			return id, nil
		}
		if len(ids) >= math.MaxInt32 {
			return 0, fmt.Errorf("more than %d distinct node IDs", math.MaxInt32)
		}
		id := int32(len(ids))
		ids[raw] = id
		return id, nil
	}
	for sc.Scan() {
		stats.Lines++
		line := sc.Text()
		u64, v64, kind, err := parseEdgeLine(line)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %v", stats.Lines, err)
		}
		if kind == lineComment {
			stats.Comments++
			continue
		}
		if u64 == v64 {
			// Intern the endpoint anyway: a node that only ever appears in
			// self-loops still exists in the dataset.
			if _, err := intern(u64); err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", stats.Lines, err)
			}
			stats.SelfLoops++
			continue
		}
		u, err := intern(u64)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %v", stats.Lines, err)
		}
		v, err := intern(v64)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %v", stats.Lines, err)
		}
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		key := uint64(uint32(lo))<<32 | uint64(uint32(hi))
		if _, dup := seen[key]; dup {
			stats.Duplicates++
			continue
		}
		if len(us) >= (1<<31-1)/2 {
			return nil, nil, fmt.Errorf("line %d: %d edges exceed the int32 arc-ID space", stats.Lines, len(us)+1)
		}
		seen[key] = struct{}{}
		us = append(us, u)
		vs = append(vs, v)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("line %d: %v", stats.Lines+1, err)
	}
	stats.Edges = len(us)
	stats.Nodes = len(ids)

	// The stream was deduplicated above and relabeled to dense in-range
	// IDs, so the hash-set add would only rebuild a map we already paid
	// for; BuildChecked's strict-ascent scan still turns any dedup bug
	// into an error instead of a panic.
	b := graph.NewBuilder(len(ids))
	b.Grow(len(us))
	for i := range us {
		b.AddUnchecked(int(us[i]), int(vs[i]))
	}
	g, err := b.BuildChecked()
	if err != nil {
		return nil, nil, err
	}
	return g, &stats, nil
}

type lineKind int

const (
	lineComment lineKind = iota
	lineEdge
)

// parseEdgeLine classifies one input line and extracts its endpoints.
// Separators are any run of spaces, tabs, commas, or semicolons; a
// trailing '\r' (CRLF input) is stripped.
func parseEdgeLine(line string) (u, v uint64, kind lineKind, err error) {
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	fields := splitFields(line)
	if len(fields) == 0 {
		return 0, 0, lineComment, nil
	}
	if f := fields[0]; f[0] == '#' || f[0] == '%' || (len(f) >= 2 && f[0] == '/' && f[1] == '/') {
		return 0, 0, lineComment, nil
	}
	if len(fields) < 2 {
		return 0, 0, lineEdge, fmt.Errorf("expected two node IDs, got %q", line)
	}
	u, err = strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return 0, 0, lineEdge, fmt.Errorf("bad node ID %q", fields[0])
	}
	v, err = strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, 0, lineEdge, fmt.Errorf("bad node ID %q", fields[1])
	}
	return u, v, lineEdge, nil
}

// splitFields splits on runs of the accepted separators without
// allocating beyond the field headers.
func splitFields(line string) []string {
	var fields []string
	start := -1
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case ' ', '\t', ',', ';':
			if start >= 0 {
				fields = append(fields, line[start:i])
				start = -1
			}
		default:
			if start < 0 {
				start = i
			}
		}
	}
	if start >= 0 {
		fields = append(fields, line[start:])
	}
	return fields
}
