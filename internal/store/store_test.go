package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"smallbandwidth/internal/core"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/snapshot"
)

// storeGraphs is the seeded graph set the round-trip and differential
// tests sweep — the conformance-suite shapes plus empty and edgeless
// corners.
func storeGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path33":      graph.Path(33),
		"star17":      graph.Star(16),
		"regular24-4": graph.MustRandomRegular(24, 4, 11),
		"gnp28":       graph.GNP(28, 0.15, 7),
		"clique12":    graph.Complete(12),
		"grid":        graph.Grid2D(6, 7),
		"empty":       graph.NewBuilder(0).Build(),
		"edgeless":    graph.NewBuilder(5).Build(),
	}
}

// TestStoreRoundTrip pins the format: encode → decode must produce a
// bit-identical graph (graph.Equal compares the raw CSR arrays), under
// both the validating and the trusted load paths, in memory and through
// a file.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for name, g := range storeGraphs() {
		raw := EncodeGraph(g)
		got, info, err := DecodeGraph(raw)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !g.Equal(got) {
			t.Fatalf("%s: decoded graph differs", name)
		}
		if info.N != g.N() || info.M != g.M() || info.MaxDeg != g.MaxDegree() {
			t.Fatalf("%s: info %+v disagrees with graph", name, info)
		}

		path := filepath.Join(dir, name+".store")
		if err := Write(path, g); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		for load, fn := range map[string]func(string) (*graph.Graph, *Info, error){"Load": Load, "LoadTrusted": LoadTrusted} {
			got, _, err := fn(path)
			if err != nil {
				t.Fatalf("%s: %s: %v", name, load, err)
			}
			if !g.Equal(got) {
				t.Fatalf("%s: %s produced a different graph", name, load)
			}
		}
	}
}

// TestStoreEncodeCanonical pins byte-for-byte determinism: encoding the
// same graph twice, and encoding a decoded graph, reproduce identical
// bytes — the property the CRC section table and CI diffing rely on.
func TestStoreEncodeCanonical(t *testing.T) {
	g := graph.GNP(40, 0.2, 3)
	a := EncodeGraph(g)
	if !bytes.Equal(a, EncodeGraph(g)) {
		t.Fatal("two encodings of one graph differ")
	}
	dec, _, err := DecodeGraph(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, EncodeGraph(dec)) {
		t.Fatal("decode → encode is not byte-identical")
	}
}

// TestStoreDifferentialColoring is the store-level differential test:
// ColorCONGEST on a loaded graph must report bit-identical Colors and
// Stats to the same run on the built graph, across the conformance
// shapes.
func TestStoreDifferentialColoring(t *testing.T) {
	dir := t.TempDir()
	for name, g := range storeGraphs() {
		if g.N() == 0 {
			continue
		}
		path := filepath.Join(dir, name+".store")
		if err := Write(path, g); err != nil {
			t.Fatal(err)
		}
		loaded, _, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.ListColorCONGEST(graph.DeltaPlusOneInstance(g), core.Options{})
		if err != nil {
			t.Fatalf("%s: built run: %v", name, err)
		}
		got, err := core.ListColorCONGEST(graph.DeltaPlusOneInstance(loaded), core.Options{})
		if err != nil {
			t.Fatalf("%s: loaded run: %v", name, err)
		}
		if !reflect.DeepEqual(want.Colors, got.Colors) {
			t.Fatalf("%s: colors differ between built and loaded graphs", name)
		}
		if want.Stats != got.Stats {
			t.Fatalf("%s: stats differ: built %+v loaded %+v", name, want.Stats, got.Stats)
		}
	}
}

// TestStoreRejectsHostileInput: corrupt containers, checkpoint files,
// and structurally broken CSR payloads all yield errors, never panics
// or broken graphs.
func TestStoreRejectsHostileInput(t *testing.T) {
	g := graph.Grid2D(4, 4)
	raw := EncodeGraph(g)

	// Bit-flip every byte in turn: each flip must either fail CRC/parse
	// or still decode to a valid graph (flips inside ignored regions
	// don't exist in this format, but the contract is "no panic, no
	// broken graph", not "always an error").
	for i := range raw {
		mut := bytes.Clone(raw)
		mut[i] ^= 0x40
		if dec, _, err := DecodeGraph(mut); err == nil {
			if dec.N() < 0 || dec.NumArcs()%2 != 0 {
				t.Fatalf("flip at %d produced a broken graph", i)
			}
		}
	}
	// Truncations.
	for _, cut := range []int{0, 1, len(raw) / 2, len(raw) - 1} {
		if _, _, err := DecodeGraph(raw[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", cut)
		}
	}
	// A checkpoint-shaped container (no store sections) is refused with
	// a pointed error.
	cp := snapshot.Encode(&snapshot.Container{Version: snapshot.Version, Sections: []snapshot.Section{
		{ID: snapshot.SecMeta, Data: []byte("congest/listcolor/v1")},
	}})
	if _, _, err := DecodeGraph(cp); err == nil {
		t.Fatal("a checkpoint container decoded as a store")
	}

	// An asymmetric arc arena passes shape checks but must be rejected
	// by the validating load. Build it by hand-crafting sections.
	off := []int32{0, 1, 2, 2}
	nbr := []int32{1, 2}
	hostile := encodeRaw(t, 3, 1, 1, off, nbr)
	if _, _, err := DecodeGraph(hostile); err == nil {
		t.Fatal("validating decode accepted an asymmetric arc arena")
	}
}

// encodeRaw assembles a store container from raw arrays without going
// through a Graph — the attacker's encoder.
func encodeRaw(t *testing.T, n, m, maxDeg int, off, nbr []int32) []byte {
	t.Helper()
	meta := &snapshot.Enc{}
	meta.Blob([]byte(Fingerprint))
	meta.Uvarint(uint64(n))
	meta.Uvarint(uint64(m))
	meta.Uvarint(uint64(maxDeg))
	header := 16 + 12*3
	pad := make([]byte, (4-(header+len(meta.Bytes()))%4)%4)
	return snapshot.Encode(&snapshot.Container{Version: snapshot.Version, Sections: []snapshot.Section{
		{ID: snapshot.SecStoreMeta, Data: append(meta.Bytes(), pad...)},
		{ID: snapshot.SecStoreOff, Data: int32Bytes(off)},
		{ID: snapshot.SecStoreNbr, Data: int32Bytes(nbr)},
	}})
}

// TestStoreZeroCopyAligned pins the zero-copy load path on the platform
// CI runs on: a file loaded on a little-endian host reports ZeroCopy,
// i.e. the CSR arrays alias the file buffer instead of being rebuilt.
func TestStoreZeroCopyAligned(t *testing.T) {
	if !nativeLE {
		t.Skip("copying decode expected on a big-endian host")
	}
	path := filepath.Join(t.TempDir(), "g.store")
	if err := Write(path, graph.GNP(50, 0.2, 1)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, info, err := DecodeGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	if !info.ZeroCopy {
		t.Fatal("aligned little-endian decode did not take the zero-copy path")
	}
	info2, err := ReadInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info2.N != 50 {
		t.Fatalf("ReadInfo n=%d", info2.N)
	}
}
