// Package store is the persistent graph store: a versioned on-disk
// format for CSR graphs, an edge-list ingest path for real datasets,
// and the durable atomic-write helper shared by every file-writing
// command in the repository.
//
// # File format
//
// A store file reuses the snapshot container (magic SBWSNAP1, format
// version, CRC-checked section table — see internal/snapshot) with
// three sections:
//
//   - SecStoreMeta: the fingerprint "store/csr/v1", then n, m, Δ as
//     uvarints, then zero padding that 4-aligns the next payload.
//   - SecStoreOff: the CSR offset table as raw little-endian int32,
//     4·(n+1) bytes.
//   - SecStoreNbr: the CSR arc arena as raw little-endian int32,
//     4·2m bytes.
//
// Because the CSR arenas are already flat arrays, encoding is a
// straight dump and loading is zero-copy on little-endian hosts: the
// int32 slices alias the (mmap'd or read) file buffer, so loading a
// million-node graph costs file read + CRC + linear validation, not a
// rebuild. The meta padding plus the section order guarantee the raw
// sections start 4-aligned whenever the buffer base is 4-aligned; a
// misaligned or big-endian host transparently falls back to a copying
// decode.
//
// # Trust model
//
// Load validates by default: the CRC catches corruption, and the graph
// is reconstructed through graph.FromCSR, which checks every structural
// invariant (offset shape, row sortedness, target range, no self-loops,
// arc symmetry) in linear time — a hostile store file yields an error,
// never a panic or a structurally broken graph. LoadTrusted skips the
// per-arc checks (graph.FromCSRUnchecked) for files the caller itself
// produced, e.g. a benchmark re-reading a store it just wrote.
//sbw:stickydecoder store decode path for hostile store files (FuzzStoreDecode); Load must reject, never panic
package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"unsafe"

	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/snapshot"
)

// Fingerprint identifies a graph-store file inside the shared snapshot
// container; a checkpoint file carries a different meta section, so the
// two kinds cannot be mistaken for each other.
const Fingerprint = "store/csr/v1"

// Info is the metadata of a store file, readable without loading the
// graph.
type Info struct {
	N      int // nodes
	M      int // undirected edges
	MaxDeg int // Δ, fixed at ingest
	Bytes  int // encoded container size
	// ZeroCopy reports whether the arrays were adopted in place
	// (little-endian host, aligned buffer) rather than copied.
	ZeroCopy bool
}

// nativeLE reports whether the host is little-endian: the raw sections
// can then be aliased instead of decoded.
var nativeLE = binary.NativeEndian.Uint16([]byte{0x34, 0x12}) == 0x1234

// EncodeGraph serializes g into a store container. The raw sections are
// straight dumps of the CSR arenas, so encode cost is two memcpys plus
// the CRC pass.
func EncodeGraph(g *graph.Graph) []byte {
	off, nbr := g.CSR()
	meta := &snapshot.Enc{}
	meta.Blob([]byte(Fingerprint))
	meta.Uvarint(uint64(g.N()))
	meta.Uvarint(uint64(g.M()))
	meta.Uvarint(uint64(g.MaxDegree()))
	// Pad the meta payload so the off section lands 4-aligned: the
	// container header is 16 + 12·sections bytes (4-aligned for any
	// section count), so only the meta length can misalign it. The off
	// payload is 4·(n+1) bytes, which keeps nbr aligned in turn.
	header := 16 + 12*3
	pad := make([]byte, (4-(header+len(meta.Bytes()))%4)%4)
	metaBytes := append(meta.Bytes(), pad...)

	c := &snapshot.Container{Version: snapshot.Version, Sections: []snapshot.Section{
		{ID: snapshot.SecStoreMeta, Data: metaBytes},
		{ID: snapshot.SecStoreOff, Data: int32Bytes(off)},
		{ID: snapshot.SecStoreNbr, Data: int32Bytes(nbr)},
	}}
	return snapshot.Encode(c)
}

// Write encodes g and writes it durably to path via WriteFileAtomic.
func Write(path string, g *graph.Graph) error {
	return WriteFileAtomic(path, EncodeGraph(g))
}

// int32Bytes reinterprets an int32 slice as its underlying bytes on
// little-endian hosts, or copies through an explicit LE encoding
// elsewhere — either way the section holds the canonical LE byte image.
func int32Bytes(a []int32) []byte {
	if len(a) == 0 {
		return nil
	}
	if nativeLE {
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(a))), 4*len(a))
	}
	b := make([]byte, 4*len(a))
	for i, v := range a {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return b
}

// int32Section reinterprets a section payload as an int32 slice. On a
// little-endian host with a 4-aligned payload the returned slice
// aliases b (zero-copy); otherwise it is decoded into fresh memory.
func int32Section(b []byte) (a []int32, zeroCopy bool) {
	if len(b) == 0 {
		return nil, true
	}
	if nativeLE && uintptr(unsafe.Pointer(unsafe.SliceData(b)))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4), true
	}
	a = make([]int32, len(b)/4)
	for i := range a {
		a[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return a, false
}

// decode parses a store container from data, returning the raw CSR
// arrays and metadata. The arrays alias data when possible — the caller
// must keep data alive (and unmodified) as long as the graph lives.
func decode(data []byte) (off, nbr []int32, info *Info, err error) {
	c, err := snapshot.Decode(data)
	if err != nil {
		return nil, nil, nil, err
	}
	metaSec := c.Find(snapshot.SecStoreMeta)
	if metaSec == nil {
		return nil, nil, nil, fmt.Errorf("store: no store meta section (is this a checkpoint file?)")
	}
	d := snapshot.NewDec(metaSec)
	fp := d.Blob()
	n := d.Uvarint()
	m := d.Uvarint()
	maxDeg := d.Uvarint()
	if d.Err() != nil {
		return nil, nil, nil, d.Err()
	}
	if string(fp) != Fingerprint {
		return nil, nil, nil, fmt.Errorf("store: fingerprint %q is not %q", fp, Fingerprint)
	}
	for d.Remaining() > 0 {
		if d.Bool() || d.Err() != nil {
			return nil, nil, nil, fmt.Errorf("store: nonzero meta padding")
		}
	}
	if n > math.MaxInt32 || m > (math.MaxInt32-1)/2 || maxDeg > n {
		return nil, nil, nil, fmt.Errorf("store: implausible shape n=%d m=%d Δ=%d", n, m, maxDeg)
	}

	offSec := c.Find(snapshot.SecStoreOff)
	nbrSec := c.Find(snapshot.SecStoreNbr)
	if offSec == nil || nbrSec == nil {
		return nil, nil, nil, fmt.Errorf("store: raw CSR sections missing")
	}
	if uint64(len(offSec)) != 4*(n+1) {
		return nil, nil, nil, fmt.Errorf("store: offset section is %d bytes for %d nodes", len(offSec), n)
	}
	if uint64(len(nbrSec)) != 4*2*m {
		return nil, nil, nil, fmt.Errorf("store: arc section is %d bytes for %d edges", len(nbrSec), m)
	}
	off, offZC := int32Section(offSec)
	nbr, nbrZC := int32Section(nbrSec)
	return off, nbr, &Info{
		N: int(n), M: int(m), MaxDeg: int(maxDeg),
		Bytes: len(data), ZeroCopy: offZC && nbrZC,
	}, nil
}

// DecodeGraph parses a store container and reconstructs its graph with
// full validation (graph.FromCSR: every structural invariant, linear
// time). Hostile or corrupt input returns an error, never a panic. The
// graph may alias data, which must stay alive and unmodified.
func DecodeGraph(data []byte) (*graph.Graph, *Info, error) {
	return decodeGraph(data, false)
}

func decodeGraph(data []byte, trusted bool) (*graph.Graph, *Info, error) {
	off, nbr, info, err := decode(data)
	if err != nil {
		return nil, nil, err
	}
	var g *graph.Graph
	if trusted {
		g, err = graph.FromCSRUnchecked(off, nbr)
	} else {
		g, err = graph.FromCSR(off, nbr)
	}
	if err != nil {
		return nil, nil, err
	}
	if g.N() != info.N || g.M() != info.M || g.MaxDegree() != info.MaxDeg {
		return nil, nil, fmt.Errorf("store: meta shape n=%d m=%d Δ=%d disagrees with sections n=%d m=%d Δ=%d",
			info.N, info.M, info.MaxDeg, g.N(), g.M(), g.MaxDegree())
	}
	return g, info, nil
}

// Load reads (mmap when available, falling back to a plain read) and
// fully validates the store file at path. The returned graph may alias
// a file mapping that stays resident for the life of the process — the
// intended consumer is a daemon that keeps its graphs hot.
func Load(path string) (*graph.Graph, *Info, error) {
	data, err := readOrMmap(path)
	if err != nil {
		return nil, nil, err
	}
	return DecodeGraph(data)
}

// LoadTrusted is Load minus the per-arc validation: only CRC, shape,
// and offset-table checks run, so the cost is file read + checksum.
// Reserved for files this process (or its operator) produced through
// Write; see the package trust model.
func LoadTrusted(path string) (*graph.Graph, *Info, error) {
	data, err := readOrMmap(path)
	if err != nil {
		return nil, nil, err
	}
	return decodeGraph(data, true)
}

// ReadInfo parses only the container and meta section of path — the
// cheap path for `graphstore info`.
func ReadInfo(path string) (*Info, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	_, _, info, err := decode(data)
	return info, err
}

// readOrMmap maps the file read-only when the platform supports it and
// falls back to ReadFile. The mapping is intentionally never unmapped:
// load-bearing graphs alias it for the remaining process lifetime.
func readOrMmap(path string) ([]byte, error) {
	if data, err := mmapFile(path); err == nil {
		return data, nil
	}
	return os.ReadFile(path)
}
