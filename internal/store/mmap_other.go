//go:build !linux

package store

import "errors"

// mmapFile is unavailable off Linux; readOrMmap falls back to a plain
// file read.
func mmapFile(string) ([]byte, error) {
	return nil, errors.New("store: mmap unsupported on this platform")
}
