//go:build linux

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps path read-only. The mapping is returned without a
// corresponding unmap: store loads are process-lifetime resident (see
// readOrMmap). PROT_READ means a bug that tried to mutate an adopted
// CSR arena faults instead of corrupting the file image.
func mmapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("store: empty file %s", path)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("store: %s is too large to map", path)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
}
