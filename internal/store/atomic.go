package store

import (
	"os"
	"path/filepath"
)

// Test seams: the durability test stubs these to prove the sync calls
// happen (and in the right order) without needing to cut power.
var (
	syncFile = (*os.File).Sync
	syncDir  = (*os.File).Sync
)

// WriteFileAtomic writes data to path durably and atomically: the bytes
// go to a temp file in the same directory, the temp file is fsynced,
// then renamed over path, then the parent directory is fsynced. The
// rename makes the swap atomic (a crash never destroys the previous
// good file), and the two fsyncs make it durable — without them a
// power loss shortly after the rename can surface an empty or torn
// file even though the rename "succeeded", because neither the data
// blocks nor the directory entry were on disk yet.
//
// Every file the repository writes through a temp-and-rename dance
// (graph stores, `graphstore ingest` output, colorcli checkpoints)
// goes through this one helper.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".atomic-*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := syncFile(tmp); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Persist the directory entry: the rename is only durable once the
	// directory's own data is synced.
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return syncDir(d)
}
