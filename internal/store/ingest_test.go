package store

import (
	"strconv"
	"strings"
	"testing"

	"smallbandwidth/internal/graph"
)

// TestIngestGrammar exercises the accepted edge-list grammar: comments,
// blank lines, CSV and whitespace separators, extra columns, CRLF,
// sparse IDs relabeled densely, duplicates and self-loops dropped.
func TestIngestGrammar(t *testing.T) {
	input := strings.Join([]string{
		"# a comment",
		"% another, matrix-market style",
		"// and a third",
		"",
		"100 200",
		"200,300",
		"300\t100\t0.75", // weight column ignored
		"100 200",        // duplicate
		"200 100",        // duplicate, reversed orientation
		"42 42",          // self-loop
		"300;400\r",      // semicolon + CRLF
	}, "\n")
	g, stats, err := Ingest(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	// First-appearance relabeling: 100→0, 200→1, 300→2, 42→3, 400→4.
	want, err := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(g) {
		t.Fatal("ingested graph differs from the expected relabeling")
	}
	if stats.Edges != 4 || stats.Duplicates != 2 || stats.SelfLoops != 1 || stats.Nodes != 5 || stats.Comments != 4 {
		t.Fatalf("stats %+v", stats)
	}
}

// TestIngestErrorsCarryLineNumbers: malformed input fails with the
// 1-based line of the offense, never a panic.
func TestIngestErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name, input, wantLine string
	}{
		{"lone-endpoint", "0 1\n7\n", "line 2"},
		{"non-numeric", "0 1\nfoo bar\n", "line 2"},
		{"negative", "0 1\n-3 4\n", "line 2"},
		{"float", "1.5 2\n", "line 1"},
		{"overflow-id", "0 99999999999999999999\n", "line 1"},
	}
	for _, c := range cases {
		_, _, err := Ingest(strings.NewReader(c.input))
		if err == nil {
			t.Fatalf("%s: ingest accepted malformed input", c.name)
		}
		if !strings.Contains(err.Error(), c.wantLine) {
			t.Fatalf("%s: error %q does not carry %q", c.name, err, c.wantLine)
		}
	}
}

// TestIngestDeterministic: ingesting the same stream twice produces
// byte-identical graphs (first-appearance relabeling is a pure function
// of the input).
func TestIngestDeterministic(t *testing.T) {
	input := "5 9\n9 1\n1 5\n3 5\n"
	a, _, err := Ingest(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Ingest(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("two ingests of one stream differ")
	}
}

// TestIngestRoundTripThroughStore: a generator graph rendered as an
// edge list, ingested, and pushed through store encode → load must
// survive bit-identically (the ingested labeling is the first-
// appearance one, so the comparison is against the ingested graph).
func TestIngestRoundTripThroughStore(t *testing.T) {
	g := graph.GNP(60, 0.12, 5)
	var sb strings.Builder
	g.Edges(func(u, v int) {
		sb.WriteString(strconv.Itoa(u))
		sb.WriteByte(' ')
		sb.WriteString(strconv.Itoa(v))
		sb.WriteByte('\n')
	})
	ing, stats, err := Ingest(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Edges != g.M() {
		t.Fatalf("ingest kept %d edges, generator has %d", stats.Edges, g.M())
	}
	loaded, _, err := DecodeGraph(EncodeGraph(ing))
	if err != nil {
		t.Fatal(err)
	}
	if !ing.Equal(loaded) {
		t.Fatal("ingested graph does not round-trip through the store")
	}
}
