package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteFileAtomicDurable is the regression test for the fsync-less
// temp-and-rename helper colorcli used to carry: WriteFileAtomic must
// sync the temp file BEFORE the rename and the parent directory AFTER
// it — without both, a power loss after a "successful" checkpoint write
// can surface an empty or torn file. The test stubs the sync seams to
// record the order; the pre-fix code made neither call.
func TestWriteFileAtomicDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")

	var calls []string
	origFile, origDir := syncFile, syncDir
	defer func() { syncFile, syncDir = origFile, origDir }()
	syncFile = func(f *os.File) error {
		if !strings.HasPrefix(filepath.Base(f.Name()), ".atomic-") {
			t.Errorf("file sync on %q, want the temp file", f.Name())
		}
		if _, err := os.Lstat(path); err == nil {
			t.Error("target already renamed into place before the temp-file sync")
		}
		calls = append(calls, "file")
		return origFile(f)
	}
	syncDir = func(f *os.File) error {
		if f.Name() != dir {
			t.Errorf("dir sync on %q, want %q", f.Name(), dir)
		}
		if _, err := os.Lstat(path); err != nil {
			t.Error("dir synced before the rename landed")
		}
		calls = append(calls, "dir")
		return origDir(f)
	}

	if err := WriteFileAtomic(path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != "file" || calls[1] != "dir" {
		t.Fatalf("sync calls %v, want [file dir]", calls)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("reopened file holds %q (%v)", got, err)
	}
}

// TestWriteFileAtomicPreservesOldFile: a failed write (the temp-file
// sync here) leaves the previous good file untouched and no temp
// droppings behind.
func TestWriteFileAtomicPreservesOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.snap")
	if err := WriteFileAtomic(path, []byte("good")); err != nil {
		t.Fatal(err)
	}

	origFile := syncFile
	syncFile = func(*os.File) error { return errors.New("disk full") }
	defer func() { syncFile = origFile }()
	if err := WriteFileAtomic(path, []byte("torn")); err == nil {
		t.Fatal("write reported success although the data sync failed")
	}

	got, err := os.ReadFile(path)
	if err != nil || string(got) != "good" {
		t.Fatalf("previous file holds %q (%v), want %q", got, err, "good")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d directory entries after a failed write, want only the old file", len(entries))
	}
}

// TestWriteFileAtomicOverwrite: the rename path replaces an existing
// file atomically and the reopened content is the new payload.
func TestWriteFileAtomicOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	for _, payload := range []string{"first", "second longer payload"} {
		if err := WriteFileAtomic(path, []byte(payload)); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != payload {
			t.Fatalf("reopened %q (%v), want %q", got, err, payload)
		}
	}
}
