package store

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzIngest pins the untrusted-input contract of the whole store
// pipeline: arbitrary edge-list text never panics Ingest, and whenever
// it parses, the resulting graph survives store encode → validated load
// bit-identically (graph.Equal) — the satellite-4 round-trip property.
func FuzzIngest(f *testing.F) {
	f.Add("")
	f.Add("# comment only\n\n")
	f.Add("0 1\n1 2\n2 0\n")
	f.Add("100 200\n200,300\n300\t100\t0.75\n")
	f.Add("a b c\n")
	f.Add("7\n")
	f.Add("42 42\n0 1\n0 1\n1 0\n")
	f.Add("-1 5\n")
	f.Add("18446744073709551615 0\n")
	f.Add("99999999999999999999 1\n")
	f.Add("0 1;2 3\r\n% x\n//\n#\n")
	f.Add(strings.Repeat("1 2 ", 100))
	f.Fuzz(func(t *testing.T, text string) {
		g, stats, err := Ingest(strings.NewReader(text))
		if err != nil {
			if g != nil || stats != nil {
				t.Fatal("ingest returned results alongside its error")
			}
			return
		}
		if stats.Edges != g.M() {
			t.Fatalf("stats claim %d edges, graph has %d", stats.Edges, g.M())
		}
		if stats.Nodes != g.N() {
			t.Fatalf("stats claim %d nodes, graph has %d", stats.Nodes, g.N())
		}
		raw := EncodeGraph(g)
		dec, info, err := DecodeGraph(raw)
		if err != nil {
			t.Fatalf("a just-encoded store failed validated decode: %v", err)
		}
		if !g.Equal(dec) {
			t.Fatal("store round trip changed the ingested graph")
		}
		if info.Bytes != len(raw) {
			t.Fatalf("info reports %d bytes for a %d-byte container", info.Bytes, len(raw))
		}
	})
}

// FuzzStoreDecode: arbitrary bytes through the store decoder never
// panic — they decode to a valid graph or fail with an error.
func FuzzStoreDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SBWSNAP1"))
	g, _, err := Ingest(strings.NewReader("0 1\n1 2\n"))
	if err != nil {
		f.Fatal(err)
	}
	raw := EncodeGraph(g)
	f.Add(raw)
	for _, i := range []int{8, 16, 20, len(raw) / 2, len(raw) - 2} {
		mut := bytes.Clone(raw)
		mut[i] ^= 0xff
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, _, err := DecodeGraph(data)
		if err == nil && dec == nil {
			t.Fatal("nil graph without an error")
		}
	})
}
