package prng

import (
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestKnownValues(t *testing.T) {
	// splitmix64 reference values (seed 0), from the public-domain
	// reference implementation by Sebastiano Vigna.
	s := New(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(99)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(4)
	a := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, v := range a {
		sum += v
	}
	s.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
	got := 0
	for _, v := range a {
		got += v
	}
	if got != sum {
		t.Errorf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestUniformityRough(t *testing.T) {
	// Coarse sanity check, not a statistical suite: each of 8 buckets of
	// Intn(8) should get 12.5% ± 2% over 80k draws.
	s := New(2024)
	const draws = 80000
	var buckets [8]int
	for i := 0; i < draws; i++ {
		buckets[s.Intn(8)]++
	}
	for b, c := range buckets {
		frac := float64(c) / draws
		if frac < 0.105 || frac > 0.145 {
			t.Errorf("bucket %d frequency %v suspicious", b, frac)
		}
	}
}
