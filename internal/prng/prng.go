// Package prng provides a small deterministic pseudo-random number
// generator used for workload generation and randomized baselines.
//
// We deliberately do not use math/rand: its stream is not guaranteed to be
// stable across Go releases, and reproducible experiment tables require
// byte-identical workloads for a given seed. The generator is splitmix64
// (Steele, Lea, Flood 2014), which passes BigCrush and has a trivially
// portable implementation.
package prng

// Source is a deterministic 64-bit PRNG. The zero value is a valid
// generator seeded with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with the given value.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits (splitmix64).
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// simple rejection sampling keeps the stream easy to reason about.
	bound := uint64(n)
	threshold := -bound % bound // 2^64 mod n
	for {
		v := s.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a pseudo-random boolean.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
