package linial

import (
	"testing"

	"smallbandwidth/internal/graph"
)

func TestPrimes(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 11, 13, 97, 101}
	for _, p := range primes {
		if !isPrime(p) {
			t.Errorf("%d reported composite", p)
		}
	}
	for _, c := range []uint64{0, 1, 4, 9, 91, 100} {
		if isPrime(c) {
			t.Errorf("%d reported prime", c)
		}
	}
	if nextPrime(14) != 17 || nextPrime(17) != 17 {
		t.Error("nextPrime wrong")
	}
}

func TestDigitsAndEval(t *testing.T) {
	// x = 23, q = 5, t = 2: digits 3,4,0 → f(z) = 3 + 4z.
	d := Digits(23, 5, 2)
	want := []uint64{3, 4, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Digits(23,5,2) = %v", d)
		}
	}
	if EvalPoly(d, 0, 5) != 3 {
		t.Error("f(0) != 3")
	}
	if EvalPoly(d, 2, 5) != (3+8)%5 {
		t.Error("f(2) wrong")
	}
}

func TestScheduleShrinks(t *testing.T) {
	for _, c := range []struct {
		k      uint64
		maxDeg int
	}{
		{1 << 20, 4}, {1 << 30, 8}, {1000, 3}, {100000, 16}, {1 << 16, 2},
	} {
		steps := Schedule(c.k, c.maxDeg)
		k := c.k
		for i, st := range steps {
			if st.NewK >= k {
				t.Errorf("k=%d Δ=%d: step %d does not shrink (%d → %d)", c.k, c.maxDeg, i, k, st.NewK)
			}
			if st.Q <= uint64(c.maxDeg)*st.T {
				t.Errorf("step %d violates q > Δ·t: q=%d t=%d", i, st.Q, st.T)
			}
			k = st.NewK
		}
		if len(steps) > 10 {
			t.Errorf("k=%d Δ=%d: schedule too long (%d steps), log* should be tiny", c.k, c.maxDeg, len(steps))
		}
		// Final color space should be O(Δ² polylog Δ): generous cap 64·Δ²+64.
		final := FinalK(c.k, c.maxDeg)
		cap := uint64(64*c.maxDeg*c.maxDeg + 64)
		if final > cap {
			t.Errorf("k=%d Δ=%d: final K = %d exceeds %d", c.k, c.maxDeg, final, cap)
		}
	}
}

func TestScheduleEmptyWhenAlreadySmall(t *testing.T) {
	if steps := Schedule(2, 5); len(steps) != 0 {
		t.Errorf("K=2 should have empty schedule, got %d steps", len(steps))
	}
}

func TestNextColorProperOnGraphs(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Cycle(31), graph.Path(40), graph.Grid2D(6, 7),
		graph.MustRandomRegular(50, 4, 2), graph.Star(20),
		graph.Complete(8), graph.GNP(40, 0.15, 9),
	}
	for gi, g := range graphs {
		colors, k, err := ColorGraph(adjOf(g), g.MaxDegree())
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		for v := 0; v < g.N(); v++ {
			if colors[v] >= k {
				t.Fatalf("graph %d: color %d outside [0,%d)", gi, colors[v], k)
			}
		}
		u32 := make([]uint32, len(colors))
		for i, c := range colors {
			u32[i] = uint32(c)
		}
		if !g.IsProperColoring(u32) {
			t.Fatalf("graph %d: final Linial coloring improper", gi)
		}
		// K must be O(Δ²)-ish.
		d := g.MaxDegree()
		if k > uint64(64*d*d+64) {
			t.Errorf("graph %d: K = %d too large for Δ = %d", gi, k, d)
		}
	}
}

func TestNextColorDetectsImproperInput(t *testing.T) {
	st := Step{Q: 5, T: 1, NewK: 25}
	if _, err := NextColor(7, []uint64{7}, st); err == nil {
		t.Error("monochromatic neighbor not detected")
	}
}

func TestNextColorStepProper(t *testing.T) {
	// Exhaustive small case: all pairs of distinct colors remain distinct
	// after a joint step whenever they are "adjacent".
	st := Step{Q: 7, T: 1, NewK: 49}
	for a := uint64(0); a < 40; a++ {
		for b := uint64(0); b < 40; b++ {
			if a == b {
				continue
			}
			ca, err := NextColor(a, []uint64{b}, st)
			if err != nil {
				t.Fatalf("NextColor(%d|%d): %v", a, b, err)
			}
			cb, err := NextColor(b, []uint64{a}, st)
			if err != nil {
				t.Fatalf("NextColor(%d|%d): %v", b, a, err)
			}
			if ca == cb {
				t.Fatalf("colors %d,%d map to same new color %d", a, b, ca)
			}
			if ca >= st.NewK || cb >= st.NewK {
				t.Fatalf("new color out of range")
			}
		}
	}
}

func adjOf(g *graph.Graph) [][]int32 {
	adj := make([][]int32, g.N())
	for v := 0; v < g.N(); v++ {
		adj[v] = g.Neighbors(v)
	}
	return adj
}
