// Package linial implements Linial's deterministic color-reduction scheme
// [Lin92], the O(log* n)-round algorithm that turns any proper K-coloring
// into an O(Δ²·polylogΔ)-coloring. The paper uses it twice: to produce
// the input K-coloring of Lemma 2.1 (symmetry breaking for the shared
// hash function), and inside the MIS step on the constant-degree
// candidate-conflict graph.
//
// One reduction step: pick a prime q and degree t with q^(t+1) ≥ K and
// q > Δ·t. A color x ∈ [K] is encoded as the polynomial f_x over GF(q)
// whose coefficients are the base-q digits of x. Distinct colors give
// distinct polynomials of degree ≤ t, which agree on at most t points, so
// a node with ≤ Δ differently-colored neighbors can pick an evaluation
// point e with f_u(e) ≠ f_w(e) for every neighbor w; the new color
// (e, f_u(e)) ∈ [q²] is proper. Because (q, t) depend only on (K, Δ),
// every node derives the same schedule of steps locally; one step costs
// one CONGEST round (exchange current colors).
package linial

import "fmt"

// Step describes one Linial reduction round.
type Step struct {
	Q    uint64 // prime field size
	T    uint64 // polynomial degree bound
	NewK uint64 // resulting color-space size, Q²
}

// Schedule returns the deterministic sequence of reduction steps that a
// K-coloring of a graph with maximum degree maxDeg goes through until no
// step shrinks the color space further. The schedule has length
// O(log* K) and ends with a color space of size O(maxDeg²·polylog maxDeg).
func Schedule(k uint64, maxDeg int) []Step {
	var steps []Step
	for i := 0; i < 128; i++ { // hard cap; log* K is tiny
		st, ok := stepFor(k, maxDeg)
		if !ok || st.NewK >= k {
			return steps
		}
		steps = append(steps, st)
		k = st.NewK
	}
	panic("linial: schedule did not converge")
}

// FinalK returns the color-space size after the full schedule.
func FinalK(k uint64, maxDeg int) uint64 {
	for _, st := range Schedule(k, maxDeg) {
		k = st.NewK
	}
	return k
}

// stepFor picks the smallest prime q (with its degree t) usable for one
// reduction from k colors at maximum degree maxDeg.
func stepFor(k uint64, maxDeg int) (Step, bool) {
	if k <= 2 {
		return Step{}, false
	}
	for q := uint64(2); q < 1<<32; q = nextPrime(q + 1) {
		if !isPrime(q) {
			continue
		}
		t := degreeFor(k, q)
		if q > uint64(maxDeg)*t {
			return Step{Q: q, T: t, NewK: q * q}, true
		}
	}
	return Step{}, false
}

// degreeFor returns the smallest t ≥ 1 with q^(t+1) ≥ k.
func degreeFor(k, q uint64) uint64 {
	t := uint64(1)
	pow := q * q // q^(t+1)
	for pow < k {
		t++
		// Overflow-safe: values of interest stay far below 2^63.
		if pow > (uint64(1)<<62)/q {
			return t
		}
		pow *= q
	}
	return t
}

// Digits returns the t+1 base-q digits of x (the coefficients of f_x).
func Digits(x, q, t uint64) []uint64 {
	d := make([]uint64, t+1)
	for i := range d {
		d[i] = x % q
		x /= q
	}
	return d
}

// EvalPoly evaluates the polynomial with the given coefficients at point
// e over GF(q) (Horner).
func EvalPoly(coeffs []uint64, e, q uint64) uint64 {
	var acc uint64
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = (acc*e + coeffs[i]) % q
	}
	return acc
}

// NextColor executes one reduction step for a node: given its own color,
// the colors of its (differently-colored) neighbors, and the step
// parameters, it returns the node's new color in [q²].
func NextColor(own uint64, neighbors []uint64, st Step) (uint64, error) {
	q, t := st.Q, st.T
	fu := Digits(own, q, t)
	for e := uint64(0); e < q; e++ {
		mine := EvalPoly(fu, e, q)
		ok := true
		for _, nb := range neighbors {
			if nb == own {
				// A monochromatic neighbor means the input coloring was
				// improper; no evaluation point can help.
				return 0, fmt.Errorf("linial: neighbor shares color %d", own)
			}
			if EvalPoly(Digits(nb, q, t), e, q) == mine {
				ok = false
				break
			}
		}
		if ok {
			return e*q + mine, nil
		}
	}
	return 0, fmt.Errorf("linial: no evaluation point for color %d with %d neighbors (q=%d t=%d)",
		own, len(neighbors), q, t)
}

// ColorGraph runs the full schedule centrally on a graph given as
// adjacency lists, starting from the trivial coloring by node ID. It
// returns the final coloring and its color-space size. This is the
// reference implementation used by tests and by the models that allow
// free local computation on gathered subgraphs.
func ColorGraph(adj [][]int32, maxDeg int) ([]uint64, uint64, error) {
	n := len(adj)
	colors := make([]uint64, n)
	for v := range colors {
		colors[v] = uint64(v)
	}
	k := uint64(n)
	if k < 2 {
		k = 2
	}
	for _, st := range Schedule(k, maxDeg) {
		next := make([]uint64, n)
		for v := range adj {
			nbr := make([]uint64, 0, len(adj[v]))
			for _, w := range adj[v] {
				nbr = append(nbr, colors[w])
			}
			c, err := NextColor(colors[v], nbr, st)
			if err != nil {
				return nil, 0, err
			}
			next[v] = c
		}
		colors = next
		k = st.NewK
	}
	return colors, k, nil
}

func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for d := uint64(2); d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

func nextPrime(n uint64) uint64 {
	for !isPrime(n) {
		n++
	}
	return n
}
