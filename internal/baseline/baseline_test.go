package baseline

import (
	"testing"

	"smallbandwidth/internal/graph"
)

func TestRandomizedCONGESTColorsEverything(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Cycle(16), graph.Grid2D(4, 5), graph.Star(12),
		graph.MustRandomRegular(40, 4, 2), graph.Complete(8), graph.Path(1),
	}
	for gi, g := range graphs {
		inst := graph.DeltaPlusOneInstance(g)
		for seed := uint64(0); seed < 3; seed++ {
			res, err := RandomizedCONGEST(inst, seed)
			if err != nil {
				t.Fatalf("graph %d seed %d: %v", gi, seed, err)
			}
			if err := inst.VerifyColoring(res.Colors); err != nil {
				t.Fatalf("graph %d seed %d: %v", gi, seed, err)
			}
		}
	}
}

func TestRandomizedReproducible(t *testing.T) {
	g := graph.GNP(30, 0.2, 5)
	inst := graph.DeltaPlusOneInstance(g)
	a, err := RandomizedCONGEST(inst, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomizedCONGEST(inst, 11)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatal("randomized baseline not reproducible for fixed seed")
		}
	}
}

func TestRandomizedFastOnLists(t *testing.T) {
	g := graph.MustRandomRegular(48, 4, 9)
	inst, err := graph.RandomListInstance(g, 32, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RandomizedCONGEST(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	// O(log n) w.h.p.; generous cap.
	if res.Rounds > 200 {
		t.Errorf("randomized used %d rounds, suspiciously many", res.Rounds)
	}
}

func TestRandomSeedPrefixConverges(t *testing.T) {
	g := graph.Grid2D(4, 4)
	inst := graph.DeltaPlusOneInstance(g)
	iters, err := RandomSeedPrefix(inst, 5)
	if err != nil {
		t.Fatal(err)
	}
	if iters < 1 || iters > 100 {
		t.Errorf("random-seed process took %d iterations", iters)
	}
}
