// Package baseline provides the randomized comparison points for the
// paper's deterministic algorithms: Johansson's simple randomized
// (degree+1)-list coloring [Joh99] running on the CONGEST simulator
// (each uncolored node tries a uniformly random list color, keeps it if
// no neighbor picked the same, O(log n) rounds w.h.p.), and a
// random-seed variant of the paper's prefix process that skips the
// derandomization — together they isolate the price of determinism that
// experiment E10 measures.
package baseline

import (
	"fmt"
	"sync"

	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/core"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/linial"
	"smallbandwidth/internal/prng"
)

// RandResult reports a randomized run.
type RandResult struct {
	Colors []uint32
	Stats  congest.Stats
	Rounds int // coloring rounds (= Stats.Rounds)
}

const (
	tagTry   uint64 = congest.UserTagBase + 100 // [tag, color]
	tagFinal uint64 = congest.UserTagBase + 101 // [tag, color]
)

// RandomizedCONGEST runs Johansson's algorithm on the CONGEST simulator.
// Each round, every uncolored node draws a uniform color from its
// current list and sends it to its uncolored neighbors; nodes without a
// conflict keep the color and announce it. Terminates when all nodes are
// colored (the per-node seed derives deterministically from the run
// seed, so runs are reproducible).
func RandomizedCONGEST(inst *graph.Instance, seed uint64) (*RandResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	n := inst.G.N()
	colors := make([]uint32, n)
	var mu sync.Mutex
	maxRounds := 64 * (bitsLen(n) + 4)

	stats, err := congest.Run(inst.G, congest.Config{}, func(ctx *congest.Ctx) {
		src := prng.New(seed ^ (uint64(ctx.ID())+1)*0x9e3779b97f4a7c15)
		list := append([]uint32(nil), inst.Lists[ctx.ID()]...)
		// Alive neighbors tracked by neighbor index (no per-node map):
		// sends iterate the sorted adjacency, so traffic is deterministic.
		aliveNbr := make([]bool, ctx.Degree())
		for i := range aliveNbr {
			aliveNbr[i] = true
		}
		colored := false
		var myColor uint32
		for round := 0; round < maxRounds; round++ {
			var try uint32
			if !colored {
				try = list[src.Intn(len(list))]
				for i, w := range ctx.Neighbors() {
					if aliveNbr[i] {
						ctx.Send(int(w), congest.Message{tagTry, uint64(try)})
					}
				}
			}
			conflict := false
			for _, in := range ctx.Next() {
				switch in.Payload[0] {
				case tagTry:
					if !colored && uint32(in.Payload[1]) == try {
						conflict = true
					}
				case tagFinal:
					aliveNbr[ctx.NeighborIndex(in.From)] = false
					list = removeColor(list, uint32(in.Payload[1]))
					// A neighbor finalized this color one round ago; our
					// tentative pick loses (it no longer defends its color
					// with tagTry messages).
					if !colored && uint32(in.Payload[1]) == try {
						conflict = true
					}
				}
			}
			if !colored && !conflict {
				colored = true
				myColor = try
				for i, w := range ctx.Neighbors() {
					if aliveNbr[i] {
						ctx.Send(int(w), congest.Message{tagFinal, uint64(try)})
					}
				}
				// One more round so the announcement drains, then leave.
				ctx.Next()
				break
			}
		}
		if !colored {
			panic(fmt.Sprintf("baseline: node %d uncolored after %d rounds (astronomically unlikely)",
				ctx.ID(), maxRounds))
		}
		mu.Lock()
		colors[ctx.ID()] = myColor
		mu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	if err := inst.VerifyColoring(colors); err != nil {
		return nil, fmt.Errorf("baseline: randomized coloring invalid: %w", err)
	}
	return &RandResult{Colors: colors, Stats: *stats, Rounds: stats.Rounds}, nil
}

// RandomSeedPrefix runs the paper's bit-by-bit prefix process with a
// *random* shared seed instead of the derandomized one, iterating
// partial-coloring rounds centrally: it isolates how much progress the
// randomized zero-round process makes compared with the guaranteed 1/8
// fraction of the derandomized version. Returns the number of
// iterations needed to color everything.
func RandomSeedPrefix(inst *graph.Instance, seed uint64) (int, error) {
	if err := inst.Validate(); err != nil {
		return 0, err
	}
	p, err := core.ComputeParams(inst, core.Options{})
	if err != nil {
		return 0, err
	}
	psi, _, err := linial.ColorGraph(adjOf(inst.G), inst.G.MaxDegree())
	if err != nil {
		return 0, err
	}
	src := prng.New(seed)
	n := inst.G.N()
	colored := make([]bool, n)
	colors := make([]uint32, n)
	lists := make([][]uint32, n)
	for v := range lists {
		lists[v] = append([]uint32(nil), inst.Lists[v]...)
	}
	for iter := 1; iter <= 64*(bitsLen(n)+4); iter++ {
		// Residual instance.
		var residual []int
		for v := 0; v < n; v++ {
			if !colored[v] {
				residual = append(residual, v)
			}
		}
		if len(residual) == 0 {
			return iter - 1, nil
		}
		sub, orig := inst.G.InducedSubgraph(residual)
		subLists := make([][]uint32, sub.N())
		subPsi := make([]uint64, sub.N())
		for i, v := range orig {
			subLists[i] = lists[v]
			subPsi[i] = psi[v]
		}
		subInst := &graph.Instance{G: sub, C: inst.C, Lists: subLists}
		st, err := core.NewPrefixState(subInst)
		if err != nil {
			return 0, err
		}
		for !st.Done() {
			if err := st.StepSeeded(src, subPsi, p.Fam, p.B); err != nil {
				return 0, err
			}
		}
		cand, err := st.CandidateColors()
		if err != nil {
			return 0, err
		}
		// Keep nodes with no conflict among candidates (conservative MIS).
		for i, v := range orig {
			ok := true
			for _, w := range sub.Neighbors(i) {
				if cand[w] == cand[i] {
					ok = false
					break
				}
			}
			if ok {
				colored[v] = true
				colors[v] = cand[i]
			}
		}
		for _, v := range orig {
			if !colored[v] {
				for _, w := range inst.G.Neighbors(v) {
					if colored[w] {
						lists[v] = removeColor(lists[v], colors[w])
					}
				}
			}
		}
		// Rebuild lists minimality: lists[v] already pruned incrementally.
	}
	return 0, fmt.Errorf("baseline: random-seed process did not converge")
}

func removeColor(list []uint32, c uint32) []uint32 {
	for i, x := range list {
		if x == c {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

func adjOf(g *graph.Graph) [][]int32 {
	adj := make([][]int32, g.N())
	for v := 0; v < g.N(); v++ {
		adj[v] = g.Neighbors(v)
	}
	return adj
}

func bitsLen(n int) int {
	l := 0
	for n > 0 {
		n >>= 1
		l++
	}
	return l
}
