package congest

import (
	"math"
	"sync"
	"testing"

	"smallbandwidth/internal/graph"
)

// collectTrees builds a BFS tree on g and returns each node's local view.
func collectTrees(t *testing.T, g *graph.Graph, root int) []*Tree {
	t.Helper()
	trees := make([]*Tree, g.N())
	var mu sync.Mutex
	_, err := Run(g, Config{}, func(ctx *Ctx) {
		tr := BuildBFSTree(ctx, root)
		mu.Lock()
		trees[ctx.ID()] = tr
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return trees
}

func TestBFSTreeStructure(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path":    graph.Path(10),
		"cycle":   graph.Cycle(9),
		"grid":    graph.Grid2D(4, 6),
		"star":    graph.Star(8),
		"regular": graph.MustRandomRegular(30, 4, 5),
		"single":  graph.Path(1),
		"barbell": graph.Barbell(4, 6),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			root := 0
			trees := collectTrees(t, g, root)
			dist, _ := g.BFS(root)
			maxDepth := 0
			for v, tr := range trees {
				if tr.Depth != dist[v] {
					t.Errorf("node %d depth %d, BFS dist %d", v, tr.Depth, dist[v])
				}
				if tr.Depth > maxDepth {
					maxDepth = tr.Depth
				}
				if v == root {
					if tr.Parent != -1 {
						t.Errorf("root has parent %d", tr.Parent)
					}
				} else {
					if tr.Parent < 0 || !g.HasEdge(v, tr.Parent) {
						t.Errorf("node %d parent %d not a neighbor", v, tr.Parent)
					}
					if trees[tr.Parent].Depth != tr.Depth-1 {
						t.Errorf("node %d parent depth mismatch", v)
					}
				}
				for _, ch := range tr.Children {
					if trees[ch].Parent != v {
						t.Errorf("child %d of %d does not point back", ch, v)
					}
				}
			}
			for _, tr := range trees {
				if tr.Height != maxDepth {
					t.Errorf("tree height %d, want %d", tr.Height, maxDepth)
				}
				if tr.Size != g.N() {
					t.Errorf("tree size %d, want %d", tr.Size, g.N())
				}
			}
			// Every non-root node is someone's child exactly once.
			childCount := make([]int, g.N())
			for _, tr := range trees {
				for _, ch := range tr.Children {
					childCount[ch]++
				}
			}
			for v, c := range childCount {
				want := 1
				if v == root {
					want = 0
				}
				if c != want {
					t.Errorf("node %d is child of %d parents", v, c)
				}
			}
		})
	}
}

func TestBFSTreeRoundsProportionalToDiameter(t *testing.T) {
	small := graph.Cycle(8)
	big := graph.Cycle(64)
	stSmall, err := Run(small, Config{}, func(ctx *Ctx) { BuildBFSTree(ctx, 0) })
	if err != nil {
		t.Fatal(err)
	}
	stBig, err := Run(big, Config{}, func(ctx *Ctx) { BuildBFSTree(ctx, 0) })
	if err != nil {
		t.Fatal(err)
	}
	if stBig.Rounds <= stSmall.Rounds {
		t.Errorf("tree build rounds should grow with D: %d vs %d", stSmall.Rounds, stBig.Rounds)
	}
	if stBig.Rounds > 8*big.Diameter()+20 {
		t.Errorf("tree build took %d rounds on diameter %d", stBig.Rounds, big.Diameter())
	}
}

func TestConvergeSumAllNodes(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(12), graph.Grid2D(4, 5), graph.Star(9), graph.Path(1),
	} {
		n := g.N()
		results := make([][]float64, n)
		var mu sync.Mutex
		_, err := Run(g, Config{}, func(ctx *Ctx) {
			tr := BuildBFSTree(ctx, 0)
			vec := []float64{float64(ctx.ID()), 1.0}
			sum := ConvergeSum(ctx, tr, 1, vec)
			mu.Lock()
			results[ctx.ID()] = sum
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		wantSum := float64(n*(n-1)) / 2
		for v, res := range results {
			if res == nil {
				t.Fatalf("node %d got no result", v)
			}
			if math.Abs(res[0]-wantSum) > 1e-9 || math.Abs(res[1]-float64(n)) > 1e-9 {
				t.Errorf("node %d sum = %v, want [%v %v]", v, res, wantSum, float64(n))
			}
		}
	}
}

// TestConvergeSumLockstepMatchesGeneric: the skip-scheduled aggregation
// must return the same sums at every node and consume identical Stats as
// the message-driven loop on the same tree.
func TestConvergeSumLockstepMatchesGeneric(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(12), graph.Grid2D(4, 5), graph.Star(9), graph.BinaryTree(15), graph.Path(1),
	} {
		n := g.N()
		run := func(lockstep bool) ([][]float64, Stats) {
			t.Helper()
			results := make([][]float64, n)
			var mu sync.Mutex
			st, err := Run(g, Config{}, func(ctx *Ctx) {
				tr := BuildBFSTree(ctx, 0)
				vec := []float64{float64(ctx.ID()), 1.0}
				var sum []float64
				if lockstep {
					sum = ConvergeSumLockstep(ctx, tr, 1, vec)
				} else {
					sum = ConvergeSum(ctx, tr, 1, vec)
				}
				// Resynchronize so both variants end in the same round.
				SpinUntil(ctx, 4*tr.Height+40)
				mu.Lock()
				results[ctx.ID()] = sum
				mu.Unlock()
			})
			if err != nil {
				t.Fatal(err)
			}
			return results, *st
		}
		generic, gStats := run(false)
		lockstep, lStats := run(true)
		if gStats != lStats {
			t.Errorf("n=%d: lockstep stats %+v differ from generic %+v", n, lStats, gStats)
		}
		for v := range generic {
			for i := range generic[v] {
				if generic[v][i] != lockstep[v][i] {
					t.Fatalf("n=%d node %d component %d: %v vs %v", n, v, i, lockstep[v][i], generic[v][i])
				}
			}
		}
	}
}

func TestConvergeSumLongVectorChunked(t *testing.T) {
	// Vector longer than one message forces chunking + pipelining.
	g := graph.Path(6)
	const l = 9
	var mu sync.Mutex
	results := make([][]float64, g.N())
	st, err := Run(g, Config{MaxWords: 3}, func(ctx *Ctx) { // 1 value per chunk
		tr := BuildBFSTree(ctx, 0)
		vec := make([]float64, l)
		for i := range vec {
			vec[i] = float64(ctx.ID()*100 + i)
		}
		sum := ConvergeSum(ctx, tr, 7, vec)
		mu.Lock()
		results[ctx.ID()] = sum
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < l; i++ {
		want := 0.0
		for v := 0; v < g.N(); v++ {
			want += float64(v*100 + i)
		}
		for v := range results {
			if math.Abs(results[v][i]-want) > 1e-9 {
				t.Fatalf("component %d at node %d: got %v want %v", i, v, results[v][i], want)
			}
		}
	}
	if st.MaxMessageWords > 3 {
		t.Errorf("bandwidth cap violated: %d", st.MaxMessageWords)
	}
}

func TestSequentialOps(t *testing.T) {
	// Several converge+broadcast ops back to back must not interfere.
	g := graph.Grid2D(3, 4)
	var mu sync.Mutex
	bad := false
	_, err := Run(g, Config{}, func(ctx *Ctx) {
		tr := BuildBFSTree(ctx, 0)
		for op := uint64(0); op < 5; op++ {
			sum := ConvergeSum(ctx, tr, op, []float64{1})
			if sum[0] != float64(g.N()) {
				mu.Lock()
				bad = true
				mu.Unlock()
			}
			var words []uint64
			if ctx.ID() == 0 {
				words = []uint64{op * 3, op * 5}
			}
			got := Broadcast(ctx, tr, 100+op, words, 2)
			if got[0] != op*3 || got[1] != op*5 {
				mu.Lock()
				bad = true
				mu.Unlock()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Error("sequential tree ops interfered")
	}
}

func TestBroadcastFromRoot(t *testing.T) {
	g := graph.BinaryTree(15)
	var mu sync.Mutex
	results := make([][]uint64, g.N())
	_, err := Run(g, Config{}, func(ctx *Ctx) {
		tr := BuildBFSTree(ctx, 0)
		var words []uint64
		if ctx.ID() == 0 {
			words = []uint64{11, 22, 33, 44, 55}
		}
		got := Broadcast(ctx, tr, 1, words, 5)
		mu.Lock()
		results[ctx.ID()] = got
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, res := range results {
		for i, want := range []uint64{11, 22, 33, 44, 55} {
			if res[i] != want {
				t.Fatalf("node %d word %d = %d, want %d", v, i, res[i], want)
			}
		}
	}
}
