package congest

import (
	"sync"
	"testing"

	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/prng"
)

// TestQueueStressRandomTraffic floods random queued traffic through a
// graph and verifies conservation: every queued message is delivered
// exactly once, in FIFO order per edge, never more than one per edge
// per round.
func TestQueueStressRandomTraffic(t *testing.T) {
	g := graph.Grid2D(5, 5)
	const perNode = 30
	var mu sync.Mutex
	received := map[[2]int][]uint64{} // (from,to) -> payload sequence
	st, err := Run(g, Config{}, func(ctx *Ctx) {
		src := prng.New(uint64(ctx.ID()) + 7)
		sent := 0
		for _, w := range ctx.Neighbors() {
			for i := 0; i < perNode; i++ {
				ctx.SendQueued(int(w), Message{UserTagBase, uint64(ctx.ID()), uint64(i)})
				sent++
			}
			_ = src
		}
		// Tick long enough for all queues to drain.
		for r := 0; r < perNode+5; r++ {
			for _, in := range ctx.Next() {
				mu.Lock()
				key := [2]int{in.From, ctx.ID()}
				received[key] = append(received[key], in.Payload[2])
				mu.Unlock()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			seq := received[[2]int{v, int(w)}]
			if len(seq) != perNode {
				t.Fatalf("edge %d→%d delivered %d of %d", v, w, len(seq), perNode)
			}
			for i, s := range seq {
				if s != uint64(i) {
					t.Fatalf("edge %d→%d out of order at %d: %d", v, w, i, s)
				}
			}
		}
	}
	// One message per edge-direction per round: with perNode messages per
	// direction, draining takes ≥ perNode rounds.
	if st.Rounds < perNode {
		t.Errorf("rounds %d < %d: cap not enforced", st.Rounds, perNode)
	}
}

// TestSpinUntilReestablishesLockstep: nodes return from BuildBFSTree in
// the same round on every topology.
func TestSpinUntilReestablishesLockstep(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(9), graph.Star(7), graph.Barbell(4, 9), graph.Grid2D(4, 4),
	} {
		var mu sync.Mutex
		returnRound := map[int]int{}
		_, err := Run(g, Config{}, func(ctx *Ctx) {
			BuildBFSTree(ctx, 0)
			mu.Lock()
			returnRound[ctx.ID()] = ctx.Round()
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		first := returnRound[0]
		for v, r := range returnRound {
			if r != first {
				t.Fatalf("node %d returned at round %d, node 0 at %d", v, r, first)
			}
		}
	}
}

// TestConvergeSumManyOpsStress runs many consecutive aggregations and
// checks every one of them at every node.
func TestConvergeSumManyOpsStress(t *testing.T) {
	g := graph.MustRandomRegular(24, 3, 5)
	var mu sync.Mutex
	bad := 0
	_, err := Run(g, Config{}, func(ctx *Ctx) {
		tr := BuildBFSTree(ctx, 0)
		for op := uint64(0); op < 25; op++ {
			sum := ConvergeSum(ctx, tr, op, []float64{float64(ctx.ID()) * float64(op+1)})
			want := float64(g.N()*(g.N()-1)) / 2 * float64(op+1)
			if diff := sum[0] - want; diff > 1e-9 || diff < -1e-9 {
				mu.Lock()
				bad++
				mu.Unlock()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Errorf("%d aggregation results wrong", bad)
	}
}

// TestRootChoiceIrrelevant: the tree primitives work from any root.
func TestRootChoiceIrrelevant(t *testing.T) {
	g := graph.Grid2D(4, 5)
	for _, root := range []int{0, 7, g.N() - 1} {
		var mu sync.Mutex
		ok := true
		_, err := Run(g, Config{}, func(ctx *Ctx) {
			tr := BuildBFSTree(ctx, root)
			sum := ConvergeSum(ctx, tr, 1, []float64{1})
			if sum[0] != float64(g.N()) {
				mu.Lock()
				ok = false
				mu.Unlock()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("root %d: aggregation wrong", root)
		}
	}
}
