package congest_test

import (
	"hash/fnv"
	"sync"
	"testing"

	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/prng"
)

// trafficRun executes a deterministic mixed-traffic protocol (direct
// sends, queued bursts, staggered exits) and returns the Stats together
// with one FNV transcript hash per node covering the exact inbox
// sequence (round, sender, payload) the node observed. Two engines are
// behaviorally identical iff both the Stats and every transcript match.
func trafficRun(t *testing.T, g *graph.Graph, shards int) (congest.Stats, []uint64) {
	t.Helper()
	congest.SetForceShards(shards)
	defer congest.SetForceShards(0)

	hashes := make([]uint64, g.N())
	var mu sync.Mutex
	st, err := congest.Run(g, congest.Config{}, func(ctx *congest.Ctx) {
		h := fnv.New64a()
		word := func(x uint64) {
			var b [8]byte
			for i := range b {
				b[i] = byte(x >> (8 * i))
			}
			h.Write(b[:])
		}
		src := prng.New(uint64(ctx.ID()) * 0x9e3779b97f4a7c15)
		// Nodes exit at staggered rounds; sends stop two rounds earlier
		// so every queued message drains before the last node leaves.
		last := 24 + ctx.ID()%13
		for r := 0; r < last; r++ {
			if r < last-2 {
				for _, w := range ctx.Neighbors() {
					switch src.Intn(4) {
					case 0: // silence on this edge
					case 1:
						ctx.Send(int(w), congest.Message{congest.UserTagBase, uint64(r)})
					default:
						ctx.SendQueued(int(w), congest.Message{congest.UserTagBase + 1, uint64(r), uint64(ctx.ID())})
					}
				}
			}
			for _, in := range ctx.Next() {
				word(uint64(ctx.Round()))
				word(uint64(in.From))
				for _, x := range in.Payload {
					word(x)
				}
			}
		}
		mu.Lock()
		hashes[ctx.ID()] = h.Sum64()
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return *st, hashes
}

// TestStatsDeterministicAcrossShards is the engine-rework regression:
// sharded parallel delivery must leave Stats (rounds/messages/words/
// max width) and every node's delivered-message sequence byte-identical
// to the sequential engine on a fixed seed.
func TestStatsDeterministicAcrossShards(t *testing.T) {
	for _, mk := range []struct {
		name string
		g    *graph.Graph
	}{
		{"regular3", graph.MustRandomRegular(300, 3, 9)},
		{"gnp", graph.GNP(400, 0.02, 5)},
		{"grid", graph.Grid2D(17, 19)},
	} {
		serialStats, serialHashes := trafficRun(t, mk.g, 1)
		for _, shards := range []int{2, 7, 16} {
			st, hashes := trafficRun(t, mk.g, shards)
			if st != serialStats {
				t.Errorf("%s: shards=%d stats %+v != serial %+v", mk.name, shards, st, serialStats)
			}
			for v := range hashes {
				if hashes[v] != serialHashes[v] {
					t.Fatalf("%s: shards=%d node %d transcript diverged from serial engine", mk.name, shards, v)
				}
			}
		}
	}
}

// TestParallelLargeGraph10k drives the sharded delivery path on a
// 10⁴-node graph — BFS tree build, pipelined tree aggregation, and a
// flood phase — and is run under -race in CI to guard the lock-free
// delivery and batched wake-up against data races.
func TestParallelLargeGraph10k(t *testing.T) {
	congest.SetForceShards(8)
	defer congest.SetForceShards(0)

	g := graph.GNP(10000, 8.0/10000, 3)
	st, err := congest.Run(g, congest.Config{}, func(ctx *congest.Ctx) {
		if ctx.Degree() == 0 {
			return // GNP at this density may leave isolated nodes
		}
		for r := 0; r < 10; r++ {
			for _, w := range ctx.Neighbors() {
				ctx.Send(int(w), congest.Message{congest.UserTagBase, uint64(r)})
			}
			ctx.Next()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every edge endpoint has degree ≥ 1, so all 2m directed edges carry
	// a message in each of the 10 rounds: exact conservation.
	if want := int64(10 * 2 * g.M()); st.Messages != want {
		t.Fatalf("delivered %d messages, want %d", st.Messages, want)
	}
	if st.Rounds < 10 {
		t.Fatalf("expected >= 10 rounds, got %d", st.Rounds)
	}
}

// TestParallelTreeAggregation10k runs the full tree machinery (the
// derandomization backbone) on a connected 10⁴-node graph across many
// shards and checks the aggregate at every node.
func TestParallelTreeAggregation10k(t *testing.T) {
	congest.SetForceShards(8)
	defer congest.SetForceShards(0)

	g := graph.MustRandomRegular(10000, 4, 11)
	n := g.N()
	want := float64(n*(n-1)) / 2
	var mu sync.Mutex
	bad := 0
	_, err := congest.Run(g, congest.Config{}, func(ctx *congest.Ctx) {
		tr := congest.BuildBFSTree(ctx, 0)
		sum := congest.ConvergeSum(ctx, tr, 1, []float64{float64(ctx.ID())})
		if diff := sum[0] - want; diff > 1e-6 || diff < -1e-6 {
			mu.Lock()
			bad++
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d nodes computed a wrong aggregate", bad)
	}
}

// TestAbortUnwindsParallelEngine checks that a protocol violation on the
// sharded path aborts cleanly: every goroutine unwinds, workers exit,
// and the violation is reported.
func TestAbortUnwindsParallelEngine(t *testing.T) {
	congest.SetForceShards(4)
	defer congest.SetForceShards(0)

	g := graph.Grid2D(30, 34) // 1020 nodes
	_, err := congest.Run(g, congest.Config{}, func(ctx *congest.Ctx) {
		for r := 0; ; r++ {
			if ctx.ID() == 777 && r == 5 {
				ctx.Send(ctx.ID()+2, congest.Message{congest.UserTagBase}) // non-neighbor
			}
			for _, w := range ctx.Neighbors() {
				ctx.Send(int(w), congest.Message{congest.UserTagBase, uint64(r)})
			}
			ctx.Next()
		}
	})
	if err == nil {
		t.Fatal("expected a protocol-violation error")
	}
}

// TestMaxRoundsAbortParallel checks the round-cap abort on the sharded
// path: a livelocked protocol terminates with the cap error.
func TestMaxRoundsAbortParallel(t *testing.T) {
	congest.SetForceShards(4)
	defer congest.SetForceShards(0)

	g := graph.Cycle(1024)
	_, err := congest.Run(g, congest.Config{MaxRounds: 64}, func(ctx *congest.Ctx) {
		for {
			ctx.Next()
		}
	})
	if err == nil {
		t.Fatal("expected MaxRounds abort")
	}
}
