package congest

import "smallbandwidth/internal/engine"

// SetForceShards pins the engine's delivery/wake shard count for tests
// (0 restores automatic sizing). The determinism regression runs the
// same protocol under 1 and many shards and asserts bit-identical
// results.
func SetForceShards(n int) { engine.SetForceShards(n) }
