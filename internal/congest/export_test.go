package congest

// SetForceShards pins the delivery/wake shard count for tests (0
// restores automatic sizing). The determinism regression runs the same
// protocol under 1 and many shards and asserts bit-identical results.
func SetForceShards(n int) { forceShards = n }
