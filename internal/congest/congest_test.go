package congest

import (
	"strings"
	"sync/atomic"
	"testing"

	"smallbandwidth/internal/graph"
)

func TestPingPong(t *testing.T) {
	g := graph.Path(2)
	var got atomic.Int64
	st, err := Run(g, Config{}, func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.Send(1, Message{UserTagBase, 42})
			return
		}
		for {
			in := ctx.Next()
			for _, m := range in {
				if m.From == 0 && m.Payload[1] == 42 {
					got.Store(42)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Load() != 42 {
		t.Error("message not delivered")
	}
	if st.Messages != 1 || st.Words != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestRoundsCounted(t *testing.T) {
	g := graph.Cycle(8)
	const rounds = 13
	st, err := Run(g, Config{}, func(ctx *Ctx) {
		for r := 0; r < rounds; r++ {
			ctx.Next()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != rounds {
		t.Errorf("Rounds = %d, want %d", st.Rounds, rounds)
	}
}

func TestFloodReachesAll(t *testing.T) {
	// Flood a token from node 0; every node should see it after ≈ D rounds.
	g := graph.Grid2D(5, 5)
	var seen atomic.Int64
	_, err := Run(g, Config{}, func(ctx *Ctx) {
		informed := ctx.ID() == 0
		if informed {
			seen.Add(1)
			for _, w := range ctx.Neighbors() {
				ctx.Send(int(w), Message{UserTagBase})
			}
		}
		for r := 0; r < 2*g.N(); r++ {
			for _, in := range ctx.Next() {
				_ = in
				if !informed {
					informed = true
					seen.Add(1)
					for _, w := range ctx.Neighbors() {
						if int(w) != in.From {
							ctx.Send(int(w), Message{UserTagBase})
						}
					}
				}
			}
		}
	})
	// Flooding may double-send to a neighbor in the same round in this
	// naive protocol; accept either success or the specific violation.
	if err != nil && !strings.Contains(err.Error(), "sent twice") {
		t.Fatal(err)
	}
	if err == nil && int(seen.Load()) != g.N() {
		t.Errorf("flood reached %d of %d nodes", seen.Load(), g.N())
	}
}

func TestBandwidthCapEnforced(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, Config{MaxWords: 2}, func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.Send(1, Message{1, 2, 3}) // 3 words > cap 2
		}
		ctx.Next()
	})
	if err == nil || !strings.Contains(err.Error(), "exceeds cap") {
		t.Errorf("expected bandwidth violation, got %v", err)
	}
}

func TestSendTwiceSameRoundRejected(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, Config{}, func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.Send(1, Message{1})
			ctx.Send(1, Message{2})
		}
		ctx.Next()
	})
	if err == nil || !strings.Contains(err.Error(), "sent twice") {
		t.Errorf("expected double-send violation, got %v", err)
	}
}

func TestSendToNonNeighborRejected(t *testing.T) {
	g := graph.Path(3) // 0-1-2; 0 and 2 not adjacent
	_, err := Run(g, Config{}, func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.Send(2, Message{1})
		}
		ctx.Next()
	})
	if err == nil || !strings.Contains(err.Error(), "non-neighbor") {
		t.Errorf("expected non-neighbor violation, got %v", err)
	}
}

func TestEmptyMessageRejected(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, Config{}, func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.Send(1, Message{})
		}
		ctx.Next()
	})
	if err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("expected empty-message violation, got %v", err)
	}
}

func TestNodePanicAbortsRun(t *testing.T) {
	g := graph.Cycle(5)
	_, err := Run(g, Config{}, func(ctx *Ctx) {
		if ctx.ID() == 3 {
			panic("boom")
		}
		for {
			ctx.Next()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("expected panic to surface, got %v", err)
	}
}

func TestMaxRoundsAborts(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, Config{MaxRounds: 50}, func(ctx *Ctx) {
		for {
			ctx.Next()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "MaxRounds") {
		t.Errorf("expected MaxRounds abort, got %v", err)
	}
}

func TestQueuedMessagesPipelined(t *testing.T) {
	// Node 0 queues k messages to node 1 in round 0; they must arrive one
	// per round, in FIFO order.
	g := graph.Path(2)
	const k = 5
	st, err := Run(g, Config{}, func(ctx *Ctx) {
		if ctx.ID() == 0 {
			for i := 0; i < k; i++ {
				ctx.SendQueued(1, Message{UserTagBase, uint64(i)})
			}
			for i := 0; i < k; i++ {
				ctx.Next()
			}
			return
		}
		got := 0
		for got < k {
			in := ctx.Next()
			if len(in) > 1 {
				panic("more than one message per round over one edge")
			}
			for _, m := range in {
				if int(m.Payload[1]) != got {
					panic("FIFO order violated")
				}
				got++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds < k {
		t.Errorf("rounds %d < %d: queue was not pipelined", st.Rounds, k)
	}
}

func TestQueueDrainsAfterSenderExits(t *testing.T) {
	// Sender queues then returns; receiver must still get everything.
	g := graph.Path(2)
	var received atomic.Int64
	_, err := Run(g, Config{}, func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.SendQueued(1, Message{1})
			ctx.SendQueued(1, Message{2})
			ctx.SendQueued(1, Message{3})
			return
		}
		for received.Load() < 3 {
			received.Add(int64(len(ctx.Next())))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if received.Load() != 3 {
		t.Errorf("received %d of 3 queued messages", received.Load())
	}
}

func TestUndeliveredAtEndIsError(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, Config{}, func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.SendQueued(1, Message{1})
			ctx.SendQueued(1, Message{2})
		}
		// Both exit immediately; second message can never be delivered.
	})
	if err == nil || !strings.Contains(err.Error(), "undelivered") {
		t.Errorf("expected undelivered error, got %v", err)
	}
}

func TestDeterministicStats(t *testing.T) {
	g := graph.MustRandomRegular(20, 4, 3)
	run := func() Stats {
		st, err := Run(g, Config{}, func(ctx *Ctx) {
			// Exchange IDs with neighbors for 5 rounds.
			for r := 0; r < 5; r++ {
				for _, w := range ctx.Neighbors() {
					ctx.Send(int(w), Message{UserTagBase, uint64(ctx.ID())})
				}
				ctx.Next()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return *st
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("stats differ across identical runs: %+v vs %+v", a, b)
	}
}

func TestNeighborIndex(t *testing.T) {
	g := graph.Star(4)
	_, err := Run(g, Config{}, func(ctx *Ctx) {
		if ctx.ID() == 0 {
			if ctx.Degree() != 3 || ctx.NeighborIndex(2) != 1 || ctx.NeighborIndex(0) != -1 {
				panic("neighbor bookkeeping wrong at center")
			}
		} else if ctx.NeighborIndex(0) != 0 {
			panic("leaf should have center at index 0")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g, _ := graph.FromEdges(0, nil)
	st, err := Run(g, Config{}, func(ctx *Ctx) {})
	if err != nil || st.Rounds != 0 {
		t.Errorf("empty graph run: %+v, %v", st, err)
	}
}
