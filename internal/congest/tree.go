package congest

import (
	"fmt"
	"math"
)

// Internal message tags for the tree primitives. User protocols should
// use tags ≥ UserTagBase.
const (
	tagAdopt    uint64 = 1 // [tag, depth, parentID+1] — BFS wave + parent notification
	tagReport   uint64 = 2 // [tag, height, size] — convergecast of subtree stats
	tagTreeDone uint64 = 3 // [tag, height<<32|size, syncRound] — downcast of tree completion
	tagUp       uint64 = 4 // [tag, op, values...] — aggregation chunk toward root
	tagDown     uint64 = 5 // [tag, op, values...] — broadcast chunk toward leaves

	// UserTagBase is the first tag value available to user protocols.
	UserTagBase uint64 = 16
)

// Tree is a node's local view of a BFS spanning tree of the communication
// graph, produced by BuildBFSTree. Aggregation (ConvergeSum) and
// broadcast (Broadcast) over the tree are the communication backbone of
// the derandomization in Lemma 2.6.
type Tree struct {
	Root     int
	Parent   int   // parent node ID; -1 at the root
	Children []int // child node IDs, ascending
	Depth    int   // distance from the root
	Height   int   // height of the whole tree (max depth), known everywhere
	Size     int   // number of nodes in the tree (= n for spanning trees)
	// SubtreeHeight is the height of this node's own subtree (0 at
	// leaves, Height at the root). It makes the aggregation schedule
	// locally computable: in a lockstep ConvergeSum all child chunks have
	// arrived by start+SubtreeHeight, so the wait can be a single engine
	// sleep instead of one barrier per round.
	SubtreeHeight int

	// Reusable ConvergeSumLockstep scratch (see that function): the
	// result vector and the outgoing message buffers of the node's last
	// lockstep aggregation. The derandomization fixes one seed bit per
	// aggregation — millions per run — and reusing these buffers makes
	// the steady-state aggregation allocation-free.
	convAcc  []float64
	convMsgs [][]uint64
	convNext int
}

// convMsg returns the next reusable outgoing-message buffer, sized for
// n words. Buffer k of call i is only rewritten on call i+1, after the
// lockstep schedule guarantees its receiver consumed (and flipped past)
// the payload: every payload of one aggregation is read by round
// start+Height+maxDepth, and the lockstep contract makes the next call
// start at or after that round, with the engine barrier ordering the
// old read before the new write.
func (t *Tree) convMsg(n int) Message {
	if t.convNext == len(t.convMsgs) {
		t.convMsgs = append(t.convMsgs, make([]uint64, 0, n))
	} else if cap(t.convMsgs[t.convNext]) < n {
		t.convMsgs[t.convNext] = make([]uint64, 0, n)
	}
	m := t.convMsgs[t.convNext][:0]
	t.convNext++
	return m
}

// BuildBFSTree constructs a BFS spanning tree rooted at root using the
// deterministic flooding protocol: the wave carries (depth, parent
// choice), ties broken toward the smallest sender ID; subtree reports are
// converged to the root, which then broadcasts completion so that every
// node knows the tree height before returning. Takes O(D) rounds.
//
// The wave only ever reaches root's connected component, so disconnected
// graphs are handled by giving every node the root of its *own* component
// (conventionally the smallest member ID): each component builds its own
// spanning tree in the same engine run, and Size/Height are per-component
// quantities carried by that component's completion broadcast.
//
// All nodes of one component return in the *same* round (the completion
// broadcast carries a synchronization round that every node spins to), so
// protocols may follow the build with scheduled fixed-length segments;
// distinct components may return in different rounds, which is fine
// because no message ever crosses a component boundary.
func BuildBFSTree(ctx *Ctx, root int) *Tree {
	t := &Tree{Root: root, Parent: -1, Depth: 0}
	adopted := ctx.ID() == root
	// notified[i] is neighbor index i's announced parentID+1 (0 = the
	// root's "no parent"), or noParentChoice while unheard-from: a flat
	// slice over the neighbor indexes instead of a per-node map.
	const noParentChoice = ^uint64(0)
	notified := make([]uint64, ctx.Degree())
	for i := range notified {
		notified[i] = noParentChoice
	}
	heard := 0
	reported := 0
	childrenKnown := false
	sentReport := false
	height := 0 // height of my subtree
	size := 1

	if adopted {
		for _, w := range ctx.Neighbors() {
			ctx.Send(int(w), Message{tagAdopt, 0, 0}) // parentID+1 = 0 (none)
		}
		if ctx.Degree() == 0 {
			t.Height, t.Size, t.SubtreeHeight = 0, 1, 0
			return t
		}
	}

	// The build is event-driven: everything a node does reacts to a
	// received message, so the waits (for the adoption wave, the child
	// reports, the completion downcast) run as engine sleeps
	// (NextDelivery) instead of one barrier per round. The one
	// round-driven action — the report deferred by one round because the
	// adopt wave just used the parent edge — forces a single plain Next.
	deferredReport := false
	for {
		var ins []Incoming
		if deferredReport {
			deferredReport = false
			ins = ctx.Next()
		} else {
			ins = ctx.NextDelivery()
		}
		adoptedThisRound := false
		for _, in := range ins {
			switch in.Payload[0] {
			case tagAdopt:
				depth := int(in.Payload[1])
				if i := ctx.NeighborIndex(in.From); notified[i] == noParentChoice {
					heard++
					notified[i] = in.Payload[2]
				}
				if !adopted {
					adopted = true
					adoptedThisRound = true
					t.Parent = in.From
					t.Depth = depth + 1
					for _, w := range ctx.Neighbors() {
						ctx.Send(int(w), Message{tagAdopt, uint64(t.Depth), uint64(t.Parent) + 1})
					}
				}
			case tagReport:
				if h := int(in.Payload[1]) + 1; h > height {
					height = h
				}
				size += int(in.Payload[2])
				reported++
			case tagTreeDone:
				t.Height = int(in.Payload[1] >> 32)
				t.Size = int(in.Payload[1] & 0xffffffff)
				for _, ch := range t.Children {
					ctx.Send(ch, Message{tagTreeDone, in.Payload[1], in.Payload[2]})
				}
				spinUntil(ctx, int(in.Payload[2]))
				return t
			default:
				panic(fmt.Sprintf("congest: unexpected tag %d during tree build", in.Payload[0]))
			}
		}
		if adopted && !childrenKnown && heard == ctx.Degree() {
			childrenKnown = true
			for i, w := range ctx.Neighbors() {
				if notified[i] == uint64(ctx.ID())+1 {
					t.Children = append(t.Children, int(w))
				}
			}
		}
		// Defer the report by one round if the adopt wave just went out on
		// the same edge (one message per edge per round).
		if childrenKnown && !sentReport && reported == len(t.Children) && adoptedThisRound {
			deferredReport = true
		}
		if childrenKnown && !sentReport && reported == len(t.Children) && !adoptedThisRound {
			sentReport = true
			t.SubtreeHeight = height
			if ctx.ID() == root {
				t.Height = height
				t.Size = size
				sync := ctx.Round() + height + 3
				// Height and size are both < 2³² (one O(log n)-bit field
				// each), packed into one word to keep the completion message
				// within the report-message width.
				for _, ch := range t.Children {
					ctx.Send(ch, Message{tagTreeDone, uint64(height)<<32 | uint64(size), uint64(sync)})
				}
				spinUntil(ctx, sync)
				return t
			}
			ctx.Send(t.Parent, Message{tagReport, uint64(height), uint64(size)})
		}
	}
}

// ConvergeSum computes the component-wise sum over all nodes of the given
// float64 vector (same length everywhere) and returns the total at every
// node: an up-phase aggregates along the tree, then a down-phase
// broadcasts the result. Chunks are pipelined through the per-edge FIFOs,
// so one invocation costs O(Height + len(vec)/chunk) rounds. op tags the
// invocation for cross-phase assertion only. The loop is message-driven,
// so nodes may enter at staggered rounds (e.g. straight out of a
// previous ConvergeSum); see ConvergeSumLockstep for the skip-scheduled
// variant used on the derandomization hot path.
func ConvergeSum(ctx *Ctx, t *Tree, op uint64, vec []float64) []float64 {
	l := len(vec)
	if l == 0 {
		panic("congest: ConvergeSum of empty vector")
	}
	vals := ctx.MaxWords() - 2
	if vals < 1 {
		panic("congest: MaxWords too small for tree aggregation")
	}
	chunks := (l + vals - 1) / vals

	acc := make([]float64, l)
	copy(acc, vec)
	result := make([]float64, l)
	childChunks := make(map[int]int, len(t.Children))
	pendingChildren := len(t.Children)
	downChunks := 0

	sendChunks := func(to int, data []float64, tag uint64) {
		for c := 0; c < chunks; c++ {
			lo := c * vals
			hi := min(lo+vals, l)
			msg := make(Message, 0, 2+hi-lo)
			msg = append(msg, tag, op)
			for _, f := range data[lo:hi] {
				msg = append(msg, math.Float64bits(f))
			}
			ctx.SendQueued(to, msg)
		}
	}
	startDown := func() []float64 {
		copy(result, acc)
		for _, ch := range t.Children {
			sendChunks(ch, result, tagDown)
		}
		return result
	}

	if pendingChildren == 0 {
		if t.Parent == -1 {
			return startDown()
		}
		sendChunks(t.Parent, acc, tagUp)
	}
	upDone := pendingChildren == 0

	for {
		for _, in := range ctx.Next() {
			tag := in.Payload[0]
			switch tag {
			case tagUp:
				if in.Payload[1] != op {
					panic(fmt.Sprintf("congest: node %d got up-chunk op %d during op %d",
						ctx.ID(), in.Payload[1], op))
				}
				c := childChunks[in.From]
				lo := c * vals
				for i, w := range in.Payload[2:] {
					acc[lo+i] += math.Float64frombits(w)
				}
				childChunks[in.From] = c + 1
				if c+1 == chunks {
					pendingChildren--
					if pendingChildren == 0 && !upDone {
						upDone = true
						if t.Parent == -1 {
							return startDown()
						}
						sendChunks(t.Parent, acc, tagUp)
					}
				}
			case tagDown:
				if in.Payload[1] != op {
					panic(fmt.Sprintf("congest: node %d got down-chunk op %d during op %d",
						ctx.ID(), in.Payload[1], op))
				}
				lo := downChunks * vals
				for i, w := range in.Payload[2:] {
					result[lo+i] = math.Float64frombits(w)
				}
				// Forward this chunk immediately (pipelining).
				for _, ch := range t.Children {
					fwd := make(Message, len(in.Payload))
					copy(fwd, in.Payload)
					ctx.SendQueued(ch, fwd)
				}
				downChunks++
				if downChunks == chunks {
					return result
				}
			default:
				panic(fmt.Sprintf("congest: unexpected tag %d during ConvergeSum", tag))
			}
		}
	}
}

// ConvergeSumLockstep is the skip-scheduled ConvergeSum for the
// derandomization hot path: it requires that every tree node enters in
// the *same* round (as after BuildBFSTree or a SpinUntil
// resynchronization) and that the vector fits one message
// (len(vec) ≤ MaxWords−2). Under that contract every message's round is
// known in advance — child chunks have all arrived by
// start+SubtreeHeight, the down-chunk arrives exactly at
// start+Height+Depth — so the waits run as single engine sleeps
// (SkipUntil) instead of one barrier wake-up per round, while the
// message timing, Stats, and results stay round-for-round identical to
// ConvergeSum. A violated contract surfaces as a protocol panic, not a
// wrong sum.
//
// The returned slice and the outgoing message buffers live on the Tree
// and are reused by the next ConvergeSumLockstep call on it (the
// derandomization runs one aggregation per seed bit, and this reuse
// makes the steady state allocation-free): callers must copy the result
// before aggregating again.
func ConvergeSumLockstep(ctx *Ctx, t *Tree, op uint64, vec []float64) []float64 {
	return convergeSumLockstep(ctx, t, op, vec, -1)
}

// ConvergeSumLockstepTo is ConvergeSumLockstep followed by a SpinUntil
// to the given absolute round, fused: a node without children has
// nothing to forward, so its wait for the down-chunk and the
// resynchronization spin collapse into a single engine sleep — one
// wake-up fewer per aggregation for every leaf of the tree, at
// identical rounds, messages, and Stats. Requires until ≥ the round the
// plain ConvergeSumLockstep would finish in (start+Height+Depth).
func ConvergeSumLockstepTo(ctx *Ctx, t *Tree, op uint64, vec []float64, until int) []float64 {
	return convergeSumLockstep(ctx, t, op, vec, until)
}

func convergeSumLockstep(ctx *Ctx, t *Tree, op uint64, vec []float64, until int) []float64 {
	if len(vec) == 0 {
		panic("congest: ConvergeSumLockstep of empty vector")
	}
	if len(vec) > ctx.MaxWords()-2 {
		panic("congest: ConvergeSumLockstep vector exceeds one message")
	}
	start := ctx.Round()
	l := len(vec)
	if cap(t.convAcc) < l {
		t.convAcc = make([]float64, l)
	}
	t.convNext = 0
	acc := t.convAcc[:l]
	copy(acc, vec)

	takeUp := func(in Incoming) {
		if in.Payload[0] != tagUp || in.Payload[1] != op {
			panic(fmt.Sprintf("congest: node %d got (tag %d, op %d) during up-phase of op %d",
				ctx.ID(), in.Payload[0], in.Payload[1], op))
		}
		for i, w := range in.Payload[2:] {
			acc[i] += math.Float64frombits(w)
		}
	}
	pack := func(data []float64) Message {
		msg := t.convMsg(2 + l)
		msg = append(msg, tagUp, op)
		for _, f := range data {
			msg = append(msg, math.Float64bits(f))
		}
		return msg
	}

	// Up phase: child c's chunk arrives at start+h_c+1; all have arrived
	// by start+SubtreeHeight, when this node forwards its partial sum.
	got := 0
	for _, in := range ctx.SkipUntil(start + t.SubtreeHeight) {
		takeUp(in)
		got++
	}
	if got != len(t.Children) {
		panic(fmt.Sprintf("congest: node %d got %d of %d child chunks by its schedule",
			ctx.ID(), got, len(t.Children)))
	}
	if t.Parent == -1 {
		for _, ch := range t.Children {
			msg := pack(acc)
			msg[0] = tagDown
			ctx.SendQueued(ch, msg)
		}
		if until > ctx.Round() {
			spinUntil(ctx, until)
		}
		return acc
	}
	ctx.SendQueued(t.Parent, pack(acc))

	// Down phase: the root finishes at start+Height and its broadcast
	// reaches depth d exactly at start+Height+d. A childless node fuses
	// the down-wait with the trailing resynchronization spin.
	wait := start + t.Height + t.Depth
	if len(t.Children) == 0 && until > wait {
		wait = until
	}
	down := ctx.SkipUntil(wait)
	if len(down) != 1 || down[0].Payload[0] != tagDown || down[0].Payload[1] != op {
		panic(fmt.Sprintf("congest: node %d expected its down-chunk of op %d at round %d, got %d message(s)",
			ctx.ID(), op, ctx.Round(), len(down)))
	}
	result := acc
	for i, w := range down[0].Payload[2:] {
		result[i] = math.Float64frombits(w)
	}
	for _, ch := range t.Children {
		fwd := t.convMsg(len(down[0].Payload))
		fwd = append(fwd, down[0].Payload...)
		ctx.SendQueued(ch, fwd)
	}
	if until > ctx.Round() {
		spinUntil(ctx, until)
	}
	return result
}

// Broadcast distributes the root's words to every node over the tree and
// returns them; non-root nodes pass nil. All nodes must agree on
// expectLen. Costs O(Height + expectLen/chunk) rounds.
func Broadcast(ctx *Ctx, t *Tree, op uint64, words []uint64, expectLen int) []uint64 {
	if expectLen == 0 {
		panic("congest: Broadcast of empty payload")
	}
	vals := ctx.MaxWords() - 2
	if vals < 1 {
		panic("congest: MaxWords too small for tree broadcast")
	}
	chunks := (expectLen + vals - 1) / vals
	if t.Parent == -1 {
		if len(words) != expectLen {
			panic(fmt.Sprintf("congest: root broadcast of %d words, expected %d", len(words), expectLen))
		}
		for c := 0; c < chunks; c++ {
			lo := c * vals
			hi := min(lo+vals, expectLen)
			for _, ch := range t.Children {
				msg := make(Message, 0, 2+hi-lo)
				msg = append(msg, tagDown, op)
				msg = append(msg, words[lo:hi]...)
				ctx.SendQueued(ch, msg)
			}
		}
		return words
	}
	result := make([]uint64, expectLen)
	got := 0
	for {
		for _, in := range ctx.Next() {
			if in.Payload[0] != tagDown || in.Payload[1] != op {
				panic(fmt.Sprintf("congest: unexpected message (tag %d op %d) during Broadcast op %d",
					in.Payload[0], in.Payload[1], op))
			}
			lo := got * vals
			copy(result[lo:], in.Payload[2:])
			for _, ch := range t.Children {
				fwd := make(Message, len(in.Payload))
				copy(fwd, in.Payload)
				ctx.SendQueued(ch, fwd)
			}
			got++
			if got == chunks {
				return result
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// spinUntil advances rounds (delivering nothing) until the given absolute
// round, re-establishing lockstep after a message-driven phase. The spin
// is a single engine sleep (SkipUntil): the node leaves the barrier
// population and the skipped rounds advance — and are counted — without
// waking it. Receiving anything while spinning indicates a protocol bug.
func spinUntil(ctx *Ctx, round int) {
	if in := ctx.SkipUntil(round); len(in) != 0 {
		panic(fmt.Sprintf("congest: node %d received %d messages while resynchronizing",
			ctx.ID(), len(in)))
	}
}

// SpinUntil is the exported form of the resynchronization helper: the
// node ticks empty rounds until the given absolute round number.
func SpinUntil(ctx *Ctx, round int) { spinUntil(ctx, round) }
