package congest

import (
	"fmt"
	"math"
)

// Internal message tags for the tree primitives. User protocols should
// use tags ≥ UserTagBase.
const (
	tagAdopt    uint64 = 1 // [tag, depth, parentID+1] — BFS wave + parent notification
	tagReport   uint64 = 2 // [tag, height, size] — convergecast of subtree stats
	tagTreeDone uint64 = 3 // [tag, height, syncRound] — downcast of tree completion
	tagUp       uint64 = 4 // [tag, op, values...] — aggregation chunk toward root
	tagDown     uint64 = 5 // [tag, op, values...] — broadcast chunk toward leaves

	// UserTagBase is the first tag value available to user protocols.
	UserTagBase uint64 = 16
)

// Tree is a node's local view of a BFS spanning tree of the communication
// graph, produced by BuildBFSTree. Aggregation (ConvergeSum) and
// broadcast (Broadcast) over the tree are the communication backbone of
// the derandomization in Lemma 2.6.
type Tree struct {
	Root     int
	Parent   int   // parent node ID; -1 at the root
	Children []int // child node IDs, ascending
	Depth    int   // distance from the root
	Height   int   // height of the whole tree (max depth), known everywhere
	Size     int   // number of nodes in the tree (= n for spanning trees)
}

// BuildBFSTree constructs a BFS spanning tree rooted at root using the
// deterministic flooding protocol: the wave carries (depth, parent
// choice), ties broken toward the smallest sender ID; subtree reports are
// converged to the root, which then broadcasts completion so that every
// node knows the tree height before returning. Takes O(D) rounds.
// The graph must be connected.
//
// All nodes return in the *same* round (the completion broadcast carries
// a synchronization round that every node spins to), so protocols may
// follow the build with globally scheduled fixed-length segments.
func BuildBFSTree(ctx *Ctx, root int) *Tree {
	t := &Tree{Root: root, Parent: -1, Depth: 0}
	adopted := ctx.ID() == root
	notified := make(map[int]uint64, ctx.Degree()) // neighbor -> parentID+1
	reported := 0
	childrenKnown := false
	sentReport := false
	height := 0 // height of my subtree
	size := 1

	if adopted {
		for _, w := range ctx.Neighbors() {
			ctx.Send(int(w), Message{tagAdopt, 0, 0}) // parentID+1 = 0 (none)
		}
		if ctx.Degree() == 0 {
			t.Height, t.Size = 0, 1
			return t
		}
	}

	for {
		adoptedThisRound := false
		for _, in := range ctx.Next() {
			switch in.Payload[0] {
			case tagAdopt:
				depth := int(in.Payload[1])
				notified[in.From] = in.Payload[2]
				if !adopted {
					adopted = true
					adoptedThisRound = true
					t.Parent = in.From
					t.Depth = depth + 1
					for _, w := range ctx.Neighbors() {
						ctx.Send(int(w), Message{tagAdopt, uint64(t.Depth), uint64(t.Parent) + 1})
					}
				}
			case tagReport:
				if h := int(in.Payload[1]) + 1; h > height {
					height = h
				}
				size += int(in.Payload[2])
				reported++
			case tagTreeDone:
				t.Height = int(in.Payload[1])
				t.Size = ctx.N()
				for _, ch := range t.Children {
					ctx.Send(ch, Message{tagTreeDone, in.Payload[1], in.Payload[2]})
				}
				spinUntil(ctx, int(in.Payload[2]))
				return t
			default:
				panic(fmt.Sprintf("congest: unexpected tag %d during tree build", in.Payload[0]))
			}
		}
		if adopted && !childrenKnown && len(notified) == ctx.Degree() {
			childrenKnown = true
			for _, w := range ctx.Neighbors() {
				if notified[int(w)] == uint64(ctx.ID())+1 {
					t.Children = append(t.Children, int(w))
				}
			}
		}
		// Defer the report by one round if the adopt wave just went out on
		// the same edge (one message per edge per round).
		if childrenKnown && !sentReport && reported == len(t.Children) && !adoptedThisRound {
			sentReport = true
			if ctx.ID() == root {
				t.Height = height
				t.Size = size
				sync := ctx.Round() + height + 3
				for _, ch := range t.Children {
					ctx.Send(ch, Message{tagTreeDone, uint64(height), uint64(sync)})
				}
				spinUntil(ctx, sync)
				return t
			}
			ctx.Send(t.Parent, Message{tagReport, uint64(height), uint64(size)})
		}
	}
}

// ConvergeSum computes the component-wise sum over all nodes of the given
// float64 vector (same length everywhere) and returns the total at every
// node: an up-phase aggregates along the tree, then a down-phase
// broadcasts the result. Chunks are pipelined through the per-edge FIFOs,
// so one invocation costs O(Height + len(vec)/chunk) rounds. op tags the
// invocation for cross-phase assertion only.
func ConvergeSum(ctx *Ctx, t *Tree, op uint64, vec []float64) []float64 {
	l := len(vec)
	if l == 0 {
		panic("congest: ConvergeSum of empty vector")
	}
	vals := ctx.MaxWords() - 2
	if vals < 1 {
		panic("congest: MaxWords too small for tree aggregation")
	}
	chunks := (l + vals - 1) / vals

	acc := make([]float64, l)
	copy(acc, vec)
	result := make([]float64, l)
	childChunks := make(map[int]int, len(t.Children))
	pendingChildren := len(t.Children)
	downChunks := 0

	sendChunks := func(to int, data []float64, tag uint64) {
		for c := 0; c < chunks; c++ {
			lo := c * vals
			hi := min(lo+vals, l)
			msg := make(Message, 0, 2+hi-lo)
			msg = append(msg, tag, op)
			for _, f := range data[lo:hi] {
				msg = append(msg, math.Float64bits(f))
			}
			ctx.SendQueued(to, msg)
		}
	}
	startDown := func() []float64 {
		copy(result, acc)
		for _, ch := range t.Children {
			sendChunks(ch, result, tagDown)
		}
		return result
	}

	if pendingChildren == 0 {
		if t.Parent == -1 {
			return startDown()
		}
		sendChunks(t.Parent, acc, tagUp)
	}
	upDone := pendingChildren == 0

	for {
		for _, in := range ctx.Next() {
			tag := in.Payload[0]
			switch tag {
			case tagUp:
				if in.Payload[1] != op {
					panic(fmt.Sprintf("congest: node %d got up-chunk op %d during op %d",
						ctx.ID(), in.Payload[1], op))
				}
				c := childChunks[in.From]
				lo := c * vals
				for i, w := range in.Payload[2:] {
					acc[lo+i] += math.Float64frombits(w)
				}
				childChunks[in.From] = c + 1
				if c+1 == chunks {
					pendingChildren--
					if pendingChildren == 0 && !upDone {
						upDone = true
						if t.Parent == -1 {
							return startDown()
						}
						sendChunks(t.Parent, acc, tagUp)
					}
				}
			case tagDown:
				if in.Payload[1] != op {
					panic(fmt.Sprintf("congest: node %d got down-chunk op %d during op %d",
						ctx.ID(), in.Payload[1], op))
				}
				lo := downChunks * vals
				for i, w := range in.Payload[2:] {
					result[lo+i] = math.Float64frombits(w)
				}
				// Forward this chunk immediately (pipelining).
				for _, ch := range t.Children {
					fwd := make(Message, len(in.Payload))
					copy(fwd, in.Payload)
					ctx.SendQueued(ch, fwd)
				}
				downChunks++
				if downChunks == chunks {
					return result
				}
			default:
				panic(fmt.Sprintf("congest: unexpected tag %d during ConvergeSum", tag))
			}
		}
	}
}

// Broadcast distributes the root's words to every node over the tree and
// returns them; non-root nodes pass nil. All nodes must agree on
// expectLen. Costs O(Height + expectLen/chunk) rounds.
func Broadcast(ctx *Ctx, t *Tree, op uint64, words []uint64, expectLen int) []uint64 {
	if expectLen == 0 {
		panic("congest: Broadcast of empty payload")
	}
	vals := ctx.MaxWords() - 2
	if vals < 1 {
		panic("congest: MaxWords too small for tree broadcast")
	}
	chunks := (expectLen + vals - 1) / vals
	if t.Parent == -1 {
		if len(words) != expectLen {
			panic(fmt.Sprintf("congest: root broadcast of %d words, expected %d", len(words), expectLen))
		}
		for c := 0; c < chunks; c++ {
			lo := c * vals
			hi := min(lo+vals, expectLen)
			for _, ch := range t.Children {
				msg := make(Message, 0, 2+hi-lo)
				msg = append(msg, tagDown, op)
				msg = append(msg, words[lo:hi]...)
				ctx.SendQueued(ch, msg)
			}
		}
		return words
	}
	result := make([]uint64, expectLen)
	got := 0
	for {
		for _, in := range ctx.Next() {
			if in.Payload[0] != tagDown || in.Payload[1] != op {
				panic(fmt.Sprintf("congest: unexpected message (tag %d op %d) during Broadcast op %d",
					in.Payload[0], in.Payload[1], op))
			}
			lo := got * vals
			copy(result[lo:], in.Payload[2:])
			for _, ch := range t.Children {
				fwd := make(Message, len(in.Payload))
				copy(fwd, in.Payload)
				ctx.SendQueued(ch, fwd)
			}
			got++
			if got == chunks {
				return result
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// spinUntil advances rounds (delivering nothing) until the given absolute
// round, re-establishing global lockstep after a message-driven phase.
// Receiving anything while spinning indicates a protocol bug.
func spinUntil(ctx *Ctx, round int) {
	for ctx.Round() < round {
		if in := ctx.Next(); len(in) != 0 {
			panic(fmt.Sprintf("congest: node %d received %d messages while resynchronizing",
				ctx.ID(), len(in)))
		}
	}
}

// SpinUntil is the exported form of the resynchronization helper: the
// node ticks empty rounds until the given absolute round number.
func SpinUntil(ctx *Ctx, round int) { spinUntil(ctx, round) }
