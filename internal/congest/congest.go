// Package congest simulates the synchronous CONGEST message-passing model
// [Pel00]: n nodes host processors on the vertices of a communication
// graph; computation proceeds in synchronous rounds; in each round every
// node may send one message of O(log n) bits over each incident edge and
// perform arbitrary local computation.
//
// Node programs are ordinary blocking Go functions — one goroutine per
// node — that call Ctx.Send to queue messages and Ctx.Next to end the
// current round (a barrier) and receive the messages delivered for the
// next one. The simulator:
//
//   - enforces the bandwidth cap (messages wider than MaxWords are a
//     protocol violation and abort the run with an error);
//   - supports per-edge FIFO queueing (SendQueued) so that multiple
//     logical messages contending for one edge are automatically
//     pipelined, which is how the congestion-κ cluster trees of the
//     network decomposition pay their true round cost;
//   - counts rounds, messages, and words, and records the widest message
//     observed, so every complexity claim in the paper is *measured*.
package congest

import (
	"errors"
	"fmt"
	"sync"

	"smallbandwidth/internal/graph"
)

// Message is the payload of one CONGEST message: a short slice of 64-bit
// words. In the standard parameterization one word models Θ(log n) bits.
type Message []uint64

// Incoming is a delivered message together with its sender's node ID.
type Incoming struct {
	From    int
	Payload Message
}

// Config controls the simulation.
type Config struct {
	// MaxWords is the bandwidth cap per edge per direction per round, in
	// 64-bit words. Zero means the default of 4 words (≈ 4·64 bits, a
	// constant number of O(log n)-bit words).
	MaxWords int
	// MaxRounds aborts runs that exceed this many rounds (default 1<<22),
	// turning protocol livelocks into test failures instead of hangs.
	MaxRounds int
}

func (c Config) withDefaults() Config {
	if c.MaxWords == 0 {
		c.MaxWords = 4
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 1 << 22
	}
	return c
}

// Stats aggregates the measured cost of a run.
type Stats struct {
	Rounds          int   // number of synchronous rounds executed
	Messages        int64 // messages delivered
	Words           int64 // total words delivered
	MaxMessageWords int   // widest single message observed
}

// errAborted unwinds node goroutines when any node fails.
var errAborted = errors.New("congest: run aborted")

// Ctx is a node's handle to the simulation. All methods must be called
// only from that node's own goroutine.
type Ctx struct {
	r   *runner
	id  int
	nbr []int32     // neighbor node IDs, sorted
	idx map[int]int // node ID -> index in nbr

	outbox  [][]Message // per-neighbor FIFO of pending messages
	sentNow []bool      // direct Send already used this round, per neighbor
	inbox   []Incoming
}

// ID returns this node's identifier.
func (c *Ctx) ID() int { return c.id }

// N returns the number of nodes in the network (nodes know n, as is
// standard in CONGEST algorithms).
func (c *Ctx) N() int { return c.r.g.N() }

// Degree returns this node's degree.
func (c *Ctx) Degree() int { return len(c.nbr) }

// Neighbors returns the sorted IDs of this node's neighbors. Read-only.
func (c *Ctx) Neighbors() []int32 { return c.nbr }

// NeighborIndex returns the index of neighbor ID in Neighbors(), or -1.
func (c *Ctx) NeighborIndex(id int) int {
	if i, ok := c.idx[id]; ok {
		return i
	}
	return -1
}

// Round returns the current round number (starting at 0).
func (c *Ctx) Round() int { return c.r.round }

// Send queues a message to neighbor `to` for delivery next round. It is a
// protocol violation (aborting the run) to send twice to the same
// neighbor in one round, to exceed the bandwidth cap, or to send to a
// non-neighbor.
func (c *Ctx) Send(to int, msg Message) {
	i := c.NeighborIndex(to)
	if i < 0 {
		c.r.fail(fmt.Errorf("congest: node %d sent to non-neighbor %d", c.id, to))
		panic(errAborted)
	}
	if c.sentNow[i] {
		c.r.fail(fmt.Errorf("congest: node %d sent twice to %d in round %d", c.id, to, c.r.round))
		panic(errAborted)
	}
	if len(c.outbox[i]) > 0 {
		c.r.fail(fmt.Errorf("congest: node %d direct Send to %d with queued backlog", c.id, to))
		panic(errAborted)
	}
	c.checkWidth(msg)
	c.sentNow[i] = true
	c.outbox[i] = append(c.outbox[i], msg)
}

// SendQueued appends a message to the FIFO for neighbor `to`; one queued
// message per edge per direction is delivered each round, so bursts are
// pipelined across rounds exactly as congestion forces in the real model.
func (c *Ctx) SendQueued(to int, msg Message) {
	i := c.NeighborIndex(to)
	if i < 0 {
		c.r.fail(fmt.Errorf("congest: node %d queued to non-neighbor %d", c.id, to))
		panic(errAborted)
	}
	c.checkWidth(msg)
	c.outbox[i] = append(c.outbox[i], msg)
}

func (c *Ctx) checkWidth(msg Message) {
	if len(msg) > c.r.cfg.MaxWords {
		c.r.fail(fmt.Errorf("congest: node %d message of %d words exceeds cap %d",
			c.id, len(msg), c.r.cfg.MaxWords))
		panic(errAborted)
	}
	if len(msg) == 0 {
		c.r.fail(fmt.Errorf("congest: node %d sent empty message", c.id))
		panic(errAborted)
	}
}

// Pending reports whether any queued messages remain undelivered.
func (c *Ctx) Pending() bool {
	for _, q := range c.outbox {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// Next ends the node's current round and blocks until all nodes have done
// so; it returns the messages delivered to this node for the new round.
// The returned slice is valid until the following Next call.
func (c *Ctx) Next() []Incoming {
	if !c.r.barrierWait() {
		panic(errAborted)
	}
	in := c.inbox
	c.inbox = nil
	return in
}

// runner drives one simulation.
type runner struct {
	g   *graph.Graph
	cfg Config

	ctxs []*Ctx

	mu      sync.Mutex
	arrived int
	active  int
	release chan struct{}
	round   int
	err     error
	aborted bool

	stats Stats
}

func (r *runner) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.aborted = true
	r.mu.Unlock()
}

// barrierWait blocks until all active nodes arrive; the last arrival
// delivers messages and advances the round. Returns false if aborted.
func (r *runner) barrierWait() bool {
	r.mu.Lock()
	if r.aborted {
		r.mu.Unlock()
		return false
	}
	r.arrived++
	if r.arrived == r.active {
		r.deliverLocked()
		r.arrived = 0
		rel := r.release
		r.release = make(chan struct{})
		aborted := r.aborted
		r.mu.Unlock()
		close(rel)
		return !aborted
	}
	rel := r.release
	r.mu.Unlock()
	<-rel
	r.mu.Lock()
	aborted := r.aborted
	r.mu.Unlock()
	return !aborted
}

// leave removes a finished node from the barrier population.
func (r *runner) leave() {
	r.mu.Lock()
	r.active--
	if r.active > 0 && r.arrived == r.active {
		r.deliverLocked()
		r.arrived = 0
		rel := r.release
		r.release = make(chan struct{})
		r.mu.Unlock()
		close(rel)
		return
	}
	if r.active == 0 {
		// Wake nobody; Run's WaitGroup will return.
	}
	r.mu.Unlock()
}

// deliverLocked moves one queued message per directed edge into the
// recipients' inboxes and advances the round counter. Caller holds mu.
func (r *runner) deliverLocked() {
	r.round++
	r.stats.Rounds++
	if r.stats.Rounds > r.cfg.MaxRounds {
		if r.err == nil {
			r.err = fmt.Errorf("congest: exceeded MaxRounds=%d", r.cfg.MaxRounds)
		}
		r.aborted = true
		return
	}
	for _, c := range r.ctxs {
		for i := range c.outbox {
			q := c.outbox[i]
			if len(q) == 0 {
				continue
			}
			msg := q[0]
			copy(q, q[1:])
			c.outbox[i] = q[:len(q)-1]
			to := int(c.nbr[i])
			rc := r.ctxs[to]
			rc.inbox = append(rc.inbox, Incoming{From: c.id, Payload: msg})
			r.stats.Messages++
			r.stats.Words += int64(len(msg))
			if len(msg) > r.stats.MaxMessageWords {
				r.stats.MaxMessageWords = len(msg)
			}
		}
		for i := range c.sentNow {
			c.sentNow[i] = false
		}
	}
}

// Run executes program on every node of g until all node programs return.
// It returns the measured statistics, or an error if any node violated
// the model, panicked, or the round cap was hit.
func Run(g *graph.Graph, cfg Config, program func(ctx *Ctx)) (*Stats, error) {
	cfg = cfg.withDefaults()
	n := g.N()
	if n == 0 {
		return &Stats{}, nil
	}
	r := &runner{
		g:       g,
		cfg:     cfg,
		ctxs:    make([]*Ctx, n),
		active:  n,
		release: make(chan struct{}),
	}
	for v := 0; v < n; v++ {
		nbr := g.Neighbors(v)
		idx := make(map[int]int, len(nbr))
		for i, w := range nbr {
			idx[int(w)] = i
		}
		r.ctxs[v] = &Ctx{
			r:       r,
			id:      v,
			nbr:     nbr,
			idx:     idx,
			outbox:  make([][]Message, len(nbr)),
			sentNow: make([]bool, len(nbr)),
		}
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		ctx := r.ctxs[v]
		go func() {
			defer wg.Done()
			defer r.leave()
			defer func() {
				if p := recover(); p != nil && !errors.Is(asErr(p), errAborted) {
					r.fail(fmt.Errorf("congest: node %d panicked: %v", ctx.id, p))
				}
			}()
			program(ctx)
		}()
	}
	wg.Wait()
	// Messages queued by nodes that exited early are still delivered at
	// later barriers; only messages left after the last node exits were
	// truly dropped, which indicates a protocol bug.
	if r.err == nil {
		for _, ctx := range r.ctxs {
			if ctx.Pending() {
				r.err = fmt.Errorf("congest: node %d finished with undelivered queued messages", ctx.id)
				break
			}
		}
	}
	st := r.stats
	return &st, r.err
}

func asErr(p any) error {
	if err, ok := p.(error); ok {
		return err
	}
	return nil
}
