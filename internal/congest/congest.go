// Package congest simulates the synchronous CONGEST message-passing model
// [Pel00]: n nodes host processors on the vertices of a communication
// graph; computation proceeds in synchronous rounds; in each round every
// node may send one message of O(log n) bits over each incident edge and
// perform arbitrary local computation.
//
// Node programs are ordinary blocking Go functions — one goroutine per
// node — that call Ctx.Send to queue messages and Ctx.Next to end the
// current round (a barrier) and receive the messages delivered for the
// next one. The simulator:
//
//   - enforces the bandwidth cap (messages wider than MaxWords are a
//     protocol violation and abort the run with an error);
//   - supports per-edge FIFO queueing (SendQueued) so that multiple
//     logical messages contending for one edge are automatically
//     pipelined, which is how the congestion-κ cluster trees of the
//     network decomposition pay their true round cost;
//   - counts rounds, messages, and words, and records the widest message
//     observed, so every complexity claim in the paper is *measured*.
//
// # Engine
//
// The package is a thin adapter over the shared sharded round engine
// (internal/engine), which the CONGESTED CLIQUE and MPC simulators run
// on as well: the communication graph is the engine's Topology, and the
// atomic barrier, receiver-sharded parallel delivery, double-buffered
// inboxes, and dirty-edge skipping all live in the engine — one copy of
// the hot path for all three models. Stats are bit-for-bit independent
// of the engine's worker count.
package congest

import (
	"smallbandwidth/internal/engine"
	"smallbandwidth/internal/graph"
)

// Message is the payload of one CONGEST message: a short slice of 64-bit
// words. In the standard parameterization one word models Θ(log n) bits.
type Message = engine.Message

// Incoming is a delivered message together with its sender's node ID.
type Incoming = engine.Incoming

// Stats aggregates the measured cost of a run.
type Stats = engine.Stats

// Ctx is a node's handle to the simulation. All methods must be called
// only from that node's own goroutine.
type Ctx = engine.Ctx

// Checkpoint/restore types, shared with the engine: a Checkpointer
// attached to a run collects consistent per-domain cuts at the round
// barriers in which every node committed its state (Ctx.Commit), and a
// RunSnapshot restores a run from such cuts (Ctx.Resumed).
type (
	// Checkpointer collects the cuts of a run.
	Checkpointer = engine.Checkpointer
	// RunSnapshot is a consistent cut of a whole run, one DomainCut per
	// lockstep domain.
	RunSnapshot = engine.RunSnapshot
	// DomainCut is one connected component's consistent cut.
	DomainCut = engine.DomainCut
	// NodeCut is one node's committed state in a cut.
	NodeCut = engine.NodeCut
	// QueueCut is one directed edge's undelivered backlog in a cut.
	QueueCut = engine.QueueCut
)

// Config controls the simulation.
type Config struct {
	// MaxWords is the bandwidth cap per edge per direction per round, in
	// 64-bit words. Zero means the default of 4 words (≈ 4·64 bits, a
	// constant number of O(log n)-bit words).
	MaxWords int
	// MaxRounds aborts runs that exceed this many rounds (default 1<<22),
	// turning protocol livelocks into test failures instead of hangs.
	MaxRounds int
	// Workers bounds the engine's delivery/compute parallelism: 0 sizes
	// the worker pool from GOMAXPROCS, n > 0 caps it at n shards. Stats
	// and protocol outcomes are bit-identical for every setting.
	Workers int
	// Checkpoint, when non-nil, collects consistent cuts of the run.
	Checkpoint *Checkpointer
	// Resume, when non-nil, restores the run from a snapshot before any
	// node program starts.
	Resume *RunSnapshot
}

// DomainStats is one connected component's share of a run's Stats.
type DomainStats = engine.DomainStats

// MaxWorkers is the largest accepted Config.Workers value (engine's
// sanity cap): anything above it is a typo, not a machine.
const MaxWorkers = engine.MaxWorkers

// Run executes program on every node of g until all node programs return.
// It returns the measured statistics, or an error if any node violated
// the model, panicked, or the round cap was hit.
func Run(g *graph.Graph, cfg Config, program func(ctx *Ctx)) (*Stats, error) {
	st, _, err := RunWithDomains(g, cfg, program)
	return st, err
}

// RunWithDomains is Run, additionally reporting each connected
// component's own Stats (ordered by smallest member).
func RunWithDomains(g *graph.Graph, cfg Config, program func(ctx *Ctx)) (*Stats, []DomainStats, error) {
	return engine.RunWithDomains(g, engine.Config{
		Model:      "congest",
		MaxWords:   cfg.MaxWords,
		MaxRounds:  cfg.MaxRounds,
		Workers:    cfg.Workers,
		Checkpoint: cfg.Checkpoint,
		Resume:     cfg.Resume,
	}, program)
}

// DeliveryShards reports how many delivery shards the engine cuts an
// n-endpoint domain into under the given worker bound (0 = GOMAXPROCS).
// Callers that pad per-edge arenas at shard boundaries (so no two
// shards' nodes share a cache line) use it to place the pads where the
// engine will actually cut.
func DeliveryShards(n, workers int) int { return engine.ShardsFor(n, workers) }
