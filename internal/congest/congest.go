// Package congest simulates the synchronous CONGEST message-passing model
// [Pel00]: n nodes host processors on the vertices of a communication
// graph; computation proceeds in synchronous rounds; in each round every
// node may send one message of O(log n) bits over each incident edge and
// perform arbitrary local computation.
//
// Node programs are ordinary blocking Go functions — one goroutine per
// node — that call Ctx.Send to queue messages and Ctx.Next to end the
// current round (a barrier) and receive the messages delivered for the
// next one. The simulator:
//
//   - enforces the bandwidth cap (messages wider than MaxWords are a
//     protocol violation and abort the run with an error);
//   - supports per-edge FIFO queueing (SendQueued) so that multiple
//     logical messages contending for one edge are automatically
//     pipelined, which is how the congestion-κ cluster trees of the
//     network decomposition pay their true round cost;
//   - counts rounds, messages, and words, and records the widest message
//     observed, so every complexity claim in the paper is *measured*.
//
// # Engine
//
// The engine is built to simulate 10⁵+-node graphs: the barrier is a
// single atomic counter (no global mutex), nodes sleep on per-shard
// release channels so wake-up is batched shard by shard, and the
// message-delivery phase between rounds is sharded by *receiver* across
// a pool of GOMAXPROCS workers. Receiver-sharding keeps delivery
// deterministic — each inbox is filled by exactly one worker, in sorted
// sender order, exactly as the sequential engine did — so Stats and
// protocol behavior are bit-for-bit independent of the worker count.
// Inboxes are double-buffered and outbox FIFOs recycle their backing
// arrays, so steady-state rounds allocate nothing per edge.
package congest

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"smallbandwidth/internal/graph"
)

// Message is the payload of one CONGEST message: a short slice of 64-bit
// words. In the standard parameterization one word models Θ(log n) bits.
type Message []uint64

// Incoming is a delivered message together with its sender's node ID.
type Incoming struct {
	From    int
	Payload Message
}

// Config controls the simulation.
type Config struct {
	// MaxWords is the bandwidth cap per edge per direction per round, in
	// 64-bit words. Zero means the default of 4 words (≈ 4·64 bits, a
	// constant number of O(log n)-bit words).
	MaxWords int
	// MaxRounds aborts runs that exceed this many rounds (default 1<<22),
	// turning protocol livelocks into test failures instead of hangs.
	MaxRounds int
}

func (c Config) withDefaults() Config {
	if c.MaxWords == 0 {
		c.MaxWords = 4
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 1 << 22
	}
	return c
}

// Stats aggregates the measured cost of a run.
type Stats struct {
	Rounds          int   // number of synchronous rounds executed
	Messages        int64 // messages delivered
	Words           int64 // total words delivered
	MaxMessageWords int   // widest single message observed
}

// errAborted unwinds node goroutines when any node fails.
var errAborted = errors.New("congest: run aborted")

// fifo is a per-directed-edge message queue. The head index replaces
// memmove-on-pop, and a drained queue rewinds to reuse its backing
// array, so steady-state traffic does not allocate.
type fifo struct {
	buf  []Message
	head int
}

func (q *fifo) push(m Message) { q.buf = append(q.buf, m) }

func (q *fifo) size() int { return len(q.buf) - q.head }

func (q *fifo) pop() Message {
	m := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head >= 32 && q.head*2 >= len(q.buf) {
		// A queue that never fully drains (steady backlog) would advance
		// head and len in lockstep forever; compacting once the dead
		// prefix reaches half the slice keeps memory O(backlog) at
		// amortized O(1) per pop.
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return m
}

// Ctx is a node's handle to the simulation. All methods must be called
// only from that node's own goroutine.
type Ctx struct {
	r     *runner
	id    int
	shard int
	nbr   []int32 // neighbor node IDs, sorted
	// srcSlot[i] is this node's index in neighbor nbr[i]'s adjacency
	// list: the slot of edge nbr[i]→me in that neighbor's outbox. It lets
	// the delivery workers pull from sender queues receiver-side without
	// any lookups.
	srcSlot []int32

	outbox  []fifo // per-neighbor FIFO of pending messages
	sentNow []bool // direct Send already used this round, per neighbor

	// inboxes double-buffers delivery: workers fill inboxes[cur] while
	// the node still holds the slice returned by the previous Next.
	inboxes [2][]Incoming
	cur     int
}

// ID returns this node's identifier.
func (c *Ctx) ID() int { return c.id }

// N returns the number of nodes in the network (nodes know n, as is
// standard in CONGEST algorithms).
func (c *Ctx) N() int { return c.r.g.N() }

// Degree returns this node's degree.
func (c *Ctx) Degree() int { return len(c.nbr) }

// Neighbors returns the sorted IDs of this node's neighbors. Read-only.
func (c *Ctx) Neighbors() []int32 { return c.nbr }

// NeighborIndex returns the index of neighbor ID in Neighbors(), or -1.
// It is a binary search over the sorted adjacency slice: cache-resident
// for the small degrees typical of CONGEST inputs, and with none of the
// footprint of the per-node hash map it replaced.
func (c *Ctx) NeighborIndex(id int) int {
	if i, ok := slices.BinarySearch(c.nbr, int32(id)); ok {
		return i
	}
	return -1
}

// Round returns the current round number (starting at 0).
func (c *Ctx) Round() int { return c.r.round }

// Send queues a message to neighbor `to` for delivery next round. It is a
// protocol violation (aborting the run) to send twice to the same
// neighbor in one round, to exceed the bandwidth cap, or to send to a
// non-neighbor.
func (c *Ctx) Send(to int, msg Message) {
	i := c.NeighborIndex(to)
	if i < 0 {
		c.r.fail(fmt.Errorf("congest: node %d sent to non-neighbor %d", c.id, to))
		panic(errAborted)
	}
	if c.sentNow[i] {
		c.r.fail(fmt.Errorf("congest: node %d sent twice to %d in round %d", c.id, to, c.r.round))
		panic(errAborted)
	}
	if c.outbox[i].size() > 0 {
		c.r.fail(fmt.Errorf("congest: node %d direct Send to %d with queued backlog", c.id, to))
		panic(errAborted)
	}
	c.checkWidth(msg)
	c.sentNow[i] = true
	c.noteQueued(i)
	c.outbox[i].push(msg)
}

// SendQueued appends a message to the FIFO for neighbor `to`; one queued
// message per edge per direction is delivered each round, so bursts are
// pipelined across rounds exactly as congestion forces in the real model.
func (c *Ctx) SendQueued(to int, msg Message) {
	i := c.NeighborIndex(to)
	if i < 0 {
		c.r.fail(fmt.Errorf("congest: node %d queued to non-neighbor %d", c.id, to))
		panic(errAborted)
	}
	c.checkWidth(msg)
	c.noteQueued(i)
	c.outbox[i].push(msg)
}

// noteQueued maintains the dirty-edge accounting: called before a push
// that makes the edge queue at index i non-empty.
func (c *Ctx) noteQueued(i int) {
	if c.outbox[i].size() == 0 {
		c.r.dirty[c.shard].v.Add(1)
	}
}

func (c *Ctx) checkWidth(msg Message) {
	if len(msg) > c.r.cfg.MaxWords {
		c.r.fail(fmt.Errorf("congest: node %d message of %d words exceeds cap %d",
			c.id, len(msg), c.r.cfg.MaxWords))
		panic(errAborted)
	}
	if len(msg) == 0 {
		c.r.fail(fmt.Errorf("congest: node %d sent empty message", c.id))
		panic(errAborted)
	}
}

// Pending reports whether any queued messages remain undelivered.
func (c *Ctx) Pending() bool {
	for i := range c.outbox {
		if c.outbox[i].size() > 0 {
			return true
		}
	}
	return false
}

// Next ends the node's current round and blocks until all nodes have done
// so; it returns the messages delivered to this node for the new round.
// The returned slice is valid until the following Next call.
func (c *Ctx) Next() []Incoming {
	if !c.r.barrierWait(c) {
		panic(errAborted)
	}
	in := c.inboxes[c.cur]
	c.cur ^= 1
	c.inboxes[c.cur] = c.inboxes[c.cur][:0]
	return in
}

// workerStats is one delivery worker's counters, accumulated privately
// across the whole run (instead of contending on shared counters per
// message) and merged into the global Stats once, after the workers
// exit. Padded so each worker owns its cache line.
type workerStats struct {
	messages int64
	words    int64
	maxWords int
	_        [5]uint64
}

// padCounter is a cache-line-padded atomic counter: the dirty-edge
// counts are sharded by sender so concurrent senders don't serialize on
// one line.
type padCounter struct {
	v atomic.Int64
	_ [7]uint64
}

// roundTask tells a delivery worker to run one round: deliver its
// receiver range, then wake its shard by closing old[shard].
type roundTask struct {
	old  []chan struct{} // the round's release channels, one per shard
	done chan struct{}   // closed when every shard finished delivering
}

// runner drives one simulation.
type runner struct {
	g    *graph.Graph
	cfg  Config
	ctxs []*Ctx

	// Barrier. pending counts the arrivals outstanding this round; the
	// goroutine whose arrival (or departure) takes it to zero is the
	// round leader and runs completeRound while every other node sleeps,
	// so the leader may touch active/round/stats without locks. Sleepers
	// wait on their shard's release channel; each channel is read before
	// the pending decrement, which orders it before the leader's
	// replacement write.
	pending  atomic.Int64
	leaves   atomic.Int64    // departures since the last barrier
	releases []chan struct{} // one per shard; replaced by the leader each round
	active   int64
	round    int

	aborted atomic.Bool
	errMu   sync.Mutex
	err     error

	stats Stats

	// Sharded delivery. Worker i owns receivers [bounds[i], bounds[i+1])
	// and the matching release shard. tasks is nil when nshards == 1 and
	// the leader delivers inline.
	nshards int
	bounds  []int
	wstats  []workerStats
	tasks   []chan roundTask
	left    atomic.Int32
	workers sync.WaitGroup

	// dirty[s] counts non-empty edge queues whose sender lives in shard
	// s. When the total is zero at a barrier the whole delivery scan is
	// skipped, so protocol-free synchronization rounds (SpinUntil, pure
	// barriers) cost O(shards) instead of O(m).
	dirty []padCounter
}

// forceShards pins the worker/shard count when > 0. Test hook: the
// determinism regression runs the same protocol with 1 and many shards
// and asserts bit-identical Stats.
var forceShards int

// shardMin keeps tiny graphs on the sequential path: below this many
// nodes per worker the dispatch overhead outweighs the parallelism.
const shardMin = 256

func shardCount(n int) int {
	if forceShards > 0 {
		return forceShards
	}
	s := runtime.GOMAXPROCS(0)
	if lim := n / shardMin; s > lim {
		s = lim
	}
	if s < 1 {
		s = 1
	}
	return s
}

func (r *runner) fail(err error) {
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
	r.aborted.Store(true)
}

// barrierWait blocks until all active nodes arrive; the arrival that
// completes the barrier becomes the leader and advances the round.
// Returns false if the run aborted.
func (r *runner) barrierWait(c *Ctx) bool {
	if r.aborted.Load() {
		return false
	}
	// Read the release channel before decrementing: the leader only
	// replaces r.releases after pending hits zero, i.e. after this read.
	rel := r.releases[c.shard]
	if r.pending.Add(-1) == 0 {
		r.completeRound()
	} else {
		<-rel
	}
	return !r.aborted.Load()
}

// leave removes a finished node from the barrier population. A departure
// counts as this round's arrival, and is deducted from the population at
// the next barrier.
func (r *runner) leave() {
	r.leaves.Add(1)
	if r.pending.Add(-1) == 0 {
		r.completeRound()
	}
}

// completeRound runs once per barrier, by the single goroutine whose
// arrival or departure took pending to zero: apply departures, advance
// the round, deliver queued messages across the worker shards, merge the
// per-worker stats, and wake the sleepers shard by shard.
func (r *runner) completeRound() {
	r.active -= r.leaves.Swap(0)
	if r.active <= 0 {
		return // the last node left; nobody is sleeping
	}
	old := r.releases
	fresh := make([]chan struct{}, r.nshards)
	for i := range fresh {
		fresh[i] = make(chan struct{})
	}
	r.releases = fresh
	r.pending.Store(r.active)

	r.round++
	r.stats.Rounds++
	if !r.aborted.Load() && r.stats.Rounds > r.cfg.MaxRounds {
		r.fail(fmt.Errorf("congest: exceeded MaxRounds=%d", r.cfg.MaxRounds))
	}
	if r.aborted.Load() {
		for _, ch := range old {
			close(ch)
		}
		return
	}
	queued := int64(0)
	for i := range r.dirty {
		queued += r.dirty[i].v.Load()
	}
	if queued == 0 {
		// Nothing anywhere in flight: skip the delivery scan entirely.
		for _, ch := range old {
			close(ch)
		}
		return
	}
	if r.tasks == nil {
		r.deliverRange(0, r.g.N(), &r.wstats[0])
		close(old[0])
		return
	}
	r.left.Store(int32(r.nshards))
	t := roundTask{old: old, done: make(chan struct{})}
	for _, ch := range r.tasks {
		ch <- t
	}
	// The leader is a node too: it may not run ahead into the next round
	// until its own inbox is complete. Shard wake-ups proceed in the
	// background.
	<-t.done
}

func (r *runner) worker(wid int) {
	defer r.workers.Done()
	for t := range r.tasks[wid] {
		r.deliverRange(r.bounds[wid], r.bounds[wid+1], &r.wstats[wid])
		if r.left.Add(-1) == 0 {
			close(t.done)
		} else {
			// Wake-up must wait for *all* shards: a woken node may send
			// immediately, racing a slower worker still reading its
			// outbox.
			<-t.done
		}
		close(t.old[wid])
	}
}

// deliverRange moves one queued message per directed edge into the
// inboxes of receivers [lo, hi): each receiver walks its incident edges
// in sorted sender order — the exact delivery order of the sequential
// engine, so results do not depend on the worker count — and pops the
// head of the sender's queue slot for that edge. Workers own disjoint
// receiver ranges, and a sender's outbox slot and sentNow flag for an
// edge are touched only by the worker owning the receiving endpoint, so
// delivery needs no locks.
func (r *runner) deliverRange(lo, hi int, ws *workerStats) {
	for v := lo; v < hi; v++ {
		c := r.ctxs[v]
		buf := c.inboxes[c.cur]
		for i, w := range c.nbr {
			sc := r.ctxs[w]
			slot := c.srcSlot[i]
			q := &sc.outbox[slot]
			if q.size() == 0 {
				continue
			}
			msg := q.pop()
			if q.size() == 0 {
				r.dirty[sc.shard].v.Add(-1)
			}
			sc.sentNow[slot] = false
			buf = append(buf, Incoming{From: int(w), Payload: msg})
			ws.messages++
			ws.words += int64(len(msg))
			if len(msg) > ws.maxWords {
				ws.maxWords = len(msg)
			}
		}
		c.inboxes[c.cur] = buf
	}
}

// mergeStats folds the per-worker counters into the global Stats, once,
// after all node goroutines and workers have stopped. Sum and max are
// order-independent, so the totals are bit-identical to a sequential
// delivery no matter how rounds were sharded.
func (r *runner) mergeStats() {
	for i := range r.wstats {
		ws := &r.wstats[i]
		r.stats.Messages += ws.messages
		r.stats.Words += ws.words
		if ws.maxWords > r.stats.MaxMessageWords {
			r.stats.MaxMessageWords = ws.maxWords
		}
	}
}

// Run executes program on every node of g until all node programs return.
// It returns the measured statistics, or an error if any node violated
// the model, panicked, or the round cap was hit.
func Run(g *graph.Graph, cfg Config, program func(ctx *Ctx)) (*Stats, error) {
	cfg = cfg.withDefaults()
	n := g.N()
	if n == 0 {
		return &Stats{}, nil
	}
	r := &runner{
		g:       g,
		cfg:     cfg,
		ctxs:    make([]*Ctx, n),
		nshards: shardCount(n),
		active:  int64(n),
	}
	r.pending.Store(int64(n))
	r.releases = make([]chan struct{}, r.nshards)
	for i := range r.releases {
		r.releases[i] = make(chan struct{})
	}
	r.bounds = make([]int, r.nshards+1)
	for i := 1; i <= r.nshards; i++ {
		r.bounds[i] = i * n / r.nshards
	}
	r.wstats = make([]workerStats, r.nshards)
	r.dirty = make([]padCounter, r.nshards)

	shard := 0
	for v := 0; v < n; v++ {
		for v >= r.bounds[shard+1] {
			shard++
		}
		nbr := g.Neighbors(v)
		c := &Ctx{
			r:       r,
			id:      v,
			shard:   shard,
			nbr:     nbr,
			srcSlot: make([]int32, len(nbr)),
			outbox:  make([]fifo, len(nbr)),
			sentNow: make([]bool, len(nbr)),
		}
		c.inboxes[0] = make([]Incoming, 0, len(nbr))
		c.inboxes[1] = make([]Incoming, 0, len(nbr))
		r.ctxs[v] = c
	}
	for v := 0; v < n; v++ {
		c := r.ctxs[v]
		for i, w := range c.nbr {
			c.srcSlot[i] = int32(r.ctxs[w].NeighborIndex(v))
		}
	}
	if r.nshards > 1 {
		r.tasks = make([]chan roundTask, r.nshards)
		for i := range r.tasks {
			r.tasks[i] = make(chan roundTask, 1)
		}
		r.workers.Add(r.nshards)
		for i := 0; i < r.nshards; i++ {
			go r.worker(i)
		}
	}

	var nodes sync.WaitGroup
	nodes.Add(n)
	for v := 0; v < n; v++ {
		ctx := r.ctxs[v]
		go func() {
			defer nodes.Done()
			defer r.leave()
			defer func() {
				if p := recover(); p != nil && !errors.Is(asErr(p), errAborted) {
					r.fail(fmt.Errorf("congest: node %d panicked: %v", ctx.id, p))
				}
			}()
			program(ctx)
		}()
	}
	nodes.Wait()
	if r.tasks != nil {
		for _, ch := range r.tasks {
			close(ch)
		}
		r.workers.Wait()
	}
	r.mergeStats()
	// Messages queued by nodes that exited early are still delivered at
	// later barriers; only messages left after the last node exits were
	// truly dropped, which indicates a protocol bug.
	if r.err == nil {
		for _, ctx := range r.ctxs {
			if ctx.Pending() {
				r.err = fmt.Errorf("congest: node %d finished with undelivered queued messages", ctx.id)
				break
			}
		}
	}
	st := r.stats
	return &st, r.err
}

func asErr(p any) error {
	if err, ok := p.(error); ok {
		return err
	}
	return nil
}
