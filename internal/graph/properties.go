package graph

import "slices"

// BFS runs a breadth-first search from source and returns (dist, parent).
// Unreachable nodes have dist = -1 and parent = -1. Ties between potential
// parents are broken toward the smallest node ID so that the traversal is
// deterministic. The frontier walks the CSR arrays directly: one offset
// lookup and a contiguous arc range per dequeued node.
func (g *Graph) BFS(source int) (dist, parent []int) {
	dist = make([]int, g.n)
	parent = make([]int, g.n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	off, nbr := g.off, g.nbr
	dist[source] = 0
	queue := make([]int32, 0, g.n)
	queue = append(queue, int32(source))
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		du := dist[u] + 1
		for _, w := range nbr[off[u]:off[u+1]] {
			if dist[w] == -1 {
				dist[w] = du
				parent[w] = int(u)
				queue = append(queue, w)
			}
		}
	}
	return dist, parent
}

// Eccentricity returns the maximum BFS distance from v to any reachable
// node.
func (g *Graph) Eccentricity(v int) int {
	dist, _ := g.BFS(v)
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter computes the exact diameter of the graph by running a BFS from
// every node. It returns -1 for disconnected graphs and 0 for graphs with
// fewer than two nodes. Intended for laptop-scale experiment graphs.
func (g *Graph) Diameter() int {
	if g.n <= 1 {
		return 0
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		dist, _ := g.BFS(v)
		for _, d := range dist {
			if d == -1 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// IsConnected reports whether the graph is connected (true for n <= 1).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	dist, _ := g.BFS(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// ConnectedComponents returns the node sets of the connected components,
// each sorted ascending, ordered by smallest member.
func (g *Graph) ConnectedComponents() [][]int {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	off, nbr := g.off, g.nbr
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(comps)
		comp[s] = id
		members := []int{s}
		queue := []int32{int32(s)}
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, w := range nbr[off[u]:off[u+1]] {
				if comp[w] == -1 {
					comp[w] = id
					members = append(members, int(w))
					queue = append(queue, w)
				}
			}
		}
		comps = append(comps, members)
	}
	for _, c := range comps {
		// BFS emits members nearly sorted, but "nearly" is not "almost
		// everywhere" on grids and expanders: insertion sort here was
		// quadratic on million-node giant components (seconds of wall
		// clock). slices.Sort handles both shapes in O(n log n).
		slices.Sort(c)
	}
	return comps
}

// ComponentCount returns the number of connected components without
// materializing (or sorting) the member lists — O(n+m), usable at the
// million-node tier where ConnectedComponents' per-component sort is
// quadratic on a BFS-ordered giant component.
func (g *Graph) ComponentCount() int {
	visited := make([]bool, g.n)
	off, nbr := g.off, g.nbr
	queue := make([]int32, 0, 256)
	count := 0
	for s := 0; s < g.n; s++ {
		if visited[s] {
			continue
		}
		count++
		visited[s] = true
		queue = append(queue[:0], int32(s))
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, w := range nbr[off[u]:off[u+1]] {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return count
}

// Degeneracy returns the degeneracy of the graph (the smallest d such that
// every subgraph has a node of degree ≤ d), computed by iterated minimum-
// degree removal.
func (g *Graph) Degeneracy() int {
	deg := make([]int, g.n)
	removed := make([]bool, g.n)
	for v := range deg {
		deg[v] = g.Degree(v)
	}
	degeneracy := 0
	for iter := 0; iter < g.n; iter++ {
		best, bestDeg := -1, int(^uint(0)>>1)
		for v := 0; v < g.n; v++ {
			if !removed[v] && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		if bestDeg > degeneracy {
			degeneracy = bestDeg
		}
		removed[best] = true
		for _, w := range g.Neighbors(best) {
			if !removed[w] {
				deg[w]--
			}
		}
	}
	return degeneracy
}

// IsProperColoring reports whether colors (one entry per node) assigns
// different values to every pair of adjacent nodes.
func (g *Graph) IsProperColoring(colors []uint32) bool {
	if len(colors) != g.n {
		return false
	}
	proper := true
	g.Edges(func(u, v int) {
		if colors[u] == colors[v] {
			proper = false
		}
	})
	return proper
}

// CountConflicts returns the number of monochromatic edges under colors.
func (g *Graph) CountConflicts(colors []uint32) int {
	conflicts := 0
	g.Edges(func(u, v int) {
		if colors[u] == colors[v] {
			conflicts++
		}
	})
	return conflicts
}
