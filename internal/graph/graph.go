// Package graph provides the undirected-graph substrate shared by every
// model simulator in this repository: adjacency structures, deterministic
// workload generators, structural properties (degree, diameter, BFS), and
// validation helpers for colorings and list-coloring instances.
//
// Nodes are identified by dense integers 0..N-1. Graphs are immutable after
// construction through a Builder; all algorithm packages treat *Graph as
// read-only, which makes it safe to share one instance across the
// goroutine-per-node CONGEST simulator without locking.
//
// # Memory layout
//
// A Graph is stored in compressed-sparse-row (CSR) form: one flat arc
// arena nbr holding every directed arc's target, and an offset table off
// with node v's sorted adjacency at nbr[off[v]:off[v+1]]. Neighbors(v)
// returns that subslice directly, so algorithm code is layout-agnostic,
// while bulk traversals (BFS, the engine's delivery tables, netdecomp's
// frontiers) walk two contiguous int32 arrays instead of chasing one
// pointer per node. The layout also defines the per-graph *edge IDs*
// used across the stack: arc i of node v has
//
//	eid(v, i) = off[v] + i
//
// — a stable dense index over all NumArcs() = 2·M() directed arcs, which
// lets consumers carve per-edge state (delivery slots, conflict flags,
// message buffers) out of single arenas instead of per-node slices.
// Offsets are int32, capping a graph at 2^31−1 arcs (~10^9 edges).
package graph

import (
	"fmt"
	"slices"
)

// Graph is an undirected simple graph with nodes 0..N-1 in CSR layout
// (see the package comment). Graphs are constructed via Builder (or a
// generator) and must not be mutated afterwards.
type Graph struct {
	n      int
	m      int     // number of undirected edges
	maxDeg int     // maximum degree, fixed at construction
	off    []int32 // len n+1; node v's arcs are nbr[off[v]:off[v+1]]
	nbr    []int32 // len 2m; arc targets, sorted ascending per node
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// NumArcs returns the number of directed arcs, 2·M(): the size of the
// edge-ID space eid(v,i) = ArcBase(v)+i.
func (g *Graph) NumArcs() int { return len(g.nbr) }

// ArcBase returns the edge ID of arc (v, 0), i.e. off[v]: neighbor index
// i of node v has edge ID ArcBase(v)+i.
func (g *Graph) ArcBase(v int) int32 { return g.off[v] }

// CSR exposes the raw layout — the offset table (len N+1) and the arc
// arena (len NumArcs) — for bulk traversals that want to walk the flat
// arrays directly. Both slices are owned by the graph and must not be
// modified.
func (g *Graph) CSR() (off, nbr []int32) { return g.off, g.nbr }

// Neighbors returns the sorted adjacency list of v: a subslice of the
// arc arena, owned by the graph — it must not be modified. Entry i is
// the target of edge ID ArcBase(v)+i.
func (g *Graph) Neighbors(v int) []int32 { return g.nbr[g.off[v]:g.off[v+1]] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return int(g.off[v+1] - g.off[v]) }

// MaxDegree returns the maximum degree Δ of the graph (0 for empty
// graphs). Δ is computed once at construction; calls are O(1).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// HasEdge reports whether {u,v} is an edge, via binary search.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := slices.BinarySearch(g.nbr[g.off[u]:g.off[u+1]], int32(v))
	return ok
}

// Edges calls fn once per undirected edge with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.n; u++ {
		for _, w := range g.nbr[g.off[u]:g.off[u+1]] {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// Equal reports exact graph equality: same node count and identical CSR
// arrays. Because Build canonicalizes the layout (per-row ascending
// arenas), two graphs are Equal iff they have the same node set and edge
// set — this is the comparison the snapshot round-trip tests pin a
// decoded graph against its original with.
func (g *Graph) Equal(h *Graph) bool {
	if g == nil || h == nil {
		return g == h
	}
	return g.n == h.n && slices.Equal(g.off, h.off) && slices.Equal(g.nbr, h.nbr)
}

// SortedHas reports whether the sorted node-ID slice a contains x.
// Together with SortedRemove it is the shared toolkit for the sorted
// neighbor-set slices the model simulators keep per node (ascending
// iteration order makes their floating-point accumulations
// bit-deterministic, unlike map iteration).
func SortedHas(a []int32, x int) bool {
	_, ok := slices.BinarySearch(a, int32(x))
	return ok
}

// SortedRemove deletes x from the sorted node-ID slice a if present,
// preserving order.
func SortedRemove(a []int32, x int) []int32 {
	if i, ok := slices.BinarySearch(a, int32(x)); ok {
		return append(a[:i], a[i+1:]...)
	}
	return a
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges and self-loops are rejected at AddEdge time.
//
// The builder stores nothing but the flat endpoint lists: Build runs a
// two-pass counting sort into the CSR arenas, so construction allocates
// O(1) slices regardless of node count — no per-node adjacency slices
// exist at any point. The duplicate-detection set of the checked
// AddEdge/HasEdge path materializes lazily; generators whose edge
// streams are duplicate-free by construction use the unchecked add and
// never pay for it (Build still verifies the no-duplicate invariant from
// the sorted arena).
type Builder struct {
	n    int
	seen map[uint64]struct{} // lazily built; nil until first checked op
	us   []int32
	vs   []int32
}

// NewBuilder returns a Builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n}
}

// Grow reserves capacity for at least m additional edges.
func (b *Builder) Grow(m int) {
	b.us = slices.Grow(b.us, m)
	b.vs = slices.Grow(b.vs, m)
}

func edgeKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// ensureSeen materializes the duplicate-detection set from the edges
// accumulated so far (checked and unchecked alike), so checked and
// unchecked adds may be mixed freely.
func (b *Builder) ensureSeen() {
	if b.seen != nil {
		return
	}
	b.seen = make(map[uint64]struct{}, len(b.us))
	for i := range b.us {
		b.seen[edgeKey(int(b.us[i]), int(b.vs[i]))] = struct{}{}
	}
}

// HasEdge reports whether the builder already contains edge {u,v}.
func (b *Builder) HasEdge(u, v int) bool {
	b.ensureSeen()
	_, ok := b.seen[edgeKey(u, v)]
	return ok
}

// AddEdge inserts the undirected edge {u,v}. It returns an error for
// out-of-range endpoints, self-loops, and duplicates.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	b.ensureSeen()
	k := edgeKey(u, v)
	if _, dup := b.seen[k]; dup {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	b.seen[k] = struct{}{}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
	return nil
}

// MustAddEdge is AddEdge but panics on error; for generators whose edge
// streams are valid by construction.
func (b *Builder) MustAddEdge(u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// AddUnchecked inserts {u,v} without the hash-set membership test, for
// callers that have already deduplicated their edge stream (the store's
// ingest path buffers and dedups edges before the node count — and
// therefore the builder — can exist). A violated promise is still
// caught: BuildChecked's strict-ascent scan reports duplicates as an
// error, Build's as a panic. Range and self-loop violations panic — in
// every caller those are process invariants established before the add,
// never raw input properties.
func (b *Builder) AddUnchecked(u, v int) { b.add(u, v) }

// add is the unchecked fast path for generators whose edge streams are
// duplicate-free by construction: it skips the hash-set membership test
// (Build's sorted-arena scan still catches a violated promise), so the
// builder's footprint stays at the two endpoint arrays. Range and
// self-loop violations panic — they are generator bugs, never data.
func (b *Builder) add(u, v int) {
	if uint(u) >= uint(b.n) || uint(v) >= uint(b.n) || u == v {
		panic(fmt.Sprintf("graph: invalid unchecked edge (%d,%d) on %d nodes", u, v, b.n))
	}
	if b.seen != nil {
		b.seen[edgeKey(u, v)] = struct{}{}
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
}

// Build finalizes the graph (see BuildChecked for the algorithm). It
// panics on arc-space overflow and on duplicate edges that slipped past
// the unchecked add path — construction-time invariant violations are
// generator bugs, never data. Input that originates outside the process
// (edge-list files, network payloads) must go through BuildChecked
// instead, which returns those violations as errors.
func (b *Builder) Build() *Graph {
	g, err := b.BuildChecked()
	if err != nil {
		panic(err)
	}
	return g
}

// BuildChecked finalizes the graph by a two-pass counting sort: pass one
// counts degrees into the offset table, pass two buckets every arc by
// its target and then scatters the buckets — walked in ascending target
// order — into the arc arena, which lands each adjacency row already
// sorted. Total O(n+m) time, O(m) transient space, zero comparison
// sorts and zero per-node allocations. The builder may not be reused
// afterwards.
//
// Unlike Build it returns errors instead of panicking: arc-space
// overflow and duplicate edges (reachable through the unchecked add
// path) are reported, never thrown. This is the finalizer for builders
// fed from user-controlled input, where malformed data must surface as
// a diagnostic rather than a crash.
func (b *Builder) BuildChecked() (*Graph, error) {
	n := b.n
	m := len(b.us)
	if 2*m > (1<<31)-1 {
		return nil, fmt.Errorf("graph: %d edges exceed the int32 arc-ID space", m)
	}
	off := make([]int32, n+1)
	for i := range b.us {
		off[b.us[i]+1]++
		off[b.vs[i]+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}

	// Bucket arcs by target: srcAt[k] is the source of the k-th arc in
	// (target-major, insertion-order) position — a stable counting sort
	// of all 2m arcs by target, reusing the offset table for bucket
	// starts via a cursor copy.
	cur := make([]int32, n)
	copy(cur, off[:n])
	srcAt := make([]int32, 2*m)
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		srcAt[cur[v]] = u
		cur[v]++
		srcAt[cur[u]] = v
		cur[u]++
	}

	// Scatter by source while sweeping targets ascending: each source
	// row fills in ascending target order, i.e. sorted.
	copy(cur, off[:n])
	nbr := make([]int32, 2*m)
	for t := 0; t < n; t++ {
		for k := off[t]; k < off[t+1]; k++ {
			s := srcAt[k]
			nbr[cur[s]] = int32(t)
			cur[s]++
		}
	}

	// One linear verification pass: strict per-row ascent proves the
	// no-duplicate invariant (the unchecked add path relies on it), and
	// the same sweep fixes Δ for the O(1) MaxDegree.
	maxDeg := 0
	for v := 0; v < n; v++ {
		row := nbr[off[v]:off[v+1]]
		if len(row) > maxDeg {
			maxDeg = len(row)
		}
		for i := 1; i < len(row); i++ {
			if row[i-1] == row[i] {
				return nil, fmt.Errorf("graph: duplicate edge (%d,%d) reached Build", v, row[i])
			}
		}
	}

	g := &Graph{n: n, m: m, maxDeg: maxDeg, off: off, nbr: nbr}
	b.seen = nil
	b.us, b.vs = nil, nil
	return g, nil
}

// FromEdges builds a graph from an explicit edge list.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// FromCSR reconstructs a graph from raw CSR arrays, validating every
// structural invariant the Builder would have established: offset-table
// shape, per-row strict ascent (sortedness and no duplicates), target
// range, no self-loops, and arc symmetry. Unlike Build it returns errors
// instead of panicking — its inputs come from external data (snapshot
// decoding), not from generators with construction-time guarantees. The
// slices are retained by the graph and must not be modified afterwards.
func FromCSR(off, nbr []int32) (*Graph, error) {
	if len(off) == 0 {
		return nil, fmt.Errorf("graph: CSR offset table is empty")
	}
	n := len(off) - 1
	if off[0] != 0 {
		return nil, fmt.Errorf("graph: CSR offset table starts at %d, not 0", off[0])
	}
	if int64(off[n]) != int64(len(nbr)) {
		return nil, fmt.Errorf("graph: CSR offset table ends at %d for %d arcs", off[n], len(nbr))
	}
	if len(nbr)%2 != 0 {
		return nil, fmt.Errorf("graph: odd arc count %d (undirected graphs have 2m arcs)", len(nbr))
	}
	maxDeg := 0
	for v := 0; v < n; v++ {
		if off[v+1] < off[v] {
			return nil, fmt.Errorf("graph: CSR offset table decreases at node %d", v)
		}
		row := nbr[off[v]:off[v+1]]
		if len(row) > maxDeg {
			maxDeg = len(row)
		}
		for i, w := range row {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: arc (%d,%d) out of range [0,%d)", v, w, n)
			}
			if int(w) == v {
				return nil, fmt.Errorf("graph: self-loop at node %d", v)
			}
			if i > 0 && row[i-1] >= w {
				return nil, fmt.Errorf("graph: adjacency of node %d not strictly ascending at index %d", v, i)
			}
		}
	}
	if err := checkSymmetry(off, nbr); err != nil {
		return nil, err
	}
	return &Graph{n: n, m: len(nbr) / 2, maxDeg: maxDeg, off: off, nbr: nbr}, nil
}

// checkSymmetry verifies that every arc has its reverse arc in O(n+m):
// a counting-sort transpose of the arc set, scattered in ascending
// source order so each transposed row lands sorted, then compared
// against the original arena. With strictly ascending rows (validated
// by the caller), in-set == out-set per node iff the arc relation is
// symmetric. Replaces the former per-arc binary-search sweep, which
// cost O(m·log Δ) — on a multi-million-arc store load the difference
// is tens of milliseconds versus hundreds.
func checkSymmetry(off, nbr []int32) error {
	n := len(off) - 1
	cur := make([]int32, n)
	copy(cur, off[:n])
	tr := make([]int32, len(nbr))
	for v := 0; v < n; v++ {
		for _, w := range nbr[off[v]:off[v+1]] {
			// Bound each row cursor so a skewed in-degree distribution in
			// hostile input cannot scatter past its row (or the arena).
			if cur[w] >= off[w+1] {
				return fmt.Errorf("graph: arc (%d,%d) has no reverse arc", v, w)
			}
			tr[cur[w]] = int32(v)
			cur[w]++
		}
	}
	for v := 0; v < n; v++ {
		row, trow := nbr[off[v]:off[v+1]], tr[off[v]:off[v+1]]
		for i := range row {
			if row[i] != trow[i] {
				return fmt.Errorf("graph: arc (%d,%d) has no reverse arc", v, row[i])
			}
		}
	}
	return nil
}

// FromCSRUnchecked adopts raw CSR arrays with only the O(n) shape checks
// needed for memory safety — offset-table bounds and monotonicity, so
// Neighbors can never slice out of range — and recomputes Δ from the
// offset table without touching the arc arena. Per-arc invariants
// (target range, sortedness, no self-loops, symmetry) are NOT verified:
// the caller vouches that the arrays came from an already-validated
// graph, e.g. the store's trusted load path re-reading a file this
// process just wrote. For data of unknown provenance use FromCSR. The
// slices are retained by the graph and must not be modified afterwards.
func FromCSRUnchecked(off, nbr []int32) (*Graph, error) {
	if len(off) == 0 {
		return nil, fmt.Errorf("graph: CSR offset table is empty")
	}
	n := len(off) - 1
	if off[0] != 0 {
		return nil, fmt.Errorf("graph: CSR offset table starts at %d, not 0", off[0])
	}
	if int64(off[n]) != int64(len(nbr)) {
		return nil, fmt.Errorf("graph: CSR offset table ends at %d for %d arcs", off[n], len(nbr))
	}
	if len(nbr)%2 != 0 {
		return nil, fmt.Errorf("graph: odd arc count %d (undirected graphs have 2m arcs)", len(nbr))
	}
	maxDeg := 0
	for v := 0; v < n; v++ {
		if off[v+1] < off[v] {
			return nil, fmt.Errorf("graph: CSR offset table decreases at node %d", v)
		}
		if deg := int(off[v+1] - off[v]); deg > maxDeg {
			maxDeg = deg
		}
	}
	return &Graph{n: n, m: len(nbr) / 2, maxDeg: maxDeg, off: off, nbr: nbr}, nil
}

// InducedSubgraph returns the subgraph induced by the given node set
// together with the mapping from new IDs to original IDs. The i-th node of
// the subgraph corresponds to nodes[i] (deduplicated, in given order).
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	// Small selections on huge graphs (the per-cluster runs of the
	// Corollary 1.2 sequential reference) keep the map index; bulk
	// selections use a dense array and stay O(n + m_sub).
	var lookup func(int) (int32, bool)
	if g.n > 64 && len(nodes) < g.n/8 {
		index := make(map[int]int32, len(nodes))
		lookup = func(v int) (int32, bool) { i, ok := index[v]; return i, ok }
		nodes = dedupNodes(nodes, func(v int) bool { _, ok := index[v]; return ok },
			func(v, i int) { index[v] = int32(i) })
	} else {
		index := make([]int32, g.n)
		for i := range index {
			index[i] = -1
		}
		lookup = func(v int) (int32, bool) { i := index[v]; return i, i >= 0 }
		nodes = dedupNodes(nodes, func(v int) bool { return index[v] >= 0 },
			func(v, i int) { index[v] = int32(i) })
	}
	orig := nodes
	b := NewBuilder(len(orig))
	for newU, u := range orig {
		for _, w := range g.nbr[g.off[u]:g.off[u+1]] {
			if newW, ok := lookup(int(w)); ok && int(newW) > newU {
				b.add(newU, int(newW))
			}
		}
	}
	return b.Build(), orig
}

// dedupNodes filters nodes to first occurrences in given order,
// registering each kept node's new index through the provided hooks.
func dedupNodes(nodes []int, has func(int) bool, set func(v, i int)) []int {
	kept := make([]int, 0, len(nodes))
	for _, v := range nodes {
		if !has(v) {
			set(v, len(kept))
			kept = append(kept, v)
		}
	}
	return kept
}
