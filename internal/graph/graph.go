// Package graph provides the undirected-graph substrate shared by every
// model simulator in this repository: adjacency structures, deterministic
// workload generators, structural properties (degree, diameter, BFS), and
// validation helpers for colorings and list-coloring instances.
//
// Nodes are identified by dense integers 0..N-1. Graphs are immutable after
// construction through a Builder; all algorithm packages treat *Graph as
// read-only, which makes it safe to share one instance across the
// goroutine-per-node CONGEST simulator without locking.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Graph is an undirected simple graph with nodes 0..N-1.
//
// Adj[v] is the sorted adjacency list of v. Graphs are constructed via
// Builder (or a generator) and must not be mutated afterwards.
type Graph struct {
	n   int
	adj [][]int32
	m   int // number of undirected edges
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Neighbors returns the sorted adjacency list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree Δ of the graph (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// HasEdge reports whether {u,v} is an edge, via binary search.
func (g *Graph) HasEdge(u, v int) bool {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v)
}

// Edges calls fn once per undirected edge with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.n; u++ {
		for _, w := range g.adj[u] {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// SortedHas reports whether the sorted node-ID slice a contains x.
// Together with SortedRemove it is the shared toolkit for the sorted
// neighbor-set slices the model simulators keep per node (ascending
// iteration order makes their floating-point accumulations
// bit-deterministic, unlike map iteration).
func SortedHas(a []int32, x int) bool {
	_, ok := slices.BinarySearch(a, int32(x))
	return ok
}

// SortedRemove deletes x from the sorted node-ID slice a if present,
// preserving order.
func SortedRemove(a []int32, x int) []int32 {
	if i, ok := slices.BinarySearch(a, int32(x)); ok {
		return append(a[:i], a[i+1:]...)
	}
	return a
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges and self-loops are rejected at AddEdge time.
type Builder struct {
	n    int
	seen map[uint64]struct{}
	us   []int32
	vs   []int32
}

// NewBuilder returns a Builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n, seen: make(map[uint64]struct{})}
}

func edgeKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// HasEdge reports whether the builder already contains edge {u,v}.
func (b *Builder) HasEdge(u, v int) bool {
	_, ok := b.seen[edgeKey(u, v)]
	return ok
}

// AddEdge inserts the undirected edge {u,v}. It returns an error for
// out-of-range endpoints, self-loops, and duplicates.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	k := edgeKey(u, v)
	if _, dup := b.seen[k]; dup {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	b.seen[k] = struct{}{}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
	return nil
}

// MustAddEdge is AddEdge but panics on error; for generators whose edge
// streams are valid by construction.
func (b *Builder) MustAddEdge(u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// Build finalizes the graph. The builder may not be reused afterwards.
func (b *Builder) Build() *Graph {
	deg := make([]int, b.n)
	for i := range b.us {
		deg[b.us[i]]++
		deg[b.vs[i]]++
	}
	adj := make([][]int32, b.n)
	for v := 0; v < b.n; v++ {
		adj[v] = make([]int32, 0, deg[v])
	}
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for v := 0; v < b.n; v++ {
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
	}
	g := &Graph{n: b.n, adj: adj, m: len(b.us)}
	b.seen = nil
	return g
}

// FromEdges builds a graph from an explicit edge list.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// InducedSubgraph returns the subgraph induced by the given node set
// together with the mapping from new IDs to original IDs. The i-th node of
// the subgraph corresponds to nodes[i] (deduplicated, in given order).
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	index := make(map[int]int, len(nodes))
	orig := make([]int, 0, len(nodes))
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			index[v] = len(orig)
			orig = append(orig, v)
		}
	}
	b := NewBuilder(len(orig))
	for newU, u := range orig {
		for _, w := range g.adj[u] {
			newW, ok := index[int(w)]
			if ok && newW > newU {
				b.MustAddEdge(newU, newW)
			}
		}
	}
	return b.Build(), orig
}
