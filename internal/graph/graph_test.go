package graph

import (
	"testing"
	"testing/quick"
)

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(5)
	if err := b.AddEdge(0, 5); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := b.AddEdge(-1, 2); err == nil {
		t.Error("negative endpoint accepted")
	}
	if err := b.AddEdge(3, 3); err == nil {
		t.Error("self-loop accepted")
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := b.AddEdge(2, 1); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
}

func TestBuildAdjacencySorted(t *testing.T) {
	g, err := FromEdges(6, [][2]int{{5, 0}, {0, 3}, {0, 1}, {4, 0}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	nbrs := g.Neighbors(0)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Fatalf("adjacency not sorted: %v", nbrs)
		}
	}
	if g.Degree(0) != 5 || g.M() != 5 {
		t.Errorf("degree/m wrong: %d, %d", g.Degree(0), g.M())
	}
	if !g.HasEdge(0, 3) || g.HasEdge(1, 2) {
		t.Error("HasEdge wrong")
	}
}

func TestEdgesIteration(t *testing.T) {
	g := Cycle(5)
	count := 0
	g.Edges(func(u, v int) {
		if u >= v {
			t.Errorf("Edges emitted u=%d >= v=%d", u, v)
		}
		count++
	})
	if count != 5 {
		t.Errorf("cycle C5 has %d edges, want 5", count)
	}
}

func TestGeneratorShapes(t *testing.T) {
	cases := []struct {
		name          string
		g             *Graph
		n, m, maxDeg  int
		diam          int // -1 to skip
		mustConnected bool
	}{
		{"Path10", Path(10), 10, 9, 2, 9, true},
		{"Cycle6", Cycle(6), 6, 6, 2, 3, true},
		{"Complete5", Complete(5), 5, 10, 4, 1, true},
		{"Star7", Star(7), 7, 6, 6, 2, true},
		{"K33", CompleteBipartite(3, 3), 6, 9, 3, 2, true},
		{"Grid3x4", Grid2D(3, 4), 12, 17, 4, 5, true},
		{"Torus4x4", Torus2D(4, 4), 16, 32, 4, 4, true},
		{"Hypercube4", Hypercube(4), 16, 32, 4, 4, true},
		{"BinaryTree7", BinaryTree(7), 7, 6, 3, 4, true},
		{"Caveman4x5", Caveman(4, 5), 20, 44, 5, -1, true},
		{"Barbell5_3", Barbell(5, 3), 13, 24, 5, -1, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.g.N() != c.n {
				t.Errorf("N = %d, want %d", c.g.N(), c.n)
			}
			if c.g.M() != c.m {
				t.Errorf("M = %d, want %d", c.g.M(), c.m)
			}
			if c.g.MaxDegree() != c.maxDeg {
				t.Errorf("Δ = %d, want %d", c.g.MaxDegree(), c.maxDeg)
			}
			if c.diam >= 0 {
				if d := c.g.Diameter(); d != c.diam {
					t.Errorf("diameter = %d, want %d", d, c.diam)
				}
			}
			if c.mustConnected && !c.g.IsConnected() {
				t.Error("not connected")
			}
		})
	}
}

func TestBarbellDiameterGrows(t *testing.T) {
	d1 := Barbell(4, 4).Diameter()
	d2 := Barbell(4, 20).Diameter()
	if d2 <= d1 {
		t.Errorf("barbell diameter should grow with path: %d vs %d", d1, d2)
	}
}

func TestRandomRegular(t *testing.T) {
	for _, c := range []struct{ n, d int }{{10, 3}, {20, 4}, {16, 5}, {64, 3}} {
		g, err := RandomRegular(c.n, c.d, 1)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", c.n, c.d, err)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != c.d {
				t.Fatalf("node %d degree %d, want %d", v, g.Degree(v), c.d)
			}
		}
	}
	if _, err := RandomRegular(5, 3, 1); err == nil {
		t.Error("odd n·d accepted")
	}
	if _, err := RandomRegular(4, 4, 1); err == nil {
		t.Error("d >= n accepted")
	}
	// Determinism.
	g1 := MustRandomRegular(30, 4, 77)
	g2 := MustRandomRegular(30, 4, 77)
	same := true
	g1.Edges(func(u, v int) {
		if !g2.HasEdge(u, v) {
			same = false
		}
	})
	if !same || g1.M() != g2.M() {
		t.Error("RandomRegular not deterministic for fixed seed")
	}
}

func TestGNPDeterministicAndSimple(t *testing.T) {
	g1 := GNP(40, 0.2, 5)
	g2 := GNP(40, 0.2, 5)
	if g1.M() != g2.M() {
		t.Error("GNP not deterministic")
	}
	g3 := GNP(40, 0.2, 6)
	if g3.M() == g1.M() {
		t.Log("different seeds gave same edge count (possible but unlikely)")
	}
	if g := GNP(30, 0, 1); g.M() != 0 {
		t.Error("GNP(p=0) has edges")
	}
	if g := GNP(10, 1, 1); g.M() != 45 {
		t.Error("GNP(p=1) not complete")
	}
}

func TestChungLuPowerLaw(t *testing.T) {
	w := PowerLawWeights(100, 2.5, 4)
	g := ChungLu(w, 3)
	if g.N() != 100 {
		t.Fatalf("N = %d", g.N())
	}
	// Average degree should be within a factor 2 of the target.
	avg := float64(2*g.M()) / 100
	if avg < 1 || avg > 10 {
		t.Errorf("average degree %v far from target 4", avg)
	}
}

// TestChungLuTinyProbabilities pins the Log1p fix in the skipping
// sampler: pair probabilities below one ulp of 1.0 (log(1-p) would
// round to 0 and the geometric skip to -Inf) must terminate the row
// cleanly instead of indexing out of range.
func TestChungLuTinyProbabilities(t *testing.T) {
	weights := make([]float64, 2000)
	for i := range weights {
		weights[i] = 1e-7
	}
	weights[0] = 1e6
	g := ChungLu(weights, 5)
	if g.N() != 2000 {
		t.Fatalf("N = %d", g.N())
	}
	// Edges between two 1e-7-weight nodes have p ~ 1e-20; none should
	// realistically appear, and none may crash the sampler.
	g.Edges(func(u, v int) {
		if u != 0 && v != 0 {
			t.Fatalf("implausible edge (%d,%d) between tiny-weight nodes", u, v)
		}
	})
}

func TestRandomGeometric(t *testing.T) {
	g := RandomGeometric(60, 0.25, 7)
	if g.N() != 60 {
		t.Fatalf("N = %d", g.N())
	}
	// Deterministic in seed.
	g2 := RandomGeometric(60, 0.25, 7)
	if g.M() != g2.M() {
		t.Error("RandomGeometric not deterministic")
	}
	// Radius 0 → empty; radius √2 → complete.
	if RandomGeometric(20, 0, 1).M() != 0 {
		t.Error("radius 0 produced edges")
	}
	if RandomGeometric(10, 1.5, 1).M() != 45 {
		t.Error("radius √2 not complete")
	}
	// Monotone in radius.
	if RandomGeometric(40, 0.1, 3).M() > RandomGeometric(40, 0.3, 3).M() {
		t.Error("edge count not monotone in radius")
	}
}

func TestCirculant(t *testing.T) {
	g := Circulant(10, []int{1, 3})
	if g.MaxDegree() != 4 {
		t.Errorf("Δ = %d, want 4", g.MaxDegree())
	}
	if !g.IsConnected() {
		t.Error("circulant not connected")
	}
	// Offset n/2 must not create duplicates.
	g2 := Circulant(8, []int{4})
	if g2.M() != 4 {
		t.Errorf("C8(4) has %d edges, want 4", g2.M())
	}
}

func TestBFSAndDiameter(t *testing.T) {
	g := Path(6)
	dist, parent := g.BFS(0)
	for v := 0; v < 6; v++ {
		if dist[v] != v {
			t.Errorf("dist[%d] = %d", v, dist[v])
		}
	}
	if parent[0] != -1 || parent[3] != 2 {
		t.Errorf("parents wrong: %v", parent)
	}
	if g.Eccentricity(2) != 3 {
		t.Errorf("ecc(2) = %d", g.Eccentricity(2))
	}
	// Disconnected graph.
	g2, _ := FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	if g2.Diameter() != -1 {
		t.Error("disconnected diameter should be -1")
	}
	if g2.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	comps := g2.ConnectedComponents()
	if len(comps) != 2 || len(comps[0]) != 2 {
		t.Errorf("components wrong: %v", comps)
	}
}

func TestComponentCount(t *testing.T) {
	for _, g := range []*Graph{
		Path(9), Cycle(12), Star(7), Grid2D(4, 5), GNP(40, 0.05, 3),
		NewBuilder(6).Build(), NewBuilder(0).Build(),
		Barbell(5, 4), Caveman(4, 3),
	} {
		if got, want := g.ComponentCount(), len(g.ConnectedComponents()); got != want {
			t.Errorf("n=%d: ComponentCount=%d, ConnectedComponents yields %d", g.N(), got, want)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(6)
	sub, orig := g.InducedSubgraph([]int{0, 1, 2, 4})
	if sub.N() != 4 {
		t.Fatalf("N = %d", sub.N())
	}
	if sub.M() != 2 { // edges 0-1, 1-2; node 4 isolated
		t.Errorf("M = %d, want 2", sub.M())
	}
	if orig[3] != 4 {
		t.Errorf("orig mapping wrong: %v", orig)
	}
	// Duplicates are dropped.
	sub2, orig2 := g.InducedSubgraph([]int{3, 3, 2})
	if sub2.N() != 2 || len(orig2) != 2 {
		t.Error("duplicate nodes not deduplicated")
	}
}

func TestDegeneracy(t *testing.T) {
	if d := BinaryTree(15).Degeneracy(); d != 1 {
		t.Errorf("tree degeneracy = %d, want 1", d)
	}
	if d := Complete(6).Degeneracy(); d != 5 {
		t.Errorf("K6 degeneracy = %d, want 5", d)
	}
	if d := Cycle(8).Degeneracy(); d != 2 {
		t.Errorf("C8 degeneracy = %d, want 2", d)
	}
}

func TestColoringCheckers(t *testing.T) {
	g := Cycle(4)
	good := []uint32{0, 1, 0, 1}
	bad := []uint32{0, 1, 1, 0}
	if !g.IsProperColoring(good) {
		t.Error("proper coloring rejected")
	}
	if g.IsProperColoring(bad) {
		t.Error("improper coloring accepted")
	}
	if c := g.CountConflicts(bad); c != 2 { // edges (1,2) and (3,0)
		t.Errorf("conflicts = %d, want 2", c)
	}
	if g.IsProperColoring([]uint32{0, 1}) {
		t.Error("short color slice accepted")
	}
}

func TestGNPHandshakeQuick(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%30 + 2
		g := GNP(n, 0.3, seed)
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
