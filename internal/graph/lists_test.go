package graph

import (
	"testing"
	"testing/quick"
)

func TestDeltaPlusOneInstance(t *testing.T) {
	g := Star(6)
	inst := DeltaPlusOneInstance(g)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.C != 6 {
		t.Errorf("C = %d, want 6", inst.C)
	}
	if len(inst.Lists[0]) != 6 {
		t.Errorf("center list size %d, want 6", len(inst.Lists[0]))
	}
	if len(inst.Lists[1]) != 2 {
		t.Errorf("leaf list size %d, want 2", len(inst.Lists[1]))
	}
}

func TestRandomListInstance(t *testing.T) {
	g := MustRandomRegular(20, 4, 9)
	inst, err := RandomListInstance(g, 32, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	// Too small a color space must error.
	if _, err := RandomListInstance(g, 4, 0, 5); err == nil {
		t.Error("C < Δ+1 accepted")
	}
	// Deterministic in seed.
	inst2, _ := RandomListInstance(g, 32, 0, 5)
	for v := range inst.Lists {
		if len(inst.Lists[v]) != len(inst2.Lists[v]) {
			t.Fatal("RandomListInstance not deterministic")
		}
		for i := range inst.Lists[v] {
			if inst.Lists[v][i] != inst2.Lists[v][i] {
				t.Fatal("RandomListInstance not deterministic")
			}
		}
	}
}

func TestShiftedListInstance(t *testing.T) {
	g := Cycle(8)
	inst, err := ShiftedListInstance(g, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ShiftedListInstance(g, 2, 1); err == nil {
		t.Error("too-small color space accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Path(4)
	inst := DeltaPlusOneInstance(g)

	short := *inst
	short.Lists = append([][]uint32{}, inst.Lists...)
	short.Lists[1] = []uint32{0} // deg(1)=2 needs 3 colors
	if short.Validate() == nil {
		t.Error("short list accepted")
	}

	dup := *inst
	dup.Lists = append([][]uint32{}, inst.Lists...)
	dup.Lists[0] = []uint32{1, 1}
	if dup.Validate() == nil {
		t.Error("duplicate colors accepted")
	}

	out := *inst
	out.Lists = append([][]uint32{}, inst.Lists...)
	out.Lists[0] = []uint32{0, 99}
	if out.Validate() == nil {
		t.Error("out-of-space color accepted")
	}

	bad := Instance{G: nil}
	if bad.Validate() == nil {
		t.Error("nil graph accepted")
	}
}

func TestGreedyAlwaysSucceeds(t *testing.T) {
	graphs := []*Graph{
		Path(12), Cycle(9), Complete(7), Star(10), Grid2D(4, 5),
		MustRandomRegular(24, 5, 3), GNP(30, 0.3, 8), Caveman(3, 4),
	}
	for gi, g := range graphs {
		inst := DeltaPlusOneInstance(g)
		colors := inst.Greedy()
		if err := inst.VerifyColoring(colors); err != nil {
			t.Errorf("graph %d: greedy coloring invalid: %v", gi, err)
		}
	}
}

func TestGreedyOnRandomLists(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%20 + 5
		g := GNP(n, 0.4, seed)
		inst, err := RandomListInstance(g, uint32(g.MaxDegree()+8), 2, seed+1)
		if err != nil {
			return false
		}
		return inst.VerifyColoring(inst.Greedy()) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestVerifyColoringErrors(t *testing.T) {
	g := Path(3)
	inst := DeltaPlusOneInstance(g)
	if inst.VerifyColoring([]uint32{0}) == nil {
		t.Error("wrong length accepted")
	}
	// Color not in list: node 0 has list {0,1}, assign 5.
	if inst.VerifyColoring([]uint32{5, 0, 1}) == nil {
		t.Error("off-list color accepted")
	}
	// Monochromatic edge.
	if inst.VerifyColoring([]uint32{1, 1, 0}) == nil {
		t.Error("monochromatic edge accepted")
	}
	// Valid coloring passes.
	if err := inst.VerifyColoring([]uint32{0, 1, 0}); err != nil {
		t.Errorf("valid coloring rejected: %v", err)
	}
}
