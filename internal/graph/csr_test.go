package graph

// Differential suite for the CSR substrate: every graph the counting-
// sort Builder produces is compared field by field against a retained
// reference builder that constructs per-node adjacency slices the way
// the pre-CSR implementation did (append per endpoint, comparison-sort
// per row). Adjacency, degrees, Δ, HasEdge, and the edge-ID enumeration
// must agree bit for bit on every input, fuzzed edge lists included.

import (
	"slices"
	"testing"
)

// refGraph is the pre-CSR reference layout: one sorted slice per node.
type refGraph struct {
	n   int
	m   int
	adj [][]int32
}

// buildReference constructs the reference adjacency from an edge list,
// mirroring the original per-node-slice Builder.Build.
func buildReference(n int, edges [][2]int) *refGraph {
	deg := make([]int, n)
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		adj[v] = make([]int32, 0, deg[v])
	}
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], int32(e[1]))
		adj[e[1]] = append(adj[e[1]], int32(e[0]))
	}
	for v := 0; v < n; v++ {
		slices.Sort(adj[v])
	}
	return &refGraph{n: n, m: len(edges), adj: adj}
}

// checkAgainstReference pins the CSR graph to the reference: shape,
// per-node adjacency (= arena subslices), cached Δ, HasEdge on a probe
// set, and the edge-ID enumeration invariants.
func checkAgainstReference(t *testing.T, g *Graph, ref *refGraph) {
	t.Helper()
	if g.N() != ref.n || g.M() != ref.m {
		t.Fatalf("shape (%d,%d) != reference (%d,%d)", g.N(), g.M(), ref.n, ref.m)
	}
	if g.NumArcs() != 2*ref.m {
		t.Fatalf("NumArcs %d != 2m = %d", g.NumArcs(), 2*ref.m)
	}
	off, nbr := g.CSR()
	if len(off) != ref.n+1 || len(nbr) != 2*ref.m {
		t.Fatalf("CSR array lengths (%d,%d) wrong for n=%d m=%d", len(off), len(nbr), ref.n, ref.m)
	}
	maxDeg := 0
	for v := 0; v < ref.n; v++ {
		want := ref.adj[v]
		if len(want) > maxDeg {
			maxDeg = len(want)
		}
		if g.Degree(v) != len(want) {
			t.Fatalf("Degree(%d) = %d, reference %d", v, g.Degree(v), len(want))
		}
		got := g.Neighbors(v)
		if !slices.Equal(got, want) {
			t.Fatalf("Neighbors(%d) = %v, reference %v", v, got, want)
		}
		// Edge-ID enumeration: eid(v,i) = ArcBase(v)+i indexes the arena
		// at exactly this adjacency entry, and ArcBase chains the offsets.
		if g.ArcBase(v) != off[v] {
			t.Fatalf("ArcBase(%d) = %d, offset table says %d", v, g.ArcBase(v), off[v])
		}
		for i := range want {
			if eid := int(g.ArcBase(v)) + i; nbr[eid] != want[i] {
				t.Fatalf("arena[eid(%d,%d)=%d] = %d, reference %d", v, i, eid, nbr[eid], want[i])
			}
		}
		if int(off[v+1]-off[v]) != len(want) {
			t.Fatalf("offset span of %d is %d, reference degree %d", v, off[v+1]-off[v], len(want))
		}
		// HasEdge agrees with reference membership for every neighbor and
		// for a non-neighbor probe.
		for _, w := range want {
			if !g.HasEdge(v, int(w)) {
				t.Fatalf("HasEdge(%d,%d) = false on a reference edge", v, w)
			}
		}
		if !SortedHas(want, v) && g.HasEdge(v, v) {
			t.Fatalf("HasEdge(%d,%d) self-probe true", v, v)
		}
	}
	if g.MaxDegree() != maxDeg {
		t.Fatalf("cached MaxDegree %d != reference %d", g.MaxDegree(), maxDeg)
	}
}

// edgesOf reconstructs the u<v edge list of a built graph.
func edgesOf(g *Graph) [][2]int {
	var edges [][2]int
	g.Edges(func(u, v int) { edges = append(edges, [2]int{u, v}) })
	return edges
}

func TestCSRMatchesReferenceOnGenerators(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"Path17", Path(17)},
		{"Cycle9", Cycle(9)},
		{"Complete8", Complete(8)},
		{"Star12", Star(12)},
		{"Grid5x7", Grid2D(5, 7)},
		{"Torus4x5", Torus2D(4, 5)},
		{"Hypercube5", Hypercube(5)},
		{"BinaryTree20", BinaryTree(20)},
		{"Caveman3x4", Caveman(3, 4)},
		{"Barbell4_3", Barbell(4, 3)},
		{"Circulant12", Circulant(12, []int{1, 3, 6})},
		{"GNP60", GNP(60, 0.15, 9)},
		{"ChungLu80", ChungLu(PowerLawWeights(80, 2.5, 5), 4)},
		{"Regular24", MustRandomRegular(24, 5, 2)},
		{"Geometric40", RandomGeometric(40, 0.3, 11)},
		{"Empty0", func() *Graph { return NewBuilder(0).Build() }()},
		{"Isolated5", func() *Graph { return NewBuilder(5).Build() }()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkAgainstReference(t, c.g, buildReference(c.g.N(), edgesOf(c.g)))
		})
	}
}

// TestCSRCheckedUncheckedEquivalent pins that the checked AddEdge path
// and a mixed checked/unchecked insertion order produce the identical
// canonical CSR arrays: the counting sort is order-independent.
func TestCSRCheckedUncheckedEquivalent(t *testing.T) {
	edges := [][2]int{{4, 1}, {0, 5}, {2, 3}, {1, 0}, {5, 4}, {3, 0}, {2, 5}}
	checked := NewBuilder(6)
	for _, e := range edges {
		checked.MustAddEdge(e[0], e[1])
	}
	mixed := NewBuilder(6)
	for i, e := range edges {
		if i%2 == 0 {
			mixed.add(e[1], e[0]) // reversed and unchecked
		} else {
			if mixed.HasEdge(e[0], e[1]) {
				t.Fatalf("HasEdge(%v) true before insertion", e)
			}
			mixed.MustAddEdge(e[0], e[1])
		}
	}
	g1, g2 := checked.Build(), mixed.Build()
	if !g1.Equal(g2) {
		t.Fatal("checked and mixed insertion orders built different CSR arrays")
	}
}

// TestGraphEqual pins the exact-equality helper the snapshot round-trip
// tests rely on: equality is canonical-layout identity, so it holds
// across insertion orders and breaks on any node- or edge-set change.
func TestGraphEqual(t *testing.T) {
	g := GNP(40, 0.2, 7)
	same, err := FromEdges(g.N(), edgesOf(g))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(same) || !same.Equal(g) {
		t.Fatal("Equal false on a rebuilt identical graph")
	}
	if !g.Equal(g) {
		t.Fatal("Equal not reflexive")
	}
	edges := edgesOf(g)
	fewer, err := FromEdges(g.N(), edges[:len(edges)-1])
	if err != nil {
		t.Fatal(err)
	}
	if g.Equal(fewer) {
		t.Fatal("Equal true after dropping an edge")
	}
	wider, err := FromEdges(g.N()+1, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g.Equal(wider) {
		t.Fatal("Equal true across different node counts")
	}
	var nilG *Graph
	if nilG.Equal(g) || g.Equal(nilG) {
		t.Fatal("Equal true against nil")
	}
	if !nilG.Equal(nil) {
		t.Fatal("Equal(nil, nil) false")
	}
}

// TestFromCSRRoundTripAndRejects pins the validated CSR constructor:
// every generator graph round-trips through its raw arrays into an Equal
// graph, and malformed arrays return errors instead of corrupt graphs.
func TestFromCSRRoundTripAndRejects(t *testing.T) {
	for _, g := range []*Graph{Path(9), Star(7), GNP(30, 0.2, 3), NewBuilder(0).Build(), NewBuilder(4).Build()} {
		off, nbr := g.CSR()
		got, err := FromCSR(slices.Clone(off), slices.Clone(nbr))
		if err != nil {
			t.Fatalf("FromCSR rejected a valid graph: %v", err)
		}
		if !g.Equal(got) {
			t.Fatal("FromCSR round trip produced a different graph")
		}
		if got.MaxDegree() != g.MaxDegree() {
			t.Fatalf("FromCSR MaxDegree %d != %d", got.MaxDegree(), g.MaxDegree())
		}
	}
	bad := []struct {
		name string
		off  []int32
		nbr  []int32
	}{
		{"empty-off", nil, nil},
		{"nonzero-start", []int32{1, 1}, nil},
		{"decreasing-off", []int32{0, 2, 1, 4}, []int32{1, 2, 0, 0}},
		{"bad-end", []int32{0, 1}, []int32{0, 0}},
		{"odd-arcs", []int32{0, 1, 1}, []int32{1}},
		{"self-loop", []int32{0, 1, 2}, []int32{0, 0}},
		{"out-of-range", []int32{0, 1, 2}, []int32{5, 0}},
		{"unsorted-row", []int32{0, 2, 3, 5}, []int32{2, 1, 0, 0, 0}},
		{"duplicate-arc", []int32{0, 2, 4}, []int32{1, 1, 0, 0}},
		{"asymmetric", []int32{0, 1, 2, 2}, []int32{1, 2}},
	}
	for _, c := range bad {
		if _, err := FromCSR(c.off, c.nbr); err == nil {
			t.Fatalf("FromCSR accepted malformed input %q", c.name)
		}
	}
}

// TestBuildRejectsUncheckedDuplicate pins the Build-time safety net of
// the unchecked path: a generator that violates its duplicate-free
// promise panics at Build instead of producing a corrupt graph.
func TestBuildRejectsUncheckedDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build accepted a duplicate unchecked edge")
		}
	}()
	b := NewBuilder(3)
	b.add(0, 1)
	b.add(1, 0)
	b.Build()
}
