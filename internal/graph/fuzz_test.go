package graph

import (
	"slices"
	"testing"
)

// checkInvariants asserts the structural invariants every Graph must
// hold: sorted adjacency, no self-loops, no duplicate edges, symmetric
// adjacency, and degree sum equal to twice the edge count.
func checkInvariants(t *testing.T, g *Graph) {
	t.Helper()
	degSum := 0
	for v := 0; v < g.N(); v++ {
		adj := g.Neighbors(v)
		degSum += len(adj)
		for i, w := range adj {
			if int(w) == v {
				t.Fatalf("self-loop at node %d", v)
			}
			if int(w) < 0 || int(w) >= g.N() {
				t.Fatalf("node %d has out-of-range neighbor %d", v, w)
			}
			if i > 0 && adj[i-1] >= w {
				t.Fatalf("adjacency of %d not strictly sorted: %v", v, adj)
			}
			if !g.HasEdge(int(w), v) {
				t.Fatalf("edge (%d,%d) not symmetric", v, w)
			}
		}
	}
	if degSum != 2*g.M() {
		t.Fatalf("degree sum %d != 2·M = %d", degSum, 2*g.M())
	}
}

// FuzzBuilder feeds arbitrary byte streams through the Builder as edge
// lists: invalid edges must error (never panic), and whatever Build
// produces must satisfy every graph invariant.
func FuzzBuilder(f *testing.F) {
	f.Add(uint8(5), []byte{0, 1, 1, 2, 2, 3, 3, 4, 4, 0})
	f.Add(uint8(3), []byte{0, 1, 0, 1}) // duplicate
	f.Add(uint8(2), []byte{1, 1})       // self-loop
	f.Add(uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, n uint8, edges []byte) {
		nn := int(n % 65)
		b := NewBuilder(nn)
		var accepted [][2]int
		for i := 0; i+1 < len(edges) && i < 256; i += 2 {
			u, v := int(edges[i]), int(edges[i+1])
			err := b.AddEdge(u, v)
			if err == nil {
				accepted = append(accepted, [2]int{u, v})
			} else if u < nn && v < nn && u != v && !dupeErr(err) {
				// The only legitimate error for in-range distinct endpoints
				// is a duplicate.
				t.Fatalf("AddEdge(%d,%d) on n=%d failed unexpectedly: %v", u, v, nn, err)
			}
		}
		g := b.Build()
		if g.N() != nn {
			t.Fatalf("built %d nodes, want %d", g.N(), nn)
		}
		if g.M() != len(accepted) {
			t.Fatalf("built %d edges, accepted %d", g.M(), len(accepted))
		}
		checkInvariants(t, g)
		// CSR differential: the counting-sort build must match the
		// retained per-node-slice reference builder bit for bit on the
		// same accepted edge list (adjacency, degrees, Δ, HasEdge,
		// edge-ID enumeration).
		checkAgainstReference(t, g, buildReference(nn, accepted))
	})
}

func dupeErr(err error) bool {
	return err != nil && containsStr(err.Error(), "duplicate")
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// FuzzGNP drives the O(n+m) GNP sampler across the whole parameter
// space: every produced graph must satisfy the invariants, and the
// sampler must be deterministic in its seed.
func FuzzGNP(f *testing.F) {
	f.Add(uint8(16), uint16(500), uint64(1))
	f.Add(uint8(1), uint16(0), uint64(7))
	f.Add(uint8(64), uint16(1000), uint64(3))
	f.Fuzz(func(t *testing.T, n uint8, pRaw uint16, seed uint64) {
		nn := int(n % 129)
		p := float64(pRaw%1001) / 1000
		g := GNP(nn, p, seed)
		if g.N() != nn {
			t.Fatalf("GNP built %d nodes, want %d", g.N(), nn)
		}
		checkInvariants(t, g)
		g2 := GNP(nn, p, seed)
		if g2.M() != g.M() {
			t.Fatalf("GNP not deterministic: %d vs %d edges", g.M(), g2.M())
		}
		for v := 0; v < nn; v++ {
			a, b := g.Neighbors(v), g2.Neighbors(v)
			if len(a) != len(b) {
				t.Fatalf("GNP not deterministic at node %d", v)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("GNP not deterministic at node %d", v)
				}
			}
		}
		// CSR round-trip: rebuilding from the graph's own edge
		// enumeration must reproduce the identical flat arrays (the
		// canonical form is insertion-order independent), and the
		// reference builder must agree with both.
		rt := NewBuilder(nn)
		g.Edges(func(u, v int) { rt.add(u, v) })
		g3 := rt.Build()
		off1, nbr1 := g.CSR()
		off3, nbr3 := g3.CSR()
		if !slices.Equal(off1, off3) || !slices.Equal(nbr1, nbr3) {
			t.Fatal("CSR round-trip through Edges changed the flat arrays")
		}
		checkAgainstReference(t, g, buildReference(nn, edgesOf(g)))
	})
}
