package graph

import (
	"slices"
	"strings"
	"testing"
)

// TestBuildCheckedReportsDuplicate pins the error-returning finalizer:
// a duplicate edge injected through the unchecked add path surfaces as
// an error from BuildChecked — the path graphstore ingest relies on to
// turn malformed user input into a diagnostic instead of a panic.
func TestBuildCheckedReportsDuplicate(t *testing.T) {
	b := NewBuilder(3)
	b.add(0, 1)
	b.add(1, 0)
	g, err := b.BuildChecked()
	if err == nil {
		t.Fatal("BuildChecked accepted a duplicate unchecked edge")
	}
	if g != nil {
		t.Fatal("BuildChecked returned a graph alongside its error")
	}
	if !strings.Contains(err.Error(), "duplicate edge") {
		t.Fatalf("BuildChecked error %q does not name the duplicate", err)
	}
}

// TestBuildCheckedValid confirms the checked finalizer produces the same
// graph as Build on valid input.
func TestBuildCheckedValid(t *testing.T) {
	mk := func() *Builder {
		b := NewBuilder(5)
		for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}} {
			if err := b.AddEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		return b
	}
	want := mk().Build()
	got, err := mk().BuildChecked()
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatal("BuildChecked and Build disagree on a valid edge set")
	}
}

// TestFromCSRUncheckedAdopts pins the trusted adopting constructor: the
// raw arrays of a validated graph round-trip into an Equal graph with
// the same Δ, and the slices are adopted, not copied.
func TestFromCSRUncheckedAdopts(t *testing.T) {
	for _, g := range []*Graph{Path(9), Star(7), GNP(30, 0.2, 3), NewBuilder(0).Build(), NewBuilder(4).Build()} {
		off, nbr := g.CSR()
		off, nbr = slices.Clone(off), slices.Clone(nbr)
		got, err := FromCSRUnchecked(off, nbr)
		if err != nil {
			t.Fatalf("FromCSRUnchecked rejected a valid graph: %v", err)
		}
		if !g.Equal(got) || got.MaxDegree() != g.MaxDegree() {
			t.Fatal("FromCSRUnchecked round trip produced a different graph")
		}
		goff, gnbr := got.CSR()
		if (len(off) > 0 && &goff[0] != &off[0]) || (len(nbr) > 0 && &gnbr[0] != &nbr[0]) {
			t.Fatal("FromCSRUnchecked copied its input instead of adopting it")
		}
	}
}

// TestFromCSRUncheckedShapeChecks pins the memory-safety floor the
// trusted constructor still enforces: broken offset tables are rejected
// so Neighbors can never slice out of bounds.
func TestFromCSRUncheckedShapeChecks(t *testing.T) {
	bad := []struct {
		name string
		off  []int32
		nbr  []int32
	}{
		{"empty-off", nil, nil},
		{"nonzero-start", []int32{1, 1}, nil},
		{"decreasing-off", []int32{0, 2, 1, 4}, []int32{1, 2, 0, 0}},
		{"bad-end", []int32{0, 1}, []int32{0, 0}},
		{"odd-arcs", []int32{0, 1, 1}, []int32{1}},
	}
	for _, c := range bad {
		if _, err := FromCSRUnchecked(c.off, c.nbr); err == nil {
			t.Fatalf("FromCSRUnchecked accepted malformed offsets %q", c.name)
		}
	}
}

// TestCheckSymmetryWitness exercises the linear transpose check
// directly on the asymmetry shapes the old binary-search sweep caught,
// including the skewed-in-degree case where a row cursor would run past
// its row without the bound check.
func TestCheckSymmetryWitness(t *testing.T) {
	bad := []struct {
		name string
		off  []int32
		nbr  []int32
	}{
		// arc (1,2) with its reverse missing (node 2's row is empty).
		{"missing-reverse", []int32{0, 1, 2, 2}, []int32{1, 2}},
		// all arcs point at node 2, whose row is empty: cursor bound trips.
		{"skewed-indegree", []int32{0, 1, 2, 2}, []int32{2, 2}},
		// swapped partners: 0→1/1→0 missing, 0↔1 vs 2↔3 crossed.
		{"crossed-pairs", []int32{0, 1, 2, 3, 4}, []int32{1, 2, 3, 0}},
	}
	for _, c := range bad {
		if err := checkSymmetry(c.off, c.nbr); err == nil {
			t.Fatalf("checkSymmetry accepted asymmetric arcs %q", c.name)
		}
	}
	g := GNP(40, 0.3, 9)
	off, nbr := g.CSR()
	if err := checkSymmetry(off, nbr); err != nil {
		t.Fatalf("checkSymmetry rejected a valid graph: %v", err)
	}
}
