package graph

import (
	"fmt"

	"smallbandwidth/internal/prng"
)

// Instance is a (degree+1)-list-coloring instance: a graph, a color space
// [C] = {0,…,C−1}, and per-node color lists L(v) ⊆ [C] with
// |L(v)| ≥ deg(v)+1. Lists are sorted ascending and duplicate-free.
//
// This is the common input type of every coloring algorithm in the
// repository (CONGEST, congested clique, and MPC).
type Instance struct {
	G     *Graph
	C     uint32     // color space size; colors are in [0, C)
	Lists [][]uint32 // Lists[v] sorted ascending, no duplicates
}

// Validate checks the structural invariants of the instance: list sizes,
// sortedness, duplicate-freeness, and color-space membership.
func (inst *Instance) Validate() error {
	if inst.G == nil {
		return fmt.Errorf("instance: nil graph")
	}
	if len(inst.Lists) != inst.G.N() {
		return fmt.Errorf("instance: %d lists for %d nodes", len(inst.Lists), inst.G.N())
	}
	if inst.C == 0 {
		return fmt.Errorf("instance: empty color space")
	}
	for v, list := range inst.Lists {
		if len(list) < inst.G.Degree(v)+1 {
			return fmt.Errorf("instance: node %d has list size %d < deg+1 = %d",
				v, len(list), inst.G.Degree(v)+1)
		}
		for i, c := range list {
			if c >= inst.C {
				return fmt.Errorf("instance: node %d color %d outside color space [0,%d)", v, c, inst.C)
			}
			if i > 0 && list[i-1] >= c {
				return fmt.Errorf("instance: node %d list not strictly sorted at index %d", v, i)
			}
		}
	}
	return nil
}

// VerifyColoring checks that colors is a proper list coloring of the
// instance: every node has a color from its own list and no edge is
// monochromatic.
func (inst *Instance) VerifyColoring(colors []uint32) error {
	if len(colors) != inst.G.N() {
		return fmt.Errorf("coloring: %d colors for %d nodes", len(colors), inst.G.N())
	}
	for v, c := range colors {
		if !containsColor(inst.Lists[v], c) {
			return fmt.Errorf("coloring: node %d assigned color %d not in its list", v, c)
		}
	}
	var conflict error
	inst.G.Edges(func(u, v int) {
		if conflict == nil && colors[u] == colors[v] {
			conflict = fmt.Errorf("coloring: edge (%d,%d) monochromatic with color %d", u, v, colors[u])
		}
	})
	return conflict
}

func containsColor(list []uint32, c uint32) bool {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(list) && list[lo] == c
}

// DeltaPlusOneInstance builds the classic (Δ+1)-coloring instance: color
// space [Δ+1] and every node's list is {0,…,deg(v)} (the reduction of
// Observation 4.1: the first deg(v)+1 colors).
func DeltaPlusOneInstance(g *Graph) *Instance {
	c := uint32(g.MaxDegree() + 1)
	lists := make([][]uint32, g.N())
	for v := range lists {
		l := make([]uint32, g.Degree(v)+1)
		for i := range l {
			l[i] = uint32(i)
		}
		lists[v] = l
	}
	return &Instance{G: g, C: c, Lists: lists}
}

// RandomListInstance builds a (degree+1)-list instance where each node's
// list is a uniformly random (deg(v)+1+slack)-subset of [C], drawn
// deterministically from seed. C must be at least Δ+1+slack.
func RandomListInstance(g *Graph, c uint32, slack int, seed uint64) (*Instance, error) {
	if int(c) < g.MaxDegree()+1+slack {
		return nil, fmt.Errorf("instance: color space %d too small for Δ+1+slack = %d",
			c, g.MaxDegree()+1+slack)
	}
	src := prng.New(seed)
	lists := make([][]uint32, g.N())
	for v := range lists {
		k := g.Degree(v) + 1 + slack
		lists[v] = randomSubset(src, c, k)
	}
	inst := &Instance{G: g, C: c, Lists: lists}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}

// randomSubset returns a sorted uniform k-subset of [0,c) via Floyd's
// algorithm.
func randomSubset(src *prng.Source, c uint32, k int) []uint32 {
	chosen := make(map[uint32]struct{}, k)
	for j := int(c) - k; j < int(c); j++ {
		t := uint32(src.Intn(j + 1))
		if _, ok := chosen[t]; ok {
			chosen[uint32(j)] = struct{}{}
		} else {
			chosen[t] = struct{}{}
		}
	}
	out := make([]uint32, 0, k)
	//sbw:orderinvariant key collection only; out is sorted before being returned
	for v := range chosen {
		out = append(out, v)
	}
	sortUint32(out)
	return out
}

func sortUint32(a []uint32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// ShiftedListInstance builds an adversarial instance where node v's list
// is the contiguous window {v·stride, …, v·stride+deg(v)} mod C, forcing
// heavy list overlap between neighbors for small stride and near-disjoint
// lists for large stride.
func ShiftedListInstance(g *Graph, c uint32, stride int) (*Instance, error) {
	lists := make([][]uint32, g.N())
	for v := range lists {
		k := g.Degree(v) + 1
		if int(c) < k {
			return nil, fmt.Errorf("instance: color space %d smaller than deg+1 = %d at node %d", c, k, v)
		}
		l := make([]uint32, k)
		base := uint32(v*stride) % c
		for i := range l {
			l[i] = (base + uint32(i)) % c
		}
		sortUint32(l)
		// The window can wrap and collide only if k > C, excluded above.
		lists[v] = l
	}
	inst := &Instance{G: g, C: c, Lists: lists}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}

// Greedy colors the instance sequentially in node order, always picking
// the smallest available list color. It is the correctness oracle and the
// sequential baseline: it always succeeds on valid (degree+1)-list
// instances.
func (inst *Instance) Greedy() []uint32 {
	colors := make([]uint32, inst.G.N())
	assigned := make([]bool, inst.G.N())
	for v := 0; v < inst.G.N(); v++ {
		taken := make(map[uint32]struct{})
		for _, w := range inst.G.Neighbors(v) {
			if assigned[w] {
				taken[colors[w]] = struct{}{}
			}
		}
		found := false
		for _, c := range inst.Lists[v] {
			if _, bad := taken[c]; !bad {
				colors[v] = c
				found = true
				break
			}
		}
		if !found {
			// Impossible on valid instances: |L(v)| ≥ deg(v)+1.
			panic("graph: greedy failed on a valid (degree+1)-list instance")
		}
		assigned[v] = true
	}
	return colors
}
