package graph

// Construction benchmarks for the CSR substrate: the counting-sort
// builder against the retained per-node-slice reference builder on the
// same million-node edge list. Run with
//
//	go test -run '^$' -bench BenchmarkBuild -benchtime 1x -benchmem ./internal/graph
//
// The allocation column is the point: the reference builder makes one
// slice per node plus per-row sorts; the CSR builder makes a handful of
// arenas regardless of n (docs/PERF.md records the measured numbers).

import "testing"

// benchEdgeList materializes the edge list of the million-node scale
// topology once per benchmark process.
var benchEdges [][2]int

func scaleEdgeList(b *testing.B) (int, [][2]int) {
	const n = 1_000_000
	if benchEdges == nil {
		g := ChungLu(PowerLawWeights(n, 2.5, 4), 1)
		benchEdges = make([][2]int, 0, g.M())
		g.Edges(func(u, v int) { benchEdges = append(benchEdges, [2]int{u, v}) })
	}
	return n, benchEdges
}

func BenchmarkBuildCSR1e6(b *testing.B) {
	n, edges := scaleEdgeList(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(n)
		bld.Grow(len(edges))
		for _, e := range edges {
			bld.add(e[0], e[1])
		}
		g := bld.Build()
		if g.M() != len(edges) {
			b.Fatal("bad build")
		}
	}
}

func BenchmarkBuildReference1e6(b *testing.B) {
	n, edges := scaleEdgeList(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := buildReference(n, edges)
		if ref.m != len(edges) {
			b.Fatal("bad build")
		}
	}
}
