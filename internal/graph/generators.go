package graph

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"smallbandwidth/internal/prng"
)

// The deterministic generators below feed edges through the Builder's
// unchecked add: their edge streams are duplicate-free by construction
// (each unordered pair is emitted at most once), so they skip the
// hash-set membership test and the build stays two counting-sort passes
// over flat arrays — no per-node allocation at any size. Generators that
// genuinely need membership queries (Circulant, Caveman's ring closure,
// RandomRegular's repair loop) use the checked path; the Builder keeps
// its duplicate set consistent across mixed checked/unchecked use.

// Path returns the path graph P_n (diameter n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.add(i, i+1)
	}
	return b.Build()
}

// Cycle returns the cycle graph C_n (n ≥ 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle requires n >= 3")
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.add(i, (i+1)%n)
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	b.Grow(n * (n - 1) / 2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.add(u, v)
		}
	}
	return b.Build()
}

// Star returns the star graph on n nodes with center 0.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.add(0, v)
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b}: nodes 0..a-1 on one side,
// a..a+b-1 on the other.
func CompleteBipartite(a, b int) *Graph {
	bld := NewBuilder(a + b)
	bld.Grow(a * b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			bld.add(u, v)
		}
	}
	return bld.Build()
}

// BinaryTree returns the complete-ish binary tree on n nodes with root 0
// (node i has children 2i+1 and 2i+2 when in range).
func BinaryTree(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		if l := 2*i + 1; l < n {
			b.add(i, l)
		}
		if r := 2*i + 2; r < n {
			b.add(i, r)
		}
	}
	return b.Build()
}

// Grid2D returns the rows×cols grid graph.
func Grid2D(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	b.Grow(2 * rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.add(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.add(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus2D returns the rows×cols torus (grid with wraparound); requires
// rows, cols ≥ 3 so that no duplicate edges arise.
func Torus2D(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: Torus2D requires rows, cols >= 3")
	}
	b := NewBuilder(rows * cols)
	b.Grow(2 * rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.add(id(r, c), id(r, (c+1)%cols))
			b.add(id(r, c), id((r+1)%rows, c))
		}
	}
	return b.Build()
}

// Hypercube returns the dim-dimensional hypercube graph on 2^dim nodes.
func Hypercube(dim int) *Graph {
	if dim < 0 || dim > 20 {
		panic("graph: Hypercube dimension out of range")
	}
	n := 1 << dim
	b := NewBuilder(n)
	b.Grow(n * dim / 2)
	for v := 0; v < n; v++ {
		for bit := 0; bit < dim; bit++ {
			w := v ^ (1 << bit)
			if w > v {
				b.add(v, w)
			}
		}
	}
	return b.Build()
}

// Circulant returns the circulant graph C_n(offsets): node i is adjacent
// to i±o (mod n) for each offset o. Duplicate edges (e.g. o = n/2 twice)
// are skipped. Circulants with spread offsets make decent expanders.
func Circulant(n int, offsets []int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for _, o := range offsets {
			j := (i + o) % n
			if j < 0 {
				j += n
			}
			if i != j && !b.HasEdge(i, j) {
				b.MustAddEdge(i, j)
			}
		}
	}
	return b.Build()
}

// Barbell returns two cliques of size k joined by a path of pathLen extra
// nodes. Total n = 2k + pathLen. High diameter with high-degree ends —
// the stress case for D-dependent round bounds.
func Barbell(k, pathLen int) *Graph {
	n := 2*k + pathLen
	b := NewBuilder(n)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			b.add(u, v)
		}
	}
	for u := k; u < 2*k; u++ {
		for v := u + 1; v < 2*k; v++ {
			b.add(u, v)
		}
	}
	// Path through nodes 2k .. 2k+pathLen-1 connecting node 0 and node k.
	prev := 0
	for i := 0; i < pathLen; i++ {
		b.add(prev, 2*k+i)
		prev = 2*k + i
	}
	b.add(prev, k)
	return b.Build()
}

// Caveman returns cliques of size k connected in a ring by single edges
// (a relaxed caveman graph): clusters clusters of k nodes each.
func Caveman(clusters, k int) *Graph {
	if clusters < 2 || k < 2 {
		panic("graph: Caveman requires clusters >= 2, k >= 2")
	}
	n := clusters * k
	b := NewBuilder(n)
	for c := 0; c < clusters; c++ {
		base := c * k
		for u := 0; u < k; u++ {
			for v := u + 1; v < k; v++ {
				b.add(base+u, base+v)
			}
		}
	}
	for c := 0; c < clusters; c++ {
		u := c*k + k - 1
		v := ((c + 1) % clusters) * k
		if !b.HasEdge(u, v) {
			b.MustAddEdge(u, v)
		}
	}
	return b.Build()
}

// GNP returns an Erdős–Rényi G(n,p) graph drawn deterministically from
// seed. Sampling uses geometric edge-skipping [Batagelj–Brandes 2005],
// so the cost is O(n + m) rather than O(n²), which makes 10⁶+-node
// sparse graphs practical benchmark inputs.
func GNP(n int, p float64, seed uint64) *Graph {
	b := NewBuilder(n)
	if n < 2 || p <= 0 {
		return b.Build()
	}
	if p >= 1 {
		return Complete(n)
	}
	src := prng.New(seed)
	lq := math.Log1p(-p) // log(1-p) < 0
	// Enumerate pairs (v, w) with w < v in row-major order, jumping ahead
	// by a geometric number of non-edges each step. w advances in int64:
	// a single skip can reach n² ≈ 10¹² for n = 10⁶, which overflows int
	// on 32-bit platforms; the reduction loop brings it below n before
	// it is used as a node ID.
	v, w := 1, int64(-1)
	for v < n {
		skip := math.Floor(math.Log1p(-src.Float64()) / lq)
		if skip > float64(n)*float64(n) {
			break
		}
		w += 1 + int64(skip)
		for w >= int64(v) && v < n {
			w -= int64(v)
			v++
		}
		if v < n {
			b.add(v, int(w))
		}
	}
	return b.Build()
}

// RandomRegular returns a random d-regular graph on n nodes via the
// configuration model with restarts (n·d must be even, d < n). The result
// is simple (no loops or multi-edges) and drawn deterministically from
// seed.
func RandomRegular(n, d int, seed uint64) (*Graph, error) {
	if d >= n {
		return nil, fmt.Errorf("graph: RandomRegular requires d < n (got d=%d n=%d)", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular requires n*d even (got n=%d d=%d)", n, d)
	}
	src := prng.New(seed)
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		src.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		type pair struct{ u, v int }
		edges := make([]pair, 0, n*d/2)
		for i := 0; i < len(stubs); i += 2 {
			edges = append(edges, pair{stubs[i], stubs[i+1]})
		}
		// Repair self-loops and duplicates by double-edge swaps instead of
		// restarting: swap a bad pair with a random good one; each swap
		// preserves all degrees.
		key := func(u, v int) uint64 { return edgeKey(u, v) }
		count := map[uint64]int{}
		isBad := func(p pair) bool { return p.u == p.v || count[key(p.u, p.v)] > 1 }
		for _, p := range edges {
			if p.u != p.v {
				count[key(p.u, p.v)]++
			}
		}
		ok := true
		for budget := 40 * len(edges); ; budget-- {
			badIdx := -1
			for i, p := range edges {
				if isBad(p) {
					badIdx = i
					break
				}
			}
			if badIdx == -1 {
				break
			}
			if budget <= 0 {
				ok = false
				break
			}
			j := src.Intn(len(edges))
			if j == badIdx {
				continue
			}
			a, b := edges[badIdx], edges[j]
			// Swap endpoints: (a.u,a.v),(b.u,b.v) → (a.u,b.v),(b.u,a.v).
			na, nb := pair{a.u, b.v}, pair{b.u, a.v}
			if na.u == na.v || nb.u == nb.v ||
				count[key(na.u, na.v)] > 0 || count[key(nb.u, nb.v)] > 0 {
				continue
			}
			if a.u != a.v {
				count[key(a.u, a.v)]--
			}
			if b.u != b.v {
				count[key(b.u, b.v)]--
			}
			count[key(na.u, na.v)]++
			count[key(nb.u, nb.v)]++
			edges[badIdx], edges[j] = na, nb
		}
		if !ok {
			continue
		}
		b := NewBuilder(n)
		valid := true
		for _, p := range edges {
			if err := b.AddEdge(p.u, p.v); err != nil {
				valid = false
				break
			}
		}
		if valid {
			return b.Build(), nil
		}
	}
	return nil, fmt.Errorf("graph: RandomRegular(n=%d,d=%d) failed after %d attempts", n, d, maxAttempts)
}

// MustRandomRegular is RandomRegular but panics on error; for use in
// examples and benchmarks with known-good parameters.
func MustRandomRegular(n, d int, seed uint64) *Graph {
	g, err := RandomRegular(n, d, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// RandomGeometric places n points uniformly in the unit square
// (deterministically from seed) and connects pairs within distance
// radius — the standard model for wireless interference graphs.
func RandomGeometric(n int, radius float64, seed uint64) *Graph {
	src := prng.New(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = src.Float64()
		ys[i] = src.Float64()
	}
	b := NewBuilder(n)
	r2 := radius * radius
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			if dx*dx+dy*dy <= r2 {
				b.add(u, v)
			}
		}
	}
	return b.Build()
}

// ChungLu returns a Chung–Lu random graph with the given expected-degree
// weights: edge {u,v} appears with probability min(1, w_u·w_v / Σw).
// Sampling uses the Miller–Hagberg weight-ordered geometric-skipping
// scheme [MH11]: nodes are visited in non-increasing weight order, and
// within a row the sampler jumps over rejected partners geometrically
// under an upper-bound probability that only decreases along the row, so
// the cost is O(n log n + m) rather than the Θ(n²) of pair-by-pair
// sampling — the construction path of the million-node scenario tier.
func ChungLu(weights []float64, seed uint64) *Graph {
	n := len(weights)
	b := NewBuilder(n)
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if n < 2 || total <= 0 {
		return b.Build()
	}
	// Visit nodes in non-increasing weight order (ties by ID, so the
	// graph is deterministic in (weights, seed)).
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortStableFunc(order, func(a, c int32) int {
		return cmp.Compare(weights[c], weights[a])
	})
	src := prng.New(seed)
	for i := 0; i < n-1; i++ {
		u := order[i]
		wu := weights[u]
		if wu <= 0 {
			break // all remaining weights are 0: no further edges possible
		}
		j := i + 1
		// p bounds every remaining pair probability in this row: weights
		// are non-increasing along order, so p only shrinks as j advances.
		p := math.Min(wu*weights[order[j]]/total, 1)
		for j < n && p > 0 {
			if p < 1 {
				r := src.Float64()
				if r <= 0 {
					break // log(0): infinite skip, row exhausted
				}
				// Log1p keeps the denominator finite for p below one ulp
				// of 1.0 (log(1-p) would round to log(1) = 0 and the skip
				// to -Inf); a tiny p then yields a huge positive skip and
				// the row breaks cleanly, as the distribution demands.
				skip := math.Floor(math.Log(r) / math.Log1p(-p))
				if skip >= float64(n-j) {
					break
				}
				j += int(skip)
			}
			q := math.Min(wu*weights[order[j]]/total, 1)
			if src.Float64() < q/p {
				b.add(int(u), int(order[j]))
			}
			p = q
			j++
		}
	}
	return b.Build()
}

// PowerLawWeights returns n weights w_i = c·(i+1)^(-1/(β-1)) scaled so the
// average is avgDeg; for use with ChungLu to get heavy-tailed degrees.
func PowerLawWeights(n int, beta, avgDeg float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), -1/(beta-1))
		sum += w[i]
	}
	scale := avgDeg * float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	return w
}
