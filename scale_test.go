package smallbandwidth

// Million-node substrate smoke test: the guard for the scenario tier
// opened by the CSR graph layout. It builds a 10⁶-node power-law
// Chung–Lu graph through the counting-sort builder and pushes one full
// engine round over it — every directed arc carries a message through
// the arena-carved delivery tables — so a regression anywhere on the
// scale path (generator, builder, engine setup, delivery) fails the
// ordinary test suite instead of only surfacing in `benchtables -scale`.
// It runs in -short mode too: this *is* the short-form scale check.

import (
	"testing"

	"smallbandwidth/internal/enginebench"
)

func TestMillionNodeSmoke(t *testing.T) {
	const n = 1_000_000
	g := enginebench.ScaleGraph("chunglu", n)
	if g.N() != n {
		t.Fatalf("built %d nodes, want %d", g.N(), n)
	}
	if g.M() < n/2 {
		t.Fatalf("implausibly sparse scale graph: m=%d", g.M())
	}
	if g.NumArcs() != 2*g.M() {
		t.Fatalf("arc space %d != 2m = %d", g.NumArcs(), 2*g.M())
	}
	// CSR self-consistency at scale, O(n+m): each row spans exactly its
	// offset range (ArcBase(v)+deg(v) = next row's base), rows are
	// strictly ascending, and every target is in range.
	off, nbr := g.CSR()
	if len(off) != n+1 || len(nbr) != g.NumArcs() {
		t.Fatalf("CSR array lengths (%d,%d) for n=%d arcs=%d", len(off), len(nbr), n, g.NumArcs())
	}
	for v := 0; v < n; v++ {
		row := g.Neighbors(v)
		if int(g.ArcBase(v))+len(row) != int(off[v+1]) {
			t.Fatalf("node %d: row end %d != next offset %d", v, int(g.ArcBase(v))+len(row), off[v+1])
		}
		for i, w := range row {
			if int(w) < 0 || int(w) >= n || int(w) == v {
				t.Fatalf("node %d: invalid neighbor %d", v, w)
			}
			if i > 0 && row[i-1] >= w {
				t.Fatalf("node %d: row not strictly ascending at %d", v, i)
			}
		}
	}
	if int(off[n]) != g.NumArcs() {
		t.Fatalf("offset table ends at %d, want %d arcs", off[n], g.NumArcs())
	}

	st, err := enginebench.ScaleRound(g)
	if err != nil {
		t.Fatalf("million-node engine round failed: %v", err)
	}
	if st.Rounds != 1 {
		t.Fatalf("engine charged %d rounds for the single-round program", st.Rounds)
	}
	if st.Messages != int64(g.NumArcs()) {
		t.Fatalf("delivered %d messages, want one per arc = %d", st.Messages, g.NumArcs())
	}
}
