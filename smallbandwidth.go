// Package smallbandwidth is the public API of this repository: a Go
// implementation of "Efficient Deterministic Distributed Coloring with
// Small Bandwidth" (Bamberger, Kuhn, Maus — PODC 2020).
//
// It solves the (degree+1)-list-coloring problem — and therefore the
// classic (Δ+1)-coloring problem — deterministically in three simulated
// distributed models:
//
//   - CONGEST (Theorem 1.1, Corollary 1.2): ColorCONGEST runs the
//     diameter-time algorithm; ColorDecomposed runs it on top of a
//     network decomposition for polylog(n) rounds on any topology.
//   - CONGESTED CLIQUE (Theorem 1.3): ColorClique.
//   - MPC with linear or sublinear memory (Theorems 1.4, 1.5): ColorMPC.
//
// Build an Instance with NewInstance (or the generators in this
// package), call a Color* entry point, and inspect the returned report:
// every run verifies its own output and reports the measured rounds,
// messages, and model-resource high-water marks.
//
// The quickstart:
//
//	g := smallbandwidth.RandomRegular(64, 4, 1)
//	inst := smallbandwidth.DeltaPlusOne(g)
//	res, err := smallbandwidth.ColorCONGEST(inst)
//	// res.Colors is a proper coloring; res.Stats.Rounds is the cost.
package smallbandwidth

import (
	"fmt"

	"smallbandwidth/internal/baseline"
	"smallbandwidth/internal/clique"
	"smallbandwidth/internal/core"
	"smallbandwidth/internal/graph"
	"smallbandwidth/internal/mpc"
	"smallbandwidth/internal/netdecomp"
)

// Re-exported data types. The aliases keep type identity with the
// internal packages, so advanced users can mix this façade with the
// internal APIs inside this module.
type (
	// Graph is an immutable undirected graph on nodes 0..N-1.
	Graph = graph.Graph
	// Builder incrementally constructs a Graph.
	Builder = graph.Builder
	// Instance is a (degree+1)-list-coloring instance.
	Instance = graph.Instance
	// CONGESTResult reports a Theorem 1.1 run.
	CONGESTResult = core.Result
	// CONGESTOptions tunes a Theorem 1.1 run.
	CONGESTOptions = core.Options
	// DecompResult reports a Corollary 1.2 run.
	DecompResult = netdecomp.DecompResult
	// Decomposition is a network decomposition with congestion (Def. 3.1).
	Decomposition = netdecomp.Decomposition
	// CliqueResult reports a Theorem 1.3 run.
	CliqueResult = clique.Result
	// CliqueOptions tunes a Theorem 1.3 run.
	CliqueOptions = clique.Options
	// MPCResult reports a Theorem 1.4/1.5 run.
	MPCResult = mpc.Result
	// MPCOptions tunes a Theorem 1.4/1.5 run.
	MPCOptions = mpc.Options
)

// NewGraphBuilder returns a builder for a graph on n nodes.
func NewGraphBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph from an edge list.
func FromEdges(n int, edges [][2]int) (*Graph, error) { return graph.FromEdges(n, edges) }

// Common generators (deterministic in their seed).
var (
	Path            = graph.Path
	Cycle           = graph.Cycle
	Grid2D          = graph.Grid2D
	Torus2D         = graph.Torus2D
	Hypercube       = graph.Hypercube
	Star            = graph.Star
	Complete        = graph.Complete
	Barbell         = graph.Barbell
	Caveman         = graph.Caveman
	GNP             = graph.GNP
	RandomRegular   = graph.MustRandomRegular
	ChungLu         = graph.ChungLu
	RandomGeometric = graph.RandomGeometric
)

// DeltaPlusOne builds the classic (Δ+1)-coloring instance for g
// (Observation 4.1's reduction).
func DeltaPlusOne(g *Graph) *Instance { return graph.DeltaPlusOneInstance(g) }

// NewInstance builds and validates a list-coloring instance with the
// given color-space size and per-node lists.
func NewInstance(g *Graph, colorSpace uint32, lists [][]uint32) (*Instance, error) {
	inst := &Instance{G: g, C: colorSpace, Lists: lists}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}

// RandomLists builds an instance whose lists are random
// (deg+1+slack)-subsets of [colorSpace].
func RandomLists(g *Graph, colorSpace uint32, slack int, seed uint64) (*Instance, error) {
	return graph.RandomListInstance(g, colorSpace, slack, seed)
}

// oneOption resolves the variadic options pattern of the Color* entry
// points: zero values mean defaults, one value is used as given, and more
// than one is rejected — the old behavior of silently dropping opts[1:]
// hid caller bugs where two configs were merged by mistake.
func oneOption[O any](opts []O) (O, error) {
	var o O
	if len(opts) > 1 {
		return o, fmt.Errorf("smallbandwidth: at most one options value may be passed, got %d", len(opts))
	}
	if len(opts) == 1 {
		o = opts[0]
	}
	return o, nil
}

// ColorCONGEST solves the instance with the Theorem 1.1 CONGEST
// algorithm in O(D·logn·logC·(logΔ+loglogC)) measured rounds. The graph
// may be disconnected: all components run concurrently inside one engine
// run, with Rounds the max over components and Messages/Words the sums.
func ColorCONGEST(inst *Instance, opts ...CONGESTOptions) (*CONGESTResult, error) {
	o, err := oneOption(opts)
	if err != nil {
		return nil, err
	}
	return core.ListColorCONGEST(inst, o)
}

// ColorDecomposed solves the instance with the Corollary 1.2 pipeline:
// network decomposition + per-class Theorem 1.1, polylog(n) rounds
// independent of the diameter. All clusters of one decomposition color
// class execute as a single disjoint-union engine run.
func ColorDecomposed(inst *Instance, opts ...CONGESTOptions) (*DecompResult, error) {
	o, err := oneOption(opts)
	if err != nil {
		return nil, err
	}
	return netdecomp.ListColorDecomposed(inst, o)
}

// BuildDecomposition exposes the network decomposition itself.
func BuildDecomposition(g *Graph) (*Decomposition, error) { return netdecomp.Build(g) }

// ColorClique solves the instance in the congested clique (Theorem 1.3).
func ColorClique(inst *Instance, opts ...CliqueOptions) (*CliqueResult, error) {
	o, err := oneOption(opts)
	if err != nil {
		return nil, err
	}
	return clique.ListColorClique(inst, o)
}

// ColorMPC solves the instance in the MPC model; set Sublinear in the
// options to switch from Theorem 1.4 to Theorem 1.5.
func ColorMPC(inst *Instance, opts ...MPCOptions) (*MPCResult, error) {
	o, err := oneOption(opts)
	if err != nil {
		return nil, err
	}
	return mpc.ListColorMPC(inst, o)
}

// ColorRandomizedBaseline runs Johansson's randomized CONGEST coloring,
// the comparison point for the deterministic algorithms.
func ColorRandomizedBaseline(inst *Instance, seed uint64) (*baseline.RandResult, error) {
	return baseline.RandomizedCONGEST(inst, seed)
}

// Greedy returns the sequential greedy coloring (correctness oracle).
func Greedy(inst *Instance) []uint32 { return inst.Greedy() }
