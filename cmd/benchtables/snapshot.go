package main

// Snapshot/restore cost at the scale tier (BENCH_snapshot.json): a
// checkpointed ColorCONGEST iteration on the 10⁶-node grid (the
// recording overhead, comparable against scale-color/grid), then the
// encode, decode, and resume costs of the last mid-run cut. The
// encode/decode rows report the checkpoint file size in the words
// column; the snapshot's cut round rides in the rounds column.

import (
	"fmt"
	"os"
	"sort"

	sb "smallbandwidth"
	"smallbandwidth/internal/congest"
	"smallbandwidth/internal/core"
	"smallbandwidth/internal/enginebench"
)

func snapshotBench(quick bool) []EngineWorkload {
	n := 1000000
	if quick {
		n = 100000
	}
	fail := func(what string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "snapshot %s run failed: %v\n", what, err)
			os.Exit(1)
		}
	}

	g := enginebench.ScaleGraph("grid", n)
	inst := sb.DeltaPlusOne(g)
	opts := core.Options{MaxIterations: 1}
	var out []EngineWorkload

	// Record the run with a checkpointer attached, keeping the latest
	// non-final cut of every domain: the deepest state a crash could
	// still be recovered from.
	cuts := map[int32]*congest.DomainCut{}
	ck := &congest.Checkpointer{OnCut: func(c *congest.DomainCut) {
		if !c.Final {
			cuts[c.Root] = c
		}
	}}
	out = append(out, measure(workloadName("snap-record", "grid", n), g.N(), g.M(), func() (int, int64, int64) {
		res, err := core.ListColorResumable(inst, opts, ck, nil)
		fail("record", err)
		return res.Stats.Rounds, res.Stats.Messages, res.Stats.Words
	}))
	if len(cuts) == 0 {
		fail("record", fmt.Errorf("run took no mid-run cut"))
	}
	snap := &congest.RunSnapshot{}
	for _, c := range cuts {
		snap.Cuts = append(snap.Cuts, *c)
	}
	sort.Slice(snap.Cuts, func(i, j int) bool { return snap.Cuts[i].Root < snap.Cuts[j].Root })
	cutRound := snap.Cuts[0].Round

	var raw []byte
	out = append(out, measure(workloadName("snap-encode", "grid", n), g.N(), g.M(), func() (int, int64, int64) {
		raw = core.EncodeCheckpoint(&core.Checkpoint{Inst: inst, Opts: opts, Snap: snap})
		return cutRound, int64(len(snap.Cuts)), int64(len(raw))
	}))

	var cp *core.Checkpoint
	out = append(out, measure(workloadName("snap-decode", "grid", n), g.N(), g.M(), func() (int, int64, int64) {
		var err error
		cp, err = core.DecodeCheckpoint(raw)
		fail("decode", err)
		return cutRound, int64(len(cp.Snap.Cuts)), int64(len(raw))
	}))

	out = append(out, measure(workloadName("snap-resume", "grid", n), g.N(), g.M(), func() (int, int64, int64) {
		res, err := core.ListColorFromCheckpoint(cp, nil)
		fail("resume", err)
		return res.Stats.Rounds, res.Stats.Messages, res.Stats.Words
	}))
	return out
}
