// benchtables regenerates every experiment table of EXPERIMENTS.md
// (E1–E12 in DESIGN.md §4): one table per theorem/lemma of the paper,
// comparing the measured quantity against the claimed bound's shape.
//
// Usage: benchtables [-quick] [-exp E1,E5,...]
//
// With -engine it instead benchmarks the CONGEST simulator itself on
// large graphs and records the results in BENCH_congest.json (see
// engine.go), keyed by -label; -clique and -mpc do the same for the
// other two model simulators, and -decomp records the Corollary 1.2
// pipeline (seed-equivalent sequential vs batched class runs) in
// BENCH_decomp.json:
//
//	benchtables -engine -label my-change -o BENCH_congest.json
//	benchtables -clique -label my-change
//	benchtables -mpc -label my-change
//	benchtables -decomp -label my-change
//
// -scale runs the million-node scenario tier opened by the CSR graph
// substrate — 10⁶-node ChungLu/GNP/grid construction, a full engine
// round, one ColorCONGEST iteration, and the ColorDecomposed pipeline —
// and records BENCH_scale.json (1e5-node sweep with -quick); -snapshot
// measures checkpoint recording, encode, decode, and resume at the same
// tier and records BENCH_snapshot.json:
//
//	benchtables -scale -label my-change
//	benchtables -snapshot -label my-change
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	sb "smallbandwidth"
	"smallbandwidth/internal/baseline"
	"smallbandwidth/internal/core"
	"smallbandwidth/internal/mpc"
	"smallbandwidth/internal/netdecomp"
	"smallbandwidth/internal/prng"
)

var quick = flag.Bool("quick", false, "smaller sweeps")

func main() {
	only := flag.String("exp", "", "comma-separated experiment ids (default all)")
	engine := flag.Bool("engine", false, "benchmark the CONGEST engine and record BENCH_congest.json")
	cliqueMode := flag.Bool("clique", false, "benchmark the CLIQUE simulator and record BENCH_clique.json")
	mpcMode := flag.Bool("mpc", false, "benchmark the MPC simulator and record BENCH_mpc.json")
	decompMode := flag.Bool("decomp", false, "benchmark the Corollary 1.2 pipeline (sequential vs batched) and record BENCH_decomp.json")
	scaleMode := flag.Bool("scale", false, "run the million-node scenario tier (CSR builds, engine round, ColorCONGEST, ColorDecomposed at n=1e6; 1e5 with -quick) and record BENCH_scale.json")
	snapshotMode := flag.Bool("snapshot", false, "measure checkpoint recording, encode, decode, and resume at the scale tier (n=1e6; 1e5 with -quick) and record BENCH_snapshot.json")
	storeMode := flag.Bool("store", false, "measure the persistent graph store (ingest, encode, load vs rebuild, first query, 8-session serve sweep) at the scale tier (n=1e6; 1e5 with -quick) and record BENCH_store.json")
	label := flag.String("label", "current", "label for the -engine/-clique/-mpc/-decomp record")
	out := flag.String("o", "", "output path for the -engine/-clique/-mpc/-decomp record (default per mode)")
	procs := flag.String("procs", "current", "GOMAXPROCS for the record sweeps: current, 1, max, or both (runs the sweep at GOMAXPROCS=1 and NumCPU, recording <label>@p1 and <label>@pN)")
	flag.Parse()
	record := func(defPath, schema, source string, workloads func(bool) []EngineWorkload) {
		path := *out
		if path == "" {
			path = defPath
		}
		runAt := func(label string, gomaxprocs int) {
			if gomaxprocs > 0 {
				old := runtime.GOMAXPROCS(gomaxprocs)
				defer runtime.GOMAXPROCS(old)
			}
			if err := recordBench(path, label, schema, source, workloads(*quick)); err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				os.Exit(1)
			}
			fmt.Printf("recorded benchmarks under label %q in %s (GOMAXPROCS=%d)\n", label, path, runtime.GOMAXPROCS(0))
		}
		switch *procs {
		case "current":
			runAt(*label, 0)
		case "1":
			runAt(*label, 1)
		case "max":
			warnSingleCPU()
			runAt(*label, runtime.NumCPU())
		case "both":
			warnSingleCPU()
			runAt(*label+"@p1", 1)
			runAt(*label+"@pN", runtime.NumCPU())
		default:
			fmt.Fprintf(os.Stderr, "benchtables: unknown -procs value %q (want current, 1, max, or both)\n", *procs)
			os.Exit(1)
		}
	}
	switch {
	case *engine:
		record("BENCH_congest.json", "smallbandwidth/bench-congest/v2", "cmd/benchtables -engine", engineBench)
		return
	case *cliqueMode:
		record("BENCH_clique.json", "smallbandwidth/bench-clique/v1", "cmd/benchtables -clique", cliqueBench)
		return
	case *mpcMode:
		record("BENCH_mpc.json", "smallbandwidth/bench-mpc/v1", "cmd/benchtables -mpc", mpcBench)
		return
	case *decompMode:
		record("BENCH_decomp.json", "smallbandwidth/bench-decomp/v1", "cmd/benchtables -decomp", decompBench)
		return
	case *scaleMode:
		record("BENCH_scale.json", "smallbandwidth/bench-scale/v1", "cmd/benchtables -scale", scaleBench)
		return
	case *snapshotMode:
		record("BENCH_snapshot.json", "smallbandwidth/bench-snapshot/v1", "cmd/benchtables -snapshot", snapshotBench)
		return
	case *storeMode:
		record("BENCH_store.json", "smallbandwidth/bench-store/v1", "cmd/benchtables -store", storeBench)
		return
	}
	// The experiment tables don't record gomaxprocs; silently ignoring
	// -procs here would let a user believe they measured a parallelism
	// sweep when they didn't.
	if *procs != "current" {
		fmt.Fprintf(os.Stderr, "benchtables: -procs applies only to the record modes (-engine/-clique/-mpc/-decomp/-scale/-snapshot/-store)\n")
		os.Exit(1)
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*only, ",") {
		if e != "" {
			want[strings.ToUpper(e)] = true
		}
	}
	run := func(id string, fn func()) {
		if len(want) > 0 && !want[id] {
			return
		}
		fn()
	}
	run("E1", e1)
	run("E2", e2)
	run("E3", e3)
	run("E4", e4)
	run("E5", e5)
	run("E6", e6)
	run("E7", e7)
	run("E8", e8)
	run("E9", e9)
	run("E10", e10)
	run("E11", e11)
	run("E12", e12)
}

// warnSingleCPU flags -procs max/both runs on a single-CPU host: the
// @pN record is then the same single-core configuration as @p1 and
// must not be read as multi-core scaling evidence. The records stay
// honest (num_cpu=1 is written as measured); this is operator-facing.
func warnSingleCPU() {
	if runtime.NumCPU() == 1 {
		fmt.Fprintln(os.Stderr, "benchtables: host reports 1 CPU; the @pN/max sweep measures the same single-core configuration as @p1 (num_cpu=1 is recorded as such)")
	}
}

func header(id, claim string) {
	fmt.Printf("\n## %s — %s\n\n", id, claim)
}

// E1: Theorem 1.1 round scaling.
func e1() {
	header("E1", "Theorem 1.1: rounds = O(D·logn·logC·(logΔ+loglogC))")
	fmt.Printf("%-12s %5s %4s %3s %4s %9s %12s %8s\n",
		"graph", "n", "D", "Δ", "logC", "rounds", "bound-shape", "ratio")
	sizes := []int{16, 32, 64}
	if !*quick {
		sizes = append(sizes, 128)
	}
	for _, n := range sizes {
		for _, mk := range []struct {
			name string
			g    *sb.Graph
		}{
			{"cycle", sb.Cycle(n)},
			{"regular4", sb.RandomRegular(n, 4, 1)},
		} {
			inst := sb.DeltaPlusOne(mk.g)
			res, err := sb.ColorCONGEST(inst)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			d := mk.g.Diameter()
			delta := mk.g.MaxDegree()
			logc := res.Params.LogC
			shape := float64(d) * logn(n) * float64(logc) * (logn(delta) + logn(logc))
			fmt.Printf("%-12s %5d %4d %3d %4d %9d %12.0f %8.3f\n",
				mk.name, n, d, delta, logc, res.Stats.Rounds, shape,
				float64(res.Stats.Rounds)/shape)
		}
	}
}

// E2: Lemma 2.1 colored fraction per invocation.
func e2() {
	header("E2", "Lemma 2.1: every iteration colors ≥ 1/8 of uncolored nodes")
	fmt.Printf("%-12s %5s %10s %10s %10s\n", "graph", "n", "iterations", "minFrac", "guarantee")
	for _, mk := range []struct {
		name string
		g    *sb.Graph
	}{
		{"cycle", sb.Cycle(48)},
		{"grid", sb.Grid2D(6, 8)},
		{"regular4", sb.RandomRegular(48, 4, 2)},
		{"star", sb.Star(32)},
		{"caveman", sb.Caveman(6, 5)},
	} {
		inst := sb.DeltaPlusOne(mk.g)
		res, err := sb.ColorCONGEST(inst)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		minFrac := 1.0
		for i := 0; i < res.Iterations; i++ {
			f := float64(res.Colored[i]) / float64(res.AliveAt[i])
			if f < minFrac {
				minFrac = f
			}
		}
		fmt.Printf("%-12s %5d %10d %10.3f %10s\n", mk.name, mk.g.N(), res.Iterations, minFrac, "0.125")
	}
}

// E3: Lemma 2.6 potential growth.
func e3() {
	header("E3", "Lemma 2.6: ΣΦ grows ≤ n_alive/⌈logC⌉ per phase; final ΣΦ ≤ 2n (Lemma 2.1)")
	fmt.Printf("%-12s %5s %14s %14s %12s\n", "graph", "n", "maxPhaseGrowth", "budget/phase", "maxFinal/2n")
	for _, mk := range []struct {
		name string
		g    *sb.Graph
	}{
		{"regular4", sb.RandomRegular(40, 4, 4)},
		{"grid", sb.Grid2D(5, 8)},
		{"torus", sb.Torus2D(6, 6)},
	} {
		inst := sb.DeltaPlusOne(mk.g)
		res, err := sb.ColorCONGEST(inst, sb.CONGESTOptions{TrackPotentials: true})
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		maxGrowth, budget, maxFinalRatio := 0.0, 0.0, 0.0
		for i := 0; i < res.Iterations; i++ {
			alive := float64(res.AliveAt[i])
			budget = alive / float64(res.Params.LogC)
			prev := res.PotentialStart[i]
			for l := 0; l < res.Params.LogC; l++ {
				if g := res.PotentialPhase[i][l] - prev; g > maxGrowth {
					maxGrowth = g
				}
				prev = res.PotentialPhase[i][l]
			}
			if r := prev / (2 * alive); r > maxFinalRatio {
				maxFinalRatio = r
			}
		}
		fmt.Printf("%-12s %5d %14.4f %14.4f %12.4f\n",
			mk.name, mk.g.N(), maxGrowth, budget, maxFinalRatio)
	}
}

// E4: seed length independent of n.
func e4() {
	header("E4", "Lemma 2.5/2.6: seed length O(logΔ+logK+loglogC), independent of n")
	fmt.Printf("%5s %4s %6s %10s\n", "n", "Δ", "seedD", "seed/logn")
	for _, n := range []int{16, 32, 64, 128, 256} {
		inst := sb.DeltaPlusOne(sb.Cycle(n))
		p, err := core.ComputeParams(inst, core.Options{})
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("%5d %4d %6d %10.2f\n", n, 2, p.D, float64(p.D)/logn(n))
	}
}

// E5: Corollary 1.2 on high-diameter graphs + decomposition quality.
func e5() {
	header("E5", "Cor 1.2 / Thm 3.1: polylog rounds independent of D; decomposition (α,β,κ)")
	fmt.Printf("%-10s %5s %5s %3s %5s %3s %10s %10s %9s\n",
		"graph", "n", "D", "α", "β", "κ", "decompRnd", "Thm1.1Rnd", "ratio")
	sizes := []int{32, 64, 128}
	if !*quick {
		sizes = append(sizes, 256)
	}
	for _, n := range sizes {
		g := sb.Cycle(n)
		inst := sb.DeltaPlusOne(g)
		dres, err := netdecomp.ListColorDecomposed(inst, core.Options{})
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		tres, err := sb.ColorCONGEST(inst)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		dc := dres.Decomp
		fmt.Printf("%-10s %5d %5d %3d %5d %3d %10d %10d %9.2f\n",
			"cycle", n, g.Diameter(), dc.Colors, dc.Beta, dc.Congestion,
			dres.ChargedRounds, tres.Stats.Rounds,
			float64(dres.ChargedRounds)/float64(tres.Stats.Rounds))
	}
}

// E6: Theorem 1.3 clique rounds.
func e6() {
	header("E6", "Theorem 1.3: clique rounds = O(logC·loglogΔ) — far below CONGEST")
	fmt.Printf("%-10s %5s %3s %8s %6s %9s %13s\n", "graph", "n", "Δ", "rounds", "iters", "maxBatch", "localFinishAt")
	confs := []struct {
		n, d int
	}{{24, 6}, {32, 6}, {48, 8}}
	if !*quick {
		// Dense enough that the u ≤ n/4 window opens before the u·Δ ≤ n
		// local finish: exercises the multi-bit acceleration (maxBatch 2).
		confs = append(confs, struct{ n, d int }{64, 8}, struct{ n, d int }{48, 12})
	}
	for _, c := range confs {
		g := sb.RandomRegular(c.n, c.d, 3)
		inst := sb.DeltaPlusOne(g)
		res, err := sb.ColorClique(inst)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("%-10s %5d %3d %8d %6d %9d %13d\n",
			"regular", c.n, c.d, res.Stats.Rounds, res.Iterations, res.MaxBatch, res.LocalFinishUncolored)
	}
}

// E7/E8: MPC rounds + memory audit.
func e7() {
	mpcTable(false, "E7", "Theorem 1.4 (linear memory): rounds = O(logΔ·logC), memory ≤ S")
}
func e8() {
	mpcTable(true, "E8", "Theorem 1.5 (sublinear memory): rounds = O(logΔ·logC + logn), memory ≤ S = Θ(√n)")
}

func mpcTable(sublinear bool, id, claim string) {
	header(id, claim)
	fmt.Printf("%5s %3s %8s %9s %7s %8s %8s\n", "n", "Δ", "machines", "S", "rounds", "memHW", "ioHW")
	sizes := []int{32, 64, 128}
	if !*quick {
		sizes = append(sizes, 256)
	}
	for _, n := range sizes {
		g := sb.RandomRegular(n, 4, 5)
		inst := sb.DeltaPlusOne(g)
		res, err := mpc.ListColorMPC(inst, mpc.Options{Sublinear: sublinear})
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("%5d %3d %8d %9d %7d %8d %8d\n",
			n, 4, res.Machines, res.S, res.Rounds, res.HighWaterMemory, res.HighWaterIO)
	}
}

// E9: bandwidth audit.
func e9() {
	header("E9", "CONGEST bandwidth: every message ≤ O(logn) bits (4 words)")
	fmt.Printf("%-10s %5s %10s %13s\n", "graph", "n", "messages", "maxMsgWords")
	for _, mk := range []struct {
		name string
		g    *sb.Graph
	}{
		{"cycle", sb.Cycle(64)},
		{"grid", sb.Grid2D(8, 8)},
		{"regular", sb.RandomRegular(64, 4, 7)},
	} {
		inst := sb.DeltaPlusOne(mk.g)
		res, err := sb.ColorCONGEST(inst)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("%-10s %5d %10d %13d\n", mk.name, mk.g.N(), res.Stats.Messages, res.Stats.MaxMessageWords)
	}
}

// E10: derandomization overhead vs the randomized baseline.
func e10() {
	header("E10", "Price of determinism: Thm 1.1 vs randomized [Joh99] rounds")
	fmt.Printf("%-10s %5s %10s %10s %9s\n", "graph", "n", "detRounds", "randRounds", "overhead")
	for _, mk := range []struct {
		name string
		g    *sb.Graph
	}{
		{"cycle", sb.Cycle(48)},
		{"grid", sb.Grid2D(6, 8)},
		{"regular", sb.RandomRegular(48, 4, 8)},
	} {
		inst := sb.DeltaPlusOne(mk.g)
		det, err := sb.ColorCONGEST(inst)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		rnd, err := baseline.RandomizedCONGEST(inst, 1)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("%-10s %5d %10d %10d %9.1f\n", mk.name, mk.g.N(),
			det.Stats.Rounds, rnd.Rounds, float64(det.Stats.Rounds)/float64(rnd.Rounds))
	}
}

// E11: Section 5 tools O(1) rounds.
func e11() {
	header("E11", "Lemma 5.1: sorting / prefix sums / set difference in O(1) MPC rounds")
	fmt.Printf("%7s %9s %10s %11s %12s\n", "N", "S", "sortRnds", "prefixRnds", "setdiffRnds")
	for _, n := range []int{200, 1000, 5000} {
		// Per-iteration function scope so each runtime's engine pool is
		// released before the next size starts.
		func(n int) {
			s := 40 * isqrtInt(n)
			// Enough machines that one bucket plus one machine's share of
			// the redistribution stays under S even with splitter skew.
			rt, err := mpc.NewRuntime(maxInt(12*n/s, 2)+2, s)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			defer rt.Close()
			recs := make([]mpc.Rec, n)
			for i := range recs {
				recs[i] = mpc.Rec{uint64((i * 7919) % 1024), uint64(i), 1}
			}
			d, err := mpc.NewDist(rt, recs)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			if err := d.Sort(rt); err != nil {
				fmt.Println("error:", err)
				return
			}
			sortR := rt.Rounds
			if err := d.PrefixSums(rt, func(a, b uint64) uint64 { return a + b }, 0); err != nil {
				fmt.Println("error:", err)
				return
			}
			prefR := rt.Rounds - sortR
			before := rt.Rounds
			if _, err := mpc.SetDifference(rt, recs[:n/2], recs[n/2:]); err != nil {
				fmt.Println("error:", err)
				return
			}
			fmt.Printf("%7d %9d %10d %11d %12d\n", n, s, sortR, prefR, rt.Rounds-before)
		}(n)
	}
}

// E12: zero-round randomized processes (Lemmas 2.2/2.3) by Monte-Carlo.
func e12() {
	header("E12", "Lemmas 2.2/2.3: E[ΣΦ] non-increasing (uniform) / ≤ +10εΔn (biased)")
	g := sb.RandomRegular(32, 4, 6)
	inst := sb.DeltaPlusOne(g)
	base, err := core.NewPrefixState(inst)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	before := base.Potential()
	trials := 500
	if *quick {
		trials = 100
	}
	sum := 0.0
	for t := 0; t < trials; t++ {
		st, _ := core.NewPrefixState(inst)
		if err := st.StepUniform(prng.New(uint64(t))); err != nil {
			fmt.Println("error:", err)
			return
		}
		sum += st.Potential()
	}
	fmt.Printf("uniform (Lemma 2.2):  Φ₀ = %.3f, mean Φ₁ over %d seeds = %.3f (must be ≤ Φ₀ + noise)\n",
		before, trials, sum/float64(trials))
	iters, err := baseline.RandomSeedPrefix(inst, 3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("biased-seed process (Lemma 2.3/2.5) colored everything in %d iterations\n", iters)
}

func logn(x int) float64 {
	l := 0.0
	for v := 1; v < x; v *= 2 {
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}

func isqrtInt(x int) int {
	r := 0
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
