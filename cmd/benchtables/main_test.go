package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestParseWorkloadName pins the sized-workload name reader against
// both generations of records: the dashed names new sweeps emit and the
// glued kind+size tokens older BENCH files carry.
func TestParseWorkloadName(t *testing.T) {
	cases := []struct {
		name  string
		group string
		kind  string
		n     int
		ok    bool
	}{
		{"scale-color/grid-100000", "scale-color", "grid", 100000, true},
		{"scale-build/gnp4-1000000", "scale-build", "gnp4", 1000000, true},
		{"scale-build/gnp41000000", "scale-build", "gnp4", 1000000, true},
		{"scale-round/chunglu100000", "scale-round", "chunglu", 100000, true},
		{"store-serve8/grid-100000", "store-serve8", "grid", 100000, true},
		{"color/gnp-sparse", "", "", 0, false},
		{"barrier/regular4", "barrier", "regular", 4, true},
		{"clique-flood/512", "", "", 0, false},
		{"noslash", "", "", 0, false},
	}
	for _, c := range cases {
		group, kind, n, ok := parseWorkloadName(c.name)
		if group != c.group || kind != c.kind || n != c.n || ok != c.ok {
			t.Errorf("parseWorkloadName(%q) = (%q, %q, %d, %v), want (%q, %q, %d, %v)",
				c.name, group, kind, n, ok, c.group, c.kind, c.n, c.ok)
		}
	}
	if got := workloadName("scale-color", "grid", 100000); got != "scale-color/grid-100000" {
		t.Errorf("workloadName = %q", got)
	}
}

// TestBenchtablesRecordsMPC drives the binary end to end in its quick
// recorder mode: it must produce a valid BENCH-schema JSON file. One
// invocation only — benchtables registers its -quick flag at package
// init, so the process-global flag set cannot be rebuilt.
func TestBenchtablesRecordsMPC(t *testing.T) {
	if testing.Short() {
		t.Skip("benchtables smoke test skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_smoke.json")
	os.Args = []string{"benchtables", "-mpc", "-quick", "-label", "smoke", "-o", out}
	main()
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var file BenchFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("recorded file is not valid JSON: %v", err)
	}
	if file.Schema != "smallbandwidth/bench-mpc/v1" {
		t.Errorf("schema = %q", file.Schema)
	}
	rec, ok := file.Engines["smoke"]
	if !ok || len(rec.Workloads) == 0 {
		t.Fatalf("label %q missing or empty: %+v", "smoke", file.Engines)
	}
	for _, w := range rec.Workloads {
		if w.WallNS <= 0 || w.Rounds <= 0 {
			t.Errorf("workload %s recorded no measurements: %+v", w.Name, w)
		}
	}
}
