package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchtablesRecordsMPC drives the binary end to end in its quick
// recorder mode: it must produce a valid BENCH-schema JSON file. One
// invocation only — benchtables registers its -quick flag at package
// init, so the process-global flag set cannot be rebuilt.
func TestBenchtablesRecordsMPC(t *testing.T) {
	if testing.Short() {
		t.Skip("benchtables smoke test skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_smoke.json")
	os.Args = []string{"benchtables", "-mpc", "-quick", "-label", "smoke", "-o", out}
	main()
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var file BenchFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("recorded file is not valid JSON: %v", err)
	}
	if file.Schema != "smallbandwidth/bench-mpc/v1" {
		t.Errorf("schema = %q", file.Schema)
	}
	rec, ok := file.Engines["smoke"]
	if !ok || len(rec.Workloads) == 0 {
		t.Fatalf("label %q missing or empty: %+v", "smoke", file.Engines)
	}
	for _, w := range rec.Workloads {
		if w.WallNS <= 0 || w.Rounds <= 0 {
			t.Errorf("workload %s recorded no measurements: %+v", w.Name, w)
		}
	}
}
